#!/bin/sh
# bench.sh — run the root benchmark suite (one benchmark per paper table /
# figure, plus the ablations) with -benchmem and emit a machine-readable
# JSON snapshot of op time, allocs/op, and every custom metric. The file
# seeds the perf trajectory: each perf PR records its before/after pair in
# EXPERIMENTS.md against the committed snapshot.
#
# Usage:
#   scripts/bench.sh [--compare BASE.json] [out.json]   # default out: BENCH_PR9.json
#
# With --compare, after writing the snapshot the guarded benchmarks
# (BenchmarkStreamingPreview and BenchmarkReconAlgorithms/fbp) are checked
# against the baseline snapshot's ns_per_op: a regression beyond the
# tolerance fails the script. check.sh runs this as a smoke gate with a
# loose tolerance; perf PRs run it tight against the previous snapshot.
#
# Environment:
#   BENCH_TIME         go test -benchtime value (default 1s)
#   BENCH_FILTER       -bench regexp (default ., i.e. the full suite)
#   BENCH_LABEL        free-form label stored in the snapshot (default "current")
#   BENCH_COMPARE_PCT  allowed ns/op regression percent for --compare (default 15)
set -eu

cd "$(dirname "$0")/.."

compare=""
if [ "${1:-}" = "--compare" ]; then
	if [ $# -lt 2 ]; then
		echo "bench.sh: --compare needs a baseline snapshot path" >&2
		exit 2
	fi
	compare=$2
	shift 2
	if ! [ -f "$compare" ]; then
		echo "bench.sh: baseline snapshot $compare not found" >&2
		exit 2
	fi
fi

out=${1:-BENCH_PR9.json}
benchtime=${BENCH_TIME:-1s}
filter=${BENCH_FILTER:-.}
label=${BENCH_LABEL:-current}
pct=${BENCH_COMPARE_PCT:-15}

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench $filter -benchtime $benchtime -benchmem (root suite) =="
go test -run '^$' -bench "$filter" -benchtime "$benchtime" -benchmem . | tee "$raw"

awk -v label="$label" '
BEGIN { n = 0 }
/^Benchmark/ && NF >= 3 {
	name = $1
	sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix: stable keys
	iters = $2
	ns = ""; bytes = ""; allocs = ""; metrics = ""
	for (i = 3; i + 1 <= NF; i += 2) {
		v = $i; u = $(i + 1)
		if (u == "ns/op") ns = v
		else if (u == "B/op") bytes = v
		else if (u == "allocs/op") allocs = v
		else {
			if (metrics != "") metrics = metrics ","
			metrics = metrics sprintf("\"%s\":%s", u, v)
		}
	}
	line = sprintf("    {\"name\":\"%s\",\"iterations\":%s", name, iters)
	if (ns != "") line = line sprintf(",\"ns_per_op\":%s", ns)
	if (bytes != "") line = line sprintf(",\"bytes_per_op\":%s", bytes)
	if (allocs != "") line = line sprintf(",\"allocs_per_op\":%s", allocs)
	if (metrics != "") line = line sprintf(",\"metrics\":{%s}", metrics)
	line = line "}"
	rows[n++] = line
}
END {
	printf "{\n  \"label\": \"%s\",\n  \"benchmarks\": [\n", label
	for (i = 0; i < n; i++) printf "%s%s\n", rows[i], (i < n - 1) ? "," : ""
	printf "  ]\n}\n"
}
' "$raw" >"$out"

echo "wrote $out"

if [ -z "$compare" ]; then
	exit 0
fi

# ns_of snapshot name — extract a benchmark's ns_per_op from a snapshot.
ns_of() {
	awk -v want="\"name\":\"$2\"" '
	index($0, want) {
		if (match($0, /"ns_per_op":[0-9.eE+-]+/)) {
			print substr($0, RSTART + 12, RLENGTH - 12)
			exit
		}
	}' "$1"
}

echo "== bench compare vs $compare (tolerance +${pct}%) =="
status=0
for name in BenchmarkStreamingPreview BenchmarkReconAlgorithms/fbp; do
	base_ns=$(ns_of "$compare" "$name")
	new_ns=$(ns_of "$out" "$name")
	if [ -z "$base_ns" ]; then
		echo "bench compare: $name missing from baseline $compare"
		status=1
		continue
	fi
	if [ -z "$new_ns" ]; then
		echo "bench compare: $name missing from $out (check BENCH_FILTER)"
		status=1
		continue
	fi
	if ! awk -v b="$base_ns" -v n="$new_ns" -v p="$pct" -v name="$name" 'BEGIN {
		delta = (n / b - 1) * 100
		if (n > b * (1 + p / 100)) {
			printf "REGRESSION %s: %.0f ns/op vs baseline %.0f (%+.1f%%, limit +%g%%)\n", name, n, b, delta, p
			exit 1
		}
		printf "ok %s: %.0f ns/op vs baseline %.0f (%+.1f%%, limit +%g%%)\n", name, n, b, delta, p
	}'; then
		status=1
	fi
done
if [ "$status" != 0 ]; then
	echo "bench compare failed against $compare"
	exit 1
fi

#!/bin/sh
# bench.sh — run the root benchmark suite (one benchmark per paper table /
# figure, plus the ablations) with -benchmem and emit a machine-readable
# JSON snapshot of op time, allocs/op, and every custom metric. The file
# seeds the perf trajectory: each perf PR records its before/after pair in
# EXPERIMENTS.md against the committed snapshot.
#
# Usage:
#   scripts/bench.sh [out.json]        # default out: BENCH_PR6.json
# Environment:
#   BENCH_TIME    go test -benchtime value (default 1s)
#   BENCH_FILTER  -bench regexp (default ., i.e. the full suite)
#   BENCH_LABEL   free-form label stored in the snapshot (default "current")
set -eu

cd "$(dirname "$0")/.."

out=${1:-BENCH_PR6.json}
benchtime=${BENCH_TIME:-1s}
filter=${BENCH_FILTER:-.}
label=${BENCH_LABEL:-current}

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench $filter -benchtime $benchtime -benchmem (root suite) =="
go test -run '^$' -bench "$filter" -benchtime "$benchtime" -benchmem . | tee "$raw"

awk -v label="$label" '
BEGIN { n = 0 }
/^Benchmark/ && NF >= 3 {
	name = $1
	iters = $2
	ns = ""; bytes = ""; allocs = ""; metrics = ""
	for (i = 3; i + 1 <= NF; i += 2) {
		v = $i; u = $(i + 1)
		if (u == "ns/op") ns = v
		else if (u == "B/op") bytes = v
		else if (u == "allocs/op") allocs = v
		else {
			if (metrics != "") metrics = metrics ","
			metrics = metrics sprintf("\"%s\":%s", u, v)
		}
	}
	line = sprintf("    {\"name\":\"%s\",\"iterations\":%s", name, iters)
	if (ns != "") line = line sprintf(",\"ns_per_op\":%s", ns)
	if (bytes != "") line = line sprintf(",\"bytes_per_op\":%s", bytes)
	if (allocs != "") line = line sprintf(",\"allocs_per_op\":%s", allocs)
	if (metrics != "") line = line sprintf(",\"metrics\":{%s}", metrics)
	line = line "}"
	rows[n++] = line
}
END {
	printf "{\n  \"label\": \"%s\",\n  \"benchmarks\": [\n", label
	for (i = 0; i < n; i++) printf "%s%s\n", rows[i], (i < n - 1) ? "," : ""
	printf "  ]\n}\n"
}
' "$raw" >"$out"

echo "wrote $out"

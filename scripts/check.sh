#!/bin/sh
# check.sh — the same gate as `make check`, for environments without make:
# formatting, static analysis, build, and the race-enabled test suite.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
out=$(gofmt -l .)
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "OK"

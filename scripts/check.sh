#!/bin/sh
# check.sh — the same gate as `make check`, for environments without make:
# formatting, static analysis, build, the race-enabled test suite, a fuzz
# smoke pass over the codec round-trip targets, and per-package coverage
# floors on the layers the tracing work leans on.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
out=$(gofmt -l .)
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== repolint =="
go run ./cmd/repolint ./...

echo "== repolint JSON gate (valid JSONL, zero findings) =="
# The machine-readable mode must emit only parseable JSON lines — and on a
# clean tree, none at all.
jout=$(go run ./cmd/repolint -json ./...)
if [ -n "$jout" ]; then
	echo "repolint -json reported findings on a clean tree:"
	echo "$jout"
	exit 1
fi
echo "repolint -json: clean"

echo "== repolint negative control (seeded fixture must fail) =="
# A gate that cannot fail is no gate: pointing repolint at a deliberately
# broken fixture package must produce findings and exit nonzero.
if go run ./cmd/repolint -checks lockguard ./internal/lint/testdata/lockguard >/dev/null 2>&1; then
	echo "repolint passed the seeded lockguard fixture; the gate is not detecting findings"
	exit 1
fi
echo "repolint correctly rejects the seeded fixture"

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== smoke bench (1 iteration per benchmark) =="
# One untimed pass over the root benchmark suite: catches benchmarks that
# panic, allocate unexpectedly, or regress API without paying for a real
# measurement run (scripts/bench.sh does that).
go test -run '^$' -bench . -benchtime 1x -short .

echo "== bench compare smoke (guarded benchmarks vs BENCH_PR6.json) =="
# A quick timed pass over just the regression-guarded benchmarks, compared
# against the committed snapshot with a loose tolerance: catches gross
# perf regressions (2x-style) without the noise sensitivity of the tight
# 15% gate that perf PRs run via scripts/bench.sh --compare.
bdir=$(mktemp -d)
BENCH_TIME=200ms BENCH_FILTER='BenchmarkStreamingPreview$|BenchmarkReconAlgorithms/^fbp$' \
	BENCH_COMPARE_PCT=${BENCH_COMPARE_PCT:-60} \
	scripts/bench.sh --compare BENCH_PR6.json "$bdir/bench_smoke.json"
rm -rf "$bdir"

echo "== obslog determinism (two campaign runs, byte-identical journals) =="
# The event journal is stamped purely from the sim clock, so two runs of
# the same seeded campaign must dump byte-identical JSONL timelines.
jdir=$(mktemp -d)
trap 'rm -rf "$jdir"' EXIT
go run ./cmd/flowserver -oneshot -scans 15 -journal "$jdir/a.jsonl" >/dev/null 2>&1
go run ./cmd/flowserver -oneshot -scans 15 -journal "$jdir/b.jsonl" >/dev/null 2>&1
if ! cmp -s "$jdir/a.jsonl" "$jdir/b.jsonl"; then
	echo "journal dumps differ between identical campaign runs"
	exit 1
fi
if ! [ -s "$jdir/a.jsonl" ]; then
	echo "journal dump is empty"
	exit 1
fi
echo "journals identical ($(wc -l <"$jdir/a.jsonl") events)"

echo "== sched determinism (two seeded campaigns, byte-identical decision streams) =="
# The multi-tenant campaign scheduler runs entirely on the sim clock, so
# two seeded campaigns must journal byte-identical timelines — including
# the admission decisions (defer and shed events) the burst provokes.
go run ./cmd/flowserver -oneshot -scans 5 -sched-journal "$jdir/s1.jsonl" >/dev/null 2>&1
go run ./cmd/flowserver -oneshot -scans 5 -sched-journal "$jdir/s2.jsonl" >/dev/null 2>&1
if ! cmp -s "$jdir/s1.jsonl" "$jdir/s2.jsonl"; then
	echo "sched journal dumps differ between identical campaign runs"
	exit 1
fi
if ! grep -q '"run shed"' "$jdir/s1.jsonl" || ! grep -q '"run deferred"' "$jdir/s1.jsonl"; then
	echo "sched journal lacks shed/defer decisions"
	exit 1
fi
echo "sched journals identical ($(wc -l <"$jdir/s1.jsonl") events, incl. shed/defer)"

echo "== telemetry determinism (two seeded runs, byte-identical verdict timelines) =="
# The telemetry plane samples, scores, and probes purely on the sim
# clock, so two seeded brownout replays must dump byte-identical verdict
# timelines ending in the same probe-series digest.
go run ./cmd/flowserver -oneshot -scenario internal/scenario/testdata/facility_brownout.yaml \
	-telemetry-journal "$jdir/t1.jsonl" >/dev/null 2>&1
go run ./cmd/flowserver -oneshot -scenario internal/scenario/testdata/facility_brownout.yaml \
	-telemetry-journal "$jdir/t2.jsonl" >/dev/null 2>&1
if ! cmp -s "$jdir/t1.jsonl" "$jdir/t2.jsonl"; then
	echo "telemetry timelines differ between identical seeded runs"
	exit 1
fi
if ! grep -q '"to":"down"' "$jdir/t1.jsonl" || ! grep -q '"probe_digest"' "$jdir/t1.jsonl"; then
	echo "telemetry timeline lacks the brownout verdict walk or probe digest"
	exit 1
fi
echo "telemetry timelines identical ($(wc -l <"$jdir/t1.jsonl") lines, incl. down verdict + probe digest)"

echo "== scenario goldens (full seed corpus, seeded replay vs golden) =="
# Every spec in the seed corpus must replay deterministically (two fresh
# runs byte-identical), match its recorded golden outcome, and pass its
# own declared expectations.
go run ./cmd/scenario verify

echo "== scenario determinism (same spec twice, byte-identical outcomes) =="
go run ./cmd/scenario run internal/scenario/testdata/sfapi_outage.yaml >"$jdir/o1.json"
go run ./cmd/scenario run internal/scenario/testdata/sfapi_outage.yaml >"$jdir/o2.json"
if ! cmp -s "$jdir/o1.json" "$jdir/o2.json"; then
	echo "scenario outcomes differ between identical runs"
	exit 1
fi
echo "scenario outcomes identical ($(wc -c <"$jdir/o1.json") bytes)"

echo "== scenario flake guard (-count=2) =="
go test -run . -count=2 ./internal/scenario >/dev/null
echo "internal/scenario stable across two consecutive runs"

echo "== fuzz smoke (5s per target) =="
go test -run '^$' -fuzz '^FuzzDXFileRoundTrip$' -fuzztime 5s ./internal/dxfile
go test -run '^$' -fuzz '^FuzzTIFFRoundTrip$' -fuzztime 5s ./internal/tiff
go test -run '^$' -fuzz '^FuzzScenarioSpec$' -fuzztime 5s ./internal/scenario

echo "== coverage floors =="
# floor() fails the gate when a package's statement coverage drops below
# its floor — the regression guard for the instrumented layers.
floor() {
	pkg=$1
	min=$2
	pct=$(go test -cover "$pkg" | awk '{for (i=1;i<=NF;i++) if ($i ~ /%$/) {sub(/%/,"",$i); print $i}}')
	if [ -z "$pct" ]; then
		echo "no coverage reported for $pkg"
		exit 1
	fi
	ok=$(awk -v p="$pct" -v m="$min" 'BEGIN{print (p>=m) ? 1 : 0}')
	if [ "$ok" != 1 ]; then
		echo "coverage for $pkg is ${pct}%, below the ${min}% floor"
		exit 1
	fi
	echo "coverage $pkg: ${pct}% (floor ${min}%)"
}
floor ./internal/trace 90
floor ./internal/faults 90
floor ./internal/flow 85
floor ./internal/lint 90
floor ./internal/leakcheck 85
floor ./internal/obslog 85
floor ./internal/slo 90
floor ./internal/monitor 90
floor ./internal/sched 85
floor ./internal/scenario 85
floor ./internal/telemetry 85

echo "OK"

// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation section, plus the ablations
// DESIGN.md calls out. Facility-scale artifacts (Table 2, lifecycle,
// speedup, prune incident) run on the discrete-event kernel, so each
// iteration replays the full campaign deterministically; compute-kernel
// benchmarks (streaming preview, reconstruction algorithms) measure real
// CPU work at laptop scale.
//
//	go test -bench=. -benchmem
package repro

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/phantom"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/tomo"
	"repro/internal/vol"
)

var epoch = time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)

// BenchmarkTable2FlowRuns replays the 100-scan production campaign behind
// the paper's Table 2 and reports the per-flow medians as custom metrics.
func BenchmarkTable2FlowRuns(b *testing.B) {
	var last *core.Table2Result
	for i := 0; i < b.N; i++ {
		bl := core.NewBeamline(epoch, core.DefaultSimConfig())
		last = bl.RunProductionCampaign(nil, 100, 100)
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.Summary.Median, row.Flow+"_median_s")
		b.ReportMetric(row.Summary.Mean, row.Flow+"_mean_s")
	}
	b.ReportMetric(last.Streaming.Median, "streaming_median_s")
}

// BenchmarkStreamingPreview runs the real streaming-branch compute path —
// in-memory cache → FBP preview — on a laptop-scale scan and reports the
// achieved preview latency; the paper's 4-GPU node does the same for
// ~20 GB scans in 7–8 s.
func BenchmarkStreamingPreview(b *testing.B) {
	truth := phantom.SheppLogan3D(64, 16)
	ps := tomo.ProjectVolume(truth, tomo.UniformAngles(128), 64)
	b.ResetTimer()
	var lat time.Duration
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, _, _, err := tomo.QuickPreview(context.Background(), ps, tomo.ReconOptions{
			Filter: tomo.SheppLoganFilter,
		}); err != nil {
			b.Fatal(err)
		}
		lat = time.Since(t0)
	}
	b.ReportMetric(lat.Seconds()*1000, "preview_ms")
}

// BenchmarkIncrementalPreview measures what the streaming branch actually
// waits for once reconstruction is incremental: the cost of folding in
// the FINAL projection frame plus finalizing the three preview slices.
// The first N−1 frames are accumulated outside the timer (their cost is
// hidden behind acquisition — each frame arrives seconds apart at the
// detector), so ns/op here is directly comparable to StreamingPreview's
// ns/op, which pays the whole reconstruction after the last frame.
func BenchmarkIncrementalPreview(b *testing.B) {
	truth := phantom.SheppLogan3D(64, 16)
	theta := tomo.UniformAngles(128)
	ps := tomo.ProjectVolume(truth, theta, 64)
	ip, err := tomo.NewIncrementalPreview(ps.NRows, ps.NCols, 0, tomo.SheppLoganFilter)
	if err != nil {
		b.Fatal(err)
	}
	for a := 0; a < ps.NAngles-1; a++ {
		ip.AddProjection(theta[a], ps.Projection(a))
	}
	last := ps.NAngles - 1
	b.ResetTimer()
	var lat time.Duration
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		ip.AddProjection(theta[last], ps.Projection(last))
		if _, _, _, err := ip.Finalize(); err != nil {
			b.Fatal(err)
		}
		lat = time.Since(t0)
	}
	b.ReportMetric(lat.Seconds()*1000, "last_frame_ms")
}

// BenchmarkStreamingLatencyModel sweeps the simulated GPU-node latency
// model across scan sizes (the §5.2 figure) and reports the 20 GB point.
func BenchmarkStreamingLatencyModel(b *testing.B) {
	var pts []core.StreamingSweepPoint
	for i := 0; i < b.N; i++ {
		pts = core.RunStreamingSweep(epoch, []float64{1, 5, 10, 20, 30})
	}
	b.ReportMetric(pts[3].Latency.Seconds(), "preview_20GB_s")
}

// BenchmarkDataLifecycle replays a four-hour shift at peak cadence (the
// Fig. 3 / §4.3 numbers) and reports scans/hour and TB/day.
func BenchmarkDataLifecycle(b *testing.B) {
	var res *core.LifecycleResult
	for i := 0; i < b.N; i++ {
		bl := core.NewBeamline(epoch, core.DefaultSimConfig())
		res = bl.RunLifecycle(4*time.Hour, 4*time.Minute)
	}
	b.ReportMetric(res.ScansPerHour, "scans_per_hour")
	b.ReportMetric(res.DailyBytes/1e12, "TB_per_day")
}

// BenchmarkHistoricalBaseline measures the §5.1 time-to-insight comparison
// (45 min save + 60 min single-slice reconstruction historically).
func BenchmarkHistoricalBaseline(b *testing.B) {
	var res *core.SpeedupResult
	for i := 0; i < b.N; i++ {
		bl := core.NewBeamline(epoch, core.DefaultSimConfig())
		res = bl.RunSpeedup()
	}
	b.ReportMetric(res.SpeedupPreview, "preview_speedup_x")
	b.ReportMetric(res.SpeedupVolume, "volume_speedup_x")
}

// BenchmarkPruneIncident replays the §5.3 prune-burst incident, legacy vs
// fail-early, and reports the drain-time improvement.
func BenchmarkPruneIncident(b *testing.B) {
	var res *core.PruneIncidentResult
	for i := 0; i < b.N; i++ {
		res = core.RunPruneIncident(epoch, 24, 4, 0.5)
	}
	b.ReportMetric(res.LegacyMakespan.Seconds(), "legacy_drain_s")
	b.ReportMetric(res.FixedMakespan.Seconds(), "failfast_drain_s")
}

// BenchmarkReconAlgorithms is ablation A1: quality vs cost across the
// algorithm menu, explaining why the streaming branch uses FBP and the
// file branch can afford gridrec/iterative methods.
func BenchmarkReconAlgorithms(b *testing.B) {
	truth := phantom.SheppLogan(64)
	sino := tomo.Project(truth, tomo.UniformAngles(128), 64)
	noisy := sino.Clone()
	// Mild Poisson-like noise in the line integrals.
	acq := tomo.Acquire(phantom.SheppLogan3D(64, 1), tomo.UniformAngles(128), 64,
		tomo.AcquireOptions{I0: 1e4, Seed: 3})
	noisyLI := tomo.MinusLog(tomo.Normalize(acq.Raw, acq.Flat, acq.Dark))
	noisy = noisyLI.SinogramForRow(0)

	// sirt10 exists because sirt50 completes only a couple of iterations
	// per benchtime window — its ns/op is 2-sample noise. sirt10 gives a
	// stable per-iteration figure while sirt50 stays as the headline
	// number the BENCH snapshots track. The _f32 variants run the same
	// solvers on the single-precision kernel tier.
	cases := []struct {
		name string
		opts tomo.ReconOptions
	}{
		{"fbp", tomo.ReconOptions{Algorithm: tomo.AlgFBP, Filter: tomo.SheppLoganFilter}},
		{"gridrec", tomo.ReconOptions{Algorithm: tomo.AlgGridrec}},
		{"sirt50", tomo.ReconOptions{Algorithm: tomo.AlgSIRT, Iterations: 50}},
		{"sart5", tomo.ReconOptions{Algorithm: tomo.AlgSART, Iterations: 5}},
		{"sirt10", tomo.ReconOptions{Algorithm: tomo.AlgSIRT, Iterations: 10}},
		{"fbp_f32", tomo.ReconOptions{Algorithm: tomo.AlgFBP, Filter: tomo.SheppLoganFilter, Precision: tomo.Float32}},
		{"sirt50_f32", tomo.ReconOptions{Algorithm: tomo.AlgSIRT, Iterations: 50, Precision: tomo.Float32}},
		{"sirt10_f32", tomo.ReconOptions{Algorithm: tomo.AlgSIRT, Iterations: 10, Precision: tomo.Float32}},
		{"sart5_f32", tomo.ReconOptions{Algorithm: tomo.AlgSART, Iterations: 5, Precision: tomo.Float32}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			// Steady-state plan API: the plan and scratch are built once
			// per volume in production, so they sit outside the timed
			// loop; the loop measures the per-slice reconstruction alone.
			plan, err := tomo.PlanRecon(noisy.Theta, noisy.NCols, tc.opts)
			if err != nil {
				b.Fatal(err)
			}
			sc := plan.NewScratch()
			rec := vol.NewImage(plan.Size, plan.Size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := plan.ReconstructInto(rec, noisy, sc); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(circleRMSE(rec.Pix, truth.Pix, 64), "rmse")
		})
	}
}

func circleRMSE(a, b []float64, n int) float64 {
	var xs, ys []float64
	for py := 0; py < n; py++ {
		y := -1 + (2*float64(py)+1)/float64(n)
		for px := 0; px < n; px++ {
			x := -1 + (2*float64(px)+1)/float64(n)
			if x*x+y*y <= 0.9 {
				xs = append(xs, a[py*n+px])
				ys = append(ys, b[py*n+px])
			}
		}
	}
	return stats.RMSE(xs, ys)
}

// BenchmarkDualPathAblation is ablation A2: first-feedback latency with
// and without the streaming branch.
func BenchmarkDualPathAblation(b *testing.B) {
	var stream, file time.Duration
	for i := 0; i < b.N; i++ {
		bl := core.NewBeamline(epoch, core.DefaultSimConfig())
		res := bl.RunSpeedup()
		stream = res.StreamingNow
		file = res.FileBranchNow
	}
	b.ReportMetric(stream.Seconds(), "streaming_feedback_s")
	b.ReportMetric(file.Seconds(), "fileonly_feedback_s")
}

// BenchmarkFullPipelineRealData runs the complete laptop-scale file branch
// (acquire → DXchange → reconstruct → Zarr) end to end with real data.
func BenchmarkFullPipelineRealData(b *testing.B) {
	truth := phantom.SheppLogan3D(48, 8)
	theta := tomo.UniformAngles(64)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunScanPipeline(context.Background(),
			fmt.Sprintf("bench-%d", i), truth, theta,
			tomo.AcquireOptions{I0: 2e4, Seed: int64(i)},
			core.PipelineOptions{WorkDir: dir,
				Recon: tomo.ReconOptions{Algorithm: tomo.AlgFBP, Filter: tomo.Hann}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContentionPolicy quantifies the §6 shared-vs-reserved GPU
// policy discussion: budget compliance for 8 beamlines on a 4-GPU pool.
func BenchmarkContentionPolicy(b *testing.B) {
	var shared, reserved *core.ContentionResult
	for i := 0; i < b.N; i++ {
		shared = core.RunStreamingContention(epoch, 8, 4, 8, 20*time.Second, false)
		reserved = core.RunStreamingContention(epoch, 8, 4, 8, 20*time.Second, true)
	}
	b.ReportMetric(shared.Under10s*100, "shared_under10s_pct")
	b.ReportMetric(reserved.Under10s*100, "reserved_under10s_pct")
	b.ReportMetric(shared.Latency.Max, "shared_max_s")
}

// BenchmarkCampaignScheduler replays the multi-tenant campaign — four
// beamlines over the shared NERSC+ALCF pool under the fair-share,
// SLO-aware scheduler — and reports the three acceptance figures: pool
// scaling (runs/h at 1, 2, 4 workers over the same offered load),
// streaming protection under an injected reprocessing burst with
// admission control deferring and shedding file work, and fair-share
// tracking of the 3:2:2:1 weights at a mid-backlog checkpoint.
func BenchmarkCampaignScheduler(b *testing.B) {
	var w1, w2, w4, dev float64
	var res *core.CampaignResult
	for i := 0; i < b.N; i++ {
		// (a) worker-pool scaling over an identical backlogged load.
		scale := func(workers int) float64 {
			cfg := core.DefaultCampaignConfig()
			cfg.Workers = workers
			cfg.Reserved = 0
			cfg.ScanInterval = 20 * time.Minute
			cfg.Admission = sched.Admission{}
			return core.NewCampaign(epoch, cfg).Run(5).RunsPerHour
		}
		w1, w2, w4 = scale(1), scale(2), scale(4)

		// (b) admission under a reprocessing burst: hundreds of scans,
		// both facilities, streaming protected while file work sheds.
		cfg := core.DefaultCampaignConfig()
		cfg.BurstAt = 2 * time.Hour
		cfg.BurstScans = 20
		res = core.NewCampaign(epoch, cfg).Run(50)

		// (c) fair share measured while every file tenant is backlogged.
		fcfg := core.DefaultCampaignConfig()
		fcfg.Sim.StagingSlowProb = 0
		fcfg.Sim.RealtimeBusyProb = 0
		fcfg.Sim.NERSCReconFixed = time.Minute
		fcfg.Sim.NERSCReconRate = 1e9
		fcfg.Sim.ALCFReconFixed = time.Minute
		fcfg.Sim.ALCFReconRate = 1e9
		fcfg.Workers = 2
		fcfg.Reserved = 1
		fcfg.ScanInterval = time.Minute
		fcfg.Admission = sched.Admission{}
		fc := core.NewCampaign(epoch, fcfg)
		fc.Launch(60)
		fc.Base.Engine.RunUntil(epoch.Add(9 * time.Hour))
		dev = core.FileShareDeviation(fc.Sched.Snapshot())
		fc.Base.Engine.Run()
	}
	b.ReportMetric(w1, "runs_per_hour_w1")
	b.ReportMetric(w2, "runs_per_hour_w2")
	b.ReportMetric(w4, "runs_per_hour_w4")
	b.ReportMetric(float64(res.Scans), "scans")
	b.ReportMetric(res.StreamingUnder10sPct, "reserved_under10s_pct")
	b.ReportMetric(float64(res.Deferred), "deferred_runs")
	b.ReportMetric(float64(res.Shed), "shed_runs")
	b.ReportMetric(dev, "fairshare_dev_pct")
}

// BenchmarkPreprocessAblation (A3) measures what the file branch's
// preprocessing chain buys: FBP quality on detector-realistic data (gain
// rings + zingers) with and without ring/outlier correction.
func BenchmarkPreprocessAblation(b *testing.B) {
	truth := phantom.SheppLogan3D(64, 1)
	acq := tomo.Acquire(truth, tomo.UniformAngles(128), 64, tomo.AcquireOptions{
		I0: 1e4, GainVariation: 0.04, DarkLevel: 40, ZingerProb: 5e-4, ZingerScale: 5, Seed: 6,
	})
	norm := tomo.Normalize(acq.Raw, acq.Flat, acq.Dark)
	sino := norm.SinogramForRow(0)
	ref := truth.Slice(0)

	cases := []struct {
		name string
		pre  tomo.PreprocessOptions
	}{
		{"raw", tomo.PreprocessOptions{}},
		{"preprocessed", tomo.PreprocessOptions{OutlierThreshold: 0.15, RingWindow: 9}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var rmse float64
			for i := 0; i < b.N; i++ {
				work := tomo.MinusLogSinogram(sino)
				if tc.pre != (tomo.PreprocessOptions{}) {
					work = tomo.Preprocess(sino, tc.pre)
				}
				rec := tomo.FBP(work, tomo.FBPOptions{Filter: tomo.SheppLoganFilter})
				rmse = circleRMSE(rec.Pix, ref.Pix, 64)
			}
			b.ReportMetric(rmse, "rmse")
		})
	}
}

GO ?= go

.PHONY: check fmt vet lint build test race bench

# check is the full gate: formatting, static analysis (vet + the repo's
# own analyzers), build, and the race-enabled test suite. CI and
# pre-commit both run this one target.
check: fmt vet lint build race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# lint runs the project-specific analyzers (simclock, wrapcheck,
# ctxfirst, testsleep); see `go run ./cmd/repolint -list`.
lint:
	$(GO) run ./cmd/repolint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench snapshots the root benchmark suite to a JSON file; see
# scripts/bench.sh for the BENCH_TIME/BENCH_FILTER/BENCH_LABEL knobs.
bench:
	sh scripts/bench.sh

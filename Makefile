GO ?= go

.PHONY: check fmt vet build test race

# check is the full gate: formatting, static analysis, build, and the
# race-enabled test suite. CI and pre-commit both run this one target.
check: fmt vet build race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

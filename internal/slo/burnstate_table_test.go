package slo

import (
	"context"
	"testing"
	"time"
)

// TestBurnStateEdges pins BurnState's edge behaviour with a hand-driven
// clock: the minimum-sample gate, the >= threshold comparison, the
// zero-threshold opt-out, the Goal=1 budget floor, the burn-window cut
// boundary, and the latched firing flag resolving only on Record.
func TestBurnStateEdges(t *testing.T) {
	epoch := time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)
	obj := func(mutate func(*Objective)) Objective {
		o := Objective{
			Name:          "edge",
			Source:        "src:edge",
			Target:        time.Minute,
			Goal:          0.5, // budget 0.5: burn = missRate * 2
			Window:        time.Hour,
			BurnWindow:    10 * time.Minute,
			BurnThreshold: 2,
		}
		if mutate != nil {
			mutate(&o)
		}
		return o
	}
	// Each step records one sample (met or missed) and advances the clock.
	type step struct {
		met     bool
		advance time.Duration
	}
	cases := []struct {
		name     string
		obj      Objective
		steps    []step
		settle   time.Duration // extra clock advance before reading
		wantRate float64
		wantFire bool
	}{
		{
			// One miss is a 100% miss rate, burn 2 ≥ threshold 2 — but a
			// single sample is below minBurnSamples, so no alert.
			name: "single sample never fires",
			obj:  obj(nil),
			steps: []step{
				{met: false},
			},
			wantRate: 2, wantFire: false,
		},
		{
			// The second miss crosses the sample gate; burn == threshold
			// fires (>=, not >).
			name: "fires at exactly threshold",
			obj:  obj(func(o *Objective) { o.BurnThreshold = 2 }),
			steps: []step{
				{met: false, advance: time.Minute},
				{met: false},
			},
			wantRate: 2, wantFire: true,
		},
		{
			// Burn just under the threshold: 1 miss / 2 samples = burn 1.
			name: "under threshold",
			obj:  obj(nil),
			steps: []step{
				{met: true, advance: time.Minute},
				{met: false},
			},
			wantRate: 1, wantFire: false,
		},
		{
			// BurnThreshold 0 disables alerting entirely, even at 100% miss.
			name: "zero threshold never fires",
			obj:  obj(func(o *Objective) { o.BurnThreshold = 0 }),
			steps: []step{
				{met: false, advance: time.Minute},
				{met: false, advance: time.Minute},
				{met: false},
			},
			wantRate: 2, wantFire: false,
		},
		{
			// Goal 1.0 floors the budget at 1e-9 instead of dividing by
			// zero: one miss among successes produces an astronomical rate.
			name: "goal one budget floor",
			obj:  obj(func(o *Objective) { o.Goal = 1 }),
			steps: []step{
				{met: true, advance: time.Minute},
				{met: false},
			},
			wantRate: 0.5 / 1e-9, wantFire: true,
		},
		{
			// A miss exactly at the burn-window cut still counts (the prune
			// is strictly-before); one step later it ages out.
			name: "miss exactly at window edge counts",
			obj:  obj(nil),
			steps: []step{
				{met: false, advance: 5 * time.Minute},
				{met: false},
			},
			settle:   5 * time.Minute, // first miss now exactly at now-BurnWindow
			wantRate: 2, wantFire: true,
		},
		{
			// Past the cut the samples vanish and the live rate reads 0 —
			// but the firing flag stays latched until the next Record.
			name: "latched firing outlives the window",
			obj:  obj(nil),
			steps: []step{
				{met: false, advance: time.Minute},
				{met: false},
			},
			settle:   time.Hour,
			wantRate: 0, wantFire: true,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			clock := &tickClock{now: epoch}
			e := NewEngine(clock, nil, tc.obj)
			ctx := context.Background()
			for _, st := range tc.steps {
				e.Record(ctx, tc.obj.Source, tc.obj.Target+hitOrMiss(st.met), st.met)
				clock.now = clock.now.Add(st.advance)
			}
			clock.now = clock.now.Add(tc.settle)
			rate, firing := e.BurnState(tc.obj.Name)
			if !close2(rate, tc.wantRate) || firing != tc.wantFire {
				t.Fatalf("rate=%g firing=%v, want %g/%v", rate, firing, tc.wantRate, tc.wantFire)
			}
		})
	}
}

// hitOrMiss makes the recorded duration consistent with the met flag so
// the sample would classify the same way from its latency alone.
func hitOrMiss(met bool) time.Duration {
	if met {
		return -time.Second
	}
	return time.Hour
}

func close2(a, b float64) bool {
	if b == 0 {
		return a == 0
	}
	d := a/b - 1
	return d > -1e-6 && d < 1e-6
}

// TestBurnStateResolveOnRecord verifies the latched alert resolves only
// when a Record re-evaluates the rule, and that both transitions land in
// the alert history in order.
func TestBurnStateResolveOnRecord(t *testing.T) {
	clock := &tickClock{now: time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)}
	o := Objective{
		Name: "r", Source: "src:r", Target: time.Minute,
		Goal: 0.5, Window: time.Hour, BurnWindow: 10 * time.Minute, BurnThreshold: 2,
	}
	e := NewEngine(clock, nil, o)
	ctx := context.Background()

	e.Record(ctx, "src:r", time.Hour, false)
	clock.now = clock.now.Add(time.Minute)
	e.Record(ctx, "src:r", time.Hour, false)
	if _, firing := e.BurnState("r"); !firing {
		t.Fatal("two misses over budget did not fire")
	}

	// The misses age out; the latch holds until the next sample.
	clock.now = clock.now.Add(time.Hour)
	if _, firing := e.BurnState("r"); !firing {
		t.Fatal("latch released without a Record")
	}
	e.Record(ctx, "src:r", time.Second, true)
	clock.now = clock.now.Add(time.Minute)
	e.Record(ctx, "src:r", time.Second, true)
	if rate, firing := e.BurnState("r"); firing || rate != 0 {
		t.Fatalf("after recovery: rate=%g firing=%v, want 0,false", rate, firing)
	}

	alerts := e.Alerts()
	if len(alerts) != 2 || alerts[0].State != "firing" || alerts[1].State != "resolved" {
		t.Fatalf("alert history = %+v, want firing then resolved", alerts)
	}
	if !alerts[1].Time.After(alerts[0].Time) {
		t.Fatalf("alert times out of order: %+v", alerts)
	}
}

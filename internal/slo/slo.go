// Package slo judges the latency signals the rest of the observability
// layer only records. It encodes the paper's operational promises as
// objectives — a three-slice streaming preview in under 10 s, the
// file-based branch end to end in under 30 min, checksum-verified
// transfer success — and computes rolling-window attainment, error
// budgets, and burn rates from flow completions as they happen.
//
// The engine is clock-injected like everything else in the repo: fed
// from the discrete-event kernel it produces deterministic reports, fed
// from the wall clock it monitors the live services. When an objective's
// error budget burns faster than its threshold the engine fires an alert
// event into the obslog journal, so the operator timeline shows the
// budget violation next to the retries and faults that caused it.
package slo

import (
	"context"
	"sync"
	"time"

	"repro/internal/obslog"
)

// Clock supplies sample timestamps; flow.Env and sim.Engine satisfy it.
type Clock interface {
	Now() time.Time
}

// Objective is one service-level objective: a latency target (or pure
// success-rate target when Target is zero) over a named signal source.
type Objective struct {
	// Name identifies the objective in reports and alerts.
	Name string `json:"name"`
	// Source selects the samples the objective judges: "flow:<name>"
	// matches completions of that flow, "transfer" matches transfer tasks.
	Source string `json:"source"`
	// Description says what the objective promises, for the report.
	Description string `json:"description"`
	// Target is the latency bound a sample must meet; 0 means the
	// objective only judges success/failure.
	Target time.Duration `json:"target_ns"`
	// Goal is the attainment goal in (0, 1): the fraction of samples that
	// must meet the target over the window.
	Goal float64 `json:"goal"`
	// Window is the rolling attainment window.
	Window time.Duration `json:"window_ns"`
	// BurnWindow is the short window burn-rate alerting evaluates.
	BurnWindow time.Duration `json:"burn_window_ns"`
	// BurnThreshold fires the alert when the burn rate (miss rate over
	// BurnWindow divided by the error budget 1-Goal) reaches it. A burn
	// rate of 1 consumes exactly the budget; thresholds of 2-10 catch
	// budgets burning faster than they can recover.
	BurnThreshold float64 `json:"burn_threshold"`
}

// PaperObjectives returns the objectives encoding the paper's headline
// targets (§1, §4.3): streaming preview under 10 s, the file-based
// branch under 30 min, and checksum-verified transfer success.
func PaperObjectives() []Objective {
	return []Objective{
		{
			Name:          "streaming_preview",
			Source:        "flow:streaming_recon",
			Description:   "three-slice streaming preview ready within 10 s of acquisition",
			Target:        10 * time.Second,
			Goal:          0.95,
			Window:        2 * time.Hour,
			BurnWindow:    20 * time.Minute,
			BurnThreshold: 2,
		},
		{
			Name:          "file_branch",
			Source:        "flow:nersc_recon_flow",
			Description:   "file-based reconstruction branch end to end within 30 min",
			Target:        30 * time.Minute,
			Goal:          0.90,
			Window:        8 * time.Hour,
			BurnWindow:    time.Hour,
			BurnThreshold: 2,
		},
		{
			Name:          "transfer_success",
			Source:        "transfer",
			Description:   "checksum-verified transfer task success rate",
			Goal:          0.95,
			Window:        4 * time.Hour,
			BurnWindow:    30 * time.Minute,
			BurnThreshold: 2,
		},
	}
}

// sample is one judged observation.
type sample struct {
	t   time.Time
	met bool
}

// Alert is one burn-rate alert transition.
type Alert struct {
	Time      time.Time `json:"t"`
	Objective string    `json:"objective"`
	// State is "firing" or "resolved".
	State    string  `json:"state"`
	BurnRate float64 `json:"burn_rate"`
}

// minBurnSamples is how many samples the burn window needs before the
// alert rule may fire — a single failed run is a data point, not a trend.
const minBurnSamples = 2

// Engine accumulates samples per objective and evaluates attainment,
// error budgets, and burn-rate alerts. All methods are safe for
// concurrent use; a nil engine drops everything.
type Engine struct {
	mu      sync.Mutex
	clock   Clock
	journal *obslog.Journal
	objs    []Objective         // guarded by mu
	samples map[string][]sample // guarded by mu
	firing  map[string]bool     // guarded by mu
	alerts  []Alert             // guarded by mu
}

// NewEngine creates an engine judging objs, stamping samples through
// clock and firing alert events into journal (nil journal: alerts are
// still recorded, just not journaled).
func NewEngine(clock Clock, journal *obslog.Journal, objs ...Objective) *Engine {
	return &Engine{
		clock:   clock,
		journal: journal,
		objs:    objs,
		samples: map[string][]sample{},
		firing:  map[string]bool{},
	}
}

// AddObjectives appends objectives to a live engine. The campaign layer
// uses this to graft scheduler end-to-end objectives onto a beamline's
// paper set without rebuilding the engine (and losing its samples).
func (e *Engine) AddObjectives(objs ...Objective) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.objs = append(e.objs, objs...)
}

// Record judges one observation from source against every matching
// objective: met means ok and, when the objective has a latency target,
// within it. ctx carries the run correlation for any alert event fired.
func (e *Engine) Record(ctx context.Context, source string, dur time.Duration, ok bool) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.clock.Now()
	for i := range e.objs {
		o := &e.objs[i]
		if o.Source != source {
			continue
		}
		met := ok && (o.Target == 0 || dur <= o.Target)
		kept := prune(e.samples[o.Name], now, o.Window)
		e.samples[o.Name] = append(kept, sample{t: now, met: met})
		e.evaluateLocked(ctx, o, now)
	}
}

// RunCompleted feeds a finished flow run into the engine; it satisfies
// flow's CompletionObserver structurally (slo does not import flow).
func (e *Engine) RunCompleted(ctx context.Context, flowName, outcome string, dur time.Duration) {
	e.Record(ctx, "flow:"+flowName, dur, outcome == "succeeded")
}

// prune drops samples older than window before now.
func prune(s []sample, now time.Time, window time.Duration) []sample {
	cut := now.Add(-window)
	i := 0
	for i < len(s) && !s[i].t.After(cut) {
		i++
	}
	return s[i:]
}

// missRate returns the fraction of samples at or after cut that missed,
// and how many samples that window held.
func missRate(s []sample, cut time.Time) (float64, int) {
	var n, miss int
	for i := len(s) - 1; i >= 0; i-- {
		if s[i].t.Before(cut) {
			break
		}
		n++
		if !s[i].met {
			miss++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return float64(miss) / float64(n), n
}

// budget returns the objective's error budget (1-Goal), floored so a
// misconfigured Goal of 1.0 degrades to huge burn rates instead of
// dividing by zero.
func (o *Objective) budget() float64 {
	b := 1 - o.Goal
	if b < 1e-9 {
		b = 1e-9
	}
	return b
}

// evaluateLocked re-checks the objective's burn-rate alert rule after a
// new sample. Transitions append to the alert history and journal an
// event carrying the run that tipped the budget.
func (e *Engine) evaluateLocked(ctx context.Context, o *Objective, now time.Time) {
	rate, n := missRate(e.samples[o.Name], now.Add(-o.BurnWindow))
	burn := rate / o.budget()
	firing := n >= minBurnSamples && o.BurnThreshold > 0 && burn >= o.BurnThreshold
	if firing == e.firing[o.Name] {
		return
	}
	e.firing[o.Name] = firing
	state := "resolved"
	level := obslog.LevelInfo
	msg := "burn rate recovered"
	if firing {
		state = "firing"
		level = obslog.LevelError
		msg = "error budget burning too fast"
	}
	e.alerts = append(e.alerts, Alert{Time: now, Objective: o.Name, State: state, BurnRate: burn})
	e.journal.Emit(ctx, level, "slo", msg,
		obslog.F("objective", o.Name),
		obslog.F("burn_rate", burn),
		obslog.F("threshold", o.BurnThreshold),
		obslog.F("burn_window", o.BurnWindow),
	)
}

// ObjectiveReport is one objective's rolling-window state.
type ObjectiveReport struct {
	Objective
	// Samples is how many observations the window holds.
	Samples int `json:"samples"`
	// Met is how many of them met the objective.
	Met int `json:"met"`
	// Attainment is Met/Samples (1 when the window is empty: an SLO with
	// no traffic has consumed no budget).
	Attainment float64 `json:"attainment"`
	// BudgetRemaining is the fraction of the error budget left; negative
	// means the budget is blown.
	BudgetRemaining float64 `json:"budget_remaining"`
	// BurnRate is the budget consumption speed over BurnWindow.
	BurnRate float64 `json:"burn_rate"`
	// Firing reports whether the burn-rate alert is active.
	Firing bool `json:"firing"`
}

// Report returns every objective's current state, in definition order.
func (e *Engine) Report() []ObjectiveReport {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.clock.Now()
	out := make([]ObjectiveReport, 0, len(e.objs))
	for i := range e.objs {
		o := e.objs[i]
		kept := prune(e.samples[o.Name], now, o.Window)
		e.samples[o.Name] = kept
		met := 0
		for _, s := range kept {
			if s.met {
				met++
			}
		}
		r := ObjectiveReport{Objective: o, Samples: len(kept), Met: met, Attainment: 1}
		if len(kept) > 0 {
			r.Attainment = float64(met) / float64(len(kept))
		}
		r.BudgetRemaining = 1 - (1-r.Attainment)/o.budget()
		rate, _ := missRate(kept, now.Add(-o.BurnWindow))
		r.BurnRate = rate / o.budget()
		r.Firing = e.firing[o.Name]
		out = append(out, r)
	}
	return out
}

// BurnState returns the named objective's current burn rate and whether
// its alert rule is firing, evaluated over the samples the window holds
// at the clock's current time. Unknown objectives (and a nil engine)
// report 0, false — callers keying admission control off an objective
// they did not configure fail open.
func (e *Engine) BurnState(name string) (rate float64, firing bool) {
	if e == nil {
		return 0, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.objs {
		o := &e.objs[i]
		if o.Name != name {
			continue
		}
		now := e.clock.Now()
		miss, _ := missRate(e.samples[o.Name], now.Add(-o.BurnWindow))
		return miss / o.budget(), e.firing[o.Name]
	}
	return 0, false
}

// Alerts returns the alert transition history, oldest first.
func (e *Engine) Alerts() []Alert {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Alert(nil), e.alerts...)
}

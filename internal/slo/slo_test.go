package slo

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/obslog"
)

// fakeClock is a manually advanced clock shared by engine and journal.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func previewObjective() Objective {
	return Objective{
		Name:          "streaming_preview",
		Source:        "flow:streaming_recon",
		Target:        10 * time.Second,
		Goal:          0.95,
		Window:        2 * time.Hour,
		BurnWindow:    20 * time.Minute,
		BurnThreshold: 2,
	}
}

func TestAttainmentAndBudget(t *testing.T) {
	clk := newFakeClock()
	e := NewEngine(clk, nil, previewObjective())
	ctx := context.Background()

	for i := 0; i < 9; i++ {
		e.Record(ctx, "flow:streaming_recon", 5*time.Second, true)
		clk.advance(time.Minute)
	}
	e.Record(ctx, "flow:streaming_recon", 15*time.Second, true) // met=false: over target
	clk.advance(time.Minute)

	r := e.Report()[0]
	if r.Samples != 10 || r.Met != 9 {
		t.Fatalf("samples=%d met=%d, want 10/9", r.Samples, r.Met)
	}
	if r.Attainment != 0.9 {
		t.Fatalf("attainment = %v, want 0.9", r.Attainment)
	}
	// 10% missing against a 5% budget: budget remaining 1 - 0.1/0.05 = -1.
	if got := r.BudgetRemaining; got < -1.0001 || got > -0.9999 {
		t.Fatalf("budget remaining = %v, want -1", got)
	}
	// Ignored source leaves the objective untouched.
	e.Record(ctx, "flow:other", time.Second, false)
	if got := e.Report()[0].Samples; got != 10 {
		t.Fatalf("unrelated source changed samples: %d", got)
	}
}

func TestWindowPruning(t *testing.T) {
	clk := newFakeClock()
	e := NewEngine(clk, nil, previewObjective())
	ctx := context.Background()
	e.Record(ctx, "flow:streaming_recon", time.Second, true)
	clk.advance(3 * time.Hour) // past the 2h window
	e.Record(ctx, "flow:streaming_recon", time.Second, true)
	if got := e.Report()[0].Samples; got != 1 {
		t.Fatalf("samples = %d after window expiry, want 1", got)
	}
}

func TestEmptyWindowConsumesNoBudget(t *testing.T) {
	e := NewEngine(newFakeClock(), nil, previewObjective())
	r := e.Report()[0]
	if r.Attainment != 1 || r.BudgetRemaining != 1 || r.Firing {
		t.Fatalf("idle objective report %+v, want full budget and no alert", r)
	}
}

func TestBurnRateAlertFiresAndResolves(t *testing.T) {
	clk := newFakeClock()
	j := obslog.New(clk, 64)
	e := NewEngine(clk, j, previewObjective())
	ctx := obslog.WithRun(context.Background(), 42)

	e.Record(ctx, "flow:streaming_recon", time.Second, true)
	clk.advance(time.Minute)
	e.Record(ctx, "flow:streaming_recon", time.Second, true)
	clk.advance(time.Minute)
	if e.Report()[0].Firing {
		t.Fatal("alert firing before any miss")
	}
	alertsBefore := len(e.Alerts())

	// Injected latency: every preview now takes a minute, six times the
	// 10 s target. Miss rate over the burn window climbs toward 1, burn
	// rate toward 1/0.05 = 20, crossing the threshold of 2 → alert fires.
	for i := 0; i < 25; i++ {
		e.Record(ctx, "flow:streaming_recon", time.Minute, true)
		clk.advance(time.Minute)
	}
	r := e.Report()[0]
	if !r.Firing {
		t.Fatalf("alert not firing: %+v", r)
	}
	if r.BurnRate < 2 {
		t.Fatalf("burn rate %v under threshold yet firing", r.BurnRate)
	}
	alerts := e.Alerts()
	if len(alerts) != alertsBefore+1 || alerts[len(alerts)-1].State != "firing" {
		t.Fatalf("alert history %+v, want one new firing transition", alerts)
	}
	ev := j.Events(obslog.Filter{Component: "slo", MinLevel: obslog.LevelError})
	if len(ev) != 1 {
		t.Fatalf("%d journaled alert events, want 1", len(ev))
	}
	if ev[0].Run != 42 {
		t.Fatalf("alert event run = %d, want 42 (the run that tipped the budget)", ev[0].Run)
	}

	// Recovery: fast runs push the miss rate back under the threshold.
	for i := 0; i < 60; i++ {
		e.Record(ctx, "flow:streaming_recon", time.Second, true)
		clk.advance(time.Minute)
	}
	if e.Report()[0].Firing {
		t.Fatal("alert still firing after recovery")
	}
	alerts = e.Alerts()
	if alerts[len(alerts)-1].State != "resolved" {
		t.Fatalf("last alert transition %+v, want resolved", alerts[len(alerts)-1])
	}
	resolved := j.Events(obslog.Filter{Component: "slo", MinLevel: obslog.LevelInfo})
	if len(resolved) != 2 {
		t.Fatalf("%d journaled slo events, want firing+resolved", len(resolved))
	}
}

func TestSingleMissDoesNotAlert(t *testing.T) {
	clk := newFakeClock()
	e := NewEngine(clk, nil, previewObjective())
	// One miss as the only sample in the burn window: below minBurnSamples.
	e.Record(context.Background(), "flow:streaming_recon", time.Minute, true)
	if e.Report()[0].Firing {
		t.Fatal("alert fired on a single sample")
	}
}

func TestSuccessRateObjective(t *testing.T) {
	clk := newFakeClock()
	obj := Objective{
		Name: "transfer_success", Source: "transfer",
		Goal: 0.95, Window: 4 * time.Hour, BurnWindow: 30 * time.Minute, BurnThreshold: 2,
	}
	e := NewEngine(clk, nil, obj)
	ctx := context.Background()
	e.Record(ctx, "transfer", 45*time.Minute, true) // slow but ok: no latency target
	clk.advance(time.Minute)
	e.Record(ctx, "transfer", time.Second, false)
	r := e.Report()[0]
	if r.Samples != 2 || r.Met != 1 {
		t.Fatalf("success-rate objective judged %d/%d, want 1 of 2 met", r.Met, r.Samples)
	}
}

func TestRunCompletedMapsOutcomes(t *testing.T) {
	clk := newFakeClock()
	e := NewEngine(clk, nil, previewObjective())
	ctx := context.Background()
	e.RunCompleted(ctx, "streaming_recon", "succeeded", 2*time.Second)
	clk.advance(time.Minute)
	e.RunCompleted(ctx, "streaming_recon", "failed_transient", 2*time.Second)
	r := e.Report()[0]
	if r.Samples != 2 || r.Met != 1 {
		t.Fatalf("RunCompleted mapping: %d/%d met, want 1 of 2", r.Met, r.Samples)
	}
}

func TestPaperObjectives(t *testing.T) {
	objs := PaperObjectives()
	byName := map[string]Objective{}
	for _, o := range objs {
		byName[o.Name] = o
	}
	if o := byName["streaming_preview"]; o.Target != 10*time.Second || o.Source != "flow:streaming_recon" {
		t.Fatalf("streaming_preview objective %+v", o)
	}
	if o := byName["file_branch"]; o.Target != 30*time.Minute || o.Source != "flow:nersc_recon_flow" {
		t.Fatalf("file_branch objective %+v", o)
	}
	if o := byName["transfer_success"]; o.Target != 0 || o.Source != "transfer" {
		t.Fatalf("transfer_success objective %+v", o)
	}
	for _, o := range objs {
		if o.Goal <= 0 || o.Goal >= 1 || o.Window <= 0 || o.BurnWindow <= 0 || o.BurnThreshold <= 0 {
			t.Fatalf("objective %s has degenerate parameters: %+v", o.Name, o)
		}
	}
}

func TestHandler(t *testing.T) {
	clk := newFakeClock()
	e := NewEngine(clk, nil, PaperObjectives()...)
	e.Record(context.Background(), "flow:streaming_recon", 5*time.Second, true)

	req := httptest.NewRequest("GET", "/api/slo", nil)
	rec := httptest.NewRecorder()
	e.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("code %d", rec.Code)
	}
	var resp struct {
		Objectives []ObjectiveReport `json:"objectives"`
		Alerts     []Alert           `json:"alerts"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Objectives) != 3 {
		t.Fatalf("%d objectives, want 3", len(resp.Objectives))
	}
	if resp.Objectives[0].Name != "streaming_preview" || resp.Objectives[0].Samples != 1 {
		t.Fatalf("first objective %+v", resp.Objectives[0])
	}
	if resp.Alerts == nil {
		t.Fatal("alerts must encode as [], not null")
	}

	rec = httptest.NewRecorder()
	e.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/api/slo", nil))
	if rec.Code != 405 {
		t.Fatalf("POST code %d, want 405", rec.Code)
	}
}

func TestNilEngine(t *testing.T) {
	var e *Engine
	e.Record(context.Background(), "transfer", time.Second, true)
	e.RunCompleted(context.Background(), "x", "succeeded", time.Second)
	if e.Report() != nil || e.Alerts() != nil {
		t.Fatal("nil engine must report empty state")
	}
}

package slo

import (
	"encoding/json"
	"net/http"
)

// report is the JSON envelope served by Handler.
type report struct {
	Objectives []ObjectiveReport `json:"objectives"`
	Alerts     []Alert           `json:"alerts"`
}

// Handler serves the current SLO report as JSON for GET /api/slo.
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		resp := report{Objectives: e.Report(), Alerts: e.Alerts()}
		if resp.Objectives == nil {
			resp.Objectives = []ObjectiveReport{}
		}
		if resp.Alerts == nil {
			resp.Alerts = []Alert{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	})
}

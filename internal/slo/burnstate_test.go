package slo

import (
	"context"
	"testing"
	"time"
)

// tickClock is a Clock the test advances by hand.
type tickClock struct{ now time.Time }

func (c *tickClock) Now() time.Time { return c.now }

func TestBurnState(t *testing.T) {
	var nilEngine *Engine
	if rate, firing := nilEngine.BurnState("anything"); rate != 0 || firing {
		t.Fatal("nil engine must report 0, false")
	}

	clock := &tickClock{now: time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)}
	obj := Objective{
		Name:          "sched_file",
		Source:        "sched:file",
		Target:        10 * time.Minute,
		Goal:          0.5,
		Window:        time.Hour,
		BurnWindow:    30 * time.Minute,
		BurnThreshold: 1.5,
	}
	e := NewEngine(clock, nil, obj)

	if rate, firing := e.BurnState("unknown"); rate != 0 || firing {
		t.Fatal("unknown objective must fail open (0, false)")
	}
	if rate, firing := e.BurnState("sched_file"); rate != 0 || firing {
		t.Fatalf("empty window: rate=%g firing=%v, want 0,false", rate, firing)
	}

	ctx := context.Background()
	e.Record(ctx, "sched:file", time.Minute, true)
	clock.now = clock.now.Add(time.Minute)
	e.Record(ctx, "sched:file", time.Hour, true) // miss: over target
	clock.now = clock.now.Add(time.Minute)
	e.Record(ctx, "sched:file", time.Hour, true) // miss

	// 2 misses / 3 samples over a 0.5 budget → burn rate 4/3 ≥ 1.5? No:
	// 0.666/0.5 = 1.333 < 1.5, so not firing yet.
	rate, firing := e.BurnState("sched_file")
	if rate < 1.3 || rate > 1.4 || firing {
		t.Fatalf("rate=%g firing=%v, want ~1.33,false", rate, firing)
	}

	clock.now = clock.now.Add(time.Minute)
	e.Record(ctx, "sched:file", time.Hour, false) // miss
	rate, firing = e.BurnState("sched_file")
	// 3/4 misses / 0.5 budget = 1.5 → firing.
	if rate < 1.49 || !firing {
		t.Fatalf("rate=%g firing=%v, want ≥1.5,true", rate, firing)
	}

	// Once the misses age out of the burn window the rate decays; the
	// firing flag only flips on Record, so it stays latched until then.
	clock.now = clock.now.Add(31 * time.Minute)
	rate, _ = e.BurnState("sched_file")
	if rate != 0 {
		t.Fatalf("aged-out rate = %g, want 0", rate)
	}
}

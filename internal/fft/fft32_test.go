package fft

import (
	"math"
	"math/rand"
	"testing"
)

func randComplex64(n int, seed int64) []complex64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex64, n)
	for i := range x {
		x[i] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
	}
	return x
}

func TestPlan32RoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		p := PlanFor32(n)
		if p.Len() != n {
			t.Fatalf("PlanFor32(%d).Len() = %d", n, p.Len())
		}
		x := randComplex64(n, int64(n))
		orig := append([]complex64(nil), x...)
		p.Forward(x)
		p.Inverse(x)
		for i := range x {
			if d := cmplxAbs64(x[i] - orig[i]); d > 1e-5 {
				t.Fatalf("n=%d round trip: |Δ[%d]| = %g > 1e-5", n, i, d)
			}
		}
	}
}

// TestPlan32SizeOneTwo pins the degenerate transform lengths the plan
// builder special-cases: length 1 is the identity, length 2 is the
// butterfly [a+b, a−b] (and halved back by Inverse).
func TestPlan32SizeOneTwo(t *testing.T) {
	p1 := PlanFor32(1)
	x1 := []complex64{complex(3, -2)}
	p1.Forward(x1)
	if x1[0] != complex(3, -2) {
		t.Errorf("size-1 forward changed the sample: %v", x1[0])
	}
	p1.Inverse(x1)
	if x1[0] != complex(3, -2) {
		t.Errorf("size-1 inverse changed the sample: %v", x1[0])
	}

	p2 := PlanFor32(2)
	x2 := []complex64{complex(1, 0), complex(2, 0)}
	p2.Forward(x2)
	if x2[0] != complex(3, 0) || x2[1] != complex(-1, 0) {
		t.Errorf("size-2 forward = %v, want [(3+0i) (-1+0i)]", x2)
	}
	p2.Inverse(x2)
	if x2[0] != complex(1, 0) || x2[1] != complex(2, 0) {
		t.Errorf("size-2 round trip = %v, want [(1+0i) (2+0i)]", x2)
	}
}

func TestPlanFor32PanicsOnNonPow2(t *testing.T) {
	for _, n := range []int{0, -1, 3, 12, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PlanFor32(%d) did not panic", n)
				}
			}()
			PlanFor32(n)
		}()
	}
}

// TestPlan32CacheIndependentOfFloat64 guards the deliberate decision to
// keep the two precision tiers in separate caches keyed on the same
// lengths: requesting one tier returns a stable cached instance and never
// aliases or perturbs the other tier's plan for the same n.
func TestPlan32CacheIndependentOfFloat64(t *testing.T) {
	const n = 32
	p64 := PlanFor(n)
	p32a := PlanFor32(n)
	p32b := PlanFor32(n)
	if p32a != p32b {
		t.Error("PlanFor32 did not return the cached instance on the second call")
	}
	if PlanFor(n) != p64 {
		t.Error("building the float32 plan evicted or replaced the float64 plan")
	}
	if p64.Len() != p32a.Len() {
		t.Errorf("tier lengths diverge: %d vs %d", p64.Len(), p32a.Len())
	}
}

// TestPlan32MatchesFloat64 cross-checks the single-precision transform
// against the double-precision one on identical data: agreement to
// float32 rounding, for both directions.
func TestPlan32MatchesFloat64(t *testing.T) {
	const n = 128
	rng := rand.New(rand.NewSource(7))
	x64 := make([]complex128, n)
	x32 := make([]complex64, n)
	for i := range x64 {
		re, im := rng.NormFloat64(), rng.NormFloat64()
		x64[i] = complex(re, im)
		x32[i] = complex(float32(re), float32(im))
	}
	PlanFor(n).Forward(x64)
	PlanFor32(n).Forward(x32)
	for i := range x64 {
		d := math.Hypot(real(x64[i])-float64(real(x32[i])), imag(x64[i])-float64(imag(x32[i])))
		if d > 1e-3 { // spectra have magnitude ~√n ≈ 11; 1e-3 ≈ 100× f32 eps headroom
			t.Fatalf("forward bin %d: |Δ| = %g > 1e-3", i, d)
		}
	}
}

// TestConvolveBatchMatchesPerRow proves the batch entry point's claim on
// both tiers: stage-reordered batch convolution is bit-identical to
// convolving row by row.
func TestConvolveBatchMatchesPerRow(t *testing.T) {
	const n, rows = 64, 7
	rng := rand.New(rand.NewSource(11))

	spec64 := make([]complex128, n)
	for i := range spec64 {
		spec64[i] = complex(rng.NormFloat64(), 0)
	}
	batch64 := make([]complex128, rows*n)
	for i := range batch64 {
		batch64[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	serial64 := append([]complex128(nil), batch64...)
	p64 := PlanFor(n)
	p64.ConvolveBatchInto(batch64, spec64)
	for r := 0; r < rows; r++ {
		p64.ConvolveInto(serial64[r*n:(r+1)*n], spec64)
	}
	for i := range batch64 {
		if batch64[i] != serial64[i] {
			t.Fatalf("float64 batch[%d] = %v, per-row = %v (must be bit-identical)", i, batch64[i], serial64[i])
		}
	}

	spec32 := make([]complex64, n)
	for i := range spec32 {
		spec32[i] = complex(float32(rng.NormFloat64()), 0)
	}
	batch32 := randComplex64(rows*n, 13)
	serial32 := append([]complex64(nil), batch32...)
	p32 := PlanFor32(n)
	p32.ConvolveBatchInto(batch32, spec32)
	for r := 0; r < rows; r++ {
		p32.ConvolveInto(serial32[r*n:(r+1)*n], spec32)
	}
	for i := range batch32 {
		if batch32[i] != serial32[i] {
			t.Fatalf("float32 batch[%d] = %v, per-row = %v (must be bit-identical)", i, batch32[i], serial32[i])
		}
	}
}

func TestConvolveBatchPanicsOnRaggedLength(t *testing.T) {
	spec64 := make([]complex128, 8)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("float64 batch with non-multiple length did not panic")
			}
		}()
		PlanFor(8).ConvolveBatchInto(make([]complex128, 12), spec64)
	}()
	spec32 := make([]complex64, 8)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("float32 batch with non-multiple length did not panic")
			}
		}()
		PlanFor32(8).ConvolveBatchInto(make([]complex64, 12), spec32)
	}()
}

func TestPlan32ConvolveIdentity(t *testing.T) {
	const n = 16
	p := PlanFor32(n)
	spec := make([]complex64, n)
	for i := range spec {
		spec[i] = 1 // flat spectrum: identity convolution
	}
	x := randComplex64(n, 3)
	orig := append([]complex64(nil), x...)
	p.ConvolveInto(x, spec)
	for i := range x {
		if d := cmplxAbs64(x[i] - orig[i]); d > 1e-5 {
			t.Fatalf("identity convolution moved sample %d by %g", i, d)
		}
	}
}

func cmplxAbs64(c complex64) float64 {
	return math.Hypot(float64(real(c)), float64(imag(c)))
}

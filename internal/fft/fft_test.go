package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestNextPow2(t *testing.T) {
	cases := map[int]int{-3: 1, 0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -2, 3, 6, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestForwardKnownImpulse(t *testing.T) {
	// DFT of an impulse is flat.
	x := make([]complex128, 8)
	x[0] = 1
	Forward(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestForwardKnownCosine(t *testing.T) {
	// cos(2πk/N) concentrates energy in bins 1 and N-1.
	n := 16
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*float64(i)/float64(n)), 0)
	}
	Forward(x)
	for i, v := range x {
		want := 0.0
		if i == 1 || i == n-1 {
			want = float64(n) / 2
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-9 {
			t.Fatalf("bin %d magnitude = %v, want %v", i, cmplx.Abs(v), want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 64, 512} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		Forward(x)
		Inverse(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d: roundtrip mismatch at %d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestParsevalProperty(t *testing.T) {
	// Energy in time domain equals energy in frequency domain / N.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 1 << (1 + rng.Intn(8))
		x := make([]complex128, n)
		var et float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			et += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		Forward(x)
		var ef float64
		for _, v := range x {
			ef += real(v)*real(v) + imag(v)*imag(v)
		}
		if math.Abs(et-ef/float64(n)) > 1e-6*et {
			t.Fatalf("Parseval violated: %v vs %v", et, ef/float64(n))
		}
	}
}

func TestLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 128
	a := make([]complex128, n)
	b := make([]complex128, n)
	sum := make([]complex128, n)
	for i := 0; i < n; i++ {
		a[i] = complex(rng.NormFloat64(), 0)
		b[i] = complex(rng.NormFloat64(), 0)
		sum[i] = 2*a[i] + 3*b[i]
	}
	Forward(a)
	Forward(b)
	Forward(sum)
	for i := 0; i < n; i++ {
		want := 2*a[i] + 3*b[i]
		if cmplx.Abs(sum[i]-want) > 1e-9 {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}

func TestForwardPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two length")
		}
	}()
	Forward(make([]complex128, 3))
}

func TestForwardRealMatchesComplex(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	c := ForwardReal(x)
	if len(c) != len(x) {
		t.Fatal("length mismatch")
	}
	back := InverseReal(c)
	for i := range x {
		if math.Abs(back[i]-x[i]) > 1e-10 {
			t.Fatalf("roundtrip real mismatch at %d: %v", i, back[i])
		}
	}
}

func TestConvolveIdentity(t *testing.T) {
	// Convolution with a unit impulse is the identity.
	n := 16
	a := make([]float64, n)
	d := make([]float64, n)
	d[0] = 1
	for i := range a {
		a[i] = float64(i) - 3.5
	}
	got := Convolve(a, d)
	for i := range a {
		if math.Abs(got[i]-a[i]) > 1e-10 {
			t.Fatalf("identity convolution mismatch at %d", i)
		}
	}
}

func TestConvolveShift(t *testing.T) {
	// Convolution with a shifted impulse circularly shifts the signal.
	n := 8
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	d := make([]float64, n)
	d[2] = 1
	got := Convolve(a, d)
	for i := range a {
		want := a[(i-2+n)%n]
		if math.Abs(got[i]-want) > 1e-10 {
			t.Fatalf("shift convolution mismatch at %d: got %v want %v", i, got[i], want)
		}
	}
}

func TestConvolvePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Convolve(make([]float64, 4), make([]float64, 8))
}

func TestFreqIndex(t *testing.T) {
	n := 8
	wants := []int{0, 1, 2, 3, 4, -3, -2, -1}
	for i, want := range wants {
		if got := FreqIndex(i, n); got != want {
			t.Errorf("FreqIndex(%d,%d) = %d, want %d", i, n, got, want)
		}
	}
}

func TestShift2DInvolution(t *testing.T) {
	n := 8
	img := make([]complex128, n*n)
	rng := rand.New(rand.NewSource(4))
	orig := make([]complex128, n*n)
	for i := range img {
		img[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		orig[i] = img[i]
	}
	Shift2D(img, n)
	// Zero freq moved to center.
	if img[(n/2)*n+n/2] != orig[0] {
		t.Fatal("zero frequency not moved to center")
	}
	Shift2D(img, n)
	for i := range img {
		if img[i] != orig[i] {
			t.Fatal("Shift2D not an involution for even n")
		}
	}
}

func TestForward2DRoundTrip(t *testing.T) {
	n := 16
	img := make([]complex128, n*n)
	rng := rand.New(rand.NewSource(5))
	orig := make([]complex128, n*n)
	for i := range img {
		img[i] = complex(rng.NormFloat64(), 0)
		orig[i] = img[i]
	}
	Forward2D(img, n)
	Inverse2D(img, n)
	for i := range img {
		if cmplx.Abs(img[i]-orig[i]) > 1e-9 {
			t.Fatalf("2D roundtrip mismatch at %d", i)
		}
	}
}

func TestForward2DDC(t *testing.T) {
	// The DC bin of a constant image is n²·c.
	n := 8
	img := make([]complex128, n*n)
	for i := range img {
		img[i] = 3
	}
	Forward2D(img, n)
	if cmplx.Abs(img[0]-complex(3*float64(n*n), 0)) > 1e-9 {
		t.Fatalf("DC bin = %v", img[0])
	}
	for i := 1; i < n*n; i++ {
		if cmplx.Abs(img[i]) > 1e-9 {
			t.Fatalf("non-DC bin %d = %v", i, img[i])
		}
	}
}

func BenchmarkForward1K(b *testing.B) {
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(float64(i%7), 0)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Forward(x)
	}
}

func BenchmarkForward2D256(b *testing.B) {
	n := 256
	img := make([]complex128, n*n)
	for i := range img {
		img[i] = complex(float64(i%13), 0)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Forward2D(img, n)
	}
}

// Package fft implements the radix-2 fast Fourier transforms needed by the
// tomographic reconstruction kernels: the ramp-filter convolution in
// filtered back projection and the polar-to-Cartesian resampling in the
// gridrec-style Fourier reconstruction. Only power-of-two lengths are
// supported; callers pad with NextPow2.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// Forward computes the in-place forward DFT of x. len(x) must be a power of
// two. The transform is unnormalized: Inverse(Forward(x)) == x.
func Forward(x []complex128) {
	transform(x, false)
}

// Inverse computes the in-place inverse DFT of x, including the 1/N
// normalization. len(x) must be a power of two.
func Inverse(x []complex128) {
	transform(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

// transform is an iterative Cooley-Tukey radix-2 FFT.
func transform(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// ForwardReal transforms a real signal into its complex spectrum of the
// same (power-of-two) length. The input is not modified.
func ForwardReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	Forward(c)
	return c
}

// InverseReal inverts a spectrum and returns the real part, discarding the
// (numerically tiny, for conjugate-symmetric input) imaginary residue.
func InverseReal(c []complex128) []float64 {
	tmp := append([]complex128(nil), c...)
	Inverse(tmp)
	out := make([]float64, len(tmp))
	for i, v := range tmp {
		out[i] = real(v)
	}
	return out
}

// Convolve returns the circular convolution of a and b via the frequency
// domain. Both must have the same power-of-two length.
func Convolve(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("fft: Convolve length mismatch")
	}
	fa := ForwardReal(a)
	fb := ForwardReal(b)
	for i := range fa {
		fa[i] *= fb[i]
	}
	return InverseReal(fa)
}

// FreqIndex returns the signed frequency bin for index i of an n-point DFT,
// i.e. i for i < n/2 and i-n otherwise.
func FreqIndex(i, n int) int {
	if i <= n/2 {
		return i
	}
	return i - n
}

// Shift2D applies an fftshift-style quadrant swap to a square n×n complex
// image stored row-major, moving the zero frequency to the center (or back;
// the operation is its own inverse for even n).
func Shift2D(img []complex128, n int) {
	if len(img) != n*n {
		panic("fft: Shift2D size mismatch")
	}
	h := n / 2
	for y := 0; y < h; y++ {
		for x := 0; x < n; x++ {
			x2 := (x + h) % n
			y2 := y + h
			img[y*n+x], img[y2*n+x2] = img[y2*n+x2], img[y*n+x]
		}
	}
}

// Forward2D computes the forward DFT of a square n×n row-major image by
// transforming rows then columns. n must be a power of two.
func Forward2D(img []complex128, n int) {
	transform2D(img, n, false)
}

// Inverse2D computes the inverse DFT (normalized) of a square n×n image.
func Inverse2D(img []complex128, n int) {
	transform2D(img, n, true)
}

func transform2D(img []complex128, n int, inverse bool) {
	if len(img) != n*n {
		panic("fft: transform2D size mismatch")
	}
	// Rows.
	for y := 0; y < n; y++ {
		row := img[y*n : (y+1)*n]
		if inverse {
			Inverse(row)
		} else {
			Forward(row)
		}
	}
	// Columns, via a scratch buffer.
	col := make([]complex128, n)
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			col[y] = img[y*n+x]
		}
		if inverse {
			Inverse(col)
		} else {
			Forward(col)
		}
		for y := 0; y < n; y++ {
			img[y*n+x] = col[y]
		}
	}
}

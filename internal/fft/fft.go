// Package fft implements the radix-2 fast Fourier transforms needed by the
// tomographic reconstruction kernels: the ramp-filter convolution in
// filtered back projection and the polar-to-Cartesian resampling in the
// gridrec-style Fourier reconstruction. Only power-of-two lengths are
// supported; callers pad with NextPow2.
//
// Transforms are plan-based: a Plan for a given length precomputes the
// bit-reversal permutation and the full twiddle table (each factor
// evaluated directly from sin/cos, rather than by the error-accumulating
// w *= wStep recurrence), so the steady-state transform performs no trig,
// no allocation, and no redundant setup. Plans are cached per size and
// safe for concurrent use; the package-level Forward/Inverse helpers look
// the plan up transparently.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// Plan holds the precomputed state for transforms of one length: the
// bit-reversal swap list and twiddle tables for both directions. A Plan is
// immutable after construction and safe for concurrent use by any number
// of goroutines; per-call state lives entirely in the caller's buffer.
type Plan struct {
	n   int
	rev []int32      // flattened (i, j) swap pairs, i < j
	twF []complex128 // twF[k] = exp(-2πik/n), k < n/2
	twI []complex128 // twI[k] = exp(+2πik/n), k < n/2
}

var (
	planMu    sync.RWMutex
	planCache = map[int]*Plan{}
)

// PlanFor returns the cached transform plan for power-of-two length n,
// building it on first use. It panics when n is not a positive power of
// two.
func PlanFor(n int) *Plan {
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	planMu.RLock()
	p := planCache[n]
	planMu.RUnlock()
	if p != nil {
		return p
	}
	p = newPlan(n)
	planMu.Lock()
	if q, ok := planCache[n]; ok {
		p = q // another goroutine won the race; share its plan
	} else {
		planCache[n] = p
	}
	planMu.Unlock()
	return p
}

func newPlan(n int) *Plan {
	p := &Plan{n: n}
	if n <= 1 {
		return p
	}
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			p.rev = append(p.rev, int32(i), int32(j))
		}
	}
	half := n / 2
	p.twF = make([]complex128, half)
	p.twI = make([]complex128, half)
	for k := 0; k < half; k++ {
		// Each twiddle is evaluated exactly at its own angle, so no
		// rounding error accumulates across the table.
		s, c := math.Sincos(2 * math.Pi * float64(k) / float64(n))
		p.twF[k] = complex(c, -s)
		p.twI[k] = complex(c, s)
	}
	return p
}

// Len returns the transform length the plan was built for.
func (p *Plan) Len() int { return p.n }

// Forward computes the in-place forward DFT of x. len(x) must equal the
// plan length. The transform is unnormalized: Inverse(Forward(x)) == x.
//
//perf:hot
func (p *Plan) Forward(x []complex128) {
	p.checkLen(x)
	p.scramble(x)
	p.butterflies(x, p.twF)
}

// Inverse computes the in-place inverse DFT of x, including the 1/N
// normalization. len(x) must equal the plan length.
//
//perf:hot
func (p *Plan) Inverse(x []complex128) {
	p.checkLen(x)
	p.scramble(x)
	p.butterflies(x, p.twI)
	if p.n <= 1 {
		return
	}
	// 1/n is exact for power-of-two n, so this componentwise scale is
	// bit-identical to dividing by complex(n, 0).
	s := 1 / float64(p.n)
	for i := range x {
		x[i] = complex(real(x[i])*s, imag(x[i])*s)
	}
}

// ConvolveInto circularly convolves x, in place, with the kernel whose
// forward frequency response is spec: x ← IFFT(FFT(x) ⊙ spec). spec is
// typically precomputed once (e.g. a windowed ramp filter) and reused for
// every call; the operation performs no allocations.
//
//perf:hot
func (p *Plan) ConvolveInto(x, spec []complex128) {
	p.checkLen(x)
	p.checkLen(spec)
	p.Forward(x)
	for i := range x {
		x[i] *= spec[i]
	}
	p.Inverse(x)
}

// ConvolveBatchInto convolves every contiguous length-n row of x with the
// kernel whose forward frequency response is spec, in place. len(x) must
// be a whole number of plan-length rows. The batch runs stage-by-stage —
// all forward transforms, one multiply sweep, all inverse transforms — so
// spec stays hot in cache across the whole sinogram instead of being
// re-streamed per row; per-row arithmetic is bit-identical to calling
// ConvolveInto row by row.
//
//perf:hot
func (p *Plan) ConvolveBatchInto(x, spec []complex128) {
	p.checkLen(spec)
	n := p.n
	if n == 0 || len(x)%n != 0 {
		p.badBatch(len(x))
	}
	rows := len(x) / n
	for r := 0; r < rows; r++ {
		p.Forward(x[r*n : (r+1)*n])
	}
	for r := 0; r < rows; r++ {
		row := x[r*n : (r+1)*n]
		for i := range row {
			row[i] *= spec[i]
		}
	}
	for r := 0; r < rows; r++ {
		p.Inverse(x[r*n : (r+1)*n])
	}
}

// Forward2D computes the forward DFT of the square n×n row-major image
// img (n being the plan length) using col as column scratch (len ≥ n).
// No allocations are performed.
func (p *Plan) Forward2D(img, col []complex128) {
	p.transform2D(img, col, false)
}

// Inverse2D computes the normalized inverse DFT of the square n×n image
// img using col as column scratch (len ≥ n). No allocations are performed.
func (p *Plan) Inverse2D(img, col []complex128) {
	p.transform2D(img, col, true)
}

func (p *Plan) transform2D(img, col []complex128, inverse bool) {
	n := p.n
	if len(img) != n*n {
		panic("fft: transform2D size mismatch")
	}
	if len(col) < n {
		panic("fft: transform2D column scratch too short")
	}
	col = col[:n]
	for y := 0; y < n; y++ {
		row := img[y*n : (y+1)*n]
		if inverse {
			p.Inverse(row)
		} else {
			p.Forward(row)
		}
	}
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			col[y] = img[y*n+x]
		}
		if inverse {
			p.Inverse(col)
		} else {
			p.Forward(col)
		}
		for y := 0; y < n; y++ {
			img[y*n+x] = col[y]
		}
	}
}

func (p *Plan) checkLen(x []complex128) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: buffer length %d does not match plan length %d", len(x), p.n))
	}
}

// badBatch is the cold panic path of ConvolveBatchInto, kept out of the
// hot function so its formatting does not allocate there.
func (p *Plan) badBatch(got int) {
	panic(fmt.Sprintf("fft: batch length %d is not a multiple of plan length %d", got, p.n))
}

// scramble applies the precomputed bit-reversal permutation.
//
//perf:hot
func (p *Plan) scramble(x []complex128) {
	rev := p.rev
	for i := 0; i < len(rev); i += 2 {
		a, b := rev[i], rev[i+1]
		x[a], x[b] = x[b], x[a]
	}
}

// butterflies runs the iterative Cooley-Tukey stages against a twiddle
// table (forward or inverse).
//
//perf:hot
func (p *Plan) butterflies(x []complex128, tw []complex128) {
	n := p.n
	if n <= 1 {
		return
	}
	// First stage (size 2): all twiddles are 1, so pure add/sub.
	for i := 0; i < n; i += 2 {
		a, b := x[i], x[i+1]
		x[i], x[i+1] = a+b, a-b
	}
	for size := 4; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			k := 0
			for i := start; i < start+half; i++ {
				a := x[i]
				b := x[i+half] * tw[k]
				x[i] = a + b
				x[i+half] = a - b
				k += stride
			}
		}
	}
}

// Forward computes the in-place forward DFT of x. len(x) must be a power
// of two. The transform is unnormalized: Inverse(Forward(x)) == x.
func Forward(x []complex128) {
	if len(x) <= 1 {
		return
	}
	PlanFor(len(x)).Forward(x)
}

// Inverse computes the in-place inverse DFT of x, including the 1/N
// normalization. len(x) must be a power of two.
func Inverse(x []complex128) {
	if len(x) <= 1 {
		return
	}
	PlanFor(len(x)).Inverse(x)
}

// ForwardReal transforms a real signal into its complex spectrum of the
// same (power-of-two) length. The input is not modified.
func ForwardReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	Forward(c)
	return c
}

// InverseReal inverts a spectrum and returns the real part, discarding the
// (numerically tiny, for conjugate-symmetric input) imaginary residue.
// The spectrum is inverted in place — c is consumed as scratch, avoiding a
// defensive clone on a path that is almost always fed a throwaway buffer.
func InverseReal(c []complex128) []float64 {
	Inverse(c)
	out := make([]float64, len(c))
	for i, v := range c {
		out[i] = real(v)
	}
	return out
}

// Convolve returns the circular convolution of a and b via the frequency
// domain. Both must have the same power-of-two length.
func Convolve(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("fft: Convolve length mismatch")
	}
	if len(a) == 0 {
		return nil
	}
	p := PlanFor(len(a))
	x := make([]complex128, len(a))
	for i, v := range a {
		x[i] = complex(v, 0)
	}
	spec := ForwardReal(b)
	p.ConvolveInto(x, spec)
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = real(v)
	}
	return out
}

// FreqIndex returns the signed frequency bin for index i of an n-point DFT,
// i.e. i for i < n/2 and i-n otherwise.
func FreqIndex(i, n int) int {
	if i <= n/2 {
		return i
	}
	return i - n
}

// Shift2D applies an fftshift-style quadrant swap to a square n×n complex
// image stored row-major, moving the zero frequency to the center (or back;
// the operation is its own inverse for even n).
func Shift2D(img []complex128, n int) {
	if len(img) != n*n {
		panic("fft: Shift2D size mismatch")
	}
	h := n / 2
	for y := 0; y < h; y++ {
		for x := 0; x < n; x++ {
			x2 := (x + h) % n
			y2 := y + h
			img[y*n+x], img[y2*n+x2] = img[y2*n+x2], img[y*n+x]
		}
	}
}

// Forward2D computes the forward DFT of a square n×n row-major image by
// transforming rows then columns. n must be a power of two.
func Forward2D(img []complex128, n int) {
	PlanFor(n).Forward2D(img, make([]complex128, n))
}

// Inverse2D computes the inverse DFT (normalized) of a square n×n image.
func Inverse2D(img []complex128, n int) {
	PlanFor(n).Inverse2D(img, make([]complex128, n))
}

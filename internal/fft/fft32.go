package fft

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// Plan32 is the single-precision sibling of Plan: the same bit-reversal
// permutation and exact-twiddle Cooley-Tukey stages over complex64
// buffers. It backs the float32 reconstruction kernel tier, where the
// halved memory traffic matters more than the last digits. Twiddles are
// evaluated in float64 and rounded once, so each factor carries only the
// single rounding of the final conversion. A Plan32 is immutable after
// construction and safe for concurrent use.
type Plan32 struct {
	n   int
	rev []int32     // flattened (i, j) swap pairs, i < j
	twF []complex64 // twF[k] = exp(-2πik/n), k < n/2
	twI []complex64 // twI[k] = exp(+2πik/n), k < n/2
}

// plan32Cache is deliberately separate from the float64 planCache: the two
// tiers key on the same lengths, and sharing a map would force an
// interface-typed value plus a type assertion on every hot lookup.
var (
	plan32Mu    sync.RWMutex
	plan32Cache = map[int]*Plan32{}
)

// PlanFor32 returns the cached single-precision plan for power-of-two
// length n, building it on first use. It panics when n is not a positive
// power of two. PlanFor32(n) and PlanFor(n) are independent cache entries:
// requesting one tier never builds or evicts the other.
func PlanFor32(n int) *Plan32 {
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	plan32Mu.RLock()
	p := plan32Cache[n]
	plan32Mu.RUnlock()
	if p != nil {
		return p
	}
	p = newPlan32(n)
	plan32Mu.Lock()
	if q, ok := plan32Cache[n]; ok {
		p = q // another goroutine won the race; share its plan
	} else {
		plan32Cache[n] = p
	}
	plan32Mu.Unlock()
	return p
}

func newPlan32(n int) *Plan32 {
	p := &Plan32{n: n}
	if n <= 1 {
		return p
	}
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			p.rev = append(p.rev, int32(i), int32(j))
		}
	}
	half := n / 2
	p.twF = make([]complex64, half)
	p.twI = make([]complex64, half)
	for k := 0; k < half; k++ {
		s, c := math.Sincos(2 * math.Pi * float64(k) / float64(n))
		p.twF[k] = complex(float32(c), float32(-s))
		p.twI[k] = complex(float32(c), float32(s))
	}
	return p
}

// Len returns the transform length the plan was built for.
func (p *Plan32) Len() int { return p.n }

// Forward computes the in-place forward DFT of x. len(x) must equal the
// plan length. The transform is unnormalized: Inverse(Forward(x)) == x up
// to float32 rounding.
//
//perf:hot
func (p *Plan32) Forward(x []complex64) {
	p.checkLen(x)
	p.scramble(x)
	p.butterflies(x, p.twF)
}

// Inverse computes the in-place inverse DFT of x, including the 1/N
// normalization. len(x) must equal the plan length.
//
//perf:hot
func (p *Plan32) Inverse(x []complex64) {
	p.checkLen(x)
	p.scramble(x)
	p.butterflies(x, p.twI)
	if p.n <= 1 {
		return
	}
	s := float32(1) / float32(p.n)
	for i := range x {
		x[i] = complex(real(x[i])*s, imag(x[i])*s)
	}
}

// ConvolveInto circularly convolves x, in place, with the kernel whose
// forward frequency response is spec: x ← IFFT(FFT(x) ⊙ spec). No
// allocations are performed.
//
//perf:hot
func (p *Plan32) ConvolveInto(x, spec []complex64) {
	p.checkLen(x)
	p.checkLen(spec)
	p.Forward(x)
	for i := range x {
		x[i] *= spec[i]
	}
	p.Inverse(x)
}

// ConvolveBatchInto convolves every contiguous length-n row of x with
// spec, in place — the single-precision twin of Plan.ConvolveBatchInto,
// with the same stage-by-stage sweep and the same bit-identity to the
// row-at-a-time form.
//
//perf:hot
func (p *Plan32) ConvolveBatchInto(x, spec []complex64) {
	p.checkLen(spec)
	n := p.n
	if n == 0 || len(x)%n != 0 {
		p.badBatch(len(x))
	}
	rows := len(x) / n
	for r := 0; r < rows; r++ {
		p.Forward(x[r*n : (r+1)*n])
	}
	for r := 0; r < rows; r++ {
		row := x[r*n : (r+1)*n]
		for i := range row {
			row[i] *= spec[i]
		}
	}
	for r := 0; r < rows; r++ {
		p.Inverse(x[r*n : (r+1)*n])
	}
}

func (p *Plan32) checkLen(x []complex64) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: buffer length %d does not match plan length %d", len(x), p.n))
	}
}

// badBatch is the cold panic path of ConvolveBatchInto, kept out of the
// hot function so its formatting does not allocate there.
func (p *Plan32) badBatch(got int) {
	panic(fmt.Sprintf("fft: batch length %d is not a multiple of plan length %d", got, p.n))
}

// scramble applies the precomputed bit-reversal permutation.
//
//perf:hot
func (p *Plan32) scramble(x []complex64) {
	rev := p.rev
	for i := 0; i < len(rev); i += 2 {
		a, b := rev[i], rev[i+1]
		x[a], x[b] = x[b], x[a]
	}
}

// butterflies runs the iterative Cooley-Tukey stages against a twiddle
// table (forward or inverse).
//
//perf:hot
func (p *Plan32) butterflies(x []complex64, tw []complex64) {
	n := p.n
	if n <= 1 {
		return
	}
	for i := 0; i < n; i += 2 {
		a, b := x[i], x[i+1]
		x[i], x[i+1] = a+b, a-b
	}
	for size := 4; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			k := 0
			for i := start; i < start+half; i++ {
				a := x[i]
				b := x[i+half] * tw[k]
				x[i] = a + b
				x[i+half] = a - b
				k += stride
			}
		}
	}
}

// Package sim is a deterministic discrete-event simulation kernel in the
// style of SimPy: simulated processes are goroutines that advance a shared
// virtual clock cooperatively, so an eight-hour beamline shift of scans,
// transfers, queue waits, and reconstructions executes in milliseconds and
// reproduces exactly run to run. The facility-scale experiments (Table 2,
// the data-lifecycle figure, the prune-incident study) all run on this
// kernel; only one process executes at a time, so process bodies need no
// locking.
package sim

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// event is a scheduled wakeup in the virtual timeline.
type event struct {
	at   time.Time
	seq  int64 // tie-break: FIFO among same-time events
	wake chan struct{}
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine owns the virtual clock and the event queue. Create with New, add
// processes with Go, then call Run.
type Engine struct {
	nowMu  sync.Mutex // guards now against readers outside the sim thread
	now    time.Time  // guarded by nowMu
	events eventQueue
	seq    int64
	yield  chan struct{} // the running process signals here when it blocks or ends
	live   int           // processes started and not yet finished
}

// New creates an engine whose clock starts at epoch.
func New(epoch time.Time) *Engine {
	return &Engine{now: epoch, yield: make(chan struct{})}
}

// Now returns the current virtual time. Unlike the rest of the engine it
// is safe to call from goroutines outside the cooperative schedule, so
// observability surfaces (SLO reports, journal snapshots) can be polled
// while the simulation runs.
func (e *Engine) Now() time.Time {
	e.nowMu.Lock()
	defer e.nowMu.Unlock()
	return e.now
}

// setNow advances the clock under the lock that external Now readers take.
func (e *Engine) setNow(t time.Time) {
	e.nowMu.Lock()
	e.now = t
	e.nowMu.Unlock()
}

// schedule pushes a wakeup at time t and returns its channel.
func (e *Engine) schedule(at time.Time) *event {
	if now := e.Now(); at.Before(now) {
		at = now
	}
	e.seq++
	ev := &event{at: at, seq: e.seq, wake: make(chan struct{})}
	heap.Push(&e.events, ev)
	return ev
}

// Proc is the handle a simulated process uses to interact with virtual
// time. It is only valid inside the goroutine it was created for.
type Proc struct {
	e    *Engine
	Name string
	done *Signal
}

// Go starts a new simulated process. fn runs in its own goroutine but is
// cooperatively scheduled: it must block only through Proc methods (or
// Resource/Signal, which use them). The returned Signal fires when fn
// returns.
func (e *Engine) Go(name string, fn func(p *Proc)) *Signal {
	p := &Proc{e: e, Name: name, done: NewSignal(e)}
	e.live++
	ev := e.schedule(e.Now())
	go func() {
		<-ev.wake
		defer func() {
			e.live--
			p.done.Fire()
			e.yield <- struct{}{}
		}()
		fn(p)
	}()
	return p.done
}

// Run executes events until the queue is empty, returning the final
// virtual time. It panics on deadlock (live processes but no events).
func (e *Engine) Run() time.Time {
	return e.RunUntil(time.Time{})
}

// RunUntil executes events until the queue is empty or the next event is
// after deadline (a zero deadline means run to completion). The clock is
// left at the last executed event (or the deadline, if later).
func (e *Engine) RunUntil(deadline time.Time) time.Time {
	for e.events.Len() > 0 {
		ev := e.events[0]
		if !deadline.IsZero() && ev.at.After(deadline) {
			e.setNow(deadline)
			return e.Now()
		}
		heap.Pop(&e.events)
		e.setNow(ev.at)
		ev.wake <- struct{}{}
		<-e.yield
	}
	if e.live > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d live processes with empty event queue", e.live))
	}
	return e.Now()
}

// Now returns the current virtual time.
func (p *Proc) Now() time.Time { return p.e.Now() }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.e }

// Sleep suspends the process for d of virtual time (non-positive d yields
// the scheduler without advancing the clock).
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ev := p.e.schedule(p.e.Now().Add(d))
	p.e.yield <- struct{}{}
	<-ev.wake
}

// Signal is a one-shot level-triggered event: Wait blocks until Fire has
// been called; waits after Fire return immediately.
type Signal struct {
	e       *Engine
	fired   bool
	waiters []*event
}

// NewSignal creates a signal bound to the engine.
func NewSignal(e *Engine) *Signal {
	return &Signal{e: e}
}

// Fire triggers the signal, waking all current waiters at the current
// virtual time. Firing twice is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	now := s.e.Now()
	for _, w := range s.waiters {
		// Reschedule each waiter as a fresh event at the fire time.
		w.at = now
		s.e.seq++
		w.seq = s.e.seq
		heap.Push(&s.e.events, w)
	}
	s.waiters = nil
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Wait blocks the calling process until the signal fires.
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	s.e.seq++
	ev := &event{at: s.e.Now(), seq: s.e.seq, wake: make(chan struct{})}
	s.waiters = append(s.waiters, ev)
	p.e.yield <- struct{}{}
	<-ev.wake
}

// WaitAll blocks until every signal has fired.
func WaitAll(p *Proc, signals ...*Signal) {
	for _, s := range signals {
		s.Wait(p)
	}
}

// Resource is a counting semaphore over virtual time: up to Capacity
// holders at once, FIFO queuing — the primitive behind worker concurrency
// limits, cluster nodes, and network links.
type Resource struct {
	e        *Engine
	capacity int
	inUse    int
	queue    []*event
	// PeakQueue tracks the maximum number of simultaneous waiters, a
	// congestion metric the prune-incident experiment reports.
	PeakQueue int
}

// NewResource creates a resource with the given capacity (min 1).
func NewResource(e *Engine, capacity int) *Resource {
	if capacity < 1 {
		capacity = 1
	}
	return &Resource{e: e, capacity: capacity}
}

// Capacity returns the configured capacity.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of current holders.
func (r *Resource) InUse() int { return r.inUse }

// Queued returns the number of processes waiting.
func (r *Resource) Queued() int { return len(r.queue) }

// Acquire blocks the process until a slot is free, then takes it.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity {
		r.inUse++
		return
	}
	r.e.seq++
	ev := &event{at: r.e.Now(), seq: r.e.seq, wake: make(chan struct{})}
	r.queue = append(r.queue, ev)
	if len(r.queue) > r.PeakQueue {
		r.PeakQueue = len(r.queue)
	}
	p.e.yield <- struct{}{}
	<-ev.wake
	// The releaser transferred its slot to us: inUse stays constant.
}

// Release frees a slot, waking the longest-waiting process, if any.
func (r *Resource) Release() {
	if len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		next.at = r.e.Now()
		r.e.seq++
		next.seq = r.e.seq
		heap.Push(&r.e.events, next)
		return // slot handed directly to the waiter
	}
	r.inUse--
	if r.inUse < 0 {
		panic("sim: Release without Acquire")
	}
}

// Use runs fn while holding the resource.
func (r *Resource) Use(p *Proc, fn func()) {
	r.Acquire(p)
	defer r.Release()
	fn()
}

// WallClock adapts the operating-system clock to the Clock interfaces the
// instrumented layers take (obslog.Clock, slo.Clock, flow's env clock).
// It is the one sanctioned bridge from simulation-style clock injection to
// real time: both server binaries resolve their clock through it, so a
// binary is either fully on the wall clock or fully on the sim kernel,
// never a mix.
type WallClock struct{}

// Now returns the current wall-clock time.
func (WallClock) Now() time.Time { return time.Now() }

package sim

import (
	"math/rand"
	"testing"
	"time"
)

var epoch = time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)

func TestSleepAdvancesClock(t *testing.T) {
	e := New(epoch)
	var woke time.Time
	e.Go("a", func(p *Proc) {
		p.Sleep(90 * time.Second)
		woke = p.Now()
	})
	end := e.Run()
	want := epoch.Add(90 * time.Second)
	if !woke.Equal(want) {
		t.Fatalf("woke at %v, want %v", woke, want)
	}
	if !end.Equal(want) {
		t.Fatalf("end at %v, want %v", end, want)
	}
}

func TestZeroAndNegativeSleep(t *testing.T) {
	e := New(epoch)
	ran := false
	e.Go("a", func(p *Proc) {
		p.Sleep(0)
		p.Sleep(-5 * time.Second)
		ran = true
	})
	e.Run()
	if !ran {
		t.Fatal("process did not finish")
	}
	if !e.Now().Equal(epoch) {
		t.Fatalf("clock moved to %v", e.Now())
	}
}

func TestInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		e := New(epoch)
		var order []string
		e.Go("a", func(p *Proc) {
			p.Sleep(2 * time.Second)
			order = append(order, "a2")
			p.Sleep(2 * time.Second)
			order = append(order, "a4")
		})
		e.Go("b", func(p *Proc) {
			p.Sleep(1 * time.Second)
			order = append(order, "b1")
			p.Sleep(2 * time.Second)
			order = append(order, "b3")
		})
		e.Run()
		return order
	}
	want := []string{"b1", "a2", "b3", "a4"}
	for trial := 0; trial < 20; trial++ {
		got := run()
		if len(got) != len(want) {
			t.Fatalf("order = %v", got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: order = %v, want %v", trial, got, want)
			}
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := New(epoch)
	var order []string
	for _, name := range []string{"x", "y", "z"} {
		name := name
		e.Go(name, func(p *Proc) {
			p.Sleep(time.Second)
			order = append(order, name)
		})
	}
	e.Run()
	if order[0] != "x" || order[1] != "y" || order[2] != "z" {
		t.Fatalf("same-time events not FIFO: %v", order)
	}
}

func TestSignal(t *testing.T) {
	e := New(epoch)
	s := NewSignal(e)
	var got time.Time
	e.Go("waiter", func(p *Proc) {
		s.Wait(p)
		got = p.Now()
	})
	e.Go("firer", func(p *Proc) {
		p.Sleep(5 * time.Second)
		s.Fire()
	})
	e.Run()
	if !got.Equal(epoch.Add(5 * time.Second)) {
		t.Fatalf("waiter woke at %v", got)
	}
	if !s.Fired() {
		t.Fatal("signal should report fired")
	}
}

func TestSignalWaitAfterFire(t *testing.T) {
	e := New(epoch)
	s := NewSignal(e)
	s.Fire()
	s.Fire() // double fire is a no-op
	done := false
	e.Go("w", func(p *Proc) {
		s.Wait(p) // returns immediately
		done = true
	})
	e.Run()
	if !done {
		t.Fatal("wait after fire should not block")
	}
}

func TestGoDoneSignalAndWaitAll(t *testing.T) {
	e := New(epoch)
	var endA, endB, joined time.Time
	a := e.Go("a", func(p *Proc) { p.Sleep(3 * time.Second); endA = p.Now() })
	b := e.Go("b", func(p *Proc) { p.Sleep(7 * time.Second); endB = p.Now() })
	e.Go("join", func(p *Proc) {
		WaitAll(p, a, b)
		joined = p.Now()
	})
	e.Run()
	if !endA.Equal(epoch.Add(3*time.Second)) || !endB.Equal(epoch.Add(7*time.Second)) {
		t.Fatalf("ends %v %v", endA, endB)
	}
	if !joined.Equal(epoch.Add(7 * time.Second)) {
		t.Fatalf("join at %v, want +7s", joined)
	}
}

func TestResourceLimitsConcurrency(t *testing.T) {
	e := New(epoch)
	r := NewResource(e, 2)
	var maxInUse int
	for i := 0; i < 6; i++ {
		e.Go("w", func(p *Proc) {
			r.Acquire(p)
			if r.InUse() > maxInUse {
				maxInUse = r.InUse()
			}
			p.Sleep(10 * time.Second)
			r.Release()
		})
	}
	end := e.Run()
	if maxInUse > 2 {
		t.Fatalf("concurrency %d exceeded capacity 2", maxInUse)
	}
	// 6 jobs of 10 s at concurrency 2 → 30 s makespan.
	if !end.Equal(epoch.Add(30 * time.Second)) {
		t.Fatalf("makespan %v, want 30s", end.Sub(epoch))
	}
	if r.PeakQueue != 4 {
		t.Fatalf("peak queue %d, want 4", r.PeakQueue)
	}
	if r.InUse() != 0 || r.Queued() != 0 {
		t.Fatal("resource not drained")
	}
}

func TestResourceFIFO(t *testing.T) {
	e := New(epoch)
	r := NewResource(e, 1)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond) // stagger arrival
			r.Acquire(p)
			order = append(order, i)
			p.Sleep(time.Second)
			r.Release()
		})
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("not FIFO: %v", order)
		}
	}
}

func TestResourceUse(t *testing.T) {
	e := New(epoch)
	r := NewResource(e, 1)
	ran := false
	e.Go("u", func(p *Proc) {
		r.Use(p, func() { ran = true })
	})
	e.Run()
	if !ran || r.InUse() != 0 {
		t.Fatal("Use did not run or did not release")
	}
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	e := New(epoch)
	r := NewResource(e, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Release()
}

func TestRunUntil(t *testing.T) {
	e := New(epoch)
	count := 0
	e.Go("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(time.Minute)
			count++
		}
	})
	deadline := epoch.Add(10*time.Minute + 30*time.Second)
	end := e.RunUntil(deadline)
	if count != 10 {
		t.Fatalf("ticks = %d, want 10", count)
	}
	if !end.Equal(deadline) {
		t.Fatalf("end = %v, want deadline", end)
	}
	// Continue to completion.
	e.Run()
	if count != 100 {
		t.Fatalf("ticks = %d after full run", count)
	}
}

func TestNestedSpawn(t *testing.T) {
	e := New(epoch)
	var childEnd time.Time
	e.Go("parent", func(p *Proc) {
		p.Sleep(time.Second)
		child := p.Engine().Go("child", func(c *Proc) {
			c.Sleep(2 * time.Second)
			childEnd = c.Now()
		})
		child.Wait(p)
	})
	e.Run()
	if !childEnd.Equal(epoch.Add(3 * time.Second)) {
		t.Fatalf("child end %v", childEnd)
	}
}

func TestManyProcessesScale(t *testing.T) {
	e := New(epoch)
	n := 2000
	done := 0
	for i := 0; i < n; i++ {
		i := i
		e.Go("p", func(p *Proc) {
			p.Sleep(time.Duration(i%97) * time.Second)
			done++
		})
	}
	e.Run()
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
}

func TestCapacityFloor(t *testing.T) {
	e := New(epoch)
	r := NewResource(e, 0)
	if r.Capacity() != 1 {
		t.Fatal("capacity should be floored at 1")
	}
}

func BenchmarkEngine10kEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := New(epoch)
		for j := 0; j < 100; j++ {
			e.Go("p", func(p *Proc) {
				for k := 0; k < 100; k++ {
					p.Sleep(time.Second)
				}
			})
		}
		e.Run()
	}
}

// Property: with independent sleepers, the final clock equals the longest
// total sleep, and observed wake times never decrease for any process.
func TestClockMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		e := New(epoch)
		n := 1 + rng.Intn(8)
		var longest time.Duration
		violated := false
		var lastGlobal time.Time
		for i := 0; i < n; i++ {
			var total time.Duration
			steps := 1 + rng.Intn(6)
			durs := make([]time.Duration, steps)
			for j := range durs {
				durs[j] = time.Duration(rng.Intn(1000)) * time.Millisecond
				total += durs[j]
			}
			if total > longest {
				longest = total
			}
			e.Go("p", func(p *Proc) {
				for _, d := range durs {
					p.Sleep(d)
					if p.Now().Before(lastGlobal) {
						violated = true
					}
					lastGlobal = p.Now()
				}
			})
		}
		end := e.Run()
		if violated {
			t.Fatal("clock went backward")
		}
		if !end.Equal(epoch.Add(longest)) {
			t.Fatalf("trial %d: end %v, want epoch+%v", trial, end, longest)
		}
	}
}

package sim

import (
	"testing"
	"time"
)

func TestWallClockNow(t *testing.T) {
	before := time.Now()
	got := WallClock{}.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("WallClock.Now %v outside [%v, %v]", got, before, after)
	}
}

package flow

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/faults"
)

// Handler exposes the run history over HTTP, mirroring how the paper's
// software engineers query the Prefect API for flow statistics and logs:
//
//	GET /api/flows                      → list of flow names
//	GET /api/flows/{name}/stats?last=N  → summary statistics
//	GET /api/flows/{name}/runs          → run records
//	GET /api/runs/{id}/trace            → the run's span tree
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/runs/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/api/runs/")
		parts := strings.SplitN(rest, "/", 2)
		if len(parts) != 2 || parts[1] != "trace" {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		id, err := strconv.Atoi(parts[0])
		if err != nil {
			http.Error(w, "bad run id", http.StatusBadRequest)
			return
		}
		run, ok := s.RunByID(id)
		if !ok {
			http.Error(w, "no such run", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"id":    run.ID,
			"flow":  run.Flow,
			"state": run.State,
			"trace": run.Trace.Snapshot(),
		})
	})
	mux.HandleFunc("/api/flows", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.FlowNames())
	})
	mux.HandleFunc("/api/flows/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/api/flows/")
		parts := strings.SplitN(rest, "/", 2)
		if len(parts) != 2 {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		name := parts[0]
		switch parts[1] {
		case "stats":
			last := 0
			if q := r.URL.Query().Get("last"); q != "" {
				// Ignore parse errors; 0 means "all runs".
				if n, err := strconv.Atoi(q); err == nil {
					last = n
				}
			}
			sum := s.Summary(name, last)
			oc := s.Outcomes(name)
			writeJSON(w, http.StatusOK, map[string]interface{}{
				"flow": name, "n": sum.N,
				"mean_s": sum.Mean, "sd_s": sum.SD, "median_s": sum.Median,
				"min_s": sum.Min, "max_s": sum.Max,
				"success_rate": s.SuccessRate(name),
				"outcomes": map[string]int{
					OutcomeSucceeded:       oc.Succeeded,
					OutcomeFailedTransient: oc.FailedTransient,
					OutcomeFailedPermanent: oc.FailedPermanent,
					OutcomeCancelled:       oc.Cancelled,
				},
			})
		case "runs":
			type runJSON struct {
				ID         int          `json:"id"`
				State      State        `json:"state"`
				DurationS  float64      `json:"duration_s"`
				Err        string       `json:"error,omitempty"`
				Class      faults.Class `json:"class,omitempty"`
				TaskCount  int          `json:"tasks"`
				RetryCount int          `json:"retries"`
			}
			runs := s.Runs(name)
			out := make([]runJSON, 0, len(runs))
			for _, run := range runs {
				retries := 0
				for _, t := range run.Tasks {
					if t.Attempts > 1 {
						retries += t.Attempts - 1
					}
				}
				out = append(out, runJSON{
					ID: run.ID, State: run.State,
					DurationS: run.Duration().Seconds(), Err: run.Err, Class: run.Class,
					TaskCount: len(run.Tasks), RetryCount: retries,
				})
			}
			writeJSON(w, http.StatusOK, out)
		default:
			http.Error(w, "not found", http.StatusNotFound)
		}
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// Package flow is the orchestration layer of the reproduction — the role
// Prefect plays in the paper. Flows are plain Go functions that record
// their execution through a Ctx: per-task state, bounded retries with
// exponential backoff, idempotency keys so retried flows skip work that
// already completed (the paper's "idempotent semantics that support safe
// retries"), structured logs, and a queryable run history whose aggregate
// statistics are exactly what the paper extracts for Table 2.
//
// The engine is clock-agnostic: an Env backed by the discrete-event kernel
// drives facility-scale simulations, while RealEnv drives the live
// services. Flow bodies are identical in both modes.
package flow

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Env abstracts time so flows run on either the virtual or the real clock.
type Env interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// RealEnv runs flows on the wall clock.
type RealEnv struct{}

// Now returns the wall-clock time.
func (RealEnv) Now() time.Time { return time.Now() }

// Sleep blocks the goroutine for d.
func (RealEnv) Sleep(d time.Duration) { time.Sleep(d) }

// SimEnv runs flows on a discrete-event process.
type SimEnv struct{ P *sim.Proc }

// Now returns the virtual time.
func (s SimEnv) Now() time.Time { return s.P.Now() }

// Sleep advances the virtual clock.
func (s SimEnv) Sleep(d time.Duration) { s.P.Sleep(d) }

// State is a flow or task run state, matching Prefect's vocabulary.
type State string

// Run and task states.
const (
	Running   State = "RUNNING"
	Completed State = "COMPLETED"
	Failed    State = "FAILED"
)

// LogEntry is one structured log line attached to a run.
type LogEntry struct {
	Time  time.Time
	Level string
	Msg   string
}

// TaskRun records one task execution within a flow run.
type TaskRun struct {
	Name     string
	State    State
	Attempts int
	Start    time.Time
	End      time.Time
	Err      string
	// Cached is true when an idempotency key matched a previously
	// completed task and the body was skipped.
	Cached bool
}

// Duration returns the task's elapsed time.
func (t *TaskRun) Duration() time.Duration { return t.End.Sub(t.Start) }

// Run records one flow run.
type Run struct {
	ID    int
	Flow  string
	State State
	Start time.Time
	End   time.Time
	Err   string
	Tasks []*TaskRun
	Logs  []LogEntry
}

// Duration returns the run's elapsed time.
func (r *Run) Duration() time.Duration { return r.End.Sub(r.Start) }

// Server is the orchestration server: it owns run history, idempotency
// state, and the statistics API.
type Server struct {
	mu     sync.Mutex
	runs   []*Run
	nextID int
	idemp  map[string]bool
}

// NewServer creates an empty orchestration server.
func NewServer() *Server {
	return &Server{idemp: map[string]bool{}}
}

// Ctx is the handle a running flow uses to record tasks and logs.
type Ctx struct {
	Env    Env
	Run    *Run
	server *Server
}

// Start begins a flow run on the given environment.
func (s *Server) Start(flowName string, env Env) *Ctx {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	run := &Run{ID: s.nextID, Flow: flowName, State: Running, Start: env.Now()}
	s.runs = append(s.runs, run)
	return &Ctx{Env: env, Run: run, server: s}
}

// Complete finalizes the run; err marks it FAILED.
func (c *Ctx) Complete(err error) {
	c.server.mu.Lock()
	defer c.server.mu.Unlock()
	c.Run.End = c.Env.Now()
	if err != nil {
		c.Run.State = Failed
		c.Run.Err = err.Error()
	} else {
		c.Run.State = Completed
	}
}

// Logf appends a structured log line to the run.
func (c *Ctx) Logf(level, format string, args ...interface{}) {
	c.server.mu.Lock()
	defer c.server.mu.Unlock()
	c.Run.Logs = append(c.Run.Logs, LogEntry{
		Time: c.Env.Now(), Level: level, Msg: fmt.Sprintf(format, args...),
	})
}

// TaskOptions configures retry and idempotency behaviour for one task.
type TaskOptions struct {
	// Retries is the number of re-attempts after the first failure.
	Retries int
	// RetryDelay is the base backoff between attempts, doubled each time.
	RetryDelay time.Duration
	// IdempotencyKey, when non-empty, causes the task to be skipped if a
	// task with the same key already completed on this server (across
	// all runs) — making flow-level retries safe.
	IdempotencyKey string
}

// Task executes fn with the configured retry policy and records the
// result. It returns fn's final error.
func (c *Ctx) Task(name string, opts TaskOptions, fn func() error) error {
	tr := &TaskRun{Name: name, State: Running, Start: c.Env.Now()}
	c.server.mu.Lock()
	c.Run.Tasks = append(c.Run.Tasks, tr)
	cached := opts.IdempotencyKey != "" && c.server.idemp[opts.IdempotencyKey]
	c.server.mu.Unlock()

	if cached {
		tr.Cached = true
		tr.State = Completed
		tr.End = c.Env.Now()
		return nil
	}

	var err error
	for attempt := 0; attempt <= opts.Retries; attempt++ {
		if attempt > 0 {
			c.Logf("WARN", "task %s attempt %d after error: %v", name, attempt+1, err)
			c.Env.Sleep(opts.RetryDelay << (attempt - 1))
		}
		tr.Attempts++
		err = fn()
		if err == nil {
			break
		}
	}
	tr.End = c.Env.Now()
	if err != nil {
		tr.State = Failed
		tr.Err = err.Error()
		return err
	}
	tr.State = Completed
	if opts.IdempotencyKey != "" {
		c.server.mu.Lock()
		c.server.idemp[opts.IdempotencyKey] = true
		c.server.mu.Unlock()
	}
	return nil
}

// Runs returns all runs of a flow (all flows if name is empty), in start
// order.
func (s *Server) Runs(name string) []*Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Run
	for _, r := range s.runs {
		if name == "" || r.Flow == name {
			out = append(out, r)
		}
	}
	return out
}

// FlowNames returns the distinct flow names seen, sorted.
func (s *Server) FlowNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := map[string]bool{}
	for _, r := range s.runs {
		seen[r.Flow] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Durations returns completed-run durations in seconds for a flow,
// optionally limited to the most recent n runs (n ≤ 0 means all) — the
// query behind "the last 100 successful flow runs".
func (s *Server) Durations(name string, n int) []float64 {
	runs := s.Runs(name)
	var out []float64
	for _, r := range runs {
		if r.State == Completed {
			out = append(out, r.Duration().Seconds())
		}
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Summary returns Table 2 style statistics over the last n successful
// runs of a flow.
func (s *Server) Summary(name string, n int) stats.Summary {
	return stats.Summarize(s.Durations(name, n))
}

// SuccessRate returns the fraction of finished runs that completed.
func (s *Server) SuccessRate(name string) float64 {
	runs := s.Runs(name)
	var done, ok int
	for _, r := range runs {
		switch r.State {
		case Completed:
			done++
			ok++
		case Failed:
			done++
		}
	}
	if done == 0 {
		return 0
	}
	return float64(ok) / float64(done)
}

// Package flow is the orchestration layer of the reproduction — the role
// Prefect plays in the paper. Flows are plain Go functions that record
// their execution through a Ctx: per-task state, bounded retries with
// exponential backoff, idempotency keys so retried flows skip work that
// already completed (the paper's "idempotent semantics that support safe
// retries"), structured logs, and a queryable run history whose aggregate
// statistics are exactly what the paper extracts for Table 2.
//
// Every flow run carries a context.Context from entry to exit. Task retry
// loops stop on cancellation, per-task Timeout/Deadline budgets bound
// every wait, and retry decisions flow through faults.Classify: Transient
// errors retry, Permanent/Timeout/Cancelled short-circuit. This is the
// paper's operational discipline — bounded waits and typed retry policies
// at every stage (§4.2) — applied uniformly instead of ad hoc per layer.
//
// The engine is clock-agnostic: an Env backed by the discrete-event kernel
// drives facility-scale simulations, while RealEnv drives the live
// services. Flow bodies are identical in both modes.
package flow

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/monitor"
	"repro/internal/obslog"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Env abstracts time so flows run on either the virtual or the real clock.
type Env interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// ctxSleeper is the optional Env refinement for clocks that can interrupt
// a sleep when the context is cancelled. RealEnv implements it; the
// discrete-event clock cannot select on channels, so SimEnv falls back to
// sleep-then-check (cancellation is observed within one clock tick).
type ctxSleeper interface {
	SleepCtx(ctx context.Context, d time.Duration) error
}

// SleepCtx sleeps d on env, returning the context's error if it is (or
// becomes) done. On envs without native ctx support the full sleep elapses
// before cancellation is observed. It is the ctx-aware wait every layer
// shares (task backoff, SFAPI polling) instead of raw time.Sleep.
func SleepCtx(ctx context.Context, env Env, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s, ok := env.(ctxSleeper); ok {
		return s.SleepCtx(ctx, d)
	}
	env.Sleep(d)
	return ctx.Err()
}

// RealEnv runs flows on the wall clock.
type RealEnv struct{}

// Now returns the wall-clock time.
func (RealEnv) Now() time.Time { return time.Now() }

// Sleep blocks the goroutine for d.
func (RealEnv) Sleep(d time.Duration) { time.Sleep(d) }

// SleepCtx blocks for d or until ctx is done, whichever comes first.
func (RealEnv) SleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SimEnv runs flows on a discrete-event process.
type SimEnv struct{ P *sim.Proc }

// Now returns the virtual time.
func (s SimEnv) Now() time.Time { return s.P.Now() }

// Sleep advances the virtual clock.
func (s SimEnv) Sleep(d time.Duration) { s.P.Sleep(d) }

// State is a flow or task run state, matching Prefect's vocabulary.
type State string

// Run and task states.
const (
	Running   State = "RUNNING"
	Completed State = "COMPLETED"
	Failed    State = "FAILED"
	Cancelled State = "CANCELLED"
)

// LogEntry is one structured log line attached to a run.
type LogEntry struct {
	Time  time.Time
	Level string
	Msg   string
}

// TaskRun records one task execution within a flow run.
type TaskRun struct {
	Name     string
	State    State
	Attempts int
	Start    time.Time
	End      time.Time
	Err      string
	// Class is the fault classification of the final error (empty on
	// success).
	Class faults.Class
	// Cached is true when an idempotency key matched a previously
	// completed task and the body was skipped.
	Cached bool
}

// Duration returns the task's elapsed time.
func (t *TaskRun) Duration() time.Duration { return t.End.Sub(t.Start) }

// Run records one flow run.
type Run struct {
	ID   int
	Flow string
	// Tenant is the scheduling tenant ("beamline/class") the run belongs
	// to, pulled from the start context ("" outside any campaign).
	Tenant string
	State  State
	Start  time.Time
	End    time.Time
	Err    string
	// Class is the fault classification of the final error (empty on
	// success).
	Class faults.Class
	Tasks []*TaskRun
	Logs  []LogEntry
	// Trace is the run's span tree, recorded on the env clock: the root
	// span covers the whole run, each task adds a child, and the
	// transfer/facility/streaming layers hang sub-spans off the task
	// span they find in the context.
	Trace *trace.Span
}

// Duration returns the run's elapsed time.
func (r *Run) Duration() time.Duration { return r.End.Sub(r.Start) }

// Server is the orchestration server: it owns run history, idempotency
// state, and the statistics API.
type Server struct {
	mu             sync.Mutex
	runs           []*Run          // guarded by mu
	nextID         int             // guarded by mu
	idemp          map[string]bool // guarded by mu
	metrics        *monitor.Registry
	journal        *obslog.Journal
	observers      []CompletionObserver // guarded by mu
	startObservers []StartObserver      // guarded by mu
}

// CompletionObserver receives every finished run — how the SLO engine
// judges flow latency without the flow layer importing it.
type CompletionObserver interface {
	RunCompleted(ctx context.Context, flow, outcome string, duration time.Duration)
}

// StartObserver receives every run as it starts, with the run's own
// context (carrying the run ID and tenant) — how the campaign scheduler
// binds the run ID to the queue item that dispatched it without the flow
// layer importing it.
type StartObserver interface {
	RunStarted(ctx context.Context, flowName string)
}

// NewServer creates an empty orchestration server.
func NewServer() *Server {
	return &Server{idemp: map[string]bool{}}
}

// SetMetrics attaches a registry; every run completion then increments a
// flow_runs_total{flow=...,outcome=...} counter so the metrics handler
// reflects the fault taxonomy live.
func (s *Server) SetMetrics(reg *monitor.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = reg
}

// SetJournal attaches an event journal; Start then injects it (and the
// run ID) into every run's context, so all downstream layers journal
// run-correlated events with no extra plumbing.
func (s *Server) SetJournal(j *obslog.Journal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = j
}

// SetObserver attaches a completion observer (e.g. the SLO engine),
// replacing any observers attached so far.
func (s *Server) SetObserver(o CompletionObserver) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observers = s.observers[:0]
	if o != nil {
		s.observers = append(s.observers, o)
	}
}

// AddObserver attaches an additional completion observer; observers are
// notified in attachment order.
func (s *Server) AddObserver(o CompletionObserver) {
	if o == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observers = append(s.observers, o)
}

// AddStartObserver attaches a start observer; observers are notified in
// attachment order, outside the server lock, after the run is visible in
// the history.
func (s *Server) AddStartObserver(o StartObserver) {
	if o == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.startObservers = append(s.startObservers, o)
}

// Ctx is the handle a running flow uses to record tasks and logs.
type Ctx struct {
	Env    Env
	Run    *Run
	ctx    context.Context
	server *Server
}

// Context returns the cancellation context the flow was started with.
func (c *Ctx) Context() context.Context { return c.ctx }

// Start begins a flow run on the given environment. ctx bounds the whole
// run: tasks stop retrying once it is done (nil means context.Background).
func (s *Server) Start(ctx context.Context, flowName string, env Env) *Ctx {
	if ctx == nil {
		ctx = context.Background()
	}
	tenant := obslog.TenantFromContext(ctx)
	s.mu.Lock()
	s.nextID++
	run := &Run{ID: s.nextID, Flow: flowName, Tenant: tenant, State: Running, Start: env.Now()}
	run.Trace = trace.NewRoot(flowName, run.Start)
	if tenant != "" {
		run.Trace.SetAttr("tenant", tenant)
	}
	s.runs = append(s.runs, run)
	journal := s.journal
	startObservers := s.startObservers
	s.mu.Unlock()
	// The run's context carries the journal and its own ID from here on,
	// so transfer/facility/msgq events downstream correlate automatically.
	ctx = obslog.WithRun(obslog.NewContext(ctx, journal), run.ID)
	obslog.Info(ctx, "flow", "run started", obslog.F("flow", flowName))
	for _, o := range startObservers {
		o.RunStarted(ctx, flowName)
	}
	return &Ctx{Env: env, Run: run, ctx: ctx, server: s}
}

// Span returns the run's root span, for flow bodies that want to record
// stages outside any task.
func (c *Ctx) Span() *trace.Span { return c.Run.Trace }

// Outcome labels under the fault taxonomy, as exported to the metrics
// registry.
const (
	OutcomeSucceeded       = "succeeded"
	OutcomeFailedTransient = "failed_transient"
	OutcomeFailedPermanent = "failed_permanent"
	OutcomeCancelled       = "cancelled"
)

// outcomeOf maps a terminal (state, class) pair to its counter label.
// Timeouts count as transient failures: a fresh run gets a fresh deadline.
func outcomeOf(state State, class faults.Class) string {
	switch {
	case state == Completed:
		return OutcomeSucceeded
	case class == faults.Cancelled:
		return OutcomeCancelled
	case class == faults.Permanent:
		return OutcomeFailedPermanent
	default:
		return OutcomeFailedTransient
	}
}

// Complete finalizes the run; err marks it FAILED (or CANCELLED when the
// error classifies as a cancellation). The root span closes at the same
// env-clock instant, and every completed span feeds the per-stage
// latency histograms when a metrics registry is attached.
func (c *Ctx) Complete(err error) {
	c.server.mu.Lock()
	c.Run.End = c.Env.Now()
	c.Run.Trace.End(c.Run.End)
	if err != nil {
		c.Run.Class = faults.Classify(err)
		if c.Run.Class == faults.Cancelled {
			c.Run.State = Cancelled
		} else {
			c.Run.State = Failed
		}
		c.Run.Err = err.Error()
	} else {
		c.Run.State = Completed
	}
	outcome := outcomeOf(c.Run.State, c.Run.Class)
	flowLabel := monitor.L("flow", c.Run.Flow)
	if c.server.metrics != nil {
		m := c.server.metrics
		m.AddL("flow_runs_total", 1, flowLabel, monitor.L("outcome", outcome))
		if c.Run.Tenant != "" {
			// Per-tenant attainment gets its own counter rather than a
			// tenant label on flow_runs_total, so the per-flow series set
			// stays small and the tenant series count is bounded by the
			// campaign's tenant roster, not by flows × tenants.
			m.AddL("flow_tenant_runs_total", 1,
				monitor.L("tenant", c.Run.Tenant), monitor.L("outcome", outcome))
		}
		m.ObserveL("flow_duration_seconds", c.Run.Duration().Seconds(), flowLabel)
		root := c.Run.Trace
		root.Walk(func(depth int, sp *trace.Span) {
			if depth == 0 || !sp.Ended() {
				return
			}
			m.ObserveL("flow_stage_seconds", sp.Duration().Seconds(),
				flowLabel, monitor.L("stage", sp.Stage()))
		})
		// The uninstrumented remainder is a stage of its own, so the
		// histograms account for every second of the run.
		totals := root.StageTotals()
		if n := len(totals); n > 0 {
			m.ObserveL("flow_stage_seconds", totals[n-1].Seconds,
				flowLabel, monitor.L("stage", trace.GapStage))
		}
	}
	observers := c.server.observers
	c.server.mu.Unlock()

	level := obslog.LevelInfo
	fields := []obslog.Field{
		obslog.F("flow", c.Run.Flow),
		obslog.F("outcome", outcome),
		obslog.F("duration", c.Run.Duration()),
	}
	if err != nil {
		level = obslog.LevelError
		fields = append(fields, obslog.F("class", string(c.Run.Class)), obslog.F("err", err))
	}
	obslog.Log(c.ctx, level, "flow", "run completed", fields...)
	// Observers run outside the server lock: the SLO engine may fire an
	// alert event, and neither it nor its journal calls back into flow.
	for _, o := range observers {
		o.RunCompleted(c.ctx, c.Run.Flow, outcome, c.Run.Duration())
	}
}

// Logf appends a structured log line to the run.
func (c *Ctx) Logf(level, format string, args ...interface{}) {
	c.server.mu.Lock()
	defer c.server.mu.Unlock()
	c.Run.Logs = append(c.Run.Logs, LogEntry{
		Time: c.Env.Now(), Level: level, Msg: fmt.Sprintf(format, args...),
	})
}

// TaskOptions configures retry, deadline, and idempotency behaviour for
// one task.
type TaskOptions struct {
	// Retries is the number of re-attempts after the first failure. Only
	// Transient faults are retried; Permanent, Timeout, and Cancelled
	// classifications short-circuit the loop.
	Retries int
	// RetryDelay is the base backoff between attempts, doubled each time.
	RetryDelay time.Duration
	// Timeout bounds the whole task (all attempts and backoffs) relative
	// to its start on the env clock; 0 means unbounded. On the real clock
	// the task body's context also carries the deadline; on the virtual
	// clock the budget is enforced between attempts.
	Timeout time.Duration
	// Deadline is an absolute bound on the env clock (zero means none).
	// When both are set the earlier wins.
	Deadline time.Time
	// IdempotencyKey, when non-empty, causes the task to be skipped if a
	// task with the same key already completed on this server (across
	// all runs) — making flow-level retries safe.
	IdempotencyKey string
}

// deadline resolves the effective absolute deadline at task start.
func (o TaskOptions) deadline(now time.Time) time.Time {
	d := o.Deadline
	if o.Timeout > 0 {
		if t := now.Add(o.Timeout); d.IsZero() || t.Before(d) {
			d = t
		}
	}
	return d
}

// Task executes fn with the configured retry policy and records the
// result, returning fn's final error. fn receives the flow's context
// (with the task deadline attached when running on the real clock);
// cancelling it aborts the retry loop within one env-clock tick, and a
// Permanent fault from fn short-circuits retries entirely.
func (c *Ctx) Task(name string, opts TaskOptions, fn func(ctx context.Context) error) error {
	tr := &TaskRun{Name: name, State: Running, Start: c.Env.Now()}
	span := c.Run.Trace.StartChild(name, tr.Start)
	c.server.mu.Lock()
	c.Run.Tasks = append(c.Run.Tasks, tr)
	cached := opts.IdempotencyKey != "" && c.server.idemp[opts.IdempotencyKey]
	c.server.mu.Unlock()

	if cached {
		// TaskRun mutations happen under the server lock so the snapshot
		// readers (Runs/InFlight/RunByID) never observe torn state.
		c.server.mu.Lock()
		tr.Cached = true
		tr.State = Completed
		tr.End = c.Env.Now()
		c.server.mu.Unlock()
		span.End(tr.End)
		obslog.Debug(c.ctx, "flow", "task skipped (idempotent)",
			obslog.F("task", name), obslog.F("key", opts.IdempotencyKey))
		return nil
	}

	deadline := opts.deadline(c.Env.Now())
	tctx := trace.NewContext(c.ctx, span)
	obslog.Debug(tctx, "flow", "task started", obslog.F("task", name))
	if !deadline.IsZero() {
		if _, real := c.Env.(RealEnv); real {
			var cancel context.CancelFunc
			tctx, cancel = context.WithDeadline(tctx, deadline)
			defer cancel()
		}
	}

	var err error
	for attempt := 0; attempt <= opts.Retries; attempt++ {
		if attempt > 0 {
			c.Logf("WARN", "task %s attempt %d after error: %v", name, attempt+1, err)
			obslog.Warn(tctx, "flow", "task retrying",
				obslog.F("task", name), obslog.F("attempt", attempt+1),
				obslog.F("backoff", opts.RetryDelay<<(attempt-1)), obslog.F("err", err))
			if serr := SleepCtx(c.ctx, c.Env, opts.RetryDelay<<(attempt-1)); serr != nil {
				err = fmt.Errorf("flow: task %s retry aborted: %w", name, serr)
				break
			}
		}
		if cerr := c.ctx.Err(); cerr != nil {
			err = fmt.Errorf("flow: task %s aborted: %w", name, cerr)
			break
		}
		if !deadline.IsZero() && !c.Env.Now().Before(deadline) {
			err = faults.Wrap(faults.Timeout,
				fmt.Errorf("flow: task %s deadline exceeded: %w", name, context.DeadlineExceeded))
			break
		}
		c.server.mu.Lock()
		tr.Attempts++
		c.server.mu.Unlock()
		err = fn(tctx)
		if err == nil {
			break
		}
		if cls := faults.Classify(err); !cls.Retryable() {
			c.Logf("WARN", "task %s %s fault, not retrying: %v", name, cls, err)
			obslog.Warn(tctx, "flow", "task fault not retryable",
				obslog.F("task", name), obslog.F("class", string(cls)), obslog.F("err", err))
			break
		}
	}
	c.server.mu.Lock()
	tr.End = c.Env.Now()
	if err != nil {
		tr.Class = faults.Classify(err)
		if tr.Class == faults.Cancelled {
			tr.State = Cancelled
		} else {
			tr.State = Failed
		}
		tr.Err = err.Error()
	} else {
		tr.State = Completed
	}
	attempts, class, dur := tr.Attempts, tr.Class, tr.Duration()
	c.server.mu.Unlock()
	span.End(tr.End)
	if err != nil {
		obslog.Error(tctx, "flow", "task failed",
			obslog.F("task", name), obslog.F("class", string(class)),
			obslog.F("attempts", attempts), obslog.F("err", err))
		return err
	}
	obslog.Info(tctx, "flow", "task completed",
		obslog.F("task", name), obslog.F("duration", dur),
		obslog.F("attempts", attempts))
	if opts.IdempotencyKey != "" {
		c.server.mu.Lock()
		c.server.idemp[opts.IdempotencyKey] = true
		c.server.mu.Unlock()
	}
	return nil
}

// cloneRunLocked deep-copies a run's mutable state so readers hold a
// snapshot instead of aliasing live server state: the Run itself, its
// TaskRun values, and its log slice are copied; the Trace pointer is
// shared because span trees are internally locked and append-only.
// Callers hold s.mu.
func cloneRunLocked(r *Run) *Run {
	c := *r
	if len(r.Tasks) > 0 {
		c.Tasks = make([]*TaskRun, len(r.Tasks))
		for i, t := range r.Tasks {
			tc := *t
			c.Tasks[i] = &tc
		}
	}
	if len(r.Logs) > 0 {
		c.Logs = append([]LogEntry(nil), r.Logs...)
	}
	return &c
}

// Runs returns snapshots of all runs of a flow (all flows if name is
// empty), in start order. The returned runs are defensive copies: they do
// not alias the server's live state, so callers may inspect them without
// racing Start/Complete.
func (s *Server) Runs(name string) []*Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Run
	for _, r := range s.runs {
		if name == "" || r.Flow == name {
			out = append(out, cloneRunLocked(r))
		}
	}
	return out
}

// InFlight returns snapshots of the runs still in the RUNNING state —
// what a graceful shutdown reports before exiting.
func (s *Server) InFlight() []*Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Run
	for _, r := range s.runs {
		if r.State == Running {
			out = append(out, cloneRunLocked(r))
		}
	}
	return out
}

// Outcomes are a flow's terminal run counts under the fault taxonomy.
type Outcomes struct {
	Succeeded       int
	FailedTransient int
	FailedPermanent int
	Cancelled       int
}

// Outcomes tallies the finished runs of a flow (all flows if name is
// empty) by outcome. Timeout-classified failures count as transient, as a
// rerun gets a fresh deadline.
func (s *Server) Outcomes(name string) Outcomes {
	s.mu.Lock()
	defer s.mu.Unlock()
	var o Outcomes
	for _, r := range s.runs {
		if name != "" && r.Flow != name {
			continue
		}
		switch outcomeOf(r.State, r.Class) {
		case OutcomeSucceeded:
			if r.State == Completed {
				o.Succeeded++
			}
		case OutcomeCancelled:
			o.Cancelled++
		case OutcomeFailedPermanent:
			o.FailedPermanent++
		case OutcomeFailedTransient:
			if r.State == Failed {
				o.FailedTransient++
			}
		}
	}
	return o
}

// FlowNames returns the distinct flow names seen, sorted.
func (s *Server) FlowNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := map[string]bool{}
	for _, r := range s.runs {
		seen[r.Flow] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Durations returns completed-run durations in seconds for a flow,
// optionally limited to the most recent n runs (n ≤ 0 means all) — the
// query behind "the last 100 successful flow runs".
func (s *Server) Durations(name string, n int) []float64 {
	runs := s.Runs(name)
	var out []float64
	for _, r := range runs {
		if r.State == Completed {
			out = append(out, r.Duration().Seconds())
		}
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Summary returns Table 2 style statistics over the last n successful
// runs of a flow.
func (s *Server) Summary(name string, n int) stats.Summary {
	return stats.Summarize(s.Durations(name, n))
}

// RunByID returns a snapshot of the run with the given ID, if any.
func (s *Server) RunByID(id int) (*Run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.runs {
		if r.ID == id {
			return cloneRunLocked(r), true
		}
	}
	return nil, false
}

// StageStat is one entry of a flow's per-stage latency breakdown.
type StageStat struct {
	Stage string
	MeanS float64
}

// StageMeans returns the mean seconds spent per top-level stage over the
// last n completed runs of a flow (n ≤ 0 means all), in task execution
// order with the trace.GapStage remainder last. Because each run's stage
// totals sum to its duration, the stage means sum to the flow's mean
// duration — the property that lets Table 2's right-skew be attributed
// to a stage.
func (s *Server) StageMeans(name string, n int) []StageStat {
	runs := s.Runs(name)
	var completed []*Run
	for _, r := range runs {
		if r.State == Completed {
			completed = append(completed, r)
		}
	}
	if n > 0 && len(completed) > n {
		completed = completed[len(completed)-n:]
	}
	if len(completed) == 0 {
		return nil
	}
	var order []string
	sums := map[string]float64{}
	var gap float64
	for _, r := range completed {
		for _, st := range r.Trace.StageTotals() {
			if st.Stage == trace.GapStage {
				gap += st.Seconds
				continue
			}
			if _, seen := sums[st.Stage]; !seen {
				order = append(order, st.Stage)
			}
			sums[st.Stage] += st.Seconds
		}
	}
	nf := float64(len(completed))
	out := make([]StageStat, 0, len(order)+1)
	for _, st := range order {
		out = append(out, StageStat{Stage: st, MeanS: sums[st] / nf})
	}
	return append(out, StageStat{Stage: trace.GapStage, MeanS: gap / nf})
}

// SuccessRate returns the fraction of finished runs that completed.
// Cancelled runs are excluded: withdrawn work is neither a success nor a
// failure of the pipeline.
func (s *Server) SuccessRate(name string) float64 {
	runs := s.Runs(name)
	var done, ok int
	for _, r := range runs {
		switch r.State {
		case Completed:
			done++
			ok++
		case Failed:
			done++
		}
	}
	if done == 0 {
		return 0
	}
	return float64(ok) / float64(done)
}

package flow

import "repro/internal/sim"

// Limiter bounds the number of flows of a class that run concurrently —
// the paper's Prefect workers use "tuned concurrency for scan detection
// tasks, but lower concurrency for HPC job submission to prevent queue
// conflicts". Implementations exist for both clocks.
type Limiter interface {
	// Acquire blocks until a slot is free. The argument is the SimEnv
	// process when running on the virtual clock; RealLimiter ignores it.
	Acquire(env Env)
	Release()
}

// SimLimiter bounds concurrency on the virtual clock.
type SimLimiter struct {
	res *sim.Resource
}

// NewSimLimiter creates a limiter with n slots on the engine.
func NewSimLimiter(e *sim.Engine, n int) *SimLimiter {
	return &SimLimiter{res: sim.NewResource(e, n)}
}

// Acquire takes a slot, blocking the simulated process.
func (l *SimLimiter) Acquire(env Env) {
	se, ok := env.(SimEnv)
	if !ok {
		panic("flow: SimLimiter used with a non-sim Env")
	}
	l.res.Acquire(se.P)
}

// Release frees a slot.
func (l *SimLimiter) Release() { l.res.Release() }

// PeakQueue reports the worst queueing observed (congestion diagnostics).
func (l *SimLimiter) PeakQueue() int { return l.res.PeakQueue }

// RealLimiter bounds concurrency on the wall clock with a semaphore
// channel.
type RealLimiter struct {
	sem chan struct{}
}

// NewRealLimiter creates a limiter with n slots.
func NewRealLimiter(n int) *RealLimiter {
	if n < 1 {
		n = 1
	}
	return &RealLimiter{sem: make(chan struct{}, n)}
}

// Acquire takes a slot, blocking the goroutine.
func (l *RealLimiter) Acquire(Env) { l.sem <- struct{}{} }

// Release frees a slot.
func (l *RealLimiter) Release() { <-l.sem }

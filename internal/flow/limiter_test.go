package flow

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestSimLimiterBoundsConcurrency(t *testing.T) {
	e := sim.New(epoch)
	lim := NewSimLimiter(e, 2)
	inFlight, peak := 0, 0
	for i := 0; i < 6; i++ {
		e.Go("w", func(p *sim.Proc) {
			lim.Acquire(SimEnv{P: p})
			inFlight++
			if inFlight > peak {
				peak = inFlight
			}
			p.Sleep(time.Minute)
			inFlight--
			lim.Release()
		})
	}
	e.Run()
	if peak != 2 {
		t.Fatalf("peak concurrency %d, want 2", peak)
	}
	if lim.PeakQueue() != 4 {
		t.Fatalf("peak queue %d, want 4", lim.PeakQueue())
	}
}

func TestSimLimiterPanicsOnRealEnv(t *testing.T) {
	e := sim.New(epoch)
	lim := NewSimLimiter(e, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	lim.Acquire(RealEnv{})
}

func TestRealLimiter(t *testing.T) {
	lim := NewRealLimiter(0) // floored to 1
	done := make(chan struct{})
	lim.Acquire(RealEnv{})
	go func() {
		lim.Acquire(RealEnv{}) // blocks until release
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("second acquire should have blocked")
	case <-time.After(20 * time.Millisecond):
	}
	lim.Release()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("release did not unblock waiter")
	}
	lim.Release()
}

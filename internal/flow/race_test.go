package flow

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/obslog"
	"repro/internal/sim"
)

// TestSnapshotReadersRaceStartComplete hammers the read API against
// concurrent Start/Task/Complete on the real clock. Before Runs/InFlight
// returned defensive copies this raced under -race: readers iterated
// Tasks and Logs slices the writers were still appending to.
func TestSnapshotReadersRaceStartComplete(t *testing.T) {
	s := NewServer()
	env := RealEnv{}
	const writers, runsPer = 4, 25

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, r := range s.Runs("") {
					_ = r.Duration()
					for _, task := range r.Tasks {
						_ = task.Attempts
						_ = task.State
					}
					_ = len(r.Logs)
				}
				for _, r := range s.InFlight() {
					_ = r.State
				}
				_ = s.Durations("race_flow", 10)
				if r, ok := s.RunByID(1); ok {
					_ = r.Tasks
				}
				_ = s.Outcomes("")
				_ = s.SuccessRate("race_flow")
			}
		}()
	}

	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < runsPer; i++ {
				c := s.Start(context.Background(), "race_flow", env)
				c.Logf("INFO", "writer %d run %d", w, i)
				_ = c.Task("step", TaskOptions{Retries: 1}, func(ctx context.Context) error {
					if i%5 == 0 {
						return errors.New("transient wobble")
					}
					return nil
				})
				c.Complete(nil)
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	if got := len(s.Runs("race_flow")); got != writers*runsPer {
		t.Fatalf("runs = %d, want %d", got, writers*runsPer)
	}
}

// TestSnapshotsDoNotAliasLiveState mutates a returned snapshot and
// verifies the server's history is untouched.
func TestSnapshotsDoNotAliasLiveState(t *testing.T) {
	s := NewServer()
	env := RealEnv{}
	c := s.Start(context.Background(), "snap_flow", env)
	_ = c.Task("only", TaskOptions{}, func(ctx context.Context) error { return nil })
	c.Complete(nil)

	snap := s.Runs("snap_flow")[0]
	snap.State = Failed
	snap.Tasks[0].State = Failed
	snap.Logs = append(snap.Logs, LogEntry{Msg: "tampered"})

	fresh, ok := s.RunByID(snap.ID)
	if !ok {
		t.Fatal("run not found")
	}
	if fresh.State != Completed || fresh.Tasks[0].State != Completed {
		t.Fatalf("server state mutated through snapshot: %+v", fresh)
	}
	for _, l := range fresh.Logs {
		if l.Msg == "tampered" {
			t.Fatal("log slice aliased live state")
		}
	}
}

// TestTenantIdentity verifies the tenant threading: a run started under a
// tenant context records it on the Run, the root span, the journal
// events, and the per-tenant outcome counter.
func TestTenantIdentity(t *testing.T) {
	s := NewServer()
	reg := monitor.NewRegistry()
	s.SetMetrics(reg)
	eng := sim.New(epoch)
	jr := obslog.New(eng, 0)
	s.SetJournal(jr)

	eng.Go("run", func(p *sim.Proc) {
		ctx := obslog.WithTenant(context.Background(), "bl2/streaming")
		c := s.Start(ctx, "tenant_flow", SimEnv{P: p})
		p.Sleep(time.Second)
		c.Complete(nil)
	})
	eng.Run()

	r := s.Runs("tenant_flow")[0]
	if r.Tenant != "bl2/streaming" {
		t.Fatalf("Run.Tenant = %q, want bl2/streaming", r.Tenant)
	}
	attrs := r.Trace.Attrs()
	if len(attrs) != 1 || attrs[0].Key != "tenant" || attrs[0].Value != "bl2/streaming" {
		t.Fatalf("root span attrs = %+v", attrs)
	}
	if evs := jr.Events(obslog.Filter{Tenant: "bl2/streaming"}); len(evs) == 0 {
		t.Fatal("no journal events carried the tenant")
	}
	series := `flow_tenant_runs_total{tenant="bl2/streaming",outcome="succeeded"}`
	if got := reg.Counter(series); got != 1 {
		t.Fatalf("%s = %g, want 1", series, got)
	}
}

// obsFunc adapts a func to CompletionObserver.
type obsFunc func(flow, outcome string)

func (f obsFunc) RunCompleted(ctx context.Context, flow, outcome string, d time.Duration) {
	f(flow, outcome)
}

// startFunc adapts a func to StartObserver.
type startFunc func(ctx context.Context, flow string)

func (f startFunc) RunStarted(ctx context.Context, flow string) { f(ctx, flow) }

// TestMultipleObservers verifies AddObserver fan-out and the start
// observer hook firing with the run-correlated context.
func TestMultipleObservers(t *testing.T) {
	s := NewServer()
	var mu sync.Mutex
	var completions []string
	var startedRun int
	s.SetObserver(obsFunc(func(flow, outcome string) {
		mu.Lock()
		completions = append(completions, "a:"+flow+":"+outcome)
		mu.Unlock()
	}))
	s.AddObserver(obsFunc(func(flow, outcome string) {
		mu.Lock()
		completions = append(completions, "b:"+flow+":"+outcome)
		mu.Unlock()
	}))
	s.AddStartObserver(startFunc(func(ctx context.Context, flow string) {
		mu.Lock()
		startedRun = obslog.RunFromContext(ctx)
		mu.Unlock()
	}))

	c := s.Start(context.Background(), "obs_flow", RealEnv{})
	c.Complete(nil)

	mu.Lock()
	defer mu.Unlock()
	if startedRun != c.Run.ID {
		t.Fatalf("start observer saw run %d, want %d", startedRun, c.Run.ID)
	}
	want := []string{"a:obs_flow:succeeded", "b:obs_flow:succeeded"}
	if len(completions) != 2 || completions[0] != want[0] || completions[1] != want[1] {
		t.Fatalf("completions = %v, want %v", completions, want)
	}
}

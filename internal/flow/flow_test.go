package flow

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/sim"
)

var epoch = time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)

func TestFlowRunLifecycle(t *testing.T) {
	s := NewServer()
	e := sim.New(epoch)
	e.Go("f", func(p *sim.Proc) {
		ctx := s.Start("new_file_832", SimEnv{p})
		err := ctx.Task("copy", TaskOptions{}, func() error {
			p.Sleep(30 * time.Second)
			return nil
		})
		ctx.Complete(err)
	})
	e.Run()
	runs := s.Runs("new_file_832")
	if len(runs) != 1 {
		t.Fatalf("runs = %d", len(runs))
	}
	r := runs[0]
	if r.State != Completed || r.Duration() != 30*time.Second {
		t.Fatalf("run %+v", r)
	}
	if len(r.Tasks) != 1 || r.Tasks[0].State != Completed || r.Tasks[0].Attempts != 1 {
		t.Fatalf("task %+v", r.Tasks[0])
	}
}

func TestTaskRetryBackoff(t *testing.T) {
	s := NewServer()
	e := sim.New(epoch)
	var calls int
	e.Go("f", func(p *sim.Proc) {
		ctx := s.Start("flaky", SimEnv{p})
		err := ctx.Task("t", TaskOptions{Retries: 3, RetryDelay: 10 * time.Second}, func() error {
			calls++
			if calls < 3 {
				return errors.New("blip")
			}
			return nil
		})
		ctx.Complete(err)
	})
	end := e.Run()
	if calls != 3 {
		t.Fatalf("calls = %d", calls)
	}
	// Backoffs: 10 + 20 = 30 s.
	if end.Sub(epoch) != 30*time.Second {
		t.Fatalf("elapsed %v, want 30s of backoff", end.Sub(epoch))
	}
	r := s.Runs("flaky")[0]
	if r.State != Completed || r.Tasks[0].Attempts != 3 {
		t.Fatalf("run %+v task %+v", r, r.Tasks[0])
	}
	if len(r.Logs) != 2 {
		t.Fatalf("expected 2 retry warnings, got %d", len(r.Logs))
	}
}

func TestTaskFailureAfterRetries(t *testing.T) {
	s := NewServer()
	e := sim.New(epoch)
	e.Go("f", func(p *sim.Proc) {
		ctx := s.Start("doomed", SimEnv{p})
		err := ctx.Task("t", TaskOptions{Retries: 2}, func() error {
			return errors.New("hard down")
		})
		ctx.Complete(err)
	})
	e.Run()
	r := s.Runs("doomed")[0]
	if r.State != Failed || r.Err != "hard down" {
		t.Fatalf("run %+v", r)
	}
	if r.Tasks[0].Attempts != 3 || r.Tasks[0].State != Failed {
		t.Fatalf("task %+v", r.Tasks[0])
	}
	if s.SuccessRate("doomed") != 0 {
		t.Fatalf("success rate %v", s.SuccessRate("doomed"))
	}
}

func TestIdempotencySkipsCompletedWork(t *testing.T) {
	s := NewServer()
	e := sim.New(epoch)
	var executions int
	runOnce := func(p *sim.Proc) error {
		ctx := s.Start("recon", SimEnv{p})
		err := ctx.Task("copy", TaskOptions{IdempotencyKey: "copy:scan42"}, func() error {
			executions++
			p.Sleep(time.Minute)
			return nil
		})
		ctx.Complete(err)
		return err
	}
	e.Go("first", func(p *sim.Proc) { runOnce(p) })
	e.Go("second", func(p *sim.Proc) { p.Sleep(2 * time.Minute); runOnce(p) })
	e.Run()
	if executions != 1 {
		t.Fatalf("task body ran %d times, want 1 (idempotent retry)", executions)
	}
	second := s.Runs("recon")[1]
	if !second.Tasks[0].Cached || second.Tasks[0].State != Completed {
		t.Fatalf("second task %+v should be cached", second.Tasks[0])
	}
}

func TestIdempotencyNotSetOnFailure(t *testing.T) {
	s := NewServer()
	e := sim.New(epoch)
	calls := 0
	e.Go("f", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			ctx := s.Start("r", SimEnv{p})
			err := ctx.Task("t", TaskOptions{IdempotencyKey: "k"}, func() error {
				calls++
				if calls == 1 {
					return errors.New("fail once")
				}
				return nil
			})
			ctx.Complete(err)
		}
	})
	e.Run()
	if calls != 2 {
		t.Fatalf("failed task should not poison the idempotency key: calls=%d", calls)
	}
}

func TestDurationsLastN(t *testing.T) {
	s := NewServer()
	e := sim.New(epoch)
	e.Go("f", func(p *sim.Proc) {
		for i := 1; i <= 5; i++ {
			ctx := s.Start("w", SimEnv{p})
			d := time.Duration(i) * time.Second
			ctx.Task("t", TaskOptions{}, func() error { p.Sleep(d); return nil })
			ctx.Complete(nil)
		}
		// One failed run must be excluded.
		ctx := s.Start("w", SimEnv{p})
		ctx.Complete(errors.New("x"))
	})
	e.Run()
	all := s.Durations("w", 0)
	if len(all) != 5 {
		t.Fatalf("durations = %v", all)
	}
	last3 := s.Durations("w", 3)
	if len(last3) != 3 || last3[0] != 3 || last3[2] != 5 {
		t.Fatalf("last3 = %v", last3)
	}
	sum := s.Summary("w", 0)
	if sum.N != 5 || sum.Mean != 3 {
		t.Fatalf("summary %+v", sum)
	}
	if got := s.SuccessRate("w"); got != 5.0/6.0 {
		t.Fatalf("success rate %v", got)
	}
}

func TestFlowNames(t *testing.T) {
	s := NewServer()
	env := RealEnv{}
	s.Start("b", env).Complete(nil)
	s.Start("a", env).Complete(nil)
	s.Start("b", env).Complete(nil)
	names := s.FlowNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if s.SuccessRate("missing") != 0 {
		t.Fatal("unknown flow success rate should be 0")
	}
}

func TestRealEnv(t *testing.T) {
	env := RealEnv{}
	t0 := env.Now()
	env.Sleep(time.Millisecond)
	if !env.Now().After(t0) {
		t.Fatal("real clock did not advance")
	}
}

func TestHTTPAPI(t *testing.T) {
	s := NewServer()
	e := sim.New(epoch)
	e.Go("f", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			ctx := s.Start("nersc_recon_flow", SimEnv{p})
			err := ctx.Task("recon", TaskOptions{Retries: 1}, func() error {
				p.Sleep(25 * time.Minute)
				return nil
			})
			ctx.Complete(err)
		}
	})
	e.Run()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/flows")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var names []string
	json.NewDecoder(resp.Body).Decode(&names)
	if len(names) != 1 || names[0] != "nersc_recon_flow" {
		t.Fatalf("names = %v", names)
	}

	r2, errr2 := http.Get(srv.URL + "/api/flows/nersc_recon_flow/stats?last=100")
	if errr2 != nil {
		t.Fatal(errr2)
	}
	defer r2.Body.Close()
	var st map[string]interface{}
	json.NewDecoder(r2.Body).Decode(&st)
	if st["n"].(float64) != 3 || st["mean_s"].(float64) != 1500 {
		t.Fatalf("stats = %v", st)
	}
	if st["success_rate"].(float64) != 1 {
		t.Fatalf("success rate = %v", st["success_rate"])
	}

	r3, errr3 := http.Get(srv.URL + "/api/flows/nersc_recon_flow/runs")
	if errr3 != nil {
		t.Fatal(errr3)
	}
	defer r3.Body.Close()
	var runs []map[string]interface{}
	json.NewDecoder(r3.Body).Decode(&runs)
	if len(runs) != 3 || runs[0]["state"].(string) != "COMPLETED" {
		t.Fatalf("runs = %v", runs)
	}

	r4, errr4 := http.Get(srv.URL + "/api/flows/x")
	if errr4 != nil {
		t.Fatal(errr4)
	}
	defer r4.Body.Close()
	if r4.StatusCode != http.StatusNotFound {
		t.Fatalf("bad path status = %d", r4.StatusCode)
	}
	r5, errr5 := http.Get(srv.URL + "/api/flows/x/bogus")
	if errr5 != nil {
		t.Fatal(errr5)
	}
	defer r5.Body.Close()
	if r5.StatusCode != http.StatusNotFound {
		t.Fatalf("bogus subresource status = %d", r5.StatusCode)
	}
}

func TestConcurrentRunsThreadSafe(t *testing.T) {
	// Real-time smoke test for the mutex paths: many goroutines record
	// runs simultaneously.
	s := NewServer()
	done := make(chan struct{})
	for i := 0; i < 20; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			ctx := s.Start("par", RealEnv{})
			ctx.Logf("INFO", "hello")
			ctx.Task("t", TaskOptions{}, func() error { return nil })
			ctx.Complete(nil)
		}()
	}
	for i := 0; i < 20; i++ {
		<-done
	}
	if len(s.Runs("par")) != 20 {
		t.Fatalf("runs = %d", len(s.Runs("par")))
	}
}

package flow

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/monitor"
	"repro/internal/sim"
)

var epoch = time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)

func TestFlowRunLifecycle(t *testing.T) {
	s := NewServer()
	e := sim.New(epoch)
	e.Go("f", func(p *sim.Proc) {
		fc := s.Start(nil, "new_file_832", SimEnv{p})
		err := fc.Task("copy", TaskOptions{}, func(context.Context) error {
			p.Sleep(30 * time.Second)
			return nil
		})
		fc.Complete(err)
	})
	e.Run()
	runs := s.Runs("new_file_832")
	if len(runs) != 1 {
		t.Fatalf("runs = %d", len(runs))
	}
	r := runs[0]
	if r.State != Completed || r.Duration() != 30*time.Second {
		t.Fatalf("run %+v", r)
	}
	if len(r.Tasks) != 1 || r.Tasks[0].State != Completed || r.Tasks[0].Attempts != 1 {
		t.Fatalf("task %+v", r.Tasks[0])
	}
}

func TestTaskRetryBackoff(t *testing.T) {
	s := NewServer()
	e := sim.New(epoch)
	var calls int
	e.Go("f", func(p *sim.Proc) {
		fc := s.Start(nil, "flaky", SimEnv{p})
		err := fc.Task("t", TaskOptions{Retries: 3, RetryDelay: 10 * time.Second}, func(context.Context) error {
			calls++
			if calls < 3 {
				return errors.New("blip")
			}
			return nil
		})
		fc.Complete(err)
	})
	end := e.Run()
	if calls != 3 {
		t.Fatalf("calls = %d", calls)
	}
	// Backoffs: 10 + 20 = 30 s.
	if end.Sub(epoch) != 30*time.Second {
		t.Fatalf("elapsed %v, want 30s of backoff", end.Sub(epoch))
	}
	r := s.Runs("flaky")[0]
	if r.State != Completed || r.Tasks[0].Attempts != 3 {
		t.Fatalf("run %+v task %+v", r, r.Tasks[0])
	}
	if len(r.Logs) != 2 {
		t.Fatalf("expected 2 retry warnings, got %d", len(r.Logs))
	}
}

func TestTaskFailureAfterRetries(t *testing.T) {
	s := NewServer()
	e := sim.New(epoch)
	e.Go("f", func(p *sim.Proc) {
		fc := s.Start(nil, "doomed", SimEnv{p})
		err := fc.Task("t", TaskOptions{Retries: 2}, func(context.Context) error {
			return errors.New("hard down")
		})
		fc.Complete(err)
	})
	e.Run()
	r := s.Runs("doomed")[0]
	if r.State != Failed || r.Err != "hard down" {
		t.Fatalf("run %+v", r)
	}
	if r.Tasks[0].Attempts != 3 || r.Tasks[0].State != Failed {
		t.Fatalf("task %+v", r.Tasks[0])
	}
	if r.Class != faults.Transient || r.Tasks[0].Class != faults.Transient {
		t.Fatalf("plain errors classify transient, got run=%v task=%v", r.Class, r.Tasks[0].Class)
	}
	if s.SuccessRate("doomed") != 0 {
		t.Fatalf("success rate %v", s.SuccessRate("doomed"))
	}
}

// TestTaskPermanentNotRetried: a faults.Permanent error short-circuits the
// retry loop entirely — one attempt, no backoff time elapsed.
func TestTaskPermanentNotRetried(t *testing.T) {
	s := NewServer()
	e := sim.New(epoch)
	var calls int
	e.Go("f", func(p *sim.Proc) {
		fc := s.Start(nil, "denied", SimEnv{p})
		err := fc.Task("t", TaskOptions{Retries: 5, RetryDelay: time.Minute}, func(context.Context) error {
			calls++
			return faults.Errorf(faults.Permanent, "permission denied")
		})
		fc.Complete(err)
	})
	end := e.Run()
	if calls != 1 {
		t.Fatalf("permanent fault was retried: calls = %d", calls)
	}
	if end.Sub(epoch) != 0 {
		t.Fatalf("no backoff should elapse, got %v", end.Sub(epoch))
	}
	r := s.Runs("denied")[0]
	if r.State != Failed || r.Class != faults.Permanent {
		t.Fatalf("run %+v", r)
	}
	tr := r.Tasks[0]
	if tr.Attempts != 1 || tr.State != Failed || tr.Class != faults.Permanent {
		t.Fatalf("task %+v", tr)
	}
}

// TestTaskCancellationMidRetry: cancelling the parent ctx aborts an
// in-flight retry loop within one env-clock tick — the sleep that was in
// flight finishes, then the loop stops instead of attempting again.
func TestTaskCancellationMidRetry(t *testing.T) {
	s := NewServer()
	e := sim.New(epoch)
	ctx, cancel := context.WithCancel(context.Background())
	var calls int
	e.Go("flow", func(p *sim.Proc) {
		fc := s.Start(ctx, "stuck", SimEnv{p})
		err := fc.Task("t", TaskOptions{Retries: 10, RetryDelay: 10 * time.Second}, func(context.Context) error {
			calls++
			return errors.New("still down")
		})
		fc.Complete(err)
	})
	e.Go("operator", func(p *sim.Proc) {
		p.Sleep(15 * time.Second)
		cancel()
	})
	end := e.Run()
	// Attempt 1 at t=0 fails, backoff 10s; attempt 2 at t=10 fails,
	// backoff 20s wakes at t=30 — the first tick after the t=15 cancel —
	// and the loop aborts without a third attempt.
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (no attempt after cancel)", calls)
	}
	if got := end.Sub(epoch); got != 30*time.Second {
		t.Fatalf("aborted at %v, want 30s (one in-flight backoff tick)", got)
	}
	r := s.Runs("stuck")[0]
	if r.State != Cancelled || r.Class != faults.Cancelled {
		t.Fatalf("run %+v", r)
	}
	if r.Tasks[0].State != Cancelled || r.Tasks[0].Attempts != 2 {
		t.Fatalf("task %+v", r.Tasks[0])
	}
}

// TestTaskCancelledBeforeStart: a task on an already-cancelled ctx never
// runs its body.
func TestTaskCancelledBeforeStart(t *testing.T) {
	s := NewServer()
	e := sim.New(epoch)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls int
	e.Go("f", func(p *sim.Proc) {
		fc := s.Start(ctx, "dead", SimEnv{p})
		err := fc.Task("t", TaskOptions{Retries: 3}, func(context.Context) error {
			calls++
			return nil
		})
		fc.Complete(err)
	})
	e.Run()
	if calls != 0 {
		t.Fatalf("body ran %d times on a dead ctx", calls)
	}
	r := s.Runs("dead")[0]
	if r.State != Cancelled || r.Tasks[0].Attempts != 0 {
		t.Fatalf("run %+v task %+v", r, r.Tasks[0])
	}
}

// TestTaskTimeoutSimClock: the per-task Timeout budget bounds retries on
// the virtual clock.
func TestTaskTimeoutSimClock(t *testing.T) {
	s := NewServer()
	e := sim.New(epoch)
	var calls int
	e.Go("f", func(p *sim.Proc) {
		fc := s.Start(nil, "slow", SimEnv{p})
		err := fc.Task("t", TaskOptions{
			Retries: 10, RetryDelay: 10 * time.Second, Timeout: 15 * time.Second,
		}, func(context.Context) error {
			calls++
			p.Sleep(10 * time.Second)
			return errors.New("not yet")
		})
		fc.Complete(err)
	})
	e.Run()
	// Attempt 1 runs t=0→10, backoff wakes at t=20 > 15s budget: no
	// second attempt, the task fails as a Timeout.
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (budget spent)", calls)
	}
	r := s.Runs("slow")[0]
	if r.State != Failed || r.Class != faults.Timeout {
		t.Fatalf("run %+v", r)
	}
	if tr := r.Tasks[0]; tr.Attempts != 1 || tr.Class != faults.Timeout {
		t.Fatalf("task %+v", tr)
	}
}

// TestTaskDeadlineRealClock: on the real clock the deadline is attached to
// the task body's ctx, so a blocking body is interrupted promptly.
func TestTaskDeadlineRealClock(t *testing.T) {
	s := NewServer()
	fc := s.Start(context.Background(), "rt", RealEnv{})
	start := time.Now()
	err := fc.Task("t", TaskOptions{Timeout: 30 * time.Millisecond}, func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	})
	fc.Complete(err)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline did not interrupt the body (%v)", elapsed)
	}
	if faults.Classify(err) != faults.Timeout {
		t.Fatalf("err = %v, class %v", err, faults.Classify(err))
	}
	r := s.Runs("rt")[0]
	if r.State != Failed || r.Class != faults.Timeout || r.Tasks[0].Attempts != 1 {
		t.Fatalf("run %+v task %+v", r, r.Tasks[0])
	}
}

// TestRealEnvSleepCtx: cancellation interrupts a real-clock sleep instead
// of letting the full duration elapse.
func TestRealEnvSleepCtx(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(5*time.Millisecond, cancel)
	defer timer.Stop()
	start := time.Now()
	err := RealEnv{}.SleepCtx(ctx, time.Hour)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("sleep was not interrupted")
	}
	if err := (RealEnv{}).SleepCtx(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("uncancelled sleep err = %v", err)
	}
}

func TestOutcomesAndMetrics(t *testing.T) {
	s := NewServer()
	reg := monitor.NewRegistry()
	s.SetMetrics(reg)
	env := RealEnv{}

	s.Start(nil, "mix", env).Complete(nil)
	s.Start(nil, "mix", env).Complete(nil)
	s.Start(nil, "mix", env).Complete(errors.New("blip"))
	s.Start(nil, "mix", env).Complete(faults.Errorf(faults.Permanent, "denied"))
	s.Start(nil, "mix", env).Complete(faults.Wrap(faults.Timeout, context.DeadlineExceeded))
	s.Start(nil, "mix", env).Complete(context.Canceled)

	oc := s.Outcomes("mix")
	// Timeout counts as transient: a rerun gets a fresh deadline.
	want := Outcomes{Succeeded: 2, FailedTransient: 2, FailedPermanent: 1, Cancelled: 1}
	if oc != want {
		t.Fatalf("outcomes = %+v, want %+v", oc, want)
	}
	if all := s.Outcomes(""); all != want {
		t.Fatalf("all-flows outcomes = %+v", all)
	}

	if got := reg.Counter(`flow_runs_total{flow="mix",outcome="succeeded"}`); got != 2 {
		t.Fatalf("succeeded counter = %v", got)
	}
	if got := reg.Counter(`flow_runs_total{flow="mix",outcome="failed_transient"}`); got != 2 {
		t.Fatalf("failed_transient counter = %v", got)
	}
	if got := reg.Counter(`flow_runs_total{flow="mix",outcome="failed_permanent"}`); got != 1 {
		t.Fatalf("failed_permanent counter = %v", got)
	}
	if got := reg.Counter(`flow_runs_total{flow="mix",outcome="cancelled"}`); got != 1 {
		t.Fatalf("cancelled counter = %v", got)
	}

	// Cancelled runs are excluded from the success-rate denominator;
	// the two transient, one permanent, and one timeout failure count.
	if got := s.SuccessRate("mix"); got != 2.0/5.0 {
		t.Fatalf("success rate = %v", got)
	}
}

func TestInFlight(t *testing.T) {
	s := NewServer()
	env := RealEnv{}
	running := s.Start(nil, "long", env)
	s.Start(nil, "done", env).Complete(nil)
	inflight := s.InFlight()
	if len(inflight) != 1 || inflight[0].Flow != "long" {
		t.Fatalf("in flight = %+v", inflight)
	}
	running.Complete(nil)
	if got := s.InFlight(); len(got) != 0 {
		t.Fatalf("in flight after complete = %+v", got)
	}
}

func TestIdempotencySkipsCompletedWork(t *testing.T) {
	s := NewServer()
	e := sim.New(epoch)
	var executions int
	runOnce := func(p *sim.Proc) error {
		fc := s.Start(nil, "recon", SimEnv{p})
		err := fc.Task("copy", TaskOptions{IdempotencyKey: "copy:scan42"}, func(context.Context) error {
			executions++
			p.Sleep(time.Minute)
			return nil
		})
		fc.Complete(err)
		return err
	}
	e.Go("first", func(p *sim.Proc) { runOnce(p) })
	e.Go("second", func(p *sim.Proc) { p.Sleep(2 * time.Minute); runOnce(p) })
	e.Run()
	if executions != 1 {
		t.Fatalf("task body ran %d times, want 1 (idempotent retry)", executions)
	}
	second := s.Runs("recon")[1]
	if !second.Tasks[0].Cached || second.Tasks[0].State != Completed {
		t.Fatalf("second task %+v should be cached", second.Tasks[0])
	}
}

func TestIdempotencyNotSetOnFailure(t *testing.T) {
	s := NewServer()
	e := sim.New(epoch)
	calls := 0
	e.Go("f", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			fc := s.Start(nil, "r", SimEnv{p})
			err := fc.Task("t", TaskOptions{IdempotencyKey: "k"}, func(context.Context) error {
				calls++
				if calls == 1 {
					return errors.New("fail once")
				}
				return nil
			})
			fc.Complete(err)
		}
	})
	e.Run()
	if calls != 2 {
		t.Fatalf("failed task should not poison the idempotency key: calls=%d", calls)
	}
}

func TestDurationsLastN(t *testing.T) {
	s := NewServer()
	e := sim.New(epoch)
	e.Go("f", func(p *sim.Proc) {
		for i := 1; i <= 5; i++ {
			fc := s.Start(nil, "w", SimEnv{p})
			d := time.Duration(i) * time.Second
			fc.Task("t", TaskOptions{}, func(context.Context) error { p.Sleep(d); return nil })
			fc.Complete(nil)
		}
		// One failed run must be excluded.
		fc := s.Start(nil, "w", SimEnv{p})
		fc.Complete(errors.New("x"))
	})
	e.Run()
	all := s.Durations("w", 0)
	if len(all) != 5 {
		t.Fatalf("durations = %v", all)
	}
	last3 := s.Durations("w", 3)
	if len(last3) != 3 || last3[0] != 3 || last3[2] != 5 {
		t.Fatalf("last3 = %v", last3)
	}
	sum := s.Summary("w", 0)
	if sum.N != 5 || sum.Mean != 3 {
		t.Fatalf("summary %+v", sum)
	}
	if got := s.SuccessRate("w"); got != 5.0/6.0 {
		t.Fatalf("success rate %v", got)
	}
}

func TestFlowNames(t *testing.T) {
	s := NewServer()
	env := RealEnv{}
	s.Start(nil, "b", env).Complete(nil)
	s.Start(nil, "a", env).Complete(nil)
	s.Start(nil, "b", env).Complete(nil)
	names := s.FlowNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if s.SuccessRate("missing") != 0 {
		t.Fatal("unknown flow success rate should be 0")
	}
}

func TestRealEnv(t *testing.T) {
	env := RealEnv{}
	t0 := env.Now()
	env.Sleep(time.Millisecond)
	if !env.Now().After(t0) {
		t.Fatal("real clock did not advance")
	}
}

func TestHTTPAPI(t *testing.T) {
	s := NewServer()
	e := sim.New(epoch)
	e.Go("f", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			fc := s.Start(nil, "nersc_recon_flow", SimEnv{p})
			err := fc.Task("recon", TaskOptions{Retries: 1}, func(context.Context) error {
				p.Sleep(25 * time.Minute)
				return nil
			})
			fc.Complete(err)
		}
	})
	e.Run()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/flows")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var names []string
	json.NewDecoder(resp.Body).Decode(&names)
	if len(names) != 1 || names[0] != "nersc_recon_flow" {
		t.Fatalf("names = %v", names)
	}

	r2, errr2 := http.Get(srv.URL + "/api/flows/nersc_recon_flow/stats?last=100")
	if errr2 != nil {
		t.Fatal(errr2)
	}
	defer r2.Body.Close()
	var st map[string]interface{}
	json.NewDecoder(r2.Body).Decode(&st)
	if st["n"].(float64) != 3 || st["mean_s"].(float64) != 1500 {
		t.Fatalf("stats = %v", st)
	}
	if st["success_rate"].(float64) != 1 {
		t.Fatalf("success rate = %v", st["success_rate"])
	}
	oc, ok := st["outcomes"].(map[string]interface{})
	if !ok || oc[OutcomeSucceeded].(float64) != 3 {
		t.Fatalf("outcomes = %v", st["outcomes"])
	}

	r3, errr3 := http.Get(srv.URL + "/api/flows/nersc_recon_flow/runs")
	if errr3 != nil {
		t.Fatal(errr3)
	}
	defer r3.Body.Close()
	var runs []map[string]interface{}
	json.NewDecoder(r3.Body).Decode(&runs)
	if len(runs) != 3 || runs[0]["state"].(string) != "COMPLETED" {
		t.Fatalf("runs = %v", runs)
	}

	r4, errr4 := http.Get(srv.URL + "/api/flows/x")
	if errr4 != nil {
		t.Fatal(errr4)
	}
	defer r4.Body.Close()
	if r4.StatusCode != http.StatusNotFound {
		t.Fatalf("bad path status = %d", r4.StatusCode)
	}
	r5, errr5 := http.Get(srv.URL + "/api/flows/x/bogus")
	if errr5 != nil {
		t.Fatal(errr5)
	}
	defer r5.Body.Close()
	if r5.StatusCode != http.StatusNotFound {
		t.Fatalf("bogus subresource status = %d", r5.StatusCode)
	}
}

func TestConcurrentRunsThreadSafe(t *testing.T) {
	// Real-time smoke test for the mutex paths: many goroutines record
	// runs simultaneously, with metrics attached.
	s := NewServer()
	s.SetMetrics(monitor.NewRegistry())
	done := make(chan struct{})
	for i := 0; i < 20; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			fc := s.Start(context.Background(), "par", RealEnv{})
			fc.Logf("INFO", "hello")
			fc.Task("t", TaskOptions{}, func(context.Context) error { return nil })
			fc.Complete(nil)
		}()
	}
	for i := 0; i < 20; i++ {
		<-done
	}
	if len(s.Runs("par")) != 20 {
		t.Fatalf("runs = %d", len(s.Runs("par")))
	}
}

package flow

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestRunTraceMatchesDuration: the root span covers exactly the run, and
// each task contributes one child span with the task's own bounds.
func TestRunTraceMatchesDuration(t *testing.T) {
	s := NewServer()
	e := sim.New(epoch)
	e.Go("f", func(p *sim.Proc) {
		fc := s.Start(nil, "traced", SimEnv{p})
		fc.Task("copy", TaskOptions{}, func(context.Context) error {
			p.Sleep(30 * time.Second)
			return nil
		})
		p.Sleep(10 * time.Second) // uninstrumented flow-body time
		fc.Task("recon", TaskOptions{}, func(context.Context) error {
			p.Sleep(20 * time.Second)
			return nil
		})
		fc.Complete(nil)
	})
	e.Run()
	r := s.Runs("traced")[0]
	root := r.Trace
	if !root.Ended() || root.Duration() != r.Duration() {
		t.Fatalf("root span %v..%v, run %v..%v", root.StartTime(), root.EndTime(), r.Start, r.End)
	}
	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "copy" || kids[1].Name() != "recon" {
		t.Fatalf("children = %+v", kids)
	}
	if kids[0].Duration() != 30*time.Second || kids[1].Duration() != 20*time.Second {
		t.Fatalf("child durations %v, %v", kids[0].Duration(), kids[1].Duration())
	}
	// Stage totals: copy 30 + recon 20 + 10s gap = the 60s run.
	totals := root.StageTotals()
	var sum float64
	for _, st := range totals {
		sum += st.Seconds
	}
	if sum != r.Duration().Seconds() {
		t.Fatalf("stage sum %v != run duration %v", sum, r.Duration().Seconds())
	}
	last := totals[len(totals)-1]
	if last.Stage != trace.GapStage || last.Seconds != 10 {
		t.Fatalf("gap stage = %+v", last)
	}
}

// TestTaskSpanPropagatesThroughContext: the task body's ctx carries the
// task span, so lower layers can hang sub-spans off it.
func TestTaskSpanPropagatesThroughContext(t *testing.T) {
	s := NewServer()
	e := sim.New(epoch)
	e.Go("f", func(p *sim.Proc) {
		fc := s.Start(nil, "ctxspan", SimEnv{p})
		fc.Task("outer", TaskOptions{}, func(ctx context.Context) error {
			sp := trace.FromContext(ctx)
			if sp == nil {
				t.Error("task ctx carries no span")
				return nil
			}
			child := sp.StartChildStage("sub", "substage", p.Now())
			p.Sleep(5 * time.Second)
			child.End(p.Now())
			return nil
		})
		fc.Complete(nil)
	})
	e.Run()
	root := s.Runs("ctxspan")[0].Trace
	outer := root.Children()[0]
	subs := outer.Children()
	if len(subs) != 1 || subs[0].Stage() != "substage" || subs[0].Duration() != 5*time.Second {
		t.Fatalf("sub-spans = %+v", subs)
	}
}

// TestCachedTaskSpanCloses: an idempotency-cached task still records a
// (zero-length) span so traces stay structurally complete.
func TestCachedTaskSpanCloses(t *testing.T) {
	s := NewServer()
	e := sim.New(epoch)
	e.Go("f", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			fc := s.Start(nil, "idem", SimEnv{p})
			fc.Task("t", TaskOptions{IdempotencyKey: "k1"}, func(context.Context) error {
				p.Sleep(time.Minute)
				return nil
			})
			fc.Complete(nil)
		}
	})
	e.Run()
	second := s.Runs("idem")[1]
	sp := second.Trace.Children()[0]
	if !sp.Ended() || sp.Duration() != 0 {
		t.Fatalf("cached task span = %v (ended=%v)", sp.Duration(), sp.Ended())
	}
}

// TestStageMeansSumToMeanDuration: per-run stage totals equal run duration,
// so the stage means over n runs sum to the mean duration — the invariant
// behind the benchtables per-stage column.
func TestStageMeansSumToMeanDuration(t *testing.T) {
	s := NewServer()
	e := sim.New(epoch)
	e.Go("f", func(p *sim.Proc) {
		for i := 1; i <= 3; i++ {
			d := time.Duration(i) * time.Minute
			fc := s.Start(nil, "sm", SimEnv{p})
			fc.Task("copy", TaskOptions{}, func(context.Context) error {
				p.Sleep(d)
				return nil
			})
			fc.Task("recon", TaskOptions{}, func(context.Context) error {
				p.Sleep(2 * d)
				return nil
			})
			fc.Complete(nil)
		}
	})
	e.Run()
	means := s.StageMeans("sm", 0)
	if len(means) != 3 { // copy, recon, gap
		t.Fatalf("means = %+v", means)
	}
	if means[0].Stage != "copy" || means[0].MeanS != 120 {
		t.Fatalf("copy mean = %+v", means[0])
	}
	if means[1].Stage != "recon" || means[1].MeanS != 240 {
		t.Fatalf("recon mean = %+v", means[1])
	}
	if means[2].Stage != trace.GapStage || means[2].MeanS != 0 {
		t.Fatalf("gap mean = %+v", means[2])
	}
	var sum float64
	for _, m := range means {
		sum += m.MeanS
	}
	mean := s.Summary("sm", 0).Mean
	if math.Abs(sum-mean) > 1e-9 {
		t.Fatalf("stage means sum %v != mean duration %v", sum, mean)
	}
	if got := s.StageMeans("sm", 1); got[0].MeanS != 180 || got[1].MeanS != 360 {
		t.Fatalf("last-1 means = %+v", got)
	}
	if got := s.StageMeans("absent", 0); got != nil {
		t.Fatalf("unknown flow means = %+v", got)
	}
}

// TestStageHistograms: completing a run with metrics attached populates
// flow_duration_seconds and flow_stage_seconds histograms, gap included.
func TestStageHistograms(t *testing.T) {
	s := NewServer()
	reg := monitor.NewRegistry()
	s.SetMetrics(reg)
	e := sim.New(epoch)
	e.Go("f", func(p *sim.Proc) {
		fc := s.Start(nil, "hist", SimEnv{p})
		fc.Task("copy", TaskOptions{}, func(context.Context) error {
			p.Sleep(30 * time.Second)
			return nil
		})
		p.Sleep(15 * time.Second)
		fc.Complete(nil)
	})
	e.Run()
	h, ok := reg.Histogram(`flow_duration_seconds{flow="hist"}`)
	if !ok || h.Count != 1 || h.Sum != 45 {
		t.Fatalf("duration histogram = %+v ok=%v", h, ok)
	}
	h, ok = reg.Histogram(`flow_stage_seconds{flow="hist",stage="copy"}`)
	if !ok || h.Count != 1 || h.Sum != 30 {
		t.Fatalf("copy histogram = %+v ok=%v", h, ok)
	}
	h, ok = reg.Histogram(`flow_stage_seconds{flow="hist",stage="other"}`)
	if !ok || h.Count != 1 || h.Sum != 15 {
		t.Fatalf("gap histogram = %+v ok=%v", h, ok)
	}
}

// TestTraceEndpoint: GET /api/runs/{id}/trace returns the span tree with a
// root duration equal to the run's, and 4xx on bad requests.
func TestTraceEndpoint(t *testing.T) {
	s := NewServer()
	e := sim.New(epoch)
	e.Go("f", func(p *sim.Proc) {
		fc := s.Start(nil, "api", SimEnv{p})
		fc.Task("copy", TaskOptions{}, func(context.Context) error {
			p.Sleep(42 * time.Second)
			return nil
		})
		fc.Complete(nil)
	})
	e.Run()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/runs/1/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		ID    int         `json:"id"`
		Flow  string      `json:"flow"`
		State string      `json:"state"`
		Trace *trace.Node `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.ID != 1 || body.Flow != "api" || body.State != "COMPLETED" {
		t.Fatalf("body = %+v", body)
	}
	run := s.Runs("api")[0]
	if body.Trace == nil || body.Trace.DurationS != run.Duration().Seconds() {
		t.Fatalf("trace root = %+v, run duration %v", body.Trace, run.Duration())
	}
	if len(body.Trace.Children) != 1 || body.Trace.Children[0].DurationS != 42 {
		t.Fatalf("trace children = %+v", body.Trace.Children)
	}

	for path, want := range map[string]int{
		"/api/runs/99/trace":  http.StatusNotFound,
		"/api/runs/x/trace":   http.StatusBadRequest,
		"/api/runs/1/nothing": http.StatusNotFound,
		"/api/runs/1":         http.StatusNotFound,
	} {
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != want {
			t.Fatalf("%s status = %d, want %d", path, r.StatusCode, want)
		}
	}
}

// Package faults is the shared error taxonomy the flow, transfer,
// facility, and streaming layers classify failures with. The paper's
// production system survives facility outages, transfer stalls, and queue
// delays because every stage knows which failures are worth retrying and
// which are not; this package is the single place that decision lives.
//
// Every error falls into one of four classes:
//
//   - Transient — retrying may succeed (network blips, 5xx responses,
//     contention). This is the default for unclassified errors, matching
//     the production posture of "retry unless told otherwise".
//   - Permanent — retrying cannot succeed (permission denied, malformed
//     request, missing source data). Retry loops must short-circuit.
//   - Timeout — a bounded wait expired. The attempt is dead, but a fresh
//     run with a fresh deadline may succeed, so flow-level outcome
//     accounting groups timeouts with transient failures.
//   - Cancelled — the caller withdrew the work (shutdown, operator
//     abort). Nothing should retry, and the outcome is neither success
//     nor failure.
//
// Classification composes with the standard errors package: faults wrap
// their cause (errors.Unwrap), match the class sentinels through
// errors.Is, and Classify walks wrapped chains, mapping
// context.Canceled/DeadlineExceeded to Cancelled/Timeout so plain ctx
// plumbing needs no explicit wrapping.
package faults

import (
	"context"
	"errors"
	"fmt"
)

// Class is the retry-relevant category of an error.
type Class string

// The taxonomy. Unknown is reserved for nil errors.
const (
	Unknown   Class = ""
	Transient Class = "transient"
	Permanent Class = "permanent"
	Timeout   Class = "timeout"
	Cancelled Class = "cancelled"
)

// Retryable reports whether an error of this class is worth re-attempting
// within the same retry loop. Only Transient qualifies: Timeout means the
// loop's own deadline budget is spent, and Cancelled means the caller no
// longer wants the result.
func (c Class) Retryable() bool { return c == Transient }

// String returns the class name ("unknown" for the zero class).
func (c Class) String() string {
	if c == Unknown {
		return "unknown"
	}
	return string(c)
}

// Sentinels for errors.Is matching: errors.Is(err, faults.ErrPermanent)
// is true when err's chain contains a Permanent fault.
var (
	ErrTransient = errors.New("faults: transient")
	ErrPermanent = errors.New("faults: permanent")
	ErrTimeout   = errors.New("faults: timeout")
	ErrCancelled = errors.New("faults: cancelled")
)

func (c Class) sentinel() error {
	switch c {
	case Transient:
		return ErrTransient
	case Permanent:
		return ErrPermanent
	case Timeout:
		return ErrTimeout
	case Cancelled:
		return ErrCancelled
	}
	return nil
}

// Fault is a classified error wrapping its cause.
type Fault struct {
	Class Class
	Err   error
}

// Error returns the cause's message unchanged, so classifying an error
// does not perturb messages that tests and operators match on.
func (f *Fault) Error() string { return f.Err.Error() }

// Unwrap exposes the cause to errors.Is/As.
func (f *Fault) Unwrap() error { return f.Err }

// Is matches the class sentinels (ErrTransient, ErrPermanent, ErrTimeout,
// ErrCancelled).
func (f *Fault) Is(target error) bool { return target == f.Class.sentinel() && target != nil }

// Wrap classifies err with class c. It is nil-safe and idempotent in the
// sense that the outermost classification wins: Wrap(Permanent,
// Wrap(Transient, err)) classifies as Permanent.
func Wrap(c Class, err error) error {
	if err == nil {
		return nil
	}
	return &Fault{Class: c, Err: err}
}

// Errorf builds a classified error from a format string; %w works.
func Errorf(c Class, format string, args ...interface{}) error {
	return &Fault{Class: c, Err: fmt.Errorf(format, args...)}
}

// Classify maps any error to its class:
//
//   - nil → Unknown
//   - a wrapped *Fault → its class (the outermost fault in the chain wins)
//   - context.Canceled anywhere in the chain → Cancelled
//   - context.DeadlineExceeded anywhere in the chain → Timeout
//   - anything else → Transient (retry unless told otherwise)
func Classify(err error) Class {
	if err == nil {
		return Unknown
	}
	var f *Fault
	if errors.As(err, &f) {
		return f.Class
	}
	if errors.Is(err, context.Canceled) {
		return Cancelled
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return Timeout
	}
	return Transient
}

// Retryable reports whether err should be re-attempted (nil is not).
func Retryable(err error) bool {
	return err != nil && Classify(err).Retryable()
}

// ClassifyHTTPStatus maps an HTTP response status to a class, following
// the convention the SFAPI and transfer clients share: server-side and
// congestion statuses (5xx, 408 Request Timeout, 429 Too Many Requests)
// are worth retrying; any other 4xx is a permanent request defect.
// Non-error statuses classify as Unknown.
func ClassifyHTTPStatus(code int) Class {
	switch {
	case code == 408 || code == 429:
		return Transient
	case code >= 500:
		return Transient
	case code >= 400:
		return Permanent
	}
	return Unknown
}

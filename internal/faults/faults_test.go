package faults

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
)

func TestClassifyNil(t *testing.T) {
	if got := Classify(nil); got != Unknown {
		t.Fatalf("Classify(nil) = %v", got)
	}
	if Retryable(nil) {
		t.Fatal("nil must not be retryable")
	}
	if Wrap(Permanent, nil) != nil {
		t.Fatal("Wrap(c, nil) must be nil")
	}
}

func TestClassifyDefaultTransient(t *testing.T) {
	if got := Classify(errors.New("network blip")); got != Transient {
		t.Fatalf("unclassified error = %v, want transient", got)
	}
	if !Retryable(errors.New("x")) {
		t.Fatal("unclassified errors are retryable")
	}
}

func TestClassifyContextErrors(t *testing.T) {
	if got := Classify(context.Canceled); got != Cancelled {
		t.Fatalf("context.Canceled = %v", got)
	}
	if got := Classify(context.DeadlineExceeded); got != Timeout {
		t.Fatalf("context.DeadlineExceeded = %v", got)
	}
	// The mapping must survive fmt wrapping, the way layer boundaries
	// actually report ctx failures.
	wrapped := fmt.Errorf("transfer: aborted: %w", context.Canceled)
	if got := Classify(wrapped); got != Cancelled {
		t.Fatalf("wrapped Canceled = %v", got)
	}
	deep := fmt.Errorf("flow: %w", fmt.Errorf("task: %w", context.DeadlineExceeded))
	if got := Classify(deep); got != Timeout {
		t.Fatalf("double-wrapped DeadlineExceeded = %v", got)
	}
}

func TestClassifyWrappedChains(t *testing.T) {
	base := errors.New("permission denied")
	perm := Wrap(Permanent, base)
	if got := Classify(perm); got != Permanent {
		t.Fatalf("class = %v", got)
	}
	// fmt wrapping above the fault keeps the classification.
	above := fmt.Errorf("transfer: file f: %w", perm)
	if got := Classify(above); got != Permanent {
		t.Fatalf("fmt-wrapped fault = %v", got)
	}
	// The message is undisturbed and the cause stays reachable.
	if perm.Error() != "permission denied" {
		t.Fatalf("message = %q", perm.Error())
	}
	if !errors.Is(above, base) {
		t.Fatal("cause lost through Wrap")
	}
}

func TestDoubleWrappingOutermostWins(t *testing.T) {
	err := Wrap(Permanent, Wrap(Transient, errors.New("x")))
	if got := Classify(err); got != Permanent {
		t.Fatalf("double wrap = %v, want outermost (permanent)", got)
	}
	err = Wrap(Transient, Errorf(Permanent, "inner"))
	if got := Classify(err); got != Transient {
		t.Fatalf("double wrap = %v, want outermost (transient)", got)
	}
	// A fault wrapping a ctx error classifies by the fault, not the ctx
	// sentinel: the wrapping layer made an explicit decision.
	err = Wrap(Timeout, context.Canceled)
	if got := Classify(err); got != Timeout {
		t.Fatalf("fault around ctx error = %v, want timeout", got)
	}
}

func TestSentinelMatching(t *testing.T) {
	perm := Errorf(Permanent, "denied")
	if !errors.Is(perm, ErrPermanent) {
		t.Fatal("errors.Is(perm, ErrPermanent) = false")
	}
	if errors.Is(perm, ErrTransient) || errors.Is(perm, ErrTimeout) || errors.Is(perm, ErrCancelled) {
		t.Fatal("permanent fault matched a foreign sentinel")
	}
	through := fmt.Errorf("layer: %w", Wrap(Cancelled, errors.New("shutdown")))
	if !errors.Is(through, ErrCancelled) {
		t.Fatal("sentinel lost through fmt wrapping")
	}
	var f *Fault
	if !errors.As(through, &f) || f.Class != Cancelled {
		t.Fatalf("errors.As fault = %+v", f)
	}
}

func TestRetryableClasses(t *testing.T) {
	cases := map[Class]bool{
		Transient: true, Permanent: false, Timeout: false, Cancelled: false, Unknown: false,
	}
	for c, want := range cases {
		if c.Retryable() != want {
			t.Errorf("%s.Retryable() = %v, want %v", c, c.Retryable(), want)
		}
	}
	if Unknown.String() != "unknown" {
		t.Errorf("Unknown.String() = %q", Unknown.String())
	}
}

func TestClassifyHTTPStatus(t *testing.T) {
	cases := map[int]Class{
		http.StatusOK:                  Unknown,
		http.StatusCreated:             Unknown,
		http.StatusBadRequest:          Permanent,
		http.StatusUnauthorized:        Permanent,
		http.StatusForbidden:           Permanent,
		http.StatusNotFound:            Permanent,
		http.StatusRequestTimeout:      Transient,
		http.StatusTooManyRequests:     Transient,
		http.StatusInternalServerError: Transient,
		http.StatusBadGateway:          Transient,
		http.StatusServiceUnavailable:  Transient,
	}
	for code, want := range cases {
		if got := ClassifyHTTPStatus(code); got != want {
			t.Errorf("status %d = %v, want %v", code, got, want)
		}
	}
}

package faults

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestClassifyTable drives Classify through the edge cases the layers
// actually produce: faults stacked on faults (outermost wins), ctx errors
// hidden inside explicit classifications, and fmt wrapping at every level.
func TestClassifyTable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, Unknown},
		{"plain", errors.New("blip"), Transient},
		{"fmt wrapped plain", fmt.Errorf("layer: %w", errors.New("blip")), Transient},
		{"bare canceled", context.Canceled, Cancelled},
		{"bare deadline", context.DeadlineExceeded, Timeout},

		// Double-wrapped faults: the outermost classification wins, even
		// with fmt layers between the two faults.
		{"perm over transient", Wrap(Permanent, Wrap(Transient, errors.New("x"))), Permanent},
		{"transient over perm", Wrap(Transient, Wrap(Permanent, errors.New("x"))), Transient},
		{"cancelled over timeout", Wrap(Cancelled, Wrap(Timeout, errors.New("x"))), Cancelled},
		{
			"fmt between faults",
			Wrap(Timeout, fmt.Errorf("retry %d: %w", 3, Wrap(Transient, errors.New("x")))),
			Timeout,
		},
		{
			"fmt above double wrap",
			fmt.Errorf("flow: %w", Wrap(Permanent, fmt.Errorf("task: %w", Wrap(Transient, errors.New("x"))))),
			Permanent,
		},

		// Ctx errors inside an explicit classification: the wrapping layer
		// made a decision, so the fault wins over the ctx sentinel.
		{"perm around canceled", Wrap(Permanent, context.Canceled), Permanent},
		{"perm around deadline", Wrap(Permanent, context.DeadlineExceeded), Permanent},
		{
			"perm around fmt-wrapped canceled",
			Wrap(Permanent, fmt.Errorf("aborted: %w", context.Canceled)),
			Permanent,
		},
		{
			"fmt above perm around canceled",
			fmt.Errorf("transfer: %w", Wrap(Permanent, context.Canceled)),
			Permanent,
		},

		// errors.Join chains: the first fault found in traversal order
		// classifies; a joined ctx error with no fault maps as usual.
		{
			"join fault first",
			errors.Join(Wrap(Permanent, errors.New("a")), errors.New("b")),
			Permanent,
		},
		{
			"join ctx only",
			errors.Join(errors.New("a"), context.Canceled),
			Cancelled,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Classify(tc.err); got != tc.want {
				t.Errorf("Classify(%v) = %v, want %v", tc.err, got, tc.want)
			}
			wantRetry := tc.want == Transient
			if got := Retryable(tc.err); got != wantRetry {
				t.Errorf("Retryable(%v) = %v, want %v", tc.err, got, wantRetry)
			}
		})
	}
}

// TestClassStringsAndSentinels pins the class-name strings and the
// class↔sentinel correspondence every errors.Is site relies on.
func TestClassStringsAndSentinels(t *testing.T) {
	names := map[Class]string{
		Unknown: "unknown", Transient: "transient", Permanent: "permanent",
		Timeout: "timeout", Cancelled: "cancelled",
	}
	sentinels := map[Class]error{
		Transient: ErrTransient, Permanent: ErrPermanent,
		Timeout: ErrTimeout, Cancelled: ErrCancelled,
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%v.String() = %q, want %q", c, c.String(), want)
		}
		err := Errorf(c, "boom")
		for sc, sentinel := range sentinels {
			if got := errors.Is(err, sentinel); got != (sc == c) {
				t.Errorf("errors.Is(%s fault, %s sentinel) = %v", c, sc, got)
			}
		}
	}
	// An Unknown-classified fault matches no sentinel at all.
	if errors.Is(Errorf(Unknown, "x"), ErrTransient) {
		t.Error("unknown-class fault matched ErrTransient")
	}
}

// TestClassifyHTTPStatusSweep pins the full mapping over every status code
// a server can plausibly send: informational/success/redirect are Unknown,
// 408 and 429 are the retryable 4xx exceptions, other 4xx are Permanent,
// and all 5xx are Transient.
func TestClassifyHTTPStatusSweep(t *testing.T) {
	for code := 100; code < 600; code++ {
		var want Class
		switch {
		case code == 408 || code == 429:
			want = Transient
		case code >= 500:
			want = Transient
		case code >= 400:
			want = Permanent
		default:
			want = Unknown
		}
		if got := ClassifyHTTPStatus(code); got != want {
			t.Errorf("status %d = %v, want %v", code, got, want)
		}
	}
	// Out-of-range inputs stay Unknown below 400 and Transient at/above
	// 500 by construction; pin the boundaries explicitly.
	boundaries := map[int]Class{
		399: Unknown, 400: Permanent, 407: Permanent, 409: Permanent,
		428: Permanent, 430: Permanent, 499: Permanent, 500: Transient,
		599: Transient, 600: Transient,
	}
	for code, want := range boundaries {
		if got := ClassifyHTTPStatus(code); got != want {
			t.Errorf("boundary %d = %v, want %v", code, got, want)
		}
	}
}

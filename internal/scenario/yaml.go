package scenario

// A minimal YAML-subset parser — just enough for scenario specs, with no
// dependency beyond the standard library. Supported: block maps
// ("key: value" / "key:" + indented block), block lists ("- item",
// including "- key: value" opening an inline map), inline scalar lists
// ("[a, b, c]"), double- and single-quoted strings, "#" comments,
// booleans, null/~, and numbers (emitted as json.Number so int64 seeds
// survive the tree → JSON round trip losslessly). Everything else —
// tabs, anchors, aliases, multi-document streams, flow maps, block
// scalars — is a parse error, never a silent guess: the decoder's job is
// to reject what it does not understand.

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

const (
	maxYAMLLines = 10000
	maxYAMLDepth = 32
)

type yamlLine struct {
	n      int // 1-based source line number
	indent int
	text   string // content after indent, comment stripped, right-trimmed
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// parseYAML parses one YAML-subset document into a tree of
// map[string]interface{}, []interface{}, json.Number, string, bool, nil.
func parseYAML(data []byte) (interface{}, error) {
	p := &yamlParser{}
	if err := p.scan(string(data)); err != nil {
		return nil, err
	}
	if len(p.lines) == 0 {
		return nil, fmt.Errorf("scenario: yaml: empty document")
	}
	v, err := p.parseBlock(p.lines[0].indent, 0)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("scenario: yaml line %d: unexpected content %q (indent mismatch?)", l.n, l.text)
	}
	return v, nil
}

// scan splits, strips comments, and records indentation.
func (p *yamlParser) scan(src string) error {
	lines := strings.Split(src, "\n")
	if len(lines) > maxYAMLLines {
		return fmt.Errorf("scenario: yaml: %d lines exceed the %d cap", len(lines), maxYAMLLines)
	}
	for i, raw := range lines {
		n := i + 1
		if strings.ContainsRune(raw, '\t') {
			return fmt.Errorf("scenario: yaml line %d: tabs are not allowed", n)
		}
		indent := 0
		for indent < len(raw) && raw[indent] == ' ' {
			indent++
		}
		text := stripComment(raw[indent:])
		text = strings.TrimRight(text, " ")
		if text == "" {
			continue
		}
		if text == "---" || text == "..." {
			if len(p.lines) == 0 && text == "---" {
				continue // a leading document marker is harmless
			}
			return fmt.Errorf("scenario: yaml line %d: multi-document streams are not supported", n)
		}
		if strings.HasPrefix(text, "&") || strings.HasPrefix(text, "*") || strings.HasPrefix(text, "%") {
			return fmt.Errorf("scenario: yaml line %d: anchors, aliases, and directives are not supported", n)
		}
		p.lines = append(p.lines, yamlLine{n: n, indent: indent, text: text})
	}
	return nil
}

// stripComment removes a trailing "# ..." comment outside quotes. A '#'
// must start the line or follow a space to count as a comment ("a#b" is
// content), matching YAML.
func stripComment(s string) string {
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\'' && !inD:
			inS = !inS
		case c == '"' && !inS:
			inD = !inD
		case c == '#' && !inS && !inD && (i == 0 || s[i-1] == ' '):
			return s[:i]
		}
	}
	return s
}

// parseBlock parses the map or list starting at the current line, whose
// indent must equal want.
func (p *yamlParser) parseBlock(want, depth int) (interface{}, error) {
	if depth > maxYAMLDepth {
		return nil, fmt.Errorf("scenario: yaml line %d: nesting deeper than %d", p.lines[p.pos].n, maxYAMLDepth)
	}
	l := p.lines[p.pos]
	if l.indent != want {
		return nil, fmt.Errorf("scenario: yaml line %d: expected indent %d, got %d", l.n, want, l.indent)
	}
	if l.text == "-" || strings.HasPrefix(l.text, "- ") {
		return p.parseList(want, depth)
	}
	return p.parseMap(want, depth)
}

func (p *yamlParser) parseList(want, depth int) (interface{}, error) {
	var out []interface{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != want {
			if l.indent > want {
				return nil, fmt.Errorf("scenario: yaml line %d: unexpected indent inside list", l.n)
			}
			break
		}
		if l.text != "-" && !strings.HasPrefix(l.text, "- ") {
			return nil, fmt.Errorf("scenario: yaml line %d: expected a '-' list item", l.n)
		}
		if l.text == "-" {
			// A dash alone introduces a nested block on the next lines.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= want {
				out = append(out, nil)
				continue
			}
			v, err := p.parseBlock(p.lines[p.pos].indent, depth+1)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			continue
		}
		rest := l.text[2:]
		if isMapEntry(rest) {
			// "- key: value" opens an inline map whose entries continue at
			// the item's content column; re-present this line as a map
			// entry at that virtual indent.
			p.lines[p.pos] = yamlLine{n: l.n, indent: want + 2, text: rest}
			v, err := p.parseMap(want+2, depth+1)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			continue
		}
		v, err := parseScalar(rest, l.n)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		p.pos++
	}
	return out, nil
}

func (p *yamlParser) parseMap(want, depth int) (interface{}, error) {
	out := map[string]interface{}{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != want {
			if l.indent > want {
				return nil, fmt.Errorf("scenario: yaml line %d: unexpected indent inside map", l.n)
			}
			break
		}
		if l.text == "-" || strings.HasPrefix(l.text, "- ") {
			return nil, fmt.Errorf("scenario: yaml line %d: list item inside a map block", l.n)
		}
		key, rest, err := splitMapEntry(l.text, l.n)
		if err != nil {
			return nil, err
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("scenario: yaml line %d: duplicate key %q", l.n, key)
		}
		p.pos++
		if rest != "" {
			v, err := parseScalar(rest, l.n)
			if err != nil {
				return nil, err
			}
			out[key] = v
			continue
		}
		// "key:" with nothing after — a nested block if the next line is
		// deeper, else an explicit null.
		if p.pos >= len(p.lines) || p.lines[p.pos].indent <= want {
			out[key] = nil
			continue
		}
		v, err := p.parseBlock(p.lines[p.pos].indent, depth+1)
		if err != nil {
			return nil, err
		}
		out[key] = v
	}
	return out, nil
}

// isMapEntry reports whether s looks like "key:" or "key: value" with a
// plain (unquoted) key.
func isMapEntry(s string) bool {
	i := strings.IndexByte(s, ':')
	if i <= 0 {
		return false
	}
	if i+1 < len(s) && s[i+1] != ' ' {
		return false // "a:b" is a scalar, not an entry
	}
	return validKey(s[:i])
}

func validKey(k string) bool {
	if k == "" {
		return false
	}
	for _, r := range k {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' ||
			r == '_' || r == '-' || r == '.') {
			return false
		}
	}
	return true
}

func splitMapEntry(s string, n int) (key, rest string, err error) {
	i := strings.IndexByte(s, ':')
	if i <= 0 || (i+1 < len(s) && s[i+1] != ' ') {
		return "", "", fmt.Errorf("scenario: yaml line %d: expected 'key: value', got %q", n, s)
	}
	key = s[:i]
	if !validKey(key) {
		return "", "", fmt.Errorf("scenario: yaml line %d: key %q not in [a-zA-Z0-9_.-]", n, key)
	}
	return key, strings.TrimSpace(s[i+1:]), nil
}

// parseScalar interprets one scalar token: quoted string, inline list,
// null, bool, number, or plain string.
func parseScalar(s string, n int) (interface{}, error) {
	switch {
	case s == "":
		return nil, nil
	case s[0] == '[':
		return parseInlineList(s, n)
	case s[0] == '{':
		return nil, fmt.Errorf("scenario: yaml line %d: flow maps are not supported", n)
	case s[0] == '&' || s[0] == '*':
		return nil, fmt.Errorf("scenario: yaml line %d: anchors and aliases are not supported", n)
	case s[0] == '"':
		u, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("scenario: yaml line %d: bad quoted string %s: %w", n, s, err)
		}
		return u, nil
	case s[0] == '\'':
		if len(s) < 2 || s[len(s)-1] != '\'' {
			return nil, fmt.Errorf("scenario: yaml line %d: unterminated single-quoted string", n)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	case s == "null" || s == "~":
		return nil, nil
	case s == "true":
		return true, nil
	case s == "false":
		return false, nil
	case isJSONNumber(s):
		return json.Number(s), nil
	case strings.HasPrefix(s, "|") || strings.HasPrefix(s, ">"):
		return nil, fmt.Errorf("scenario: yaml line %d: block scalars are not supported", n)
	default:
		return s, nil
	}
}

func parseInlineList(s string, n int) (interface{}, error) {
	if s[len(s)-1] != ']' {
		return nil, fmt.Errorf("scenario: yaml line %d: unterminated inline list", n)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return []interface{}{}, nil
	}
	if strings.ContainsAny(inner, "[]{}") {
		return nil, fmt.Errorf("scenario: yaml line %d: nested inline collections are not supported", n)
	}
	var out []interface{}
	for _, part := range splitInline(inner) {
		v, err := parseScalar(strings.TrimSpace(part), n)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// splitInline splits on commas outside quotes.
func splitInline(s string) []string {
	var parts []string
	start, inS, inD := 0, false, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\'' && !inD:
			inS = !inS
		case c == '"' && !inS:
			inD = !inD
		case c == ',' && !inS && !inD:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	return append(parts, s[start:])
}

// isJSONNumber reports whether s is a valid JSON number literal, the
// only numeric form the tree may carry (json.Marshal re-emits a
// json.Number verbatim, so it must already be valid JSON).
func isJSONNumber(s string) bool {
	i := 0
	if i < len(s) && s[i] == '-' {
		i++
	}
	switch {
	case i < len(s) && s[i] == '0':
		i++
	case i < len(s) && s[i] >= '1' && s[i] <= '9':
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
		}
	default:
		return false
	}
	if i < len(s) && s[i] == '.' {
		i++
		if i >= len(s) || s[i] < '0' || s[i] > '9' {
			return false
		}
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
		}
	}
	if i < len(s) && (s[i] == 'e' || s[i] == 'E') {
		i++
		if i < len(s) && (s[i] == '+' || s[i] == '-') {
			i++
		}
		if i >= len(s) || s[i] < '0' || s[i] > '9' {
			return false
		}
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
		}
	}
	return i == len(s)
}

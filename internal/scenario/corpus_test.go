package scenario

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestSeedCorpus replays every spec under testdata/ twice and verifies
// the outcome against its checked-in golden: the issue's acceptance gate,
// run on every `go test`.
func TestSeedCorpus(t *testing.T) {
	var specs []string
	for _, pat := range []string{"*.yaml", "*.yml", "*.json"} {
		m, err := filepath.Glob(filepath.Join("testdata", pat))
		if err != nil {
			t.Fatal(err)
		}
		for _, path := range m {
			if !strings.HasSuffix(path, ".golden.json") {
				specs = append(specs, path)
			}
		}
	}
	if len(specs) < 4 {
		t.Fatalf("seed corpus has %d specs, want at least 4", len(specs))
	}
	for _, path := range specs {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			v, err := Verify(path)
			if err != nil {
				t.Fatal(err)
			}
			if !v.Deterministic {
				t.Fatalf("nondeterministic replay:\n%s", v.DetDiff)
			}
			if v.GoldenMissing {
				t.Fatalf("no golden at %s — run `go run ./cmd/scenario record %s`", v.GoldenPath, path)
			}
			if !v.GoldenMatch {
				t.Fatalf("outcome diverges from golden (- golden, + replay):\n%s", v.GoldenDiff)
			}
			if !v.Outcome.Pass {
				t.Fatalf("expectations failed: %v", v.Outcome.FailedChecks())
			}
		})
	}
}

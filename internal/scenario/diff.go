package scenario

import (
	"fmt"
	"strings"
)

// maxDiffLines caps how much of a pathological divergence we render; a
// golden that disagrees this badly needs re-recording, not a 10k-line
// patch in a test log.
const maxDiffLines = 400

// Diff renders a unified-style line diff between want and got, or "" when
// they are byte-identical. It is an LCS diff over lines — small, exact,
// and good enough for golden reports, which are short and mostly stable.
func Diff(want, got []byte) string {
	if string(want) == string(got) {
		return ""
	}
	a := splitLines(string(want))
	b := splitLines(string(got))
	ops := diffOps(a, b)

	// Keep every change plus contextLines of surrounding common lines, so
	// the reader sees which JSON object a changed line belongs to.
	const contextLines = 2
	keep := make([]bool, len(ops))
	for i, op := range ops {
		if op.kind == ' ' {
			continue
		}
		for j := i - contextLines; j <= i+contextLines; j++ {
			if j >= 0 && j < len(ops) {
				keep[j] = true
			}
		}
	}

	var sb strings.Builder
	lines, skipping := 0, false
	for i, op := range ops {
		if !keep[i] {
			if !skipping {
				sb.WriteString("...\n")
				skipping = true
			}
			continue
		}
		skipping = false
		if lines >= maxDiffLines {
			fmt.Fprintf(&sb, "... diff truncated at %d lines ...\n", maxDiffLines)
			break
		}
		fmt.Fprintf(&sb, "%c %s\n", op.kind, op.text)
		lines++
	}
	if sb.Len() == 0 {
		// Differ only in trailing bytes invisible to the line split.
		return fmt.Sprintf("- %d bytes\n+ %d bytes\n", len(want), len(got))
	}
	return sb.String()
}

func splitLines(s string) []string {
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

type diffOp struct {
	kind byte // ' ' common, '-' only in want, '+' only in got
	text string
}

// diffOps computes an LCS edit script. Golden reports are a few hundred
// lines, so the quadratic table is fine.
func diffOps(a, b []string) []diffOp {
	if len(a)*len(b) > 4<<20 {
		// Give up on structure for absurd inputs; dump both sides capped.
		var ops []diffOp
		for _, l := range a {
			ops = append(ops, diffOp{'-', l})
		}
		for _, l := range b {
			ops = append(ops, diffOp{'+', l})
		}
		return ops
	}
	n, m := len(a), len(b)
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var ops []diffOp
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			ops = append(ops, diffOp{' ', a[i]})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, diffOp{'-', a[i]})
			i++
		default:
			ops = append(ops, diffOp{'+', b[j]})
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, diffOp{'-', a[i]})
	}
	for ; j < m; j++ {
		ops = append(ops, diffOp{'+', b[j]})
	}
	return ops
}

package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// GoldenPath maps a spec path to its golden report path: the spec
// extension (.yaml/.yml/.json) is replaced with .golden.json.
func GoldenPath(specPath string) string {
	ext := filepath.Ext(specPath)
	switch ext {
	case ".yaml", ".yml", ".json":
		return strings.TrimSuffix(specPath, ext) + ".golden.json"
	default:
		return specPath + ".golden.json"
	}
}

// Verification is the result of replaying one spec against its golden.
type Verification struct {
	SpecPath   string
	GoldenPath string
	Outcome    *Outcome // from the first replay

	Deterministic bool   // two fresh runs produced identical bytes
	DetDiff       string // diff between the two runs when not

	GoldenMissing bool   // no golden recorded yet
	GoldenMatch   bool   // replay bytes == golden bytes
	GoldenDiff    string // "- golden / + replay" lines when they differ
}

// Pass reports whether the verification holds end to end: deterministic
// replay, a recorded golden it matches, and every in-spec expectation met.
func (v *Verification) Pass() bool {
	return v.Deterministic && !v.GoldenMissing && v.GoldenMatch && v.Outcome.Pass
}

// runTwice executes the spec in two fresh runners and returns both
// canonical reports plus the first outcome.
func runTwice(specPath string) (first, second []byte, out *Outcome, err error) {
	for i := 0; i < 2; i++ {
		spec, err := Load(specPath)
		if err != nil {
			return nil, nil, nil, err
		}
		o, err := Run(spec)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("scenario: run %s: %w", spec.Name, err)
		}
		if i == 0 {
			first, out = o.Canonical(), o
		} else {
			second = o.Canonical()
		}
	}
	return first, second, out, nil
}

// Verify replays the spec twice and diffs the outcome against its golden.
// The returned Verification distinguishes nondeterminism, a missing or
// stale golden, and failed in-spec expectations; err is reserved for
// specs that cannot be loaded or run at all.
func Verify(specPath string) (*Verification, error) {
	v := &Verification{SpecPath: specPath, GoldenPath: GoldenPath(specPath)}
	first, second, out, err := runTwice(specPath)
	if err != nil {
		return nil, err
	}
	v.Outcome = out
	v.Deterministic = string(first) == string(second)
	if !v.Deterministic {
		v.DetDiff = Diff(first, second)
	}
	golden, err := os.ReadFile(v.GoldenPath)
	if err != nil {
		if os.IsNotExist(err) {
			v.GoldenMissing = true
			return v, nil
		}
		return nil, fmt.Errorf("scenario: read golden: %w", err)
	}
	v.GoldenMatch = string(golden) == string(first)
	if !v.GoldenMatch {
		v.GoldenDiff = Diff(golden, first)
	}
	return v, nil
}

// Record replays the spec twice, requires byte-identical outcomes, and
// writes the canonical report as the spec's golden. It refuses to record
// a nondeterministic scenario — a golden that cannot replay is worse than
// none.
func Record(specPath string) (*Verification, error) {
	v := &Verification{SpecPath: specPath, GoldenPath: GoldenPath(specPath)}
	first, second, out, err := runTwice(specPath)
	if err != nil {
		return nil, err
	}
	v.Outcome = out
	v.Deterministic = string(first) == string(second)
	if !v.Deterministic {
		v.DetDiff = Diff(first, second)
		return v, fmt.Errorf("scenario: %s: outcome is not deterministic, refusing to record", specPath)
	}
	if err := os.WriteFile(v.GoldenPath, first, 0o644); err != nil {
		return nil, fmt.Errorf("scenario: write golden: %w", err)
	}
	v.GoldenMatch = true
	return v, nil
}

package scenario

import (
	"strings"
	"testing"
)

// smokeSpec is a small fast-sim campaign every runner test starts from.
func smokeSpec() *Spec {
	return &Spec{
		Name: "smoke",
		Campaign: CampaignSpec{
			Beamlines:        2,
			Workers:          2,
			ScansPerBeamline: 4,
			ScanInterval:     Duration(2 * 60 * 1e9), // 2m
			FastSim:          true,
		},
	}
}

func mustRun(t *testing.T, spec *Spec) *Outcome {
	t.Helper()
	o, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestRunnerSmoke(t *testing.T) {
	o := mustRun(t, smokeSpec())
	if o.Scans != 8 {
		t.Fatalf("scans = %d, want 8", o.Scans)
	}
	if o.CompletedRuns == 0 {
		t.Fatal("no completed runs")
	}
	if o.Seed != 832 {
		t.Fatalf("seed = %d, want the repo default 832", o.Seed)
	}
	if o.Journal.Events == 0 || o.Journal.SHA256 == "" {
		t.Fatalf("journal digest not populated: %+v", o.Journal)
	}
	// Tenants are per beamline × class: 2 beamlines → 2 file + 2 streaming.
	if len(o.SLO) == 0 || len(o.Tenants) != 4 {
		t.Fatalf("report shape: %d slo objectives, %d tenants", len(o.SLO), len(o.Tenants))
	}
	if !o.Pass {
		t.Fatalf("no expectations declared, Pass must default true; checks: %v", o.FailedChecks())
	}
}

func TestRunnerDeterministic(t *testing.T) {
	a := mustRun(t, smokeSpec()).Canonical()
	b := mustRun(t, smokeSpec()).Canonical()
	if string(a) != string(b) {
		t.Fatalf("same spec, different outcomes:\n%s", Diff(a, b))
	}
}

func TestRunnerSeedChangesOutcome(t *testing.T) {
	spec := smokeSpec()
	spec.Seed = 7
	a := mustRun(t, spec)
	if a.Seed != 7 {
		t.Fatalf("seed = %d, want the spec override 7", a.Seed)
	}
}

func TestRunnerRunsOnce(t *testing.T) {
	r, err := NewRunner(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err == nil {
		t.Fatal("second Run must error")
	}
}

func TestRunnerRejectsInvalidSpec(t *testing.T) {
	spec := smokeSpec()
	spec.Campaign.Beamlines = 0
	if _, err := NewRunner(spec); err == nil {
		t.Fatal("NewRunner accepted an invalid spec")
	}
}

// journalCount counts journal events in the outcome's campaign via the
// declared-expectation machinery, by re-running with the expectation.
func expectJournal(spec *Spec, component, msg string, min int) {
	spec.Expect.Journal = append(spec.Expect.Journal, JournalExpect{
		Component: component, Msg: msg, Count: IntBound{Min: &min},
	})
}

func TestWANFlapScenario(t *testing.T) {
	spec := smokeSpec()
	spec.Name = "wan-flap"
	spec.WAN = []WANEvent{
		{At: Duration(60 * 1e9), Duration: Duration(120 * 1e9), Site: "nersc", Down: true},
		{At: Duration(300 * 1e9), Duration: Duration(120 * 1e9), BandwidthGbps: 0.5},
	}
	expectJournal(spec, "scenario", "wan link down", 1)
	expectJournal(spec, "scenario", "wan degraded", 2) // site "all" → both links
	expectJournal(spec, "scenario", "wan restored", 3)
	o := mustRun(t, spec)
	if !o.Pass {
		t.Fatalf("wan journal expectations failed: %v", o.FailedChecks())
	}
}

func TestSFAPIOutageScenario(t *testing.T) {
	spec := smokeSpec()
	spec.Name = "outage"
	spec.Campaign.ScansPerBeamline = 6
	spec.Incidents = []Incident{
		{Kind: IncidentSFAPIOutage, At: Duration(60 * 1e9), Duration: Duration(20 * 60 * 1e9)},
	}
	expectJournal(spec, "scenario", "sfapi outage begins", 1)
	expectJournal(spec, "scenario", "sfapi outage ends", 1)
	expectJournal(spec, "facility", "submission rejected", 1)
	o := mustRun(t, spec)
	if !o.Pass {
		t.Fatalf("outage expectations failed: %v", o.FailedChecks())
	}
}

func TestSlurmStormScenario(t *testing.T) {
	spec := smokeSpec()
	spec.Name = "storm"
	spec.Incidents = []Incident{
		{Kind: IncidentSlurmStorm, At: 0, Duration: Duration(30 * 60 * 1e9), Nodes: 8},
	}
	expectJournal(spec, "scenario", "slurm storm begins", 1)
	o := mustRun(t, spec)
	if !o.Pass {
		t.Fatalf("storm expectations failed: %v", o.FailedChecks())
	}
}

func TestEndpointPruneScenario(t *testing.T) {
	spec := smokeSpec()
	spec.Name = "prune"
	spec.Incidents = []Incident{
		{Kind: IncidentEndpointPrune, At: Duration(60 * 1e9), Requests: 40,
			LockedFraction: 0.25, FailFast: true},
	}
	expectJournal(spec, "scenario", "prune burst begins", 1)
	o := mustRun(t, spec)
	if !o.Pass {
		t.Fatalf("prune expectations failed: %v", o.FailedChecks())
	}
	var transfer *ObjectiveOutcome
	for i := range o.SLO {
		if o.SLO[i].Name == "transfer_success" {
			transfer = &o.SLO[i]
		}
	}
	if transfer == nil {
		t.Fatal("transfer_success objective missing from report")
	}
	// 10 locked paths permission-fail; attainment must drop below 100.
	if transfer.AttainmentPct >= 100 {
		t.Fatalf("locked prunes did not dent transfer_success: %+v", transfer)
	}
}

func TestFailedExpectationFailsOutcome(t *testing.T) {
	spec := smokeSpec()
	min := 10000
	spec.Expect.CompletedRuns = &IntBound{Min: &min}
	o := mustRun(t, spec)
	if o.Pass {
		t.Fatal("impossible completed_runs bound passed")
	}
	failed := o.FailedChecks()
	if len(failed) != 1 || !strings.Contains(failed[0], "completed_runs") {
		t.Fatalf("failed checks = %v", failed)
	}
}

func TestUnknownObjectiveExpectationFails(t *testing.T) {
	spec := smokeSpec()
	spec.Expect.SLO = []SLOExpect{{Objective: "no_such_objective"}}
	o := mustRun(t, spec)
	if o.Pass {
		t.Fatal("unknown objective expectation must fail the outcome")
	}
}

// The journal digest must cover the full event stream: a scenario event
// emitted by chaos procs shows up in the per-component counts.
func TestJournalDigestComponents(t *testing.T) {
	spec := smokeSpec()
	spec.WAN = []WANEvent{{At: 0, Duration: Duration(60 * 1e9), Down: true}}
	o := mustRun(t, spec)
	found := false
	for _, c := range o.Journal.Components {
		if c.Component == "scenario" && c.Events > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("scenario component missing from digest: %+v", o.Journal.Components)
	}
}

func TestTelemetryScenario(t *testing.T) {
	spec := smokeSpec()
	spec.Name = "telemetry"
	spec.Campaign.Telemetry = true
	spec.Campaign.TelemetryInterval = Duration(60 * 1e9) // 1m
	spec.WAN = []WANEvent{
		{At: Duration(2 * 60 * 1e9), Duration: Duration(4 * 60 * 1e9), Site: "nersc", BandwidthGbps: 1},
	}
	zero := 0
	spec.Expect.Health = []HealthExpect{
		{Facility: "nersc", Verdicts: []string{"healthy", "down", "healthy"}},
		{Facility: "alcf", Transitions: &IntBound{Max: &zero}},
	}
	one := 1
	spec.Expect.Probes = []ProbeExpect{
		{Probe: "sfapi_ping", Runs: &IntBound{Min: &one}, Failures: &IntBound{Max: &zero}},
	}
	o := mustRun(t, spec)
	if !o.Pass {
		t.Fatalf("telemetry expectations failed: %v", o.FailedChecks())
	}
	if len(o.Health) == 0 || len(o.Probes) == 0 || o.ProbeDigest == "" {
		t.Fatalf("telemetry sections not populated: health=%d probes=%d digest=%q",
			len(o.Health), len(o.Probes), o.ProbeDigest)
	}
}

func TestTelemetryScenarioUnknownTargetsFail(t *testing.T) {
	spec := smokeSpec()
	spec.Name = "telemetry-unknown"
	spec.Campaign.Telemetry = true
	spec.Expect.Health = []HealthExpect{{Facility: "jupiter"}}
	spec.Expect.Probes = []ProbeExpect{{Probe: "warp_core"}}
	o := mustRun(t, spec)
	if o.Pass {
		t.Fatal("expectations against unknown facility/probe must fail")
	}
	failed := strings.Join(o.FailedChecks(), "\n")
	if !strings.Contains(failed, "health.jupiter") || !strings.Contains(failed, "probe.warp_core") {
		t.Fatalf("failed checks missing the unknown targets:\n%s", failed)
	}
}

func TestTelemetryOffOmitsSections(t *testing.T) {
	o := mustRun(t, smokeSpec())
	if len(o.Health) != 0 || len(o.Probes) != 0 || o.ProbeDigest != "" {
		t.Fatalf("telemetry sections present without opt-in: %+v", o)
	}
}

package scenario

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obslog"
	"repro/internal/sched"
)

// TestSpecPortsHandWrittenBurstIncident re-expresses the hand-written
// reprocessing-burst incident from core's campaign tests as a scenario
// spec and proves the port is faithful: the spec-driven run produces a
// byte-identical scheduler decision stream to a campaign assembled by
// hand with the same constants. This is the template for migrating the
// remaining hand-coded incident setups into testdata specs.
func TestSpecPortsHandWrittenBurstIncident(t *testing.T) {
	// The hand-built original (the admission/burst fixture from
	// core.TestCampaignDeterministicDecisions).
	handBuilt := func() []obslog.Event {
		cfg := core.DefaultCampaignConfig()
		cfg.Sim = core.FastSimConfig()
		cfg.Beamlines = 3
		cfg.Weights = nil
		cfg.Workers = 2
		cfg.Reserved = 1
		cfg.ScanInterval = 5 * time.Minute
		cfg.FileTarget = 5 * time.Minute
		cfg.Admission.DeferDelay = time.Minute
		cfg.Admission.MaxDefers = 2
		cfg.Admission.ShedAfter = 20 * time.Minute
		cfg.BurstAt = 30 * time.Minute
		cfg.BurstScans = 6
		c := core.NewCampaign(DefaultEpoch, cfg)
		res := c.Run(4)
		if res.Deferred == 0 || res.Shed == 0 {
			t.Fatalf("fixture never exercised admission: deferred=%d shed=%d",
				res.Deferred, res.Shed)
		}
		return c.Base.Journal.Events(obslog.Filter{Component: "sched"})
	}

	// The same incident, declared instead of coded.
	ported := func() ([]obslog.Event, *Outcome) {
		def := core.DefaultCampaignConfig().Admission
		spec := &Spec{
			Name: "ported-burst",
			Campaign: CampaignSpec{
				Beamlines:        3,
				Workers:          2,
				Reserved:         1,
				ScansPerBeamline: 4,
				ScanInterval:     Duration(5 * time.Minute),
				FileTarget:       Duration(5 * time.Minute),
				FastSim:          true,
			},
			Admission: &AdmissionSpec{
				Enabled:           true,
				GuardObjectives:   def.GuardObjectives,
				GuardRate:         def.GuardRate,
				MaxQueuePerTenant: def.MaxQueuePerTenant,
				DeferDelay:        Duration(time.Minute),
				MaxDefers:         2,
				ShedAfter:         Duration(20 * time.Minute),
			},
			Burst: &BurstSpec{At: Duration(30 * time.Minute), Scans: 6},
		}
		r, err := NewRunner(spec)
		if err != nil {
			t.Fatal(err)
		}
		out, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r.Campaign.Base.Journal.Events(obslog.Filter{Component: "sched"}), out
	}

	want := handBuilt()
	got, out := ported()
	wb, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(wb) != string(gb) {
		t.Fatalf("spec-driven decision stream diverges from the hand-built campaign:\nhand %d events, spec %d events", len(want), len(got))
	}

	// The spec run upholds the same invariants the hand-written test
	// asserts: file work was deferred and shed, streaming never touched.
	if out.Deferred == 0 || out.Shed == 0 {
		t.Fatalf("ported incident lost its teeth: deferred=%d shed=%d", out.Deferred, out.Shed)
	}
	for _, tr := range out.Tenants {
		if strings.HasSuffix(tr.Tenant, "/"+string(sched.ClassStreaming)) &&
			(tr.Shed != 0 || tr.Deferred != 0) {
			t.Fatalf("streaming tenant %s touched by admission: %+v", tr.Tenant, tr)
		}
	}
}

// TestSpecPortsGPUContentionExperiment re-expresses EXPERIMENTS.md X4 —
// the hand-coded core.RunStreamingContention shared-vs-reserved
// comparison — as the gpu_contention_* spec pair and proves the ported
// scenarios reproduce the policy crossover: on the identical saturated
// campaign, the shared pool misses the streaming budget while
// per-beamline reservation holds it at exactly 100%.
func TestSpecPortsGPUContentionExperiment(t *testing.T) {
	runSpec := func(path string) *Outcome {
		spec, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(spec)
		if err != nil {
			t.Fatal(err)
		}
		out, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	shared := runSpec("testdata/gpu_contention_shared.yaml")
	reserved := runSpec("testdata/gpu_contention_reserved.yaml")

	if shared.StreamingUnder10sPct >= 99 {
		t.Errorf("saturated shared pool should miss the budget: %.2f%%",
			shared.StreamingUnder10sPct)
	}
	if reserved.StreamingUnder10sPct != 100 {
		t.Errorf("per-beamline reservation should hold the budget: %.2f%%",
			reserved.StreamingUnder10sPct)
	}
	if reserved.StreamingUnder10sPct < shared.StreamingUnder10sPct {
		t.Errorf("crossover inverted: reserved %.2f%% below shared %.2f%%",
			reserved.StreamingUnder10sPct, shared.StreamingUnder10sPct)
	}
	// Reservation is a policy change, not extra capacity: both runs
	// drain the same workload on the same pool.
	if shared.CompletedRuns != reserved.CompletedRuns {
		t.Errorf("completed runs diverge: shared %d vs reserved %d",
			shared.CompletedRuns, reserved.CompletedRuns)
	}
}

package scenario

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/facility"
	"repro/internal/faults"
	"repro/internal/obslog"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/telemetry"
	"repro/internal/transfer"
)

// DefaultEpoch is the campaign start when the spec does not set one —
// the same epoch the rest of the repo's seeded experiments use.
var DefaultEpoch = time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)

// Runner executes one validated spec against a core.Campaign. Build with
// NewRunner, execute once with Run; Campaign stays accessible afterwards
// so servers can mount its /api/sched and journal endpoints.
type Runner struct {
	Spec     *Spec
	Campaign *core.Campaign

	epoch time.Time
	seed  int64
	ran   bool
}

// NewRunner validates the spec and assembles its campaign (chaos is
// installed at Run time, so an unrun Runner spawns no sim procs).
func NewRunner(spec *Spec) (*Runner, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	epoch := DefaultEpoch
	if spec.Epoch != "" {
		t, err := time.Parse(time.RFC3339, spec.Epoch)
		if err != nil {
			return nil, fmt.Errorf("scenario: epoch: %w", err)
		}
		epoch = t
	}

	simCfg := core.DefaultSimConfig()
	if spec.Campaign.FastSim {
		simCfg = core.FastSimConfig()
	}
	if spec.Seed != 0 {
		simCfg.Seed = spec.Seed
	}
	simCfg.StreamIncremental = spec.Campaign.IncrementalPreview
	cfg := core.CampaignConfig{
		Sim:          simCfg,
		Beamlines:    spec.Campaign.Beamlines,
		Weights:      spec.Campaign.Weights,
		Workers:      spec.Campaign.Workers,
		Reserved:     spec.Campaign.Reserved,
		ScanInterval: spec.Campaign.ScanInterval.D(),
		FileTarget:   spec.Campaign.FileTarget.D(),
		Telemetry:    spec.Campaign.Telemetry,
		TelemetryConfig: telemetry.Config{
			SampleInterval: spec.Campaign.TelemetryInterval.D(),
		},
	}
	if a := spec.Admission; a != nil {
		cfg.Admission = sched.Admission{
			Enabled:           a.Enabled,
			GuardObjectives:   a.GuardObjectives,
			GuardRate:         a.GuardRate,
			MaxQueuePerTenant: a.MaxQueuePerTenant,
			DeferDelay:        a.DeferDelay.D(),
			MaxDefers:         a.MaxDefers,
			ShedAfter:         a.ShedAfter.D(),
		}
	}
	if b := spec.Burst; b != nil {
		cfg.BurstAt = b.At.D()
		cfg.BurstScans = b.Scans
	}

	r := &Runner{
		Spec:     spec,
		Campaign: core.NewCampaign(epoch, cfg),
		epoch:    epoch,
		seed:     simCfg.Seed,
	}
	for _, inc := range spec.Incidents {
		if inc.Kind == IncidentEndpointPrune {
			r.installPruneFault()
			break
		}
	}
	return r, nil
}

// installPruneFault makes every "locked/" path permission-fail, the §5.3
// incident signature, composing with any fault hook already installed.
func (r *Runner) installPruneFault() {
	svc := r.Campaign.Base.Transfer
	prev := svc.Fault
	svc.Fault = func(task *transfer.Task, path string, attempt int) error {
		if strings.HasPrefix(path, "locked/") {
			return faults.Errorf(faults.Permanent, "permission denied")
		}
		if prev != nil {
			return prev(task, path, attempt)
		}
		return nil
	}
}

// Run installs the chaos schedule, launches the campaign, runs the
// engine to drain, and returns the evaluated outcome. A Runner runs
// exactly once.
func (r *Runner) Run() (*Outcome, error) {
	if r.ran {
		return nil, fmt.Errorf("scenario: %s: runner already ran", r.Spec.Name)
	}
	r.ran = true
	r.installChaos()
	r.Campaign.Launch(r.Spec.Campaign.ScansPerBeamline)
	r.Campaign.Base.Engine.Run()
	return r.collect(), nil
}

// ctx returns the context chaos procs journal under.
func (r *Runner) ctx() context.Context {
	return obslog.NewContext(context.Background(), r.Campaign.Base.Journal)
}

// installChaos spawns one sim proc per WAN event and incident, in spec
// order so the decision stream is deterministic.
func (r *Runner) installChaos() {
	for i, ev := range r.Spec.WAN {
		i, ev := i, ev
		r.Campaign.Base.Engine.Go(fmt.Sprintf("wan-%d", i), func(p *sim.Proc) {
			r.runWANEvent(p, i, ev)
		})
	}
	for i, inc := range r.Spec.Incidents {
		i, inc := i, inc
		name := fmt.Sprintf("incident-%d-%s", i, inc.Kind)
		r.Campaign.Base.Engine.Go(name, func(p *sim.Proc) {
			switch inc.Kind {
			case IncidentSFAPIOutage:
				r.runSFAPIOutage(p, inc)
			case IncidentSlurmStorm:
				r.runSlurmStorm(p, i, inc)
			case IncidentEndpointPrune:
				r.runEndpointPrune(p, i, inc)
			}
		})
	}
}

// wanSites resolves an event's far-end site list (spec order: nersc
// before alcf for "all", so journal order is stable).
func wanSites(site string) []string {
	switch site {
	case "nersc":
		return []string{core.SiteNERSC}
	case "alcf":
		return []string{core.SiteALCF}
	default:
		return []string{core.SiteNERSC, core.SiteALCF}
	}
}

func (r *Runner) runWANEvent(p *sim.Proc, i int, ev WANEvent) {
	ctx := r.ctx()
	net := r.Campaign.Base.Network
	p.Sleep(ev.At.D())
	for _, site := range wanSites(ev.Site) {
		if ev.Down {
			net.SetDown(core.SiteALS, site, true)
			obslog.Warn(ctx, "scenario", "wan link down",
				obslog.F("event", i), obslog.F("site", site))
		} else {
			net.SetBandwidth(core.SiteALS, site, ev.BandwidthGbps*simnet.Gbps)
			obslog.Warn(ctx, "scenario", "wan degraded",
				obslog.F("event", i), obslog.F("site", site),
				obslog.F("gbps", ev.BandwidthGbps))
		}
	}
	if ev.Duration == 0 {
		return // weather persists to campaign end
	}
	p.Sleep(ev.Duration.D())
	nominal := r.Campaign.Cfg.Sim.WANBandwidth
	for _, site := range wanSites(ev.Site) {
		if ev.Down {
			net.SetDown(core.SiteALS, site, false)
		} else {
			// Restore to the nominal rate, not a stack of prior events:
			// overlapping windows model re-forecasts, not superposition.
			net.SetBandwidth(core.SiteALS, site, nominal)
		}
		obslog.Info(ctx, "scenario", "wan restored",
			obslog.F("event", i), obslog.F("site", site))
	}
}

func (r *Runner) runSFAPIOutage(p *sim.Proc, inc Incident) {
	ctx := r.ctx()
	cluster := r.Campaign.Base.Perlmutter
	p.Sleep(inc.At.D())
	cluster.SetDown(true)
	obslog.Warn(ctx, "scenario", "sfapi outage begins",
		obslog.F("cluster", cluster.Name), obslog.F("duration", inc.Duration.D()))
	p.Sleep(inc.Duration.D())
	cluster.SetDown(false)
	obslog.Info(ctx, "scenario", "sfapi outage ends", obslog.F("cluster", cluster.Name))
}

// facilityFillerJob is one storm job: a regular-QOS single-node hold that
// occupies its node for the storm's duration, deepening the queue the
// campaign's realtime submissions must preempt past.
func facilityFillerJob(name string, hold time.Duration) facility.JobSpec {
	return facility.JobSpec{
		Name: name, Partition: "cpu", QOS: "regular", Nodes: 1,
		Run: func(ctx context.Context, p *sim.Proc) error {
			p.Sleep(hold)
			return nil
		},
	}
}

// runSlurmStorm floods the batch partition with other users' filler jobs
// so realtime submissions queue behind a deep backlog.
func (r *Runner) runSlurmStorm(p *sim.Proc, i int, inc Incident) {
	ctx := r.ctx()
	cluster := r.Campaign.Base.Perlmutter
	p.Sleep(inc.At.D())
	obslog.Warn(ctx, "scenario", "slurm storm begins",
		obslog.F("incident", i), obslog.F("nodes", inc.Nodes),
		obslog.F("duration", inc.Duration.D()))
	hold := inc.Duration.D()
	for n := 0; n < inc.Nodes; n++ {
		name := fmt.Sprintf("storm-%d-%d", i, n)
		r.Campaign.Base.Engine.Go(name, func(fp *sim.Proc) {
			// Filler jobs submit with a bare context: their lifecycle noise
			// stays out of the journal, only the storm markers land there.
			cluster.Submit(nil, fp, facilityFillerJob(name, hold))
		})
	}
}

// runEndpointPrune replays the §5.3 prune burst: seed old/locked files on
// the beamline data server, then fire the requests through a bounded
// worker pool as prune flows, each a Delete whose locked paths
// permission-fail and drag the transfer-success SLO down.
func (r *Runner) runEndpointPrune(p *sim.Proc, i int, inc Incident) {
	ctx := r.ctx()
	bl := r.Campaign.Base
	p.Sleep(inc.At.D())
	workers := inc.Workers
	if workers <= 0 {
		workers = 4
	}
	nLocked := int(float64(inc.Requests) * inc.LockedFraction)
	obslog.Warn(ctx, "scenario", "prune burst begins",
		obslog.F("incident", i), obslog.F("requests", inc.Requests),
		obslog.F("locked", nLocked), obslog.F("workers", workers),
		obslog.F("fail_fast", inc.FailFast))
	paths := make([]string, inc.Requests)
	for k := 0; k < inc.Requests; k++ {
		prefix := "old/"
		if k < nLocked {
			prefix = "locked/"
		}
		paths[k] = fmt.Sprintf("%si%d-%04d", prefix, i, k)
		bl.DataSrv.Put(p, paths[k], 1e9, "c")
	}
	pool := sim.NewResource(bl.Engine, workers)
	for k := 0; k < inc.Requests; k++ {
		k := k
		bl.Engine.Go(fmt.Sprintf("prune-%d-%d", i, k), func(pp *sim.Proc) {
			pool.Acquire(pp)
			defer pool.Release()
			bl.PruneFlow(ctx, pp, []string{paths[k]}, inc.FailFast)
		})
	}
}

// collect assembles the outcome after the engine drains.
func (r *Runner) collect() *Outcome {
	res := r.Campaign.Result()
	o := &Outcome{
		Scenario:             r.Spec.Name,
		Description:          r.Spec.Description,
		Seed:                 r.seed,
		Epoch:                r.epoch.UTC().Format(time.RFC3339),
		Makespan:             res.Makespan.String(),
		Scans:                res.Scans,
		CompletedRuns:        res.CompletedRuns,
		Deferred:             res.Deferred,
		Shed:                 res.Shed,
		StreamingUnder10sPct: round2(res.StreamingUnder10sPct),
		RunsPerHour:          round2(res.RunsPerHour),
	}
	for _, rep := range r.Campaign.Base.SLO.Report() {
		o.SLO = append(o.SLO, ObjectiveOutcome{
			Name:          rep.Name,
			Samples:       rep.Samples,
			Met:           rep.Met,
			AttainmentPct: round2(rep.Attainment * 100),
			Firing:        rep.Firing,
		})
	}
	for _, a := range r.Campaign.Base.SLO.Alerts() {
		o.Alerts = append(o.Alerts, AlertOutcome{
			At:        a.Time.Sub(r.epoch).String(),
			Objective: a.Objective,
			State:     a.State,
			BurnRate:  round2(a.BurnRate),
		})
	}
	for _, t := range res.Report.Tenants {
		o.Tenants = append(o.Tenants, TenantOutcome{
			Tenant:        t.Tenant,
			Weight:        t.Weight,
			Enqueued:      t.Enqueued,
			Dispatched:    t.Dispatched,
			Completed:     t.Completed,
			Deferred:      t.Deferred,
			Shed:          t.Shed,
			AttainmentPct: round2(t.AttainmentPct),
		})
	}
	o.Journal = digestJournal(r.Campaign.Base.Journal)
	r.collectTelemetry(o)
	o.evaluate(r.Spec, r.Campaign.Base.Journal)
	return o
}

// collectTelemetry fills the outcome's health and probe sections from
// the campaign's plane, when the spec opted in.
func (r *Runner) collectTelemetry(o *Outcome) {
	pl := r.Campaign.Telemetry
	if pl == nil {
		return
	}
	transitions := pl.Transitions()
	for _, fh := range pl.Health() {
		ho := HealthOutcome{
			Facility: fh.Facility,
			Score:    round2(fh.Score),
			Verdict:  string(fh.Verdict),
			Verdicts: []string{string(telemetry.VerdictHealthy)},
		}
		for _, tr := range transitions {
			if tr.Facility != fh.Facility {
				continue
			}
			ho.Verdicts = append(ho.Verdicts, string(tr.To))
			ho.Transitions = append(ho.Transitions, HealthTransition{
				At:      tr.At.Sub(r.epoch).String(),
				From:    string(tr.From),
				To:      string(tr.To),
				Score:   round2(tr.Score),
				Reasons: tr.Reasons,
			})
		}
		o.Health = append(o.Health, ho)
	}
	for _, st := range pl.ProbeStats() {
		o.Probes = append(o.Probes, ProbeOutcome{
			Probe:      st.Name,
			Facility:   st.Facility,
			Runs:       st.Runs,
			Failures:   st.Failures,
			P50Seconds: round3(st.P50),
			P95Seconds: round3(st.P95),
			P99Seconds: round3(st.P99),
		})
	}
	o.ProbeDigest = pl.ProbeDigest()
}

// Run is the one-shot convenience: decode nothing, just execute an
// already-validated spec and return its outcome.
func Run(spec *Spec) (*Outcome, error) {
	r, err := NewRunner(spec)
	if err != nil {
		return nil, err
	}
	return r.Run()
}

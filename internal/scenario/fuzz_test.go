package scenario

import (
	"strings"
	"testing"
)

// FuzzScenarioSpec drives the whole decode path — format sniff, YAML
// parse, tree → JSON, strict unmarshal, validation — with arbitrary
// bytes. The contract under fuzz: malformed input errors, it never
// panics, and anything that decodes also validates (Decode's postcondition
// is a runnable spec).
func FuzzScenarioSpec(f *testing.F) {
	f.Add([]byte(minimalJSON))
	f.Add([]byte(minimalYAML))
	f.Add([]byte("name: x\ncampaign:\n  beamlines: 2\n  workers: 2\n  scans_per_beamline: 3\n  scan_interval: 30s\n"))
	f.Add([]byte(`{"name":"x","seed":9007199254740993,"campaign":{"beamlines":1,"workers":1,"scans_per_beamline":1,"scan_interval":1}}`))
	f.Add([]byte("wan:\n  - at: 1m\n    down: true\n"))
	f.Add([]byte("a: [1, 2, '3,4']\nb:\n  - kind: sfapi_outage\n"))
	f.Add([]byte("- - - -"))
	f.Add([]byte("{"))
	f.Add([]byte("\xff\xfe"))
	f.Add([]byte(strings.Repeat("a:\n ", 40)))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Decode(data)
		if err != nil {
			if spec != nil {
				t.Fatalf("Decode returned both a spec and %v", err)
			}
			return
		}
		if spec == nil {
			t.Fatal("Decode returned nil, nil")
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("decoded spec fails its own validation: %v", verr)
		}
	})
}

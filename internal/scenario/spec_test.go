package scenario

import (
	"os"
	"reflect"
	"strings"
	"testing"
	"time"
)

const minimalJSON = `{
  "name": "t",
  "campaign": {"beamlines": 1, "workers": 1, "scans_per_beamline": 1, "scan_interval": "1m"}
}`

const minimalYAML = `
name: t
campaign:
  beamlines: 1
  workers: 1
  scans_per_beamline: 1
  scan_interval: 1m
`

func TestDecodeJSONAndYAMLAgree(t *testing.T) {
	a, err := Decode([]byte(minimalJSON))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decode([]byte(minimalYAML))
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != b.Name || !reflect.DeepEqual(a.Campaign, b.Campaign) {
		t.Fatalf("JSON and YAML decode differently:\n%+v\n%+v", a, b)
	}
	if a.Campaign.ScanInterval.D() != time.Minute {
		t.Fatalf("scan_interval = %v", a.Campaign.ScanInterval)
	}
}

func TestDecodeFullYAML(t *testing.T) {
	spec, err := Decode([]byte(`
name: full
description: every section exercised
seed: 7
epoch: 2026-07-04T08:00:00Z
campaign:
  beamlines: 2
  weights: [3, 1]
  workers: 2
  reserved: 1
  scans_per_beamline: 4
  scan_interval: 90s
  file_target: 30m
  fast_sim: true
admission:
  enabled: true
  guard_objectives: [file_branch]
  guard_rate: 1.5
  max_queue_per_tenant: 8
  defer_delay: 2m
  max_defers: 3
  shed_after: 45m
burst:
  at: 10m
  scans: 20
wan:
  - at: 5m
    duration: 10m
    site: nersc
    bandwidth_gbps: 0.5
  - at: 20m
    duration: 1m
    down: true
incidents:
  - kind: sfapi_outage
    at: 15m
    duration: 20m
  - kind: endpoint_prune
    at: 1m
    requests: 10
    locked_fraction: 0.5
    fail_fast: true
expect:
  completed_runs:
    min: 1
  streaming_under10s_pct:
    min: 50
  slo:
    - objective: transfer_success
      attainment_pct:
        max: 99.99
  journal:
    - component: scenario
      msg: sfapi outage begins
      count:
        min: 1
        max: 1
`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 7 || spec.Admission == nil || spec.Burst == nil {
		t.Fatalf("sections lost: %+v", spec)
	}
	if len(spec.WAN) != 2 || len(spec.Incidents) != 2 {
		t.Fatalf("events lost: %d wan, %d incidents", len(spec.WAN), len(spec.Incidents))
	}
	if spec.WAN[0].BandwidthGbps != 0.5 || !spec.WAN[1].Down {
		t.Fatalf("wan decode: %+v", spec.WAN)
	}
	if spec.Admission.GuardObjectives[0] != "file_branch" {
		t.Fatalf("guard objectives: %v", spec.Admission.GuardObjectives)
	}
	if spec.Expect.Journal[0].Count.Max == nil || *spec.Expect.Journal[0].Count.Max != 1 {
		t.Fatalf("journal bound: %+v", spec.Expect.Journal[0].Count)
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"whitespace":       "  \n\t ",
		"unknown field":    `{"name":"t","bogus":1,"campaign":{"beamlines":1,"workers":1,"scans_per_beamline":1,"scan_interval":"1m"}}`,
		"trailing data":    minimalJSON + `{"x":1}`,
		"no name":          `{"campaign":{"beamlines":1,"workers":1,"scans_per_beamline":1,"scan_interval":"1m"}}`,
		"bad name char":    strings.Replace(minimalJSON, `"t"`, `"a b"`, 1),
		"bad epoch":        strings.Replace(minimalJSON, `"name": "t"`, `"name":"t","epoch":"yesterday"`, 1),
		"zero beamlines":   strings.Replace(minimalJSON, `"beamlines": 1`, `"beamlines": 0`, 1),
		"huge beamlines":   strings.Replace(minimalJSON, `"beamlines": 1`, `"beamlines": 999`, 1),
		"zero interval":    strings.Replace(minimalJSON, `"1m"`, `"0s"`, 1),
		"negative seconds": strings.Replace(minimalJSON, `"1m"`, `-5`, 1),
		"huge duration":    strings.Replace(minimalJSON, `"1m"`, `"100000h"`, 1),
		"bad duration":     strings.Replace(minimalJSON, `"1m"`, `"soon"`, 1),
		"duration object":  strings.Replace(minimalJSON, `"1m"`, `{"m":1}`, 1),
	}
	for name, src := range cases {
		if _, err := Decode([]byte(src)); err == nil {
			t.Errorf("%s: decode accepted %q", name, src)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *Spec {
		s, err := Decode([]byte(minimalJSON))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	ten, two := 10, 2
	lo, hi := 5.0, 1.0
	cases := map[string]func(*Spec){
		"reserved >= workers": func(s *Spec) { s.Campaign.Reserved = 1 },
		"too many weights":    func(s *Spec) { s.Campaign.Weights = []float64{1, 2} },
		"zero weight":         func(s *Spec) { s.Campaign.Weights = []float64{0} },
		"nan guard rate": func(s *Spec) {
			s.Admission = &AdmissionSpec{GuardRate: nan()}
		},
		"wan both down and bw": func(s *Spec) {
			s.WAN = []WANEvent{{Down: true, BandwidthGbps: 1}}
		},
		"wan no bw": func(s *Spec) {
			s.WAN = []WANEvent{{At: 0}}
		},
		"wan bad site": func(s *Spec) {
			s.WAN = []WANEvent{{Site: "esnet", BandwidthGbps: 1}}
		},
		"unknown incident": func(s *Spec) {
			s.Incidents = []Incident{{Kind: "quench"}}
		},
		"outage no duration": func(s *Spec) {
			s.Incidents = []Incident{{Kind: IncidentSFAPIOutage}}
		},
		"storm no nodes": func(s *Spec) {
			s.Incidents = []Incident{{Kind: IncidentSlurmStorm, Duration: Duration(time.Minute)}}
		},
		"prune no requests": func(s *Spec) {
			s.Incidents = []Incident{{Kind: IncidentEndpointPrune}}
		},
		"prune locked > 1": func(s *Spec) {
			s.Incidents = []Incident{{Kind: IncidentEndpointPrune, Requests: 1, LockedFraction: 1.5}}
		},
		"int bound inverted": func(s *Spec) {
			s.Expect.CompletedRuns = &IntBound{Min: &ten, Max: &two}
		},
		"float bound inverted": func(s *Spec) {
			s.Expect.StreamingUnder10sPct = &FloatBound{Min: &lo, Max: &hi}
		},
		"slo no objective": func(s *Spec) {
			s.Expect.SLO = []SLOExpect{{}}
		},
		"journal no selector": func(s *Spec) {
			s.Expect.Journal = []JournalExpect{{}}
		},
		"journal bad level": func(s *Spec) {
			s.Expect.Journal = []JournalExpect{{Component: "x", MinLevel: "loud"}}
		},
		"burst zero scans": func(s *Spec) {
			s.Burst = &BurstSpec{Scans: 0}
		},
		"health without telemetry": func(s *Spec) {
			s.Expect.Health = []HealthExpect{{Facility: "nersc"}}
		},
		"probes without telemetry": func(s *Spec) {
			s.Expect.Probes = []ProbeExpect{{Probe: "queue_rt"}}
		},
		"telemetry interval without telemetry": func(s *Spec) {
			s.Campaign.TelemetryInterval = Duration(time.Minute)
		},
		"health no facility": func(s *Spec) {
			s.Campaign.Telemetry = true
			s.Expect.Health = []HealthExpect{{}}
		},
		"health bad verdict": func(s *Spec) {
			s.Campaign.Telemetry = true
			s.Expect.Health = []HealthExpect{{Facility: "nersc", Verdicts: []string{"wounded"}}}
		},
		"health transitions inverted": func(s *Spec) {
			s.Campaign.Telemetry = true
			s.Expect.Health = []HealthExpect{{Facility: "nersc", Transitions: &IntBound{Min: &ten, Max: &two}}}
		},
		"probe no name": func(s *Spec) {
			s.Campaign.Telemetry = true
			s.Expect.Probes = []ProbeExpect{{}}
		},
		"probe p95 inverted": func(s *Spec) {
			s.Campaign.Telemetry = true
			s.Expect.Probes = []ProbeExpect{{Probe: "queue_rt", P95Seconds: &FloatBound{Min: &lo, Max: &hi}}}
		},
	}
	for name, mutate := range cases {
		s := base()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validate accepted the spec", name)
		}
	}
}

// nan builds a NaN without the constant-expression restriction.
func nan() float64 {
	z := 0.0
	return z / z
}

func TestDurationRoundTrip(t *testing.T) {
	d := Duration(90 * time.Minute)
	b, err := d.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"1h30m0s"` {
		t.Fatalf("marshal = %s", b)
	}
	var back Duration
	if err := back.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Fatalf("round trip %v != %v", back, d)
	}
	var sec Duration
	if err := sec.UnmarshalJSON([]byte("90")); err != nil {
		t.Fatal(err)
	}
	if sec.D() != 90*time.Second {
		t.Fatalf("bare number = %v, want 90s", sec)
	}
	for _, bad := range []string{`"1 parsec"`, `1e400`, `true`, `[1]`} {
		var d Duration
		if err := d.UnmarshalJSON([]byte(bad)); err == nil {
			t.Errorf("UnmarshalJSON accepted %s", bad)
		}
	}
}

func TestLoadCapsFileSize(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/big.json"
	if err := os.WriteFile(path, make([]byte, maxSpecBytes+1), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted an oversized spec")
	}
	if _, err := Load(dir + "/missing.yaml"); err == nil {
		t.Fatal("Load accepted a missing file")
	}
}

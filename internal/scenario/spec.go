// Package scenario is the declarative chaos-campaign engine: a spec file
// (JSON, or the minimal YAML subset yaml.go decodes) declares a full
// multi-tenant campaign — beamlines and weights, scan cadence, WAN
// weather as a time-varying bandwidth schedule with link flaps, facility
// incidents (SFAPI outage windows, Slurm queue-depth storms, endpoint
// prune bursts), and the outcome the spec *expects* (SLO attainment
// bounds, shed/defer counts, journal event assertions). A Runner executes
// the spec deterministically under the sim clock against core.Campaign
// and emits a canonical outcome report; Verify replays the spec twice,
// proves the reports byte-identical, and diffs them against a checked-in
// golden. Every scale/perf/robustness claim thereby becomes a replayable
// scenario instead of a hand-written test.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
	"time"
)

// Duration is a time.Duration that decodes from a Go duration string
// ("90m", "1h30m") or a bare number of seconds, and encodes as a string.
type Duration time.Duration

// D returns the wrapped time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// String renders the canonical Go duration form.
func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON renders the duration as its string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(d.String())
}

// UnmarshalJSON accepts "90m"-style strings or bare numbers (seconds).
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v interface{}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.UseNumber()
	if err := dec.Decode(&v); err != nil {
		return fmt.Errorf("scenario: duration %s: %w", b, err)
	}
	switch x := v.(type) {
	case string:
		parsed, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("scenario: duration %q: %w", x, err)
		}
		*d = Duration(parsed)
		return nil
	case json.Number:
		sec, err := x.Float64()
		if err != nil {
			return fmt.Errorf("scenario: duration %s: %w", x, err)
		}
		if math.IsNaN(sec) || math.IsInf(sec, 0) || math.Abs(sec) > 1e9 {
			return fmt.Errorf("scenario: duration %v seconds out of range", sec)
		}
		*d = Duration(sec * float64(time.Second))
		return nil
	default:
		return fmt.Errorf("scenario: duration must be a string or number, got %s", b)
	}
}

// Spec is one declared campaign: the workload, the weather, the
// incidents, and the outcome it promises.
type Spec struct {
	// Name identifies the scenario; it names the golden file and labels
	// the outcome report.
	Name string `json:"name"`
	// Description says what the scenario demonstrates.
	Description string `json:"description,omitempty"`
	// Seed overrides the sim RNG seed (default 832).
	Seed int64 `json:"seed,omitempty"`
	// Epoch is the campaign start in RFC3339 (default 2026-07-04T08:00:00Z).
	Epoch string `json:"epoch,omitempty"`

	Campaign  CampaignSpec   `json:"campaign"`
	Admission *AdmissionSpec `json:"admission,omitempty"`
	Burst     *BurstSpec     `json:"burst,omitempty"`
	WAN       []WANEvent     `json:"wan,omitempty"`
	Incidents []Incident     `json:"incidents,omitempty"`
	Expect    Expect         `json:"expect,omitempty"`
}

// CampaignSpec sizes the campaign (see core.CampaignConfig).
type CampaignSpec struct {
	Beamlines        int       `json:"beamlines"`
	Weights          []float64 `json:"weights,omitempty"`
	Workers          int       `json:"workers"`
	Reserved         int       `json:"reserved,omitempty"`
	ScansPerBeamline int       `json:"scans_per_beamline"`
	ScanInterval     Duration  `json:"scan_interval"`
	// FileTarget is the end-to-end file-branch objective (default 45m).
	FileTarget Duration `json:"file_target,omitempty"`
	// FastSim selects core.FastSimConfig (stochastic tails stripped,
	// shrunk reconstruction) so scenarios replay in milliseconds.
	FastSim bool `json:"fast_sim,omitempty"`
	// IncrementalPreview switches the streaming branch to the
	// incremental accumulator (core.SimConfig.StreamIncremental): the
	// preview's GPU work shrinks from a full reconstruction to one
	// angle's fold plus the finalize pass.
	IncrementalPreview bool `json:"incremental_preview,omitempty"`
	// Telemetry enables the facility telemetry plane
	// (core.CampaignConfig.Telemetry): windowed signals, health
	// verdicts, and synthetic probes. Opt-in because the probes submit
	// real (tiny) jobs and transfers, perturbing seeded timelines
	// recorded without them.
	Telemetry bool `json:"telemetry,omitempty"`
	// TelemetryInterval overrides the plane's sample cadence (default
	// 30s) so short scenarios still get enough scoring ticks.
	TelemetryInterval Duration `json:"telemetry_interval,omitempty"`
}

// AdmissionSpec is the scheduler's backpressure policy (sched.Admission).
type AdmissionSpec struct {
	Enabled           bool     `json:"enabled"`
	GuardObjectives   []string `json:"guard_objectives,omitempty"`
	GuardRate         float64  `json:"guard_rate,omitempty"`
	MaxQueuePerTenant int      `json:"max_queue_per_tenant,omitempty"`
	DeferDelay        Duration `json:"defer_delay,omitempty"`
	MaxDefers         int      `json:"max_defers,omitempty"`
	ShedAfter         Duration `json:"shed_after,omitempty"`
}

// BurstSpec injects a reprocessing backlog on beamline 0 (the PR 6 bench
// narrative): Scans extra file-branch scans starting at At.
type BurstSpec struct {
	At    Duration `json:"at"`
	Scans int      `json:"scans"`
}

// WANEvent is one entry in the WAN weather schedule. Zero BandwidthGbps
// with Down false is invalid; Down true is a link flap (bandwidth
// irrelevant). Duration zero leaves the change in place to campaign end.
type WANEvent struct {
	At       Duration `json:"at"`
	Duration Duration `json:"duration,omitempty"`
	// Site selects the far end of the ALS link: "nersc", "alcf", or
	// "all" (default) for both links.
	Site          string  `json:"site,omitempty"`
	BandwidthGbps float64 `json:"bandwidth_gbps,omitempty"`
	Down          bool    `json:"down,omitempty"`
}

// Incident kinds.
const (
	IncidentSFAPIOutage   = "sfapi_outage"
	IncidentSlurmStorm    = "slurm_storm"
	IncidentEndpointPrune = "endpoint_prune"
)

// Incident is one facility incident window.
type Incident struct {
	// Kind is one of sfapi_outage, slurm_storm, endpoint_prune.
	Kind string   `json:"kind"`
	At   Duration `json:"at"`
	// Duration bounds the window (sfapi_outage, slurm_storm).
	Duration Duration `json:"duration,omitempty"`
	// Nodes is how many partition nodes the storm's filler jobs occupy.
	Nodes int `json:"nodes,omitempty"`
	// Requests is how many prune requests the burst fires.
	Requests int `json:"requests,omitempty"`
	// LockedFraction of prune paths are permission-locked and fail.
	LockedFraction float64 `json:"locked_fraction,omitempty"`
	// FailFast selects the post-incident prune behaviour; false replays
	// the legacy hang-per-error behaviour of the paper's §5.3 incident.
	FailFast bool `json:"fail_fast,omitempty"`
	// Workers sizes the prune worker pool (default 4).
	Workers int `json:"workers,omitempty"`
}

// IntBound is an inclusive [Min, Max] expectation; nil ends are open.
type IntBound struct {
	Min *int `json:"min,omitempty"`
	Max *int `json:"max,omitempty"`
}

// FloatBound is an inclusive [Min, Max] expectation; nil ends are open.
type FloatBound struct {
	Min *float64 `json:"min,omitempty"`
	Max *float64 `json:"max,omitempty"`
}

// Expect declares the outcome the scenario promises. Every bound becomes
// a named check in the outcome report; a failed check fails Verify.
type Expect struct {
	CompletedRuns        *IntBound   `json:"completed_runs,omitempty"`
	Deferred             *IntBound   `json:"deferred,omitempty"`
	Shed                 *IntBound   `json:"shed,omitempty"`
	StreamingUnder10sPct *FloatBound `json:"streaming_under10s_pct,omitempty"`

	SLO     []SLOExpect     `json:"slo,omitempty"`
	Journal []JournalExpect `json:"journal,omitempty"`
	Health  []HealthExpect  `json:"health,omitempty"`
	Probes  []ProbeExpect   `json:"probes,omitempty"`
}

// SLOExpect bounds one objective's end-of-campaign attainment (percent)
// and optionally its alert state.
type SLOExpect struct {
	Objective     string      `json:"objective"`
	AttainmentPct *FloatBound `json:"attainment_pct,omitempty"`
	MinSamples    int         `json:"min_samples,omitempty"`
	Firing        *bool       `json:"firing,omitempty"`
}

// HealthExpect pins one facility's verdict timeline (requires
// campaign.telemetry). Verdicts, when set, must equal the full observed
// sequence — the initial "healthy" plus each transition's destination —
// so a brownout spec literally declares healthy→degraded→down→healthy.
type HealthExpect struct {
	Facility string `json:"facility"`
	// Verdicts is the exact verdict sequence, each one of
	// healthy/degraded/down.
	Verdicts []string `json:"verdicts,omitempty"`
	// Transitions bounds how many verdict changes occurred.
	Transitions *IntBound `json:"transitions,omitempty"`
}

// ProbeExpect bounds one synthetic probe's run/failure counters and its
// p95 latency (requires campaign.telemetry).
type ProbeExpect struct {
	Probe      string      `json:"probe"`
	Runs       *IntBound   `json:"runs,omitempty"`
	Failures   *IntBound   `json:"failures,omitempty"`
	P95Seconds *FloatBound `json:"p95_seconds,omitempty"`
}

// JournalExpect bounds how many journal events match a component, an
// exact message, and a minimum level ("debug" when empty).
type JournalExpect struct {
	Component string   `json:"component,omitempty"`
	Msg       string   `json:"msg,omitempty"`
	MinLevel  string   `json:"min_level,omitempty"`
	Count     IntBound `json:"count"`
}

// Hard bounds on spec fields: a fuzzer-supplied spec must not be able to
// build a campaign that runs for days of wall time or exhausts memory.
const (
	maxBeamlines = 16
	maxWorkers   = 64
	maxScans     = 500
	maxEvents    = 64
	maxDuration  = Duration(30 * 24 * time.Hour)
	maxBandwidth = 10000 // Gbps
	maxRequests  = 10000
)

func checkDur(what string, d Duration, allowZero bool) error {
	if d < 0 {
		return fmt.Errorf("scenario: %s %v is negative", what, d)
	}
	if d == 0 && !allowZero {
		return fmt.Errorf("scenario: %s must be positive", what)
	}
	if d > maxDuration {
		return fmt.Errorf("scenario: %s %v exceeds the %v cap", what, d, maxDuration)
	}
	return nil
}

func checkFinite(what string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("scenario: %s is not finite", what)
	}
	return nil
}

// Validate rejects hostile or meaningless specs with a descriptive error.
// A validated spec always builds a bounded campaign.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	if len(s.Name) > 64 {
		return fmt.Errorf("scenario: name longer than 64 bytes")
	}
	for _, r := range s.Name {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' ||
			r == '_' || r == '-' || r == '.') {
			return fmt.Errorf("scenario: name %q: character %q not in [a-zA-Z0-9_.-]", s.Name, r)
		}
	}
	if s.Epoch != "" {
		if _, err := time.Parse(time.RFC3339, s.Epoch); err != nil {
			return fmt.Errorf("scenario: epoch: %w", err)
		}
	}

	c := &s.Campaign
	if c.Beamlines < 1 || c.Beamlines > maxBeamlines {
		return fmt.Errorf("scenario: beamlines %d outside [1, %d]", c.Beamlines, maxBeamlines)
	}
	if c.Workers < 1 || c.Workers > maxWorkers {
		return fmt.Errorf("scenario: workers %d outside [1, %d]", c.Workers, maxWorkers)
	}
	if c.Reserved < 0 || c.Reserved >= c.Workers {
		return fmt.Errorf("scenario: reserved %d outside [0, workers)", c.Reserved)
	}
	if c.ScansPerBeamline < 1 || c.ScansPerBeamline > maxScans {
		return fmt.Errorf("scenario: scans_per_beamline %d outside [1, %d]", c.ScansPerBeamline, maxScans)
	}
	if err := checkDur("scan_interval", c.ScanInterval, false); err != nil {
		return err
	}
	if err := checkDur("file_target", c.FileTarget, true); err != nil {
		return err
	}
	if err := checkDur("telemetry_interval", c.TelemetryInterval, true); err != nil {
		return err
	}
	if c.TelemetryInterval != 0 && !c.Telemetry {
		return fmt.Errorf("scenario: telemetry_interval set without campaign.telemetry")
	}
	if (len(s.Expect.Health) > 0 || len(s.Expect.Probes) > 0) && !c.Telemetry {
		return fmt.Errorf("scenario: expect.health and expect.probes require campaign.telemetry")
	}
	if len(c.Weights) > c.Beamlines {
		return fmt.Errorf("scenario: %d weights for %d beamlines", len(c.Weights), c.Beamlines)
	}
	for i, w := range c.Weights {
		if err := checkFinite(fmt.Sprintf("weights[%d]", i), w); err != nil {
			return err
		}
		if w <= 0 || w > 1000 {
			return fmt.Errorf("scenario: weights[%d] = %v outside (0, 1000]", i, w)
		}
	}

	if a := s.Admission; a != nil {
		if err := checkFinite("admission.guard_rate", a.GuardRate); err != nil {
			return err
		}
		if a.GuardRate < 0 {
			return fmt.Errorf("scenario: admission.guard_rate %v is negative", a.GuardRate)
		}
		if a.MaxQueuePerTenant < 0 || a.MaxDefers < 0 {
			return fmt.Errorf("scenario: admission queue bound and max_defers must be >= 0")
		}
		if err := checkDur("admission.defer_delay", a.DeferDelay, true); err != nil {
			return err
		}
		if err := checkDur("admission.shed_after", a.ShedAfter, true); err != nil {
			return err
		}
	}
	if b := s.Burst; b != nil {
		if err := checkDur("burst.at", b.At, true); err != nil {
			return err
		}
		if b.Scans < 1 || b.Scans > maxScans {
			return fmt.Errorf("scenario: burst.scans %d outside [1, %d]", b.Scans, maxScans)
		}
	}

	if len(s.WAN) > maxEvents {
		return fmt.Errorf("scenario: %d wan events exceed the %d cap", len(s.WAN), maxEvents)
	}
	for i, ev := range s.WAN {
		what := fmt.Sprintf("wan[%d]", i)
		if err := checkDur(what+".at", ev.At, true); err != nil {
			return err
		}
		if err := checkDur(what+".duration", ev.Duration, true); err != nil {
			return err
		}
		switch ev.Site {
		case "", "all", "nersc", "alcf":
		default:
			return fmt.Errorf("scenario: %s.site %q not in {nersc, alcf, all}", what, ev.Site)
		}
		if err := checkFinite(what+".bandwidth_gbps", ev.BandwidthGbps); err != nil {
			return err
		}
		if ev.Down {
			if ev.BandwidthGbps != 0 {
				return fmt.Errorf("scenario: %s sets both down and bandwidth_gbps", what)
			}
		} else if ev.BandwidthGbps <= 0 || ev.BandwidthGbps > maxBandwidth {
			return fmt.Errorf("scenario: %s.bandwidth_gbps %v outside (0, %d]",
				what, ev.BandwidthGbps, maxBandwidth)
		}
	}

	if len(s.Incidents) > maxEvents {
		return fmt.Errorf("scenario: %d incidents exceed the %d cap", len(s.Incidents), maxEvents)
	}
	for i, inc := range s.Incidents {
		what := fmt.Sprintf("incidents[%d]", i)
		if err := checkDur(what+".at", inc.At, true); err != nil {
			return err
		}
		if err := checkDur(what+".duration", inc.Duration, true); err != nil {
			return err
		}
		if err := checkFinite(what+".locked_fraction", inc.LockedFraction); err != nil {
			return err
		}
		switch inc.Kind {
		case IncidentSFAPIOutage:
			if inc.Duration == 0 {
				return fmt.Errorf("scenario: %s (sfapi_outage) needs a duration", what)
			}
		case IncidentSlurmStorm:
			if inc.Duration == 0 {
				return fmt.Errorf("scenario: %s (slurm_storm) needs a duration", what)
			}
			if inc.Nodes < 1 || inc.Nodes > 1024 {
				return fmt.Errorf("scenario: %s.nodes %d outside [1, 1024]", what, inc.Nodes)
			}
		case IncidentEndpointPrune:
			if inc.Requests < 1 || inc.Requests > maxRequests {
				return fmt.Errorf("scenario: %s.requests %d outside [1, %d]", what, inc.Requests, maxRequests)
			}
			if inc.LockedFraction < 0 || inc.LockedFraction > 1 {
				return fmt.Errorf("scenario: %s.locked_fraction %v outside [0, 1]", what, inc.LockedFraction)
			}
			if inc.Workers < 0 || inc.Workers > maxWorkers {
				return fmt.Errorf("scenario: %s.workers %d outside [0, %d]", what, inc.Workers, maxWorkers)
			}
		default:
			return fmt.Errorf("scenario: %s.kind %q not in {%s, %s, %s}", what, inc.Kind,
				IncidentSFAPIOutage, IncidentSlurmStorm, IncidentEndpointPrune)
		}
	}

	return s.Expect.validate()
}

func (b *IntBound) validate(what string) error {
	if b == nil {
		return nil
	}
	if b.Min != nil && b.Max != nil && *b.Min > *b.Max {
		return fmt.Errorf("scenario: %s: min %d > max %d", what, *b.Min, *b.Max)
	}
	return nil
}

func (b *FloatBound) validate(what string) error {
	if b == nil {
		return nil
	}
	for side, v := range map[string]*float64{"min": b.Min, "max": b.Max} {
		if v == nil {
			continue
		}
		if err := checkFinite(what+"."+side, *v); err != nil {
			return err
		}
	}
	if b.Min != nil && b.Max != nil && *b.Min > *b.Max {
		return fmt.Errorf("scenario: %s: min %v > max %v", what, *b.Min, *b.Max)
	}
	return nil
}

func (e *Expect) validate() error {
	if err := e.CompletedRuns.validate("expect.completed_runs"); err != nil {
		return err
	}
	if err := e.Deferred.validate("expect.deferred"); err != nil {
		return err
	}
	if err := e.Shed.validate("expect.shed"); err != nil {
		return err
	}
	if err := e.StreamingUnder10sPct.validate("expect.streaming_under10s_pct"); err != nil {
		return err
	}
	if len(e.SLO) > maxEvents || len(e.Journal) > maxEvents ||
		len(e.Health) > maxEvents || len(e.Probes) > maxEvents {
		return fmt.Errorf("scenario: expectation lists exceed the %d cap", maxEvents)
	}
	for i, he := range e.Health {
		what := fmt.Sprintf("expect.health[%d]", i)
		if he.Facility == "" {
			return fmt.Errorf("scenario: %s needs a facility", what)
		}
		if len(he.Verdicts) > maxEvents {
			return fmt.Errorf("scenario: %s.verdicts exceeds the %d cap", what, maxEvents)
		}
		for j, v := range he.Verdicts {
			switch v {
			case "healthy", "degraded", "down":
			default:
				return fmt.Errorf("scenario: %s.verdicts[%d] %q not in {healthy, degraded, down}", what, j, v)
			}
		}
		if err := he.Transitions.validate(what + ".transitions"); err != nil {
			return err
		}
	}
	for i, pe := range e.Probes {
		what := fmt.Sprintf("expect.probes[%d]", i)
		if pe.Probe == "" {
			return fmt.Errorf("scenario: %s needs a probe name", what)
		}
		if err := pe.Runs.validate(what + ".runs"); err != nil {
			return err
		}
		if err := pe.Failures.validate(what + ".failures"); err != nil {
			return err
		}
		if err := pe.P95Seconds.validate(what + ".p95_seconds"); err != nil {
			return err
		}
	}
	for i, se := range e.SLO {
		what := fmt.Sprintf("expect.slo[%d]", i)
		if se.Objective == "" {
			return fmt.Errorf("scenario: %s needs an objective name", what)
		}
		if se.MinSamples < 0 {
			return fmt.Errorf("scenario: %s.min_samples is negative", what)
		}
		if err := se.AttainmentPct.validate(what + ".attainment_pct"); err != nil {
			return err
		}
	}
	for i, je := range e.Journal {
		what := fmt.Sprintf("expect.journal[%d]", i)
		if je.Component == "" && je.Msg == "" {
			return fmt.Errorf("scenario: %s needs a component or msg", what)
		}
		if je.MinLevel != "" {
			if _, ok := parseLevel(je.MinLevel); !ok {
				return fmt.Errorf("scenario: %s.min_level %q unknown", what, je.MinLevel)
			}
		}
		if err := je.Count.validate(what + ".count"); err != nil {
			return err
		}
	}
	return nil
}

// Decode parses a spec from JSON or the YAML subset (chosen by the first
// non-space byte) and validates it. Unknown fields are errors in both
// formats, so a typoed key cannot silently weaken an expectation.
func Decode(data []byte) (*Spec, error) {
	if len(bytes.TrimSpace(data)) == 0 {
		return nil, fmt.Errorf("scenario: empty spec")
	}
	var jsonBytes []byte
	if bytes.TrimSpace(data)[0] == '{' {
		jsonBytes = data
	} else {
		tree, err := parseYAML(data)
		if err != nil {
			return nil, err
		}
		jsonBytes, err = json.Marshal(tree)
		if err != nil {
			return nil, fmt.Errorf("scenario: yaml tree: %w", err)
		}
	}
	spec := &Spec{}
	dec := json.NewDecoder(bytes.NewReader(jsonBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(spec); err != nil {
		return nil, fmt.Errorf("scenario: decode: %w", err)
	}
	// Trailing garbage after the JSON document is an error, not ignored.
	if err := dec.Decode(new(interface{})); err == nil {
		return nil, fmt.Errorf("scenario: trailing data after spec document")
	} else if !strings.Contains(err.Error(), "EOF") {
		return nil, fmt.Errorf("scenario: trailing data: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// maxSpecBytes caps spec files; a campaign declaration is a page of
// YAML, not a megabyte.
const maxSpecBytes = 1 << 20

// Load reads and decodes a spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if len(data) > maxSpecBytes {
		return nil, fmt.Errorf("scenario: %s: %d bytes exceeds the %d cap", path, len(data), maxSpecBytes)
	}
	spec, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

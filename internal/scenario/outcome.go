package scenario

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/obslog"
)

// Outcome is the canonical report of one scenario run: campaign result,
// SLO attainment, scheduler decisions, a journal digest, and the
// pass/fail state of every declared expectation. Canonical() renders it
// to the byte-stable form goldens are diffed against; every field is
// deterministic under the sim clock.
type Outcome struct {
	Scenario    string `json:"scenario"`
	Description string `json:"description,omitempty"`
	Seed        int64  `json:"seed"`
	Epoch       string `json:"epoch"`

	Makespan             string  `json:"makespan"`
	Scans                int     `json:"scans"`
	CompletedRuns        int     `json:"completed_runs"`
	Deferred             int     `json:"deferred"`
	Shed                 int     `json:"shed"`
	StreamingUnder10sPct float64 `json:"streaming_under10s_pct"`
	RunsPerHour          float64 `json:"runs_per_hour"`

	SLO     []ObjectiveOutcome `json:"slo"`
	Alerts  []AlertOutcome     `json:"alerts,omitempty"`
	Tenants []TenantOutcome    `json:"tenants"`
	Journal JournalDigest      `json:"journal"`

	// Telemetry sections, present only when campaign.telemetry is on.
	Health      []HealthOutcome `json:"health,omitempty"`
	Probes      []ProbeOutcome  `json:"probes,omitempty"`
	ProbeDigest string          `json:"probe_digest,omitempty"`

	Checks []Check `json:"checks,omitempty"`
	Pass   bool    `json:"pass"`
}

// ObjectiveOutcome is one SLO objective's end-of-campaign state.
type ObjectiveOutcome struct {
	Name          string  `json:"name"`
	Samples       int     `json:"samples"`
	Met           int     `json:"met"`
	AttainmentPct float64 `json:"attainment_pct"`
	Firing        bool    `json:"firing"`
}

// AlertOutcome is one burn-rate alert transition, stamped as an offset
// from the campaign epoch.
type AlertOutcome struct {
	At        string  `json:"at"`
	Objective string  `json:"objective"`
	State     string  `json:"state"`
	BurnRate  float64 `json:"burn_rate"`
}

// TenantOutcome is one scheduler tenant's decision counters.
type TenantOutcome struct {
	Tenant        string  `json:"tenant"`
	Weight        float64 `json:"weight"`
	Enqueued      int     `json:"enqueued"`
	Dispatched    int     `json:"dispatched"`
	Completed     int     `json:"completed"`
	Deferred      int     `json:"deferred"`
	Shed          int     `json:"shed"`
	AttainmentPct float64 `json:"attainment_pct"`
}

// HealthOutcome is one facility's end-of-campaign health state plus its
// full verdict timeline (the initial healthy plus every transition).
type HealthOutcome struct {
	Facility    string             `json:"facility"`
	Score       float64            `json:"score"`
	Verdict     string             `json:"verdict"`
	Verdicts    []string           `json:"verdicts"`
	Transitions []HealthTransition `json:"transitions,omitempty"`
}

// HealthTransition is one verdict change, stamped as an offset from the
// campaign epoch.
type HealthTransition struct {
	At      string   `json:"at"`
	From    string   `json:"from"`
	To      string   `json:"to"`
	Score   float64  `json:"score"`
	Reasons []string `json:"reasons,omitempty"`
}

// ProbeOutcome is one synthetic probe's counters and latency quantiles.
type ProbeOutcome struct {
	Probe      string  `json:"probe"`
	Facility   string  `json:"facility"`
	Runs       int     `json:"runs"`
	Failures   int     `json:"failures"`
	P50Seconds float64 `json:"p50_seconds"`
	P95Seconds float64 `json:"p95_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
}

// JournalDigest summarizes the event journal without embedding it: event
// and eviction counts, per-component totals, and a SHA-256 over the full
// JSONL dump — one hash asserts the entire timeline is replay-identical.
type JournalDigest struct {
	Events     int              `json:"events"`
	LastSeq    uint64           `json:"last_seq"`
	Evicted    uint64           `json:"evicted"`
	Components []ComponentCount `json:"components"`
	SHA256     string           `json:"sha256"`
}

// ComponentCount is one component's event total.
type ComponentCount struct {
	Component string `json:"component"`
	Events    int    `json:"events"`
}

// Check is one evaluated expectation.
type Check struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// Canonical renders the outcome in the byte-stable golden form.
func (o *Outcome) Canonical() []byte {
	b, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		// Outcome contains only marshalable fields; this is unreachable
		// short of memory corruption, but never silently truncate.
		panic(fmt.Sprintf("scenario: marshal outcome: %v", err))
	}
	return append(b, '\n')
}

// FailedChecks returns the names of expectations that did not hold.
func (o *Outcome) FailedChecks() []string {
	var out []string
	for _, c := range o.Checks {
		if !c.Pass {
			out = append(out, c.Name+": "+c.Detail)
		}
	}
	return out
}

// round2 stabilizes derived floats at two decimals so goldens do not
// churn on representation noise.
func round2(v float64) float64 { return math.Round(v*100) / 100 }

// round3 keeps millisecond resolution for probe latencies.
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

func parseLevel(s string) (obslog.Level, bool) {
	if s == "" {
		return obslog.LevelDebug, true
	}
	return obslog.ParseLevel(s)
}

// digestJournal builds the journal digest over every retained event.
func digestJournal(j *obslog.Journal) JournalDigest {
	d := JournalDigest{
		Events:  j.Len(),
		LastSeq: j.LastSeq(),
		Evicted: j.Evicted(),
	}
	counts := map[string]int{}
	for _, e := range j.Events(obslog.Filter{}) {
		counts[e.Component]++
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d.Components = append(d.Components, ComponentCount{Component: name, Events: counts[name]})
	}
	h := sha256.New()
	if err := j.WriteJSONL(h, obslog.Filter{}); err != nil {
		// Events marshal unconditionally; keep the digest honest anyway.
		d.SHA256 = "error:" + err.Error()
		return d
	}
	d.SHA256 = fmt.Sprintf("%x", h.Sum(nil))
	return d
}

// countJournal counts retained events matching one journal expectation.
func countJournal(j *obslog.Journal, je JournalExpect) int {
	lvl, _ := parseLevel(je.MinLevel)
	n := 0
	for _, e := range j.Events(obslog.Filter{Component: je.Component, MinLevel: lvl}) {
		if je.Msg == "" || e.Msg == je.Msg {
			n++
		}
	}
	return n
}

func checkInt(name string, got int, b *IntBound) *Check {
	if b == nil {
		return nil
	}
	c := &Check{Name: name, Pass: true, Detail: fmt.Sprintf("%d within bounds", got)}
	if b.Min != nil && got < *b.Min {
		c.Pass = false
		c.Detail = fmt.Sprintf("%d below min %d", got, *b.Min)
	}
	if b.Max != nil && got > *b.Max {
		c.Pass = false
		c.Detail = fmt.Sprintf("%d above max %d", got, *b.Max)
	}
	return c
}

func checkFloat(name string, got float64, b *FloatBound) *Check {
	if b == nil {
		return nil
	}
	c := &Check{Name: name, Pass: true, Detail: fmt.Sprintf("%.2f within bounds", got)}
	if b.Min != nil && got < *b.Min {
		c.Pass = false
		c.Detail = fmt.Sprintf("%.2f below min %.2f", got, *b.Min)
	}
	if b.Max != nil && got > *b.Max {
		c.Pass = false
		c.Detail = fmt.Sprintf("%.2f above max %.2f", got, *b.Max)
	}
	return c
}

// evaluate appends one check per declared expectation and sets Pass.
func (o *Outcome) evaluate(spec *Spec, j *obslog.Journal) {
	e := &spec.Expect
	add := func(c *Check) {
		if c != nil {
			o.Checks = append(o.Checks, *c)
		}
	}
	add(checkInt("completed_runs", o.CompletedRuns, e.CompletedRuns))
	add(checkInt("deferred", o.Deferred, e.Deferred))
	add(checkInt("shed", o.Shed, e.Shed))
	add(checkFloat("streaming_under10s_pct", o.StreamingUnder10sPct, e.StreamingUnder10sPct))

	byName := map[string]ObjectiveOutcome{}
	for _, oo := range o.SLO {
		byName[oo.Name] = oo
	}
	for _, se := range e.SLO {
		name := "slo." + se.Objective
		oo, ok := byName[se.Objective]
		if !ok {
			add(&Check{Name: name, Pass: false, Detail: "objective not configured in this campaign"})
			continue
		}
		if se.MinSamples > 0 && oo.Samples < se.MinSamples {
			add(&Check{Name: name + ".samples", Pass: false,
				Detail: fmt.Sprintf("%d samples below min %d", oo.Samples, se.MinSamples)})
		} else if se.MinSamples > 0 {
			add(&Check{Name: name + ".samples", Pass: true,
				Detail: fmt.Sprintf("%d samples", oo.Samples)})
		}
		add(checkFloat(name+".attainment_pct", oo.AttainmentPct, se.AttainmentPct))
		if se.Firing != nil {
			c := &Check{Name: name + ".firing", Pass: oo.Firing == *se.Firing,
				Detail: fmt.Sprintf("firing=%v", oo.Firing)}
			if !c.Pass {
				c.Detail = fmt.Sprintf("firing=%v, want %v", oo.Firing, *se.Firing)
			}
			add(c)
		}
	}

	byFacility := map[string]HealthOutcome{}
	for _, ho := range o.Health {
		byFacility[ho.Facility] = ho
	}
	for _, he := range e.Health {
		name := "health." + he.Facility
		ho, ok := byFacility[he.Facility]
		if !ok {
			add(&Check{Name: name, Pass: false, Detail: "facility not scored in this campaign"})
			continue
		}
		if len(he.Verdicts) > 0 {
			got := strings.Join(ho.Verdicts, "→")
			want := strings.Join(he.Verdicts, "→")
			c := &Check{Name: name + ".verdicts", Pass: got == want, Detail: got}
			if !c.Pass {
				c.Detail = fmt.Sprintf("%s, want %s", got, want)
			}
			add(c)
		}
		add(checkInt(name+".transitions", len(ho.Transitions), he.Transitions))
	}

	byProbe := map[string]ProbeOutcome{}
	for _, po := range o.Probes {
		byProbe[po.Probe] = po
	}
	for _, pe := range e.Probes {
		name := "probe." + pe.Probe
		po, ok := byProbe[pe.Probe]
		if !ok {
			add(&Check{Name: name, Pass: false, Detail: "probe not registered in this campaign"})
			continue
		}
		add(checkInt(name+".runs", po.Runs, pe.Runs))
		add(checkInt(name+".failures", po.Failures, pe.Failures))
		add(checkFloat(name+".p95_seconds", po.P95Seconds, pe.P95Seconds))
	}

	for i, je := range e.Journal {
		got := countJournal(j, je)
		name := fmt.Sprintf("journal[%d]", i)
		if je.Component != "" {
			name += "." + je.Component
		}
		if je.Msg != "" {
			name += fmt.Sprintf("(%q)", je.Msg)
		}
		add(checkInt(name, got, &je.Count))
	}

	o.Pass = true
	for _, c := range o.Checks {
		if !c.Pass {
			o.Pass = false
			break
		}
	}
}

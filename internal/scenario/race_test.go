package scenario

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obslog"
)

// TestOverlappingIncidentsUnderReaders runs a scenario whose chaos
// windows overlap — a WAN link flap in the middle of an SFAPI outage,
// with a prune burst on top — while real OS goroutines hammer the
// scheduler snapshot, SLO report, and journal read paths. Under -race
// this is the proof that the chaos hooks (Link.Down, Cluster.SetDown,
// the transfer fault hook) and the observability surfaces share state
// safely while the campaign drains.
func TestOverlappingIncidentsUnderReaders(t *testing.T) {
	spec := smokeSpec()
	spec.Name = "overlap-race"
	spec.Campaign.Beamlines = 3
	spec.Campaign.Workers = 3
	spec.Campaign.Reserved = 1
	spec.Campaign.ScansPerBeamline = 6
	spec.Admission = &AdmissionSpec{
		Enabled:         true,
		GuardObjectives: []string{"file_branch"},
		GuardRate:       1,
		DeferDelay:      Duration(2 * 60 * 1e9),
		MaxDefers:       3,
	}
	spec.Incidents = []Incident{
		{Kind: IncidentSFAPIOutage, At: Duration(4 * 60 * 1e9), Duration: Duration(20 * 60 * 1e9)},
		{Kind: IncidentEndpointPrune, At: Duration(6 * 60 * 1e9), Requests: 30,
			LockedFraction: 0.3, FailFast: true},
	}
	spec.WAN = []WANEvent{
		// The flap opens and closes strictly inside the outage window.
		{At: Duration(8 * 60 * 1e9), Duration: Duration(5 * 60 * 1e9), Site: "nersc", Down: true},
	}

	r, err := NewRunner(spec)
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	bl := r.Campaign.Base
	readers := []func(){
		func() { _ = r.Campaign.Sched.Snapshot() },
		func() { _ = bl.SLO.Report() },
		func() { _ = bl.SLO.Alerts() },
		func() { _ = bl.Journal.Events(obslog.Filter{Component: "scenario"}) },
		func() { _ = bl.Journal.Len() },
	}
	for _, read := range readers {
		read := read
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				read()
				// Yield instead of sleeping: the readers race the sim loop
				// as fast as the scheduler lets them.
				runtime.Gosched()
			}
		}()
	}

	out, err := r.Run()
	stop.Store(true)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if out.Scans != 18 || out.CompletedRuns == 0 {
		t.Fatalf("campaign did not drain: %d scans, %d completed", out.Scans, out.CompletedRuns)
	}
	// All three chaos tracks must have actually fired.
	counts := map[string]int{}
	for _, c := range out.Journal.Components {
		counts[c.Component] = c.Events
	}
	if counts["scenario"] < 5 {
		t.Fatalf("scenario chaos events = %d, want the outage, flap, and prune markers", counts["scenario"])
	}
	if counts["facility"] == 0 {
		t.Fatal("no facility events — the outage window never rejected a submission")
	}
}

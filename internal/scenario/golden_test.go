package scenario

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestGoldenPath(t *testing.T) {
	cases := map[string]string{
		"a/b.yaml": "a/b.golden.json",
		"a/b.yml":  "a/b.golden.json",
		"a/b.json": "a/b.golden.json",
		"a/b.conf": "a/b.conf.golden.json",
		"noext":    "noext.golden.json",
	}
	for in, want := range cases {
		if got := GoldenPath(in); got != want {
			t.Errorf("GoldenPath(%q) = %q, want %q", in, got, want)
		}
	}
}

// writeSmokeSpec materializes a spec file for the verify round trip.
func writeSmokeSpec(t *testing.T, mutate func(*Spec)) string {
	t.Helper()
	spec := smokeSpec()
	if mutate != nil {
		mutate(spec)
	}
	b, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/" + spec.Name + ".json"
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRecordThenVerify(t *testing.T) {
	path := writeSmokeSpec(t, nil)

	v, err := Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if !v.GoldenMissing || v.Pass() {
		t.Fatalf("verify before record: missing=%v pass=%v", v.GoldenMissing, v.Pass())
	}
	if !v.Deterministic {
		t.Fatalf("replay not deterministic:\n%s", v.DetDiff)
	}

	r, err := Record(path)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Deterministic || !r.GoldenMatch {
		t.Fatalf("record: %+v", r)
	}

	v, err = Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass() {
		t.Fatalf("verify after record failed: match=%v det=%v checks=%v",
			v.GoldenMatch, v.Deterministic, v.Outcome.FailedChecks())
	}
}

// The acceptance scenario from the issue: tighten an SLO bound after
// recording and verification must fail with a readable diff naming the
// failed check.
func TestPerturbedSpecFailsWithReadableDiff(t *testing.T) {
	min := 1
	path := writeSmokeSpec(t, func(s *Spec) {
		s.Expect.CompletedRuns = &IntBound{Min: &min}
	})
	if _, err := Record(path); err != nil {
		t.Fatal(err)
	}

	// Tighten the bound beyond reach, in place, like an editor would.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	perturbed := strings.Replace(string(data), `"min": 1`, `"min": 10000`, 1)
	if perturbed == string(data) {
		t.Fatal("perturbation did not apply")
	}
	if err := os.WriteFile(path, []byte(perturbed), 0o644); err != nil {
		t.Fatal(err)
	}

	v, err := Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass() {
		t.Fatal("perturbed spec passed verification")
	}
	if v.Outcome.Pass {
		t.Fatal("tightened bound did not fail the outcome")
	}
	if v.GoldenMatch {
		t.Fatal("outcome with a failed check matched the passing golden")
	}
	diff := v.GoldenDiff
	if diff == "" {
		t.Fatal("no diff rendered")
	}
	// The diff must point a human at the failed check, not just differ.
	if !strings.Contains(diff, "completed_runs") || !strings.Contains(diff, "below min 10000") {
		t.Fatalf("diff does not name the failed check:\n%s", diff)
	}
	for _, line := range strings.Split(strings.TrimSuffix(diff, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "- "), strings.HasPrefix(line, "+ "),
			strings.HasPrefix(line, "  "), strings.HasPrefix(line, "..."):
		default:
			t.Fatalf("diff line %q lacks a marker", line)
		}
	}
}

func TestVerifyStaleGolden(t *testing.T) {
	path := writeSmokeSpec(t, nil)
	if _, err := Record(path); err != nil {
		t.Fatal(err)
	}
	// Corrupt the golden; verify must report a mismatch, not an error.
	if err := os.WriteFile(GoldenPath(path), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	v, err := Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if v.GoldenMatch || v.Pass() {
		t.Fatal("stale golden passed")
	}
	if v.GoldenDiff == "" {
		t.Fatal("no diff for stale golden")
	}
}

func TestVerifyBadSpecErrors(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/bad.yaml"
	if err := os.WriteFile(path, []byte("not: [valid"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(path); err == nil {
		t.Fatal("Verify accepted an undecodable spec")
	}
	if _, err := Record(dir + "/missing.yaml"); err == nil {
		t.Fatal("Record accepted a missing spec")
	}
}

func TestDiff(t *testing.T) {
	if d := Diff([]byte("a\nb\n"), []byte("a\nb\n")); d != "" {
		t.Fatalf("identical inputs diffed: %q", d)
	}
	d := Diff([]byte("a\nb\nc\n"), []byte("a\nx\nc\n"))
	if !strings.Contains(d, "- b") || !strings.Contains(d, "+ x") {
		t.Fatalf("diff = %q", d)
	}
	// Trailing-byte-only difference still reports something.
	if d := Diff([]byte("a"), []byte("a\n")); d == "" {
		t.Fatal("trailing newline difference invisible")
	}
	// Truncation engages on pathological divergence.
	var a, b strings.Builder
	for i := 0; i < 2*maxDiffLines; i++ {
		a.WriteString("left\n")
		b.WriteString("right\n")
	}
	if d := Diff([]byte(a.String()), []byte(b.String())); !strings.Contains(d, "truncated") {
		t.Fatal("huge diff not truncated")
	}
}

package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func mustYAML(t *testing.T, src string) interface{} {
	t.Helper()
	v, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestYAMLScalars(t *testing.T) {
	v := mustYAML(t, `
s: plain words
q: "quoted: text # kept"
sq: 'it''s'
i: 42
neg: -3
f: 2.5
exp: 1e3
b: true
nb: false
nul: null
tilde: ~
empty:
`)
	want := map[string]interface{}{
		"s":     "plain words",
		"q":     "quoted: text # kept",
		"sq":    "it's",
		"i":     json.Number("42"),
		"neg":   json.Number("-3"),
		"f":     json.Number("2.5"),
		"exp":   json.Number("1e3"),
		"b":     true,
		"nb":    false,
		"nul":   nil,
		"tilde": nil,
		"empty": nil,
	}
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("got %#v\nwant %#v", v, want)
	}
}

func TestYAMLNesting(t *testing.T) {
	v := mustYAML(t, `
top:
  inline: [1, two, "three, four"]
  list:
    - a
    - kind: x
      at: 5m
    -
    - nested:
        deep: 1
`)
	top, ok := v.(map[string]interface{})["top"].(map[string]interface{})
	if !ok {
		t.Fatalf("top not a map: %#v", v)
	}
	inline := top["inline"].([]interface{})
	if len(inline) != 3 || inline[2] != "three, four" {
		t.Fatalf("inline = %#v", inline)
	}
	list := top["list"].([]interface{})
	if len(list) != 4 {
		t.Fatalf("list = %#v", list)
	}
	item := list[1].(map[string]interface{})
	if item["kind"] != "x" || item["at"] != "5m" {
		t.Fatalf("item map = %#v", item)
	}
	if list[2] != nil {
		t.Fatalf("bare dash should be nil, got %#v", list[2])
	}
	nested := list[3].(map[string]interface{})["nested"].(map[string]interface{})
	if nested["deep"] != json.Number("1") {
		t.Fatalf("nested = %#v", nested)
	}
}

func TestYAMLCommentsAndMarkers(t *testing.T) {
	v := mustYAML(t, `---
# full-line comment
key: value  # trailing comment
anchor: "a # not a comment"
hash: a#b
`)
	m := v.(map[string]interface{})
	if m["key"] != "value" || m["anchor"] != "a # not a comment" || m["hash"] != "a#b" {
		t.Fatalf("comment handling: %#v", m)
	}
}

func TestYAMLRejects(t *testing.T) {
	cases := map[string]string{
		"tab":           "key:\tvalue",
		"multi-doc":     "a: 1\n---\nb: 2",
		"end marker":    "a: 1\n...",
		"anchor":        "a: &x 1",
		"alias":         "a: *x",
		"directive":     "%YAML 1.2\na: 1",
		"flow map":      "a: {b: 1}",
		"block scalar":  "a: |\n  text",
		"folded scalar": "a: >\n  text",
		"dup key":       "a: 1\na: 2",
		"bad indent":    "a: 1\n   b: 2",
		"list in map":   "a: 1\n- b",
		"bad key":       "a b: 1",
		"no colon":      "just words\nmore",
		"unterminated":  `a: "open`,
		"unclosed list": "a: [1, 2",
		"nested inline": "a: [[1], 2]",
		"inline flow":   "a: [{b: 1}]",
		"empty doc":     "",
		"comments only": "# nothing\n# here",
		"single quote":  "a: 'open",
		"deep indent":   "a:\n    b: 1\n  c: 2",
	}
	for name, src := range cases {
		if _, err := parseYAML([]byte(src)); err == nil {
			t.Errorf("%s: parsed %q without error", name, src)
		}
	}
}

func TestYAMLDepthCap(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < maxYAMLDepth+2; i++ {
		sb.WriteString(strings.Repeat(" ", i*2))
		sb.WriteString("k:\n")
	}
	sb.WriteString(strings.Repeat(" ", (maxYAMLDepth+2)*2))
	sb.WriteString("leaf: 1\n")
	if _, err := parseYAML([]byte(sb.String())); err == nil {
		t.Fatal("depth cap not enforced")
	}
}

func TestYAMLLineCap(t *testing.T) {
	src := strings.Repeat("# pad\n", maxYAMLLines+1)
	if _, err := parseYAML([]byte(src)); err == nil {
		t.Fatal("line cap not enforced")
	}
}

// Numbers must survive the tree → JSON round trip losslessly: a 19-digit
// seed is beyond float64's integer range.
func TestYAMLNumberFidelity(t *testing.T) {
	v := mustYAML(t, "seed: 9007199254740993")
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"seed":9007199254740993}` {
		t.Fatalf("marshal = %s", b)
	}
}

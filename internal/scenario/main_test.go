package scenario

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain gates the package's tests on the goroutine-leak check: a
// scenario whose chaos procs outlive the engine fails the run.
func TestMain(m *testing.M) { leakcheck.Main(m) }

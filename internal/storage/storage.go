// Package storage models the tiered file systems of the paper's data
// lifecycle on the discrete-event kernel: the beamline data server (fast,
// small, days-to-weeks retention), the NERSC Community File System and
// ALCF Eagle (months-to-years), Perlmutter scratch (job-local staging),
// and the HPSS tape archive (indefinite, with mount latency). Stores track
// per-file checksums and creation times so the pruning flows and transfer
// verification exercise the same logic the production system runs.
package storage

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
)

// File is one stored object.
type File struct {
	Path     string
	Size     int64
	Checksum string
	Created  time.Time
}

// Store is a simulated file system tier.
type Store struct {
	Name string
	// WriteBW and ReadBW are sustained throughputs in bytes/second.
	WriteBW, ReadBW float64
	// Latency is the per-operation setup cost (tape mount for HPSS).
	Latency time.Duration
	// Quota caps total stored bytes; 0 means unlimited.
	Quota int64
	// Retention is the age-based pruning horizon used by PruneExpired.
	Retention time.Duration

	e     *sim.Engine
	io    *sim.Resource
	files map[string]*File
	used  int64

	// PrunedBytes accumulates bytes reclaimed by pruning, for the
	// lifecycle report.
	PrunedBytes int64
}

// Config declares a tier's performance envelope.
type Config struct {
	Name            string
	WriteBW, ReadBW float64
	Latency         time.Duration
	Quota           int64
	Retention       time.Duration
	// Streams is the number of concurrent I/O operations the tier
	// sustains before queueing (default 4).
	Streams int
}

// New creates a store on the engine.
func New(e *sim.Engine, cfg Config) *Store {
	streams := cfg.Streams
	if streams <= 0 {
		streams = 4
	}
	return &Store{
		Name:    cfg.Name,
		WriteBW: cfg.WriteBW, ReadBW: cfg.ReadBW,
		Latency: cfg.Latency, Quota: cfg.Quota, Retention: cfg.Retention,
		e:     e,
		io:    sim.NewResource(e, streams),
		files: map[string]*File{},
	}
}

// ErrQuota is returned when a write would exceed the tier's quota.
type ErrQuota struct {
	Store string
	Need  int64
	Free  int64
}

func (e *ErrQuota) Error() string {
	return fmt.Sprintf("storage: %s: quota exceeded (need %d, free %d)", e.Store, e.Need, e.Free)
}

// ErrNotFound is returned for missing paths.
type ErrNotFound struct {
	Store string
	Path  string
}

func (e *ErrNotFound) Error() string {
	return fmt.Sprintf("storage: %s: no such file %q", e.Store, e.Path)
}

// Put writes a file, blocking the process for the tier's latency plus the
// transfer time. Overwrites replace the existing file's accounting.
func (s *Store) Put(p *sim.Proc, path string, size int64, checksum string) error {
	if size < 0 {
		return fmt.Errorf("storage: %s: negative size for %q", s.Name, path)
	}
	delta := size
	if old, ok := s.files[path]; ok {
		delta -= old.Size
	}
	if s.Quota > 0 && s.used+delta > s.Quota {
		return &ErrQuota{Store: s.Name, Need: delta, Free: s.Quota - s.used}
	}
	s.io.Acquire(p)
	p.Sleep(s.Latency + time.Duration(float64(size)/s.WriteBW*float64(time.Second)))
	s.io.Release()
	s.files[path] = &File{Path: path, Size: size, Checksum: checksum, Created: p.Now()}
	s.used += delta
	return nil
}

// Get reads a file, blocking for latency plus read time, and returns its
// record.
func (s *Store) Get(p *sim.Proc, path string) (*File, error) {
	f, ok := s.files[path]
	if !ok {
		return nil, &ErrNotFound{Store: s.Name, Path: path}
	}
	s.io.Acquire(p)
	p.Sleep(s.Latency + time.Duration(float64(f.Size)/s.ReadBW*float64(time.Second)))
	s.io.Release()
	return f, nil
}

// Stat returns a file's record without any I/O cost.
func (s *Store) Stat(path string) (*File, error) {
	f, ok := s.files[path]
	if !ok {
		return nil, &ErrNotFound{Store: s.Name, Path: path}
	}
	return f, nil
}

// Delete removes a file (no-op error if absent).
func (s *Store) Delete(path string) error {
	f, ok := s.files[path]
	if !ok {
		return &ErrNotFound{Store: s.Name, Path: path}
	}
	delete(s.files, path)
	s.used -= f.Size
	return nil
}

// Used returns the stored byte total.
func (s *Store) Used() int64 { return s.used }

// Count returns the number of stored files.
func (s *Store) Count() int { return len(s.files) }

// List returns all files sorted by path.
func (s *Store) List() []*File {
	out := make([]*File, 0, len(s.files))
	for _, f := range s.files {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// ExpiredBefore returns the files older than the retention horizon at the
// given time.
func (s *Store) ExpiredBefore(now time.Time) []*File {
	if s.Retention <= 0 {
		return nil
	}
	cutoff := now.Add(-s.Retention)
	var out []*File
	for _, f := range s.files {
		if f.Created.Before(cutoff) {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// PruneExpired deletes every file past the retention horizon and returns
// the count and bytes reclaimed. It is the action behind the scheduled
// pruning flows that keep the tiers from saturating.
func (s *Store) PruneExpired(now time.Time) (int, int64) {
	var n int
	var bytes int64
	for _, f := range s.ExpiredBefore(now) {
		if s.Delete(f.Path) == nil {
			n++
			bytes += f.Size
		}
	}
	s.PrunedBytes += bytes
	return n, bytes
}

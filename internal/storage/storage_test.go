package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/sim"
)

var epoch = time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)

func newStore(e *sim.Engine, quota int64, retention time.Duration) *Store {
	return New(e, Config{
		Name: "test", WriteBW: 1 << 30, ReadBW: 2 << 30,
		Quota: quota, Retention: retention,
	})
}

func TestPutGetTiming(t *testing.T) {
	e := sim.New(epoch)
	s := newStore(e, 0, 0)
	var putD, getD time.Duration
	e.Go("io", func(p *sim.Proc) {
		t0 := p.Now()
		if err := s.Put(p, "a", 2<<30, "c1"); err != nil {
			t.Error(err)
		}
		putD = p.Now().Sub(t0)
		t0 = p.Now()
		f, err := s.Get(p, "a")
		if err != nil {
			t.Error(err)
		}
		getD = p.Now().Sub(t0)
		if f.Checksum != "c1" || f.Size != 2<<30 {
			t.Errorf("bad file record %+v", f)
		}
	})
	e.Run()
	if putD != 2*time.Second {
		t.Errorf("put took %v, want 2s at 1 GiB/s", putD)
	}
	if getD != time.Second {
		t.Errorf("get took %v, want 1s at 2 GiB/s", getD)
	}
}

func TestQuota(t *testing.T) {
	e := sim.New(epoch)
	s := newStore(e, 100, 0)
	e.Go("io", func(p *sim.Proc) {
		if err := s.Put(p, "a", 80, "x"); err != nil {
			t.Error(err)
		}
		err := s.Put(p, "b", 30, "y")
		var q *ErrQuota
		if !errors.As(err, &q) {
			t.Errorf("expected quota error, got %v", err)
		}
		// Overwriting an existing file charges only the delta.
		if err := s.Put(p, "a", 100, "x2"); err != nil {
			t.Errorf("overwrite within quota failed: %v", err)
		}
	})
	e.Run()
	if s.Used() != 100 {
		t.Fatalf("used = %d", s.Used())
	}
}

func TestNegativeSizeRejected(t *testing.T) {
	e := sim.New(epoch)
	s := newStore(e, 0, 0)
	e.Go("io", func(p *sim.Proc) {
		if err := s.Put(p, "a", -1, "x"); err == nil {
			t.Error("negative size should be rejected")
		}
	})
	e.Run()
}

func TestStatDeleteCount(t *testing.T) {
	e := sim.New(epoch)
	s := newStore(e, 0, 0)
	e.Go("io", func(p *sim.Proc) {
		s.Put(p, "x/1", 10, "a")
		s.Put(p, "x/2", 20, "b")
		if s.Count() != 2 || s.Used() != 30 {
			t.Errorf("count=%d used=%d", s.Count(), s.Used())
		}
		if _, err := s.Stat("x/1"); err != nil {
			t.Error(err)
		}
		if err := s.Delete("x/1"); err != nil {
			t.Error(err)
		}
		if err := s.Delete("x/1"); err == nil {
			t.Error("double delete should error")
		}
		var nf *ErrNotFound
		if _, err := s.Get(p, "gone"); !errors.As(err, &nf) {
			t.Errorf("want ErrNotFound, got %v", err)
		}
		if s.Used() != 20 {
			t.Errorf("used after delete = %d", s.Used())
		}
	})
	e.Run()
}

func TestListSorted(t *testing.T) {
	e := sim.New(epoch)
	s := newStore(e, 0, 0)
	e.Go("io", func(p *sim.Proc) {
		s.Put(p, "b", 1, "")
		s.Put(p, "a", 1, "")
		s.Put(p, "c", 1, "")
	})
	e.Run()
	l := s.List()
	if l[0].Path != "a" || l[1].Path != "b" || l[2].Path != "c" {
		t.Fatalf("not sorted: %v", []string{l[0].Path, l[1].Path, l[2].Path})
	}
}

func TestRetentionPruning(t *testing.T) {
	e := sim.New(epoch)
	s := newStore(e, 0, time.Hour)
	e.Go("io", func(p *sim.Proc) {
		s.Put(p, "old", 100, "")
		p.Sleep(2 * time.Hour)
		s.Put(p, "new", 50, "")
		exp := s.ExpiredBefore(p.Now())
		if len(exp) != 1 || exp[0].Path != "old" {
			t.Errorf("expired = %v", exp)
		}
		n, bytes := s.PruneExpired(p.Now())
		if n != 1 || bytes != 100 {
			t.Errorf("pruned %d files %d bytes", n, bytes)
		}
		if _, err := s.Stat("old"); err == nil {
			t.Error("old file survived prune")
		}
		if _, err := s.Stat("new"); err != nil {
			t.Error("new file pruned prematurely")
		}
	})
	e.Run()
	if s.PrunedBytes != 100 {
		t.Fatalf("PrunedBytes = %d", s.PrunedBytes)
	}
}

func TestNoRetentionNoPrune(t *testing.T) {
	e := sim.New(epoch)
	s := newStore(e, 0, 0)
	e.Go("io", func(p *sim.Proc) {
		s.Put(p, "a", 1, "")
		p.Sleep(1000 * time.Hour)
		if n, _ := s.PruneExpired(p.Now()); n != 0 {
			t.Error("retention=0 should never prune")
		}
	})
	e.Run()
}

func TestIOContention(t *testing.T) {
	// With 1 stream, two 1-second writes serialize.
	e := sim.New(epoch)
	s := New(e, Config{Name: "narrow", WriteBW: 1 << 30, ReadBW: 1 << 30, Streams: 1})
	for i := 0; i < 2; i++ {
		i := i
		e.Go("w", func(p *sim.Proc) {
			s.Put(p, string(rune('a'+i)), 1<<30, "")
		})
	}
	end := e.Run()
	if end.Sub(epoch) != 2*time.Second {
		t.Fatalf("serialized writes took %v, want 2s", end.Sub(epoch))
	}
}

func TestHPSSLatencyModel(t *testing.T) {
	e := sim.New(epoch)
	hpss := New(e, Config{Name: "hpss", WriteBW: 1 << 30, ReadBW: 1 << 30,
		Latency: 2 * time.Minute})
	var d time.Duration
	e.Go("io", func(p *sim.Proc) {
		t0 := p.Now()
		hpss.Put(p, "archive", 1<<30, "")
		d = p.Now().Sub(t0)
	})
	e.Run()
	if d != 2*time.Minute+time.Second {
		t.Fatalf("tape write took %v, want mount latency + 1s", d)
	}
}

// Property: after any sequence of puts/overwrites/deletes, Used() equals
// the sum of surviving file sizes and Count() the surviving file count.
func TestAccountingInvariantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		e := sim.New(epoch)
		s := newStore(e, 0, 0)
		live := map[string]int64{}
		e.Go("ops", func(p *sim.Proc) {
			for op := 0; op < 60; op++ {
				path := fmt.Sprintf("f%d", rng.Intn(10))
				switch rng.Intn(3) {
				case 0, 1: // put or overwrite
					size := int64(rng.Intn(1000))
					if err := s.Put(p, path, size, "c"); err != nil {
						t.Error(err)
						return
					}
					live[path] = size
				case 2:
					err := s.Delete(path)
					_, existed := live[path]
					if existed != (err == nil) {
						t.Errorf("delete %q: existed=%v err=%v", path, existed, err)
						return
					}
					delete(live, path)
				}
			}
		})
		e.Run()
		var want int64
		for _, sz := range live {
			want += sz
		}
		if s.Used() != want {
			t.Fatalf("trial %d: used %d, want %d", trial, s.Used(), want)
		}
		if s.Count() != len(live) {
			t.Fatalf("trial %d: count %d, want %d", trial, s.Count(), len(live))
		}
	}
}

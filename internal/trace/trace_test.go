package trace

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)

func at(d time.Duration) time.Time { return epoch.Add(d) }

func TestSpanTreeLifecycle(t *testing.T) {
	root := NewRoot("nersc_recon_flow", epoch)
	if root.Name() != "nersc_recon_flow" || root.Stage() != "nersc_recon_flow" {
		t.Fatalf("root name %q stage %q", root.Name(), root.Stage())
	}
	if root.Ended() || root.Duration() != 0 {
		t.Fatal("open span must report Ended=false, Duration=0")
	}
	c1 := root.StartChild("globus_to_cfs", at(10*time.Second))
	c1.End(at(70 * time.Second))
	c2 := root.StartChild("slurm_recon_job", at(70*time.Second))
	sub := c2.StartChildStage("queue_wait tomopy-1", "queue_wait", at(70*time.Second))
	sub.End(at(100 * time.Second))
	c2.End(at(400 * time.Second))
	root.End(at(410 * time.Second))

	if root.Duration() != 410*time.Second {
		t.Fatalf("root duration %v", root.Duration())
	}
	if got := root.StartTime(); !got.Equal(epoch) {
		t.Fatalf("root start %v", got)
	}
	if got := root.EndTime(); !got.Equal(at(410 * time.Second)) {
		t.Fatalf("root end %v", got)
	}
	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "globus_to_cfs" || kids[1].Name() != "slurm_recon_job" {
		t.Fatalf("children %v", kids)
	}
	if sub.Stage() != "queue_wait" || sub.Name() != "queue_wait tomopy-1" {
		t.Fatalf("sub name %q stage %q", sub.Name(), sub.Stage())
	}
	// End is first-wins.
	root.End(at(999 * time.Second))
	if root.Duration() != 410*time.Second {
		t.Fatalf("second End moved the span: %v", root.Duration())
	}
}

func TestNilSafety(t *testing.T) {
	var s *Span
	if c := s.StartChild("x", epoch); c != nil {
		t.Fatal("nil span spawned a child")
	}
	if c := s.StartChildStage("x", "y", epoch); c != nil {
		t.Fatal("nil span spawned a staged child")
	}
	s.End(epoch) // must not panic
	if s.Name() != "" || s.Stage() != "" || s.Duration() != 0 || s.Ended() {
		t.Fatal("nil accessors must return zero values")
	}
	if !s.StartTime().IsZero() || !s.EndTime().IsZero() {
		t.Fatal("nil times must be zero")
	}
	if s.Children() != nil || s.Snapshot() != nil || s.StageTotals() != nil {
		t.Fatal("nil views must be nil")
	}
	s.Walk(func(int, *Span) { t.Fatal("nil walk visited a span") })
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(nil) != nil {
		t.Fatal("nil ctx must yield nil span")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty ctx must yield nil span")
	}
	sp := NewRoot("r", epoch)
	ctx := NewContext(context.Background(), sp)
	if FromContext(ctx) != sp {
		t.Fatal("span lost through context")
	}
	// nil ctx is upgraded, matching the rest of the repo's nil-ctx style.
	if FromContext(NewContext(nil, sp)) != sp {
		t.Fatal("nil parent ctx not upgraded")
	}
	// A child ctx sees the nearest span.
	inner := sp.StartChild("c", epoch)
	ctx2 := NewContext(ctx, inner)
	if FromContext(ctx2) != inner || FromContext(ctx) != sp {
		t.Fatal("nesting broken")
	}
}

func TestSnapshotOffsetsAndJSON(t *testing.T) {
	root := NewRoot("f", epoch)
	c := root.StartChild("copy", at(22*time.Second))
	c.End(at(115 * time.Second))
	open := root.StartChildStage("copy raw/s1.h5", "copy", at(115*time.Second))
	_ = open // left open deliberately
	root.End(at(120 * time.Second))

	n := root.Snapshot()
	if n.Name != "f" || n.OffsetS != 0 || n.DurationS != 120 {
		t.Fatalf("root node %+v", n)
	}
	if len(n.Children) != 2 {
		t.Fatalf("children %d", len(n.Children))
	}
	if n.Children[0].OffsetS != 22 || n.Children[0].DurationS != 93 {
		t.Fatalf("child node %+v", n.Children[0])
	}
	if n.Children[0].Stage != "" {
		t.Fatalf("stage==name must be omitted, got %q", n.Children[0].Stage)
	}
	if !n.Children[1].Open || n.Children[1].DurationS != 0 || n.Children[1].Stage != "copy" {
		t.Fatalf("open node %+v", n.Children[1])
	}
	raw, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	var back Node
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.DurationS != 120 || len(back.Children) != 2 {
		t.Fatalf("json round trip %+v", back)
	}
}

func TestStageTotalsSumToDuration(t *testing.T) {
	root := NewRoot("new_file_832", epoch)
	// 22 s of uninstrumented overhead before the first task.
	c1 := root.StartChild("stage_to_data_server", at(22*time.Second))
	c1.End(at(115 * time.Second))
	c2 := root.StartChild("validate_checksum", at(115*time.Second))
	c2.End(at(120 * time.Second))
	// Two spans of the same stage aggregate.
	c3 := root.StartChildStage("ingest a", "ingest", at(120*time.Second))
	c3.End(at(121 * time.Second))
	c4 := root.StartChildStage("ingest b", "ingest", at(121*time.Second))
	c4.End(at(123 * time.Second))
	root.End(at(125 * time.Second))

	totals := root.StageTotals()
	want := []StageTotal{
		{"stage_to_data_server", 93},
		{"validate_checksum", 5},
		{"ingest", 3},
		{GapStage, 24},
	}
	if len(totals) != len(want) {
		t.Fatalf("totals %v", totals)
	}
	var sum float64
	for i, w := range want {
		if totals[i] != w {
			t.Fatalf("totals[%d] = %v, want %v", i, totals[i], w)
		}
		sum += totals[i].Seconds
	}
	if sum != root.Duration().Seconds() {
		t.Fatalf("stage sum %v != duration %v", sum, root.Duration().Seconds())
	}
}

func TestStageTotalsClampsOverlap(t *testing.T) {
	root := NewRoot("par", epoch)
	a := root.StartChild("a", epoch)
	b := root.StartChild("b", epoch)
	a.End(at(10 * time.Second))
	b.End(at(10 * time.Second))
	root.End(at(10 * time.Second))
	totals := root.StageTotals()
	gap := totals[len(totals)-1]
	if gap.Stage != GapStage || gap.Seconds != 0 {
		t.Fatalf("overlap gap %v, want clamped 0", gap)
	}
	// Open children are excluded from the sums.
	root2 := NewRoot("open", epoch)
	root2.StartChild("never_ended", epoch)
	root2.End(at(5 * time.Second))
	totals2 := root2.StageTotals()
	if len(totals2) != 1 || totals2[0] != (StageTotal{GapStage, 5}) {
		t.Fatalf("open-child totals %v", totals2)
	}
}

func TestWalkOrder(t *testing.T) {
	root := NewRoot("r", epoch)
	a := root.StartChild("a", epoch)
	a.StartChild("a1", epoch).End(epoch)
	a.End(epoch)
	root.StartChild("b", epoch).End(epoch)
	root.End(epoch)

	var got []string
	var depths []int
	root.Walk(func(d int, sp *Span) {
		got = append(got, sp.Name())
		depths = append(depths, d)
		_ = sp.Duration() // locking accessors must be legal inside fn
	})
	want := []string{"r", "a", "a1", "b"}
	wantD := []int{0, 1, 2, 1}
	for i := range want {
		if got[i] != want[i] || depths[i] != wantD[i] {
			t.Fatalf("walk %v depths %v", got, depths)
		}
	}
}

func TestConcurrentChildrenRace(t *testing.T) {
	// Real-clock flows may open sub-spans from parallel goroutines; the
	// shared tree mutex must keep that safe under -race.
	root := NewRoot("r", time.Now())
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c := root.StartChild("c", time.Now())
				c.StartChildStage("s", "s", time.Now()).End(time.Now())
				c.End(time.Now())
				_ = root.Snapshot()
				_ = root.StageTotals()
			}
		}()
	}
	wg.Wait()
	root.End(time.Now())
	if got := len(root.Children()); got != 16*50 {
		t.Fatalf("children = %d", got)
	}
}

// Package trace records per-run span trees — the stage-level latency
// breakdown the paper's operators use to answer "where did the 1525
// seconds of nersc_recon_flow go?" (§4.2, Table 2). A flow run owns a
// root span; each task opens a child span automatically; and the
// transfer, facility, and streaming layers hang finer-grained sub-spans
// (per-file copies, queue wait vs walltime, cache/recon/preview) off the
// span they find in the context, exactly as OpenTelemetry propagates the
// active span.
//
// Spans never read a clock themselves: every Start/End takes an explicit
// timestamp supplied by the caller's environment, so a trace recorded
// under the discrete-event kernel is identical run to run, and the same
// instrumentation works on the wall clock. All methods are nil-safe —
// instrumented layers call them unconditionally, and when no trace is
// active the calls are no-ops.
package trace

import (
	"context"
	"sync"
	"time"
)

// Span is one timed stage of a run. The root span covers the whole run;
// children subdivide it. A span whose End has not been called yet is
// "open"; Snapshot reports it as such.
type Span struct {
	// mu is shared by every span of one tree, so concurrent children
	// (parallel sub-stages on the real clock) are safe under -race.
	mu       *sync.Mutex
	name     string
	stage    string
	start    time.Time
	end      time.Time // guarded by mu
	children []*Span   // guarded by mu
	attrs    []Attr    // guarded by mu
}

// Attr is one ordered key/value annotation on a span — how the scheduler
// stamps the tenant onto a run's root span so per-tenant latency is
// visible in the trace view.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// SetAttr sets (or replaces) an annotation on the span. Nil-safe.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Attrs returns a copy of the span's annotations in set order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// NewRoot opens a root span at the given time.
func NewRoot(name string, at time.Time) *Span {
	return &Span{mu: &sync.Mutex{}, name: name, stage: name, start: at}
}

// StartChild opens a child span whose stage equals its name. A nil
// receiver returns nil, so uninstrumented call paths cost nothing.
func (s *Span) StartChild(name string, at time.Time) *Span {
	return s.StartChildStage(name, name, at)
}

// StartChildStage opens a child span with a display name distinct from
// its histogram stage key — how per-file copy spans keep the file path
// visible in the trace while aggregating under one "copy" stage.
func (s *Span) StartChildStage(name, stage string, at time.Time) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := &Span{mu: s.mu, name: name, stage: stage, start: at}
	s.children = append(s.children, c)
	return c
}

// End closes the span at the given time. Ending twice keeps the first
// end; ending a nil span is a no-op.
func (s *Span) End(at time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		s.end = at
	}
}

// Name returns the span's display name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Stage returns the span's histogram stage key ("" for nil).
func (s *Span) Stage() string {
	if s == nil {
		return ""
	}
	return s.stage
}

// StartTime returns when the span opened (zero for nil).
func (s *Span) StartTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// EndTime returns when the span closed (zero while open or for nil).
func (s *Span) EndTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end
}

// Ended reports whether End has been called.
func (s *Span) Ended() bool { return !s.EndTime().IsZero() }

// Duration returns the span's elapsed time (0 while open or for nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.start)
}

// Children returns a copy of the direct children in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// childrenLocked returns the live child slice. The caller holds the
// tree mutex, which every span of one tree shares.
func (s *Span) childrenLocked() []*Span { return s.children }

// windowLocked returns the span's start and end times. The caller holds
// the tree mutex.
func (s *Span) windowLocked() (start, end time.Time) { return s.start, s.end }

// Walk visits the span and every descendant depth-first in creation
// order. depth is 0 for the receiver. fn runs outside the tree lock, so
// it may call any span method.
func (s *Span) Walk(fn func(depth int, sp *Span)) {
	if s == nil {
		return
	}
	type visit struct {
		depth int
		sp    *Span
	}
	var order []visit
	s.mu.Lock()
	var collect func(depth int, sp *Span)
	collect = func(depth int, sp *Span) {
		order = append(order, visit{depth, sp})
		for _, c := range sp.childrenLocked() {
			collect(depth+1, c)
		}
	}
	collect(0, s)
	s.mu.Unlock()
	for _, v := range order {
		fn(v.depth, v.sp)
	}
}

// Node is the JSON form of a span, with times rebased to seconds since
// the root start so sim-kernel and wall-clock traces read alike.
type Node struct {
	Name      string  `json:"name"`
	Stage     string  `json:"stage,omitempty"` // omitted when equal to Name
	OffsetS   float64 `json:"offset_s"`
	DurationS float64 `json:"duration_s"`
	Open      bool    `json:"open,omitempty"` // span not yet ended
	Attrs     []Attr  `json:"attrs,omitempty"`
	Children  []*Node `json:"children,omitempty"`
}

// Snapshot renders the tree as JSON-ready nodes (nil for a nil span).
func (s *Span) Snapshot() *Node {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked(s.start)
}

func (s *Span) snapshotLocked(epoch time.Time) *Node {
	n := &Node{
		Name:    s.name,
		OffsetS: s.start.Sub(epoch).Seconds(),
	}
	if s.stage != s.name {
		n.Stage = s.stage
	}
	if len(s.attrs) > 0 {
		n.Attrs = append([]Attr(nil), s.attrs...)
	}
	if s.end.IsZero() {
		n.Open = true
	} else {
		n.DurationS = s.end.Sub(s.start).Seconds()
	}
	for _, c := range s.children {
		n.Children = append(n.Children, c.snapshotLocked(epoch))
	}
	return n
}

// GapStage is the synthetic stage name for run time not covered by any
// top-level child span (fixed per-scan overheads, inter-task gaps).
const GapStage = "other"

// StageTotal is one entry of a per-run stage breakdown.
type StageTotal struct {
	Stage   string
	Seconds float64
}

// StageTotals sums the direct children of an ended span by stage, in
// first-start order, and appends a GapStage entry for the remainder so
// the totals always sum to the span's own duration. Overlapping children
// (parallel stages) can push the gap negative; it is clamped to zero, at
// the cost of the sum-equals-total invariant, which only holds for
// sequential stages — the shape of every flow in this repo.
func (s *Span) StageTotals() []StageTotal {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var order []string
	sums := map[string]float64{}
	var covered float64
	for _, c := range s.children {
		cstart, cend := c.windowLocked()
		if cend.IsZero() {
			continue
		}
		d := cend.Sub(cstart).Seconds()
		if _, seen := sums[c.stage]; !seen {
			order = append(order, c.stage)
		}
		sums[c.stage] += d
		covered += d
	}
	var total float64
	if !s.end.IsZero() {
		total = s.end.Sub(s.start).Seconds()
	}
	gap := total - covered
	if gap < 0 {
		gap = 0
	}
	out := make([]StageTotal, 0, len(order)+1)
	for _, st := range order {
		out = append(out, StageTotal{Stage: st, Seconds: sums[st]})
	}
	return append(out, StageTotal{Stage: GapStage, Seconds: gap})
}

// ctxKey is the context key type for the active span.
type ctxKey struct{}

// NewContext returns a context carrying sp as the active span.
func NewContext(ctx context.Context, sp *Span) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the active span, or nil if none (including nil
// ctx) — combined with nil-safe span methods, callers never branch.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

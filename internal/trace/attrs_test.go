package trace

import (
	"testing"
	"time"
)

func TestSpanAttrs(t *testing.T) {
	var nilSpan *Span
	nilSpan.SetAttr("tenant", "bl0/file") // must not panic
	if got := nilSpan.Attrs(); got != nil {
		t.Fatalf("nil span Attrs = %v, want nil", got)
	}

	at := time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)
	root := NewRoot("campaign_run", at)
	if got := root.Attrs(); len(got) != 0 {
		t.Fatalf("fresh span Attrs = %v, want empty", got)
	}
	root.SetAttr("tenant", "bl0/file")
	root.SetAttr("facility", "nersc")
	root.SetAttr("tenant", "bl0/streaming") // replace keeps set order
	got := root.Attrs()
	want := []Attr{{"tenant", "bl0/streaming"}, {"facility", "nersc"}}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Attrs = %v, want %v", got, want)
	}

	// Mutating the returned slice must not affect the span.
	got[0].Value = "tampered"
	if root.Attrs()[0].Value != "bl0/streaming" {
		t.Fatal("Attrs aliased internal state")
	}

	root.End(at.Add(time.Second))
	n := root.Snapshot()
	if len(n.Attrs) != 2 || n.Attrs[0].Value != "bl0/streaming" {
		t.Fatalf("Snapshot attrs = %v", n.Attrs)
	}

	// Children without attrs omit the field.
	child := root.StartChild("stage", at)
	child.End(at)
	if cn := root.Snapshot().Children[0]; cn.Attrs != nil {
		t.Fatalf("child attrs = %v, want nil", cn.Attrs)
	}
}

package telemetry

import (
	"context"
	"sort"
	"time"

	"repro/internal/monitor"
	"repro/internal/sim"
)

// Probe is a synthetic end-to-end check — an SFAPI ping, a small WAN
// transfer, a queue-submit round-trip — run on its own named sim proc
// every Interval. Success latencies feed the probe_<name>_seconds
// series; every outcome feeds probe_<name>_ok (1/0) and, when a metrics
// registry is wired, the probe_* counters and latency histogram.
type Probe struct {
	Name     string
	Facility string
	Interval time.Duration
	// Run performs one check from inside the probe's sim proc; the
	// virtual time it consumes is the probe latency.
	Run func(ctx context.Context, p *sim.Proc) error

	// runs and failures are mutated only under the owning Plane's mu
	// (recordProbe / ProbeStats).
	runs     int
	failures int
}

// ProbeStat summarizes one probe's history: run/failure counts plus
// latency quantiles computed exactly from the retained success samples.
type ProbeStat struct {
	Name     string  `json:"name"`
	Facility string  `json:"facility"`
	Runs     int     `json:"runs"`
	Failures int     `json:"failures"`
	P50      float64 `json:"p50_seconds"`
	P95      float64 `json:"p95_seconds"`
	P99      float64 `json:"p99_seconds"`
}

// AddProbe registers a probe; Start spawns its proc. Interval must be
// positive.
func (pl *Plane) AddProbe(name, facility string, interval time.Duration, run func(ctx context.Context, p *sim.Proc) error) {
	if interval <= 0 {
		panic("telemetry: probe " + name + " needs a positive interval")
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.probes = append(pl.probes, &Probe{Name: name, Facility: facility, Interval: interval, Run: run})
	// Materialize both series up front so they list (and digest) even
	// before the first run.
	pl.ensureLocked("probe_"+name+"_seconds", facility)
	pl.ensureLocked("probe_"+name+"_ok", facility)
}

// recordProbe stores one probe outcome at virtual time `at`.
func (pl *Plane) recordProbe(pr *Probe, at time.Time, latency time.Duration, err error) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pr.runs++
	ok := 1.0
	if err != nil {
		pr.failures++
		ok = 0
	} else {
		pl.ensureLocked("probe_"+pr.Name+"_seconds", pr.Facility).add(Point{At: at, Value: latency.Seconds()})
	}
	pl.ensureLocked("probe_"+pr.Name+"_ok", pr.Facility).add(Point{At: at, Value: ok})
	if pl.metrics == nil {
		return
	}
	pl.metrics.AddL("probe_runs_total", 1, monitor.L("probe", pr.Name))
	if err != nil {
		pl.metrics.AddL("probe_failures_total", 1, monitor.L("probe", pr.Name))
	} else {
		pl.metrics.ObserveL("probe_latency_seconds", latency.Seconds(), monitor.L("probe", pr.Name))
	}
}

// ProbeStats reports every probe in registration order.
func (pl *Plane) ProbeStats() []ProbeStat {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	out := make([]ProbeStat, 0, len(pl.probes))
	for _, pr := range pl.probes {
		st := ProbeStat{Name: pr.Name, Facility: pr.Facility, Runs: pr.runs, Failures: pr.failures}
		if s := pl.store[seriesKey("probe_"+pr.Name+"_seconds", pr.Facility)]; s != nil {
			vals := make([]float64, 0, len(s.pts))
			for _, p := range s.window(time.Time{}, 0) {
				vals = append(vals, p.Value)
			}
			st.P50 = exactQuantile(vals, 0.50)
			st.P95 = exactQuantile(vals, 0.95)
			st.P99 = exactQuantile(vals, 0.99)
		}
		out = append(out, st)
	}
	return out
}

// exactQuantile is the nearest-rank quantile of a sample set. Unlike the
// bucketed monitor estimate it is exact, which is what scenario goldens
// assert against.
func exactQuantile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

package telemetry

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/obslog"
	"repro/internal/sim"
)

var epoch = time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)

func TestSeriesRingEviction(t *testing.T) {
	e := sim.New(epoch)
	pl := New(e, nil, nil, Config{SeriesCapacity: 4})
	for i := 0; i < 6; i++ {
		pl.Record("s", "f", epoch.Add(time.Duration(i)*time.Minute), float64(i))
	}
	_, pts, ok := pl.Query("s", "f", epoch.Add(time.Hour), 0)
	if !ok {
		t.Fatal("series missing")
	}
	if len(pts) != 4 || pts[0].Value != 2 || pts[3].Value != 5 {
		t.Fatalf("ring retained %v, want values 2..5", pts)
	}
	keys := pl.Series()
	if len(keys) != 1 || keys[0].Name != "s" || keys[0].Count != 4 {
		t.Fatalf("series listing %v", keys)
	}
}

func TestAggregateWindowEdges(t *testing.T) {
	e := sim.New(epoch)
	pl := New(e, nil, nil, Config{})
	for i, v := range []float64{10, 2, 6, 8} {
		pl.Record("s", "", epoch.Add(time.Duration(i)*time.Minute), v)
	}
	now := epoch.Add(3 * time.Minute)
	// Full history.
	agg, _, _ := pl.Query("s", "", now, 0)
	if agg.Count != 4 || agg.Min != 2 || agg.Max != 10 || agg.Last != 8 {
		t.Fatalf("full aggregate %+v", agg)
	}
	if math.Abs(agg.Mean-6.5) > 1e-12 {
		t.Fatalf("mean %v, want 6.5", agg.Mean)
	}
	// Rate: (8-10)/180s.
	if math.Abs(agg.Rate-(-2.0/180)) > 1e-12 {
		t.Fatalf("rate %v", agg.Rate)
	}
	// A 2m window ending at 3m: the point at exactly now-window (1m) is
	// excluded — samples exactly at the cut fall outside, matching the
	// simnet windowed-utilization convention.
	agg, pts, _ := pl.Query("s", "", now, 2*time.Minute)
	if agg.Count != 2 || len(pts) != 2 || pts[0].Value != 6 {
		t.Fatalf("cut aggregate %+v points %v", agg, pts)
	}
	// Unknown series.
	if _, _, ok := pl.Query("nope", "", now, 0); ok {
		t.Fatal("unknown series should not resolve")
	}
	// Empty window aggregates to zeros.
	agg, _, _ = pl.Query("s", "", now.Add(time.Hour), time.Minute)
	if agg.Count != 0 || agg.Last != 0 {
		t.Fatalf("stale window aggregate %+v", agg)
	}
}

// brownout drives one facility through Healthy→Degraded→Down→Healthy on
// a bandwidth-like signal and returns the plane plus its journal.
func brownout(t *testing.T) (*Plane, *obslog.Journal) {
	t.Helper()
	e := sim.New(epoch)
	j := obslog.New(e, 1024)
	pl := New(e, j, nil, Config{SampleInterval: time.Minute})
	bw := 10.0
	pl.RegisterSignal("bw", "nersc", func(time.Time) (float64, bool) { return bw, true })
	pl.AddRules(
		Rule{Name: "bw_degraded", Facility: "nersc", Series: "bw", Agg: "last",
			Window: time.Minute, Op: "<", Threshold: 5, Penalty: 30, Reason: "bandwidth below 50% of nominal"},
		Rule{Name: "bw_collapsed", Facility: "nersc", Series: "bw", Agg: "last",
			Window: time.Minute, Op: "<", Threshold: 2.5, Penalty: 40, Reason: "bandwidth below 25% of nominal"},
	)
	e.Go("weather", func(p *sim.Proc) {
		p.Sleep(5 * time.Minute)
		bw = 4
		p.Sleep(5 * time.Minute)
		bw = 1.5
		p.Sleep(5 * time.Minute)
		bw = 10
		p.Sleep(2 * time.Minute)
		pl.Stop()
	})
	pl.Start(context.Background(), e, 0)
	e.Run()
	return pl, j
}

func TestHealthVerdictTimeline(t *testing.T) {
	pl, j := brownout(t)
	trans := pl.Transitions()
	want := []Verdict{VerdictDegraded, VerdictDown, VerdictHealthy}
	if len(trans) != len(want) {
		t.Fatalf("transitions %+v, want %d", trans, len(want))
	}
	for i, tr := range trans {
		if tr.To != want[i] || tr.Facility != "nersc" {
			t.Fatalf("transition %d = %+v, want to=%s", i, tr, want[i])
		}
	}
	if trans[0].From != VerdictHealthy || trans[1].From != VerdictDegraded {
		t.Fatalf("from-chain broken: %+v", trans)
	}
	if trans[1].Score != 30 {
		t.Fatalf("down score %v, want 30 (both rules fired)", trans[1].Score)
	}
	if len(trans[1].Reasons) != 2 {
		t.Fatalf("down reasons %v, want both rules", trans[1].Reasons)
	}
	if !pl.Healthy() {
		t.Fatal("plane should end healthy")
	}
	h, ok := pl.HealthFor("nersc")
	if !ok || h.Verdict != VerdictHealthy || h.Score != 100 {
		t.Fatalf("final health %+v", h)
	}
	// Every transition journaled through obslog under the telemetry
	// component.
	evs := j.Events(obslog.Filter{Component: "telemetry"})
	if len(evs) != 3 {
		t.Fatalf("journaled %d telemetry events, want 3", len(evs))
	}
	if evs[0].Level != obslog.LevelWarn || evs[2].Level != obslog.LevelInfo {
		t.Fatalf("levels %v / %v: degrade should warn, recovery inform", evs[0].Level, evs[2].Level)
	}
}

func TestVerdictTimelineDeterminism(t *testing.T) {
	a, _ := brownout(t)
	b, _ := brownout(t)
	ta, tb := a.Transitions(), b.Transitions()
	if len(ta) != len(tb) {
		t.Fatalf("transition counts differ: %d vs %d", len(ta), len(tb))
	}
	for i := range ta {
		if !ta[i].At.Equal(tb[i].At) || ta[i].To != tb[i].To || ta[i].Score != tb[i].Score {
			t.Fatalf("transition %d differs: %+v vs %+v", i, ta[i], tb[i])
		}
	}
	if a.ProbeDigest() != b.ProbeDigest() {
		t.Fatal("probe digests differ across identical runs")
	}
}

func TestRuleAggregatesAndOps(t *testing.T) {
	e := sim.New(epoch)
	pl := New(e, nil, nil, Config{})
	now := epoch.Add(time.Minute)
	for i, v := range []float64{1, 5, 3} {
		pl.Record("s", "f", epoch.Add(time.Duration(i)*time.Second), v)
	}
	cases := []struct {
		agg, op string
		thr     float64
		want    bool
	}{
		{"last", ">", 2, true},
		{"last", ">=", 3, true},
		{"min", "<", 2, true},
		{"min", "<=", 1, true},
		{"max", ">", 4, true},
		{"mean", ">", 3, false},
		{"count", ">=", 3, true},
		{"rate", ">", 0.9, true}, // (3-1)/2s
		{"bogus", ">", 0, false},
		{"last", "!=", 0, false},
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	for _, c := range cases {
		r := Rule{Facility: "f", Series: "s", Agg: c.agg, Op: c.op, Threshold: c.thr, Window: time.Hour}
		if got := pl.evalRuleLocked(r, now); got != c.want {
			t.Errorf("agg=%s op=%s thr=%v fired=%v, want %v", c.agg, c.op, c.thr, got, c.want)
		}
	}
	// Missing series and empty windows never fire.
	if pl.evalRuleLocked(Rule{Facility: "f", Series: "absent", Op: ">", Window: time.Hour}, now) {
		t.Error("missing series fired")
	}
	if pl.evalRuleLocked(Rule{Facility: "f", Series: "s", Op: ">", Threshold: -1, Window: time.Nanosecond}, now) {
		t.Error("empty window fired")
	}
}

func TestProbes(t *testing.T) {
	e := sim.New(epoch)
	reg := monitor.NewRegistry()
	pl := New(e, nil, reg, Config{SampleInterval: time.Minute})
	fail := false
	pl.AddProbe("ping", "nersc", 2*time.Minute, func(ctx context.Context, p *sim.Proc) error {
		p.Sleep(40 * time.Millisecond)
		if fail {
			return errors.New("unreachable")
		}
		return nil
	})
	pl.AddRules(Rule{Name: "ping_failing", Facility: "nersc", Series: "probe_ping_ok",
		Agg: "last", Window: 5 * time.Minute, Op: "<", Threshold: 1, Penalty: 40, Reason: "ping failing"})
	e.Go("breaker", func(p *sim.Proc) {
		p.Sleep(9 * time.Minute)
		fail = true
		p.Sleep(4 * time.Minute)
		fail = false
		p.Sleep(4 * time.Minute)
		pl.Stop()
	})
	pl.Start(context.Background(), e, 0)
	e.Run()

	stats := pl.ProbeStats()
	if len(stats) != 1 {
		t.Fatalf("probe stats %v", stats)
	}
	st := stats[0]
	// Runs at 2,4,6,8 ok; 10,12 fail; 14,16 ok → stopped before 18.
	if st.Runs != 8 || st.Failures != 2 {
		t.Fatalf("runs=%d failures=%d, want 8/2", st.Runs, st.Failures)
	}
	if math.Abs(st.P50-0.04) > 1e-9 || math.Abs(st.P99-0.04) > 1e-9 {
		t.Fatalf("latency quantiles %+v, want 0.04", st)
	}
	// The failing window drove a verdict transition and back.
	trans := pl.Transitions()
	if len(trans) != 2 || trans[0].To != VerdictDegraded || trans[1].To != VerdictHealthy {
		t.Fatalf("transitions %+v", trans)
	}
	// Probe metrics exported under the probe label.
	if got := reg.Counter(monitor.SeriesName("probe_runs_total", monitor.L("probe", "ping"))); got != 8 {
		t.Fatalf("probe_runs_total = %v", got)
	}
	if got := reg.Counter(monitor.SeriesName("probe_failures_total", monitor.L("probe", "ping"))); got != 2 {
		t.Fatalf("probe_failures_total = %v", got)
	}
	h, ok := reg.Histogram(monitor.SeriesName("probe_latency_seconds", monitor.L("probe", "ping")))
	if !ok || h.Count != 6 {
		t.Fatalf("latency histogram count = %d, want 6 successes", h.Count)
	}
}

func TestHorizonBoundsThePlane(t *testing.T) {
	// With a horizon and no Stop call the plane exits on its own — the
	// standalone-beamline mode. The engine would panic on deadlock if
	// the procs lingered.
	e := sim.New(epoch)
	pl := New(e, nil, nil, Config{SampleInterval: time.Minute})
	pl.RegisterSignal("g", "f", func(time.Time) (float64, bool) { return 1, true })
	pl.AddProbe("noop", "f", time.Minute, func(ctx context.Context, p *sim.Proc) error { return nil })
	pl.Start(context.Background(), e, 5*time.Minute)
	end := e.Run()
	// Ticks at 1..5m run; the 6m wakeup notices the deadline and exits.
	if pl.Ticks() != 5 {
		t.Fatalf("ticks = %d, want 5", pl.Ticks())
	}
	if got := end.Sub(epoch); got != 6*time.Minute {
		t.Fatalf("engine drained at +%v, want +6m", got)
	}
	if st := pl.ProbeStats(); st[0].Runs != 5 {
		t.Fatalf("probe runs = %d, want 5", st[0].Runs)
	}
}

func TestStartTwicePanics(t *testing.T) {
	e := sim.New(epoch)
	pl := New(e, nil, nil, Config{})
	pl.Stop() // keeps the spawned procs from outliving Run
	pl.Start(context.Background(), e, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("second Start should panic")
		}
		e.Run()
	}()
	pl.Start(context.Background(), e, 0)
}

func TestAddProbeRejectsZeroInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval should panic")
		}
	}()
	New(sim.New(epoch), nil, nil, Config{}).AddProbe("p", "f", 0, nil)
}

func TestExactQuantile(t *testing.T) {
	if exactQuantile(nil, 0.5) != 0 {
		t.Fatal("empty sample quantile should be 0")
	}
	vals := []float64{5, 1, 3, 2, 4}
	if got := exactQuantile(vals, 0.5); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := exactQuantile(vals, 0.99); got != 5 {
		t.Fatalf("p99 = %v", got)
	}
	if got := exactQuantile(vals, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
}

func TestRegisterHistogramQuantile(t *testing.T) {
	e := sim.New(epoch)
	reg := monitor.NewRegistry()
	pl := New(e, nil, reg, Config{SampleInterval: time.Minute})
	pl.RegisterHistogramQuantile("lat", "f", 0.95)
	// No observations yet: the signal abstains and the series stays
	// empty.
	pl.tick(context.Background(), epoch.Add(time.Minute))
	if _, pts, _ := pl.Query("lat_p95", "f", epoch.Add(time.Minute), 0); len(pts) != 0 {
		t.Fatalf("abstaining signal recorded %v", pts)
	}
	reg.Observe("lat", 0.5)
	reg.Observe("lat", 30)
	pl.tick(context.Background(), epoch.Add(2*time.Minute))
	agg, _, ok := pl.Query("lat_p95", "f", epoch.Add(2*time.Minute), 0)
	if !ok || agg.Count != 1 {
		t.Fatalf("quantile series %+v", agg)
	}
	if math.Abs(agg.Last-55) > 1e-6 {
		t.Fatalf("sampled p95 = %v, want ~55", agg.Last)
	}
	// Without a registry the registration is a no-op.
	pl2 := New(e, nil, nil, Config{})
	pl2.RegisterHistogramQuantile("lat", "f", 0.95)
	if len(pl2.Series()) != 0 {
		t.Fatal("registry-less quantile signal registered")
	}
}

func TestWriteTimelineDeterminism(t *testing.T) {
	a, _ := brownout(t)
	b, _ := brownout(t)
	var ba, bb timelineBuf
	if err := a.WriteTimeline(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteTimeline(&bb); err != nil {
		t.Fatal(err)
	}
	if ba.String() == "" || ba.String() != bb.String() {
		t.Fatalf("timelines differ or empty:\n%s\nvs\n%s", ba.String(), bb.String())
	}
}

// timelineBuf is a minimal buffer (avoids importing bytes just for one
// test).
type timelineBuf struct{ b []byte }

func (t *timelineBuf) Write(p []byte) (int, error) { t.b = append(t.b, p...); return len(p), nil }
func (t *timelineBuf) String() string              { return string(t.b) }

// Package telemetry is the facility telemetry plane: a sim-clock-driven
// store of bounded, windowed time series sampled from the signals the
// repo already emits (simnet link state, Slurm queue depth, SFAPI outage
// state, SLO attainment/burn, monitor gauges), a deterministic rule-based
// per-facility health score with a Healthy/Degraded/Down verdict, and
// synthetic end-to-end probes running as named sim procs. It is the live
// "how healthy is NERSC right now?" view that multi-facility brokering
// (ROADMAP #2) selects facilities from, in the spirit of Bicer et al.'s
// federated runtime facility selection.
//
// Everything is driven by an injected clock and journals only through
// obslog, so two seeded campaign runs produce byte-identical verdict
// timelines — the determinism argument is the same as for the event
// journal: no wall-clock reads, no map-order iteration, signals sampled
// and rules evaluated in registration order.
package telemetry

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/monitor"
	"repro/internal/obslog"
	"repro/internal/sim"
)

// Clock abstracts time for the plane; sim.Engine satisfies it.
type Clock interface {
	Now() time.Time
}

// Config tunes the plane. Zero values take defaults.
type Config struct {
	// SampleInterval is the cadence of the signal sampler proc.
	SampleInterval time.Duration // default 30s
	// SeriesCapacity bounds each series ring; older points evict.
	SeriesCapacity int // default 2048
	// DefaultWindow applies to rules and queries that name no window.
	DefaultWindow time.Duration // default 5m
	// HealthyFloor and DegradedFloor are the verdict score thresholds:
	// score ≥ HealthyFloor is Healthy, ≥ DegradedFloor is Degraded,
	// below is Down.
	HealthyFloor  float64 // default 75
	DegradedFloor float64 // default 35
}

func (c Config) withDefaults() Config {
	if c.SampleInterval <= 0 {
		c.SampleInterval = 30 * time.Second
	}
	if c.SeriesCapacity <= 0 {
		c.SeriesCapacity = 2048
	}
	if c.DefaultWindow <= 0 {
		c.DefaultWindow = 5 * time.Minute
	}
	if c.HealthyFloor <= 0 {
		c.HealthyFloor = 75
	}
	if c.DegradedFloor <= 0 {
		c.DegradedFloor = 35
	}
	return c
}

// Point is one sample of one series.
type Point struct {
	At    time.Time `json:"at"`
	Value float64   `json:"value"`
}

// series is a bounded ring of points for one (name, facility) signal.
type series struct {
	name     string
	facility string
	pts      []Point
	start    int // index of the oldest point once the ring is full
	capacity int
}

func (s *series) add(p Point) {
	if len(s.pts) < s.capacity {
		s.pts = append(s.pts, p)
		return
	}
	s.pts[s.start] = p
	s.start = (s.start + 1) % s.capacity
}

// window returns the retained points with At in (now-window, now], oldest
// first. A non-positive window returns every retained point.
func (s *series) window(now time.Time, window time.Duration) []Point {
	out := make([]Point, 0, len(s.pts))
	cut := now.Add(-window)
	for i := 0; i < len(s.pts); i++ {
		p := s.pts[(s.start+i)%len(s.pts)]
		if window > 0 && (!p.At.After(cut) || p.At.After(now)) {
			continue
		}
		out = append(out, p)
	}
	return out
}

// Aggregate summarizes one series window.
type Aggregate struct {
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	Last  float64 `json:"last"`
	// Rate is the per-second change between the oldest and newest point
	// in the window — the rate-of-change aggregate for counter signals.
	Rate float64 `json:"rate"`
}

// aggregate reduces a window of points. An empty window is all zeros
// with Count 0.
func aggregate(pts []Point) Aggregate {
	var a Aggregate
	if len(pts) == 0 {
		return a
	}
	a.Count = len(pts)
	a.Min, a.Max = pts[0].Value, pts[0].Value
	sum := 0.0
	for _, p := range pts {
		if p.Value < a.Min {
			a.Min = p.Value
		}
		if p.Value > a.Max {
			a.Max = p.Value
		}
		sum += p.Value
	}
	a.Mean = sum / float64(len(pts))
	a.Last = pts[len(pts)-1].Value
	if dt := pts[len(pts)-1].At.Sub(pts[0].At).Seconds(); dt > 0 {
		a.Rate = (pts[len(pts)-1].Value - pts[0].Value) / dt
	}
	return a
}

// Signal is a registered sampling source: each sampler tick calls Sample
// and appends the value to the (Name, Facility) series when ok.
type Signal struct {
	Name     string
	Facility string
	Sample   func(now time.Time) (value float64, ok bool)
}

// SeriesKey identifies one stored series.
type SeriesKey struct {
	Name     string `json:"name"`
	Facility string `json:"facility"`
	Count    int    `json:"count"`
}

// Plane is the telemetry plane: series store, health scorer, and probe
// runner. Construct with New, register signals/rules/probes, then Start
// it on the engine alongside the campaign.
type Plane struct {
	clock   Clock
	journal *obslog.Journal
	metrics *monitor.Registry
	cfg     Config

	mu      sync.Mutex
	signals []Signal                   // guarded by mu
	store   map[string]*series         // guarded by mu
	order   []string                   // guarded by mu — store keys in registration order
	rules   []Rule                     // guarded by mu
	probes  []*Probe                   // guarded by mu
	health  map[string]*FacilityHealth // guarded by mu
	trans   []Transition               // guarded by mu
	ticks   int                        // guarded by mu
	stopped bool                       // guarded by mu
	started bool                       // guarded by mu
}

// New creates an empty plane. journal and metrics may be nil — verdict
// transitions and probe metrics are then simply not exported there.
func New(clock Clock, journal *obslog.Journal, metrics *monitor.Registry, cfg Config) *Plane {
	return &Plane{
		clock:   clock,
		journal: journal,
		metrics: metrics,
		cfg:     cfg.withDefaults(),
		store:   map[string]*series{},
		health:  map[string]*FacilityHealth{},
	}
}

func seriesKey(name, facility string) string { return name + "\x00" + facility }

// RegisterSignal adds a sampling source. Registration order is the
// sampling order, which keeps ticks deterministic.
func (pl *Plane) RegisterSignal(name, facility string, sample func(now time.Time) (float64, bool)) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.signals = append(pl.signals, Signal{Name: name, Facility: facility, Sample: sample})
	pl.ensureLocked(name, facility)
}

// ensureLocked materializes the series ring for a key.
func (pl *Plane) ensureLocked(name, facility string) *series {
	k := seriesKey(name, facility)
	s := pl.store[k]
	if s == nil {
		s = &series{name: name, facility: facility, capacity: pl.cfg.SeriesCapacity}
		pl.store[k] = s
		pl.order = append(pl.order, k)
	}
	return s
}

// Record appends one point to a series directly — the feed probes (and
// tests) use alongside the sampled signals.
func (pl *Plane) Record(name, facility string, at time.Time, v float64) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.ensureLocked(name, facility).add(Point{At: at, Value: v})
}

// Series lists every stored series in registration order.
func (pl *Plane) Series() []SeriesKey {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	out := make([]SeriesKey, 0, len(pl.order))
	for _, k := range pl.order {
		s := pl.store[k]
		out = append(out, SeriesKey{Name: s.name, Facility: s.facility, Count: len(s.pts)})
	}
	return out
}

// Query returns the aggregate and points of one series over the window
// ending now. ok is false when the series does not exist.
func (pl *Plane) Query(name, facility string, now time.Time, window time.Duration) (Aggregate, []Point, bool) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	s := pl.store[seriesKey(name, facility)]
	if s == nil {
		return Aggregate{}, nil, false
	}
	pts := s.window(now, window)
	return aggregate(pts), pts, true
}

// Start spawns the sampler and probe procs on the engine. The plane
// samples every SampleInterval until Stop is called — or, when horizon
// is positive, until the first wakeup after start+horizon, which lets a
// standalone beamline run a bounded monitoring window without the
// campaign-drain hook. ctx carries journal correlation for verdict
// transitions.
func (pl *Plane) Start(ctx context.Context, e *sim.Engine, horizon time.Duration) {
	pl.mu.Lock()
	if pl.started {
		pl.mu.Unlock()
		panic("telemetry: Start called twice")
	}
	pl.started = true
	probes := append([]*Probe(nil), pl.probes...)
	pl.mu.Unlock()
	if ctx == nil {
		ctx = context.Background()
	}

	var deadline time.Time
	if horizon > 0 {
		deadline = pl.clock.Now().Add(horizon)
	}
	e.Go("telemetry-sampler", func(p *sim.Proc) {
		for {
			p.Sleep(pl.cfg.SampleInterval)
			if pl.done(p.Now(), deadline) {
				return
			}
			pl.tick(ctx, p.Now())
		}
	})
	for _, pr := range probes {
		pr := pr
		e.Go("probe-"+pr.Name, func(p *sim.Proc) {
			for {
				p.Sleep(pr.Interval)
				if pl.done(p.Now(), deadline) {
					return
				}
				start := p.Now()
				err := pr.Run(ctx, p)
				pl.recordProbe(pr, p.Now(), p.Now().Sub(start), err)
			}
		})
	}
}

// Stop makes every plane proc exit at its next wakeup, so a campaign
// drain extends the run by at most one interval.
func (pl *Plane) Stop() {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.stopped = true
}

func (pl *Plane) done(now, deadline time.Time) bool {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.stopped {
		return true
	}
	return !deadline.IsZero() && now.After(deadline)
}

// tick samples every signal in registration order, then rescores every
// facility — one deterministic unit of telemetry work. ctx carries
// journal correlation for verdict-transition emissions.
func (pl *Plane) tick(ctx context.Context, now time.Time) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	for _, sg := range pl.signals {
		if v, ok := sg.Sample(now); ok {
			pl.ensureLocked(sg.Name, sg.Facility).add(Point{At: now, Value: v})
		}
	}
	pl.scoreLocked(ctx, now)
	pl.ticks++
}

// Ticks reports how many sampler ticks have run.
func (pl *Plane) Ticks() int {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.ticks
}

// ProbeDigest returns a SHA-256 over every probe series' full retained
// point stream, in registration order — the byte-identity fingerprint
// the determinism gate compares across seeded runs.
func (pl *Plane) ProbeDigest() string {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	h := sha256.New()
	for _, k := range pl.order {
		s := pl.store[k]
		if len(s.name) < 6 || s.name[:6] != "probe_" {
			continue
		}
		io.WriteString(h, s.name+"|"+s.facility+"\n")
		for _, p := range s.window(time.Time{}, 0) {
			io.WriteString(h, strconv.FormatInt(p.At.UnixNano(), 10))
			io.WriteString(h, "=")
			io.WriteString(h, strconv.FormatFloat(p.Value, 'g', -1, 64))
			io.WriteString(h, "\n")
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// WriteTimeline writes the verdict-transition timeline as JSONL followed
// by one probe-digest line — the artifact two seeded runs must reproduce
// byte-identically.
func (pl *Plane) WriteTimeline(w io.Writer) error {
	for _, tr := range pl.Transitions() {
		reasons := ""
		for i, r := range tr.Reasons {
			if i > 0 {
				reasons += "; "
			}
			reasons += r
		}
		_, err := fmt.Fprintf(w, "{\"at\":%q,\"facility\":%q,\"from\":%q,\"to\":%q,\"score\":%g,\"reasons\":%q}\n",
			tr.At.Format(time.RFC3339Nano), tr.Facility, tr.From, tr.To, tr.Score, reasons)
		if err != nil {
			return fmt.Errorf("telemetry: write timeline: %w", err)
		}
	}
	if _, err := fmt.Fprintf(w, "{\"probe_digest\":%q}\n", pl.ProbeDigest()); err != nil {
		return fmt.Errorf("telemetry: write timeline: %w", err)
	}
	return nil
}

// RegisterHistogramQuantile registers a signal sampling a quantile
// estimate of a monitor histogram — how histogram quantiles enter
// telemetry sampling. The series is named <hist>_p<percent>.
func (pl *Plane) RegisterHistogramQuantile(name, facility string, q float64) {
	if pl.metrics == nil {
		return
	}
	reg := pl.metrics
	label := strconv.FormatFloat(q*100, 'g', -1, 64)
	pl.RegisterSignal(name+"_p"+label, facility, func(time.Time) (float64, bool) {
		h, ok := reg.Histogram(name)
		if !ok || h.Count == 0 {
			return 0, false
		}
		return h.Quantile(q), true
	})
}

// sortedFacilities returns the union of rule and health facilities in
// sorted order, for deterministic scoring sweeps.
func (pl *Plane) sortedFacilitiesLocked() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range pl.rules {
		if !seen[r.Facility] {
			seen[r.Facility] = true
			out = append(out, r.Facility)
		}
	}
	sort.Strings(out)
	return out
}

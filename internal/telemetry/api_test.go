package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/sim"
)

func get(t *testing.T, h http.Handler, url string) (*http.Response, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	res := rr.Result()
	defer res.Body.Close()
	var buf [1 << 16]byte
	n, _ := res.Body.Read(buf[:])
	return res, buf[:n]
}

func TestTelemetryHandler(t *testing.T) {
	e := sim.New(epoch)
	pl := New(e, nil, nil, Config{DefaultWindow: 10 * time.Minute})
	for i := 0; i < 3; i++ {
		pl.Record("bw", "nersc", epoch.Add(time.Duration(i)*time.Minute), float64(10-i))
	}
	h := pl.Handler()

	// Listing without a name.
	res, body := get(t, h, "/api/telemetry")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("list status %d", res.StatusCode)
	}
	var list listResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Series) != 1 || list.Series[0].Name != "bw" || list.Series[0].Count != 3 {
		t.Fatalf("listing %+v", list)
	}

	// Named query with an explicit window. The sim clock is still at
	// the epoch, so only the epoch point is inside a 30s lookback.
	res, body = get(t, h, "/api/telemetry?name=bw&facility=nersc&window=30s")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", res.StatusCode, body)
	}
	var sr seriesResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Aggregate.Count != 1 || sr.Aggregate.Last != 10 || sr.Window != "30s" {
		t.Fatalf("response %+v", sr)
	}

	// window=all returns the full ring.
	_, body = get(t, h, "/api/telemetry?name=bw&facility=nersc&window=all")
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Aggregate.Count != 3 || sr.Window != "all" || len(sr.Points) != 3 {
		t.Fatalf("window=all response %+v", sr)
	}

	// Errors: bad window, unknown series, wrong method.
	if res, _ := get(t, h, "/api/telemetry?name=bw&window=banana"); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad window status %d", res.StatusCode)
	}
	if res, _ := get(t, h, "/api/telemetry?name=zzz"); res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown series status %d", res.StatusCode)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/api/telemetry", nil))
	if rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d", rr.Code)
	}
}

func TestTelemetryHandlerCapsPoints(t *testing.T) {
	e := sim.New(epoch)
	pl := New(e, nil, nil, Config{SeriesCapacity: maxQueryPoints + 100})
	for i := 0; i < maxQueryPoints+50; i++ {
		pl.Record("s", "", epoch.Add(time.Duration(i)*time.Second), float64(i))
	}
	_, body := get(t, pl.Handler(), "/api/telemetry?name=s&window=all")
	var sr seriesResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Points) != maxQueryPoints {
		t.Fatalf("returned %d points, want cap %d", len(sr.Points), maxQueryPoints)
	}
	// Newest points win.
	if sr.Points[len(sr.Points)-1].Value != float64(maxQueryPoints+49) {
		t.Fatalf("tail point %v", sr.Points[len(sr.Points)-1])
	}
}

func TestHealthHandler(t *testing.T) {
	pl, _ := brownout(t)
	res, body := get(t, pl.HealthHandler(), "/api/health")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("healthy plane served %d: %s", res.StatusCode, body)
	}
	var hr healthResponse
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatal(err)
	}
	if !hr.Healthy || len(hr.Facilities) != 1 || hr.Facilities[0].Facility != "nersc" {
		t.Fatalf("health response %+v", hr)
	}
	if len(hr.Transitions) != 3 {
		t.Fatalf("transitions %+v", hr.Transitions)
	}

	// A plane that has never ticked is unhealthy: 503.
	cold := New(sim.New(epoch), nil, nil, Config{})
	res, body = get(t, cold.HealthHandler(), "/api/health")
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cold plane served %d", res.StatusCode)
	}
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Healthy || len(hr.Facilities) != 0 || len(hr.Probes) != 0 {
		t.Fatalf("cold response %+v", hr)
	}

	rr := httptest.NewRecorder()
	cold.HealthHandler().ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/api/health", nil))
	if rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d", rr.Code)
	}
}

package telemetry

import (
	"context"
	"time"

	"repro/internal/obslog"
)

// Verdict is the coarse health state a facility's score maps to.
type Verdict string

// The three verdicts: a broker routes normally to a Healthy facility,
// deprioritizes a Degraded one, and avoids a Down one.
const (
	VerdictHealthy  Verdict = "healthy"
	VerdictDegraded Verdict = "degraded"
	VerdictDown     Verdict = "down"
)

// Rule is one declared scoring clause: when the aggregate of a series
// over a window crosses the threshold, the rule fires and subtracts
// Penalty from the facility's score, contributing Reason to the verdict.
type Rule struct {
	Name     string
	Facility string
	// Series names the signal (the facility is the rule's own). Probe
	// series are addressable too: probe_<name>_seconds, probe_<name>_ok.
	Series string
	// Agg selects the window reduction: last, min, max, mean, count,
	// rate. An unknown Agg never fires.
	Agg string
	// Window is the lookback; 0 takes Config.DefaultWindow.
	Window time.Duration
	// Op compares the aggregate to Threshold: one of < <= > >=.
	Op        string
	Threshold float64
	// Penalty is subtracted from 100 when the rule fires.
	Penalty float64
	// Reason is the human-readable contribution shown in /api/health.
	Reason string
}

// FacilityHealth is the current scored state of one facility.
type FacilityHealth struct {
	Facility string    `json:"facility"`
	Score    float64   `json:"score"`
	Verdict  Verdict   `json:"verdict"`
	Reasons  []string  `json:"reasons,omitempty"`
	Since    time.Time `json:"since"`
	At       time.Time `json:"at"`
}

// Transition is one verdict change, the unit of the health timeline.
type Transition struct {
	At       time.Time `json:"at"`
	Facility string    `json:"facility"`
	From     Verdict   `json:"from"`
	To       Verdict   `json:"to"`
	Score    float64   `json:"score"`
	Reasons  []string  `json:"reasons,omitempty"`
}

// maxTransitions bounds the retained timeline; far above what any
// scenario produces, it only guards pathological flapping.
const maxTransitions = 4096

// AddRules declares scoring clauses. Rule order is evaluation order, so
// reasons come out in a stable, declared sequence.
func (pl *Plane) AddRules(rules ...Rule) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.rules = append(pl.rules, rules...)
}

// evalRuleLocked reports whether the rule fires at now.
func (pl *Plane) evalRuleLocked(r Rule, now time.Time) bool {
	s := pl.store[seriesKey(r.Series, r.Facility)]
	if s == nil {
		return false
	}
	w := r.Window
	if w <= 0 {
		w = pl.cfg.DefaultWindow
	}
	pts := s.window(now, w)
	if len(pts) == 0 {
		return false
	}
	agg := aggregate(pts)
	var v float64
	switch r.Agg {
	case "", "last":
		v = agg.Last
	case "min":
		v = agg.Min
	case "max":
		v = agg.Max
	case "mean":
		v = agg.Mean
	case "count":
		v = float64(agg.Count)
	case "rate":
		v = agg.Rate
	default:
		return false
	}
	switch r.Op {
	case "<":
		return v < r.Threshold
	case "<=":
		return v <= r.Threshold
	case ">":
		return v > r.Threshold
	case ">=":
		return v >= r.Threshold
	}
	return false
}

// scoreLocked rescores every facility named by the rule set, recording
// and journaling verdict transitions. Facilities are swept in sorted
// order and rules in declaration order, keeping the timeline
// deterministic.
func (pl *Plane) scoreLocked(ctx context.Context, now time.Time) {
	for _, fac := range pl.sortedFacilitiesLocked() {
		score := 100.0
		var reasons []string
		for _, r := range pl.rules {
			if r.Facility != fac || !pl.evalRuleLocked(r, now) {
				continue
			}
			score -= r.Penalty
			reasons = append(reasons, r.Reason)
		}
		if score < 0 {
			score = 0
		}
		verdict := VerdictHealthy
		switch {
		case score < pl.cfg.DegradedFloor:
			verdict = VerdictDown
		case score < pl.cfg.HealthyFloor:
			verdict = VerdictDegraded
		}
		h := pl.health[fac]
		if h == nil {
			// Facilities begin Healthy: an unobserved facility has no
			// evidence against it, and the first bad tick still records
			// a transition.
			h = &FacilityHealth{Facility: fac, Score: 100, Verdict: VerdictHealthy, Since: now}
			pl.health[fac] = h
		}
		prev := h.Verdict
		h.Score, h.Reasons, h.At = score, reasons, now
		if verdict == prev {
			continue
		}
		h.Verdict = verdict
		h.Since = now
		if len(pl.trans) < maxTransitions {
			pl.trans = append(pl.trans, Transition{
				At: now, Facility: fac, From: prev, To: verdict, Score: score,
				Reasons: append([]string(nil), reasons...),
			})
		}
		level := obslog.LevelWarn
		if verdict == VerdictHealthy {
			level = obslog.LevelInfo
		}
		pl.journal.Emit(ctx, level, "telemetry", "facility verdict changed",
			obslog.F("facility", fac),
			obslog.F("from", string(prev)),
			obslog.F("to", string(verdict)),
			obslog.F("score", score),
			obslog.F("reasons", len(reasons)),
		)
	}
}

// Health returns every scored facility, sorted by name.
func (pl *Plane) Health() []FacilityHealth {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	out := make([]FacilityHealth, 0, len(pl.health))
	for _, fac := range pl.sortedFacilitiesLocked() {
		if h := pl.health[fac]; h != nil {
			c := *h
			c.Reasons = append([]string(nil), h.Reasons...)
			out = append(out, c)
		}
	}
	return out
}

// HealthFor returns one facility's state, if it has been scored.
func (pl *Plane) HealthFor(facility string) (FacilityHealth, bool) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	h := pl.health[facility]
	if h == nil {
		return FacilityHealth{}, false
	}
	c := *h
	c.Reasons = append([]string(nil), h.Reasons...)
	return c, true
}

// Transitions returns the verdict timeline, oldest first.
func (pl *Plane) Transitions() []Transition {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return append([]Transition(nil), pl.trans...)
}

// Healthy reports whether at least one scoring tick has run and every
// scored facility is currently Healthy — the single repo-wide notion of
// "healthy" behind /api/health.
func (pl *Plane) Healthy() bool {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.ticks == 0 {
		return false
	}
	for _, h := range pl.health {
		if h.Verdict != VerdictHealthy {
			return false
		}
	}
	return true
}

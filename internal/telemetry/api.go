package telemetry

import (
	"encoding/json"
	"net/http"
	"time"
)

// seriesResponse is the JSON envelope for a named-series query.
type seriesResponse struct {
	Name      string    `json:"name"`
	Facility  string    `json:"facility"`
	Window    string    `json:"window"`
	Aggregate Aggregate `json:"aggregate"`
	Points    []Point   `json:"points"`
}

// listResponse is the envelope when no series is named.
type listResponse struct {
	Series []SeriesKey `json:"series"`
}

// maxQueryPoints caps how many raw points one query returns; the newest
// win, since dashboards page backwards from "now".
const maxQueryPoints = 500

// Handler serves the series store for GET /api/telemetry. Without
// parameters it lists every series; with them it returns one window:
//
//	name=wan_bandwidth_bps   the signal name (required for a query)
//	facility=nersc           the facility ("" matches the unscoped series)
//	window=10m               lookback from the plane clock (default
//	                         Config.DefaultWindow; "all" = every point)
func (pl *Plane) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q := r.URL.Query()
		name := q.Get("name")
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if name == "" {
			resp := listResponse{Series: pl.Series()}
			if resp.Series == nil {
				resp.Series = []SeriesKey{}
			}
			enc.Encode(resp)
			return
		}
		window := pl.cfg.DefaultWindow
		if s := q.Get("window"); s == "all" {
			window = 0
		} else if s != "" {
			d, err := time.ParseDuration(s)
			if err != nil || d < 0 {
				http.Error(w, "bad window: "+s, http.StatusBadRequest)
				return
			}
			window = d
		}
		agg, pts, ok := pl.Query(name, q.Get("facility"), pl.clock.Now(), window)
		if !ok {
			http.Error(w, "no such series: "+name, http.StatusNotFound)
			return
		}
		if len(pts) > maxQueryPoints {
			pts = pts[len(pts)-maxQueryPoints:]
		}
		if pts == nil {
			pts = []Point{}
		}
		wstr := window.String()
		if window == 0 {
			wstr = "all"
		}
		enc.Encode(seriesResponse{
			Name: name, Facility: q.Get("facility"), Window: wstr,
			Aggregate: agg, Points: pts,
		})
	})
}

// healthResponse is the JSON envelope for /api/health.
type healthResponse struct {
	Healthy     bool             `json:"healthy"`
	Facilities  []FacilityHealth `json:"facilities"`
	Probes      []ProbeStat      `json:"probes"`
	Transitions []Transition     `json:"transitions"`
}

// maxHealthTransitions bounds the timeline tail the handler returns.
const maxHealthTransitions = 100

// HealthHandler serves per-facility scores, verdicts, reasons, probe
// stats, and the recent verdict timeline for GET /api/health, with
// status 200 when everything is Healthy and 503 otherwise — the same
// load-balancer contract the old health checker handler had.
func (pl *Plane) HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		resp := healthResponse{
			Healthy:     pl.Healthy(),
			Facilities:  pl.Health(),
			Probes:      pl.ProbeStats(),
			Transitions: pl.Transitions(),
		}
		if n := len(resp.Transitions); n > maxHealthTransitions {
			resp.Transitions = resp.Transitions[n-maxHealthTransitions:]
		}
		if resp.Facilities == nil {
			resp.Facilities = []FacilityHealth{}
		}
		if resp.Probes == nil {
			resp.Probes = []ProbeStat{}
		}
		if resp.Transitions == nil {
			resp.Transitions = []Transition{}
		}
		w.Header().Set("Content-Type", "application/json")
		code := http.StatusOK
		if !resp.Healthy {
			code = http.StatusServiceUnavailable
		}
		w.WriteHeader(code)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	})
}

package tomo

import (
	"math"
	"math/rand"

	"repro/internal/vol"
)

// AcquireOptions models the detector physics the beamline's acquisition
// layer produces: photon statistics, per-column gain variation (the source
// of ring artifacts), dark current, zingers, and a center-of-rotation
// offset.
type AcquireOptions struct {
	I0            float64 // incident photon count per pixel (e.g. 1e4)
	GainVariation float64 // per-column multiplicative gain sigma (rings)
	DarkLevel     float64 // additive dark-current counts
	ZingerProb    float64 // probability a sample is hit by a zinger
	ZingerScale   float64 // zinger amplitude in units of I0
	CORShift      float64 // center-of-rotation offset in detector pixels
	Seed          int64
}

// DefaultAcquire returns a realistic mid-quality acquisition model.
func DefaultAcquire() AcquireOptions {
	return AcquireOptions{
		I0:            1e4,
		GainVariation: 0.02,
		DarkLevel:     50,
		ZingerProb:    1e-4,
		ZingerScale:   5,
		Seed:          1,
	}
}

// Acquisition is a simulated raw scan: transmission counts plus the flat
// and dark reference frames the file-writer stores alongside the data
// (DXchange's data_white / data_dark).
type Acquisition struct {
	Raw   *ProjectionSet // detector counts
	Flat  []float64      // per-pixel flat-field counts (NRows×NCols)
	Dark  []float64      // per-pixel dark counts
	Truth *vol.Volume    // ground-truth object (for quality metrics)
}

// Acquire simulates scanning a volume: forward projects each slice, applies
// Beer-Lambert attenuation with the detector model, and captures flat/dark
// references with the same per-column gains.
func Acquire(truth *vol.Volume, theta []float64, ncols int, opts AcquireOptions) *Acquisition {
	rng := rand.New(rand.NewSource(opts.Seed))
	clean := ProjectVolume(truth, theta, ncols)

	// Per-column gain (constant over the scan → rings).
	gain := make([]float64, ncols)
	for c := range gain {
		gain[c] = 1 + opts.GainVariation*rng.NormFloat64()
		if gain[c] < 0.1 {
			gain[c] = 0.1
		}
	}

	raw := NewProjectionSet(theta, clean.NRows, clean.NCols)
	for a := 0; a < clean.NAngles; a++ {
		for r := 0; r < clean.NRows; r++ {
			base := (a*clean.NRows + r) * clean.NCols
			for c := 0; c < clean.NCols; c++ {
				// COR shift: sample the clean projection at a
				// shifted column (linear interpolation).
				src := float64(c) - opts.CORShift
				line := sampleShift(clean.Data[base:base+clean.NCols], src)
				mean := opts.I0 * gain[c] * math.Exp(-line)
				// Poisson noise approximated as Gaussian with
				// variance = mean (valid for mean >> 1).
				counts := mean + math.Sqrt(math.Max(mean, 1))*rng.NormFloat64() + opts.DarkLevel
				if opts.ZingerProb > 0 && rng.Float64() < opts.ZingerProb {
					counts += opts.I0 * opts.ZingerScale
				}
				if counts < 0 {
					counts = 0
				}
				raw.Data[base+c] = counts
			}
		}
	}

	npix := clean.NRows * clean.NCols
	flat := make([]float64, npix)
	dark := make([]float64, npix)
	for r := 0; r < clean.NRows; r++ {
		for c := 0; c < clean.NCols; c++ {
			i := r*clean.NCols + c
			mean := opts.I0 * gain[c]
			flat[i] = mean + math.Sqrt(mean)*rng.NormFloat64() + opts.DarkLevel
			dark[i] = opts.DarkLevel + rng.NormFloat64()
		}
	}
	return &Acquisition{Raw: raw, Flat: flat, Dark: dark, Truth: truth}
}

// sampleShift linearly interpolates row at fractional index x, clamping to
// the borders.
func sampleShift(row []float64, x float64) float64 {
	if x <= 0 {
		return row[0]
	}
	if x >= float64(len(row)-1) {
		return row[len(row)-1]
	}
	i := int(x)
	f := x - float64(i)
	return row[i]*(1-f) + row[i+1]*f
}

package tomo

import (
	"context"
	"math"
	"testing"

	"repro/internal/vol"
)

// feedIncremental runs a whole sinogram through an IncrementalRecon in
// acquisition order, as the streaming service would.
func feedIncremental(t *testing.T, ir *IncrementalRecon, s *Sinogram) {
	t.Helper()
	for a := 0; a < s.NAngles; a++ {
		ir.Accumulate(s.Theta[a], s.Row(a))
	}
}

// TestIncrementalMatchesRefFBP is the tentpole's golden: fed every angle
// in order, the per-angle accumulator reproduces the naive reference FBP
// bit for bit — the single-row filter is the reference's own convolution
// and the backprojection accumulates per pixel in the reference's angle
// order, so no rounding may diverge.
func TestIncrementalMatchesRefFBP(t *testing.T) {
	geoms := []struct{ nangles, ncols, size int }{
		{40, 32, 32},
		{17, 33, 21}, // odd everything
		{64, 32, 8},  // downsampled output
	}
	for _, g := range geoms {
		s := testSinogram(g.nangles, g.ncols)
		for _, f := range []Filter{RamLak, SheppLoganFilter, Hann} {
			ir, err := NewIncrementalRecon(g.ncols, g.size, f)
			if err != nil {
				t.Fatal(err)
			}
			feedIncremental(t, ir, s)
			got := vol.NewImage(ir.Size, ir.Size)
			if err := ir.FinalizeInto(got); err != nil {
				t.Fatal(err)
			}
			want := refFBP(s, f, g.size)
			if d := maxAbsDiff(got.Pix, want.Pix); d != 0 {
				t.Errorf("%dx%d size %d filter %v: max |Δ| = %g, want bit-identical",
					g.nangles, g.ncols, g.size, f, d)
			}
		}
	}
}

// TestIncrementalMatchesPlanFBP ties the incremental path to the batch
// plan engine at the plan suite's own equivalence bound.
func TestIncrementalMatchesPlanFBP(t *testing.T) {
	s := testSinogram(48, 32)
	ir, err := NewIncrementalRecon(32, 32, SheppLoganFilter)
	if err != nil {
		t.Fatal(err)
	}
	feedIncremental(t, ir, s)
	got := vol.NewImage(32, 32)
	if err := ir.FinalizeInto(got); err != nil {
		t.Fatal(err)
	}
	want, err := ReconstructSlice(s, ReconOptions{Algorithm: AlgFBP, Filter: SheppLoganFilter})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(got.Pix, want.Pix); d > 1e-12 {
		t.Errorf("incremental vs plan FBP: max |Δ| = %g > 1e-12", d)
	}
}

// TestIncrementalPreviewMatchesQuickPreview feeds frames one at a time
// and checks all three finalized slices against the batch QuickPreview of
// the same projection set.
func TestIncrementalPreviewMatchesQuickPreview(t *testing.T) {
	const w, d, ncols = 20, 5, 20
	v := vol.NewVolume(w, w, d)
	for i := range v.Data {
		v.Data[i] = math.Abs(math.Sin(0.17 * float64(i)))
	}
	theta := UniformAngles(24)
	ps := ProjectVolume(v, theta, ncols)

	xy, xz, yz, err := QuickPreview(context.Background(), ps, ReconOptions{Filter: SheppLoganFilter})
	if err != nil {
		t.Fatal(err)
	}

	ip, err := NewIncrementalPreview(ps.NRows, ps.NCols, 0, SheppLoganFilter)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < ps.NAngles; a++ {
		ip.AddProjection(theta[a], ps.Projection(a))
	}
	if ip.Angles() != ps.NAngles {
		t.Fatalf("Angles() = %d, want %d", ip.Angles(), ps.NAngles)
	}
	ixy, ixz, iyz, err := ip.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if ixy.W != xy.W || ixz.W != xz.W || ixz.H != xz.H {
		t.Fatalf("preview dims: xy %dx%d vs %dx%d, xz %dx%d vs %dx%d",
			ixy.W, ixy.H, xy.W, xy.H, ixz.W, ixz.H, xz.W, xz.H)
	}
	if d := maxAbsDiff(ixy.Pix, xy.Pix); d > 1e-12 {
		t.Errorf("XY slice: max |Δ| = %g > 1e-12", d)
	}
	if d := maxAbsDiff(ixz.Pix, xz.Pix); d > 1e-12 {
		t.Errorf("XZ slice: max |Δ| = %g > 1e-12", d)
	}
	if d := maxAbsDiff(iyz.Pix, yz.Pix); d > 1e-12 {
		t.Errorf("YZ slice: max |Δ| = %g > 1e-12", d)
	}
}

// TestIncrementalResetReuse checks that Reset restores a bit-identical
// second scan on the same accumulator — the streaming service keeps one
// IncrementalPreview alive across scans.
func TestIncrementalResetReuse(t *testing.T) {
	s := testSinogram(20, 16)
	ir, err := NewIncrementalRecon(16, 16, Hann)
	if err != nil {
		t.Fatal(err)
	}
	feedIncremental(t, ir, s)
	first := vol.NewImage(16, 16)
	if err := ir.FinalizeInto(first); err != nil {
		t.Fatal(err)
	}
	ir.Reset()
	if ir.Angles() != 0 {
		t.Fatalf("Angles() after Reset = %d", ir.Angles())
	}
	feedIncremental(t, ir, s)
	second := vol.NewImage(16, 16)
	if err := ir.FinalizeInto(second); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(first.Pix, second.Pix); d != 0 {
		t.Errorf("reset scan diverged: max |Δ| = %g", d)
	}
}

// TestIncrementalMidScanFinalize proves FinalizeInto is non-destructive:
// a mid-scan preview (scaled by the angles seen so far) does not perturb
// the end-of-scan result.
func TestIncrementalMidScanFinalize(t *testing.T) {
	s := testSinogram(20, 16)
	ir, err := NewIncrementalRecon(16, 16, SheppLoganFilter)
	if err != nil {
		t.Fatal(err)
	}
	mid := vol.NewImage(16, 16)
	for a := 0; a < s.NAngles; a++ {
		ir.Accumulate(s.Theta[a], s.Row(a))
		if a == s.NAngles/2 {
			if err := ir.FinalizeInto(mid); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := vol.NewImage(16, 16)
	if err := ir.FinalizeInto(got); err != nil {
		t.Fatal(err)
	}
	want := refFBP(s, SheppLoganFilter, 16)
	if d := maxAbsDiff(got.Pix, want.Pix); d != 0 {
		t.Errorf("mid-scan finalize perturbed the result: max |Δ| = %g", d)
	}
	// The mid-scan image must itself be the reference FBP of the partial
	// angle set (scale π/k comes from the count actually received).
	partial := NewSinogram(s.Theta[:s.NAngles/2+1], s.NCols)
	copy(partial.Data, s.Data[:len(partial.Data)])
	wantMid := refFBP(partial, SheppLoganFilter, 16)
	if d := maxAbsDiff(mid.Pix, wantMid.Pix); d != 0 {
		t.Errorf("mid-scan preview: max |Δ| = %g, want bit-identical", d)
	}
}

// TestIncrementalZeroAlloc locks the streaming contract: once built, the
// per-frame path (Accumulate / AddProjection) performs no allocations.
func TestIncrementalZeroAlloc(t *testing.T) {
	s := testSinogram(16, 16)
	ir, err := NewIncrementalRecon(16, 16, SheppLoganFilter)
	if err != nil {
		t.Fatal(err)
	}
	row := s.Row(3)
	allocs := testing.AllocsPerRun(20, func() {
		ir.Accumulate(s.Theta[3], row)
	})
	if allocs != 0 {
		t.Errorf("Accumulate: %v allocs/op, want 0", allocs)
	}

	const w, dpt, ncols = 16, 4, 16
	v := vol.NewVolume(w, w, dpt)
	for i := range v.Data {
		v.Data[i] = float64(i%7) * 0.1
	}
	theta := UniformAngles(8)
	ps := ProjectVolume(v, theta, ncols)
	ip, err := NewIncrementalPreview(ps.NRows, ps.NCols, 0, SheppLoganFilter)
	if err != nil {
		t.Fatal(err)
	}
	frame := ps.Projection(2)
	allocs = testing.AllocsPerRun(20, func() {
		ip.AddProjection(theta[2], frame)
	})
	if allocs != 0 {
		t.Errorf("AddProjection: %v allocs/op, want 0", allocs)
	}
}

func TestIncrementalValidation(t *testing.T) {
	if _, err := NewIncrementalRecon(0, 16, RamLak); err == nil {
		t.Error("zero-column recon accepted")
	}
	if _, err := NewIncrementalRecon(16, -3, RamLak); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := NewIncrementalPreview(0, 16, 0, RamLak); err == nil {
		t.Error("zero-row preview accepted")
	}
	ir, err := NewIncrementalRecon(16, 16, RamLak)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.FinalizeInto(vol.NewImage(8, 8)); err == nil {
		t.Error("size-mismatched finalize destination accepted")
	}
	// Zero angles: finalize must produce zeros, not NaNs from π/0.
	dst := vol.NewImage(16, 16)
	dst.Fill(7)
	if err := ir.FinalizeInto(dst); err != nil {
		t.Fatal(err)
	}
	for i, v := range dst.Pix {
		if v != 0 {
			t.Fatalf("zero-angle finalize left pixel %d = %g", i, v)
		}
	}
}

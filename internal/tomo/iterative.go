package tomo

import (
	"math"

	"repro/internal/vol"
)

// SIRTOptions configures the simultaneous iterative reconstruction solver
// used by the file-based branch when image quality matters more than speed.
type SIRTOptions struct {
	Iterations int
	Relax      float64 // relaxation factor λ, typically ~1
	Size       int     // output side length; 0 means NCols
	// Positivity clamps negative voxels to zero each iteration, a
	// physical constraint for attenuation coefficients.
	Positivity bool
}

// SIRT reconstructs a slice iteratively: x ← x + λ·C·Aᵀ·R·(b − A·x), where
// A is the forward projector, Aᵀ the backprojector, and R, C row/column
// inverse-sum normalizations approximated by projecting a uniform image.
func SIRT(s *Sinogram, opts SIRTOptions) *vol.Image {
	n := opts.Size
	if n == 0 {
		n = s.NCols
	}
	iters := opts.Iterations
	if iters <= 0 {
		iters = 30
	}
	relax := opts.Relax
	if relax <= 0 {
		relax = 1
	}

	// Normalization: R ≈ 1 / A(1), C ≈ 1 / Aᵀ(1).
	ones := vol.NewImage(n, n)
	ones.Fill(1)
	rowSum := Project(ones, s.Theta, s.NCols)
	onesSino := NewSinogram(s.Theta, s.NCols)
	for i := range onesSino.Data {
		onesSino.Data[i] = 1
	}
	colSum := BackProject(onesSino, n)

	x := vol.NewImage(n, n)
	for it := 0; it < iters; it++ {
		// Residual r = b - A x.
		ax := Project(x, s.Theta, s.NCols)
		res := NewSinogram(s.Theta, s.NCols)
		for i := range res.Data {
			r := s.Data[i] - ax.Data[i]
			if w := rowSum.Data[i]; w > 1e-9 {
				r /= w
			} else {
				r = 0
			}
			res.Data[i] = r
		}
		// Update x += λ C Aᵀ r. BackProject includes a π/NAngles
		// scale; fold it out through the column normalization, which
		// was computed with the same backprojector and cancels it.
		upd := BackProject(res, n)
		for i := range x.Pix {
			c := colSum.Pix[i]
			if c <= 1e-9 {
				continue
			}
			x.Pix[i] += relax * upd.Pix[i] / c
			if opts.Positivity && x.Pix[i] < 0 {
				x.Pix[i] = 0
			}
		}
	}
	return x
}

// Residual returns the root-mean-square projection-domain residual
// ‖A·x − b‖ / √N, the convergence metric reported by the iterative
// reconstruction logs.
func Residual(x *vol.Image, s *Sinogram) float64 {
	ax := Project(x, s.Theta, s.NCols)
	var ss float64
	for i := range ax.Data {
		d := ax.Data[i] - s.Data[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(ax.Data)))
}

// SARTOptions configures the block-iterative (per-angle) solver.
type SARTOptions struct {
	Iterations int     // full sweeps over all angles
	Relax      float64 // relaxation factor, typically ~0.2–1
	Size       int
	Positivity bool
}

// SART reconstructs a slice with the simultaneous algebraic reconstruction
// technique: like SIRT but updating after each projection angle, which
// converges in far fewer sweeps at the cost of ordering sensitivity.
func SART(s *Sinogram, opts SARTOptions) *vol.Image {
	n := opts.Size
	if n == 0 {
		n = s.NCols
	}
	iters := opts.Iterations
	if iters <= 0 {
		iters = 5
	}
	relax := opts.Relax
	if relax <= 0 {
		relax = 0.5
	}

	ones := vol.NewImage(n, n)
	ones.Fill(1)
	rowSum := Project(ones, s.Theta, s.NCols)

	x := vol.NewImage(n, n)
	single := make([]float64, 1)
	for it := 0; it < iters; it++ {
		for a := 0; a < s.NAngles; a++ {
			theta := single[:1]
			theta[0] = s.Theta[a]
			// Residual for this angle only.
			ax := Project(x, theta, s.NCols)
			res := NewSinogram(theta, s.NCols)
			brow := s.Row(a)
			wrow := rowSum.Row(a)
			for c := 0; c < s.NCols; c++ {
				r := brow[c] - ax.Data[c]
				if wrow[c] > 1e-9 {
					r /= wrow[c]
				} else {
					r = 0
				}
				res.Data[c] = r
			}
			upd := BackProject(res, n)
			// BackProject scales by π/NAngles = π for a single
			// angle; compensate to an O(1) step.
			scale := relax / math.Pi
			for i := range x.Pix {
				x.Pix[i] += scale * upd.Pix[i]
				if opts.Positivity && x.Pix[i] < 0 {
					x.Pix[i] = 0
				}
			}
		}
	}
	return x
}

package tomo

import (
	"math"

	"repro/internal/vol"
)

// SIRTOptions configures the simultaneous iterative reconstruction solver
// used by the file-based branch when image quality matters more than speed.
type SIRTOptions struct {
	Iterations int
	Relax      float64 // relaxation factor λ, typically ~1
	Size       int     // output side length; 0 means NCols
	// Positivity clamps negative voxels to zero each iteration, a
	// physical constraint for attenuation coefficients.
	Positivity bool
}

// SIRT reconstructs a slice iteratively: x ← x + λ·C·Aᵀ·R·(b − A·x), where
// A is the forward projector, Aᵀ the backprojector, and R, C row/column
// inverse-sum normalizations approximated by projecting a uniform image.
// The normalizations are ray weights fixed by geometry alone, so they
// live on the cached plan and are reused across calls and iterations.
func SIRT(s *Sinogram, opts SIRTOptions) *vol.Image {
	n := opts.Size
	if n == 0 {
		n = s.NCols
	}
	iters := opts.Iterations
	if iters <= 0 {
		iters = 30
	}
	relax := opts.Relax
	if relax <= 0 {
		relax = 1
	}
	p := cachedPlan(s.Theta, planKey{
		alg: AlgSIRT, nangles: s.NAngles, ncols: s.NCols,
		size: n, iters: iters, relax: relax, positivity: opts.Positivity,
	})
	return p.reconstruct(s)
}

// Residual returns the root-mean-square projection-domain residual
// ‖A·x − b‖ / √N, the convergence metric reported by the iterative
// reconstruction logs.
func Residual(x *vol.Image, s *Sinogram) float64 {
	ax := Project(x, s.Theta, s.NCols)
	var ss float64
	for i := range ax.Data {
		d := ax.Data[i] - s.Data[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(ax.Data)))
}

// SARTOptions configures the block-iterative (per-angle) solver.
type SARTOptions struct {
	Iterations int     // full sweeps over all angles
	Relax      float64 // relaxation factor, typically ~0.2–1
	Size       int
	Positivity bool
}

// SART reconstructs a slice with the simultaneous algebraic reconstruction
// technique: like SIRT but updating after each projection angle, which
// converges in far fewer sweeps at the cost of ordering sensitivity. Like
// SIRT, the per-angle ray weights come from the cached plan.
func SART(s *Sinogram, opts SARTOptions) *vol.Image {
	n := opts.Size
	if n == 0 {
		n = s.NCols
	}
	iters := opts.Iterations
	if iters <= 0 {
		iters = 5
	}
	relax := opts.Relax
	if relax <= 0 {
		relax = 0.5
	}
	p := cachedPlan(s.Theta, planKey{
		alg: AlgSART, nangles: s.NAngles, ncols: s.NCols,
		size: n, iters: iters, relax: relax, positivity: opts.Positivity,
	})
	return p.reconstruct(s)
}

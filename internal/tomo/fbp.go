package tomo

import (
	"fmt"
	"math"

	"repro/internal/fft"
	"repro/internal/vol"
)

// Filter selects the apodization window applied to the ramp filter in
// filtered back projection, trading resolution against noise — the same
// menu TomoPy exposes.
type Filter int

const (
	// RamLak is the pure ramp filter: sharpest, noisiest.
	RamLak Filter = iota
	// SheppLoganFilter multiplies the ramp by a sinc window.
	SheppLoganFilter
	// Cosine multiplies the ramp by a cosine window.
	Cosine
	// Hamming multiplies the ramp by a Hamming window.
	Hamming
	// Hann multiplies the ramp by a Hann window: smoothest.
	Hann
)

func (f Filter) String() string {
	switch f {
	case RamLak:
		return "ramlak"
	case SheppLoganFilter:
		return "shepp"
	case Cosine:
		return "cosine"
	case Hamming:
		return "hamming"
	case Hann:
		return "hann"
	}
	return fmt.Sprintf("filter(%d)", int(f))
}

// ParseFilter converts a filter name (as used by the CLI and flow
// parameters) into a Filter.
func ParseFilter(name string) (Filter, error) {
	switch name {
	case "ramlak", "ram-lak":
		return RamLak, nil
	case "shepp", "shepp-logan":
		return SheppLoganFilter, nil
	case "cosine":
		return Cosine, nil
	case "hamming":
		return Hamming, nil
	case "hann":
		return Hann, nil
	}
	return 0, fmt.Errorf("tomo: unknown filter %q", name)
}

// rampFilter builds the frequency-domain filter of length m for detector
// sampling pitch tau, windowed per f.
func rampFilter(m int, tau float64, f Filter) []float64 {
	h := make([]float64, m)
	fNyq := 1 / (2 * tau)
	for i := 0; i < m; i++ {
		fi := float64(fft.FreqIndex(i, m)) / (float64(m) * tau)
		af := math.Abs(fi)
		if af > fNyq {
			af = fNyq
		}
		w := 1.0
		r := af / fNyq // 0..1
		switch f {
		case RamLak:
			w = 1
		case SheppLoganFilter:
			if r > 0 {
				x := math.Pi * r / 2
				w = math.Sin(x) / x
			}
		case Cosine:
			w = math.Cos(math.Pi * r / 2)
		case Hamming:
			w = 0.54 + 0.46*math.Cos(math.Pi*r)
		case Hann:
			w = 0.5 * (1 + math.Cos(math.Pi*r))
		}
		h[i] = af * w
	}
	return h
}

// FilterSinogram returns a copy of s with every projection row convolved
// with the windowed ramp filter (zero-padded to avoid circular wrap).
// The filter taps come from a cached reconstruction plan, so repeated
// calls on one geometry never rebuild the ramp.
//
// q = IFFT(FFT(p)·|f|): the τ from approximating the continuous transform
// by the DFT cancels against the Δf of the inverse frequency integral, so
// no pitch factor remains.
func FilterSinogram(s *Sinogram, f Filter) *Sinogram {
	p := mustPlan(s.Theta, s.NCols, ReconOptions{Algorithm: AlgFBP, Filter: f})
	out := NewSinogram(s.Theta, s.NCols)
	sc := p.GetScratch()
	p.filterInto(out, s, sc.fbatch)
	p.PutScratch(sc)
	return out
}

// FBPOptions configures a filtered back projection.
type FBPOptions struct {
	Filter Filter
	// Size is the output image side length; 0 means use NCols.
	Size int
}

// FBP reconstructs a slice from its sinogram by filtered back projection —
// the fast algorithm the streaming branch runs for sub-10-second previews.
// It is a thin wrapper over a cached ReconPlan; hot loops should hold the
// plan and a Scratch and call ReconstructInto directly.
func FBP(s *Sinogram, opts FBPOptions) *vol.Image {
	p := mustPlan(s.Theta, s.NCols, ReconOptions{Algorithm: AlgFBP, Filter: opts.Filter, Size: opts.Size})
	return p.reconstruct(s)
}

// mustPlan backs the legacy one-shot entry points, whose signatures have
// no error path; PlanRecon only fails on degenerate geometry (no angles,
// no columns) or an unknown algorithm, neither reachable from them with
// inputs the old code accepted.
func mustPlan(theta []float64, ncols int, opts ReconOptions) *ReconPlan {
	p, err := PlanRecon(theta, ncols, opts)
	if err != nil {
		panic(err)
	}
	return p
}

package tomo

import (
	"fmt"
	"math"

	"repro/internal/fft"
	"repro/internal/vol"
)

// Filter selects the apodization window applied to the ramp filter in
// filtered back projection, trading resolution against noise — the same
// menu TomoPy exposes.
type Filter int

const (
	// RamLak is the pure ramp filter: sharpest, noisiest.
	RamLak Filter = iota
	// SheppLoganFilter multiplies the ramp by a sinc window.
	SheppLoganFilter
	// Cosine multiplies the ramp by a cosine window.
	Cosine
	// Hamming multiplies the ramp by a Hamming window.
	Hamming
	// Hann multiplies the ramp by a Hann window: smoothest.
	Hann
)

func (f Filter) String() string {
	switch f {
	case RamLak:
		return "ramlak"
	case SheppLoganFilter:
		return "shepp"
	case Cosine:
		return "cosine"
	case Hamming:
		return "hamming"
	case Hann:
		return "hann"
	}
	return fmt.Sprintf("filter(%d)", int(f))
}

// ParseFilter converts a filter name (as used by the CLI and flow
// parameters) into a Filter.
func ParseFilter(name string) (Filter, error) {
	switch name {
	case "ramlak", "ram-lak":
		return RamLak, nil
	case "shepp", "shepp-logan":
		return SheppLoganFilter, nil
	case "cosine":
		return Cosine, nil
	case "hamming":
		return Hamming, nil
	case "hann":
		return Hann, nil
	}
	return 0, fmt.Errorf("tomo: unknown filter %q", name)
}

// rampFilter builds the frequency-domain filter of length m for detector
// sampling pitch tau, windowed per f.
func rampFilter(m int, tau float64, f Filter) []float64 {
	h := make([]float64, m)
	fNyq := 1 / (2 * tau)
	for i := 0; i < m; i++ {
		fi := float64(fft.FreqIndex(i, m)) / (float64(m) * tau)
		af := math.Abs(fi)
		if af > fNyq {
			af = fNyq
		}
		w := 1.0
		r := af / fNyq // 0..1
		switch f {
		case RamLak:
			w = 1
		case SheppLoganFilter:
			if r > 0 {
				x := math.Pi * r / 2
				w = math.Sin(x) / x
			}
		case Cosine:
			w = math.Cos(math.Pi * r / 2)
		case Hamming:
			w = 0.54 + 0.46*math.Cos(math.Pi*r)
		case Hann:
			w = 0.5 * (1 + math.Cos(math.Pi*r))
		}
		h[i] = af * w
	}
	return h
}

// FilterSinogram returns a copy of s with every projection row convolved
// with the windowed ramp filter (zero-padded to avoid circular wrap).
func FilterSinogram(s *Sinogram, f Filter) *Sinogram {
	out := s.Clone()
	m := fft.NextPow2(2 * s.NCols)
	tau := 2.0 / float64(s.NCols)
	h := rampFilter(m, tau, f)
	buf := make([]complex128, m)
	for a := 0; a < s.NAngles; a++ {
		row := out.Row(a)
		for i := range buf {
			buf[i] = 0
		}
		for i, v := range row {
			buf[i] = complex(v, 0)
		}
		fft.Forward(buf)
		for i := range buf {
			buf[i] *= complex(h[i], 0)
		}
		fft.Inverse(buf)
		// q = IFFT(FFT(p)·|f|): the τ from approximating the
		// continuous transform by the DFT cancels against the Δf of
		// the inverse frequency integral, so no pitch factor remains.
		for i := range row {
			row[i] = real(buf[i])
		}
	}
	return out
}

// FBPOptions configures a filtered back projection.
type FBPOptions struct {
	Filter Filter
	// Size is the output image side length; 0 means use NCols.
	Size int
}

// FBP reconstructs a slice from its sinogram by filtered back projection —
// the fast algorithm the streaming branch runs for sub-10-second previews.
func FBP(s *Sinogram, opts FBPOptions) *vol.Image {
	n := opts.Size
	if n == 0 {
		n = s.NCols
	}
	return BackProject(FilterSinogram(s, opts.Filter), n)
}

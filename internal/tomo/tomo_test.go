package tomo

import (
	"context"
	"math"
	"testing"

	"repro/internal/phantom"
	"repro/internal/stats"
	"repro/internal/vol"
)

// disk returns an n×n image of a centered disk of the given radius (in
// object units) and value.
func disk(n int, radius, value float64) *vol.Image {
	im := vol.NewImage(n, n)
	for py := 0; py < n; py++ {
		y := -1 + (2*float64(py)+1)/float64(n)
		for px := 0; px < n; px++ {
			x := -1 + (2*float64(px)+1)/float64(n)
			if x*x+y*y <= radius*radius {
				im.Set(px, py, value)
			}
		}
	}
	return im
}

func TestUniformAngles(t *testing.T) {
	th := UniformAngles(4)
	want := []float64{0, math.Pi / 4, math.Pi / 2, 3 * math.Pi / 4}
	for i := range want {
		if math.Abs(th[i]-want[i]) > 1e-12 {
			t.Fatalf("theta[%d] = %v, want %v", i, th[i], want[i])
		}
	}
}

func TestSinogramValidate(t *testing.T) {
	s := NewSinogram(UniformAngles(4), 8)
	if err := s.Validate(); err != nil {
		t.Fatalf("fresh sinogram invalid: %v", err)
	}
	s.Data = s.Data[:5]
	if err := s.Validate(); err == nil {
		t.Fatal("truncated sinogram should be invalid")
	}
	s2 := NewSinogram(UniformAngles(4), 8)
	s2.Theta = s2.Theta[:2]
	if err := s2.Validate(); err == nil {
		t.Fatal("theta mismatch should be invalid")
	}
}

func TestProjectDiskChordLengths(t *testing.T) {
	// Projection of a disk of radius R, density d at detector position s
	// is d · 2·sqrt(R²−s²), independent of angle.
	n := 128
	im := disk(n, 0.5, 1.0)
	theta := []float64{0, math.Pi / 3, math.Pi / 2}
	s := Project(im, theta, n)
	for a := range theta {
		row := s.Row(a)
		for c := 0; c < n; c += 7 {
			sc := -1 + (2*float64(c)+1)/float64(n)
			want := 0.0
			if math.Abs(sc) < 0.5 {
				want = 2 * math.Sqrt(0.25-sc*sc)
			}
			if math.Abs(row[c]-want) > 0.05 {
				t.Fatalf("angle %d col %d: projection %v, want %v", a, c, row[c], want)
			}
		}
	}
}

func TestProjectAngleInvarianceOfMass(t *testing.T) {
	// The integral of every projection equals the object mass.
	im := phantom.SheppLogan(64)
	s := Project(im, UniformAngles(12), 64)
	tau := 2.0 / 64
	masses := make([]float64, s.NAngles)
	for a := 0; a < s.NAngles; a++ {
		var m float64
		for _, v := range s.Row(a) {
			m += v
		}
		masses[a] = m * tau
	}
	sum := stats.Summarize(masses)
	if sum.SD/sum.Mean > 0.02 {
		t.Fatalf("projection mass varies by %.1f%% across angles", 100*sum.SD/sum.Mean)
	}
}

func TestBackProjectZeroOutsideCircle(t *testing.T) {
	s := NewSinogram(UniformAngles(8), 32)
	for i := range s.Data {
		s.Data[i] = 1
	}
	im := BackProject(s, 32)
	if im.At(0, 0) != 0 {
		t.Error("corner (outside unit circle) should stay zero")
	}
	if im.At(16, 16) == 0 {
		t.Error("center should be nonzero")
	}
}

func TestFilterParseRoundtrip(t *testing.T) {
	for _, f := range []Filter{RamLak, SheppLoganFilter, Cosine, Hamming, Hann} {
		got, err := ParseFilter(f.String())
		if err != nil || got != f {
			t.Errorf("roundtrip %v failed: %v %v", f, got, err)
		}
	}
	if _, err := ParseFilter("nope"); err == nil {
		t.Error("unknown filter should error")
	}
	if Filter(99).String() == "" {
		t.Error("unknown filter should still stringify")
	}
}

func TestFilterSinogramRemovesDC(t *testing.T) {
	// The ramp filter zeroes the DC component of each row.
	s := NewSinogram(UniformAngles(3), 64)
	for i := range s.Data {
		s.Data[i] = 5
	}
	f := FilterSinogram(s, RamLak)
	for a := 0; a < f.NAngles; a++ {
		var mean float64
		for _, v := range f.Row(a) {
			mean += v
		}
		mean /= float64(f.NCols)
		// Not exactly zero because of zero-padding edge effects, but
		// well below the input level of 5.
		if math.Abs(mean) > 2 {
			t.Fatalf("row %d mean %v; ramp filter should suppress DC", a, mean)
		}
	}
}

func reconQuality(t *testing.T, rec *vol.Image, truth *vol.Image) (corr, rmse float64) {
	t.Helper()
	if rec.W != truth.W || rec.H != truth.H {
		t.Fatalf("size mismatch: %dx%d vs %dx%d", rec.W, rec.H, truth.W, truth.H)
	}
	// Compare within the inscribed circle only (FBP reconstructs there).
	n := truth.W
	var a, b []float64
	for py := 0; py < n; py++ {
		y := -1 + (2*float64(py)+1)/float64(n)
		for px := 0; px < n; px++ {
			x := -1 + (2*float64(px)+1)/float64(n)
			if x*x+y*y <= 0.9 {
				a = append(a, truth.At(px, py))
				b = append(b, rec.At(px, py))
			}
		}
	}
	return stats.Pearson(a, b), stats.RMSE(a, b)
}

func TestFBPSheppLogan(t *testing.T) {
	n := 64
	im := phantom.SheppLogan(n)
	s := Project(im, UniformAngles(128), n)
	rec := FBP(s, FBPOptions{Filter: SheppLoganFilter})
	corr, rmse := reconQuality(t, rec, im)
	if corr < 0.9 {
		t.Errorf("FBP correlation %v < 0.9", corr)
	}
	if rmse > 0.15 {
		t.Errorf("FBP RMSE %v > 0.15", rmse)
	}
}

func TestFBPAmplitudeCalibrated(t *testing.T) {
	// A uniform disk should reconstruct to approximately its density.
	n := 64
	im := disk(n, 0.6, 2.0)
	s := Project(im, UniformAngles(180), n)
	rec := FBP(s, FBPOptions{Filter: RamLak})
	// Average over the disk interior.
	var sum float64
	var cnt int
	for py := 20; py < 44; py++ {
		for px := 20; px < 44; px++ {
			sum += rec.At(px, py)
			cnt++
		}
	}
	got := sum / float64(cnt)
	if math.Abs(got-2.0) > 0.25 {
		t.Errorf("disk interior reconstructs to %v, want ~2.0", got)
	}
}

func TestGridrecSheppLogan(t *testing.T) {
	n := 64
	im := phantom.SheppLogan(n)
	s := Project(im, UniformAngles(180), n)
	rec := Gridrec(s, 0)
	corr, _ := reconQuality(t, rec, im)
	if corr < 0.8 {
		t.Errorf("gridrec correlation %v < 0.8", corr)
	}
}

func TestSIRTImprovesWithIterations(t *testing.T) {
	n := 48
	im := phantom.SheppLogan(n)
	s := Project(im, UniformAngles(60), n)
	r5 := SIRT(s, SIRTOptions{Iterations: 3})
	r100 := SIRT(s, SIRTOptions{Iterations: 100})
	if Residual(r100, s) >= Residual(r5, s) {
		t.Errorf("residual did not decrease: %v -> %v", Residual(r5, s), Residual(r100, s))
	}
	corr, _ := reconQuality(t, r100, im)
	if corr < 0.9 {
		t.Errorf("SIRT correlation %v < 0.9", corr)
	}
}

func TestSARTReconstructs(t *testing.T) {
	n := 48
	im := phantom.SheppLogan(n)
	s := Project(im, UniformAngles(60), n)
	rec := SART(s, SARTOptions{Iterations: 3})
	corr, _ := reconQuality(t, rec, im)
	if corr < 0.85 {
		t.Errorf("SART correlation %v < 0.85", corr)
	}
}

func TestNormalizeMinusLogRecoversLineIntegrals(t *testing.T) {
	// With a noiseless detector, normalize + -log recovers the clean
	// projections.
	truth := phantom.SheppLogan3D(32, 4)
	theta := UniformAngles(24)
	clean := ProjectVolume(truth, theta, 32)
	acq := Acquire(truth, theta, 32, AcquireOptions{
		I0: 1e6, GainVariation: 0, DarkLevel: 0, ZingerProb: 0, Seed: 3,
	})
	norm := Normalize(acq.Raw, acq.Flat, acq.Dark)
	li := MinusLog(norm)
	var maxErr float64
	for i := range li.Data {
		if e := math.Abs(li.Data[i] - clean.Data[i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.05 {
		t.Errorf("max line-integral error %v after normalize+log", maxErr)
	}
}

func TestNormalizeClampsDenominator(t *testing.T) {
	ps := NewProjectionSet(UniformAngles(1), 1, 2)
	ps.Data = []float64{10, 10}
	flat := []float64{5, 0} // second pixel: flat == dark
	dark := []float64{0, 0}
	out := Normalize(ps, flat, dark)
	if math.IsInf(out.Data[1], 0) || math.IsNaN(out.Data[1]) {
		t.Fatal("division by zero leaked through")
	}
}

func TestRemoveRingsSuppressesStripes(t *testing.T) {
	// Add a constant column offset (gain stripe) to a smooth sinogram.
	im := disk(64, 0.7, 1)
	s := Project(im, UniformAngles(64), 64)
	stripeCol := 30
	for a := 0; a < s.NAngles; a++ {
		s.Row(a)[stripeCol] += 0.5
	}
	clean := RemoveRings(s, 9)
	// Stripe deviation from neighbors should shrink drastically.
	dev := func(sg *Sinogram) float64 {
		var d float64
		for a := 0; a < sg.NAngles; a++ {
			row := sg.Row(a)
			d += math.Abs(row[stripeCol] - (row[stripeCol-1]+row[stripeCol+1])/2)
		}
		return d / float64(sg.NAngles)
	}
	if dev(clean) > dev(s)*0.25 {
		t.Errorf("ring removal left stripe deviation %v (was %v)", dev(clean), dev(s))
	}
}

func TestRemoveOutliers(t *testing.T) {
	s := NewSinogram(UniformAngles(1), 16)
	for c := range s.Row(0) {
		s.Row(0)[c] = 1
	}
	s.Row(0)[7] = 100 // zinger
	out := RemoveOutliers(s, 5)
	if out.Row(0)[7] != 1 {
		t.Errorf("zinger not removed: %v", out.Row(0)[7])
	}
	// Non-outliers untouched.
	if out.Row(0)[3] != 1 {
		t.Error("non-outlier modified")
	}
}

func TestPaganinIdentityAtZero(t *testing.T) {
	im := disk(32, 0.5, 1)
	s := Project(im, UniformAngles(8), 32)
	out := PaganinFilter(s, 0)
	for i := range s.Data {
		if s.Data[i] != out.Data[i] {
			t.Fatal("alpha=0 should be the identity")
		}
	}
}

func TestPaganinSmooths(t *testing.T) {
	// High-frequency noise energy should drop; total mass preserved.
	s := NewSinogram(UniformAngles(1), 64)
	row := s.Row(0)
	for c := range row {
		row[c] = 1 + 0.5*math.Pow(-1, float64(c)) // alternating = Nyquist
	}
	out := PaganinFilter(s, 0.1)
	varIn := variance(row)
	varOut := variance(out.Row(0))
	if varOut > varIn*0.5 {
		t.Errorf("Paganin did not smooth: var %v -> %v", varIn, varOut)
	}
}

func variance(xs []float64) float64 {
	s := stats.Summarize(xs)
	return s.SD * s.SD
}

func TestPreprocessChain(t *testing.T) {
	im := disk(32, 0.5, 1)
	s := Project(im, UniformAngles(16), 32)
	// Convert to transmission so Preprocess's -log is meaningful.
	tr := s.Clone()
	for i, v := range tr.Data {
		tr.Data[i] = math.Exp(-v)
	}
	out := Preprocess(tr, PreprocessOptions{
		OutlierThreshold: 10, RingWindow: 5, PaganinAlpha: 0.001,
	})
	// Result should approximate the original line integrals.
	var worst float64
	for i := range out.Data {
		if e := math.Abs(out.Data[i] - s.Data[i]); e > worst {
			worst = e
		}
	}
	if worst > 0.3 {
		t.Errorf("preprocess chain distorted line integrals by %v", worst)
	}
}

func TestFindCenter(t *testing.T) {
	// Acquire with a known COR shift and check recovery within half a
	// pixel. Use 181 angles so the last row is exactly 180°.
	truth := phantom.SheppLogan3D(64, 1)
	theta := make([]float64, 33)
	for i := range theta {
		theta[i] = math.Pi * float64(i) / 32
	}
	for _, shift := range []float64{0, 2.5, -3} {
		acq := Acquire(truth, theta, 64, AcquireOptions{
			I0: 1e6, CORShift: shift, Seed: 5,
		})
		norm := MinusLog(Normalize(acq.Raw, acq.Flat, acq.Dark))
		sino := norm.SinogramForRow(0)
		got := FindCenter(sino, 10)
		if math.Abs(got-shift) > 0.6 {
			t.Errorf("FindCenter = %v, want %v", got, shift)
		}
	}
}

func TestShiftSinogramRecenters(t *testing.T) {
	im := phantom.SheppLogan(64)
	s := Project(im, UniformAngles(32), 64)
	shifted := ShiftSinogram(s, -2) // move rows right by 2
	back := ShiftSinogram(shifted, 2)
	// Interior samples should round-trip.
	var worst float64
	for a := 0; a < s.NAngles; a++ {
		for c := 5; c < s.NCols-5; c++ {
			if e := math.Abs(back.Row(a)[c] - s.Row(a)[c]); e > worst {
				worst = e
			}
		}
	}
	if worst > 1e-9 {
		t.Errorf("integer shift roundtrip error %v", worst)
	}
}

func TestReconstructSliceUnknownAlgorithm(t *testing.T) {
	s := NewSinogram(UniformAngles(4), 8)
	if _, err := ReconstructSlice(s, ReconOptions{Algorithm: "magic"}); err == nil {
		t.Fatal("unknown algorithm should error")
	}
}

func TestReconstructVolumeMatchesSerial(t *testing.T) {
	truth := phantom.SheppLogan3D(32, 6)
	theta := UniformAngles(48)
	ps := ProjectVolume(truth, theta, 32)
	opts := ReconOptions{Algorithm: AlgFBP, Filter: RamLak}

	par, err := ReconstructVolume(context.Background(), ps, opts)
	if err != nil {
		t.Fatal(err)
	}
	optsSerial := opts
	optsSerial.Workers = 1
	ser, err := ReconstructVolume(context.Background(), ps, optsSerial)
	if err != nil {
		t.Fatal(err)
	}
	for i := range par.Data {
		if par.Data[i] != ser.Data[i] {
			t.Fatal("parallel and serial reconstructions differ")
		}
	}
	// And it should resemble the truth.
	corr, _ := reconQuality(t, par.Slice(3), truth.Slice(3))
	if corr < 0.85 {
		t.Errorf("volume recon correlation %v", corr)
	}
}

func TestReconstructVolumeCancel(t *testing.T) {
	truth := phantom.SheppLogan3D(32, 16)
	ps := ProjectVolume(truth, UniformAngles(32), 32)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ReconstructVolume(ctx, ps, ReconOptions{Workers: 2}); err == nil {
		t.Fatal("cancelled context should return an error")
	}
}

func TestReconstructVolumeAutoCOR(t *testing.T) {
	truth := phantom.SheppLogan3D(48, 2)
	theta := make([]float64, 33)
	for i := range theta {
		theta[i] = math.Pi * float64(i) / 32
	}
	acq := Acquire(truth, theta, 48, AcquireOptions{I0: 1e6, CORShift: 2, Seed: 7})
	li := MinusLog(Normalize(acq.Raw, acq.Flat, acq.Dark))
	rec, err := ReconstructVolume(context.Background(), li, ReconOptions{
		Algorithm: AlgFBP, Filter: Hann, AutoCOR: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	recNo, err := ReconstructVolume(context.Background(), li, ReconOptions{
		Algorithm: AlgFBP, Filter: Hann,
	})
	if err != nil {
		t.Fatal(err)
	}
	cWith, _ := reconQuality(t, rec.Slice(1), truth.Slice(1))
	cWithout, _ := reconQuality(t, recNo.Slice(1), truth.Slice(1))
	if cWith <= cWithout {
		t.Errorf("AutoCOR should improve correlation: %v vs %v", cWith, cWithout)
	}
}

func TestQuickPreviewShapes(t *testing.T) {
	truth := phantom.SheppLogan3D(32, 8)
	ps := ProjectVolume(truth, UniformAngles(32), 32)
	xy, xz, yz, err := QuickPreview(context.Background(), ps, ReconOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if xy.W != 32 || xy.H != 32 {
		t.Errorf("xy %dx%d", xy.W, xy.H)
	}
	if xz.H != 8 || yz.H != 8 {
		t.Errorf("cross sections should have D rows: %d, %d", xz.H, yz.H)
	}
}

func TestProjectionSetSinogramForRow(t *testing.T) {
	ps := NewProjectionSet(UniformAngles(3), 2, 4)
	for a := 0; a < 3; a++ {
		for r := 0; r < 2; r++ {
			for c := 0; c < 4; c++ {
				ps.Set(a, r, c, float64(a*100+r*10+c))
			}
		}
	}
	s := ps.SinogramForRow(1)
	for a := 0; a < 3; a++ {
		for c := 0; c < 4; c++ {
			want := float64(a*100 + 10 + c)
			if s.Row(a)[c] != want {
				t.Fatalf("sino[%d][%d] = %v, want %v", a, c, s.Row(a)[c], want)
			}
		}
	}
}

func TestProjectionSetSizeBytes(t *testing.T) {
	// Construct the header only — allocating the paper's full dataset
	// as float64 would need ~87 GB.
	ps := &ProjectionSet{NAngles: 1969, NRows: 2160, NCols: 2560}
	// The paper's ~20 GB raw dataset.
	gb := float64(ps.SizeBytes()) / (1 << 30)
	if gb < 19 || gb > 21 {
		t.Errorf("paper dataset = %.1f GB, want ~20", gb)
	}
}

func TestAcquireDeterministic(t *testing.T) {
	truth := phantom.SheppLogan3D(16, 2)
	theta := UniformAngles(8)
	a1 := Acquire(truth, theta, 16, DefaultAcquire())
	a2 := Acquire(truth, theta, 16, DefaultAcquire())
	for i := range a1.Raw.Data {
		if a1.Raw.Data[i] != a2.Raw.Data[i] {
			t.Fatal("same seed should reproduce acquisition")
		}
	}
}

func BenchmarkProject64(b *testing.B) {
	im := phantom.SheppLogan(64)
	theta := UniformAngles(90)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Project(im, theta, 64)
	}
}

func BenchmarkFBP64(b *testing.B) {
	im := phantom.SheppLogan(64)
	s := Project(im, UniformAngles(90), 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FBP(s, FBPOptions{Filter: SheppLoganFilter})
	}
}

func BenchmarkGridrec64(b *testing.B) {
	im := phantom.SheppLogan(64)
	s := Project(im, UniformAngles(90), 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gridrec(s, 0)
	}
}

func BenchmarkSIRT64x10(b *testing.B) {
	im := phantom.SheppLogan(64)
	s := Project(im, UniformAngles(90), 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SIRT(s, SIRTOptions{Iterations: 10})
	}
}

func BenchmarkReconstructVolumeParallel(b *testing.B) {
	truth := phantom.SheppLogan3D(64, 16)
	ps := ProjectVolume(truth, UniformAngles(90), 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReconstructVolume(context.Background(), ps, ReconOptions{Filter: Hann}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAngles360(t *testing.T) {
	th := Angles360(4)
	wants := []float64{0, math.Pi / 2, math.Pi, 3 * math.Pi / 2}
	for i, w := range wants {
		if math.Abs(th[i]-w) > 1e-12 {
			t.Fatalf("theta[%d] = %v, want %v", i, th[i], w)
		}
	}
}

func TestConvert360To180MatchesHalfScan(t *testing.T) {
	// A full-rotation scan folded to 180° must match the direct 180°
	// sinogram of the same object.
	im := phantom.SheppLogan(48)
	full := Project(im, Angles360(96), 48)
	folded, err := Convert360To180(full)
	if err != nil {
		t.Fatal(err)
	}
	direct := Project(im, UniformAngles(48), 48)
	if folded.NAngles != 48 {
		t.Fatalf("folded angles = %d", folded.NAngles)
	}
	var worst float64
	for i := range direct.Data {
		if e := math.Abs(folded.Data[i] - direct.Data[i]); e > worst {
			worst = e
		}
	}
	// Mirror symmetry is exact in the continuous transform; discrete
	// sampling leaves small interpolation residue.
	if worst > 0.03 {
		t.Fatalf("fold residual %v", worst)
	}
	// And the folded sinogram reconstructs the object.
	rec := FBP(folded, FBPOptions{Filter: SheppLoganFilter})
	corr, _ := reconQuality(t, rec, im)
	if corr < 0.85 { // 48 angles at 48 px: modest angular sampling
		t.Fatalf("folded reconstruction correlation %v", corr)
	}
}

func TestConvert360To180RejectsOdd(t *testing.T) {
	s := NewSinogram(Angles360(5), 8)
	if _, err := Convert360To180(s); err == nil {
		t.Fatal("odd angle count should error")
	}
}

package tomo

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/vol"
)

// projectRow integrates the parallel-beam Radon transform of im along the
// rays of a single projection angle (given as its cosine and sine),
// filling one sinogram row. Rays step through the unit square with
// bilinear sampling at half-pixel steps. Allocation-free.
//
//perf:hot
func projectRow(row []float64, im *vol.Image, ct, st float64) {
	n := im.W
	step := 1.0 / float64(n) // half a pixel in [-1,1] units
	tMax := math.Sqrt2
	nSteps := int(2 * tMax / step)
	ncols := len(row)
	for c := 0; c < ncols; c++ {
		sc := -1 + (2*float64(c)+1)/float64(ncols)
		var sum float64
		for k := 0; k <= nSteps; k++ {
			t := -tMax + float64(k)*step
			// Ray point in object coordinates.
			x := sc*ct - t*st
			y := sc*st + t*ct
			if x < -1 || x > 1 || y < -1 || y > 1 {
				continue
			}
			// Map to pixel coordinates (pixel centers at -1+(2i+1)/n).
			px := (x+1)/2*float64(n) - 0.5
			py := (y+1)/2*float64(im.H) - 0.5
			sum += im.Bilinear(px, py)
		}
		row[c] = sum * step
	}
}

// Project computes the parallel-beam Radon transform of im for the given
// angles, producing a sinogram with ncols detector columns.
func Project(im *vol.Image, theta []float64, ncols int) *Sinogram {
	s := NewSinogram(theta, ncols)
	for a, th := range theta {
		projectRow(s.Row(a), im, math.Cos(th), math.Sin(th))
	}
	return s
}

// ProjectVolume forward projects every slice of v, assembling the full
// angle-major projection set the detector would emit. Each volume slice z
// becomes detector row z. Slices are independent, so the work fans out
// over a bounded worker pool (GOMAXPROCS), each worker writing its
// disjoint detector rows directly into the shared set — output is
// byte-identical to the serial order.
func ProjectVolume(v *vol.Volume, theta []float64, ncols int) *ProjectionSet {
	ps := NewProjectionSet(theta, v.D, ncols)
	workers := runtime.GOMAXPROCS(0)
	if workers > v.D {
		workers = v.D
	}
	if workers <= 1 {
		for z := 0; z < v.D; z++ {
			projectSliceInto(ps, v, z)
		}
		return ps
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go projectWorker(&wg, ps, v, w, workers)
	}
	wg.Wait()
	return ps
}

func projectWorker(wg *sync.WaitGroup, ps *ProjectionSet, v *vol.Volume, start, stride int) {
	defer wg.Done()
	for z := start; z < v.D; z += stride {
		projectSliceInto(ps, v, z)
	}
}

// projectSliceInto forward projects volume slice z into detector row z of
// ps, writing each angle's row in place.
func projectSliceInto(ps *ProjectionSet, v *vol.Volume, z int) {
	im := v.Slice(z)
	for a, th := range ps.Theta {
		base := (a*ps.NRows + z) * ps.NCols
		projectRow(ps.Data[base:base+ps.NCols], im, math.Cos(th), math.Sin(th))
	}
}

// BackProject computes the unfiltered adjoint of Project onto an n×n image:
// each pixel accumulates the linearly interpolated detector sample at
// s = x·cosθ + y·sinθ for every angle, scaled by π/NAngles. It is the
// smoothing operator FBP sharpens with the ramp filter, and the transpose
// operator the iterative solvers use.
func BackProject(s *Sinogram, n int) *vol.Image {
	im := vol.NewImage(n, n)
	cosT, sinT := trigTables(s.Theta)
	xs := pixelCenters(n)
	lo, hi := circleBounds(xs)
	backProjectKernel(im, s, cosT, sinT, xs, lo, hi, math.Pi/float64(s.NAngles), false, nil, nil)
	return im
}

// backProjectKernel accumulates the backprojection of s into dst (zeroing
// it first), restricted per image row to the reconstruction-circle pixel
// range [lo, hi), then applies the final scale. cosT/sinT must have one
// entry per sinogram row. Allocation-free.
//
// The affine form exploits that along an image row the detector
// coordinate fc is affine in the pixel index, replacing the two
// multiplies and two adds of s = x·cosθ + y·sinθ per sample with one
// multiply-add from the row's base coordinate. The multiply form
// (base + k·Δ, not a running sum) keeps the deviation from the exact
// per-pixel evaluation at ~1e-13 even across thousands of columns. It
// processes four angles per pixel pass: the four interpolation chains
// are data-independent, so their floor/load/lerp latencies overlap
// instead of serialising on the accumulator. The exact form reproduces
// the naive arithmetic bit-for-bit and is what the iterative solvers
// use, where per-iteration drift would amplify.
//
// dTab/invD, when non-nil, are the plan's per-angle detector steps
// Δ = dx·cosθ·ncols/2 and reciprocals, with every |Δ| ≤ 1 guaranteed by
// the caller. They enable the incremental interior walk: within the
// span of a row where fc provably stays inside (0, lastCol) — located
// conservatively from Δ's reciprocal, with the leftovers handed to the
// exact multiply-form predicate — the per-sample floor/convert/range
// checks collapse to one addition and a carry adjust. The walk's
// accumulated rounding (≲1e-13) only perturbs the interpolation point
// of a continuous piecewise-linear function, never an include/exclude
// decision, so results stay within the plan's 1e-12 equivalence bound.
//
//perf:hot
func backProjectKernel(dst *vol.Image, s *Sinogram, cosT, sinT, xs []float64, lo, hi []int, scale float64, affine bool, dTab, invD []float64) {
	n := dst.W
	pix := dst.Pix
	for i := range pix {
		pix[i] = 0
	}
	ncolsF := float64(s.NCols)
	halfC := ncolsF / 2
	dx := 2.0 / float64(n) // pixel pitch in object units
	lastCol := s.NCols - 1
	lastColF := float64(lastCol)
	nang := len(cosT)
	for py := 0; py < n; py++ {
		l, h := lo[py], hi[py]
		if l >= h {
			continue
		}
		y := xs[py]
		out := pix[py*n : (py+1)*n]
		if affine {
			x0 := xs[l]
			row := out[l:h]
			m := len(row)
			ncols := s.NCols
			a := 0
			for ; a+3 < nang; a += 4 {
				src0 := s.Data[a*ncols : (a+1)*ncols]
				src1 := s.Data[(a+1)*ncols : (a+2)*ncols]
				src2 := s.Data[(a+2)*ncols : (a+3)*ncols]
				src3 := s.Data[(a+3)*ncols : (a+4)*ncols]
				// fc(px) = (x·ct + y·st + 1)·ncols/2 − 0.5 with
				// x = xs[l] + (px−l)·dx.
				fc0 := (x0*cosT[a]+y*sinT[a]+1)*halfC - 0.5
				fc1 := (x0*cosT[a+1]+y*sinT[a+1]+1)*halfC - 0.5
				fc2 := (x0*cosT[a+2]+y*sinT[a+2]+1)*halfC - 0.5
				fc3 := (x0*cosT[a+3]+y*sinT[a+3]+1)*halfC - 0.5
				var d0, d1, d2, d3 float64
				if dTab != nil {
					d0, d1, d2, d3 = dTab[a], dTab[a+1], dTab[a+2], dTab[a+3]
				} else {
					d0 = dx * cosT[a] * halfC
					d1 = dx * cosT[a+1] * halfC
					d2 = dx * cosT[a+2] * halfC
					d3 = dx * cosT[a+3] * halfC
				}
				if dTab == nil {
					affineQuad(row, 0, m, src0, src1, src2, src3,
						fc0, fc1, fc2, fc3, d0, d1, d2, d3, lastCol, lastColF)
					continue
				}
				// Interior where all four chains provably stay inside
				// the detector; the conservative estimate hands edge
				// pixels to the exact predicate in affineSpan.
				jLo, jHi := 0, m
				lo0, hi0 := stepSpan(fc0, d0, invD[a], m, lastColF)
				lo1, hi1 := stepSpan(fc1, d1, invD[a+1], m, lastColF)
				lo2, hi2 := stepSpan(fc2, d2, invD[a+2], m, lastColF)
				lo3, hi3 := stepSpan(fc3, d3, invD[a+3], m, lastColF)
				jLo = max4(lo0, lo1, lo2, lo3)
				jHi = min4(hi0, hi1, hi2, hi3)
				if jHi < jLo {
					jLo, jHi = 0, 0
				}
				if jLo > 0 || jHi < m {
					affineSpan(row, 0, jLo, src0, fc0, d0, lastCol, lastColF)
					affineSpan(row, 0, jLo, src1, fc1, d1, lastCol, lastColF)
					affineSpan(row, 0, jLo, src2, fc2, d2, lastCol, lastColF)
					affineSpan(row, 0, jLo, src3, fc3, d3, lastCol, lastColF)
					affineSpan(row, jHi, m, src0, fc0, d0, lastCol, lastColF)
					affineSpan(row, jHi, m, src1, fc1, d1, lastCol, lastColF)
					affineSpan(row, jHi, m, src2, fc2, d2, lastCol, lastColF)
					affineSpan(row, jHi, m, src3, fc3, d3, lastCol, lastColF)
				}
				if jLo >= jHi {
					continue
				}
				f0 := fc0 + float64(jLo)*d0
				f1 := fc1 + float64(jLo)*d1
				f2 := fc2 + float64(jLo)*d2
				f3 := fc3 + float64(jLo)*d3
				fl0, fl1 := math.Floor(f0), math.Floor(f1)
				fl2, fl3 := math.Floor(f2), math.Floor(f3)
				c0, c1, c2, c3 := int(fl0), int(fl1), int(fl2), int(fl3)
				fr0, fr1, fr2, fr3 := f0-fl0, f1-fl1, f2-fl2, f3-fl3
				for j := jLo; j < jHi; j++ {
					v01 := src0[c0] + fr0*(src0[c0+1]-src0[c0])
					v01 += src1[c1] + fr1*(src1[c1+1]-src1[c1])
					v23 := src2[c2] + fr2*(src2[c2+1]-src2[c2])
					v23 += src3[c3] + fr3*(src3[c3+1]-src3[c3])
					row[j] += v01 + v23
					fr0 += d0
					if fr0 >= 1 {
						fr0--
						c0++
					} else if fr0 < 0 {
						fr0++
						c0--
					}
					fr1 += d1
					if fr1 >= 1 {
						fr1--
						c1++
					} else if fr1 < 0 {
						fr1++
						c1--
					}
					fr2 += d2
					if fr2 >= 1 {
						fr2--
						c2++
					} else if fr2 < 0 {
						fr2++
						c2--
					}
					fr3 += d3
					if fr3 >= 1 {
						fr3--
						c3++
					} else if fr3 < 0 {
						fr3++
						c3--
					}
				}
			}
			for ; a < nang; a++ {
				ct, st := cosT[a], sinT[a]
				src := s.Data[a*ncols : (a+1)*ncols]
				fc0 := (x0*ct+y*st+1)*halfC - 0.5
				dfc := dx * ct * halfC
				if dTab != nil {
					dfc = dTab[a]
				}
				affineSpan(row, 0, m, src, fc0, dfc, lastCol, lastColF)
			}
			continue
		}
		for a := 0; a < nang; a++ {
			ct, st := cosT[a], sinT[a]
			src := s.Data[a*s.NCols : (a+1)*s.NCols]
			for px := l; px < h; px++ {
				sc := xs[px]*ct + y*st
				// Detector column with centers at -1+(2c+1)/ncols.
				fc := (sc+1)/2*ncolsF - 0.5
				c0 := int(math.Floor(fc))
				if c0 < 0 || c0 >= lastCol {
					if c0 == lastCol && fc <= lastColF {
						out[px] += src[c0]
					}
					continue
				}
				f := fc - float64(c0)
				out[px] += src[c0]*(1-f) + src[c0+1]*f
			}
		}
	}
	for i := range pix {
		pix[i] *= scale
	}
}

// affineQuad accumulates four angles into row[j0:j1) with the exact
// multiply-form detector coordinate and the full naive include/exclude
// predicate per sample — the fallback when an incremental walk is not
// licensed (some |Δ| > 1, i.e. reconstruction grid coarser than the
// detector).
func affineQuad(row []float64, j0, j1 int, src0, src1, src2, src3 []float64,
	fc0, fc1, fc2, fc3, d0, d1, d2, d3 float64, lastCol int, lastColF float64) {
	kf := float64(j0)
	for j := j0; j < j1; j++ {
		f0 := fc0 + kf*d0
		f1 := fc1 + kf*d1
		f2 := fc2 + kf*d2
		f3 := fc3 + kf*d3
		kf++
		var v01, v23 float64
		fl := math.Floor(f0)
		c := int(fl)
		if c >= 0 && c < len(src0)-1 {
			fr := f0 - fl
			v01 = src0[c] + fr*(src0[c+1]-src0[c])
		} else if c == lastCol && f0 <= lastColF {
			v01 = src0[lastCol]
		}
		fl = math.Floor(f1)
		c = int(fl)
		if c >= 0 && c < len(src1)-1 {
			fr := f1 - fl
			v01 += src1[c] + fr*(src1[c+1]-src1[c])
		} else if c == lastCol && f1 <= lastColF {
			v01 += src1[lastCol]
		}
		fl = math.Floor(f2)
		c = int(fl)
		if c >= 0 && c < len(src2)-1 {
			fr := f2 - fl
			v23 = src2[c] + fr*(src2[c+1]-src2[c])
		} else if c == lastCol && f2 <= lastColF {
			v23 = src2[lastCol]
		}
		fl = math.Floor(f3)
		c = int(fl)
		if c >= 0 && c < len(src3)-1 {
			fr := f3 - fl
			v23 += src3[c] + fr*(src3[c+1]-src3[c])
		} else if c == lastCol && f3 <= lastColF {
			v23 += src3[lastCol]
		}
		row[j] += v01 + v23
	}
}

// affineSpan accumulates one angle into row[j0:j1) with the exact
// multiply-form coordinate and the full naive predicate — used for the
// edge pixels around an incremental interior and for tail angles left
// over by the four-wide blocking.
func affineSpan(row []float64, j0, j1 int, src []float64, fc, d float64, lastCol int, lastColF float64) {
	kf := float64(j0)
	for j := j0; j < j1; j++ {
		f := fc + kf*d
		kf++
		fl := math.Floor(f)
		c := int(fl)
		if c >= 0 && c < len(src)-1 {
			fr := f - fl
			row[j] += src[c] + fr*(src[c+1]-src[c])
		} else if c == lastCol && f <= lastColF {
			row[j] += src[lastCol]
		}
	}
}

// stepSpan conservatively bounds the index range [lo, hi) within [0, m)
// where fc + j·d stays strictly inside (0, lastColF), with at least
// stepEps clearance. The two-sample margin over the analytic crossing
// absorbs the reciprocal-multiply rounding, so every index returned is
// guaranteed interior; indices wrongly excluded just fall back to the
// exact predicate and cost a little speed, never correctness.
func stepSpan(fc, d, inv float64, m int, lastColF float64) (int, int) {
	const stepEps = 1e-9
	if d == 0 {
		if fc >= stepEps && fc <= lastColF-stepEps {
			return 0, m
		}
		return 0, 0
	}
	t0 := (stepEps - fc) * inv
	t1 := (lastColF - stepEps - fc) * inv
	if d < 0 {
		t0, t1 = t1, t0
	}
	// t0/t1 now bracket the admissible j interval from below/above.
	lo := 0
	if t0 > 0 {
		if t0 >= float64(m) {
			return 0, 0
		}
		lo = int(t0) + 2
	}
	hi := m
	if t1 < float64(m) {
		if t1 <= 0 {
			return 0, 0
		}
		hi = int(t1) - 1
	}
	if lo >= hi {
		return 0, 0
	}
	return lo, hi
}

func max4(a, b, c, d int) int {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	if d > a {
		a = d
	}
	return a
}

func min4(a, b, c, d int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	if d < a {
		a = d
	}
	return a
}

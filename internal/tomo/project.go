package tomo

import (
	"math"

	"repro/internal/vol"
)

// Project computes the parallel-beam Radon transform of im for the given
// angles, producing a sinogram with ncols detector columns. Rays are
// integrated by stepping through the unit square with bilinear sampling at
// half-pixel steps.
func Project(im *vol.Image, theta []float64, ncols int) *Sinogram {
	s := NewSinogram(theta, ncols)
	n := im.W
	step := 1.0 / float64(n) // half a pixel in [-1,1] units
	tMax := math.Sqrt2
	nSteps := int(2 * tMax / step)
	for a, th := range theta {
		ct, st := math.Cos(th), math.Sin(th)
		row := s.Row(a)
		for c := 0; c < ncols; c++ {
			sc := -1 + (2*float64(c)+1)/float64(ncols)
			var sum float64
			for k := 0; k <= nSteps; k++ {
				t := -tMax + float64(k)*step
				// Ray point in object coordinates.
				x := sc*ct - t*st
				y := sc*st + t*ct
				if x < -1 || x > 1 || y < -1 || y > 1 {
					continue
				}
				// Map to pixel coordinates (pixel centers at
				// -1+(2i+1)/n).
				px := (x+1)/2*float64(n) - 0.5
				py := (y+1)/2*float64(im.H) - 0.5
				sum += im.Bilinear(px, py)
			}
			row[c] = sum * step
		}
	}
	return s
}

// ProjectVolume forward projects every slice of v, assembling the full
// angle-major projection set the detector would emit. Each volume slice z
// becomes detector row z.
func ProjectVolume(v *vol.Volume, theta []float64, ncols int) *ProjectionSet {
	ps := NewProjectionSet(theta, v.D, ncols)
	for z := 0; z < v.D; z++ {
		sino := Project(v.Slice(z), theta, ncols)
		for a := 0; a < ps.NAngles; a++ {
			copy(ps.Data[(a*ps.NRows+z)*ps.NCols:(a*ps.NRows+z)*ps.NCols+ps.NCols], sino.Row(a))
		}
	}
	return ps
}

// BackProject computes the unfiltered adjoint of Project onto an n×n image:
// each pixel accumulates the linearly interpolated detector sample at
// s = x·cosθ + y·sinθ for every angle, scaled by π/NAngles. It is the
// smoothing operator FBP sharpens with the ramp filter, and the transpose
// operator the iterative solvers use.
func BackProject(s *Sinogram, n int) *vol.Image {
	im := vol.NewImage(n, n)
	scale := math.Pi / float64(s.NAngles)
	cos := make([]float64, s.NAngles)
	sin := make([]float64, s.NAngles)
	for a, th := range s.Theta {
		cos[a] = math.Cos(th)
		sin[a] = math.Sin(th)
	}
	for py := 0; py < n; py++ {
		y := -1 + (2*float64(py)+1)/float64(n)
		for px := 0; px < n; px++ {
			x := -1 + (2*float64(px)+1)/float64(n)
			if x*x+y*y > 1 {
				continue // outside the reconstruction circle
			}
			var acc float64
			for a := 0; a < s.NAngles; a++ {
				sc := x*cos[a] + y*sin[a]
				// Detector column with centers at -1+(2c+1)/ncols.
				fc := (sc+1)/2*float64(s.NCols) - 0.5
				c0 := int(math.Floor(fc))
				if c0 < 0 || c0 >= s.NCols-1 {
					if c0 == s.NCols-1 && fc <= float64(s.NCols-1) {
						acc += s.Row(a)[c0]
					}
					continue
				}
				f := fc - float64(c0)
				row := s.Row(a)
				acc += row[c0]*(1-f) + row[c0+1]*f
			}
			im.Set(px, py, acc*scale)
		}
	}
	return im
}

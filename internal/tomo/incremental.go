package tomo

import (
	"fmt"
	"math"

	"repro/internal/fft"
	"repro/internal/vol"
)

// IncrementalRecon reconstructs a slice by filtered back projection one
// projection at a time: each arriving detector row is ramp-filtered and
// backprojected into a running accumulator the moment the streaming
// service delivers it, so after the final frame only a scale pass remains
// instead of a full reconstruction. Fed every angle of a scan in
// acquisition order, FinalizeInto reproduces the batch FBP's naive
// reference arithmetic exactly: the per-row filter is the same padded
// convolution, the backprojection uses the exact per-pixel detector
// coordinate, and each pixel accumulates its angles in the same order the
// reference kernel's inner loop does.
//
// Unlike ReconPlan, an IncrementalRecon is keyed on geometry alone
// (detector width, output size, filter) — the angle set is not known up
// front in a streaming scan, so trig is evaluated per delivered angle and
// the π/n scale is applied at finalize time from the count actually
// received. It is a mutable accumulator: use one per goroutine.
type IncrementalRecon struct {
	NCols  int
	Size   int
	Filter Filter

	fm   int          // padded filter length
	fp   *fft.Plan    // FFT plan for fm
	taps []complex128 // ramp-filter spectrum
	xs   []float64    // pixel-center coordinates
	loPx []int        // per row: first pixel inside the circle
	hiPx []int        // per row: one past the last inside pixel
	cbuf []complex128 // padded row staging for the filter
	frow []float64    // filtered detector row
	acc  []float64    // unscaled backprojection accumulator (Size×Size)
	n    int          // angles accumulated since the last Reset
}

// NewIncrementalRecon builds an incremental FBP accumulator for sinogram
// rows of ncols detector columns, reconstructing onto a size×size grid
// (size 0 means ncols) with the given ramp window. All buffers are
// allocated here; Accumulate is allocation-free.
func NewIncrementalRecon(ncols, size int, filter Filter) (*IncrementalRecon, error) {
	if ncols <= 0 {
		return nil, fmt.Errorf("tomo: incremental recon needs ≥1 detector column (got %d)", ncols)
	}
	if size == 0 {
		size = ncols
	}
	if size < 0 {
		return nil, fmt.Errorf("tomo: incremental recon size %d is negative", size)
	}
	ir := &IncrementalRecon{
		NCols:  ncols,
		Size:   size,
		Filter: filter,
		fm:     fft.NextPow2(2 * ncols),
	}
	ir.fp = fft.PlanFor(ir.fm)
	h := rampFilter(ir.fm, 2.0/float64(ncols), filter)
	ir.taps = make([]complex128, ir.fm)
	for i, v := range h {
		ir.taps[i] = complex(v, 0)
	}
	ir.xs = pixelCenters(size)
	ir.loPx, ir.hiPx = circleBounds(ir.xs)
	ir.cbuf = make([]complex128, ir.fm)
	ir.frow = make([]float64, ncols)
	ir.acc = make([]float64, size*size)
	return ir, nil
}

// Reset clears the accumulator for the next scan, keeping every buffer.
func (ir *IncrementalRecon) Reset() {
	for i := range ir.acc {
		ir.acc[i] = 0
	}
	ir.n = 0
}

// Angles reports how many projections have been accumulated since the
// last Reset.
func (ir *IncrementalRecon) Angles() int { return ir.n }

// Accumulate filters one detector row (taken at projection angle theta
// radians) and backprojects it into the accumulator. len(row) must equal
// NCols. Rows must arrive in acquisition-angle order for bit-parity with
// the batch path; any order yields the same reconstruction up to rounding.
// Allocation-free.
//
//perf:hot
func (ir *IncrementalRecon) Accumulate(theta float64, row []float64) {
	nc := ir.NCols
	if len(row) != nc {
		ir.badRow(len(row))
	}
	cbuf := ir.cbuf
	for i := 0; i < nc; i++ {
		cbuf[i] = complex(row[i], 0)
	}
	for i := nc; i < ir.fm; i++ {
		cbuf[i] = 0
	}
	ir.fp.ConvolveInto(cbuf, ir.taps)
	src := ir.frow
	for i := 0; i < nc; i++ {
		src[i] = real(cbuf[i])
	}

	ct, st := math.Cos(theta), math.Sin(theta)
	n := ir.Size
	ncolsF := float64(nc)
	lastCol := nc - 1
	lastColF := float64(lastCol)
	xs := ir.xs
	acc := ir.acc
	for py := 0; py < n; py++ {
		l, h := ir.loPx[py], ir.hiPx[py]
		if l >= h {
			continue
		}
		y := xs[py]
		out := acc[py*n : (py+1)*n]
		for px := l; px < h; px++ {
			sc := xs[px]*ct + y*st
			// Exact per-pixel detector coordinate — the same expression,
			// in the same order, as the reference backprojector.
			fc := (sc+1)/2*ncolsF - 0.5
			c0 := int(math.Floor(fc))
			if c0 < 0 || c0 >= lastCol {
				if c0 == lastCol && fc <= lastColF {
					out[px] += src[c0]
				}
				continue
			}
			f := fc - float64(c0)
			out[px] += src[c0]*(1-f) + src[c0+1]*f
		}
	}
	ir.n++
}

// badRow is the cold panic path of Accumulate, kept out of the hot
// function so its formatting does not allocate there.
func (ir *IncrementalRecon) badRow(got int) {
	panic(fmt.Sprintf("tomo: incremental row has %d cols, plan has %d", got, ir.NCols))
}

// FinalizeInto scales the accumulator by π/n (n = angles received) into
// dst, which must be Size×Size. The accumulator is left intact, so a
// preview can be finalized mid-scan and again at end of scan.
func (ir *IncrementalRecon) FinalizeInto(dst *vol.Image) error {
	if dst.W != ir.Size || dst.H != ir.Size {
		return fmt.Errorf("tomo: incremental destination %d×%d does not match size %d", dst.W, dst.H, ir.Size)
	}
	if ir.n == 0 {
		for i := range dst.Pix {
			dst.Pix[i] = 0
		}
		return nil
	}
	scale := math.Pi / float64(ir.n)
	for i, v := range ir.acc {
		dst.Pix[i] = v * scale
	}
	return nil
}

// IncrementalPreview maintains the three orthogonal preview slices of a
// streaming scan incrementally: a full-resolution IncrementalRecon for
// the central XY slice plus one reduced-resolution accumulator per
// detector row for the XZ/YZ cross sections — the same slice/size choices
// QuickPreview makes, but paid for frame by frame as projections arrive
// instead of all at once after the last one.
type IncrementalPreview struct {
	NRows     int
	NCols     int
	FullSize  int // XY slice resolution
	SmallSize int // XZ/YZ lateral resolution

	centerRow int
	full      *IncrementalRecon
	rows      []*IncrementalRecon
	tmp       *vol.Image // SmallSize² finalize scratch
}

// NewIncrementalPreview builds the incremental counterpart of
// QuickPreview for scans of nrows×ncols frames. size is the XY output
// side (0 = ncols); the cross-section resolution is derived exactly as
// QuickPreview derives it.
func NewIncrementalPreview(nrows, ncols, size int, filter Filter) (*IncrementalPreview, error) {
	if nrows <= 0 {
		return nil, fmt.Errorf("tomo: incremental preview needs ≥1 detector row (got %d)", nrows)
	}
	if size == 0 {
		size = ncols
	}
	small := size / 4
	if small < 16 {
		small = min(16, size)
	}
	ip := &IncrementalPreview{
		NRows:     nrows,
		NCols:     ncols,
		FullSize:  size,
		SmallSize: small,
		centerRow: nrows / 2,
		rows:      make([]*IncrementalRecon, nrows),
	}
	var err error
	if ip.full, err = NewIncrementalRecon(ncols, size, filter); err != nil {
		return nil, err
	}
	for r := range ip.rows {
		if ip.rows[r], err = NewIncrementalRecon(ncols, small, filter); err != nil {
			return nil, err
		}
	}
	ip.tmp = vol.NewImage(small, small)
	return ip, nil
}

// Reset clears every accumulator for the next scan.
func (ip *IncrementalPreview) Reset() {
	ip.full.Reset()
	for _, ir := range ip.rows {
		ir.Reset()
	}
}

// Angles reports how many projections have been accumulated.
func (ip *IncrementalPreview) Angles() int { return ip.full.Angles() }

// AddProjection folds one nrows×ncols projection frame (row-major line
// integrals, post normalization and -log) taken at angle theta into every
// preview accumulator. Allocation-free.
//
//perf:hot
func (ip *IncrementalPreview) AddProjection(theta float64, frame []float64) {
	if len(frame) != ip.NRows*ip.NCols {
		ip.badFrame(len(frame))
	}
	nc := ip.NCols
	ip.full.Accumulate(theta, frame[ip.centerRow*nc:(ip.centerRow+1)*nc])
	for r, ir := range ip.rows {
		ir.Accumulate(theta, frame[r*nc:(r+1)*nc])
	}
}

// badFrame is the cold panic path of AddProjection, kept out of the hot
// function so its formatting does not allocate there.
func (ip *IncrementalPreview) badFrame(got int) {
	panic(fmt.Sprintf("tomo: incremental frame has %d samples, want %d×%d", got, ip.NRows, ip.NCols))
}

// Finalize scales the accumulators into the three preview slices: the
// central XY slice at full resolution, and XZ/YZ cross sections assembled
// from the central row/column of each reduced-size row reconstruction —
// the identical assembly QuickPreview performs.
func (ip *IncrementalPreview) Finalize() (xy, xz, yz *vol.Image, err error) {
	xy = vol.NewImage(ip.FullSize, ip.FullSize)
	if err := ip.full.FinalizeInto(xy); err != nil {
		return nil, nil, nil, err
	}
	m := ip.SmallSize
	xz = vol.NewImage(m, ip.NRows)
	yz = vol.NewImage(m, ip.NRows)
	for r, ir := range ip.rows {
		if err := ir.FinalizeInto(ip.tmp); err != nil {
			return nil, nil, nil, err
		}
		for i := 0; i < m; i++ {
			xz.Set(i, r, ip.tmp.At(i, m/2))
			yz.Set(i, r, ip.tmp.At(m/2, i))
		}
	}
	return xy, xz, yz, nil
}

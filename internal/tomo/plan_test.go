package tomo

// Golden plan-vs-naive equivalence suite. The ref* functions below are
// verbatim copies of the pre-plan implementations (Project, BackProject,
// FilterSinogram, FBP, Gridrec, SIRT, SART); both sides share the same
// fft package, so any divergence isolates the plan engine's restructuring
// (cached taps, row-pair filtering, affine detector striding, scratch
// reuse). The acceptance bound is 1e-12 across filters, odd/even sizes,
// and COR shifts.

import (
	"math"
	"testing"

	"repro/internal/fft"
	"repro/internal/vol"
)

// refProject is the pre-plan serial forward projector.
func refProject(im *vol.Image, theta []float64, ncols int) *Sinogram {
	s := NewSinogram(theta, ncols)
	n := im.W
	step := 1.0 / float64(n)
	tMax := math.Sqrt2
	nSteps := int(2 * tMax / step)
	for a, th := range theta {
		ct, st := math.Cos(th), math.Sin(th)
		row := s.Row(a)
		for c := 0; c < ncols; c++ {
			sc := -1 + (2*float64(c)+1)/float64(ncols)
			var sum float64
			for k := 0; k <= nSteps; k++ {
				t := -tMax + float64(k)*step
				x := sc*ct - t*st
				y := sc*st + t*ct
				if x < -1 || x > 1 || y < -1 || y > 1 {
					continue
				}
				px := (x+1)/2*float64(n) - 0.5
				py := (y+1)/2*float64(im.H) - 0.5
				sum += im.Bilinear(px, py)
			}
			row[c] = sum * step
		}
	}
	return s
}

// refBackProject is the pre-plan pixel-outer backprojector.
func refBackProject(s *Sinogram, n int) *vol.Image {
	im := vol.NewImage(n, n)
	scale := math.Pi / float64(s.NAngles)
	cos := make([]float64, s.NAngles)
	sin := make([]float64, s.NAngles)
	for a, th := range s.Theta {
		cos[a] = math.Cos(th)
		sin[a] = math.Sin(th)
	}
	for py := 0; py < n; py++ {
		y := -1 + (2*float64(py)+1)/float64(n)
		for px := 0; px < n; px++ {
			x := -1 + (2*float64(px)+1)/float64(n)
			if x*x+y*y > 1 {
				continue
			}
			var acc float64
			for a := 0; a < s.NAngles; a++ {
				sc := x*cos[a] + y*sin[a]
				fc := (sc+1)/2*float64(s.NCols) - 0.5
				c0 := int(math.Floor(fc))
				if c0 < 0 || c0 >= s.NCols-1 {
					if c0 == s.NCols-1 && fc <= float64(s.NCols-1) {
						acc += s.Row(a)[c0]
					}
					continue
				}
				f := fc - float64(c0)
				row := s.Row(a)
				acc += row[c0]*(1-f) + row[c0+1]*f
			}
			im.Set(px, py, acc*scale)
		}
	}
	return im
}

// refFilterSinogram is the pre-plan row-at-a-time ramp filter.
func refFilterSinogram(s *Sinogram, f Filter) *Sinogram {
	out := s.Clone()
	m := fft.NextPow2(2 * s.NCols)
	tau := 2.0 / float64(s.NCols)
	h := rampFilter(m, tau, f)
	buf := make([]complex128, m)
	for a := 0; a < s.NAngles; a++ {
		row := out.Row(a)
		for i := range buf {
			buf[i] = 0
		}
		for i, v := range row {
			buf[i] = complex(v, 0)
		}
		fft.Forward(buf)
		for i := range buf {
			buf[i] *= complex(h[i], 0)
		}
		fft.Inverse(buf)
		for i := range row {
			row[i] = real(buf[i])
		}
	}
	return out
}

func refFBP(s *Sinogram, f Filter, n int) *vol.Image {
	if n == 0 {
		n = s.NCols
	}
	return refBackProject(refFilterSinogram(s, f), n)
}

// refGridrec is the pre-plan direct Fourier reconstruction.
func refGridrec(s *Sinogram, size int) *vol.Image {
	n := size
	if n == 0 {
		n = s.NCols
	}
	m := fft.NextPow2(2 * n)
	grid := make([]complex128, m*m)
	wsum := make([]float64, m*m)
	buf := make([]complex128, m)
	tau := 2.0 / float64(s.NCols)
	for a := 0; a < s.NAngles; a++ {
		row := s.Row(a)
		for i := range buf {
			buf[i] = 0
		}
		for c, v := range row {
			off := c - s.NCols/2
			idx := ((off % m) + m) % m
			buf[idx] = complex(v, 0)
		}
		fft.Forward(buf)
		for i := range buf {
			k := float64(fft.FreqIndex(i, m))
			ph := math.Pi * k / float64(m)
			buf[i] *= complex(math.Cos(ph), -math.Sin(ph))
		}
		ct := math.Cos(s.Theta[a])
		st := math.Sin(s.Theta[a])
		for i := 0; i < m; i++ {
			k := fft.FreqIndex(i, m)
			kx := float64(k) * ct
			ky := float64(k) * st
			x0 := math.Floor(kx)
			y0 := math.Floor(ky)
			fx := kx - x0
			fy := ky - y0
			v := buf[i]
			for dy := 0; dy <= 1; dy++ {
				for dx := 0; dx <= 1; dx++ {
					w := (1 - math.Abs(float64(dx)-fx)) * (1 - math.Abs(float64(dy)-fy))
					if w <= 0 {
						continue
					}
					xi := ((int(x0)+dx)%m + m) % m
					yi := ((int(y0)+dy)%m + m) % m
					grid[yi*m+xi] += v * complex(w, 0)
					wsum[yi*m+xi] += w
				}
			}
		}
	}
	for i := range grid {
		if wsum[i] > 1e-12 {
			grid[i] /= complex(wsum[i], 0)
		}
	}
	fft.Inverse2D(grid, m)
	out := vol.NewImage(n, n)
	cellsPerPixel := (2.0 / float64(n)) / tau
	for py := 0; py < n; py++ {
		for px := 0; px < n; px++ {
			ox := (float64(px) - float64(n)/2 + 0.5) * cellsPerPixel
			oy := (float64(py) - float64(n)/2 + 0.5) * cellsPerPixel
			out.Set(px, py, gridBilinear(grid, m, ox, oy))
		}
	}
	var massSino float64
	for c := 0; c < s.NCols; c++ {
		massSino += s.Row(0)[c]
	}
	for a := 1; a < s.NAngles; a++ {
		row := s.Row(a)
		var mrow float64
		for _, v := range row {
			mrow += v
		}
		massSino += mrow
	}
	massSino = massSino / float64(s.NAngles) * tau
	var massImg float64
	for _, v := range out.Pix {
		massImg += v
	}
	pix := 2.0 / float64(n)
	massImg *= pix * pix
	if math.Abs(massImg) > 1e-12 {
		k := massSino / massImg
		for i := range out.Pix {
			out.Pix[i] *= k
		}
	}
	return out
}

// refSIRT is the pre-plan iterative solver (ReconstructSlice defaults:
// positivity on, relaxation 1).
func refSIRT(s *Sinogram, iters, n int) *vol.Image {
	ones := vol.NewImage(n, n)
	ones.Fill(1)
	rowSum := refProject(ones, s.Theta, s.NCols)
	onesSino := NewSinogram(s.Theta, s.NCols)
	for i := range onesSino.Data {
		onesSino.Data[i] = 1
	}
	colSum := refBackProject(onesSino, n)
	x := vol.NewImage(n, n)
	for it := 0; it < iters; it++ {
		ax := refProject(x, s.Theta, s.NCols)
		res := NewSinogram(s.Theta, s.NCols)
		for i := range res.Data {
			r := s.Data[i] - ax.Data[i]
			if w := rowSum.Data[i]; w > 1e-9 {
				r /= w
			} else {
				r = 0
			}
			res.Data[i] = r
		}
		upd := refBackProject(res, n)
		for i := range x.Pix {
			c := colSum.Pix[i]
			if c <= 1e-9 {
				continue
			}
			x.Pix[i] += upd.Pix[i] / c
			if x.Pix[i] < 0 {
				x.Pix[i] = 0
			}
		}
	}
	return x
}

// refSART is the pre-plan block-iterative solver (positivity on,
// relaxation 0.5).
func refSART(s *Sinogram, iters, n int) *vol.Image {
	relax := 0.5
	ones := vol.NewImage(n, n)
	ones.Fill(1)
	rowSum := refProject(ones, s.Theta, s.NCols)
	x := vol.NewImage(n, n)
	single := make([]float64, 1)
	for it := 0; it < iters; it++ {
		for a := 0; a < s.NAngles; a++ {
			theta := single[:1]
			theta[0] = s.Theta[a]
			ax := refProject(x, theta, s.NCols)
			res := NewSinogram(theta, s.NCols)
			brow := s.Row(a)
			wrow := rowSum.Row(a)
			for c := 0; c < s.NCols; c++ {
				r := brow[c] - ax.Data[c]
				if wrow[c] > 1e-9 {
					r /= wrow[c]
				} else {
					r = 0
				}
				res.Data[c] = r
			}
			upd := refBackProject(res, n)
			scale := relax / math.Pi
			for i := range x.Pix {
				x.Pix[i] += scale * upd.Pix[i]
				if x.Pix[i] < 0 {
					x.Pix[i] = 0
				}
			}
		}
	}
	return x
}

// testSinogram builds a deterministic, smooth, non-symmetric sinogram by
// forward projecting an off-center two-blob phantom — realistic data for
// the equivalence comparisons without importing the phantom package.
func testSinogram(nangles, ncols int) *Sinogram {
	n := ncols
	im := vol.NewImage(n, n)
	for py := 0; py < n; py++ {
		y := -1 + (2*float64(py)+1)/float64(n)
		for px := 0; px < n; px++ {
			x := -1 + (2*float64(px)+1)/float64(n)
			v := 0.0
			if dx, dy := x-0.25, y+0.1; dx*dx/0.16+dy*dy/0.36 < 1 {
				v += 1
			}
			if dx, dy := x+0.3, y-0.2; dx*dx+dy*dy < 0.04 {
				v += 0.5
			}
			im.Set(px, py, v)
		}
	}
	return refProject(im, UniformAngles(nangles), ncols)
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestPlanFBPMatchesNaive(t *testing.T) {
	geoms := []struct{ nangles, ncols, size int }{
		{40, 32, 32}, // even everything; |Δ| ≤ 1 → incremental interior walk
		{17, 33, 21}, // odd angles (lone filter row), odd cols, odd size
		{64, 32, 8},  // downsampled output; |Δ| > 1 → multiply-form fallback
		{33, 24, 48}, // upsampled output, odd angles: interior walk + tail angles
	}
	filters := []Filter{RamLak, SheppLoganFilter, Cosine, Hamming, Hann}
	shifts := []float64{0, 1.5, -0.75}
	for _, g := range geoms {
		s := testSinogram(g.nangles, g.ncols)
		for _, f := range filters {
			for _, cor := range shifts {
				got, err := ReconstructSlice(s, ReconOptions{
					Algorithm: AlgFBP, Filter: f, Size: g.size, CORShift: cor,
				})
				if err != nil {
					t.Fatalf("ReconstructSlice(%+v, %v, cor=%v): %v", g, f, cor, err)
				}
				ref := s
				if cor != 0 {
					ref = ShiftSinogram(s, cor)
				}
				want := refFBP(ref, f, g.size)
				if d := maxAbsDiff(got.Pix, want.Pix); d > 1e-12 {
					t.Errorf("fbp %dx%d size %d filter %v cor %v: max |Δ| = %g > 1e-12",
						g.nangles, g.ncols, g.size, f, cor, d)
				}
			}
		}
	}
}

func TestPlanGridrecMatchesNaive(t *testing.T) {
	geoms := []struct{ nangles, ncols, size int }{
		{48, 32, 32},
		{19, 33, 33}, // odd everything
		{64, 32, 16},
	}
	for _, g := range geoms {
		s := testSinogram(g.nangles, g.ncols)
		got, err := ReconstructSlice(s, ReconOptions{Algorithm: AlgGridrec, Size: g.size})
		if err != nil {
			t.Fatalf("gridrec %+v: %v", g, err)
		}
		want := refGridrec(s, g.size)
		if d := maxAbsDiff(got.Pix, want.Pix); d > 1e-12 {
			t.Errorf("gridrec %dx%d size %d: max |Δ| = %g > 1e-12",
				g.nangles, g.ncols, g.size, d)
		}
	}
}

func TestPlanSIRTMatchesNaive(t *testing.T) {
	s := testSinogram(24, 16)
	const iters, n = 10, 16
	got, err := ReconstructSlice(s, ReconOptions{Algorithm: AlgSIRT, Iterations: iters})
	if err != nil {
		t.Fatal(err)
	}
	want := refSIRT(s, iters, n)
	if d := maxAbsDiff(got.Pix, want.Pix); d > 1e-12 {
		t.Errorf("sirt: max |Δ| = %g > 1e-12", d)
	}
}

func TestPlanSARTMatchesNaive(t *testing.T) {
	s := testSinogram(24, 16)
	const iters, n = 2, 16
	got, err := ReconstructSlice(s, ReconOptions{Algorithm: AlgSART, Iterations: iters})
	if err != nil {
		t.Fatal(err)
	}
	want := refSART(s, iters, n)
	if d := maxAbsDiff(got.Pix, want.Pix); d > 1e-12 {
		t.Errorf("sart: max |Δ| = %g > 1e-12", d)
	}
}

func TestFilterSinogramMatchesNaive(t *testing.T) {
	for _, nangles := range []int{8, 9} { // even (all paired) and odd (lone row)
		s := testSinogram(nangles, 32)
		for _, f := range []Filter{RamLak, SheppLoganFilter, Cosine, Hamming, Hann} {
			got := FilterSinogram(s, f)
			want := refFilterSinogram(s, f)
			if d := maxAbsDiff(got.Data, want.Data); d > 1e-12 {
				t.Errorf("filter %v, %d angles: max |Δ| = %g > 1e-12", f, nangles, d)
			}
		}
	}
}

func TestBackProjectMatchesNaive(t *testing.T) {
	s := testSinogram(31, 24)
	for _, n := range []int{24, 17} {
		got := BackProject(s, n)
		want := refBackProject(s, n)
		if d := maxAbsDiff(got.Pix, want.Pix); d != 0 {
			t.Errorf("BackProject size %d: max |Δ| = %g, want bit-identical", n, d)
		}
	}
}

func TestProjectMatchesNaive(t *testing.T) {
	im := vol.NewImage(20, 20)
	for i := range im.Pix {
		im.Pix[i] = math.Sin(0.37 * float64(i))
	}
	theta := UniformAngles(13)
	got := Project(im, theta, 24)
	want := refProject(im, theta, 24)
	if d := maxAbsDiff(got.Data, want.Data); d != 0 {
		t.Errorf("Project: max |Δ| = %g, want bit-identical", d)
	}
}

func TestProjectVolumeMatchesPerSliceProject(t *testing.T) {
	const w, d, ncols = 16, 5, 20
	v := vol.NewVolume(w, w, d)
	for i := range v.Data {
		v.Data[i] = math.Cos(0.13 * float64(i))
	}
	theta := UniformAngles(11)
	ps := ProjectVolume(v, theta, ncols)
	for z := 0; z < d; z++ {
		want := refProject(v.Slice(z), theta, ncols)
		got := ps.SinogramForRow(z)
		if diff := maxAbsDiff(got.Data, want.Data); diff != 0 {
			t.Errorf("slice %d: max |Δ| = %g, want bit-identical", z, diff)
		}
	}
}

func TestReconstructIntoValidation(t *testing.T) {
	s := testSinogram(12, 16)
	p, err := PlanRecon(s.Theta, s.NCols, ReconOptions{Algorithm: AlgFBP})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ReconstructInto(vol.NewImage(8, 8), s, nil); err == nil {
		t.Error("size-mismatched destination accepted")
	}
	other := testSinogram(12, 20)
	if err := p.ReconstructInto(vol.NewImage(16, 16), other, nil); err == nil {
		t.Error("geometry-mismatched sinogram accepted")
	}
	if err := p.ReconstructInto(vol.NewImage(16, 16), s, nil); err != nil {
		t.Errorf("valid reconstruction rejected: %v", err)
	}
}

func TestPlanCacheReusesAndWithCORShares(t *testing.T) {
	theta := UniformAngles(12)
	opts := ReconOptions{Algorithm: AlgFBP, Filter: Hann, Size: 16}
	p1, err := PlanRecon(theta, 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PlanRecon(theta, 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("identical geometry did not return the cached plan")
	}
	opts.CORShift = 2.5
	p3, err := PlanRecon(theta, 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("COR-shifted plan must be a distinct derived value")
	}
	if p3.CORShift != 2.5 {
		t.Errorf("derived plan CORShift = %v, want 2.5", p3.CORShift)
	}
	if p3.pool != p1.pool {
		t.Error("WithCOR derivation must share the scratch pool")
	}
	if &p3.taps[0] != &p1.taps[0] {
		t.Error("WithCOR derivation must share the precomputed tables")
	}
}

// TestPlanSteadyStateZeroAlloc locks the contract the hot paths depend
// on: with a caller-held scratch, ReconstructInto performs zero heap
// allocations for every algorithm, including the COR-shifted FBP path.
func TestPlanSteadyStateZeroAlloc(t *testing.T) {
	cases := []struct {
		name string
		opts ReconOptions
	}{
		{"fbp", ReconOptions{Algorithm: AlgFBP, Filter: SheppLoganFilter}},
		{"fbp_cor", ReconOptions{Algorithm: AlgFBP, Filter: SheppLoganFilter, CORShift: 1.25}},
		{"gridrec", ReconOptions{Algorithm: AlgGridrec}},
		{"sirt", ReconOptions{Algorithm: AlgSIRT, Iterations: 2}},
		{"sart", ReconOptions{Algorithm: AlgSART, Iterations: 1}},
	}
	s := testSinogram(16, 16)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := PlanRecon(s.Theta, s.NCols, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			sc := p.NewScratch()
			dst := vol.NewImage(p.Size, p.Size)
			// AllocsPerRun's untimed warm-up run triggers the lazy
			// COR scratch allocation before counting starts.
			allocs := testing.AllocsPerRun(10, func() {
				if err := p.ReconstructInto(dst, s, sc); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("%s steady state: %v allocs/op, want 0", tc.name, allocs)
			}
		})
	}
}

// TestFilterScratchZeroAlloc pins the filter stage alone at zero allocs —
// it runs once per slice row-pair in the preview hot loop.
func TestFilterScratchZeroAlloc(t *testing.T) {
	s := testSinogram(16, 32)
	p, err := PlanRecon(s.Theta, s.NCols, ReconOptions{Algorithm: AlgFBP, Filter: Hann})
	if err != nil {
		t.Fatal(err)
	}
	sc := p.NewScratch()
	dst := NewSinogram(s.Theta, s.NCols)
	allocs := testing.AllocsPerRun(10, func() {
		p.filterInto(dst, s, sc.fbatch)
	})
	if allocs != 0 {
		t.Errorf("filterInto: %v allocs/op, want 0", allocs)
	}
}

// Micro-benchmarks for the two FBP stages, sized like the root
// BenchmarkReconAlgorithms case (128 angles × 64 cols → 64×64).
func BenchmarkFilterInto(b *testing.B) {
	s := testSinogram(128, 64)
	p, err := PlanRecon(s.Theta, s.NCols, ReconOptions{Algorithm: AlgFBP, Filter: SheppLoganFilter})
	if err != nil {
		b.Fatal(err)
	}
	sc := p.NewScratch()
	dst := NewSinogram(s.Theta, s.NCols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.filterInto(dst, s, sc.fbatch)
	}
}

func BenchmarkBackProjectKernel(b *testing.B) {
	s := testSinogram(128, 64)
	p, err := PlanRecon(s.Theta, s.NCols, ReconOptions{Algorithm: AlgFBP, Filter: SheppLoganFilter})
	if err != nil {
		b.Fatal(err)
	}
	dst := vol.NewImage(64, 64)
	for _, affine := range []bool{true, false} {
		name := "exact"
		if affine {
			name = "affine"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				backProjectKernel(dst, s, p.cosT, p.sinT, p.xs, p.loPx, p.hiPx, 1, affine, p.dTab, p.invD)
			}
		})
	}
}

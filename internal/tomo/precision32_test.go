package tomo

// Relaxed golden suite for the float32 kernel tier. The float64 tier keeps
// its 1e-12 plan-vs-naive equivalence (plan_test.go); the float32 tier is
// gated on RMSE against the float64 result of the same reconstruction —
// tight enough to catch a wrong kernel, loose enough to admit
// single-precision rounding.

import (
	"math"
	"testing"

	"repro/internal/vol"
)

func rmseOf(a, b []float64) float64 {
	var ss float64
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(a)))
}

func reconBoth(t *testing.T, s *Sinogram, opts ReconOptions) (f64, f32 *vol.Image) {
	t.Helper()
	f64im, err := ReconstructSlice(s, opts)
	if err != nil {
		t.Fatalf("float64 %+v: %v", opts, err)
	}
	opts.Precision = Float32
	f32im, err := ReconstructSlice(s, opts)
	if err != nil {
		t.Fatalf("float32 %+v: %v", opts, err)
	}
	return f64im, f32im
}

func TestFloat32FBPMatchesFloat64(t *testing.T) {
	geoms := []struct{ nangles, ncols, size int }{
		{40, 32, 32},
		{17, 33, 21}, // odd angles: lone filter row; odd size
		{64, 32, 8},  // downsampled output
	}
	for _, g := range geoms {
		s := testSinogram(g.nangles, g.ncols)
		for _, cor := range []float64{0, 1.5} {
			f64im, f32im := reconBoth(t, s, ReconOptions{
				Algorithm: AlgFBP, Filter: SheppLoganFilter, Size: g.size, CORShift: cor,
			})
			if d := rmseOf(f32im.Pix, f64im.Pix); d > 1e-5 {
				t.Errorf("fbp %dx%d size %d cor %v: RMSE(f32, f64) = %g > 1e-5",
					g.nangles, g.ncols, g.size, cor, d)
			}
		}
	}
}

func TestFloat32SIRTMatchesFloat64(t *testing.T) {
	s := testSinogram(24, 16)
	f64im, f32im := reconBoth(t, s, ReconOptions{Algorithm: AlgSIRT, Iterations: 10})
	if d := rmseOf(f32im.Pix, f64im.Pix); d > 1e-4 {
		t.Errorf("sirt10: RMSE(f32, f64) = %g > 1e-4", d)
	}
}

func TestFloat32SARTMatchesFloat64(t *testing.T) {
	s := testSinogram(24, 16)
	f64im, f32im := reconBoth(t, s, ReconOptions{Algorithm: AlgSART, Iterations: 2})
	if d := rmseOf(f32im.Pix, f64im.Pix); d > 1e-4 {
		t.Errorf("sart2: RMSE(f32, f64) = %g > 1e-4", d)
	}
}

// TestFloat32SIRT50BenchGeometry pins the acceptance bound of the
// BENCH_PR9 headline number at its exact geometry: 50 SIRT iterations on
// the 128×64 sinogram must land within 1e-3 RMSE of the float64 solver.
func TestFloat32SIRT50BenchGeometry(t *testing.T) {
	if testing.Short() {
		t.Skip("full 50-iteration solve; skipped in -short")
	}
	s := testSinogram(128, 64)
	f64im, f32im := reconBoth(t, s, ReconOptions{Algorithm: AlgSIRT, Iterations: 50})
	if d := rmseOf(f32im.Pix, f64im.Pix); d > 1e-3 {
		t.Errorf("sirt50 bench geometry: RMSE(f32, f64) = %g > 1e-3", d)
	}
}

func TestFloat32GridrecRejected(t *testing.T) {
	s := testSinogram(16, 16)
	if _, err := ReconstructSlice(s, ReconOptions{Algorithm: AlgGridrec, Precision: Float32}); err == nil {
		t.Error("gridrec accepted a float32 precision request")
	}
}

// TestFloat32PlanCacheKeyedOnPrecision guards against the two tiers
// colliding in the plan cache: same geometry, different precision must
// yield distinct plans, and each tier must keep returning its own cached
// instance.
func TestFloat32PlanCacheKeyedOnPrecision(t *testing.T) {
	theta := UniformAngles(12)
	opts := ReconOptions{Algorithm: AlgSIRT, Iterations: 3, Size: 16}
	p64, err := PlanRecon(theta, 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Precision = Float32
	p32, err := PlanRecon(theta, 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p64 == p32 {
		t.Fatal("float32 request returned the float64 plan")
	}
	if p64.Precision != Float64 || p32.Precision != Float32 {
		t.Fatalf("plan precisions = %v, %v", p64.Precision, p32.Precision)
	}
	again, err := PlanRecon(theta, 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	if again != p32 {
		t.Error("float32 plan was not cached")
	}
	opts.Precision = Float64
	if p, _ := PlanRecon(theta, 16, opts); p != p64 {
		t.Error("float64 plan was evicted by the float32 build")
	}
}

// TestScratchPoolReuseAcrossPrecisions checks that each tier's plan pool
// hands out scratches equipped for that tier — and that a scratch cycled
// through Put/Get still reconstructs correctly, i.e. pooling never mixes
// buffers across precisions.
func TestScratchPoolReuseAcrossPrecisions(t *testing.T) {
	s := testSinogram(16, 16)
	opts := ReconOptions{Algorithm: AlgSIRT, Iterations: 2}
	p64, err := PlanRecon(s.Theta, s.NCols, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Precision = Float32
	p32, err := PlanRecon(s.Theta, s.NCols, opts)
	if err != nil {
		t.Fatal(err)
	}

	sc64 := p64.GetScratch()
	sc32 := p32.GetScratch()
	if sc64.x32 != nil || sc64.sino32 != nil {
		t.Error("float64 scratch carries float32 buffers")
	}
	if sc32.x32 == nil || sc32.sino32 == nil || sc32.ax32 == nil {
		t.Error("float32 scratch missing its tier buffers")
	}
	if sc32.ax != nil || sc32.upd != nil {
		t.Error("float32 scratch carries float64 iteration buffers")
	}
	p64.PutScratch(sc64)
	p32.PutScratch(sc32)

	// Reconstruct with pooled scratches after the round trip; both tiers
	// must still produce their reference results.
	want64, want32 := reconBoth(t, s, ReconOptions{Algorithm: AlgSIRT, Iterations: 2})
	got64 := vol.NewImage(p64.Size, p64.Size)
	if err := p64.ReconstructInto(got64, s, nil); err != nil {
		t.Fatal(err)
	}
	got32 := vol.NewImage(p32.Size, p32.Size)
	if err := p32.ReconstructInto(got32, s, nil); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(got64.Pix, want64.Pix); d != 0 {
		t.Errorf("pooled float64 scratch diverged: max |Δ| = %g", d)
	}
	if d := maxAbsDiff(got32.Pix, want32.Pix); d != 0 {
		t.Errorf("pooled float32 scratch diverged: max |Δ| = %g", d)
	}
}

// TestFloat32SteadyStateZeroAlloc extends the zero-allocation contract to
// the float32 tier: with a caller-held scratch, every float32 algorithm
// reconstructs without touching the heap.
func TestFloat32SteadyStateZeroAlloc(t *testing.T) {
	cases := []struct {
		name string
		opts ReconOptions
	}{
		{"fbp_f32", ReconOptions{Algorithm: AlgFBP, Filter: SheppLoganFilter, Precision: Float32}},
		{"sirt_f32", ReconOptions{Algorithm: AlgSIRT, Iterations: 2, Precision: Float32}},
		{"sart_f32", ReconOptions{Algorithm: AlgSART, Iterations: 1, Precision: Float32}},
	}
	s := testSinogram(16, 16)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := PlanRecon(s.Theta, s.NCols, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			sc := p.NewScratch()
			dst := vol.NewImage(p.Size, p.Size)
			allocs := testing.AllocsPerRun(10, func() {
				if err := p.ReconstructInto(dst, s, sc); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("%s steady state: %v allocs/op, want 0", tc.name, allocs)
			}
		})
	}
}

// TestProjectRow32MatchesFloat64 isolates the single-precision forward
// projector: its sample set is constructed to be identical to
// projectRow's, so the only divergence allowed is accumulation rounding.
func TestProjectRow32MatchesFloat64(t *testing.T) {
	const n, ncols = 32, 48
	im := vol.NewImage(n, n)
	pix32 := make([]float32, n*n)
	for i := range im.Pix {
		v := math.Sin(0.29*float64(i)) + 1.2
		im.Pix[i] = v
		pix32[i] = float32(v)
	}
	row64 := make([]float64, ncols)
	row32 := make([]float32, ncols)
	for _, th := range []float64{0, 0.3, math.Pi / 2, 2.2, math.Pi, 5.9} {
		ct, st := math.Cos(th), math.Sin(th)
		projectRow(row64, im, ct, st)
		projectRow32(row32, pix32, n, ct, st)
		for c := range row64 {
			if d := math.Abs(row64[c] - float64(row32[c])); d > 1e-4 {
				t.Errorf("theta %.2f col %d: |f64 − f32| = %g > 1e-4", th, c, d)
			}
		}
	}
}

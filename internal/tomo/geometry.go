// Package tomo implements the tomographic compute kernels used by both
// workflow branches of the paper: the quick single-pass filtered back
// projection the streaming service runs on acquisition completion
// (streamtomocupy's role), and the preprocessed, optionally iterative
// reconstructions the file-based TomoPy jobs run at NERSC and ALCF.
//
// Geometry convention: parallel-beam CT. The object lives on the unit
// square [-1,1]²; a projection at angle θ integrates along rays
// perpendicular to the detector axis s, where s = x·cosθ + y·sinθ.
// Detector columns sample s ∈ [-1,1] at pixel centers.
package tomo

import (
	"fmt"
	"math"
)

// Sinogram holds the projections of a single object slice: NAngles rows of
// NCols detector samples, row-major, with Theta[a] the acquisition angle of
// row a in radians.
type Sinogram struct {
	NAngles int
	NCols   int
	Theta   []float64
	Data    []float64
}

// NewSinogram allocates a zeroed sinogram with the given uniform angle set.
func NewSinogram(theta []float64, ncols int) *Sinogram {
	return &Sinogram{
		NAngles: len(theta),
		NCols:   ncols,
		Theta:   theta,
		Data:    make([]float64, len(theta)*ncols),
	}
}

// Row returns projection a as a slice aliasing the sinogram storage.
func (s *Sinogram) Row(a int) []float64 {
	return s.Data[a*s.NCols : (a+1)*s.NCols]
}

// Clone returns a deep copy of the sinogram (sharing Theta, which is
// treated as immutable).
func (s *Sinogram) Clone() *Sinogram {
	c := NewSinogram(s.Theta, s.NCols)
	copy(c.Data, s.Data)
	return c
}

// Validate checks structural consistency.
func (s *Sinogram) Validate() error {
	if len(s.Theta) != s.NAngles {
		return fmt.Errorf("tomo: theta length %d != NAngles %d", len(s.Theta), s.NAngles)
	}
	if len(s.Data) != s.NAngles*s.NCols {
		return fmt.Errorf("tomo: data length %d != %d×%d", len(s.Data), s.NAngles, s.NCols)
	}
	return nil
}

// UniformAngles returns n angles evenly covering [0, π) — the 180° scan
// the beamline acquires.
func UniformAngles(n int) []float64 {
	th := make([]float64, n)
	for i := range th {
		th[i] = math.Pi * float64(i) / float64(n)
	}
	return th
}

// ProjectionSet is a full acquisition: NAngles projection images of
// NRows × NCols, stored angle-major ([angle][row][col]). Row r across all
// angles forms the sinogram of object slice r.
type ProjectionSet struct {
	NAngles int
	NRows   int
	NCols   int
	Theta   []float64
	Data    []float64
}

// NewProjectionSet allocates a zeroed projection set.
func NewProjectionSet(theta []float64, nrows, ncols int) *ProjectionSet {
	return &ProjectionSet{
		NAngles: len(theta),
		NRows:   nrows,
		NCols:   ncols,
		Theta:   theta,
		Data:    make([]float64, len(theta)*nrows*ncols),
	}
}

// At returns the sample for angle a, detector row r, column c.
func (p *ProjectionSet) At(a, r, c int) float64 {
	return p.Data[(a*p.NRows+r)*p.NCols+c]
}

// Set stores v at (a, r, c).
func (p *ProjectionSet) Set(a, r, c int, v float64) {
	p.Data[(a*p.NRows+r)*p.NCols+c] = v
}

// Projection returns the projection image at angle index a, aliasing
// storage, as a row-major NRows×NCols slice.
func (p *ProjectionSet) Projection(a int) []float64 {
	n := p.NRows * p.NCols
	return p.Data[a*n : (a+1)*n]
}

// SinogramForRow extracts the sinogram of object slice r (copying, since
// the angle-major layout is not contiguous per row).
func (p *ProjectionSet) SinogramForRow(r int) *Sinogram {
	s := NewSinogram(p.Theta, p.NCols)
	p.SinogramForRowInto(s, r)
	return s
}

// SinogramForRowInto copies the sinogram of object slice r into dst,
// which must have matching NAngles and NCols (e.g. a plan scratch's
// staging sinogram). Allocation-free.
func (p *ProjectionSet) SinogramForRowInto(dst *Sinogram, r int) {
	for a := 0; a < p.NAngles; a++ {
		base := (a*p.NRows + r) * p.NCols
		copy(dst.Row(a), p.Data[base:base+p.NCols])
	}
}

// Validate checks structural consistency.
func (p *ProjectionSet) Validate() error {
	if len(p.Theta) != p.NAngles {
		return fmt.Errorf("tomo: theta length %d != NAngles %d", len(p.Theta), p.NAngles)
	}
	if len(p.Data) != p.NAngles*p.NRows*p.NCols {
		return fmt.Errorf("tomo: data length %d != %d×%d×%d",
			len(p.Data), p.NAngles, p.NRows, p.NCols)
	}
	return nil
}

// SizeBytes returns the in-memory footprint of the raw data in bytes,
// assuming the detector's native 16-bit samples (as in the paper's ~20 GB
// for 1969 × 2160 × 2560 × u16 figure).
func (p *ProjectionSet) SizeBytes() int64 {
	return int64(p.NAngles) * int64(p.NRows) * int64(p.NCols) * 2
}

// Angles360 returns n angles evenly covering [0, 2π) — the full-rotation
// acquisition mode used when the sample is wider than the detector or a
// half-acquisition (offset-COR) scan is stitched.
func Angles360(n int) []float64 {
	th := make([]float64, n)
	for i := range th {
		th[i] = 2 * math.Pi * float64(i) / float64(n)
	}
	return th
}

// Convert360To180 folds a full-rotation sinogram onto [0, π) using the
// parallel-beam symmetry p(θ+π, s) = p(θ, −s): opposing views are
// mirrored and averaged, halving the angle count and improving photon
// statistics. NAngles must be even and the angle set uniform over 2π.
func Convert360To180(s *Sinogram) (*Sinogram, error) {
	if s.NAngles%2 != 0 {
		return nil, fmt.Errorf("tomo: 360° sinogram has odd angle count %d", s.NAngles)
	}
	half := s.NAngles / 2
	theta := make([]float64, half)
	copy(theta, s.Theta[:half])
	out := NewSinogram(theta, s.NCols)
	for a := 0; a < half; a++ {
		front := s.Row(a)
		back := s.Row(a + half)
		dst := out.Row(a)
		for c := 0; c < s.NCols; c++ {
			dst[c] = (front[c] + back[s.NCols-1-c]) / 2
		}
	}
	return out, nil
}

package tomo

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/fft"
	"repro/internal/vol"
)

// ReconPlan is the precomputed, immutable state for reconstructing slices
// of one acquisition geometry: trig tables for every projection angle,
// per-row reconstruction-circle pixel bounds, the windowed ramp-filter
// spectrum and its FFT plan (FBP), the oversampled-grid FFT plan and
// half-sample phase table (gridrec), and the ray-weight normalizations
// (SIRT/SART). Build one per volume — or let the package-level wrappers
// fetch a cached plan — and share it across any number of goroutines;
// all per-call mutable state lives in a Scratch.
//
// Concurrency contract: a ReconPlan is read-only after construction and
// safe for concurrent use. A Scratch is NOT: use one Scratch per
// goroutine (NewScratch, or GetScratch/PutScratch for pooled reuse).
type ReconPlan struct {
	Algorithm  Algorithm
	Filter     Filter // FBP only
	NAngles    int
	NCols      int
	Size       int       // output image side length
	Iterations int       // SIRT/SART only
	Relax      float64   // SIRT/SART only
	Positivity bool      // SIRT/SART only
	Precision  Precision // kernel arithmetic tier
	// CORShift, when non-zero, recenters each sinogram (into scratch)
	// before reconstruction. Derive a shifted variant of a cached plan
	// with WithCOR rather than building a new one.
	CORShift float64

	theta []float64 // private copy of the acquisition angles
	cosT  []float64 // cos θ per angle
	sinT  []float64 // sin θ per angle
	xs    []float64 // pixel-center coordinates in [-1,1], length Size
	loPx  []int     // per image row: first pixel inside the circle
	hiPx  []int     // per image row: one past the last inside pixel

	// FBP: padded filter length, its FFT plan, and the ramp taps as a
	// ready-to-multiply complex spectrum.
	fm   int
	fp   *fft.Plan
	taps []complex128

	// FBP backprojection stride tables: per-angle detector-column step
	// along an image row, its reciprocal, and whether every |step| ≤ 1 —
	// the precondition for the kernel's incremental interior walk (one
	// carry adjust per pixel). Steps exceed 1 only when reconstructing
	// onto a grid coarser than the detector (Size < NCols).
	dTab   []float64
	invD   []float64
	stepOK bool

	// Gridrec: oversampled grid side, its FFT plan, and the half-sample
	// shift phase per frequency bin.
	gm    int
	gp    *fft.Plan
	phase []complex128

	// SIRT/SART ray-weight normalizations, computed once: rowSum ≈ A(1)
	// for both; colSum ≈ Aᵀ(1) for SIRT.
	rowSum *Sinogram
	colSum *vol.Image

	// Float32 tier tables, populated only when Precision == Float32:
	// single-precision copies of the trig/coordinate/ray-weight tables
	// (converted once from the float64 originals so both tiers share one
	// geometric definition), plus the complex64 ramp spectrum and its
	// single-precision FFT plan for FBP.
	cosT32   []float32
	sinT32   []float32
	xs32     []float32
	rowSum32 []float32
	colSum32 []float32
	fp32     *fft.Plan32
	taps32   []complex64

	// pool hands out Scratch values to callers that do not hold their
	// own; a pointer so WithCOR copies share it.
	pool *sync.Pool
}

// Scratch holds every mutable buffer one goroutine needs to reconstruct
// slices against a plan. The zero-allocation steady state depends on
// reusing one Scratch across calls; never share one between goroutines.
type Scratch struct {
	rowIn    *Sinogram    // staging for ProjectionSet rows
	shifted  *Sinogram    // COR-recentred copy (lazy: only if CORShift ≠ 0)
	filtered *Sinogram    // FBP: ramp-filtered sinogram
	fbatch   []complex128 // FBP: all padded row-pairs, batch-filtered in one pass
	cbuf     []complex128 // gridrec: radial line
	grid     []complex128 // gridrec: accumulated spectrum
	wsum     []float64    // gridrec: splat weights
	gcol     []complex128 // gridrec: 2D FFT column scratch
	ax       *Sinogram    // SIRT: forward projection of the iterate
	res      *Sinogram    // SIRT: normalized residual
	axOne    *Sinogram    // SART: single-angle forward projection
	resOne   *Sinogram    // SART: single-angle residual
	upd      *vol.Image   // SIRT/SART: backprojected update
	out      *vol.Image   // volume/preview workers: per-slice output

	// Float32 tier buffers (allocated only for Float32 plans).
	sino32  []float32   // single-precision copy of the input sinogram
	x32     []float32   // SIRT/SART iterate
	ax32    []float32   // SIRT: forward projection; SART: one row
	res32   []float32   // SIRT: residual; SART: one row
	upd32   []float32   // SIRT/SART: backprojected update
	filt32  []float32   // FBP: filtered sinogram
	batch32 []complex64 // FBP: padded row-pairs for the Plan32 batch filter
}

// planKey identifies a cacheable plan. COR shift is deliberately absent:
// it affects no precomputed table, so shifted variants share the cached
// plan via WithCOR instead of multiplying cache entries per auto-COR
// estimate.
type planKey struct {
	alg        Algorithm
	filter     Filter
	nangles    int
	ncols      int
	size       int
	iters      int
	relax      float64
	positivity bool
	prec       Precision
}

// maxCachedPlans bounds the global plan cache; on overflow the cache is
// reset rather than evicted LRU-style — plans are cheap to rebuild and
// real workloads use a handful of geometries.
const maxCachedPlans = 32

var (
	reconPlanMu    sync.Mutex
	reconPlans     = map[planKey][]*ReconPlan{} // guarded by reconPlanMu
	reconPlanCount int                          // guarded by reconPlanMu
)

// PlanRecon returns a reconstruction plan for the given angle set and
// detector width, configured by the same options ReconstructVolume takes
// (Preprocess, AutoCOR, and Workers are resolved by the caller and
// ignored here). Plans are cached globally: repeated calls with the same
// geometry and parameters return the same shared plan.
func PlanRecon(theta []float64, ncols int, opts ReconOptions) (*ReconPlan, error) {
	if len(theta) == 0 || ncols <= 0 {
		return nil, fmt.Errorf("tomo: plan needs ≥1 angle and ≥1 detector column (got %d angles, %d cols)",
			len(theta), ncols)
	}
	alg := opts.Algorithm
	if alg == "" {
		alg = AlgFBP
	}
	key := planKey{alg: alg, nangles: len(theta), ncols: ncols, size: opts.Size, prec: opts.Precision}
	if key.size == 0 {
		key.size = ncols
	}
	switch alg {
	case AlgFBP:
		key.filter = opts.Filter
	case AlgGridrec:
		if opts.Precision == Float32 {
			return nil, fmt.Errorf("tomo: gridrec has no float32 tier (oversampled-grid accumulation needs double precision)")
		}
	case AlgSIRT:
		key.iters = opts.Iterations
		if key.iters <= 0 {
			key.iters = 30
		}
		key.relax = 1
		key.positivity = true
	case AlgSART:
		key.iters = opts.Iterations
		if key.iters <= 0 {
			key.iters = 5
		}
		key.relax = 0.5
		key.positivity = true
	default:
		return nil, fmt.Errorf("tomo: unknown algorithm %q", opts.Algorithm)
	}
	p := cachedPlan(theta, key)
	if opts.CORShift != 0 {
		p = p.WithCOR(opts.CORShift)
	}
	return p, nil
}

// cachedPlan returns the cached plan for (theta, key), building and
// inserting one on miss. Keys collide only across distinct theta contents
// of equal length, so each key holds a short list compared by value.
func cachedPlan(theta []float64, key planKey) *ReconPlan {
	reconPlanMu.Lock()
	for _, p := range reconPlans[key] {
		if floatsEqual(p.theta, theta) {
			reconPlanMu.Unlock()
			return p
		}
	}
	reconPlanMu.Unlock()

	// Build outside the lock: SIRT/SART plans forward/back project a
	// uniform image, which is far too slow to serialize globally. A
	// racing builder may duplicate the work; the second check below
	// keeps the cache single-copy.
	p := buildPlan(theta, key)

	reconPlanMu.Lock()
	defer reconPlanMu.Unlock()
	for _, q := range reconPlans[key] {
		if floatsEqual(q.theta, theta) {
			return q
		}
	}
	if reconPlanCount >= maxCachedPlans {
		reconPlans = map[planKey][]*ReconPlan{}
		reconPlanCount = 0
	}
	reconPlans[key] = append(reconPlans[key], p)
	reconPlanCount++
	return p
}

func buildPlan(theta []float64, key planKey) *ReconPlan {
	p := &ReconPlan{
		Algorithm:  key.alg,
		Filter:     key.filter,
		NAngles:    key.nangles,
		NCols:      key.ncols,
		Size:       key.size,
		Iterations: key.iters,
		Relax:      key.relax,
		Positivity: key.positivity,
		Precision:  key.prec,
		theta:      append([]float64(nil), theta...),
	}
	p.cosT, p.sinT = trigTables(p.theta)
	p.xs = pixelCenters(p.Size)
	p.loPx, p.hiPx = circleBounds(p.xs)

	switch key.alg {
	case AlgFBP:
		p.fm = fft.NextPow2(2 * p.NCols)
		p.fp = fft.PlanFor(p.fm)
		h := rampFilter(p.fm, 2.0/float64(p.NCols), p.Filter)
		p.taps = make([]complex128, p.fm)
		for i, v := range h {
			p.taps[i] = complex(v, 0)
		}
		dxp := 2.0 / float64(p.Size)
		halfC := float64(p.NCols) / 2
		p.dTab = make([]float64, p.NAngles)
		p.invD = make([]float64, p.NAngles)
		p.stepOK = true
		for a, ct := range p.cosT {
			d := dxp * ct * halfC
			p.dTab[a] = d
			if d != 0 {
				p.invD[a] = 1 / d
			}
			if math.Abs(d) > 1 {
				p.stepOK = false
			}
		}
	case AlgGridrec:
		p.gm = fft.NextPow2(2 * p.Size)
		p.gp = fft.PlanFor(p.gm)
		p.phase = make([]complex128, p.gm)
		for i := range p.phase {
			k := float64(fft.FreqIndex(i, p.gm))
			ph := math.Pi * k / float64(p.gm)
			p.phase[i] = complex(math.Cos(ph), -math.Sin(ph))
		}
	case AlgSIRT, AlgSART:
		ones := vol.NewImage(p.Size, p.Size)
		ones.Fill(1)
		p.rowSum = Project(ones, p.theta, p.NCols)
		if key.alg == AlgSIRT {
			onesSino := NewSinogram(p.theta, p.NCols)
			for i := range onesSino.Data {
				onesSino.Data[i] = 1
			}
			p.colSum = BackProject(onesSino, p.Size)
		}
	}
	if key.prec == Float32 {
		p.buildFloat32Tables()
	}
	p.pool = &sync.Pool{New: func() any { return p.NewScratch() }}
	return p
}

// buildFloat32Tables derives the single-precision tier's tables from the
// already-built float64 ones, so both tiers share one geometric
// definition and the conversion happens exactly once per plan.
func (p *ReconPlan) buildFloat32Tables() {
	p.cosT32 = floats32(p.cosT)
	p.sinT32 = floats32(p.sinT)
	p.xs32 = floats32(p.xs)
	switch p.Algorithm {
	case AlgFBP:
		p.fp32 = fft.PlanFor32(p.fm)
		p.taps32 = make([]complex64, p.fm)
		for i, t := range p.taps {
			p.taps32[i] = complex(float32(real(t)), 0)
		}
	case AlgSIRT, AlgSART:
		p.rowSum32 = floats32(p.rowSum.Data)
		if p.colSum != nil {
			p.colSum32 = floats32(p.colSum.Pix)
		}
	}
}

func floats32(src []float64) []float32 {
	dst := make([]float32, len(src))
	for i, v := range src {
		dst[i] = float32(v)
	}
	return dst
}

// WithCOR returns a plan identical to p but recentring sinograms by shift
// detector pixels before reconstruction. The copy shares every table and
// the scratch pool with p, so deriving one per auto-COR volume is cheap.
func (p *ReconPlan) WithCOR(shift float64) *ReconPlan {
	if shift == p.CORShift {
		return p
	}
	q := *p
	q.CORShift = shift
	return &q
}

// NewScratch allocates a fresh scratch sized for p. Callers that
// reconstruct many slices on one goroutine (workers, benchmarks) should
// hold one; transient callers can borrow from the pool instead.
func (p *ReconPlan) NewScratch() *Scratch {
	sc := &Scratch{
		rowIn: NewSinogram(p.theta, p.NCols),
		out:   vol.NewImage(p.Size, p.Size),
	}
	switch p.Algorithm {
	case AlgFBP:
		if p.Precision == Float32 {
			sc.filt32 = make([]float32, p.NAngles*p.NCols)
			sc.batch32 = make([]complex64, ((p.NAngles+1)/2)*p.fm)
			sc.upd32 = make([]float32, p.Size*p.Size)
		} else {
			sc.filtered = NewSinogram(p.theta, p.NCols)
			sc.fbatch = make([]complex128, ((p.NAngles+1)/2)*p.fm)
		}
	case AlgGridrec:
		sc.grid = make([]complex128, p.gm*p.gm)
		sc.wsum = make([]float64, p.gm*p.gm)
		sc.cbuf = make([]complex128, p.gm)
		sc.gcol = make([]complex128, p.gm)
	case AlgSIRT:
		if p.Precision == Float32 {
			sc.sino32 = make([]float32, p.NAngles*p.NCols)
			sc.x32 = make([]float32, p.Size*p.Size)
			sc.ax32 = make([]float32, p.NAngles*p.NCols)
			sc.res32 = make([]float32, p.NAngles*p.NCols)
			sc.upd32 = make([]float32, p.Size*p.Size)
		} else {
			sc.ax = NewSinogram(p.theta, p.NCols)
			sc.res = NewSinogram(p.theta, p.NCols)
			sc.upd = vol.NewImage(p.Size, p.Size)
		}
	case AlgSART:
		if p.Precision == Float32 {
			sc.sino32 = make([]float32, p.NAngles*p.NCols)
			sc.x32 = make([]float32, p.Size*p.Size)
			sc.ax32 = make([]float32, p.NCols)
			sc.res32 = make([]float32, p.NCols)
			sc.upd32 = make([]float32, p.Size*p.Size)
		} else {
			sc.axOne = NewSinogram(p.theta[:1], p.NCols)
			sc.resOne = NewSinogram(p.theta[:1], p.NCols)
			sc.upd = vol.NewImage(p.Size, p.Size)
		}
	}
	return sc
}

// GetScratch borrows a scratch from the plan's pool (allocating on a cold
// pool). Return it with PutScratch.
func (p *ReconPlan) GetScratch() *Scratch {
	return p.pool.Get().(*Scratch)
}

// PutScratch returns a scratch obtained from GetScratch (or NewScratch)
// to the pool for reuse.
func (p *ReconPlan) PutScratch(sc *Scratch) {
	p.pool.Put(sc)
}

// ReconstructInto reconstructs sinogram s into dst (which must be
// Size×Size) using the plan's algorithm. sc may be nil, in which case a
// pooled scratch is borrowed for the call; passing a goroutine-held
// scratch makes the steady-state path allocation-free.
func (p *ReconPlan) ReconstructInto(dst *vol.Image, s *Sinogram, sc *Scratch) error {
	if s.NAngles != p.NAngles || s.NCols != p.NCols {
		return fmt.Errorf("tomo: sinogram %d angles × %d cols does not match plan %d×%d",
			s.NAngles, s.NCols, p.NAngles, p.NCols)
	}
	if dst.W != p.Size || dst.H != p.Size {
		return fmt.Errorf("tomo: destination %d×%d does not match plan size %d", dst.W, dst.H, p.Size)
	}
	if sc == nil {
		sc = p.GetScratch()
		defer p.PutScratch(sc)
	}
	p.reconInto(dst, s, sc)
	return nil
}

// reconstruct is the one-shot form: borrow a scratch, reconstruct into a
// fresh image, return it. The thin public wrappers (FBP, Gridrec, SIRT,
// SART) all reduce to this.
func (p *ReconPlan) reconstruct(s *Sinogram) *vol.Image {
	sc := p.GetScratch()
	defer p.PutScratch(sc)
	dst := vol.NewImage(p.Size, p.Size)
	p.reconInto(dst, s, sc)
	return dst
}

func (p *ReconPlan) reconInto(dst *vol.Image, s *Sinogram, sc *Scratch) {
	work := s
	if p.CORShift != 0 {
		// Lazy: scratches from a shared pool may predate the WithCOR
		// derivation, so the shifted buffer appears on first use.
		if sc.shifted == nil {
			sc.shifted = NewSinogram(p.theta, p.NCols)
		}
		ShiftSinogramInto(sc.shifted, s, p.CORShift)
		work = sc.shifted
	}
	if p.Precision == Float32 {
		switch p.Algorithm {
		case AlgFBP:
			p.fbpInto32(dst, work, sc)
		case AlgSIRT:
			p.sirtInto32(dst, work, sc)
		case AlgSART:
			p.sartInto32(dst, work, sc)
		}
		return
	}
	switch p.Algorithm {
	case AlgFBP:
		p.fbpInto(dst, work, sc)
	case AlgGridrec:
		p.gridrecInto(dst, work, sc)
	case AlgSIRT:
		p.sirtInto(dst, work, sc)
	case AlgSART:
		p.sartInto(dst, work, sc)
	}
}

//perf:hot
func (p *ReconPlan) fbpInto(dst *vol.Image, s *Sinogram, sc *Scratch) {
	p.filterInto(sc.filtered, s, sc.fbatch)
	dTab, invD := p.dTab, p.invD
	if !p.stepOK {
		dTab, invD = nil, nil
	}
	backProjectKernel(dst, sc.filtered, p.cosT, p.sinT, p.xs, p.loPx, p.hiPx,
		math.Pi/float64(p.NAngles), true, dTab, invD)
}

// filterInto ramp-filters every row of src into dst using the plan's
// precomputed taps. Rows are processed two at a time packed into the real
// and imaginary parts of one complex FFT — valid because the windowed
// ramp taps are real and even (a real, symmetric impulse response), so
// the two convolutions never mix. This halves the FFT count relative to
// the row-at-a-time path. All row-pairs are packed into batch (the
// scratch's fbatch buffer, one padded row per pair) and convolved in a
// single ConvolveBatchInto pass, which keeps the tap spectrum hot in
// cache across the whole sinogram; per-row arithmetic is unchanged.
//
//perf:hot
func (p *ReconPlan) filterInto(dst, src *Sinogram, batch []complex128) {
	nc := p.NCols
	m := p.fm
	pairs := (src.NAngles + 1) / 2
	buf := batch[:pairs*m]
	a := 0
	for pr := 0; pr < pairs; pr++ {
		cbuf := buf[pr*m : (pr+1)*m]
		if a+1 < src.NAngles {
			ra, rb := src.Row(a), src.Row(a+1)
			for i := 0; i < nc; i++ {
				cbuf[i] = complex(ra[i], rb[i])
			}
		} else { // odd angle count: last row rides alone
			ra := src.Row(a)
			for i := 0; i < nc; i++ {
				cbuf[i] = complex(ra[i], 0)
			}
		}
		for i := nc; i < m; i++ {
			cbuf[i] = 0
		}
		a += 2
	}
	p.fp.ConvolveBatchInto(buf, p.taps)
	a = 0
	for pr := 0; pr < pairs; pr++ {
		cbuf := buf[pr*m : (pr+1)*m]
		da := dst.Row(a)
		if a+1 < src.NAngles {
			db := dst.Row(a + 1)
			for i := 0; i < nc; i++ {
				da[i] = real(cbuf[i])
				db[i] = imag(cbuf[i])
			}
		} else {
			for i := 0; i < nc; i++ {
				da[i] = real(cbuf[i])
			}
		}
		a += 2
	}
}

//perf:hot
func (p *ReconPlan) sirtInto(x *vol.Image, s *Sinogram, sc *Scratch) {
	for i := range x.Pix {
		x.Pix[i] = 0
	}
	for it := 0; it < p.Iterations; it++ {
		for a := 0; a < p.NAngles; a++ {
			projectRow(sc.ax.Row(a), x, p.cosT[a], p.sinT[a])
		}
		for i := range sc.res.Data {
			r := s.Data[i] - sc.ax.Data[i]
			if w := p.rowSum.Data[i]; w > 1e-9 {
				r /= w
			} else {
				r = 0
			}
			sc.res.Data[i] = r
		}
		backProjectKernel(sc.upd, sc.res, p.cosT, p.sinT, p.xs, p.loPx, p.hiPx,
			math.Pi/float64(p.NAngles), false, nil, nil)
		for i := range x.Pix {
			c := p.colSum.Pix[i]
			if c <= 1e-9 {
				continue
			}
			x.Pix[i] += p.Relax * sc.upd.Pix[i] / c
			if p.Positivity && x.Pix[i] < 0 {
				x.Pix[i] = 0
			}
		}
	}
}

//perf:hot
func (p *ReconPlan) sartInto(x *vol.Image, s *Sinogram, sc *Scratch) {
	for i := range x.Pix {
		x.Pix[i] = 0
	}
	scale := p.Relax / math.Pi
	for it := 0; it < p.Iterations; it++ {
		for a := 0; a < p.NAngles; a++ {
			axRow := sc.axOne.Row(0)
			projectRow(axRow, x, p.cosT[a], p.sinT[a])
			brow := s.Row(a)
			wrow := p.rowSum.Row(a)
			resRow := sc.resOne.Row(0)
			for c := 0; c < p.NCols; c++ {
				r := brow[c] - axRow[c]
				if wrow[c] > 1e-9 {
					r /= wrow[c]
				} else {
					r = 0
				}
				resRow[c] = r
			}
			// Single-angle backprojection scales by π/1; the relax/π
			// step compensates, exactly as the one-shot SART did.
			backProjectKernel(sc.upd, sc.resOne, p.cosT[a:a+1], p.sinT[a:a+1],
				p.xs, p.loPx, p.hiPx, math.Pi, false, nil, nil)
			for i := range x.Pix {
				x.Pix[i] += scale * sc.upd.Pix[i]
				if p.Positivity && x.Pix[i] < 0 {
					x.Pix[i] = 0
				}
			}
		}
	}
}

// trigTables evaluates cos θ and sin θ per angle — the same per-angle
// values the kernels previously computed inline, hoisted into the plan.
func trigTables(theta []float64) (cosT, sinT []float64) {
	cosT = make([]float64, len(theta))
	sinT = make([]float64, len(theta))
	for i, th := range theta {
		cosT[i] = math.Cos(th)
		sinT[i] = math.Sin(th)
	}
	return cosT, sinT
}

// pixelCenters returns the n pixel-center coordinates -1+(2i+1)/n, shared
// by both image axes (reconstructions are square).
func pixelCenters(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = -1 + (2*float64(i)+1)/float64(n)
	}
	return xs
}

// circleBounds computes, per image row, the contiguous pixel range inside
// the reconstruction circle, using the identical x²+y² > 1 predicate the
// per-pixel kernels used — so the planned path touches exactly the same
// pixel set.
func circleBounds(xs []float64) (lo, hi []int) {
	n := len(xs)
	lo = make([]int, n)
	hi = make([]int, n)
	for py := 0; py < n; py++ {
		y := xs[py]
		l := 0
		for l < n && xs[l]*xs[l]+y*y > 1 {
			l++
		}
		h := n
		for h > l && xs[h-1]*xs[h-1]+y*y > 1 {
			h--
		}
		lo[py] = l
		hi[py] = h
	}
	return lo, hi
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package tomo

import (
	"math"

	"repro/internal/fft"
	"repro/internal/vol"
)

// Gridrec reconstructs a slice with the direct Fourier (gridding) method:
// by the projection-slice theorem, the 1D FFT of each projection is a
// radial line through the object's 2D spectrum. Each line is splatted onto
// a Cartesian frequency grid with bilinear weights, the accumulated grid
// is weight-normalized, and a 2D inverse FFT yields the image. This is the
// algorithm family TomoPy's default "gridrec" belongs to: much cheaper
// than per-pixel backprojection for large angle counts. Thin wrapper over
// a cached ReconPlan.
func Gridrec(s *Sinogram, size int) *vol.Image {
	n := size
	if n == 0 {
		n = s.NCols
	}
	p := cachedPlan(s.Theta, planKey{
		alg: AlgGridrec, nangles: s.NAngles, ncols: s.NCols, size: n,
	})
	return p.reconstruct(s)
}

// gridrecInto runs the gridding reconstruction against the plan's cached
// FFT plan, half-sample phase table, and trig tables, with every working
// buffer drawn from the scratch — allocation-free in steady state.
func (p *ReconPlan) gridrecInto(dst *vol.Image, s *Sinogram, sc *Scratch) {
	n := p.Size
	// Oversampled frequency grid reduces gridding artifacts.
	m := p.gm
	grid, wsum, buf := sc.grid, sc.wsum, sc.cbuf
	for i := range grid {
		grid[i] = 0
	}
	for i := range wsum {
		wsum[i] = 0
	}
	tau := 2.0 / float64(p.NCols) // detector pitch in object units

	for a := 0; a < s.NAngles; a++ {
		row := s.Row(a)
		// Center the projection: detector center (s=0) must sit at
		// index 0 of the FFT input (circular shift), so the radial
		// spectrum has linear phase-free bins.
		for i := range buf {
			buf[i] = 0
		}
		for c, v := range row {
			// Column c sits at s = -1 + (2c+1)/ncols, i.e. offset
			// c - ncols/2 + 0.5 samples from center. Place at
			// wrapped index; the residual half-sample shift is
			// corrected in phase below.
			off := c - p.NCols/2
			idx := ((off % m) + m) % m
			buf[idx] = complex(v, 0)
		}
		p.gp.Forward(buf)
		// Half-sample phase correction: the true sample positions are
		// (off+0.5)·τ, so divide by the shift phase e^{+iπk/m}.
		for i := range buf {
			buf[i] *= p.phase[i]
		}

		ct := p.cosT[a]
		st := p.sinT[a]
		// Splat each radial frequency sample. Bin i is frequency
		// k·Δk with k = FreqIndex(i, m) and Δk = 1/(m·τ); the full
		// bin range reaches exactly the detector Nyquist at |k| = m/2.
		for i := 0; i < m; i++ {
			k := fft.FreqIndex(i, m)
			kx := float64(k) * ct
			ky := float64(k) * st
			// Grid coordinates with DC at (0,0), wrapped.
			gx := kx
			gy := ky
			x0 := math.Floor(gx)
			y0 := math.Floor(gy)
			fx := gx - x0
			fy := gy - y0
			v := buf[i]
			for dy := 0; dy <= 1; dy++ {
				for dx := 0; dx <= 1; dx++ {
					w := (1 - math.Abs(float64(dx)-fx)) * (1 - math.Abs(float64(dy)-fy))
					if w <= 0 {
						continue
					}
					xi := ((int(x0)+dx)%m + m) % m
					yi := ((int(y0)+dy)%m + m) % m
					grid[yi*m+xi] += v * complex(w, 0)
					wsum[yi*m+xi] += w
				}
			}
		}
	}

	// Weight-normalize the accumulated spectrum.
	for i := range grid {
		if wsum[i] > 1e-12 {
			grid[i] /= complex(wsum[i], 0)
		}
	}

	p.gp.Inverse2D(grid, sc.gcol)

	// The image is centered at (0,0) with wraparound; extract the n×n
	// region around it. The frequency grid spacing is Δk = 1/(m·tau),
	// so after the inverse FFT one spatial grid cell spans
	// 1/(m·Δk) = tau object units, while one output pixel spans 2/n.
	cellsPerPixel := (2.0 / float64(n)) / tau // = NCols/n
	for py := 0; py < n; py++ {
		for px := 0; px < n; px++ {
			// Offset from image center in pixels.
			ox := (float64(px) - float64(n)/2 + 0.5) * cellsPerPixel
			oy := (float64(py) - float64(n)/2 + 0.5) * cellsPerPixel
			dst.Set(px, py, gridBilinear(grid, m, ox, oy))
		}
	}

	// Calibrate amplitude against the sinogram's DC: the total mass of
	// the image must match the mean projection mass (each projection
	// integrates the full object).
	var massSino float64
	for c := 0; c < p.NCols; c++ {
		massSino += s.Row(0)[c]
	}
	for a := 1; a < s.NAngles; a++ {
		row := s.Row(a)
		var mrow float64
		for _, v := range row {
			mrow += v
		}
		massSino += mrow
	}
	massSino = massSino / float64(s.NAngles) * tau // integral of one projection
	var massImg float64
	for _, v := range dst.Pix {
		massImg += v
	}
	pix := 2.0 / float64(n)
	massImg *= pix * pix
	if math.Abs(massImg) > 1e-12 {
		k := massSino / massImg
		for i := range dst.Pix {
			dst.Pix[i] *= k
		}
	}
}

// gridBilinear samples the wrapped m×m complex grid's real part at
// fractional coordinates (x, y) relative to the wrapped origin.
func gridBilinear(grid []complex128, m int, x, y float64) float64 {
	x0 := math.Floor(x)
	y0 := math.Floor(y)
	fx := x - x0
	fy := y - y0
	get := func(xi, yi int) float64 {
		xi = ((xi % m) + m) % m
		yi = ((yi % m) + m) % m
		return real(grid[yi*m+xi])
	}
	return get(int(x0), int(y0))*(1-fx)*(1-fy) +
		get(int(x0)+1, int(y0))*fx*(1-fy) +
		get(int(x0), int(y0)+1)*(1-fx)*fy +
		get(int(x0)+1, int(y0)+1)*fx*fy
}

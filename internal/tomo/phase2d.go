package tomo

import (
	"repro/internal/fft"
)

// PaganinFilter2D applies single-distance phase retrieval to every full
// projection image of a set: the 2D low-pass 1/(1 + α(kx² + ky²)) filter
// in the detector plane, matching TomoPy's retrieve_phase operating on
// (rows × cols) projections rather than the 1D per-sinogram-row
// approximation. α ≥ 0; α = 0 returns a copy.
func PaganinFilter2D(ps *ProjectionSet, alpha float64) *ProjectionSet {
	out := NewProjectionSet(ps.Theta, ps.NRows, ps.NCols)
	copy(out.Data, ps.Data)
	if alpha <= 0 {
		return out
	}
	m := fft.NextPow2(maxInt(ps.NRows, ps.NCols))
	// Precompute the transfer function on the padded grid.
	h := make([]float64, m*m)
	for ky := 0; ky < m; ky++ {
		fy := float64(fft.FreqIndex(ky, m)) / float64(m)
		for kx := 0; kx < m; kx++ {
			fx := float64(fft.FreqIndex(kx, m)) / float64(m)
			k2 := (fx*fx + fy*fy) * float64(ps.NCols) * float64(ps.NCols)
			h[ky*m+kx] = 1 / (1 + alpha*k2)
		}
	}
	buf := make([]complex128, m*m)
	for a := 0; a < ps.NAngles; a++ {
		proj := out.Projection(a)
		// Symmetric edge padding into the m×m buffer.
		for y := 0; y < m; y++ {
			sy := reflect(y, ps.NRows)
			for x := 0; x < m; x++ {
				sx := reflect(x, ps.NCols)
				buf[y*m+x] = complex(proj[sy*ps.NCols+sx], 0)
			}
		}
		fft.Forward2D(buf, m)
		for i := range buf {
			buf[i] *= complex(h[i], 0)
		}
		fft.Inverse2D(buf, m)
		for y := 0; y < ps.NRows; y++ {
			for x := 0; x < ps.NCols; x++ {
				proj[y*ps.NCols+x] = real(buf[y*m+x])
			}
		}
	}
	return out
}

// reflect maps index i into [0, n) with mirror boundary handling.
func reflect(i, n int) int {
	if n == 1 {
		return 0
	}
	period := 2 * (n - 1)
	i %= period
	if i < 0 {
		i += period
	}
	if i >= n {
		i = period - i
	}
	return i
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BinSinogram downsamples a sinogram by factor k in the detector axis
// (averaging k adjacent columns), the standard binning preprocessing that
// trades resolution for speed and dose statistics. NCols must not be
// required to divide evenly; a ragged tail column is averaged over the
// remaining samples.
func BinSinogram(s *Sinogram, k int) *Sinogram {
	if k <= 1 {
		return s.Clone()
	}
	ncols := (s.NCols + k - 1) / k
	out := NewSinogram(s.Theta, ncols)
	for a := 0; a < s.NAngles; a++ {
		src := s.Row(a)
		dst := out.Row(a)
		for c := 0; c < ncols; c++ {
			lo := c * k
			hi := lo + k
			if hi > s.NCols {
				hi = s.NCols
			}
			var sum float64
			for i := lo; i < hi; i++ {
				sum += src[i]
			}
			dst[c] = sum / float64(hi-lo)
		}
	}
	return out
}

// BinProjections bins a projection set by factor k in both detector axes
// (rows and columns), averaging k×k blocks — the fast-preview decimation
// the streaming service can apply before reconstruction when the latency
// budget is tight.
func BinProjections(ps *ProjectionSet, k int) *ProjectionSet {
	if k <= 1 {
		cp := NewProjectionSet(ps.Theta, ps.NRows, ps.NCols)
		copy(cp.Data, ps.Data)
		return cp
	}
	rows := (ps.NRows + k - 1) / k
	cols := (ps.NCols + k - 1) / k
	out := NewProjectionSet(ps.Theta, rows, cols)
	for a := 0; a < ps.NAngles; a++ {
		src := ps.Projection(a)
		dst := out.Projection(a)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				var sum float64
				var n int
				for dr := 0; dr < k; dr++ {
					sr := r*k + dr
					if sr >= ps.NRows {
						break
					}
					for dc := 0; dc < k; dc++ {
						sc := c*k + dc
						if sc >= ps.NCols {
							break
						}
						sum += src[sr*ps.NCols+sc]
						n++
					}
				}
				dst[r*cols+c] = sum / float64(n)
			}
		}
	}
	return out
}

// CropSinogram restricts a sinogram to detector columns [lo, hi) — the
// "cropped test scan" mode that produces the few-MB files in the paper's
// size mix.
func CropSinogram(s *Sinogram, lo, hi int) *Sinogram {
	if lo < 0 {
		lo = 0
	}
	if hi > s.NCols {
		hi = s.NCols
	}
	if hi <= lo {
		return NewSinogram(s.Theta, 0)
	}
	out := NewSinogram(s.Theta, hi-lo)
	for a := 0; a < s.NAngles; a++ {
		copy(out.Row(a), s.Row(a)[lo:hi])
	}
	return out
}

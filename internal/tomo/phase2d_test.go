package tomo

import (
	"math"
	"testing"

	"repro/internal/phantom"
)

func TestPaganin2DIdentityAtZero(t *testing.T) {
	truth := phantom.SheppLogan3D(16, 4)
	ps := ProjectVolume(truth, UniformAngles(8), 16)
	out := PaganinFilter2D(ps, 0)
	for i := range ps.Data {
		if out.Data[i] != ps.Data[i] {
			t.Fatal("alpha=0 should copy")
		}
	}
	// And it must be a copy, not an alias.
	out.Data[0] = 999
	if ps.Data[0] == 999 {
		t.Fatal("output aliases input")
	}
}

func TestPaganin2DSmoothsBothAxes(t *testing.T) {
	// A checkerboard (Nyquist in both axes) should be strongly damped;
	// the mean should be preserved.
	ps := NewProjectionSet(UniformAngles(1), 16, 16)
	proj := ps.Projection(0)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			proj[y*16+x] = 1 + 0.5*math.Pow(-1, float64(x+y))
		}
	}
	out := PaganinFilter2D(ps, 0.05)
	var meanIn, meanOut, varIn, varOut float64
	po := out.Projection(0)
	for i := range proj {
		meanIn += proj[i]
		meanOut += po[i]
	}
	meanIn /= 256
	meanOut /= 256
	for i := range proj {
		varIn += (proj[i] - meanIn) * (proj[i] - meanIn)
		varOut += (po[i] - meanOut) * (po[i] - meanOut)
	}
	if math.Abs(meanOut-meanIn) > 0.01 {
		t.Errorf("mean shifted: %v -> %v", meanIn, meanOut)
	}
	if varOut > varIn*0.2 {
		t.Errorf("variance %v -> %v; insufficient smoothing", varIn, varOut)
	}
}

func TestReflect(t *testing.T) {
	// n=4: expected pattern 0 1 2 3 2 1 0 1 2 3 ...
	wants := []int{0, 1, 2, 3, 2, 1, 0, 1, 2, 3}
	for i, want := range wants {
		if got := reflect(i, 4); got != want {
			t.Errorf("reflect(%d,4) = %d, want %d", i, got, want)
		}
	}
	if reflect(5, 1) != 0 {
		t.Error("n=1 should always map to 0")
	}
	if got := reflect(-1, 4); got != 1 {
		t.Errorf("reflect(-1,4) = %d, want 1", got)
	}
}

func TestBinSinogram(t *testing.T) {
	s := NewSinogram(UniformAngles(2), 6)
	for a := 0; a < 2; a++ {
		for c := 0; c < 6; c++ {
			s.Row(a)[c] = float64(c)
		}
	}
	b := BinSinogram(s, 2)
	if b.NCols != 3 {
		t.Fatalf("binned cols = %d", b.NCols)
	}
	wants := []float64{0.5, 2.5, 4.5}
	for c, w := range wants {
		if b.Row(0)[c] != w {
			t.Fatalf("bin[%d] = %v, want %v", c, b.Row(0)[c], w)
		}
	}
	// Ragged tail.
	b3 := BinSinogram(s, 4)
	if b3.NCols != 2 {
		t.Fatalf("ragged cols = %d", b3.NCols)
	}
	if b3.Row(0)[1] != 4.5 { // avg of cols 4,5
		t.Fatalf("ragged tail = %v", b3.Row(0)[1])
	}
	// k=1 is a copy.
	c1 := BinSinogram(s, 1)
	c1.Row(0)[0] = 99
	if s.Row(0)[0] == 99 {
		t.Fatal("k=1 should copy")
	}
}

func TestBinSinogramPreservesReconstruction(t *testing.T) {
	// Binning by 2 then reconstructing at half size should still
	// correlate with the phantom.
	im := phantom.SheppLogan(64)
	s := Project(im, UniformAngles(96), 64)
	b := BinSinogram(s, 2)
	rec := FBP(b, FBPOptions{Filter: SheppLoganFilter})
	if rec.W != 32 {
		t.Fatalf("recon size %d", rec.W)
	}
	small := im.Downsample2()
	corr, _ := reconQuality(t, rec, small)
	if corr < 0.85 {
		t.Errorf("binned reconstruction correlation %v", corr)
	}
}

func TestBinProjections(t *testing.T) {
	truth := phantom.SheppLogan3D(16, 8)
	ps := ProjectVolume(truth, UniformAngles(8), 16)
	b := BinProjections(ps, 2)
	if b.NRows != 4 || b.NCols != 8 {
		t.Fatalf("binned dims %dx%d", b.NRows, b.NCols)
	}
	// Block average check at one point.
	want := (ps.At(0, 0, 0) + ps.At(0, 0, 1) + ps.At(0, 1, 0) + ps.At(0, 1, 1)) / 4
	if math.Abs(b.At(0, 0, 0)-want) > 1e-12 {
		t.Fatalf("block average = %v, want %v", b.At(0, 0, 0), want)
	}
	// k=1 copy semantics.
	c := BinProjections(ps, 1)
	c.Data[0] = 42
	if ps.Data[0] == 42 {
		t.Fatal("k=1 should copy")
	}
}

func TestCropSinogram(t *testing.T) {
	s := NewSinogram(UniformAngles(2), 8)
	for c := 0; c < 8; c++ {
		s.Row(1)[c] = float64(c)
	}
	cr := CropSinogram(s, 2, 6)
	if cr.NCols != 4 {
		t.Fatalf("cropped cols = %d", cr.NCols)
	}
	if cr.Row(1)[0] != 2 || cr.Row(1)[3] != 5 {
		t.Fatalf("crop content %v", cr.Row(1))
	}
	// Clamping and degenerate ranges.
	if CropSinogram(s, -5, 99).NCols != 8 {
		t.Fatal("clamped crop should keep all columns")
	}
	if CropSinogram(s, 6, 2).NCols != 0 {
		t.Fatal("inverted range should be empty")
	}
}

func BenchmarkPaganin2D(b *testing.B) {
	truth := phantom.SheppLogan3D(32, 16)
	ps := ProjectVolume(truth, UniformAngles(16), 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PaganinFilter2D(ps, 0.01)
	}
}

package tomo

import (
	"math"
	"sort"

	"repro/internal/fft"
)

// Normalize applies flat-field and dark-field correction to a raw
// transmission projection set: out = (raw - dark) / (flat - dark), clamped
// to a small positive floor so the subsequent log is defined. flat and
// dark are per-detector-pixel references (NRows×NCols).
func Normalize(raw *ProjectionSet, flat, dark []float64) *ProjectionSet {
	out := NewProjectionSet(raw.Theta, raw.NRows, raw.NCols)
	n := raw.NRows * raw.NCols
	const floor = 1e-6
	for a := 0; a < raw.NAngles; a++ {
		src := raw.Projection(a)
		dst := out.Projection(a)
		for i := 0; i < n; i++ {
			den := flat[i] - dark[i]
			if den < floor {
				den = floor
			}
			v := (src[i] - dark[i]) / den
			if v < floor {
				v = floor
			}
			dst[i] = v
		}
	}
	return out
}

// MinusLog converts normalized transmission values into line integrals of
// attenuation: out = -ln(in). Values are clamped below at a small floor.
func MinusLog(p *ProjectionSet) *ProjectionSet {
	out := NewProjectionSet(p.Theta, p.NRows, p.NCols)
	for i, v := range p.Data {
		if v < 1e-6 {
			v = 1e-6
		}
		out.Data[i] = -math.Log(v)
	}
	return out
}

// MinusLogSinogram is MinusLog for a single sinogram.
func MinusLogSinogram(s *Sinogram) *Sinogram {
	out := s.Clone()
	for i, v := range out.Data {
		if v < 1e-6 {
			v = 1e-6
		}
		out.Data[i] = -math.Log(v)
	}
	return out
}

// RemoveRings suppresses ring artifacts in a sinogram. Constant
// per-detector-column gain errors appear as vertical stripes in the
// sinogram (and rings after reconstruction); this subtracts each column's
// deviation from a moving-average-smoothed column-mean profile, the
// classic Raven/Münch-style correction.
func RemoveRings(s *Sinogram, window int) *Sinogram {
	if window < 1 {
		window = 9
	}
	colMean := make([]float64, s.NCols)
	for a := 0; a < s.NAngles; a++ {
		row := s.Row(a)
		for c, v := range row {
			colMean[c] += v
		}
	}
	for c := range colMean {
		colMean[c] /= float64(s.NAngles)
	}
	smooth := movingAverage(colMean, window)
	out := s.Clone()
	for a := 0; a < s.NAngles; a++ {
		row := out.Row(a)
		for c := range row {
			row[c] -= colMean[c] - smooth[c]
		}
	}
	return out
}

func movingAverage(xs []float64, window int) []float64 {
	out := make([]float64, len(xs))
	half := window / 2
	for i := range xs {
		lo := i - half
		hi := i + half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		var sum float64
		for j := lo; j <= hi; j++ {
			sum += xs[j]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out
}

// RemoveOutliers replaces "zingers" — isolated samples more than
// threshold above the local median (from cosmic rays or hot pixels) — with
// the median of their 1D neighborhood within each projection row.
func RemoveOutliers(s *Sinogram, threshold float64) *Sinogram {
	out := s.Clone()
	const half = 2
	win := make([]float64, 0, 2*half+1)
	for a := 0; a < s.NAngles; a++ {
		src := s.Row(a)
		dst := out.Row(a)
		for c := range src {
			win = win[:0]
			for j := c - half; j <= c+half; j++ {
				if j >= 0 && j < len(src) && j != c {
					win = append(win, src[j])
				}
			}
			med := median(win)
			if src[c]-med > threshold {
				dst[c] = med
			}
		}
	}
	return out
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// PaganinFilter applies single-distance phase retrieval to each projection
// row: a low-pass 1/(1 + alpha·k²) filter in the detector-axis frequency
// domain. It is the 1D analogue of TomoPy's retrieve_phase, trading
// resolution for dramatically improved contrast on weakly absorbing
// samples. alpha ≥ 0; alpha = 0 is the identity.
func PaganinFilter(s *Sinogram, alpha float64) *Sinogram {
	if alpha <= 0 {
		return s.Clone()
	}
	out := s.Clone()
	m := fft.NextPow2(s.NCols)
	buf := make([]complex128, m)
	for a := 0; a < s.NAngles; a++ {
		row := out.Row(a)
		for i := range buf {
			buf[i] = 0
		}
		// Symmetric edge padding reduces boundary ringing.
		for i := 0; i < m; i++ {
			j := i
			if j >= len(row) {
				j = 2*len(row) - 2 - j
				if j < 0 {
					j = 0
				}
			}
			buf[i] = complex(row[j], 0)
		}
		fft.Forward(buf)
		for i := range buf {
			k := float64(fft.FreqIndex(i, m)) / float64(m)
			buf[i] /= complex(1+alpha*k*k*float64(s.NCols)*float64(s.NCols), 0)
		}
		fft.Inverse(buf)
		for i := range row {
			row[i] = real(buf[i])
		}
	}
	return out
}

// PreprocessOptions bundles the file-branch preprocessing chain the paper's
// TomoPy jobs run before reconstruction; zero values disable each step.
type PreprocessOptions struct {
	OutlierThreshold float64 // zinger removal threshold (0 = off)
	RingWindow       int     // ring-removal smoothing window (0 = off)
	PaganinAlpha     float64 // phase-filter strength (0 = off)
}

// Preprocess applies outlier removal, -log conversion, ring removal, and
// phase filtering to a normalized-transmission sinogram, in the order the
// beamline pipeline runs them.
func Preprocess(s *Sinogram, opts PreprocessOptions) *Sinogram {
	cur := s
	if opts.OutlierThreshold > 0 {
		cur = RemoveOutliers(cur, opts.OutlierThreshold)
	}
	cur = MinusLogSinogram(cur)
	if opts.RingWindow > 0 {
		cur = RemoveRings(cur, opts.RingWindow)
	}
	if opts.PaganinAlpha > 0 {
		cur = PaganinFilter(cur, opts.PaganinAlpha)
	}
	return cur
}

package tomo

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/vol"
)

// Algorithm names a reconstruction algorithm, matching the identifiers the
// flow parameters and CLI use.
type Algorithm string

const (
	// AlgFBP is filtered back projection — the streaming branch's choice.
	AlgFBP Algorithm = "fbp"
	// AlgGridrec is the direct Fourier method — TomoPy's default.
	AlgGridrec Algorithm = "gridrec"
	// AlgSIRT is the simultaneous iterative technique — highest quality.
	AlgSIRT Algorithm = "sirt"
	// AlgSART is the block-iterative technique.
	AlgSART Algorithm = "sart"
)

// Precision selects the arithmetic tier a reconstruction plan runs in.
// Float64 is the reference tier, gated by the 1e-12 plan-vs-naive golden
// tests; Float32 halves the memory traffic of the ray kernels and is
// gated by its own relaxed (RMSE vs the float64 result) golden. Gridrec
// has no float32 tier — its oversampled-grid accumulation is too
// cancellation-prone for single precision.
type Precision uint8

const (
	// Float64 is the default double-precision tier.
	Float64 Precision = iota
	// Float32 runs the FBP/SIRT/SART ray kernels in single precision.
	Float32
)

func (p Precision) String() string {
	if p == Float32 {
		return "float32"
	}
	return "float64"
}

// ReconOptions configures a (possibly multi-slice) reconstruction.
type ReconOptions struct {
	Algorithm  Algorithm
	Filter     Filter            // for FBP
	Iterations int               // for SIRT/SART
	Size       int               // output side; 0 = NCols
	Preprocess PreprocessOptions // applied before reconstruction
	// Precision selects the kernel arithmetic tier; the Float64 zero
	// value preserves the golden-tested reference behaviour.
	Precision Precision
	// CORShift, if non-zero, recenters each sinogram before
	// reconstruction. If AutoCOR is set it is estimated per volume from
	// the middle slice instead.
	CORShift float64
	AutoCOR  bool
	// Workers bounds the slice-level parallelism; 0 = GOMAXPROCS.
	Workers int
}

// ReconstructSlice reconstructs a single sinogram with the configured
// algorithm. The sinogram is assumed to already hold line integrals
// (post -log) unless opts.Preprocess is set, in which case it is treated
// as normalized transmission and preprocessed first. One-shot wrapper
// over a cached ReconPlan.
func ReconstructSlice(s *Sinogram, opts ReconOptions) (*vol.Image, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	work := s
	if opts.Preprocess != (PreprocessOptions{}) {
		work = Preprocess(work, opts.Preprocess)
	}
	p, err := PlanRecon(s.Theta, s.NCols, opts)
	if err != nil {
		return nil, err
	}
	return p.reconstruct(work), nil
}

// ReconstructVolume reconstructs every detector row of ps into a volume,
// fanning slices out over a bounded worker pool — the same decomposition
// the paper's 128-core NERSC node exploits. One plan is built for the
// whole volume; each worker holds one pooled scratch, so the steady-state
// per-slice path performs no allocations beyond preprocessing. ctx
// cancels outstanding work.
func ReconstructVolume(ctx context.Context, ps *ProjectionSet, opts ReconOptions) (*vol.Volume, error) {
	if err := ps.Validate(); err != nil {
		return nil, err
	}
	if opts.Size == 0 {
		opts.Size = ps.NCols
	}
	if opts.AutoCOR {
		mid := ps.SinogramForRow(ps.NRows / 2)
		if opts.Preprocess != (PreprocessOptions{}) {
			mid = Preprocess(mid, opts.Preprocess)
		}
		opts.CORShift = FindCenter(mid, 0)
		opts.AutoCOR = false
	}
	plan, err := PlanRecon(ps.Theta, ps.NCols, opts)
	if err != nil {
		return nil, err
	}
	out := vol.NewVolume(plan.Size, plan.Size, ps.NRows)

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > ps.NRows {
		workers = ps.NRows
	}

	rows := make(chan int)
	errc := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := plan.GetScratch()
			defer plan.PutScratch(sc)
			for r := range rows {
				ps.SinogramForRowInto(sc.rowIn, r)
				work := sc.rowIn
				if opts.Preprocess != (PreprocessOptions{}) {
					work = Preprocess(work, opts.Preprocess)
				}
				if err := plan.ReconstructInto(sc.out, work, sc); err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
				out.SetSlice(r, sc.out) // disjoint slices: no lock needed
			}
		}()
	}

feed:
	for r := 0; r < ps.NRows; r++ {
		select {
		case rows <- r:
		case <-ctx.Done():
			break feed
		}
	}
	close(rows)
	wg.Wait()
	select {
	case err := <-errc:
		return nil, err
	default:
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// QuickPreview reconstructs only the three orthogonal preview slices the
// streaming service sends back to the beamline: the central XY slice is
// reconstructed from its sinogram; the XZ and YZ previews are assembled
// from FBP reconstructions of every row restricted to the central column —
// to keep the sub-10-second budget this uses the fast FBP path at reduced
// lateral resolution. The reduced-size pass shares one cached plan across
// all rows (it used to re-derive the ramp filter and trig tables per row)
// and the workers stride the row range with pooled scratches, keeping the
// steady-state call nearly allocation-free.
func QuickPreview(ctx context.Context, ps *ProjectionSet, opts ReconOptions) (xy, xz, yz *vol.Image, err error) {
	if err := ps.Validate(); err != nil {
		return nil, nil, nil, err
	}
	opts.Algorithm = AlgFBP
	n := opts.Size
	if n == 0 {
		n = ps.NCols
		opts.Size = n
	}

	// Full-resolution central slice.
	xy, err = ReconstructSlice(ps.SinogramForRow(ps.NRows/2), opts)
	if err != nil {
		return nil, nil, nil, err
	}

	// Cross sections: reconstruct each row at reduced size in parallel
	// and take the central row/column of each slice.
	small := opts
	small.Size = n / 4
	if small.Size < 16 {
		small.Size = min(16, n)
	}
	plan, err := PlanRecon(ps.Theta, ps.NCols, small)
	if err != nil {
		return nil, nil, nil, err
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > ps.NRows {
		workers = ps.NRows
	}
	pv := &previewPass{
		ps:     ps,
		plan:   plan,
		pre:    small.Preprocess,
		m:      small.Size,
		stride: workers,
		xz:     vol.NewImage(small.Size, ps.NRows),
		yz:     vol.NewImage(small.Size, ps.NRows),
	}
	pv.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go pv.run(ctx, w)
	}
	pv.wg.Wait()
	pv.mu.Lock()
	err = pv.err
	pv.mu.Unlock()
	if err != nil {
		return nil, nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}
	return xy, pv.xz, pv.yz, nil
}

// previewPass carries the shared state of QuickPreview's reduced-size row
// sweep. Workers stride the row range (no feed channel) and write
// disjoint rows of xz/yz, so the only synchronization is the WaitGroup
// and the first-error mutex.
type previewPass struct {
	ps     *ProjectionSet
	plan   *ReconPlan
	pre    PreprocessOptions
	m      int
	stride int
	xz, yz *vol.Image
	wg     sync.WaitGroup
	mu     sync.Mutex
	err    error // guarded by mu
}

func (pv *previewPass) run(ctx context.Context, start int) {
	defer pv.wg.Done()
	sc := pv.plan.GetScratch()
	defer pv.plan.PutScratch(sc)
	for r := start; r < pv.ps.NRows; r += pv.stride {
		if ctx.Err() != nil {
			return
		}
		pv.ps.SinogramForRowInto(sc.rowIn, r)
		work := sc.rowIn
		if pv.pre != (PreprocessOptions{}) {
			work = Preprocess(work, pv.pre)
		}
		if err := pv.plan.ReconstructInto(sc.out, work, sc); err != nil {
			pv.mu.Lock()
			if pv.err == nil {
				pv.err = err
			}
			pv.mu.Unlock()
			return
		}
		for i := 0; i < pv.m; i++ {
			pv.xz.Set(i, r, sc.out.At(i, pv.m/2))
			pv.yz.Set(i, r, sc.out.At(pv.m/2, i))
		}
	}
}

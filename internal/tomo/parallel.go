package tomo

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/vol"
)

// Algorithm names a reconstruction algorithm, matching the identifiers the
// flow parameters and CLI use.
type Algorithm string

const (
	// AlgFBP is filtered back projection — the streaming branch's choice.
	AlgFBP Algorithm = "fbp"
	// AlgGridrec is the direct Fourier method — TomoPy's default.
	AlgGridrec Algorithm = "gridrec"
	// AlgSIRT is the simultaneous iterative technique — highest quality.
	AlgSIRT Algorithm = "sirt"
	// AlgSART is the block-iterative technique.
	AlgSART Algorithm = "sart"
)

// ReconOptions configures a (possibly multi-slice) reconstruction.
type ReconOptions struct {
	Algorithm  Algorithm
	Filter     Filter            // for FBP
	Iterations int               // for SIRT/SART
	Size       int               // output side; 0 = NCols
	Preprocess PreprocessOptions // applied before reconstruction
	// CORShift, if non-zero, recenters each sinogram before
	// reconstruction. If AutoCOR is set it is estimated per volume from
	// the middle slice instead.
	CORShift float64
	AutoCOR  bool
	// Workers bounds the slice-level parallelism; 0 = GOMAXPROCS.
	Workers int
}

// ReconstructSlice reconstructs a single sinogram with the configured
// algorithm. The sinogram is assumed to already hold line integrals
// (post -log) unless opts.Preprocess is set, in which case it is treated
// as normalized transmission and preprocessed first.
func ReconstructSlice(s *Sinogram, opts ReconOptions) (*vol.Image, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	work := s
	if opts.Preprocess != (PreprocessOptions{}) {
		work = Preprocess(work, opts.Preprocess)
	}
	if opts.CORShift != 0 {
		work = ShiftSinogram(work, opts.CORShift)
	}
	switch opts.Algorithm {
	case AlgFBP, "":
		return FBP(work, FBPOptions{Filter: opts.Filter, Size: opts.Size}), nil
	case AlgGridrec:
		return Gridrec(work, opts.Size), nil
	case AlgSIRT:
		return SIRT(work, SIRTOptions{
			Iterations: opts.Iterations, Size: opts.Size, Positivity: true,
		}), nil
	case AlgSART:
		return SART(work, SARTOptions{
			Iterations: opts.Iterations, Size: opts.Size, Positivity: true,
		}), nil
	}
	return nil, fmt.Errorf("tomo: unknown algorithm %q", opts.Algorithm)
}

// ReconstructVolume reconstructs every detector row of ps into a volume,
// fanning slices out over a bounded worker pool — the same decomposition
// the paper's 128-core NERSC node exploits. ctx cancels outstanding work.
func ReconstructVolume(ctx context.Context, ps *ProjectionSet, opts ReconOptions) (*vol.Volume, error) {
	if err := ps.Validate(); err != nil {
		return nil, err
	}
	n := opts.Size
	if n == 0 {
		n = ps.NCols
	}
	if opts.AutoCOR {
		mid := ps.SinogramForRow(ps.NRows / 2)
		if opts.Preprocess != (PreprocessOptions{}) {
			mid = Preprocess(mid, opts.Preprocess)
		}
		opts.CORShift = FindCenter(mid, 0)
		opts.AutoCOR = false
	}
	out := vol.NewVolume(n, n, ps.NRows)

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > ps.NRows {
		workers = ps.NRows
	}

	rows := make(chan int)
	errc := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range rows {
				im, err := ReconstructSlice(ps.SinogramForRow(r), opts)
				if err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
				out.SetSlice(r, im) // disjoint slices: no lock needed
			}
		}()
	}

feed:
	for r := 0; r < ps.NRows; r++ {
		select {
		case rows <- r:
		case <-ctx.Done():
			break feed
		}
	}
	close(rows)
	wg.Wait()
	select {
	case err := <-errc:
		return nil, err
	default:
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// QuickPreview reconstructs only the three orthogonal preview slices the
// streaming service sends back to the beamline: the central XY slice is
// reconstructed from its sinogram; the XZ and YZ previews are assembled
// from FBP reconstructions of every row restricted to the central column —
// to keep the sub-10-second budget this uses the fast FBP path at reduced
// lateral resolution.
func QuickPreview(ctx context.Context, ps *ProjectionSet, opts ReconOptions) (xy, xz, yz *vol.Image, err error) {
	if err := ps.Validate(); err != nil {
		return nil, nil, nil, err
	}
	opts.Algorithm = AlgFBP
	n := opts.Size
	if n == 0 {
		n = ps.NCols
		opts.Size = n
	}

	// Full-resolution central slice.
	xy, err = ReconstructSlice(ps.SinogramForRow(ps.NRows/2), opts)
	if err != nil {
		return nil, nil, nil, err
	}

	// Cross sections: reconstruct each row at reduced size in parallel
	// and take the central row/column of each slice.
	small := opts
	small.Size = n / 4
	if small.Size < 16 {
		small.Size = min(16, n)
	}
	m := small.Size
	xz = vol.NewImage(m, ps.NRows)
	yz = vol.NewImage(m, ps.NRows)

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rows := make(chan int)
	var wg sync.WaitGroup
	var firstErr error
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range rows {
				im, e := ReconstructSlice(ps.SinogramForRow(r), small)
				if e != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = e
					}
					mu.Unlock()
					return
				}
				for i := 0; i < m; i++ {
					xz.Set(i, r, im.At(i, m/2))
					yz.Set(i, r, im.At(m/2, i))
				}
			}
		}()
	}
	for r := 0; r < ps.NRows; r++ {
		select {
		case rows <- r:
		case <-ctx.Done():
			r = ps.NRows
		}
	}
	close(rows)
	wg.Wait()
	if firstErr != nil {
		return nil, nil, nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}
	return xy, xz, yz, nil
}

package tomo

import "math"

// FindCenter estimates the center-of-rotation offset (in detector pixels,
// relative to the geometric detector center) of a 0–180° sinogram. The
// projection at 180° is the mirror image of the projection at 0° about the
// rotation axis, so the offset is found by minimizing the sum of squared
// differences between row 0 and the flipped last row over candidate
// shifts, refined to sub-pixel precision with a parabolic fit — the same
// registration approach TomoPy's find_center_pc uses.
func FindCenter(s *Sinogram, maxShift int) float64 {
	if s.NAngles < 2 {
		return 0
	}
	p0 := s.Row(0)
	p180 := s.Row(s.NAngles - 1)
	n := s.NCols
	flipped := make([]float64, n)
	for i := range flipped {
		flipped[i] = p180[n-1-i]
	}
	if maxShift <= 0 {
		maxShift = n / 4
	}
	if maxShift >= n/2 {
		maxShift = n/2 - 1
	}

	best := 0
	bestCost := math.Inf(1)
	costs := make(map[int]float64)
	cost := func(shift int) float64 {
		if c, ok := costs[shift]; ok {
			return c
		}
		// Mirroring about center + offset δ maps column c of p0 to
		// column c - 2δ of flipped(p180); integer shift approximates 2δ.
		var ss float64
		var cnt int
		for c := 0; c < n; c++ {
			j := c - shift
			if j < 0 || j >= n {
				continue
			}
			d := p0[c] - flipped[j]
			ss += d * d
			cnt++
		}
		if cnt == 0 {
			return math.Inf(1)
		}
		c := ss / float64(cnt)
		costs[shift] = c
		return c
	}
	for shift := -2 * maxShift; shift <= 2*maxShift; shift++ {
		if c := cost(shift); c < bestCost {
			bestCost = c
			best = shift
		}
	}
	// Sub-pixel refinement: fit a parabola through the minimum and its
	// neighbors.
	delta := float64(best)
	c0 := cost(best)
	cm := cost(best - 1)
	cp := cost(best + 1)
	den := cm - 2*c0 + cp
	if den > 1e-12 && !math.IsInf(cm, 0) && !math.IsInf(cp, 0) {
		delta += 0.5 * (cm - cp) / den * -1
	}
	// The integer shift approximates 2× the COR offset.
	return delta / 2
}

// ShiftSinogram returns a copy of s with every row resampled by -shift
// detector pixels (linear interpolation, edge clamp), recentring a
// sinogram whose rotation axis is offset by shift pixels.
func ShiftSinogram(s *Sinogram, shift float64) *Sinogram {
	out := NewSinogram(s.Theta, s.NCols)
	ShiftSinogramInto(out, s, shift)
	return out
}

// ShiftSinogramInto is the allocation-free core of ShiftSinogram,
// resampling every row of s into dst (which must have matching
// dimensions).
//
//perf:hot
func ShiftSinogramInto(dst, s *Sinogram, shift float64) {
	for a := 0; a < s.NAngles; a++ {
		src := s.Row(a)
		d := dst.Row(a)
		for c := range d {
			d[c] = sampleShift(src, float64(c)+shift)
		}
	}
}

package tomo

import (
	"math"

	"repro/internal/vol"
)

// This file holds the single-precision kernel tier (ReconOptions.Precision
// == Float32). The float64 kernels in project.go are the golden-tested
// reference and stay bit-identical to the naive implementations; every
// speed trick that would perturb their rounding — ray clipping to the
// object square, incremental (DDA) pixel stepping, inlined clamped
// bilinear sampling, truncation-based floors — lives here instead, where
// the gate is a relaxed RMSE bound against the float64 result rather than
// 1e-12 equivalence. Halved element width also means the SIRT iterate,
// projections, and residuals stream through cache at twice the rate,
// which is where the iterative solvers spend their time.

// projectRow32 is the single-precision forward projector: one sinogram
// row for the angle whose cosine/sine are ct/st, integrating over the
// square float32 image pix (side n). The sample set matches projectRow
// exactly — the entry/exit steps are solved analytically in float64 and
// then verified against projectRow's own inside predicate, so the two
// tiers integrate identical sample lists and differ only in accumulation
// precision. Between entry and exit the pixel coordinate advances by a
// constant (±sinθ/2, cosθ/2) per step, so the inner loop is a fused
// lerp-accumulate with no range checks. Allocation-free.
//
//perf:hot
func projectRow32(row []float32, pix []float32, n int, ct, st float64) {
	step := 1.0 / float64(n)
	tMax := math.Sqrt2
	nSteps := int(2 * tMax / step)
	ncols := len(row)
	nF := float64(n)
	nf1 := float32(n - 1)
	last := n - 2
	step32 := float32(step)
	dpx := float32(-st * 0.5) // d(px)/dk = -st·step·n/2
	dpy := float32(ct * 0.5)  // d(py)/dk = ct·step·n/2
	for c := 0; c < ncols; c++ {
		sc := -1 + (2*float64(c)+1)/float64(ncols)
		k0, k1 := rayStepBounds(sc, ct, st, tMax, step, nSteps)
		if k1 < k0 {
			row[c] = 0
			continue
		}
		if n < 2 {
			// Degenerate 1×1 image: bilinear sampling always returns the
			// single pixel, so the integral is just the sample count.
			row[c] = float32(k1-k0+1) * pix[0] * step32
			continue
		}
		t0 := -tMax + float64(k0)*step
		px := float32(((sc*ct-t0*st)+1)/2*nF - 0.5)
		py := float32(((sc*st+t0*ct)+1)/2*nF - 0.5)
		var sum float32
		for k := k0; k <= k1; k++ {
			qx, qy := px, py
			if qx < 0 {
				qx = 0
			} else if qx > nf1 {
				qx = nf1
			}
			if qy < 0 {
				qy = 0
			} else if qy > nf1 {
				qy = nf1
			}
			ix := int(qx)
			if ix > last {
				ix = last
			}
			iy := int(qy)
			if iy > last {
				iy = last
			}
			fx := qx - float32(ix)
			fy := qy - float32(iy)
			base := iy*n + ix
			p00 := pix[base]
			p01 := pix[base+1]
			p10 := pix[base+n]
			p11 := pix[base+n+1]
			top := p00 + fx*(p01-p00)
			bot := p10 + fx*(p11-p10)
			sum += top + fy*(bot-top)
			px += dpx
			py += dpy
		}
		row[c] = sum * step32
	}
}

// rayStepBounds returns the inclusive step-index range [k0, k1] of the
// samples t = -tMax + k·step that projectRow's inside predicate accepts
// for the ray at detector coordinate sc. The crossing times of the |x|≤1
// and |y|≤1 constraints are solved analytically (both coordinates are
// linear in t), then the boundary indices are nudged against the exact
// float64 predicate so reciprocal rounding can never add or drop a sample
// relative to the double-precision projector.
func rayStepBounds(sc, ct, st, tMax, step float64, nSteps int) (int, int) {
	tlo, thi := -tMax, tMax
	if st != 0 {
		ta := (sc*ct - 1) / st
		tb := (sc*ct + 1) / st
		if ta > tb {
			ta, tb = tb, ta
		}
		if ta > tlo {
			tlo = ta
		}
		if tb < thi {
			thi = tb
		}
	} else if x := sc * ct; x < -1 || x > 1 {
		return 0, -1
	}
	if ct != 0 {
		ta := (-1 - sc*st) / ct
		tb := (1 - sc*st) / ct
		if ta > tb {
			ta, tb = tb, ta
		}
		if ta > tlo {
			tlo = ta
		}
		if tb < thi {
			thi = tb
		}
	} else if y := sc * st; y < -1 || y > 1 {
		return 0, -1
	}
	if thi < tlo {
		return 0, -1
	}
	k0 := int(math.Ceil((tlo + tMax) / step))
	k1 := int(math.Floor((thi + tMax) / step))
	if k0 < 0 {
		k0 = 0
	}
	if k1 > nSteps {
		k1 = nSteps
	}
	for k0 <= k1 && !rayInside(sc, ct, st, tMax, step, k0) {
		k0++
	}
	for k0 > 0 && rayInside(sc, ct, st, tMax, step, k0-1) {
		k0--
	}
	for k1 >= k0 && !rayInside(sc, ct, st, tMax, step, k1) {
		k1--
	}
	for k1 >= k0 && k1 < nSteps && rayInside(sc, ct, st, tMax, step, k1+1) {
		k1++
	}
	return k0, k1
}

// rayInside replicates projectRow's sample-acceptance predicate exactly,
// including its arithmetic order.
func rayInside(sc, ct, st, tMax, step float64, k int) bool {
	t := -tMax + float64(k)*step
	x := sc*ct - t*st
	y := sc*st + t*ct
	return x >= -1 && x <= 1 && y >= -1 && y <= 1
}

// backProject32 accumulates the backprojection of the nang×ncols
// sinogram data into the n×n float32 image dst (zeroing it first),
// restricted per row to the reconstruction-circle range [lo, hi), then
// applies scale. The detector coordinate is evaluated in multiply form
// (base + k·Δ) with four data-independent angle chains per pixel pass,
// mirroring the float64 kernel's blocking. Allocation-free.
//
//perf:hot
func backProject32(dst []float32, n int, data []float32, nang, ncols int,
	cosT, sinT, xs []float32, lo, hi []int, scale float32) {
	for i := range dst {
		dst[i] = 0
	}
	halfC := float32(ncols) / 2
	dx := 2 / float32(n)
	lastCol := ncols - 1
	lastColF := float32(lastCol)
	for py := 0; py < n; py++ {
		l, h := lo[py], hi[py]
		if l >= h {
			continue
		}
		y := xs[py]
		row := dst[py*n+l : py*n+h]
		m := h - l
		x0 := xs[l]
		a := 0
		for ; a+3 < nang; a += 4 {
			src0 := data[a*ncols : (a+1)*ncols]
			src1 := data[(a+1)*ncols : (a+2)*ncols]
			src2 := data[(a+2)*ncols : (a+3)*ncols]
			src3 := data[(a+3)*ncols : (a+4)*ncols]
			fc0 := (x0*cosT[a]+y*sinT[a]+1)*halfC - 0.5
			fc1 := (x0*cosT[a+1]+y*sinT[a+1]+1)*halfC - 0.5
			fc2 := (x0*cosT[a+2]+y*sinT[a+2]+1)*halfC - 0.5
			fc3 := (x0*cosT[a+3]+y*sinT[a+3]+1)*halfC - 0.5
			d0 := dx * cosT[a] * halfC
			d1 := dx * cosT[a+1] * halfC
			d2 := dx * cosT[a+2] * halfC
			d3 := dx * cosT[a+3] * halfC
			affineQuad32(row, m, src0, src1, src2, src3,
				fc0, fc1, fc2, fc3, d0, d1, d2, d3, lastCol, lastColF)
		}
		for ; a < nang; a++ {
			src := data[a*ncols : (a+1)*ncols]
			fc := (x0*cosT[a]+y*sinT[a]+1)*halfC - 0.5
			d := dx * cosT[a] * halfC
			affineSpan32(row, m, src, fc, d, lastCol, lastColF)
		}
	}
	for i := range dst {
		dst[i] *= scale
	}
}

// affineQuad32 accumulates four angles into row[0:m) with multiply-form
// detector coordinates. Floors use the truncation identity int(f+1)-1,
// which matches math.Floor wherever the resulting column index can pass
// the range test (f ≥ -1); more-negative coordinates may truncate a bin
// high but remain negative and excluded either way.
func affineQuad32(row []float32, m int, src0, src1, src2, src3 []float32,
	fc0, fc1, fc2, fc3, d0, d1, d2, d3 float32, lastCol int, lastColF float32) {
	var kf float32
	for j := 0; j < m; j++ {
		f0 := fc0 + kf*d0
		f1 := fc1 + kf*d1
		f2 := fc2 + kf*d2
		f3 := fc3 + kf*d3
		kf++
		var v01, v23 float32
		c := int(f0+1) - 1
		if c >= 0 && c < lastCol {
			fr := f0 - float32(c)
			v01 = src0[c] + fr*(src0[c+1]-src0[c])
		} else if c == lastCol && f0 <= lastColF {
			v01 = src0[lastCol]
		}
		c = int(f1+1) - 1
		if c >= 0 && c < lastCol {
			fr := f1 - float32(c)
			v01 += src1[c] + fr*(src1[c+1]-src1[c])
		} else if c == lastCol && f1 <= lastColF {
			v01 += src1[lastCol]
		}
		c = int(f2+1) - 1
		if c >= 0 && c < lastCol {
			fr := f2 - float32(c)
			v23 = src2[c] + fr*(src2[c+1]-src2[c])
		} else if c == lastCol && f2 <= lastColF {
			v23 = src2[lastCol]
		}
		c = int(f3+1) - 1
		if c >= 0 && c < lastCol {
			fr := f3 - float32(c)
			v23 += src3[c] + fr*(src3[c+1]-src3[c])
		} else if c == lastCol && f3 <= lastColF {
			v23 += src3[lastCol]
		}
		row[j] += v01 + v23
	}
}

// affineSpan32 accumulates one angle into row[0:m) — the tail of the
// four-wide blocking and the whole of SART's single-angle updates.
func affineSpan32(row []float32, m int, src []float32, fc, d float32, lastCol int, lastColF float32) {
	var kf float32
	for j := 0; j < m; j++ {
		f := fc + kf*d
		kf++
		c := int(f+1) - 1
		if c >= 0 && c < lastCol {
			fr := f - float32(c)
			row[j] += src[c] + fr*(src[c+1]-src[c])
		} else if c == lastCol && f <= lastColF {
			row[j] += src[lastCol]
		}
	}
}

// fbpInto32 is the single-precision FBP path: batch ramp filtering on the
// complex64 FFT plan, then float32 backprojection, with one widening copy
// into the float64 destination at the end.
//
//perf:hot
func (p *ReconPlan) fbpInto32(dst *vol.Image, s *Sinogram, sc *Scratch) {
	p.filterInto32(sc.filt32, s, sc.batch32)
	backProject32(sc.upd32, p.Size, sc.filt32, p.NAngles, p.NCols,
		p.cosT32, p.sinT32, p.xs32, p.loPx, p.hiPx,
		float32(math.Pi)/float32(p.NAngles))
	for i, v := range sc.upd32 {
		dst.Pix[i] = float64(v)
	}
}

// filterInto32 ramp-filters every row of src into the float32 sinogram
// dst, packing row pairs into one complex64 transform exactly like the
// float64 filterInto and convolving the whole batch in one pass.
//
//perf:hot
func (p *ReconPlan) filterInto32(dst []float32, src *Sinogram, batch []complex64) {
	nc := p.NCols
	m := p.fm
	pairs := (src.NAngles + 1) / 2
	buf := batch[:pairs*m]
	a := 0
	for pr := 0; pr < pairs; pr++ {
		cbuf := buf[pr*m : (pr+1)*m]
		if a+1 < src.NAngles {
			ra, rb := src.Row(a), src.Row(a+1)
			for i := 0; i < nc; i++ {
				cbuf[i] = complex(float32(ra[i]), float32(rb[i]))
			}
		} else {
			ra := src.Row(a)
			for i := 0; i < nc; i++ {
				cbuf[i] = complex(float32(ra[i]), 0)
			}
		}
		for i := nc; i < m; i++ {
			cbuf[i] = 0
		}
		a += 2
	}
	p.fp32.ConvolveBatchInto(buf, p.taps32)
	a = 0
	for pr := 0; pr < pairs; pr++ {
		cbuf := buf[pr*m : (pr+1)*m]
		da := dst[a*nc : (a+1)*nc]
		if a+1 < src.NAngles {
			db := dst[(a+1)*nc : (a+2)*nc]
			for i := 0; i < nc; i++ {
				da[i] = real(cbuf[i])
				db[i] = imag(cbuf[i])
			}
		} else {
			for i := 0; i < nc; i++ {
				da[i] = real(cbuf[i])
			}
		}
		a += 2
	}
}

// sirtInto32 runs the SIRT iteration entirely in single precision: the
// iterate, forward projections, residuals, and update image are float32,
// and the ray weights come from the plan's converted tables. Input and
// output cross the float64 boundary exactly once each.
//
//perf:hot
func (p *ReconPlan) sirtInto32(dst *vol.Image, s *Sinogram, sc *Scratch) {
	for i, v := range s.Data {
		sc.sino32[i] = float32(v)
	}
	x := sc.x32
	for i := range x {
		x[i] = 0
	}
	n := p.Size
	relax := float32(p.Relax)
	bpScale := float32(math.Pi) / float32(p.NAngles)
	for it := 0; it < p.Iterations; it++ {
		for a := 0; a < p.NAngles; a++ {
			projectRow32(sc.ax32[a*p.NCols:(a+1)*p.NCols], x, n, p.cosT[a], p.sinT[a])
		}
		for i := range sc.res32 {
			r := sc.sino32[i] - sc.ax32[i]
			if w := p.rowSum32[i]; w > 1e-9 {
				r /= w
			} else {
				r = 0
			}
			sc.res32[i] = r
		}
		backProject32(sc.upd32, n, sc.res32, p.NAngles, p.NCols,
			p.cosT32, p.sinT32, p.xs32, p.loPx, p.hiPx, bpScale)
		for i := range x {
			c := p.colSum32[i]
			if c <= 1e-9 {
				continue
			}
			x[i] += relax * sc.upd32[i] / c
			if p.Positivity && x[i] < 0 {
				x[i] = 0
			}
		}
	}
	for i, v := range x {
		dst.Pix[i] = float64(v)
	}
}

// sartInto32 is the single-precision block-iterative solver: per-angle
// forward projection, residual normalization, and single-angle
// backprojection, all in float32.
//
//perf:hot
func (p *ReconPlan) sartInto32(dst *vol.Image, s *Sinogram, sc *Scratch) {
	for i, v := range s.Data {
		sc.sino32[i] = float32(v)
	}
	x := sc.x32
	for i := range x {
		x[i] = 0
	}
	n := p.Size
	scale := float32(p.Relax / math.Pi)
	for it := 0; it < p.Iterations; it++ {
		for a := 0; a < p.NAngles; a++ {
			projectRow32(sc.ax32, x, n, p.cosT[a], p.sinT[a])
			brow := sc.sino32[a*p.NCols : (a+1)*p.NCols]
			wrow := p.rowSum32[a*p.NCols : (a+1)*p.NCols]
			for c := 0; c < p.NCols; c++ {
				r := brow[c] - sc.ax32[c]
				if wrow[c] > 1e-9 {
					r /= wrow[c]
				} else {
					r = 0
				}
				sc.res32[c] = r
			}
			backProject32(sc.upd32, n, sc.res32, 1, p.NCols,
				p.cosT32[a:a+1], p.sinT32[a:a+1], p.xs32, p.loPx, p.hiPx, math.Pi)
			for i := range x {
				x[i] += scale * sc.upd32[i]
				if p.Positivity && x[i] < 0 {
					x[i] = 0
				}
			}
		}
	}
	for i, v := range x {
		dst.Pix[i] = float64(v)
	}
}

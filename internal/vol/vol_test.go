package vol

import (
	"math"
	"testing"
	"testing/quick"
)

func TestImageAtSet(t *testing.T) {
	im := NewImage(4, 3)
	im.Set(2, 1, 7.5)
	if im.At(2, 1) != 7.5 {
		t.Fatal("At/Set mismatch")
	}
	if im.At(0, 0) != 0 {
		t.Fatal("unset pixel not zero")
	}
}

func TestNewImagePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewImage(-1, 4)
}

func TestRowAliases(t *testing.T) {
	im := NewImage(3, 2)
	row := im.Row(1)
	row[0] = 9
	if im.At(0, 1) != 9 {
		t.Fatal("Row should alias storage")
	}
}

func TestCloneIndependent(t *testing.T) {
	im := NewImage(2, 2)
	im.Set(0, 0, 1)
	c := im.Clone()
	c.Set(0, 0, 5)
	if im.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestMinMaxMeanFill(t *testing.T) {
	im := NewImage(2, 2)
	im.Fill(3)
	im.Set(1, 1, -1)
	lo, hi := im.MinMax()
	if lo != -1 || hi != 3 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
	if im.Mean() != 2 {
		t.Fatalf("Mean = %v, want 2", im.Mean())
	}
	empty := NewImage(0, 0)
	if lo, hi := empty.MinMax(); lo != 0 || hi != 0 {
		t.Fatal("empty MinMax should be 0,0")
	}
	if empty.Mean() != 0 {
		t.Fatal("empty Mean should be 0")
	}
}

func TestBilinear(t *testing.T) {
	im := NewImage(2, 2)
	im.Set(0, 0, 0)
	im.Set(1, 0, 1)
	im.Set(0, 1, 2)
	im.Set(1, 1, 3)
	if got := im.Bilinear(0.5, 0.5); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("center = %v, want 1.5", got)
	}
	if got := im.Bilinear(0, 0); got != 0 {
		t.Errorf("corner = %v, want 0", got)
	}
	// Clamping.
	if got := im.Bilinear(-5, -5); got != 0 {
		t.Errorf("clamped = %v, want 0", got)
	}
	if got := im.Bilinear(10, 10); got != 3 {
		t.Errorf("clamped = %v, want 3", got)
	}
}

func TestBilinearExactAtPixels(t *testing.T) {
	im := NewImage(4, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			im.Set(x, y, float64(x*10+y))
		}
	}
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			if got := im.Bilinear(float64(x), float64(y)); got != im.At(x, y) {
				t.Fatalf("Bilinear(%d,%d) = %v, want %v", x, y, got, im.At(x, y))
			}
		}
	}
}

func TestDownsample2(t *testing.T) {
	im := NewImage(4, 4)
	im.Fill(2)
	ds := im.Downsample2()
	if ds.W != 2 || ds.H != 2 {
		t.Fatalf("downsampled dims %dx%d", ds.W, ds.H)
	}
	for _, v := range ds.Pix {
		if v != 2 {
			t.Fatal("box average of constant image should be constant")
		}
	}
	// Odd dimensions.
	odd := NewImage(3, 5)
	ds2 := odd.Downsample2()
	if ds2.W != 2 || ds2.H != 3 {
		t.Fatalf("odd downsample dims %dx%d, want 2x3", ds2.W, ds2.H)
	}
}

// Property: downsampling preserves the mean of a constant image and halves
// dimensions (rounding up).
func TestDownsampleProperty(t *testing.T) {
	f := func(w8, h8 uint8, val float64) bool {
		w := int(w8%30) + 1
		h := int(h8%30) + 1
		if math.IsNaN(val) || math.IsInf(val, 0) || math.Abs(val) > 1e300 {
			return true // 2x2x2 box sum would overflow
		}
		im := NewImage(w, h)
		im.Fill(val)
		ds := im.Downsample2()
		if ds.W != (w+1)/2 || ds.H != (h+1)/2 {
			return false
		}
		for _, v := range ds.Pix {
			if math.Abs(v-val) > 1e-9*math.Max(1, math.Abs(val)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVolumeSliceAliases(t *testing.T) {
	v := NewVolume(2, 2, 3)
	s := v.Slice(1)
	s.Set(0, 0, 4)
	if v.At(0, 0, 1) != 4 {
		t.Fatal("Slice should alias storage")
	}
}

func TestVolumeSliceOutOfRange(t *testing.T) {
	v := NewVolume(2, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	v.Slice(2)
}

func TestSetSlice(t *testing.T) {
	v := NewVolume(2, 2, 2)
	im := NewImage(2, 2)
	im.Fill(7)
	v.SetSlice(1, im)
	if v.At(1, 1, 1) != 7 || v.At(0, 0, 0) != 0 {
		t.Fatal("SetSlice wrote wrong region")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected dimension mismatch panic")
		}
	}()
	v.SetSlice(0, NewImage(3, 2))
}

func TestOrthoSlices(t *testing.T) {
	v := NewVolume(4, 6, 8)
	v.Set(2, 3, 4, 9) // center-ish voxel
	xy, xz, yz := v.OrthoSlices()
	if xy.W != 4 || xy.H != 6 {
		t.Fatalf("xy dims %dx%d", xy.W, xy.H)
	}
	if xz.W != 4 || xz.H != 8 {
		t.Fatalf("xz dims %dx%d", xz.W, xz.H)
	}
	if yz.W != 6 || yz.H != 8 {
		t.Fatalf("yz dims %dx%d", yz.W, yz.H)
	}
	if xy.At(2, 3) != 9 {
		t.Error("xy slice missed center voxel")
	}
	if xz.At(2, 4) != 9 {
		t.Error("xz slice missed center voxel")
	}
	if yz.At(3, 4) != 9 {
		t.Error("yz slice missed center voxel")
	}
}

func TestVolumeDownsample2(t *testing.T) {
	v := NewVolume(4, 4, 4)
	for i := range v.Data {
		v.Data[i] = 5
	}
	ds := v.Downsample2()
	if ds.W != 2 || ds.H != 2 || ds.D != 2 {
		t.Fatalf("dims %dx%dx%d", ds.W, ds.H, ds.D)
	}
	for _, x := range ds.Data {
		if x != 5 {
			t.Fatal("constant volume downsample changed values")
		}
	}
}

func TestThresholdAndFraction(t *testing.T) {
	v := NewVolume(2, 2, 1)
	v.Data = []float64{0, 0.5, 1, 1.5}
	mask := v.Threshold(1)
	want := []float64{0, 0, 1, 1}
	for i := range want {
		if mask.Data[i] != want[i] {
			t.Fatalf("mask[%d] = %v, want %v", i, mask.Data[i], want[i])
		}
	}
	if got := v.FractionAbove(1); got != 0.5 {
		t.Fatalf("FractionAbove = %v, want 0.5", got)
	}
	empty := NewVolume(0, 0, 0)
	if empty.FractionAbove(0) != 0 {
		t.Fatal("empty volume fraction should be 0")
	}
}

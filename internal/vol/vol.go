// Package vol defines the dense image and volume containers shared by the
// phantom generators, the reconstruction kernels, the multiscale store, and
// the access layer. Images are row-major float64 grids; volumes are stacks
// of equally-sized slices, matching the slice-parallel decomposition used
// by the reconstruction worker pool.
package vol

import (
	"fmt"
	"math"
)

// Image is a dense 2D row-major grid of float64 samples.
type Image struct {
	W, H int
	Pix  []float64
}

// NewImage allocates a zeroed W×H image.
func NewImage(w, h int) *Image {
	if w < 0 || h < 0 {
		panic("vol: negative image dimensions")
	}
	return &Image{W: w, H: h, Pix: make([]float64, w*h)}
}

// At returns the sample at (x, y). Out-of-range access panics via the
// underlying slice.
func (im *Image) At(x, y int) float64 { return im.Pix[y*im.W+x] }

// Set stores v at (x, y).
func (im *Image) Set(x, y int, v float64) { im.Pix[y*im.W+x] = v }

// Row returns the y-th row as a slice aliasing the image storage.
func (im *Image) Row(y int) []float64 { return im.Pix[y*im.W : (y+1)*im.W] }

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	c := NewImage(im.W, im.H)
	copy(c.Pix, im.Pix)
	return c
}

// Fill sets every sample to v.
func (im *Image) Fill(v float64) {
	for i := range im.Pix {
		im.Pix[i] = v
	}
}

// MinMax returns the minimum and maximum sample values. An empty image
// returns (0, 0).
func (im *Image) MinMax() (lo, hi float64) {
	if len(im.Pix) == 0 {
		return 0, 0
	}
	lo, hi = im.Pix[0], im.Pix[0]
	for _, v := range im.Pix {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Mean returns the mean sample value, or 0 for an empty image.
func (im *Image) Mean() float64 {
	if len(im.Pix) == 0 {
		return 0
	}
	var s float64
	for _, v := range im.Pix {
		s += v
	}
	return s / float64(len(im.Pix))
}

// Bilinear samples the image at continuous coordinates with bilinear
// interpolation, clamping to the border.
func (im *Image) Bilinear(x, y float64) float64 {
	if im.W == 0 || im.H == 0 {
		return 0
	}
	if x < 0 {
		x = 0
	}
	if y < 0 {
		y = 0
	}
	maxX := float64(im.W - 1)
	maxY := float64(im.H - 1)
	if x > maxX {
		x = maxX
	}
	if y > maxY {
		y = maxY
	}
	x0 := int(math.Floor(x))
	y0 := int(math.Floor(y))
	x1, y1 := x0+1, y0+1
	if x1 >= im.W {
		x1 = im.W - 1
	}
	if y1 >= im.H {
		y1 = im.H - 1
	}
	fx := x - float64(x0)
	fy := y - float64(y0)
	v00 := im.At(x0, y0)
	v10 := im.At(x1, y0)
	v01 := im.At(x0, y1)
	v11 := im.At(x1, y1)
	return v00*(1-fx)*(1-fy) + v10*fx*(1-fy) + v01*(1-fx)*fy + v11*fx*fy
}

// Downsample2 returns a half-resolution image by 2×2 box averaging; odd
// trailing rows/columns are folded into the last output cell. It is the
// reduction step of the multiscale (Zarr-style) pyramid.
func (im *Image) Downsample2() *Image {
	w := (im.W + 1) / 2
	h := (im.H + 1) / 2
	out := NewImage(w, h)
	for oy := 0; oy < h; oy++ {
		for ox := 0; ox < w; ox++ {
			var sum float64
			var n int
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					x := ox*2 + dx
					y := oy*2 + dy
					if x < im.W && y < im.H {
						sum += im.At(x, y)
						n++
					}
				}
			}
			out.Set(ox, oy, sum/float64(n))
		}
	}
	return out
}

// Volume is a dense stack of D slices, each W×H, stored slice-major.
type Volume struct {
	W, H, D int
	Data    []float64
}

// NewVolume allocates a zeroed W×H×D volume.
func NewVolume(w, h, d int) *Volume {
	if w < 0 || h < 0 || d < 0 {
		panic("vol: negative volume dimensions")
	}
	return &Volume{W: w, H: h, D: d, Data: make([]float64, w*h*d)}
}

// At returns the voxel at (x, y, z).
func (v *Volume) At(x, y, z int) float64 { return v.Data[(z*v.H+y)*v.W+x] }

// Set stores val at (x, y, z).
func (v *Volume) Set(x, y, z int, val float64) { v.Data[(z*v.H+y)*v.W+x] = val }

// Slice returns slice z as an Image aliasing the volume storage.
func (v *Volume) Slice(z int) *Image {
	if z < 0 || z >= v.D {
		panic(fmt.Sprintf("vol: slice %d out of range [0,%d)", z, v.D))
	}
	return &Image{W: v.W, H: v.H, Pix: v.Data[z*v.W*v.H : (z+1)*v.W*v.H]}
}

// SetSlice copies im into slice z. Dimensions must match.
func (v *Volume) SetSlice(z int, im *Image) {
	if im.W != v.W || im.H != v.H {
		panic("vol: SetSlice dimension mismatch")
	}
	copy(v.Data[z*v.W*v.H:(z+1)*v.W*v.H], im.Pix)
}

// OrthoSlices returns the three central orthogonal cross sections
// (XY, XZ, YZ) — the "three-slice preview" the streaming service returns
// to the beamline.
func (v *Volume) OrthoSlices() (xy, xz, yz *Image) {
	xy = v.Slice(v.D / 2).Clone()
	xz = NewImage(v.W, v.D)
	yc := v.H / 2
	for z := 0; z < v.D; z++ {
		for x := 0; x < v.W; x++ {
			xz.Set(x, z, v.At(x, yc, z))
		}
	}
	yz = NewImage(v.H, v.D)
	xc := v.W / 2
	for z := 0; z < v.D; z++ {
		for y := 0; y < v.H; y++ {
			yz.Set(y, z, v.At(xc, y, z))
		}
	}
	return xy, xz, yz
}

// MinMax returns the minimum and maximum voxel values.
func (v *Volume) MinMax() (lo, hi float64) {
	if len(v.Data) == 0 {
		return 0, 0
	}
	lo, hi = v.Data[0], v.Data[0]
	for _, x := range v.Data {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Downsample2 box-averages the volume by 2 in every axis, producing the
// next level of a multiscale pyramid.
func (v *Volume) Downsample2() *Volume {
	w := (v.W + 1) / 2
	h := (v.H + 1) / 2
	d := (v.D + 1) / 2
	out := NewVolume(w, h, d)
	for oz := 0; oz < d; oz++ {
		for oy := 0; oy < h; oy++ {
			for ox := 0; ox < w; ox++ {
				var sum float64
				var n int
				for dz := 0; dz < 2; dz++ {
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							x, y, z := ox*2+dx, oy*2+dy, oz*2+dz
							if x < v.W && y < v.H && z < v.D {
								sum += v.At(x, y, z)
								n++
							}
						}
					}
				}
				out.Set(ox, oy, oz, sum/float64(n))
			}
		}
	}
	return out
}

// Threshold returns a binary mask volume: 1 where the voxel value is ≥ t,
// else 0. It is the segmentation primitive used by the proppant case study.
func (v *Volume) Threshold(t float64) *Volume {
	out := NewVolume(v.W, v.H, v.D)
	for i, x := range v.Data {
		if x >= t {
			out.Data[i] = 1
		}
	}
	return out
}

// FractionAbove returns the fraction of voxels with value ≥ t — the
// porosity/solid-fraction metric used in the case studies.
func (v *Volume) FractionAbove(t float64) float64 {
	if len(v.Data) == 0 {
		return 0
	}
	n := 0
	for _, x := range v.Data {
		if x >= t {
			n++
		}
	}
	return float64(n) / float64(len(v.Data))
}

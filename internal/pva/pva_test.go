package pva

import (
	"context"
	"math"
	"net"
	"testing"
	"testing/quick"
	"time"
)

func mkFrame(seq uint64, kind FrameKind) *Frame {
	rows, cols := 4, 6
	data := make([]uint16, rows*cols)
	for i := range data {
		data[i] = uint16(i + int(seq))
	}
	return &Frame{
		Seq: seq, ScanID: "scan-001", AngleRad: 0.5, Rows: rows, Cols: cols,
		Timestamp: 1234567890, Kind: kind, Data: data,
	}
}

func TestFrameEncodeDecode(t *testing.T) {
	f := mkFrame(42, KindProjection)
	got, err := DecodeFrame(f.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != f.Seq || got.ScanID != f.ScanID || got.AngleRad != f.AngleRad ||
		got.Rows != f.Rows || got.Cols != f.Cols || got.Timestamp != f.Timestamp ||
		got.Kind != f.Kind {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range f.Data {
		if got.Data[i] != f.Data[i] {
			t.Fatal("payload mismatch")
		}
	}
}

func TestFrameEncodeDecodeProperty(t *testing.T) {
	f := func(seq uint64, angle float64, id string, n uint8) bool {
		if math.IsNaN(angle) || math.IsInf(angle, 0) {
			return true
		}
		if len(id) > 255 {
			id = id[:255]
		}
		data := make([]uint16, int(n))
		for i := range data {
			data[i] = uint16(i * 7)
		}
		fr := &Frame{Seq: seq, ScanID: id, AngleRad: angle,
			Rows: 1, Cols: int(n), Data: data}
		got, err := DecodeFrame(fr.Encode())
		if err != nil {
			return false
		}
		if got.Seq != seq || got.ScanID != id || got.AngleRad != angle || got.Cols != int(n) {
			return false
		}
		for i := range data {
			if got.Data[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeFrame([]byte{1, 2, 3}); err == nil {
		t.Fatal("short buffer should fail")
	}
	// Truncated scan id.
	f := mkFrame(1, KindProjection)
	raw := f.Encode()
	if _, err := DecodeFrame(raw[:35]); err == nil {
		t.Fatal("truncated id should fail")
	}
}

func TestValidate(t *testing.T) {
	good := mkFrame(1, KindProjection)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := mkFrame(1, KindProjection)
	bad.Data = bad.Data[:3]
	if err := bad.Validate(); err == nil {
		t.Fatal("size mismatch should fail validation")
	}
	noID := mkFrame(1, KindProjection)
	noID.ScanID = ""
	if err := noID.Validate(); err == nil {
		t.Fatal("missing scan id should fail")
	}
	nan := mkFrame(1, KindProjection)
	nan.AngleRad = math.NaN()
	if err := nan.Validate(); err == nil {
		t.Fatal("NaN angle should fail")
	}
	zero := mkFrame(1, KindProjection)
	zero.Rows = 0
	if err := zero.Validate(); err == nil {
		t.Fatal("zero rows should fail")
	}
	end := &Frame{Kind: KindEndOfScan}
	if err := end.Validate(); err != nil {
		t.Fatal("end-of-scan marker needs no payload")
	}
}

func TestServerMonitorStream(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mon, err := NewMonitor(srv.Addr(), "det1")
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	waitMonitors(t, srv, "det1", 1)

	for seq := uint64(1); seq <= 5; seq++ {
		if err := srv.Publish("det1", mkFrame(seq, KindProjection)); err != nil {
			t.Fatal(err)
		}
	}
	for seq := uint64(1); seq <= 5; seq++ {
		f, err := mon.Next(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if f.Seq != seq {
			t.Fatalf("seq = %d, want %d", f.Seq, seq)
		}
	}
	if mon.Missed != 0 {
		t.Fatalf("missed = %d", mon.Missed)
	}
}

// waitMonitors polls the server's monitor count under a ctx deadline
// instead of sleeping fixed intervals, so -race runs are deterministic.
func waitMonitors(t *testing.T, srv *Server, channel string, n int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for srv.Monitors(channel) < n {
		select {
		case <-ctx.Done():
			t.Fatalf("only %d monitors on %s", srv.Monitors(channel), channel)
		case <-tick.C:
		}
	}
}

func TestMonitorDetectsGaps(t *testing.T) {
	srv, _ := NewServer("127.0.0.1:0", 64)
	defer srv.Close()
	mon, _ := NewMonitor(srv.Addr(), "det1")
	defer mon.Close()
	waitMonitors(t, srv, "det1", 1)

	srv.Publish("det1", mkFrame(1, KindProjection))
	srv.Publish("det1", mkFrame(5, KindProjection)) // 3 missing
	for i := 0; i < 2; i++ {
		if _, err := mon.Next(2 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if mon.Missed != 3 {
		t.Fatalf("missed = %d, want 3", mon.Missed)
	}
}

// TestMonitorHook checks the per-frame delivery hook: it fires once per
// frame Next returns — including the end-of-scan marker — in order, and
// after gap accounting has updated Missed.
func TestMonitorHook(t *testing.T) {
	srv, _ := NewServer("127.0.0.1:0", 64)
	defer srv.Close()
	mon, _ := NewMonitor(srv.Addr(), "det1")
	defer mon.Close()
	waitMonitors(t, srv, "det1", 1)

	var seqs []uint64
	var missedAtHook []int
	mon.Hook = func(f *Frame) {
		seqs = append(seqs, f.Seq)
		missedAtHook = append(missedAtHook, mon.Missed)
	}
	srv.Publish("det1", mkFrame(1, KindProjection))
	srv.Publish("det1", mkFrame(4, KindProjection)) // 2 missing
	srv.Publish("det1", &Frame{Seq: 5, ScanID: "scan-001", Kind: KindEndOfScan})
	for i := 0; i < 3; i++ {
		if _, err := mon.Next(2 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if len(seqs) != 3 || seqs[0] != 1 || seqs[1] != 4 || seqs[2] != 5 {
		t.Fatalf("hook saw seqs %v", seqs)
	}
	if missedAtHook[1] != 2 {
		t.Fatalf("hook at frame 4 saw Missed = %d, want gap already accounted", missedAtHook[1])
	}
}

func TestChannelIsolation(t *testing.T) {
	srv, _ := NewServer("127.0.0.1:0", 64)
	defer srv.Close()
	monA, _ := NewMonitor(srv.Addr(), "a")
	defer monA.Close()
	monB, _ := NewMonitor(srv.Addr(), "b")
	defer monB.Close()
	waitMonitors(t, srv, "a", 1)
	waitMonitors(t, srv, "b", 1)

	srv.Publish("a", mkFrame(1, KindProjection))
	f, err := monA.Next(2 * time.Second)
	if err != nil || f.Seq != 1 {
		t.Fatalf("monA: %v %v", f, err)
	}
	if _, err := monB.Next(50 * time.Millisecond); err == nil {
		t.Fatal("monB should not receive channel-a frames")
	}
}

func TestEndOfScanNeverDropped(t *testing.T) {
	srv, _ := NewServer("127.0.0.1:0", 1)
	defer srv.Close()
	mon, _ := NewMonitor(srv.Addr(), "det1")
	defer mon.Close()
	waitMonitors(t, srv, "det1", 1)

	// Saturate the path with a burst the unread client cannot absorb
	// (the OS socket buffer fills, the relay goroutine blocks, and the
	// hwm=1 channel overflows), then publish end-of-scan, which must
	// block until deliverable rather than being dropped.
	big := make([]uint16, 256*256) // 128 KiB per frame on the wire
	published := 500
	for seq := 1; seq <= published; seq++ {
		f := mkFrame(uint64(seq), KindProjection)
		f.Rows, f.Cols, f.Data = 256, 256, big
		if err := srv.Publish("det1", f); err != nil {
			t.Fatal(err)
		}
	}
	go srv.Publish("det1", &Frame{Seq: uint64(published + 1), ScanID: "scan-001", Kind: KindEndOfScan})

	sawEnd := false
	delivered := 0
	for !sawEnd {
		f, err := mon.Next(5 * time.Second)
		if err != nil {
			t.Fatalf("stream ended before end-of-scan: %v", err)
		}
		delivered++
		if f.Kind == KindEndOfScan {
			sawEnd = true
		}
	}
	if srv.Dropped() == 0 {
		t.Fatal("expected projection drops at the high-water mark")
	}
	if srv.Dropped()+delivered != published+1 {
		t.Fatalf("accounting: %d dropped + %d delivered != %d published",
			srv.Dropped(), delivered, published+1)
	}
}

func TestMirrorRelaysStream(t *testing.T) {
	// IOC → mirror → consumer, the acquisition-layer topology.
	ioc, _ := NewServer("127.0.0.1:0", 64)
	defer ioc.Close()
	mirrorSrv, _ := NewServer("127.0.0.1:0", 64)
	defer mirrorSrv.Close()

	mirror, err := NewMirror(ioc.Addr(), "det1", mirrorSrv)
	if err != nil {
		t.Fatal(err)
	}
	waitMonitors(t, ioc, "det1", 1)

	consumer, _ := NewMonitor(mirrorSrv.Addr(), "det1")
	defer consumer.Close()
	waitMonitors(t, mirrorSrv, "det1", 1)

	mirrorDone := make(chan error, 1)
	go func() { mirrorDone <- mirror.Run() }()

	for seq := uint64(1); seq <= 3; seq++ {
		ioc.Publish("det1", mkFrame(seq, KindProjection))
	}
	ioc.Publish("det1", &Frame{Seq: 4, ScanID: "scan-001", Kind: KindEndOfScan})

	var kinds []FrameKind
	for i := 0; i < 4; i++ {
		f, err := consumer.Next(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, f.Kind)
	}
	if kinds[3] != KindEndOfScan {
		t.Fatalf("kinds = %v", kinds)
	}
	ioc.Close() // ends the mirror's source stream
	if err := <-mirrorDone; err != nil {
		t.Fatalf("mirror exit: %v", err)
	}
	if mirror.Relayed != 4 {
		t.Fatalf("relayed = %d", mirror.Relayed)
	}
}

func TestUnsupportedRequest(t *testing.T) {
	srv, _ := NewServer("127.0.0.1:0", 4)
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeMsg(conn, []byte("PUT something\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, err := readMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "ERROR unsupported request" {
		t.Fatalf("resp = %q", resp)
	}
}

func BenchmarkFrameEncodeDecode(b *testing.B) {
	f := &Frame{Seq: 1, ScanID: "s", AngleRad: 1, Rows: 128, Cols: 128,
		Data: make([]uint16, 128*128)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		raw := f.Encode()
		if _, err := DecodeFrame(raw); err != nil {
			b.Fatal(err)
		}
	}
}

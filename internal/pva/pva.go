// Package pva implements the acquisition layer's streaming fabric in the
// shape of EPICS pvAccess as the paper uses it: a detector IOC publishes
// NTNDArray-like image frames on a named channel; a mirror server
// republishes the IOC's stream so multiple consumers (the file-writer
// service and the remote streaming-reconstruction service at NERSC) can
// monitor it without loading the detector; monitor clients validate frame
// metadata and detect gaps in the sequence counter.
//
// Wire protocol (TCP): the client sends one length-prefixed frame
// "MONITOR <channel>\n"; the server then streams encoded image frames.
package pva

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"strings"
	"sync"
	"time"
)

// Frame is an NTNDArray-like detector image frame: a uint16 image with
// acquisition metadata.
type Frame struct {
	Seq       uint64 // monotonically increasing per acquisition
	ScanID    string
	AngleRad  float64
	Rows      int
	Cols      int
	Timestamp int64 // nanoseconds since epoch
	// Kind distinguishes projection frames from flat/dark reference
	// frames and the end-of-scan marker.
	Kind FrameKind
	Data []uint16
}

// FrameKind labels the role of a frame within an acquisition.
type FrameKind uint8

// Frame kinds.
const (
	KindProjection FrameKind = iota
	KindFlat
	KindDark
	KindEndOfScan
)

// Validate checks the structural invariants the file-writer enforces
// before using a frame's metadata to place it in the HDF5 file.
func (f *Frame) Validate() error {
	if f.Kind == KindEndOfScan {
		return nil
	}
	if f.Rows <= 0 || f.Cols <= 0 {
		return fmt.Errorf("pva: frame %d: non-positive dims %dx%d", f.Seq, f.Rows, f.Cols)
	}
	if len(f.Data) != f.Rows*f.Cols {
		return fmt.Errorf("pva: frame %d: %d samples for %dx%d", f.Seq, len(f.Data), f.Rows, f.Cols)
	}
	if f.ScanID == "" {
		return fmt.Errorf("pva: frame %d: missing scan id", f.Seq)
	}
	if math.IsNaN(f.AngleRad) || math.IsInf(f.AngleRad, 0) {
		return fmt.Errorf("pva: frame %d: bad angle", f.Seq)
	}
	return nil
}

// Encode serializes the frame.
func (f *Frame) Encode() []byte {
	var buf bytes.Buffer
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], f.Seq)
	buf.Write(hdr[:])
	binary.LittleEndian.PutUint64(hdr[:], uint64(f.Timestamp))
	buf.Write(hdr[:])
	binary.LittleEndian.PutUint64(hdr[:], math.Float64bits(f.AngleRad))
	buf.Write(hdr[:])
	var dims [8]byte
	binary.LittleEndian.PutUint32(dims[0:], uint32(f.Rows))
	binary.LittleEndian.PutUint32(dims[4:], uint32(f.Cols))
	buf.Write(dims[:])
	buf.WriteByte(byte(f.Kind))
	idBytes := []byte(f.ScanID)
	buf.WriteByte(byte(len(idBytes)))
	buf.Write(idBytes)
	data := make([]byte, 2*len(f.Data))
	for i, v := range f.Data {
		binary.LittleEndian.PutUint16(data[i*2:], v)
	}
	buf.Write(data)
	return buf.Bytes()
}

// DecodeFrame parses an encoded frame.
func DecodeFrame(raw []byte) (*Frame, error) {
	const fixed = 8 + 8 + 8 + 8 + 1 + 1
	if len(raw) < fixed {
		return nil, fmt.Errorf("pva: frame too short (%d bytes)", len(raw))
	}
	f := &Frame{}
	f.Seq = binary.LittleEndian.Uint64(raw[0:])
	f.Timestamp = int64(binary.LittleEndian.Uint64(raw[8:]))
	f.AngleRad = math.Float64frombits(binary.LittleEndian.Uint64(raw[16:]))
	f.Rows = int(binary.LittleEndian.Uint32(raw[24:]))
	f.Cols = int(binary.LittleEndian.Uint32(raw[28:]))
	f.Kind = FrameKind(raw[32])
	idLen := int(raw[33])
	if len(raw) < fixed+idLen {
		return nil, fmt.Errorf("pva: truncated scan id")
	}
	f.ScanID = string(raw[fixed : fixed+idLen])
	payload := raw[fixed+idLen:]
	if len(payload)%2 != 0 {
		return nil, fmt.Errorf("pva: odd payload length %d", len(payload))
	}
	f.Data = make([]uint16, len(payload)/2)
	for i := range f.Data {
		f.Data[i] = binary.LittleEndian.Uint16(payload[i*2:])
	}
	return f, nil
}

// writeMsg / readMsg: 4-byte LE length framing.
func writeMsg(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readMsg(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > 1<<30 {
		return nil, fmt.Errorf("pva: message length %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// Server is a PVA-style channel server (the detector IOC, or a mirror).
// Each named channel fans frames out to its monitors; slow monitors drop
// frames at the per-monitor buffer limit.
type Server struct {
	ln  net.Listener
	hwm int

	mu       sync.Mutex
	channels map[string]map[int]chan []byte // guarded by mu
	nextID   int                            // guarded by mu
	dropped  int                            // guarded by mu
	closed   bool                           // guarded by mu
}

// NewServer listens on addr. hwm is the per-monitor frame buffer
// (minimum 1).
func NewServer(addr string, hwm int) (*Server, error) {
	if hwm < 1 {
		hwm = 1
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, hwm: hwm, channels: map[string]map[int]chan []byte{}}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	req, err := readMsg(conn)
	if err != nil {
		return
	}
	line := strings.TrimSpace(string(req))
	if !strings.HasPrefix(line, "MONITOR ") {
		writeMsg(conn, []byte("ERROR unsupported request"))
		return
	}
	channel := strings.TrimSpace(strings.TrimPrefix(line, "MONITOR "))
	ch := make(chan []byte, s.hwm)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.channels[channel] == nil {
		s.channels[channel] = map[int]chan []byte{}
	}
	s.nextID++
	id := s.nextID
	s.channels[channel][id] = ch
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.channels[channel], id)
		s.mu.Unlock()
	}()
	for frame := range ch {
		if err := writeMsg(conn, frame); err != nil {
			return
		}
	}
}

// Publish sends a frame to every monitor of the channel, dropping at the
// per-monitor high-water mark. End-of-scan frames are never dropped: they
// block until delivered so consumers always learn the scan finished.
func (s *Server) Publish(channel string, f *Frame) error {
	raw := f.Encode()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("pva: server closed")
	}
	monitors := make([]chan []byte, 0, len(s.channels[channel]))
	for _, ch := range s.channels[channel] {
		monitors = append(monitors, ch)
	}
	s.mu.Unlock()

	for _, ch := range monitors {
		if f.Kind == KindEndOfScan {
			ch <- raw
			continue
		}
		select {
		case ch <- raw:
		default:
			s.mu.Lock()
			s.dropped++
			s.mu.Unlock()
		}
	}
	return nil
}

// Monitors returns the number of active monitors on a channel.
func (s *Server) Monitors(channel string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.channels[channel])
}

// Dropped returns the total frames dropped at monitor buffers.
func (s *Server) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close shuts the server down.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for _, monitors := range s.channels {
			for id, ch := range monitors {
				close(ch)
				delete(monitors, id)
			}
		}
	}
	s.mu.Unlock()
	return s.ln.Close()
}

// Monitor is a client subscription to a channel.
type Monitor struct {
	conn net.Conn
	// Missed counts sequence gaps observed in the stream.
	Missed  int
	lastSeq uint64
	started bool

	// Hook, when non-nil, is invoked synchronously from Next with every
	// frame it is about to return, after decoding and gap accounting.
	// Incremental consumers (the streaming reconstruction service) use it
	// to fold a projection into their accumulators the moment it is
	// delivered, without a second dispatch layer. The hook must not retain
	// the frame's Data slice past its return if the caller reuses frames.
	Hook func(*Frame)
}

// NewMonitor connects to a server and subscribes to the channel.
func NewMonitor(addr, channel string) (*Monitor, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	if err := writeMsg(conn, []byte("MONITOR "+channel+"\n")); err != nil {
		conn.Close()
		return nil, err
	}
	return &Monitor{conn: conn}, nil
}

// Next returns the next frame, tracking sequence gaps, blocking up to
// timeout (0 = forever).
func (m *Monitor) Next(timeout time.Duration) (*Frame, error) {
	if timeout > 0 {
		m.conn.SetReadDeadline(time.Now().Add(timeout))
	} else {
		m.conn.SetReadDeadline(time.Time{})
	}
	raw, err := readMsg(m.conn)
	if err != nil {
		return nil, err
	}
	f, err := DecodeFrame(raw)
	if err != nil {
		return nil, err
	}
	if f.Kind != KindEndOfScan {
		if m.started && f.Seq > m.lastSeq+1 {
			m.Missed += int(f.Seq - m.lastSeq - 1)
		}
		m.lastSeq = f.Seq
		m.started = true
	}
	if m.Hook != nil {
		m.Hook(f)
	}
	return f, nil
}

// Close closes the subscription.
func (m *Monitor) Close() error { return m.conn.Close() }

// Mirror republishes one server channel on another server — the paper's
// PVA mirror service that decouples the detector IOC from its consumers.
// It runs until the source closes or ctxDone is closed.
type Mirror struct {
	monitor *Monitor
	dst     *Server
	channel string
	// Relayed counts frames republished.
	Relayed int
}

// NewMirror subscribes to srcAddr/channel and republishes every frame on
// dst under the same channel name.
func NewMirror(srcAddr, channel string, dst *Server) (*Mirror, error) {
	mon, err := NewMonitor(srcAddr, channel)
	if err != nil {
		return nil, err
	}
	return &Mirror{monitor: mon, dst: dst, channel: channel}, nil
}

// Run relays frames until the source stream ends (or errors); it returns
// nil when the source closed after an end-of-scan marker.
func (m *Mirror) Run() error {
	defer m.monitor.Close()
	sawEnd := false
	for {
		f, err := m.monitor.Next(0)
		if err != nil {
			if sawEnd {
				return nil
			}
			return err
		}
		if err := m.dst.Publish(m.channel, f); err != nil {
			return err
		}
		m.Relayed++
		if f.Kind == KindEndOfScan {
			sawEnd = true
		}
	}
}

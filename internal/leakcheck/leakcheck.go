// Package leakcheck detects goroutines that outlive a package's tests —
// the listener accept loops, monitor pumps, and forgotten timers that
// accumulate across a long `go test ./...` run and turn -race runs flaky.
// It is a stdlib-only take on the goleak idea: snapshot the stacks of
// every live goroutine when TestMain finishes, discard the stanzas that
// are known to live forever (the test runner itself, the runtime's own
// workers), and retry with backoff before declaring a leak, since
// goroutines legitimately need a moment to observe a Close and exit.
//
// Wire it into a package with one line:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// maxRetries and baseDelay pace the settle loop: total worst-case wait is
// sum(baseDelay << i) ≈ 1.3s, far below any test timeout but enough for a
// deferred Close to propagate to its accept loop under a loaded machine.
const (
	maxRetries = 7
	baseDelay  = 10 * time.Millisecond
)

// ignoredSubstrings mark goroutine stanzas that are expected to be alive
// after the tests finish: the testing framework, the runtime's own
// machinery, and this package's snapshot taker.
var ignoredSubstrings = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*M).",
	"testing.runTests",
	"runtime.goexit0",
	"runtime.gc",
	"runtime.MHeap",
	"runtime/trace",
	"signal.signal_recv",
	"signal.loop",
	"runtime.ensureSigM",
	"leakcheck.Check",
	"leakcheck.MainCode",
	"os/signal.NotifyContext",
	// The netpoller and GC background workers park forever by design.
	"created by runtime",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.forcegchelper",
}

// Main runs the package's tests and exits the process, failing (exit code
// 1) when the tests passed but goroutines leaked. It is the standard
// TestMain body.
func Main(m *testing.M) {
	os.Exit(MainCode(m.Run()))
}

// MainCode combines a test run's exit code with the leak verdict: a
// failing test run is reported as-is (its failure output is more useful
// than a leak report caused by aborted cleanup); a passing run is
// promoted to failure when goroutines leaked.
func MainCode(testCode int) int {
	if testCode != 0 {
		return testCode
	}
	if leaked := Check(); leaked != "" {
		fmt.Fprintf(os.Stderr, "leakcheck: goroutines still running after tests:\n%s\n", leaked)
		return 1
	}
	return 0
}

// Check snapshots the live goroutines, retrying with exponential backoff
// while suspects remain, and returns the formatted stacks of any that
// never exited ("" when clean).
func Check() string {
	var leaked []string
	for attempt := 0; ; attempt++ {
		leaked = suspectStacks()
		if len(leaked) == 0 || attempt >= maxRetries {
			break
		}
		time.Sleep(baseDelay << attempt)
	}
	return strings.Join(leaked, "\n")
}

// suspectStacks returns the goroutine stanzas not covered by the ignore
// list.
func suspectStacks() []string {
	return filterStacks(stackDump(), ignoredSubstrings)
}

// stackDump captures the stacks of all goroutines, growing the buffer
// until the dump fits.
func stackDump() string {
	buf := make([]byte, 1<<16)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return string(buf[:n])
		}
		buf = make([]byte, len(buf)*2)
	}
}

// filterStacks splits an all-goroutine dump into per-goroutine stanzas
// and drops those matching any ignore substring or belonging to the
// calling goroutine (the first stanza in a dump is always the caller).
func filterStacks(dump string, ignores []string) []string {
	stanzas := strings.Split(strings.TrimSpace(dump), "\n\n")
	var out []string
	for i, st := range stanzas {
		if i == 0 || st == "" {
			continue // the caller's own goroutine
		}
		if matchesAny(st, ignores) {
			continue
		}
		out = append(out, st)
	}
	return out
}

// matchesAny reports whether any needle occurs in s.
func matchesAny(s string, needles []string) bool {
	for _, n := range needles {
		if strings.Contains(s, n) {
			return true
		}
	}
	return false
}

package leakcheck

import (
	"strings"
	"testing"
)

func TestMain(m *testing.M) { Main(m) }

func TestMainCodePassesThroughTestFailure(t *testing.T) {
	// A failing test run keeps its own exit code even if goroutines are
	// still up — the test failure is the signal worth reporting.
	if got := MainCode(2); got != 2 {
		t.Fatalf("MainCode(2) = %d", got)
	}
}

func TestMainCodeCleanRun(t *testing.T) {
	if got := MainCode(0); got != 0 {
		t.Fatalf("MainCode(0) = %d, want 0 (no leaks expected mid-test)", got)
	}
}

func TestCheckDetectsAndClearsLeak(t *testing.T) {
	block := make(chan struct{})
	released := make(chan struct{})
	go func() {
		leakyHelper(block)
		close(released)
	}()

	got := Check()
	if !strings.Contains(got, "leakyHelper") {
		t.Fatalf("Check did not report the blocked goroutine:\n%s", got)
	}

	close(block)
	<-released
	if got := Check(); got != "" {
		t.Fatalf("Check still reports leaks after release:\n%s", got)
	}
}

// leakyHelper blocks until released; its name is what the leak report
// must surface.
func leakyHelper(block chan struct{}) { <-block }

func TestFilterStacksSkipsCallerAndIgnores(t *testing.T) {
	dump := strings.Join([]string{
		"goroutine 1 [running]:\nmain.caller()\n\t/x.go:1",
		"goroutine 7 [chan receive]:\ntesting.tRunner(0x0, 0x0)\n\t/t.go:2",
		"goroutine 9 [chan receive]:\nrepro/internal/pva.(*Monitor).pump()\n\t/p.go:3",
		"goroutine 11 [syscall]:\nsignal.signal_recv()\n\t/s.go:4",
	}, "\n\n")
	got := filterStacks(dump, ignoredSubstrings)
	if len(got) != 1 || !strings.Contains(got[0], "pva.(*Monitor).pump") {
		t.Fatalf("filterStacks = %#v, want only the pva pump stanza", got)
	}
}

func TestFilterStacksEmptyDump(t *testing.T) {
	if got := filterStacks("", nil); len(got) != 0 {
		t.Fatalf("filterStacks(\"\") = %#v", got)
	}
}

func TestStackDumpContainsAllGoroutines(t *testing.T) {
	dump := stackDump()
	if !strings.Contains(dump, "goroutine ") {
		t.Fatalf("stack dump malformed:\n%.200s", dump)
	}
	if !strings.Contains(dump, "leakcheck") {
		t.Fatal("dump should include this test's own stack")
	}
}

func TestMatchesAny(t *testing.T) {
	if matchesAny("abc", []string{"x", "y"}) {
		t.Fatal("unexpected match")
	}
	if !matchesAny("abc", []string{"x", "b"}) {
		t.Fatal("expected match")
	}
}

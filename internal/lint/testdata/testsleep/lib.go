// Package fixture has a sleeping library function — testsleep only polices
// _test.go files, so this one is someone else's problem (simclock's).
package fixture

import "time"

func Settle() { time.Sleep(time.Millisecond) }

package fixture

import (
	"testing"
	"time"
)

func TestPollsBySleeping(t *testing.T) {
	time.Sleep(time.Millisecond) // want `time\.Sleep in a test invites flakes`
	Settle()
}

package fixture_test

import (
	"testing"
	"time"
)

// External test packages form their own analysis unit; the ban applies
// there too.
func TestExternalSleep(t *testing.T) {
	time.Sleep(time.Nanosecond) // want `time\.Sleep in a test invites flakes`
}

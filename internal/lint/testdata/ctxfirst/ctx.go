package fixture

import "context"

func Good(ctx context.Context, n int) {}

func Bad(n int, ctx context.Context) {} // want `context\.Context must be the first parameter`

var Fn = func(n int, ctx context.Context) {} // want `context\.Context must be the first parameter`

type Iface interface {
	Do(n int, ctx context.Context) // want `context\.Context must be the first parameter`
	Ok(ctx context.Context, n int)
}

type Worker struct {
	ctx context.Context // want `context\.Context stored in struct Worker`
	n   int
}

// Carrier is the allowlisted run handle: storing the run's context is its
// whole job.
type Carrier struct {
	ctx context.Context
}

func (c *Carrier) Use() context.Context { return c.ctx }

func (w *Worker) Use() context.Context { return w.ctx }

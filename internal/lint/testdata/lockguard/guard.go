package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

func (c *counter) badRead() int {
	return c.n // want `unguarded read of c\.n`
}

func (c *counter) badWrite() {
	c.n = 1 // want `unguarded write to c\.n`
}

func (c *counter) branchy(b bool) {
	if b {
		c.mu.Lock()
	}
	c.n++ // want `unguarded write to c\.n`
	if b {
		c.mu.Unlock()
	}
}

func (c *counter) bothBranches(b bool) {
	if b {
		c.mu.Lock()
	} else {
		c.mu.Lock()
	}
	c.n++ // clean: held on every inbound path
	c.mu.Unlock()
}

func (c *counter) bumpLocked() {
	c.n++ // clean: *Locked methods hold the receiver's mutexes by contract
}

func (c *counter) spawn() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = 1
	go func() {
		c.n = 2 // want `unguarded write to c\.n`
	}()
}

func (c *counter) closure() {
	c.mu.Lock()
	defer c.mu.Unlock()
	bump := func() { c.n++ } // clean: inherits the creation-point lock state
	bump()
}

func (c *counter) loopy(vals []int) {
	c.mu.Lock()
	for _, v := range vals {
		c.n += v
	}
	c.mu.Unlock()
	for range vals {
		c.n-- // want `unguarded write to c\.n`
	}
}

type stats struct {
	rw   sync.RWMutex
	hits int // guarded by rw
}

func (s *stats) read() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.hits
}

func (s *stats) badRWWrite() {
	s.rw.RLock()
	defer s.rw.RUnlock()
	s.hits++ // want `writes require Lock`
}

func (s *stats) switchy(mode int) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	switch mode {
	case 0:
		return s.hits
	default:
		return -s.hits
	}
}

func (s *stats) afterUnlock() int {
	s.rw.Lock()
	s.hits++
	s.rw.Unlock()
	return s.hits // want `unguarded read of s\.hits`
}

type badAnnotations struct {
	x int // guarded by nosuch // want `not a sibling field`
	y int // guarded by z // want `not a sync\.Mutex`
	z int
}

var (
	tableMu sync.Mutex
	table   = map[string]int{} // guarded by tableMu
)

func goodTable(k string) int {
	tableMu.Lock()
	defer tableMu.Unlock()
	return table[k]
}

func badTable(k string) int {
	return table[k] // want `unguarded read of table`
}

package fixture

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

type wrapper struct{ b box }

type embeds struct{ sync.Mutex }

// latch hides its locking behind methods: no mutex field in sight, but
// the pointer-only Lock/Unlock pair still marks it uncopyable.
type latch struct{ state int }

func (l *latch) Lock()   { l.state++ }
func (l *latch) Unlock() { l.state-- }

func (b box) value() {} // want `by-value receiver`

func (b *box) pointer() {} // clean

func (e embeds) m() {} // want `embedded Mutex`

func take(b box) {} // want `by-value parameter`

func takeWrapped(w wrapper) {} // want `field b`

func takeLatch(l latch) {} // want `pointer-receiver Lock/Unlock`

func takePtr(b *box) {} // clean

func ret(p *box) box { // want `by-value result`
	return *p // want `return copies`
}

func assigns(p *box, m map[string]box) {
	v := *p // want `assignment copies`
	_ = v
	arr := [2]box{}
	w := arr[0] // want `assignment copies`
	_ = w
	e := m["k"] // want `assignment copies`
	_ = e
	fresh := box{} // clean: construction, not a copy
	_ = fresh
}

func ranges(xs []box) {
	for _, v := range xs { // want `range clause copies`
		_ = v
	}
	for i := range xs { // clean
		_ = i
	}
	for _, p := range ptrs(xs) { // clean: pointer elements
		_ = p
	}
}

func ptrs(xs []box) []*box {
	out := make([]*box, len(xs))
	for i := range xs {
		out[i] = &xs[i]
	}
	return out
}

func calls(b *box) {
	take(*b) // want `call passes`
	takePtr(b)
}

type boxAlias box

func conv(b *box) {
	v := boxAlias(*b) // want `conversion copies`
	_ = v
}

func closures() {
	f := func(b box) {} // want `by-value parameter`
	_ = f
}

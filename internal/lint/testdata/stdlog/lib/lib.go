// Package lib is in-scope library code: importing stdlib log here is the
// violation stdlog exists to catch.
package lib

import (
	"fmt"
	"log" // want `stdlib log bypasses the obslog journal`
)

func Announce(msg string) {
	log.Printf("announce: %s", fmt.Sprintf("%q", msg))
}

// Package cmdish stands in for an entry point outside the scope: stdlib
// log is tolerated here (real cmds attach an obslog TextSink instead, but
// the analyzer does not police them).
package cmdish

import "log"

func Run() { log.Println("booting") }

package fixture

import "sync"

type a struct{ mu sync.Mutex }
type b struct{ mu sync.Mutex }

var (
	x a
	y b
)

func abOrder() {
	x.mu.Lock()
	y.mu.Lock() // want `lock order cycle`
	y.mu.Unlock()
	x.mu.Unlock()
}

func baOrder() {
	y.mu.Lock()
	x.mu.Lock() // the a↔b pair is reported once, at the first edge seen
	x.mu.Unlock()
	y.mu.Unlock()
}

func nested() {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock() // same a→b edge: no new report
	defer y.mu.Unlock()
}

func selfDeadlock() {
	x.mu.Lock()
	x.mu.Lock() // want `guaranteed self-deadlock`
	x.mu.Unlock()
	x.mu.Unlock()
}

type c struct{ mu sync.Mutex }
type d struct{ mu sync.Mutex }

var (
	cc c
	dd d
)

func lockD() {
	dd.mu.Lock()
	defer dd.mu.Unlock()
}

func cThenD() {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	lockD() // want `lock order cycle`
}

func dThenC() {
	dd.mu.Lock()
	cc.mu.Lock()
	cc.mu.Unlock()
	dd.mu.Unlock()
}

type reg struct {
	mu    sync.Mutex
	items int
}

func (r *reg) drainLocked() {
	x.mu.Lock() // want `lock order cycle`
	r.items = 0
	x.mu.Unlock()
}

func aThenReg(r *reg) {
	x.mu.Lock()
	r.mu.Lock()
	r.mu.Unlock()
	x.mu.Unlock()
}

package fixture

import (
	"net"
	"time"

	tt "time"
)

// RealEnv is the fixture's allowlisted wall-clock gateway.
type RealEnv struct{}

func (RealEnv) Now() time.Time        { return time.Now() }
func (RealEnv) Sleep(d time.Duration) { time.Sleep(d) }

func Stamp() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func StampAliased() time.Time {
	return tt.Now() // want `time\.Now reads the wall clock`
}

func Delay() {
	time.Sleep(time.Millisecond)   // want `time\.Sleep reads the wall clock`
	<-time.After(time.Millisecond) // want `time\.After reads the wall clock`
	_ = time.Since(time.Time{})    // want `time\.Since reads the wall clock`
	_ = time.Tick(time.Second)     // want `time\.Tick reads the wall clock`
	t := time.NewTimer(0)          // want `time\.NewTimer reads the wall clock`
	t.Stop()
}

// Deadline uses the sanctioned structural idiom: time.Now().Add feeding a
// net deadline setter parameterizes an I/O timeout, not a data stamp.
func Deadline(c net.Conn) error {
	return c.SetReadDeadline(time.Now().Add(time.Second))
}

// Method calls time.Time.After — a method, not the package function.
func Method(t time.Time) bool {
	return t.After(time.Time{})
}

package fixture

import (
	"testing"
	"time"
)

// Test files are outside simclock's jurisdiction (testsleep owns them).
func TestStamp(t *testing.T) {
	_ = time.Now()
}

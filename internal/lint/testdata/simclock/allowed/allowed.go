// Package allowed is allowlisted wholesale (the leakcheck analogue):
// wall-clock polling is its job.
package allowed

import "time"

func Poll() time.Time { return time.Now() }

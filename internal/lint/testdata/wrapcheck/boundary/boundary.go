// Package boundary is configured as a fault boundary: every error minted
// here must carry a faults class.
package boundary

import (
	"errors"
	"fmt"

	"fixture/faults"
)

func Leaf(name string) error {
	return fmt.Errorf("unknown endpoint %q", name) // want `fmt\.Errorf mints an unclassified error at a fault boundary`
}

func LeafNew() error {
	return errors.New("bad handle") // want `errors\.New mints an unclassified error at a fault boundary`
}

func Classified(name string) error {
	return faults.Errorf(faults.Permanent, "unknown endpoint %q", name)
}

func ClassifiedWrap(err error) error {
	return faults.Wrap(faults.Transient, fmt.Errorf("transfer stalled: %w", err))
}

// Wrapping with %w keeps the chain; the boundary rule accepts it because
// the classified cause stays visible to Classify.
func Passthrough(err error) error {
	return fmt.Errorf("copy: %w", err)
}

func FlattenedInsideWrap(err error) error {
	return faults.Wrap(faults.Transient, fmt.Errorf("retry: %v", err)) // want `error operand formatted with %v`
}

func FaultsErrorfFlattens(err error) error {
	return faults.Errorf(faults.Permanent, "gave up: %v", err) // want `error operand formatted with %v`
}

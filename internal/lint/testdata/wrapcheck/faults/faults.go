// Package faults is the fixture's fault taxonomy: the shape wrapcheck's
// boundary rule resolves against.
package faults

import "fmt"

type Class int

const (
	Transient Class = iota
	Permanent
)

type fault struct {
	class Class
	err   error
}

func (f *fault) Error() string { return f.err.Error() }
func (f *fault) Unwrap() error { return f.err }

func Wrap(c Class, err error) error { return &fault{c, err} }

func Errorf(c Class, format string, args ...interface{}) error {
	return &fault{c, fmt.Errorf(format, args...)}
}

// Package plain is not a boundary: leaf errors are fine, but flattening a
// chain is flagged everywhere.
package plain

import "fmt"

func Flatten(err error) error {
	return fmt.Errorf("run failed: %v", err) // want `error operand formatted with %v`
}

func Quote(err error) error {
	return fmt.Errorf("run failed: %q", err) // want `error operand formatted with %q`
}

func Stringify(err error) error {
	return fmt.Errorf("run failed: %s", err.Error()) // want `err\.Error\(\) stringifies the cause`
}

func Wrapped(err error) error {
	return fmt.Errorf("run failed: %w", err)
}

func Leaf(n int) error {
	return fmt.Errorf("bad count %d", n)
}

func Percent(err error) error {
	return fmt.Errorf("100%% broken: %w", err)
}

package fixture

import "fmt"

type point struct{ x, y float64 }

func run() {}

//perf:hot
func kernel(dst, src []float64) []float64 {
	buf := make([]float64, len(src)) // want `allocates with make`
	_ = buf
	dst = append(dst, 1) // want `may grow its backing array`
	p := new(point)      // want `allocates with new`
	_ = p
	s := []int{1, 2} // want `allocates a slice`
	_ = s
	m := map[string]int{} // want `allocates a map`
	_ = m
	h := &point{x: 1} // want `heap-allocates a composite literal`
	_ = h
	v := point{x: 2} // clean: stack value
	_ = v
	f := func() {} // want `captures a closure`
	f()
	go run()           // want `spawns a goroutine`
	fmt.Println(v.x)   // want `boxes a value into an interface`
	fmt.Println("lit") // clean: constants box to statics
	for i := range dst {
		dst[i] = src[i] * 2 // clean: the steady-state loop
	}
	return dst
}

//perf:hot
func concat(a, b string) string {
	return a + b // want `concatenates strings`
}

const greeting = "hello, "

//perf:hot
func constConcat() string {
	return greeting + "world" // clean: constant-folded
}

//perf:hot
func toBytes(s string) []byte {
	return []byte(s) // want `copies between string and slice`
}

//perf:hot
func itoa(n int) string {
	return string(rune(n)) // want `builds a new string`
}

// cold is unmarked and allocates freely.
func cold() []int {
	return append(make([]int, 0, 4), 1)
}

package lint

import "strconv"

// Stdlog bans the stdlib log package from the library layers. Stdlib log
// writes straight to stderr on the wall clock with no levels, no fields,
// and no run correlation — everything the obslog journal exists to
// provide. Library code journals through obslog (clock-injected,
// deterministic under the sim kernel); entry points under cmd/ attach a
// TextSink and stay outside the scope.
var Stdlog = &Analyzer{
	Name: "stdlog",
	Doc:  "no stdlib log in library packages; journal through obslog so events carry levels, fields, and run IDs",
	Run:  runStdlog,
}

func runStdlog(p *Pass) {
	if !p.Config.stdlogInScope(p.Pkg.Path()) {
		return
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path != "log" {
				continue
			}
			p.Reportf(imp.Pos(),
				"stdlib log bypasses the obslog journal (no levels, fields, or run correlation); use obslog")
		}
	}
}

package lint

import (
	"go/ast"
	"go/types"
)

// TestSleep bans time.Sleep from _test.go files. Sleep-polling is the
// classic flaky-test generator under -race and loaded CI machines; tests
// here synchronize on observable state (frame counters, ctx-aware wait
// helpers, channels) instead. Library code is simclock's jurisdiction;
// this analyzer only looks at test files.
var TestSleep = &Analyzer{
	Name: "testsleep",
	Doc:  "no time.Sleep in _test.go files; synchronize on observable state or ctx-aware waits",
	Run:  runTestSleep,
}

func runTestSleep(p *Pass) {
	for _, f := range p.Files {
		if !p.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if ok && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
				p.Reportf(sel.Pos(),
					"time.Sleep in a test invites flakes; synchronize on observable state or a ctx-aware wait")
			}
			return true
		})
	}
}

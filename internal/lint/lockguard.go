package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Lockguard enforces the `// guarded by <mutex>` annotation: a struct
// field (or package-level variable) so annotated may only be read or
// written while the named sibling mutex (or package-level mutex) is held
// on every intra-procedural control-flow path. The analysis builds a
// small CFG per function (cfg.go) and runs a forward must-hold dataflow
// over it: Lock/RLock acquire, Unlock/RUnlock release, a deferred Unlock
// keeps the mutex held to function exit, and branch joins intersect —
// a path that can reach an access without the lock is a diagnostic.
//
// Conventions understood by the analysis:
//
//   - methods whose name ends in "Locked" are callee-side helpers that
//     document "caller holds the receiver's mutexes"; they start with
//     every mutex field of the receiver held;
//   - an RWMutex RLock satisfies reads of guarded fields but not writes;
//   - function literals inherit the lock state at their creation point,
//     except goroutine bodies (`go func(){...}`), which start unlocked —
//     they run after the spawner may have released everything.
var Lockguard = &Analyzer{
	Name: "lockguard",
	Doc: "fields annotated `// guarded by <mutex>` must only be accessed with the " +
		"sibling mutex held on every intra-procedural path",
	Run: runLockguard,
}

// guardedBy extracts the mutex name from an annotation comment.
var guardedBy = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// lock kinds, ordered so that the weaker mode is the smaller value.
const (
	lockShared int8 = 1 // RLock: reads allowed
	lockExcl   int8 = 2 // Lock: reads and writes allowed
)

// lockSet is the dataflow state: which mutex paths are known held, and
// how. top marks the unreachable state (everything held), the identity
// of the meet.
type lockSet struct {
	top bool
	m   map[string]int8
}

func topState() *lockSet { return &lockSet{top: true} }

func (s *lockSet) clone() *lockSet {
	if s.top {
		return topState()
	}
	c := &lockSet{m: make(map[string]int8, len(s.m))}
	for k, v := range s.m {
		c.m[k] = v
	}
	return c
}

// meet intersects two states: a mutex is held after a join only if it is
// held on both inbound paths, in the weaker of the two modes.
func (s *lockSet) meet(o *lockSet) *lockSet {
	if s.top {
		return o.clone()
	}
	if o.top {
		return s.clone()
	}
	out := &lockSet{m: map[string]int8{}}
	for k, v := range s.m {
		if ov, ok := o.m[k]; ok {
			if ov < v {
				v = ov
			}
			out.m[k] = v
		}
	}
	return out
}

func (s *lockSet) equal(o *lockSet) bool {
	if s.top != o.top || len(s.m) != len(o.m) {
		return false
	}
	for k, v := range s.m {
		if o.m[k] != v {
			return false
		}
	}
	return true
}

func (s *lockSet) acquire(key string, kind int8) {
	if s.top {
		return
	}
	if s.m == nil {
		s.m = map[string]int8{}
	}
	if s.m[key] < kind {
		s.m[key] = kind
	}
}

func (s *lockSet) release(key string) {
	if s.top {
		return
	}
	delete(s.m, key)
}

// holds reports whether key is held at least in the given mode.
func (s *lockSet) holds(key string, kind int8) bool {
	return s.top || s.m[key] >= kind
}

// guardInfo is one annotated field or variable.
type guardInfo struct {
	mutex string // sibling field name, or package-level var name
	// pkgLevel marks a package-level guarded var (key is the bare mutex
	// var name rather than base+"."+mutex).
	pkgLevel bool
}

// lockguardIndex is the per-package annotation table.
type lockguardIndex struct {
	guards map[*types.Var]guardInfo
	// mutexFields maps a struct's type name to its mutex-typed field
	// names, the set held on entry to *Locked methods.
	mutexFields map[*types.TypeName][]string
}

// exprPath renders a selector chain ("p.e.nowMu") or "" for anything
// that is not a pure identifier/selector path.
func exprPath(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprPath(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	}
	return ""
}

// isMutexType reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// annotationText joins a field's doc and trailing comment.
func annotationText(doc, comment *ast.CommentGroup) string {
	var parts []string
	if doc != nil {
		parts = append(parts, doc.Text())
	}
	if comment != nil {
		parts = append(parts, comment.Text())
	}
	return strings.Join(parts, " ")
}

// buildLockguardIndex collects annotations and validates them.
func buildLockguardIndex(p *Pass) *lockguardIndex {
	idx := &lockguardIndex{
		guards:      map[*types.Var]guardInfo{},
		mutexFields: map[*types.TypeName][]string{},
	}
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if st, ok := n.(*ast.StructType); ok {
				p.indexStruct(idx, st)
			}
			return true
		})
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			p.indexVarDecl(idx, gd)
		}
	}
	return idx
}

// indexStruct records the struct's mutex fields and its guarded-by
// annotations.
func (p *Pass) indexStruct(idx *lockguardIndex, st *ast.StructType) {
	type fieldInfo struct {
		v   *types.Var
		pos token.Pos
	}
	fields := map[string]fieldInfo{}
	var tn *types.TypeName
	for _, fld := range st.Fields.List {
		for _, name := range fld.Names {
			v, ok := p.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			fields[name.Name] = fieldInfo{v: v, pos: name.Pos()}
			if tn == nil {
				// Recover the owning named type through the field's
				// parent struct, so mutexFields keys by type name.
				if owner := owningTypeName(p, v); owner != nil {
					tn = owner
				}
			}
		}
	}
	for _, fld := range st.Fields.List {
		text := annotationText(fld.Doc, fld.Comment)
		m := guardedBy.FindStringSubmatch(text)
		if m == nil {
			continue
		}
		mutex := m[1]
		sib, ok := fields[mutex]
		switch {
		case !ok:
			p.Reportf(fld.Pos(),
				"guarded-by annotation names %q, which is not a sibling field", mutex)
			continue
		case !isMutexType(sib.v.Type()):
			p.Reportf(fld.Pos(),
				"guarded-by annotation names %q, which is not a sync.Mutex or sync.RWMutex (type %s)",
				mutex, sib.v.Type())
			continue
		}
		for _, name := range fld.Names {
			if v, ok := p.Info.Defs[name].(*types.Var); ok {
				idx.guards[v] = guardInfo{mutex: mutex}
			}
		}
	}
	if tn != nil {
		var mus []string
		for _, fld := range st.Fields.List {
			for _, name := range fld.Names {
				if fi, ok := fields[name.Name]; ok && isMutexType(fi.v.Type()) {
					mus = append(mus, name.Name)
				}
			}
		}
		idx.mutexFields[tn] = mus
	}
}

// owningTypeName finds the named type whose struct declares field v, by
// scanning the package scope (fields carry no back-pointer).
func owningTypeName(p *Pass, v *types.Var) *types.TypeName {
	scope := p.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return tn
			}
		}
	}
	return nil
}

// indexVarDecl records package-level guarded variables.
func (p *Pass) indexVarDecl(idx *lockguardIndex, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		text := annotationText(vs.Doc, vs.Comment)
		if gd.Doc != nil && len(gd.Specs) == 1 {
			text += " " + gd.Doc.Text()
		}
		m := guardedBy.FindStringSubmatch(text)
		if m == nil {
			continue
		}
		mutex := m[1]
		obj := p.Pkg.Scope().Lookup(mutex)
		mv, ok := obj.(*types.Var)
		switch {
		case !ok:
			p.Reportf(vs.Pos(),
				"guarded-by annotation names %q, which is not a package-level variable", mutex)
			continue
		case !isMutexType(mv.Type()):
			p.Reportf(vs.Pos(),
				"guarded-by annotation names %q, which is not a sync.Mutex or sync.RWMutex (type %s)",
				mutex, mv.Type())
			continue
		}
		for _, name := range vs.Names {
			if v, ok := p.Info.Defs[name].(*types.Var); ok {
				idx.guards[v] = guardInfo{mutex: mutex, pkgLevel: true}
			}
		}
	}
}

func runLockguard(p *Pass) {
	idx := buildLockguardIndex(p)
	if len(idx.guards) == 0 {
		return
	}
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		parents := buildParents(f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a := &lockguardFunc{p: p, idx: idx, parents: parents}
			a.analyze(fd.Body, a.entryState(fd))
		}
	}
}

// entryState computes the function's starting lock set: empty, unless
// the name ends in "Locked" and there is a named receiver, in which case
// every mutex field of the receiver is held exclusively.
func (a *lockguardFunc) entryState(fd *ast.FuncDecl) *lockSet {
	st := &lockSet{m: map[string]int8{}}
	if !strings.HasSuffix(fd.Name.Name, "Locked") || fd.Recv == nil || len(fd.Recv.List) == 0 {
		return st
	}
	recv := fd.Recv.List[0]
	if len(recv.Names) == 0 {
		return st
	}
	recvName := recv.Names[0].Name
	rv, ok := a.p.Info.Defs[recv.Names[0]].(*types.Var)
	if !ok {
		return st
	}
	t := rv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return st
	}
	for _, mu := range a.idx.mutexFields[named.Obj()] {
		st.acquire(recvName+"."+mu, lockExcl)
	}
	return st
}

// lockguardFunc analyzes one function body (and, recursively, the
// function literals it contains).
type lockguardFunc struct {
	p       *Pass
	idx     *lockguardIndex
	parents parentMap
}

// pendingLit is a function literal queued for its own analysis, with the
// lock state at its creation point.
type pendingLit struct {
	lit   *ast.FuncLit
	entry *lockSet
}

func (a *lockguardFunc) analyze(body *ast.BlockStmt, entry *lockSet) {
	g := buildCFG(body)
	in := make([]*lockSet, len(g.blocks))
	out := make([]*lockSet, len(g.blocks))
	for i := range in {
		in[i] = topState()
		out[i] = topState()
	}
	in[g.entry.index] = entry
	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		st := in[blk.index].clone()
		a.walkBlock(blk, st, nil)
		if st.equal(out[blk.index]) {
			continue
		}
		out[blk.index] = st
		for _, succ := range blk.succs {
			merged := in[succ.index].meet(out[blk.index])
			if !merged.equal(in[succ.index]) {
				in[succ.index] = merged
				work = append(work, succ)
			}
		}
	}
	// Reporting pass: re-walk each reachable block from its fixpoint
	// in-state, checking guarded accesses and queueing function literals
	// with the state at their creation point.
	var lits []pendingLit
	for _, blk := range g.blocks {
		if in[blk.index].top && blk != g.entry {
			continue // unreachable
		}
		st := in[blk.index].clone()
		a.walkBlock(blk, st, &lits)
	}
	for _, pl := range lits {
		a.analyze(pl.lit.Body, pl.entry)
	}
}

// walkBlock interprets the block's nodes in order against st. With lits
// non-nil it also reports guarded-access violations and queues function
// literals; with lits nil it only applies lock transfers (the dataflow
// pass).
func (a *lockguardFunc) walkBlock(blk *cfgBlock, st *lockSet, lits *[]pendingLit) {
	for _, node := range blk.nodes {
		a.walkNode(node, st, lits)
	}
}

func (a *lockguardFunc) walkNode(node cfgNode, st *lockSet, lits *[]pendingLit) {
	topCall, _ := node.n.(*ast.CallExpr)
	ast.Inspect(node.n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if lits != nil {
				entry := st.clone()
				if node.kind == nodeGo {
					// A goroutine body runs after the spawner may have
					// released everything: start unlocked.
					entry = &lockSet{m: map[string]int8{}}
				}
				*lits = append(*lits, pendingLit{lit: n, entry: entry})
			}
			return false
		case *ast.CallExpr:
			if key, kind, isAcquire, ok := a.lockOp(n); ok {
				// The deferred/spawned call itself does not execute here;
				// in particular `defer mu.Unlock()` leaves the mutex held
				// for the rest of the function.
				if node.kind == nodeEval || n != topCall {
					if isAcquire {
						st.acquire(key, kind)
					} else {
						st.release(key)
					}
				}
				return true
			}
		case *ast.SelectorExpr:
			if lits != nil {
				a.checkSelector(n, st)
			}
		case *ast.Ident:
			if lits != nil {
				a.checkIdent(n, st)
			}
		}
		return true
	})
}

// lockOp recognizes path.Lock/RLock/Unlock/RUnlock calls on sync mutex
// values and returns the tracked path key.
func (a *lockguardFunc) lockOp(call *ast.CallExpr) (key string, kind int8, acquire, ok bool) {
	sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOK {
		return "", 0, false, false
	}
	fn, fnOK := a.p.Info.Uses[sel.Sel].(*types.Func)
	if !fnOK || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false, false
	}
	sig, sigOK := fn.Type().(*types.Signature)
	if !sigOK || sig.Recv() == nil || !isMutexType(sig.Recv().Type()) {
		return "", 0, false, false
	}
	key = exprPath(sel.X)
	if key == "" {
		return "", 0, false, false
	}
	switch fn.Name() {
	case "Lock":
		return key, lockExcl, true, true
	case "RLock":
		return key, lockShared, true, true
	case "Unlock", "RUnlock":
		return key, 0, false, true
	}
	return "", 0, false, false
}

// checkSelector validates an access to a guarded struct field.
func (a *lockguardFunc) checkSelector(sel *ast.SelectorExpr, st *lockSet) {
	v, ok := a.p.Info.Uses[sel.Sel].(*types.Var)
	if !ok {
		return
	}
	gi, guarded := a.idx.guards[v]
	if !guarded || gi.pkgLevel {
		return
	}
	base := exprPath(sel.X)
	path := exprPath(sel)
	if path == "" {
		path = v.Name()
	}
	if base == "" {
		a.p.Reportf(sel.Pos(),
			"access to guarded field %s through an expression the analysis cannot track; bind the owner to a variable first (guarded by %s)",
			v.Name(), gi.mutex)
		return
	}
	a.checkAccess(sel, st, path, base+"."+gi.mutex, gi.mutex)
}

// checkIdent validates an access to a guarded package-level variable.
func (a *lockguardFunc) checkIdent(id *ast.Ident, st *lockSet) {
	v, ok := a.p.Info.Uses[id].(*types.Var)
	if !ok {
		return
	}
	gi, guarded := a.idx.guards[v]
	if !guarded || !gi.pkgLevel {
		return
	}
	a.checkAccess(id, st, id.Name, gi.mutex, gi.mutex)
}

func (a *lockguardFunc) checkAccess(at ast.Expr, st *lockSet, path, key, mutex string) {
	write := a.isWrite(at)
	need := lockShared
	verb := "read of"
	if write {
		need = lockExcl
		verb = "write to"
	}
	if st.holds(key, need) {
		return
	}
	if write && st.holds(key, lockShared) {
		a.p.Reportf(at.Pos(),
			"write to %s while %s is held only for reading (RLock); writes require Lock (guarded by %s)",
			path, key, mutex)
		return
	}
	a.p.Reportf(at.Pos(),
		"unguarded %s %s: %s is not held on every path to this access (guarded by %s)",
		verb, path, key, mutex)
}

// isWrite reports whether the expression is in a store position:
// assignment LHS (possibly through index/star/slice), ++/--, or its
// address taken.
func (a *lockguardFunc) isWrite(e ast.Expr) bool {
	cur := ast.Node(e)
	for {
		parent := a.parents[cur]
		switch p := parent.(type) {
		case *ast.ParenExpr:
			cur = p
		case *ast.IndexExpr:
			if p.X != cur {
				return false
			}
			cur = p
		case *ast.SliceExpr:
			if p.X != cur {
				return false
			}
			cur = p
		case *ast.StarExpr:
			cur = p
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == cur {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return p.X == cur
		case *ast.UnaryExpr:
			return p.Op == token.AND
		case *ast.RangeStmt:
			return p.Key == cur || p.Value == cur
		default:
			return false
		}
	}
}

package lint

import (
	"go/ast"
	"go/types"
)

// Simclock forbids direct wall-clock access in library code. Every
// timestamp and sleep must route through the environment clock (flow.Env)
// so a run under the discrete-event kernel produces byte-identical span
// trees and file metadata every time. The only sanctioned escapes are the
// allowlisted gateway declarations (flow.RealEnv and the real-socket
// timeout waits) and the structural net-deadline idiom
// `conn.SetDeadline(time.Now().Add(d))`, which parameterizes kernel I/O
// timeouts rather than stamping data.
var Simclock = &Analyzer{
	Name: "simclock",
	Doc: "forbid time.Now/Sleep/After/Since/NewTimer/NewTicker/Tick/AfterFunc/Until in library code; " +
		"stamp through the environment clock (flow.Env) so sim traces are reproducible",
	Run: runSimclock,
}

// wallClockFuncs are the package-time functions that read or depend on
// the wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true, "Tick": true,
	"Since": true, "Until": true,
}

// connDeadlineSetters are the net.Conn deadline methods whose arguments
// legitimately need `time.Now().Add(d)` arithmetic.
var connDeadlineSetters = map[string]bool{
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
}

func runSimclock(p *Pass) {
	if !p.Config.simclockInScope(p.Pkg.Path()) {
		return
	}
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallClockFuncs[fn.Name()] {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // a method like time.Time.After, not the package function
			}
			if p.Config.SimclockAllowFuncs[p.enclosingFuncPath(parents, sel)] {
				return true
			}
			if fn.Name() == "Now" && p.feedsConnDeadline(parents, sel) {
				return true
			}
			p.Reportf(sel.Pos(),
				"time.%s reads the wall clock; stamp through the environment clock (flow.Env) so sim runs stay reproducible",
				fn.Name())
			return true
		})
	}
}

// feedsConnDeadline reports whether sel is the `time.Now` of the idiom
// `x.Set{Read,Write,}Deadline(time.Now().Add(d))`.
func (p *Pass) feedsConnDeadline(parents parentMap, sel *ast.SelectorExpr) bool {
	nowCall, ok := parents[sel].(*ast.CallExpr) // time.Now()
	if !ok || nowCall.Fun != sel {
		return false
	}
	addSel, ok := parents[nowCall].(*ast.SelectorExpr) // .Add
	if !ok || addSel.Sel.Name != "Add" {
		return false
	}
	addCall, ok := parents[addSel].(*ast.CallExpr) // time.Now().Add(d)
	if !ok || addCall.Fun != addSel {
		return false
	}
	outer, ok := parents[addCall].(*ast.CallExpr) // the deadline setter
	if !ok {
		return false
	}
	outerSel, ok := ast.Unparen(outer.Fun).(*ast.SelectorExpr)
	return ok && connDeadlineSetters[outerSel.Sel.Name]
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Hotalloc enforces the zero-alloc contract on functions marked with a
// `//perf:hot` directive (the steady-state reconstruction kernels and
// record paths whose AllocsPerRun budgets are zero). The check is
// intra-procedural and names the allocating expression: make/new/append,
// slice and map composite literals, &T{...}, string↔[]byte/[]rune and
// int→string conversions, non-constant string concatenation, interface
// boxing of non-pointer-shaped values at call sites, function literals
// (closure capture), and go statements. Callees are not followed — mark
// them hot too if they are on the path.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc: "functions marked //perf:hot must not allocate: no make/new/append, " +
		"escaping composite literals, interface boxing, closures, or goroutines",
	Run: runHotalloc,
}

// hotDirective is the exact comment line that opts a function in.
const hotDirective = "//perf:hot"

// isHotFunc reports whether the declaration carries the directive.
// Directive comments are excluded from Doc.Text(), so scan the raw list.
func isHotFunc(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotDirective {
			return true
		}
	}
	return false
}

func runHotalloc(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotFunc(fd) {
				continue
			}
			h := &hotallocFunc{p: p, name: fd.Name.Name}
			h.walk(fd.Body)
		}
	}
}

type hotallocFunc struct {
	p    *Pass
	name string
}

func (h *hotallocFunc) report(e ast.Expr, reason string) {
	h.p.Reportf(e.Pos(), "//perf:hot function %s must not allocate: %s %s",
		h.name, types.ExprString(e), reason)
}

func (h *hotallocFunc) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			h.report(n, "captures a closure")
			return false
		case *ast.GoStmt:
			h.report(n.Call, "spawns a goroutine")
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, isLit := ast.Unparen(n.X).(*ast.CompositeLit); isLit {
					h.report(n, "heap-allocates a composite literal")
					return false
				}
			}
		case *ast.CompositeLit:
			switch h.typeOf(n).Underlying().(type) {
			case *types.Slice:
				h.report(n, "allocates a slice")
			case *types.Map:
				h.report(n, "allocates a map")
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" && h.isString(n) && !h.isConst(n) {
				h.report(n, "concatenates strings")
			}
		case *ast.CallExpr:
			h.call(n)
		}
		return true
	})
}

func (h *hotallocFunc) typeOf(e ast.Expr) types.Type {
	if t := h.p.Info.Types[e].Type; t != nil {
		return t
	}
	return types.Typ[types.Invalid]
}

func (h *hotallocFunc) isString(e ast.Expr) bool {
	b, ok := h.typeOf(e).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (h *hotallocFunc) isConst(e ast.Expr) bool {
	return h.p.Info.Types[e].Value != nil
}

func (h *hotallocFunc) call(call *ast.CallExpr) {
	// Builtins that allocate.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := h.p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				h.report(call, "allocates with make")
			case "new":
				h.report(call, "allocates with new")
			case "append":
				h.report(call, "may grow its backing array")
			}
			return
		}
	}
	// Conversions that copy their operand into fresh memory.
	if tv, ok := h.p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		h.conversion(call, tv.Type)
		return
	}
	// Interface boxing at statically typed call sites.
	h.boxing(call)
}

func (h *hotallocFunc) conversion(call *ast.CallExpr, to types.Type) {
	from := h.typeOf(call.Args[0])
	toStr := isStringType(to)
	fromStr := isStringType(from)
	switch {
	case toStr && isByteOrRuneSlice(from), fromStr && isByteOrRuneSlice(to):
		if !h.isConst(call.Args[0]) {
			h.report(call, "copies between string and slice")
		}
	case toStr && !fromStr:
		h.report(call, "builds a new string")
	default:
		if iface, ok := to.Underlying().(*types.Interface); ok && !iface.Empty() || isAnyInterface(to) {
			h.checkBox(call.Args[0])
		}
	}
}

// boxing flags non-pointer-shaped concrete arguments passed to
// interface-typed parameters (each such pass allocates the box).
func (h *hotallocFunc) boxing(call *ast.CallExpr) {
	fn := h.p.CalleeFunc(call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); isIface {
			h.checkBox(arg)
		}
	}
}

// checkBox reports arg if converting it to an interface allocates: its
// concrete representation is larger than a pointer word.
func (h *hotallocFunc) checkBox(arg ast.Expr) {
	t := h.typeOf(arg)
	if h.isConst(arg) {
		return // constants box to read-only statics
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return
	case *types.Basic:
		if u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil || u.Kind() == types.Invalid {
			return
		}
	}
	h.report(arg, "boxes a value into an interface")
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isAnyInterface(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	return ok && iface.Empty()
}

// Package lint is a from-scratch static-analysis driver on the standard
// library's go/ast, go/parser, and go/types — no module dependencies —
// with project-specific analyzers that machine-check the invariants this
// repo's layers rely on but the compiler cannot see:
//
//   - simclock: all time stamping in library code goes through the
//     environment clock (flow.Env), so traces recorded under the
//     discrete-event kernel are byte-identical run to run.
//   - wrapcheck: error chains survive wrapping (%w, never %v/%s), and
//     errors born at the transfer/facility/flow boundaries carry a
//     faults class so retry loops classify them correctly.
//   - ctxfirst: context.Context travels as the first parameter and never
//     hides in struct fields.
//   - testsleep: tests synchronize on observable state, not time.Sleep.
//
// Analyzers are semantic, not textual: the driver type-checks every
// package (method-set aware, alias-proof), so `import t "time"` or a
// shadowed identifier cannot fool a check. Each analyzer lives in its own
// file and registers in All; adding a check is dropping in one file.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, formatted as the machine-readable
// "file:line:col: [analyzer] message".
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical gate format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check. Exactly one of Run and
// RunModule is set: Run sees one package at a time, RunModule sees every
// loaded package at once (for checks whose facts span packages, like the
// lock-acquisition graph).
type Analyzer struct {
	// Name tags diagnostics and selects the analyzer on the command line.
	Name string
	// Doc is the one-paragraph description `repolint -list` prints.
	Doc string
	// Run inspects one type-checked package and reports findings.
	Run func(*Pass)
	// RunModule inspects the whole loaded package set at once.
	RunModule func(*ModulePass)
}

// All is the analyzer registry, in reporting order.
var All = []*Analyzer{Simclock, Wrapcheck, CtxFirst, TestSleep, Stdlog,
	Lockguard, Lockorder, Nocopy, Hotalloc}

// ByName returns the registered analyzer with the given name, if any.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range All {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package's syntax, including in-package _test.go files
	// (external test packages form their own Pass).
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
	Config *Config

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether f is a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// ModulePass carries every loaded package through one module-spanning
// analyzer.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package
	Config   *Config

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (m *ModulePass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*m.diags = append(*m.diags, Diagnostic{
		Pos:      m.Fset.Position(pos),
		Analyzer: m.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// isTestFile reports whether f is a _test.go file.
func (m *ModulePass) isTestFile(f *ast.File) bool {
	return strings.HasSuffix(m.Fset.Position(f.Pos()).Filename, "_test.go")
}

// CalleeFunc resolves the static callee of a call expression, or nil for
// dynamic calls, conversions, and built-ins.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// FuncPath returns the allowlist key of a function object: "pkgpath.Name"
// for package functions, "pkgpath.Recv.Name" for methods (pointer
// receivers spelled without the star).
func FuncPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// Config scopes and allowlists the analyzers. The zero value disables all
// scoping; DefaultConfig returns the repo's production gate.
type Config struct {
	// ModulePath of the code under analysis.
	ModulePath string

	// SimclockScope lists import-path prefixes simclock enforces (the
	// library layers); empty means every package. Entry points (cmd/,
	// examples/) legitimately run on the wall clock and stay outside.
	SimclockScope []string
	// SimclockAllowFuncs are the declarations allowed to touch the wall
	// clock directly, keyed by FuncPath — the environment-clock gateway
	// (flow.RealEnv) and the real-socket timeout waits.
	SimclockAllowFuncs map[string]bool
	// SimclockAllowPackages are packages allowed wholesale (test
	// infrastructure that must poll real time, e.g. leakcheck).
	SimclockAllowPackages map[string]bool

	// WrapcheckBoundaryPackages are the layers whose newly created errors
	// must carry a faults class (or wrap a classified cause with %w).
	WrapcheckBoundaryPackages map[string]bool
	// FaultsPackage is the import path of the fault-taxonomy package.
	FaultsPackage string

	// CtxFirstAllowFields are struct types ("pkgpath.Name") allowed to
	// hold a context.Context field (e.g. the flow run handle).
	CtxFirstAllowFields map[string]bool

	// StdlogScope lists import-path prefixes where importing the stdlib
	// log package is forbidden (library code journals through obslog);
	// empty means every package. There is deliberately no allowlist.
	StdlogScope []string
}

// DefaultConfig is the gate enforced on this repository.
func DefaultConfig() *Config {
	return &Config{
		ModulePath:    "repro",
		SimclockScope: []string{"repro/internal"},
		SimclockAllowFuncs: map[string]bool{
			// The one sanctioned wall-clock gateway.
			"repro/internal/flow.RealEnv.Now":      true,
			"repro/internal/flow.RealEnv.Sleep":    true,
			"repro/internal/flow.RealEnv.SleepCtx": true,
			// The shared binary-side clock bridge both servers resolve
			// their clock through. Note internal/sched has NO entries
			// here: the scheduler is env-clock only by construction.
			"repro/internal/sim.WallClock.Now": true,
			// Real-socket operations need real timers for bounded waits:
			// the timeout select in Pull.Recv and the reconnect backoff
			// timer in Push.Send (which selects on ctx.Done).
			"repro/internal/msgq.Pull.Recv": true,
			"repro/internal/msgq.Push.Send": true,
		},
		SimclockAllowPackages: map[string]bool{
			// Goroutine-leak polling is wall-clock by nature.
			"repro/internal/leakcheck": true,
		},
		WrapcheckBoundaryPackages: map[string]bool{
			"repro/internal/transfer": true,
			"repro/internal/facility": true,
			"repro/internal/flow":     true,
		},
		FaultsPackage: "repro/internal/faults",
		CtxFirstAllowFields: map[string]bool{
			// The flow run handle carries the run's context by design.
			"repro/internal/flow.Ctx": true,
			// A queued run carries its submission context (journal +
			// tenant identity) until a worker dispatches it.
			"repro/internal/sched.item": true,
		},
		StdlogScope: []string{"repro/internal"},
	}
}

// simclockInScope reports whether simclock applies to the package.
func (c *Config) simclockInScope(pkgPath string) bool {
	if c.SimclockAllowPackages[pkgPath] {
		return false
	}
	if len(c.SimclockScope) == 0 {
		return true
	}
	for _, prefix := range c.SimclockScope {
		if pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/") {
			return true
		}
	}
	return false
}

// stdlogInScope reports whether stdlog applies to the package.
func (c *Config) stdlogInScope(pkgPath string) bool {
	if len(c.StdlogScope) == 0 {
		return true
	}
	for _, prefix := range c.StdlogScope {
		if pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/") {
			return true
		}
	}
	return false
}

// RunAnalyzers applies every analyzer to every package and returns the
// diagnostics sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer, cfg *Config) []Diagnostic {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				Config:   cfg,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil || len(pkgs) == 0 {
			continue
		}
		a.RunModule(&ModulePass{
			Analyzer: a,
			Fset:     pkgs[0].Fset,
			Pkgs:     pkgs,
			Config:   cfg,
			diags:    &diags,
		})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// parentMap records each node's syntactic parent within one file, for
// checks that need to look outward from a match (e.g. "is this time.Now
// feeding a SetDeadline?").
type parentMap map[ast.Node]ast.Node

func buildParents(f *ast.File) parentMap {
	parents := parentMap{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// enclosingFuncPath returns the FuncPath of the declaration containing n
// ("" at file scope).
func (p *Pass) enclosingFuncPath(parents parentMap, n ast.Node) string {
	for cur := n; cur != nil; cur = parents[cur] {
		decl, ok := cur.(*ast.FuncDecl)
		if !ok {
			continue
		}
		fn, _ := p.Info.Defs[decl.Name].(*types.Func)
		return FuncPath(fn)
	}
	return ""
}

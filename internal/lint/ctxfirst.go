package lint

import (
	"go/ast"
	"go/types"
)

// CtxFirst enforces the repo's context discipline: context.Context is
// always the first parameter of any function type that takes one (decls,
// literals, interface methods, named function types), and never hides in
// a struct field — a stored context outlives its cancellation scope and
// silently detaches work from shutdown. The flow run handle is the one
// allowlisted carrier.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc: "context.Context must be the first parameter and must not be stored " +
		"in struct fields (allowlisted carriers excepted)",
	Run: runCtxFirst,
}

func runCtxFirst(p *Pass) {
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncType:
				p.checkParamOrder(n)
			case *ast.TypeSpec:
				if st, ok := n.Type.(*ast.StructType); ok {
					p.checkStructFields(n.Name.Name, st)
				}
			}
			return true
		})
	}
}

// checkParamOrder reports a context.Context parameter at any position
// after the first.
func (p *Pass) checkParamOrder(ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0 // positional index of the first name bound by each field
	for _, field := range ft.Params.List {
		width := len(field.Names)
		if width == 0 {
			width = 1
		}
		if pos > 0 && p.isContextType(field.Type) {
			p.Reportf(field.Pos(), "context.Context must be the first parameter")
		}
		pos += width
	}
}

// checkStructFields reports context.Context stored in struct fields of
// non-allowlisted types.
func (p *Pass) checkStructFields(structName string, st *ast.StructType) {
	if p.Config.CtxFirstAllowFields[p.Pkg.Path()+"."+structName] {
		return
	}
	for _, field := range st.Fields.List {
		if p.isContextType(field.Type) {
			p.Reportf(field.Pos(),
				"context.Context stored in struct %s outlives its cancellation scope; pass it as a call parameter", structName)
		}
	}
}

// isContextType reports whether the expression's type is context.Context.
func (p *Pass) isContextType(expr ast.Expr) bool {
	named, ok := p.Info.TypeOf(expr).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The CFG builder has no public surface of its own; these tests drive it
// the way production does — through lockguard's must-hold dataflow — so
// every assertion is about the property the graph exists to prove: which
// control-flow shapes keep a mutex held at an access site.

// lockguardSrc runs lockguard over one in-memory file in a throwaway
// module and returns the diagnostics.
func lockguardSrc(t *testing.T, src string) []Diagnostic {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixture\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err := LoadAndRun(dir, nil, []*Analyzer{Lockguard}, &Config{})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

const cfgHeader = `package fixture

import "sync"

type s struct {
	mu sync.Mutex
	n  int // guarded by mu
}

`

func TestCFGLockStateJoins(t *testing.T) {
	cases := []struct {
		name string
		body string // methods on *s appended to cfgHeader
		want int    // expected diagnostic count
	}{
		{"straight line locked", `
func (x *s) f() {
	x.mu.Lock()
	x.n++
	x.mu.Unlock()
}`, 0},
		{"straight line unlocked", `
func (x *s) f() {
	x.n++
}`, 1},
		{"if both branches lock", `
func (x *s) f(b bool) {
	if b {
		x.mu.Lock()
	} else {
		x.mu.Lock()
	}
	x.n++
	x.mu.Unlock()
}`, 0},
		{"if one branch locks", `
func (x *s) f(b bool) {
	if b {
		x.mu.Lock()
	}
	x.n++
}`, 1},
		{"if with init statement", `
func (x *s) f() {
	if b := true; b {
		x.mu.Lock()
		x.n++
		x.mu.Unlock()
	}
}`, 0},
		{"defer unlock holds to exit", `
func (x *s) f() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.n++
	x.n--
}`, 0},
		{"for body holds loop-carried lock", `
func (x *s) f() {
	x.mu.Lock()
	for i := 0; i < 3; i++ {
		x.n += i
	}
	x.mu.Unlock()
}`, 0},
		{"lock inside loop does not cover after", `
func (x *s) f() {
	for i := 0; i < 3; i++ {
		x.mu.Lock()
		x.n += i
		x.mu.Unlock()
	}
	x.n++
}`, 1},
		{"infinite for with break keeps state", `
func (x *s) f() {
	x.mu.Lock()
	for {
		x.n++
		break
	}
	x.mu.Unlock()
}`, 0},
		{"range body and after", `
func (x *s) f(vs []int) {
	x.mu.Lock()
	for _, v := range vs {
		x.n += v
	}
	x.mu.Unlock()
	for range vs {
		x.n++
	}
}`, 1},
		{"switch all cases lock", `
func (x *s) f(k int) {
	switch k {
	case 0:
		x.mu.Lock()
	default:
		x.mu.Lock()
	}
	x.n++
	x.mu.Unlock()
}`, 0},
		{"switch without default may skip", `
func (x *s) f(k int) {
	switch k {
	case 0:
		x.mu.Lock()
	}
	x.n++
}`, 1},
		{"type switch joins", `
func (x *s) f(v interface{}) {
	switch v.(type) {
	case int:
		x.mu.Lock()
	default:
		x.mu.Lock()
	}
	x.n++
	x.mu.Unlock()
}`, 0},
		{"fallthrough carries state but direct entry does not", `
func (x *s) f(k int) {
	switch k {
	case 0:
		x.mu.Lock()
		fallthrough
	case 1:
		x.n++
	default:
	}
}`, 1},
		{"select every clause locks", `
func (x *s) f(a, b chan int) {
	select {
	case <-a:
		x.mu.Lock()
	case <-b:
		x.mu.Lock()
	}
	x.n++
	x.mu.Unlock()
}`, 0},
		{"select with default may skip", `
func (x *s) f(a chan int) {
	select {
	case <-a:
		x.mu.Lock()
	default:
	}
	x.n++
}`, 1},
		{"goto skips the unlock", `
func (x *s) f(b bool) {
	x.mu.Lock()
	if b {
		goto done
	}
	x.mu.Unlock()
done:
	x.n++
}`, 1},
		{"labeled break out of nested loops", `
func (x *s) f(vs []int) {
	x.mu.Lock()
outer:
	for _, v := range vs {
		for i := 0; i < v; i++ {
			x.n++
			break outer
		}
	}
	x.mu.Unlock()
}`, 0},
		{"labeled continue rejoins the loop head", `
func (x *s) f(vs []int) {
outer:
	for _, v := range vs {
		x.mu.Lock()
		if v > 0 {
			x.mu.Unlock()
			continue outer
		}
		x.n++
		x.mu.Unlock()
	}
}`, 0},
		{"panic path does not weaken the join", `
func (x *s) f(b bool) {
	if b {
		panic("boom")
	} else {
		x.mu.Lock()
	}
	x.n++
	x.mu.Unlock()
}`, 0},
		{"return ends the locked path", `
func (x *s) f(b bool) (int, bool) {
	x.mu.Lock()
	if b {
		defer x.mu.Unlock()
		return x.n, true
	}
	x.mu.Unlock()
	return 0, false
}`, 0},
		{"access in dead code is not reported", `
func (x *s) f() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.n
	x.n++
	return 0
}`, 0},
		{"rlock satisfies read not write", `
func (x *s) g() {}
`, 0},
		{"goroutine body starts unlocked", `
func (x *s) f() {
	x.mu.Lock()
	defer x.mu.Unlock()
	go func() {
		x.n++
	}()
}`, 1},
		{"deferred closure inherits creation state", `
func (x *s) f() {
	x.mu.Lock()
	defer x.mu.Unlock()
	defer func() {
		x.n = 0
	}()
	x.n++
}`, 0},
		{"locked suffix without receiver gets no entry state", `
func bumpLocked(x *s) {
	x.n++
}`, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := lockguardSrc(t, cfgHeader+strings.TrimLeft(tc.body, "\n"))
			if len(diags) != tc.want {
				var msgs []string
				for _, d := range diags {
					msgs = append(msgs, d.String())
				}
				t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), tc.want, strings.Join(msgs, "\n"))
			}
		})
	}
}

// An RWMutex guard distinguishes read and write acquisition modes.
func TestCFGRWModes(t *testing.T) {
	src := `package fixture

import "sync"

type r struct {
	mu sync.RWMutex
	n  int // guarded by mu
}

func (x *r) read() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.n
}

func (x *r) writeUnderRLock() {
	x.mu.RLock()
	defer x.mu.RUnlock()
	x.n++
}

func (x *r) mixedJoin(b bool) int {
	if b {
		x.mu.Lock()
		defer x.mu.Unlock()
	} else {
		x.mu.RLock()
		defer x.mu.RUnlock()
	}
	// Exclusive meets shared: reads stay legal, writes do not.
	v := x.n
	x.n = v + 1
	return v
}
`
	diags := lockguardSrc(t, src)
	if len(diags) != 2 {
		var msgs []string
		for _, d := range diags {
			msgs = append(msgs, d.String())
		}
		t.Fatalf("got %d diagnostics, want 2:\n%s", len(diags), strings.Join(msgs, "\n"))
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "writes require Lock") {
			t.Errorf("expected RLock-write diagnostic, got: %s", d)
		}
	}
}

// TestSimNowGuardRegression proves the annotation has teeth: the real
// sim.Engine source, with the nowMu locking stripped out of Now(),
// reproduces the unsynchronized-clock bug PR 7's race rig caught — and
// lockguard reports it at compile time. The unmodified source stays
// clean.
func TestSimNowGuardRegression(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(filepath.Join(wd, "..", "sim", "sim.go"))
	if err != nil {
		t.Fatal(err)
	}
	if diags := lockguardSrc(t, string(src)); len(diags) != 0 {
		t.Fatalf("pristine sim.go should be clean, got %d diagnostics, first: %s", len(diags), diags[0])
	}
	locking := "\te.nowMu.Lock()\n\tdefer e.nowMu.Unlock()\n"
	if !strings.Contains(string(src), locking) {
		t.Fatalf("sim.go no longer contains the Now() locking sequence; update this test")
	}
	broken := strings.Replace(string(src), locking, "", 1)
	diags := lockguardSrc(t, broken)
	if len(diags) == 0 {
		t.Fatal("stripping the sim.Engine.now mutex should reproduce a lockguard diagnostic")
	}
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "e.now") {
			found = true
		}
	}
	if !found {
		t.Fatalf("diagnostics do not mention e.now: %v", diags)
	}
}

// TestSelfLint runs the full analyzer set over the lint driver and CLI
// themselves — the analyzers hold to their own invariants.
func TestSelfLint(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Join(wd, "..", "..")
	diags, err := LoadAndRun(root, []string{"./internal/lint", "./cmd/repolint"}, All, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

package lint

import (
	"go/ast"
	"go/token"
)

// This file is a small from-scratch control-flow graph over ast.Stmt,
// built for the lockguard analyzer's must-hold dataflow. Each function
// body becomes basic blocks of *shallow* nodes — expressions and simple
// statements in evaluation order, never a statement that contains
// branching — joined by successor edges that model if/else, the three
// loop forms, switch/type-switch/select (including fallthrough), labeled
// break/continue, goto, return, and panic termination. Deferred and
// go-spawned calls appear as their own node kinds so the dataflow can
// evaluate their arguments without executing the call itself.

// cfgNode is one shallow unit of work inside a basic block.
type cfgNode struct {
	// n is an expression or a simple (non-branching) statement. For
	// deferCall and goCall nodes it is the *ast.CallExpr whose arguments
	// are evaluated at the node but whose call body runs elsewhere.
	n ast.Node
	// kind distinguishes immediate evaluation from defer/go suspension.
	kind nodeKind
}

type nodeKind int8

const (
	nodeEval  nodeKind = iota // evaluated in place
	nodeDefer                 // deferred call: args evaluate now, call at exit
	nodeGo                    // go call: args evaluate now, call on new goroutine
)

// cfgBlock is one basic block.
type cfgBlock struct {
	index int
	nodes []cfgNode
	succs []*cfgBlock
	preds []*cfgBlock
}

// cfgGraph is the control-flow graph of one function body. entry has no
// predecessors; exit collects every return, panic, and fallthrough-off-
// the-end path. Blocks unreachable from entry have no predecessors and
// are treated as dead by the dataflow.
type cfgGraph struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *cfgGraph {
	b := &cfgBuilder{g: &cfgGraph{}}
	b.g.entry = b.newBlock()
	b.g.exit = b.newBlock()
	b.cur = b.g.entry
	b.labels = map[string]*cfgBlock{}
	b.stmt(body)
	// Falling off the end of the body flows to exit.
	b.link(b.cur, b.g.exit)
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.link(g.from, target)
		}
	}
	return b.g
}

// pendingGoto is a goto whose label block may not exist yet.
type pendingGoto struct {
	from  *cfgBlock
	label string
}

// loopFrame records the break/continue targets of one enclosing loop,
// switch, or select ("" label matches the innermost frame).
type loopFrame struct {
	label       string
	breakTarget *cfgBlock
	continueTgt *cfgBlock // nil for switch/select frames
}

type cfgBuilder struct {
	g      *cfgGraph
	cur    *cfgBlock
	frames []loopFrame
	labels map[string]*cfgBlock
	gotos  []pendingGoto
	// pendingLabel is the label of the LabeledStmt currently being
	// unwrapped, claimed by the next loop/switch/select construct.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *cfgBlock) {
	if from == nil || to == nil {
		return
	}
	from.succs = append(from.succs, to)
	to.preds = append(to.preds, from)
}

// startBlock seals the current block into a fresh successor.
func (b *cfgBuilder) startBlock() *cfgBlock {
	blk := b.newBlock()
	b.link(b.cur, blk)
	b.cur = blk
	return blk
}

func (b *cfgBuilder) add(n ast.Node, kind nodeKind) {
	if n == nil {
		return
	}
	b.cur.nodes = append(b.cur.nodes, cfgNode{n: n, kind: kind})
}

// terminate ends the current path (after return/goto/break/continue);
// subsequent statements land in a fresh predecessor-less block that the
// dataflow treats as unreachable.
func (b *cfgBuilder) terminate() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) pushFrame(breakTarget, continueTgt *cfgBlock) {
	b.frames = append(b.frames, loopFrame{
		label:       b.pendingLabel,
		breakTarget: breakTarget,
		continueTgt: continueTgt,
	})
	b.pendingLabel = ""
}

func (b *cfgBuilder) popFrame() { b.frames = b.frames[:len(b.frames)-1] }

// findBreak returns the break target for the given label ("" means the
// innermost frame).
func (b *cfgBuilder) findBreak(label string) *cfgBlock {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if label == "" || f.label == label {
			return f.breakTarget
		}
	}
	return nil
}

// findContinue returns the continue target for the given label, skipping
// switch/select frames (continue binds to loops only).
func (b *cfgBuilder) findContinue(label string) *cfgBlock {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if f.continueTgt == nil {
			continue
		}
		if label == "" || f.label == label {
			return f.continueTgt
		}
	}
	return nil
}

// isPanicCall reports whether e is a call of the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:

	case *ast.BlockStmt:
		for _, t := range s.List {
			b.stmt(t)
		}

	case *ast.LabeledStmt:
		// The label starts its own block so goto can land on it.
		lbl := b.startBlock()
		b.labels[s.Label.Name] = lbl
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ExprStmt:
		b.add(s.X, nodeEval)
		if isPanicCall(s.X) {
			b.link(b.cur, b.g.exit)
			b.terminate()
		}

	case *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.DeclStmt:
		b.add(s, nodeEval)

	case *ast.DeferStmt:
		b.add(s.Call, nodeDefer)

	case *ast.GoStmt:
		b.add(s.Call, nodeGo)

	case *ast.ReturnStmt:
		b.add(s, nodeEval)
		b.link(b.cur, b.g.exit)
		b.terminate()

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			b.link(b.cur, b.findBreak(label))
			b.terminate()
		case token.CONTINUE:
			b.link(b.cur, b.findContinue(label))
			b.terminate()
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
			b.terminate()
		case token.FALLTHROUGH:
			// Resolved by the enclosing switch builder; the clause body
			// records the source block and links it to the next clause.
		}

	case *ast.IfStmt:
		b.stmt(s.Init)
		b.add(s.Cond, nodeEval)
		cond := b.cur
		join := b.newBlock()
		then := b.newBlock()
		b.link(cond, then)
		b.cur = then
		b.stmt(s.Body)
		b.link(b.cur, join)
		if s.Else != nil {
			els := b.newBlock()
			b.link(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.link(b.cur, join)
		} else {
			b.link(cond, join)
		}
		b.cur = join

	case *ast.ForStmt:
		b.stmt(s.Init)
		head := b.startBlock()
		b.add(s.Cond, nodeEval)
		exit := b.newBlock()
		if s.Cond != nil {
			b.link(head, exit)
		}
		post := b.newBlock() // continue target; runs Post then loops
		body := b.newBlock()
		b.link(head, body)
		b.pushFrame(exit, post)
		b.cur = body
		b.stmt(s.Body)
		b.popFrame()
		b.link(b.cur, post)
		b.cur = post
		b.stmt(s.Post)
		b.link(b.cur, head)
		b.cur = exit

	case *ast.RangeStmt:
		b.add(s.X, nodeEval)
		head := b.startBlock()
		// Key/Value assignment happens per iteration in the head.
		b.add(s.Key, nodeEval)
		b.add(s.Value, nodeEval)
		exit := b.newBlock()
		b.link(head, exit) // the range may be empty or exhausted
		body := b.newBlock()
		b.link(head, body)
		b.pushFrame(exit, head)
		b.cur = body
		b.stmt(s.Body)
		b.popFrame()
		b.link(b.cur, head)
		b.cur = exit

	case *ast.SwitchStmt:
		b.stmt(s.Init)
		b.add(s.Tag, nodeEval)
		b.switchClauses(s.Body, nil)

	case *ast.TypeSwitchStmt:
		b.stmt(s.Init)
		b.add(s.Assign, nodeEval)
		b.switchClauses(s.Body, nil)

	case *ast.SelectStmt:
		b.switchClauses(s.Body, func(comm ast.Stmt) {
			b.stmt(comm)
		})
	}
}

// switchClauses builds the clause bodies of a switch, type switch, or
// select hanging off the current block. commEval, when non-nil, builds
// each select clause's communication statement inside its branch.
func (b *cfgBuilder) switchClauses(body *ast.BlockStmt, commEval func(ast.Stmt)) {
	cond := b.cur
	exit := b.newBlock()
	b.pushFrame(exit, nil)
	hasDefault := false
	// First lay out every clause's entry block so fallthrough can link
	// forward.
	type clause struct {
		entry *cfgBlock
		stmts []ast.Stmt
		exprs []ast.Expr // case expressions (evaluated in the entry block)
		comm  ast.Stmt   // select only
		def   bool
	}
	var clauses []clause
	for _, raw := range body.List {
		switch c := raw.(type) {
		case *ast.CaseClause:
			clauses = append(clauses, clause{entry: b.newBlock(), stmts: c.Body, exprs: c.List, def: c.List == nil})
		case *ast.CommClause:
			clauses = append(clauses, clause{entry: b.newBlock(), stmts: c.Body, comm: c.Comm, def: c.Comm == nil})
		}
	}
	for _, c := range clauses {
		if c.def {
			hasDefault = true
		}
		b.link(cond, c.entry)
	}
	if !hasDefault && commEval == nil {
		// A switch with no default may match nothing.
		b.link(cond, exit)
	}
	// A select with no default blocks until one clause is ready, so no
	// cond→exit edge; an empty select never proceeds at all.
	for i, c := range clauses {
		b.cur = c.entry
		for _, e := range c.exprs {
			b.add(e, nodeEval)
		}
		if c.comm != nil && commEval != nil {
			commEval(c.comm)
		}
		fellThrough := false
		for _, st := range c.stmts {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				if i+1 < len(clauses) {
					b.link(b.cur, clauses[i+1].entry)
					fellThrough = true
				}
				b.terminate()
				continue
			}
			b.stmt(st)
		}
		if !fellThrough {
			b.link(b.cur, exit)
		}
	}
	b.popFrame()
	b.cur = exit
}

package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked analysis unit: a directory's library and
// in-package test files together, or its external (_test-suffixed
// package) test files alone.
type Package struct {
	Dir        string
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// Loader parses and type-checks packages of one module without any
// go/packages dependency: module-internal imports resolve by walking the
// module tree, everything else through the toolchain's export data (with
// a GOROOT-source fallback).
type Loader struct {
	fset    *token.FileSet
	root    string // module root directory
	modPath string
	std     types.ImporterFrom
	src     types.Importer // lazy fallback: type-checks GOROOT source
	libs    map[string]*types.Package
}

// NewLoader creates a loader for the module rooted at dir (dir must hold
// go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		root:    abs,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "gc", nil).(types.ImporterFrom),
		libs:    map[string]*types.Package{},
	}, nil
}

// ModulePath returns the module path the loader resolves internal imports
// against.
func (l *Loader) ModulePath() string { return l.modPath }

func modulePath(gomod string) (string, error) {
	raw, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Load resolves the patterns ("./...", "./dir/...", "./dir") to package
// directories and returns their type-checked analysis units in directory
// order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		units, err := l.analyze(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, units...)
	}
	return out, nil
}

// expand maps patterns to package directories (dirs with ≥1 .go file),
// skipping testdata, vendor, and hidden directories.
func (l *Loader) expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		base := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// importPathFor maps a module directory to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// parseDir parses the directory's files into library, in-package test,
// and external-package test groups.
func (l *Loader) parseDir(dir string) (lib, inTest, extTest []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, perr := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, nil, nil, perr
		}
		switch {
		case !strings.HasSuffix(name, "_test.go"):
			lib = append(lib, f)
		case strings.HasSuffix(f.Name.Name, "_test"):
			extTest = append(extTest, f)
		default:
			inTest = append(inTest, f)
		}
	}
	return lib, inTest, extTest, nil
}

// analyze type-checks a directory into one or two analysis units.
func (l *Loader) analyze(dir string) ([]*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	lib, inTest, extTest, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*Package
	if files := append(append([]*ast.File{}, lib...), inTest...); len(files) > 0 {
		unit, err := l.check(dir, path, files)
		if err != nil {
			return nil, err
		}
		out = append(out, unit)
	}
	if len(extTest) > 0 {
		unit, err := l.check(dir, path+"_test", extTest)
		if err != nil {
			return nil, err
		}
		out = append(out, unit)
	}
	return out, nil
}

// check runs the type checker over one file set with full type info.
func (l *Loader) check(dir, path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var errs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, _ := conf.Check(path, l.fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, errs[0])
	}
	return &Package{
		Dir: dir, ImportPath: path,
		Fset: l.fset, Files: files, Pkg: pkg, Info: info,
	}, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.root, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths
// type-check from source, everything else resolves through the gc
// importer, falling back to GOROOT source when export data is absent.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		return l.lib(path)
	}
	pkg, err := l.std.ImportFrom(path, l.root, 0)
	if err == nil {
		return pkg, nil
	}
	if l.src == nil {
		l.src = importer.ForCompiler(l.fset, "source", nil)
	}
	return l.src.Import(path)
}

// lib returns the importable (library-files-only) unit of a
// module-internal package, type-checking it on first use.
func (l *Loader) lib(path string) (*types.Package, error) {
	if pkg, ok := l.libs[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return pkg, nil
	}
	l.libs[path] = nil // mark in progress for cycle detection
	dir := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")))
	lib, _, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(lib) == 0 {
		return nil, fmt.Errorf("lint: no library Go files in %s", dir)
	}
	unit, err := l.check(dir, path, lib)
	if err != nil {
		return nil, err
	}
	l.libs[path] = unit.Pkg
	return unit.Pkg, nil
}

// LoadAndRun is the one-call entry the CLI and the self-check test share:
// load the patterns under root and run the analyzers with cfg.
func LoadAndRun(root string, patterns []string, analyzers []*Analyzer, cfg *Config) ([]Diagnostic, error) {
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	return RunAnalyzers(pkgs, analyzers, cfg), nil
}

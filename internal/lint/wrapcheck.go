package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// Wrapcheck keeps error chains intact so errors.Is and faults.Classify
// can see through them:
//
//   - an error operand of fmt.Errorf (or faults.Errorf) must be formatted
//     with %w, never %v/%s/%q — anything else flattens the chain;
//   - err.Error() must not be passed where the error itself belongs;
//   - in the boundary packages (transfer, facility, flow) a brand-new
//     leaf error (fmt.Errorf with no %w operand, errors.New) must carry a
//     faults class: construct it with faults.Errorf or wrap it in
//     faults.Wrap, or every retry loop will misclassify it as the
//     Transient default.
//
// The verb↔argument matching is positional (this repo uses no %[n]
// argument indexes or * widths).
var Wrapcheck = &Analyzer{
	Name: "wrapcheck",
	Doc: "fmt.Errorf with an error operand must use %w, and errors minted at the " +
		"transfer/facility/flow boundaries must carry a faults class",
	Run: runWrapcheck,
}

func runWrapcheck(p *Pass) {
	errorIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	boundary := p.Config.WrapcheckBoundaryPackages[strings.TrimSuffix(p.Pkg.Path(), "_test")]
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.CalleeFunc(call)
			switch FuncPath(fn) {
			case "fmt.Errorf":
				wrapped := p.checkVerbs(call, 1, errorIface)
				if boundary && !wrapped && !insideFaultsCall(p, parents, call) {
					p.Reportf(call.Pos(),
						"fmt.Errorf mints an unclassified error at a fault boundary; use faults.Errorf or wrap it with faults.Wrap")
				}
			case p.Config.FaultsPackage + ".Errorf":
				p.checkVerbs(call, 2, errorIface)
			case "errors.New":
				if boundary && !insideFaultsCall(p, parents, call) {
					p.Reportf(call.Pos(),
						"errors.New mints an unclassified error at a fault boundary; use faults.Errorf or wrap it with faults.Wrap")
				}
			}
			return true
		})
	}
}

// checkVerbs validates the verb each variadic operand is matched to,
// reporting error operands formatted with anything but %w. argStart is
// the index of the first operand after the format string. It reports
// whether the call %w-wraps at least one error operand.
func (p *Pass) checkVerbs(call *ast.CallExpr, argStart int, errorIface *types.Interface) bool {
	if len(call.Args) < argStart {
		return false
	}
	tv, ok := p.Info.Types[call.Args[argStart-1]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return false // non-constant format: nothing to match against
	}
	verbs := formatVerbs(constant.StringVal(tv.Value))
	wrapped := false
	for i, arg := range call.Args[argStart:] {
		if i >= len(verbs) {
			break
		}
		t := p.Info.TypeOf(arg)
		if t == nil {
			continue
		}
		if types.Implements(t, errorIface) {
			if verbs[i] == 'w' {
				wrapped = true
			} else {
				p.Reportf(arg.Pos(),
					"error operand formatted with %%%c drops the chain from errors.Is/faults.Classify; use %%w", verbs[i])
			}
			continue
		}
		if isErrorStringCall(p, arg, errorIface) {
			p.Reportf(arg.Pos(),
				"err.Error() stringifies the cause and drops the chain; pass the error itself with %%w")
		}
	}
	return wrapped
}

// isErrorStringCall reports whether arg is a call of the Error() string
// method on an error value.
func isErrorStringCall(p *Pass, arg ast.Expr, errorIface *types.Interface) bool {
	call, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	recv := p.Info.TypeOf(sel.X)
	return recv != nil && types.Implements(recv, errorIface)
}

// insideFaultsCall reports whether call sits (at any depth) inside a
// faults.Wrap or faults.Errorf argument list, i.e. the minted error is
// classified on the spot.
func insideFaultsCall(p *Pass, parents parentMap, call *ast.CallExpr) bool {
	for cur := parents[call]; cur != nil; cur = parents[cur] {
		outer, ok := cur.(*ast.CallExpr)
		if !ok {
			continue
		}
		switch FuncPath(p.CalleeFunc(outer)) {
		case p.Config.FaultsPackage + ".Wrap", p.Config.FaultsPackage + ".Errorf":
			return true
		}
	}
	return false
}

// formatVerbs returns the verb letter matched to each successive operand
// of a Printf-style format string. %% consumes no operand; flags, width,
// and precision characters are skipped.
func formatVerbs(s string) []byte {
	var out []byte
	for i := 0; i < len(s); {
		if s[i] != '%' {
			i++
			continue
		}
		i++
		if i < len(s) && s[i] == '%' {
			i++
			continue
		}
		for i < len(s) && strings.IndexByte("#+-. 0123456789[]*", s[i]) >= 0 {
			i++
		}
		if i < len(s) {
			out = append(out, s[i])
			i++
		}
	}
	return out
}

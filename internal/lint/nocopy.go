package lint

import (
	"go/ast"
	"go/types"
)

// Nocopy forbids copying values whose type contains a sync.Mutex or
// sync.RWMutex — directly, through a nested field, an embedded type, or
// an array element — or whose pointer method set carries a Lock/Unlock
// pair that its value method set lacks (the method-set-aware version of
// vet's copylocks, so a wrapper hiding its mutex behind accessor methods
// is still caught). A copied mutex is a fork: the copy and the original
// guard nothing in common, and the data they were protecting silently
// races.
//
// Flagged copy sites: by-value receivers, by-value parameters and
// results in function signatures, range-clause value copies, assignments
// and returns that read an existing lock-bearing value, and call
// arguments passed by value. Constructing a fresh value (composite
// literal, new, var declaration) is not a copy and is not flagged.
var Nocopy = &Analyzer{
	Name: "nocopy",
	Doc: "no value copies of types that contain sync.Mutex/RWMutex (directly, " +
		"nested, embedded, or via a pointer-only Lock/Unlock method set)",
	Run: runNocopy,
}

// lockReason memoizes why a type must not be copied ("" = copyable).
type lockReason struct {
	desc string
	bad  bool
}

type nocopyState struct {
	p    *Pass
	memo map[types.Type]lockReason
}

func runNocopy(p *Pass) {
	st := &nocopyState{p: p, memo: map[types.Type]lockReason{}}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				st.checkSignature(n.Recv, n.Type)
			case *ast.FuncLit:
				st.checkSignature(nil, n.Type)
			case *ast.RangeStmt:
				st.checkRange(n)
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					// A blank LHS discards the value: no live copy.
					if len(n.Lhs) == len(n.Rhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					st.checkCopyRead(rhs, "assignment copies")
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					st.checkCopyRead(res, "return copies")
				}
			case *ast.CallExpr:
				st.checkCall(n)
			}
			return true
		})
	}
}

// checkSignature flags by-value lock-bearing receivers, parameters, and
// results.
func (st *nocopyState) checkSignature(recv *ast.FieldList, ft *ast.FuncType) {
	report := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			t := st.p.Info.Types[fld.Type].Type
			if t == nil {
				continue
			}
			if reason, bad := st.containsLock(t); bad {
				st.p.Reportf(fld.Type.Pos(),
					"by-value %s of type %s copies %s; use a pointer", what, t, reason)
			}
		}
	}
	report(recv, "receiver")
	report(ft.Params, "parameter")
	report(ft.Results, "result")
}

// checkRange flags `for _, v := range xs` where v copies a lock-bearing
// element.
func (st *nocopyState) checkRange(r *ast.RangeStmt) {
	for _, e := range []ast.Expr{r.Key, r.Value} {
		if e == nil {
			continue
		}
		if id, ok := e.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		t := st.p.Info.Types[e].Type
		if t == nil {
			// := defines the variable; Types has no entry, Defs does.
			if id, ok := e.(*ast.Ident); ok {
				if v, vok := st.p.Info.Defs[id].(*types.Var); vok {
					t = v.Type()
				}
			}
		}
		if t == nil {
			continue
		}
		if reason, bad := st.containsLock(t); bad {
			st.p.Reportf(e.Pos(),
				"range clause copies %s values; each copy forks %s — iterate by index or over pointers", t, reason)
		}
	}
}

// checkCall flags lock-bearing values passed (or converted) by value.
func (st *nocopyState) checkCall(call *ast.CallExpr) {
	if tv, ok := st.p.Info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion T(x): copies x.
		for _, arg := range call.Args {
			st.checkCopyRead(arg, "conversion copies")
		}
		return
	}
	if tv, ok := st.p.Info.Types[call.Fun]; ok && tv.IsBuiltin() {
		return // len/cap/append etc. judged too noisy; vet covers copy()
	}
	for _, arg := range call.Args {
		st.checkCopyRead(arg, "call passes")
	}
}

// checkCopyRead flags e when it reads an existing lock-bearing value by
// value (identifier, field, deref, or index — not construction).
func (st *nocopyState) checkCopyRead(e ast.Expr, verb string) {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	t := st.p.Info.Types[e].Type
	if t == nil {
		return
	}
	if reason, bad := st.containsLock(t); bad {
		st.p.Reportf(e.Pos(), "%s a %s by value, which copies %s", verb, t, reason)
	}
}

// containsLock reports whether copying a value of type t would copy a
// mutex, and describes where the mutex lives.
func (st *nocopyState) containsLock(t types.Type) (string, bool) {
	if r, ok := st.memo[t]; ok {
		return r.desc, r.bad
	}
	st.memo[t] = lockReason{} // in-progress: break recursive types
	desc, bad := st.lockDesc(t)
	st.memo[t] = lockReason{desc: desc, bad: bad}
	return desc, bad
}

func (st *nocopyState) lockDesc(t types.Type) (string, bool) {
	if isMutexType(t) {
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			return "", false // a *Mutex copy shares the lock; fine
		}
		return "its " + t.String(), true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			fld := u.Field(i)
			if desc, bad := st.containsLock(fld.Type()); bad {
				if fld.Embedded() {
					return "embedded " + fld.Name() + " (" + desc + ")", true
				}
				return "field " + fld.Name() + " (" + desc + ")", true
			}
		}
	case *types.Array:
		if desc, bad := st.containsLock(u.Elem()); bad {
			return "array element (" + desc + ")", true
		}
	}
	// Method-set-aware fallback: a pointer-only Lock/Unlock pair marks
	// the type as lock-bearing even when the mutex itself is unexported
	// in another package.
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			ptrSet := types.NewMethodSet(types.NewPointer(t))
			valSet := types.NewMethodSet(t)
			if hasMethod(ptrSet, "Lock") && hasMethod(ptrSet, "Unlock") && !hasMethod(valSet, "Lock") {
				return "its pointer-receiver Lock/Unlock pair", true
			}
		}
	}
	return "", false
}

func hasMethod(ms *types.MethodSet, name string) bool {
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Lockorder builds a module-spanning lock-acquisition graph and reports
// cycles as potential deadlocks. A node is an abstract mutex — a struct
// field ("pkg.Type.field") or a package-level variable ("pkg.var") —
// and an edge A→B means some function acquires B while holding A, either
// directly or through a statically resolved call chain. Two goroutines
// traversing a cycle from different entry points can deadlock; a single
// function that re-locks the exact mutex value it already holds is a
// guaranteed self-deadlock and is reported separately.
//
// The per-function walk is a deliberate over-approximation: statements
// are scanned in source order with an evolving held-set, deferred calls
// do not release (so the common `mu.Lock(); defer mu.Unlock()` keeps the
// mutex held for the rest of the body), and function literals are
// analyzed as independent roots with nothing held.
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc: "no cycles in the module-wide lock-acquisition graph: a mutex acquired " +
		"while holding another establishes an order every goroutine must follow",
	RunModule: runLockorder,
}

// heldLock is one entry of the walk's held-set.
type heldLock struct {
	abstract string // graph node ("pkg.Type.field" or "pkg.var")
	concrete string // expression path ("s.mu"), for self-deadlock checks
	excl     bool   // Lock rather than RLock
}

// lockEdge is one held→acquired observation.
type lockEdge struct {
	from, to string
	pos      token.Pos
}

// lockCall is a statically resolved call made with locks held.
type lockCall struct {
	callee *types.Func
	held   []string // abstract ids held at the call site
	pos    token.Pos
}

// lockorderFunc is the per-function summary.
type lockorderFunc struct {
	acquires map[string]token.Pos // directly acquired abstract mutexes
	calls    []lockCall
}

type lockorderState struct {
	m     *ModulePass
	funcs map[*types.Func]*lockorderFunc
	edges []lockEdge
}

func runLockorder(m *ModulePass) {
	st := &lockorderState{m: m, funcs: map[*types.Func]*lockorderFunc{}}
	// Pass 1: per-function summaries and direct edges.
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			if m.isTestFile(f) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				w := &lockWalker{st: st, pkg: pkg, fn: fn,
					summary: &lockorderFunc{acquires: map[string]token.Pos{}}}
				w.walk(fd.Body, w.entryHeld(pkg, fd))
				if fn != nil {
					st.funcs[fn] = w.summary
				}
			}
		}
	}
	// Pass 2: transitive acquire sets to a fixpoint.
	trans := map[*types.Func]map[string]bool{}
	for fn, sum := range st.funcs {
		set := map[string]bool{}
		for id := range sum.acquires {
			set[id] = true
		}
		trans[fn] = set
	}
	for changed := true; changed; {
		changed = false
		for fn, sum := range st.funcs {
			set := trans[fn]
			for _, call := range sum.calls {
				for id := range trans[call.callee] {
					if !set[id] {
						set[id] = true
						changed = true
					}
				}
			}
		}
	}
	// Pass 3: call-mediated edges — holding H while calling a function
	// that (transitively) acquires A adds H→A.
	for _, sum := range st.funcs {
		for _, call := range sum.calls {
			for id := range trans[call.callee] {
				for _, h := range call.held {
					if h != id {
						st.edges = append(st.edges, lockEdge{from: h, to: id, pos: call.pos})
					}
				}
			}
		}
	}
	st.reportCycles()
}

// reportCycles finds mutually reachable node pairs and reports each
// once, at the position of the first edge observed between them.
func (st *lockorderState) reportCycles() {
	succ := map[string]map[string]bool{}
	for _, e := range st.edges {
		if succ[e.from] == nil {
			succ[e.from] = map[string]bool{}
		}
		succ[e.from][e.to] = true
	}
	reaches := func(from, to string) bool {
		seen := map[string]bool{from: true}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for next := range succ[n] {
				if next == to {
					return true
				}
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
		return false
	}
	// Deterministic order: edges sorted by position, deduped by pair.
	edges := append([]lockEdge{}, st.edges...)
	sort.Slice(edges, func(i, j int) bool { return edges[i].pos < edges[j].pos })
	reported := map[[2]string]bool{}
	for _, e := range edges {
		key := [2]string{e.from, e.to}
		if e.from > e.to {
			key = [2]string{e.to, e.from}
		}
		if reported[key] {
			continue
		}
		if reaches(e.to, e.from) {
			reported[key] = true
			st.m.Reportf(e.pos,
				"lock order cycle: %s is acquired while %s is held, but elsewhere %s is acquired while %s is held — potential deadlock",
				e.to, e.from, e.from, e.to)
		}
	}
}

// lockWalker scans one function body in source order.
type lockWalker struct {
	st      *lockorderState
	pkg     *Package
	fn      *types.Func
	summary *lockorderFunc
	held    []heldLock
}

// entryHeld seeds the held-set for *Locked methods: the receiver's mutex
// fields are held by contract (matching lockguard's convention), so the
// locks such helpers acquire are ordered after them.
func (w *lockWalker) entryHeld(pkg *Package, fd *ast.FuncDecl) []heldLock {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	if len(fd.Name.Name) < len("Locked") || fd.Name.Name[len(fd.Name.Name)-len("Locked"):] != "Locked" {
		return nil
	}
	rv, ok := pkg.Info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	if !ok {
		return nil
	}
	t := rv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	strct, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	recvName := fd.Recv.List[0].Names[0].Name
	var held []heldLock
	for i := 0; i < strct.NumFields(); i++ {
		fld := strct.Field(i)
		if isMutexType(fld.Type()) {
			held = append(held, heldLock{
				abstract: named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fld.Name(),
				concrete: recvName + "." + fld.Name(),
				excl:     true,
			})
		}
	}
	return held
}

func (w *lockWalker) walk(body ast.Node, entry []heldLock) {
	w.held = append([]heldLock{}, entry...)
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// Deferred unlocks run at exit; treating them as immediate
			// would clear the held-set mid-body. Deferred closures are
			// analyzed as independent roots.
			ast.Inspect(n.Call, func(inner ast.Node) bool {
				if lit, ok := inner.(*ast.FuncLit); ok {
					lits = append(lits, lit)
					return false
				}
				return true
			})
			return false
		case *ast.FuncLit:
			lits = append(lits, n)
			return false
		case *ast.CallExpr:
			w.call(n)
		}
		return true
	})
	for _, lit := range lits {
		inner := &lockWalker{st: w.st, pkg: w.pkg, fn: w.fn, summary: w.summary}
		inner.walk(lit.Body, nil)
	}
}

// call handles one call expression: a mutex operation updates the
// held-set and the graph; a statically resolved module-internal call is
// recorded for the transitive pass.
func (w *lockWalker) call(call *ast.CallExpr) {
	var id *ast.Ident
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if isSel {
		id = sel.Sel
	} else if plain, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		id = plain
	} else {
		return
	}
	fn, ok := w.pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && isMutexType(sig.Recv().Type()) && isSel {
			w.mutexOp(call, sel, fn.Name())
		}
		return
	}
	// Record module-internal static callees made with locks held.
	if len(w.held) == 0 || fn.Pkg() == nil {
		return
	}
	held := make([]string, 0, len(w.held))
	for _, h := range w.held {
		held = append(held, h.abstract)
	}
	w.summary.calls = append(w.summary.calls, lockCall{callee: fn, held: held, pos: call.Lparen})
}

func (w *lockWalker) mutexOp(call *ast.CallExpr, sel *ast.SelectorExpr, op string) {
	abstract := w.abstractMutex(sel.X)
	concrete := exprPath(sel.X)
	switch op {
	case "Lock", "RLock":
		excl := op == "Lock"
		if excl && concrete != "" {
			for _, h := range w.held {
				if h.concrete == concrete && h.excl {
					w.st.m.Reportf(call.Lparen,
						"%s.Lock() while %s is already held: guaranteed self-deadlock", concrete, concrete)
				}
			}
		}
		if abstract != "" {
			for _, h := range w.held {
				if h.abstract != abstract {
					w.st.edges = append(w.st.edges, lockEdge{from: h.abstract, to: abstract, pos: call.Lparen})
				}
			}
			if _, ok := w.summary.acquires[abstract]; !ok {
				w.summary.acquires[abstract] = call.Lparen
			}
		}
		w.held = append(w.held, heldLock{abstract: abstract, concrete: concrete, excl: excl})
	case "Unlock", "RUnlock":
		for i := len(w.held) - 1; i >= 0; i-- {
			h := w.held[i]
			if (concrete != "" && h.concrete == concrete) || (concrete == "" && h.abstract == abstract) {
				w.held = append(w.held[:i], w.held[i+1:]...)
				break
			}
		}
	}
}

// abstractMutex names the graph node for a mutex expression: the owning
// type and field for field selections, "pkg.name" for package-level
// variables, "" for anything untrackable (locals, map entries).
func (w *lockWalker) abstractMutex(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if s, ok := w.pkg.Info.Selections[x]; ok && s.Kind() == types.FieldVal {
			t := s.Recv()
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + x.Sel.Name
			}
			return ""
		}
		// Package-qualified variable (otherpkg.Mu).
		if v, ok := w.pkg.Info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.Ident:
		if v, ok := w.pkg.Info.Uses[x].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	return ""
}

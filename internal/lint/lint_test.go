package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Each fixture under testdata/ is a self-contained mini-module annotated
// with `// want `regex`` comments in the analysistest style: a diagnostic
// is expected on every annotated line, matching the regex, and any
// unmatched diagnostic or leftover expectation fails the test.

func TestSimclockGolden(t *testing.T) {
	testFixture(t, "simclock", []*Analyzer{Simclock}, &Config{
		SimclockAllowFuncs: map[string]bool{
			"fixture.RealEnv.Now":   true,
			"fixture.RealEnv.Sleep": true,
		},
		SimclockAllowPackages: map[string]bool{"fixture/allowed": true},
	})
}

func TestWrapcheckGolden(t *testing.T) {
	testFixture(t, "wrapcheck", []*Analyzer{Wrapcheck}, &Config{
		WrapcheckBoundaryPackages: map[string]bool{"fixture/boundary": true},
		FaultsPackage:             "fixture/faults",
	})
}

func TestCtxFirstGolden(t *testing.T) {
	testFixture(t, "ctxfirst", []*Analyzer{CtxFirst}, &Config{
		CtxFirstAllowFields: map[string]bool{"fixture.Carrier": true},
	})
}

func TestTestSleepGolden(t *testing.T) {
	testFixture(t, "testsleep", []*Analyzer{TestSleep}, &Config{})
}

func TestStdlogGolden(t *testing.T) {
	testFixture(t, "stdlog", []*Analyzer{Stdlog}, &Config{
		StdlogScope: []string{"fixture/lib"},
	})
}

func TestLockguardGolden(t *testing.T) {
	testFixture(t, "lockguard", []*Analyzer{Lockguard}, &Config{})
}

func TestLockorderGolden(t *testing.T) {
	testFixture(t, "lockorder", []*Analyzer{Lockorder}, &Config{})
}

func TestNocopyGolden(t *testing.T) {
	testFixture(t, "nocopy", []*Analyzer{Nocopy}, &Config{})
}

func TestHotallocGolden(t *testing.T) {
	testFixture(t, "hotalloc", []*Analyzer{Hotalloc}, &Config{})
}

// TestRepoIsClean is the gate's self-check: the production configuration
// over the whole repository must come back empty, i.e. `go run
// ./cmd/repolint ./...` exits 0.
func TestRepoIsClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Join(wd, "..", "..")
	diags, err := LoadAndRun(root, nil, All, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func TestByName(t *testing.T) {
	for _, a := range All {
		got, ok := ByName(a.Name)
		if !ok || got != a {
			t.Fatalf("ByName(%q) = %v, %v", a.Name, got, ok)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName(nope) should miss")
	}
}

func TestDiagnosticFormat(t *testing.T) {
	d := Diagnostic{Analyzer: "simclock", Message: "m"}
	d.Pos.Filename, d.Pos.Line, d.Pos.Column = "a.go", 3, 7
	if got, want := d.String(), "a.go:3:7: [simclock] m"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestFormatVerbs(t *testing.T) {
	cases := []struct {
		format string
		want   string
	}{
		{"no verbs", ""},
		{"%d and %s", "ds"},
		{"100%% of %w", "w"},
		{"%+v %#x %-8s %.2f %q", "vxsfq"},
		{"trailing %", ""},
	}
	for _, c := range cases {
		if got := string(formatVerbs(c.format)); got != c.want {
			t.Errorf("formatVerbs(%q) = %q, want %q", c.format, got, c.want)
		}
	}
}

// testFixture loads the named testdata module, runs the analyzers, and
// compares the diagnostics against the fixture's want annotations.
func testFixture(t *testing.T, name string, analyzers []*Analyzer, cfg *Config) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := LoadAndRun(dir, nil, analyzers, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wants := parseWants(t, dir)
	for _, d := range diags {
		rel, err := filepath.Rel(dir, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		key := fmt.Sprintf("%s:%d", filepath.ToSlash(rel), d.Pos.Line)
		if !consumeWant(wants, key, d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("missing diagnostic at %s matching %q", key, re)
		}
	}
}

// wantComment extracts the expectation regexes from one source line.
var wantComment = regexp.MustCompile("// want ((?:`[^`]*`\\s*)+)")

// wantChunk splits the payload into individual backtick-quoted regexes.
var wantChunk = regexp.MustCompile("`([^`]*)`")

// parseWants scans every .go file under dir for want annotations, keyed
// by "relpath:line".
func parseWants(t *testing.T, dir string) map[string][]*regexp.Regexp {
	t.Helper()
	wants := map[string][]*regexp.Regexp{}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(raw), "\n") {
			m := wantComment.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", filepath.ToSlash(rel), i+1)
			for _, chunk := range wantChunk.FindAllStringSubmatch(m[1], -1) {
				re, rerr := regexp.Compile(chunk[1])
				if rerr != nil {
					return fmt.Errorf("%s:%d: bad want regex: %w", rel, i+1, rerr)
				}
				wants[key] = append(wants[key], re)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// consumeWant matches msg against the expectations at key, removing the
// first match.
func consumeWant(wants map[string][]*regexp.Regexp, key, msg string) bool {
	for i, re := range wants[key] {
		if re.MatchString(msg) {
			wants[key] = append(wants[key][:i], wants[key][i+1:]...)
			if len(wants[key]) == 0 {
				delete(wants, key)
			}
			return true
		}
	}
	return false
}

// The campaign scheduler must stay env-clock only: inside simclock's
// scope with no allowlisted escape hatches. A time.Now added to
// internal/sched fails repolint; an allowlist entry added for it fails
// here.
func TestSchedHasNoWallClockExceptions(t *testing.T) {
	c := DefaultConfig()
	if !c.simclockInScope("repro/internal/sched") {
		t.Fatal("repro/internal/sched must be in simclock scope")
	}
	if c.SimclockAllowPackages["repro/internal/sched"] {
		t.Fatal("repro/internal/sched must not be package-allowlisted from simclock")
	}
	for fn := range c.SimclockAllowFuncs {
		if strings.HasPrefix(fn, "repro/internal/sched.") {
			t.Fatalf("simclock allowlist contains sched entry %q; the scheduler is env-clock only", fn)
		}
	}
}

package zarr

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/phantom"
	"repro/internal/vol"
)

func TestWriteOpenRoundTrip(t *testing.T) {
	v := phantom.SheppLogan3D(48, 20)
	root := filepath.Join(t.TempDir(), "vol.zarr")
	meta, err := Write(root, v, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Levels < 2 {
		t.Fatalf("levels = %d, want a pyramid", meta.Levels)
	}
	st, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.ReadLevel(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 48 || got.H != 48 || got.D != 20 {
		t.Fatalf("dims %dx%dx%d", got.W, got.H, got.D)
	}
	var worst float64
	for i := range v.Data {
		if e := math.Abs(got.Data[i] - v.Data[i]); e > worst {
			worst = e
		}
	}
	if worst > 1e-6 { // float32 narrowing only
		t.Fatalf("roundtrip error %v", worst)
	}
}

func TestPyramidLevelsDownsample(t *testing.T) {
	v := vol.NewVolume(32, 32, 32)
	for i := range v.Data {
		v.Data[i] = 3
	}
	root := filepath.Join(t.TempDir(), "p.zarr")
	meta, err := Write(root, v, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 32 → 16 → 8: 3 levels.
	if meta.Levels != 3 {
		t.Fatalf("levels = %d, want 3", meta.Levels)
	}
	st, _ := Open(root)
	for lvl := 0; lvl < meta.Levels; lvl++ {
		w, h, d, err := st.LevelDims(lvl)
		if err != nil {
			t.Fatal(err)
		}
		want := 32 >> lvl
		if w != want || h != want || d != want {
			t.Fatalf("level %d dims %d,%d,%d want %d", lvl, w, h, d, want)
		}
		lv, err := st.ReadLevel(lvl)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range lv.Data {
			if x != 3 {
				t.Fatalf("constant volume level %d value %v", lvl, x)
			}
		}
	}
}

func TestMaxLevelsCap(t *testing.T) {
	v := vol.NewVolume(64, 64, 64)
	root := filepath.Join(t.TempDir(), "c.zarr")
	meta, err := Write(root, v, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Levels != 2 {
		t.Fatalf("levels = %d, want cap 2", meta.Levels)
	}
}

func TestSliceMatchesLevel(t *testing.T) {
	v := phantom.SheppLogan3D(32, 12)
	root := filepath.Join(t.TempDir(), "s.zarr")
	if _, err := Write(root, v, 8, 0); err != nil {
		t.Fatal(err)
	}
	st, _ := Open(root)
	full, _ := st.ReadLevel(0)
	for _, z := range []int{0, 5, 11} {
		sl, err := st.Slice(0, z)
		if err != nil {
			t.Fatal(err)
		}
		want := full.Slice(z)
		for i := range sl.Pix {
			if sl.Pix[i] != want.Pix[i] {
				t.Fatalf("slice %d mismatch at %d", z, i)
			}
		}
	}
	if _, err := st.Slice(0, 12); err == nil {
		t.Fatal("out-of-range slice should error")
	}
	if _, err := st.Slice(99, 0); err == nil {
		t.Fatal("out-of-range level should error")
	}
}

func TestCorruptChunkDetected(t *testing.T) {
	v := vol.NewVolume(8, 8, 8)
	for i := range v.Data {
		v.Data[i] = float64(i)
	}
	root := filepath.Join(t.TempDir(), "x.zarr")
	if _, err := Write(root, v, 8, 0); err != nil {
		t.Fatal(err)
	}
	chunkPath := filepath.Join(root, "L0", "0.0.0.bin")
	raw, err := os.ReadFile(chunkPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[10] ^= 0xFF
	os.WriteFile(chunkPath, raw, 0o644)
	st, _ := Open(root)
	if _, err := st.ReadChunk(0, 0, 0, 0); err == nil {
		t.Fatal("corrupt chunk should fail checksum")
	}
}

func TestOpenRejectsBadMeta(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir); err == nil {
		t.Fatal("missing metadata should fail")
	}
	os.WriteFile(filepath.Join(dir, "zattrs.json"), []byte("{"), 0o644)
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupt metadata should fail")
	}
	os.WriteFile(filepath.Join(dir, "zattrs.json"), []byte(`{"chunk":0,"levels":1,"level_dims":[[1,1,1]]}`), 0o644)
	if _, err := Open(dir); err == nil {
		t.Fatal("inconsistent metadata should fail")
	}
}

func TestMissingChunk(t *testing.T) {
	v := vol.NewVolume(8, 8, 8)
	root := filepath.Join(t.TempDir(), "m.zarr")
	Write(root, v, 8, 0)
	st, _ := Open(root)
	if _, err := st.ReadChunk(0, 5, 5, 5); err == nil {
		t.Fatal("missing chunk should error")
	}
}

func TestSizeBytes(t *testing.T) {
	v := vol.NewVolume(16, 16, 16)
	root := filepath.Join(t.TempDir(), "z.zarr")
	Write(root, v, 8, 0)
	size, err := SizeBytes(root)
	if err != nil {
		t.Fatal(err)
	}
	// 8 chunks of 8³ float32 + 1 chunk level-1 + metadata ≥ 16 KiB.
	if size < 16<<10 {
		t.Fatalf("size = %d", size)
	}
}

func BenchmarkWritePyramid(b *testing.B) {
	v := phantom.SheppLogan3D(64, 32)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := filepath.Join(dir, "bench.zarr")
		if _, err := Write(root, v, 32, 0); err != nil {
			b.Fatal(err)
		}
	}
}

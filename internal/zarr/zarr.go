// Package zarr implements the multiscale chunked volume store the file
// branch writes for web visualization (the paper's "multi-scale
// reconstructed volume (Zarr format)"). A volume is stored as a directory:
//
//	<root>/zattrs.json              — dims, chunk size, level count
//	<root>/L<k>/<cz>.<cy>.<cx>.bin  — float32 chunk payloads, CRC-tagged
//
// Level 0 is full resolution; each higher level is 2× box-downsampled per
// axis, which is exactly the pyramid itk-vtk-viewer streams progressively.
package zarr

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"repro/internal/vol"
)

// DefaultChunk is the chunk edge length in voxels.
const DefaultChunk = 32

// Meta is the store-level metadata document.
type Meta struct {
	W         int      `json:"w"`
	H         int      `json:"h"`
	D         int      `json:"d"`
	Chunk     int      `json:"chunk"`
	Levels    int      `json:"levels"`
	LevelDims [][3]int `json:"level_dims"` // per level: w,h,d
}

// Write stores the volume as a multiscale pyramid under root, downsampling
// until every axis fits in one chunk (or maxLevels is reached; 0 means no
// cap). It returns the metadata written.
func Write(root string, v *vol.Volume, chunk, maxLevels int) (*Meta, error) {
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	meta := &Meta{W: v.W, H: v.H, D: v.D, Chunk: chunk}
	cur := v
	for level := 0; ; level++ {
		if err := writeLevel(filepath.Join(root, fmt.Sprintf("L%d", level)), cur, chunk); err != nil {
			return nil, err
		}
		meta.Levels++
		meta.LevelDims = append(meta.LevelDims, [3]int{cur.W, cur.H, cur.D})
		if maxLevels > 0 && meta.Levels >= maxLevels {
			break
		}
		if cur.W <= chunk && cur.H <= chunk && cur.D <= chunk {
			break
		}
		cur = cur.Downsample2()
	}
	raw, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(root, "zattrs.json"), raw, 0o644); err != nil {
		return nil, err
	}
	return meta, nil
}

func writeLevel(dir string, v *vol.Volume, chunk int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	nx := ceilDiv(v.W, chunk)
	ny := ceilDiv(v.H, chunk)
	nz := ceilDiv(v.D, chunk)
	for cz := 0; cz < nz; cz++ {
		for cy := 0; cy < ny; cy++ {
			for cx := 0; cx < nx; cx++ {
				if err := writeChunk(dir, v, chunk, cx, cy, cz); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// writeChunk encodes one chunk: full chunk³ float32 payload (edge chunks
// zero-padded) followed by a CRC-32.
func writeChunk(dir string, v *vol.Volume, chunk, cx, cy, cz int) error {
	payload := make([]byte, 4*chunk*chunk*chunk)
	i := 0
	for z := cz * chunk; z < (cz+1)*chunk; z++ {
		for y := cy * chunk; y < (cy+1)*chunk; y++ {
			for x := cx * chunk; x < (cx+1)*chunk; x++ {
				var val float32
				if x < v.W && y < v.H && z < v.D {
					val = float32(v.At(x, y, z))
				}
				binary.LittleEndian.PutUint32(payload[i:], math.Float32bits(val))
				i += 4
			}
		}
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	path := filepath.Join(dir, fmt.Sprintf("%d.%d.%d.bin", cz, cy, cx))
	return os.WriteFile(path, append(payload, crc[:]...), 0o644)
}

// Store is a read handle on a written pyramid.
type Store struct {
	Root string
	Meta Meta
}

// Open reads the metadata of a pyramid at root.
func Open(root string) (*Store, error) {
	raw, err := os.ReadFile(filepath.Join(root, "zattrs.json"))
	if err != nil {
		return nil, err
	}
	var m Meta
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("zarr: corrupt metadata: %w", err)
	}
	if m.Chunk <= 0 || m.Levels <= 0 || len(m.LevelDims) != m.Levels {
		return nil, fmt.Errorf("zarr: inconsistent metadata %+v", m)
	}
	return &Store{Root: root, Meta: m}, nil
}

// LevelDims returns the dimensions of a pyramid level.
func (s *Store) LevelDims(level int) (w, h, d int, err error) {
	if level < 0 || level >= s.Meta.Levels {
		return 0, 0, 0, fmt.Errorf("zarr: level %d out of range [0,%d)", level, s.Meta.Levels)
	}
	dims := s.Meta.LevelDims[level]
	return dims[0], dims[1], dims[2], nil
}

// ReadChunk loads one chunk of a level, verifying its checksum, and
// returns a chunk³ float64 array.
func (s *Store) ReadChunk(level, cx, cy, cz int) ([]float64, error) {
	if level < 0 || level >= s.Meta.Levels {
		return nil, fmt.Errorf("zarr: level %d out of range", level)
	}
	path := filepath.Join(s.Root, fmt.Sprintf("L%d", level), fmt.Sprintf("%d.%d.%d.bin", cz, cy, cx))
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < 4 {
		return nil, fmt.Errorf("zarr: chunk %s too short", path)
	}
	payload := raw[:len(raw)-4]
	want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("zarr: chunk %s checksum mismatch", path)
	}
	n := s.Meta.Chunk
	if len(payload) != 4*n*n*n {
		return nil, fmt.Errorf("zarr: chunk %s has %d bytes, want %d", path, len(payload), 4*n*n*n)
	}
	out := make([]float64, n*n*n)
	for i := range out {
		out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(payload[i*4:])))
	}
	return out, nil
}

// ReadLevel reassembles a full level into a volume.
func (s *Store) ReadLevel(level int) (*vol.Volume, error) {
	w, h, d, err := s.LevelDims(level)
	if err != nil {
		return nil, err
	}
	chunk := s.Meta.Chunk
	v := vol.NewVolume(w, h, d)
	for cz := 0; cz < ceilDiv(d, chunk); cz++ {
		for cy := 0; cy < ceilDiv(h, chunk); cy++ {
			for cx := 0; cx < ceilDiv(w, chunk); cx++ {
				data, err := s.ReadChunk(level, cx, cy, cz)
				if err != nil {
					return nil, err
				}
				i := 0
				for z := cz * chunk; z < (cz+1)*chunk; z++ {
					for y := cy * chunk; y < (cy+1)*chunk; y++ {
						for x := cx * chunk; x < (cx+1)*chunk; x++ {
							if x < w && y < h && z < d {
								v.Set(x, y, z, data[i])
							}
							i++
						}
					}
				}
			}
		}
	}
	return v, nil
}

// Slice reads one XY slice of a level without loading the whole level.
func (s *Store) Slice(level, z int) (*vol.Image, error) {
	w, h, d, err := s.LevelDims(level)
	if err != nil {
		return nil, err
	}
	if z < 0 || z >= d {
		return nil, fmt.Errorf("zarr: slice %d out of range [0,%d)", z, d)
	}
	chunk := s.Meta.Chunk
	im := vol.NewImage(w, h)
	cz := z / chunk
	lz := z % chunk
	for cy := 0; cy < ceilDiv(h, chunk); cy++ {
		for cx := 0; cx < ceilDiv(w, chunk); cx++ {
			data, err := s.ReadChunk(level, cx, cy, cz)
			if err != nil {
				return nil, err
			}
			for ly := 0; ly < chunk; ly++ {
				y := cy*chunk + ly
				if y >= h {
					break
				}
				for lx := 0; lx < chunk; lx++ {
					x := cx*chunk + lx
					if x >= w {
						break
					}
					im.Set(x, y, data[(lz*chunk+ly)*chunk+lx])
				}
			}
		}
	}
	return im, nil
}

// SizeBytes returns the total on-disk footprint of the pyramid.
func SizeBytes(root string) (int64, error) {
	var total int64
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	return total, err
}

// Package msgq implements the messaging patterns the paper wires its
// streaming results and control plane with (ZeroMQ's role): PUSH/PULL
// pipelines, PUB/SUB fan-out with a high-water mark that drops rather than
// blocks, and REQ/REP round trips — all over plain TCP with 4-byte
// length-prefixed frames.
package msgq

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/obslog"
)

// MaxFrameBytes bounds a single frame (1 GiB) to catch corrupt lengths.
const MaxFrameBytes = 1 << 30

// ErrClosed is returned by operations on a closed socket.
var ErrClosed = errors.New("msgq: socket closed")

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("msgq: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("msgq: frame length %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// Push is the sending end of a pipeline. It connects to a Pull listener
// and retries the connection with backoff when sends fail.
type Push struct {
	addr string

	mu     sync.Mutex
	conn   net.Conn // guarded by mu
	closed bool     // guarded by mu
}

// NewPush creates a push socket targeting addr (dialing is lazy).
func NewPush(addr string) *Push {
	return &Push{addr: addr}
}

// Send delivers one frame, dialing or re-dialing as needed. It tries up to
// three connection attempts with linear backoff before giving up, and a
// cancelled ctx aborts the wait immediately with a faults.Cancelled error
// instead of sleeping out the backoff.
func (p *Push) Send(ctx context.Context, payload []byte) error {
	if ctx == nil {
		ctx = context.Background()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if err := ctx.Err(); err != nil {
			return faults.Wrap(faults.Cancelled, fmt.Errorf("msgq: push to %s cancelled: %w", p.addr, err))
		}
		if p.conn == nil {
			c, err := net.DialTimeout("tcp", p.addr, 2*time.Second)
			if err != nil {
				lastErr = err
				backoff := time.Duration(attempt+1) * 50 * time.Millisecond
				obslog.Warn(ctx, "msgq", "push reconnect backoff",
					obslog.F("addr", p.addr), obslog.F("attempt", attempt+1),
					obslog.F("backoff", backoff), obslog.F("err", err))
				t := time.NewTimer(backoff)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return faults.Wrap(faults.Cancelled, fmt.Errorf("msgq: push to %s cancelled during backoff: %w", p.addr, ctx.Err()))
				}
				continue
			}
			p.conn = c
		}
		if err := writeFrame(p.conn, payload); err != nil {
			p.conn.Close()
			p.conn = nil
			lastErr = err
			obslog.Warn(ctx, "msgq", "push send failed, reconnecting",
				obslog.F("addr", p.addr), obslog.F("attempt", attempt+1),
				obslog.F("err", err))
			continue
		}
		return nil
	}
	return fmt.Errorf("msgq: push to %s failed: %w", p.addr, lastErr)
}

// Close closes the socket.
func (p *Push) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	if p.conn != nil {
		return p.conn.Close()
	}
	return nil
}

// Pull is the receiving end of a pipeline: it accepts any number of
// pushers and fans their frames into a single Recv stream.
type Pull struct {
	ln     net.Listener
	msgs   chan []byte
	closed chan struct{}
	once   sync.Once

	mu    sync.Mutex
	conns map[net.Conn]bool // guarded by mu
}

// NewPull listens on addr ("127.0.0.1:0" picks a free port).
func NewPull(addr string) (*Pull, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Pull{ln: ln, msgs: make(chan []byte, 256), closed: make(chan struct{}),
		conns: map[net.Conn]bool{}}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the bound address.
func (p *Pull) Addr() string { return p.ln.Addr().String() }

func (p *Pull) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		p.conns[conn] = true
		p.mu.Unlock()
		go func() {
			defer func() {
				conn.Close()
				p.mu.Lock()
				delete(p.conns, conn)
				p.mu.Unlock()
			}()
			for {
				frame, err := readFrame(conn)
				if err != nil {
					return
				}
				select {
				case p.msgs <- frame:
				case <-p.closed:
					return
				}
			}
		}()
	}
}

// Recv returns the next frame, blocking up to timeout (0 means block
// forever).
func (p *Pull) Recv(timeout time.Duration) ([]byte, error) {
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case m := <-p.msgs:
		return m, nil
	case <-p.closed:
		return nil, ErrClosed
	case <-timer:
		return nil, fmt.Errorf("msgq: recv timeout after %v", timeout)
	}
}

// Close shuts the listener, severs every accepted connection (so pushers
// observe the failure and reconnect), and unblocks Recv.
func (p *Pull) Close() error {
	p.once.Do(func() { close(p.closed) })
	p.mu.Lock()
	for conn := range p.conns {
		conn.Close()
	}
	p.mu.Unlock()
	return p.ln.Close()
}

// Pub is a fan-out publisher with per-subscriber high-water marks:
// a slow subscriber loses frames instead of stalling the beamline.
type Pub struct {
	ln  net.Listener
	hwm int

	mu      sync.Mutex
	subs    map[int]*subscriber // guarded by mu
	nextID  int                 // guarded by mu
	dropped int                 // guarded by mu
	closed  bool                // guarded by mu
}

type subscriber struct {
	ch chan []byte
}

// NewPub listens on addr with the given per-subscriber buffer (high-water
// mark; minimum 1).
func NewPub(addr string, hwm int) (*Pub, error) {
	if hwm < 1 {
		hwm = 1
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Pub{ln: ln, hwm: hwm, subs: map[int]*subscriber{}}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the bound address.
func (p *Pub) Addr() string { return p.ln.Addr().String() }

func (p *Pub) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		sub := &subscriber{ch: make(chan []byte, p.hwm)}
		p.mu.Lock()
		p.nextID++
		id := p.nextID
		p.subs[id] = sub
		p.mu.Unlock()
		go func() {
			defer func() {
				conn.Close()
				p.mu.Lock()
				delete(p.subs, id)
				p.mu.Unlock()
			}()
			for frame := range sub.ch {
				if err := writeFrame(conn, frame); err != nil {
					return
				}
			}
		}()
	}
}

// Publish sends a topic-tagged frame to every subscriber, dropping for
// those at their high-water mark.
func (p *Pub) Publish(topic string, payload []byte) error {
	frame := make([]byte, 0, len(topic)+1+len(payload))
	frame = append(frame, topic...)
	frame = append(frame, 0)
	frame = append(frame, payload...)

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	for _, sub := range p.subs {
		select {
		case sub.ch <- frame:
		default:
			p.dropped++ // HWM reached: drop, never block
		}
	}
	return nil
}

// Subscribers returns the current subscriber count.
func (p *Pub) Subscribers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.subs)
}

// Dropped returns the number of frames dropped at high-water marks.
func (p *Pub) Dropped() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// Close shuts down the publisher and all subscriber channels.
func (p *Pub) Close() error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		for id, sub := range p.subs {
			close(sub.ch)
			delete(p.subs, id)
		}
	}
	p.mu.Unlock()
	return p.ln.Close()
}

// Sub is a subscriber filtering on a topic prefix.
type Sub struct {
	conn   net.Conn
	prefix string
}

// NewSub connects to a Pub and filters to topics with the given prefix
// (empty subscribes to everything).
func NewSub(addr, topicPrefix string) (*Sub, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	return &Sub{conn: conn, prefix: topicPrefix}, nil
}

// Recv returns the next (topic, payload) matching the subscription,
// blocking up to timeout (0 = forever).
func (s *Sub) Recv(timeout time.Duration) (string, []byte, error) {
	for {
		if timeout > 0 {
			s.conn.SetReadDeadline(time.Now().Add(timeout))
		} else {
			s.conn.SetReadDeadline(time.Time{})
		}
		frame, err := readFrame(s.conn)
		if err != nil {
			return "", nil, err
		}
		sep := -1
		for i, b := range frame {
			if b == 0 {
				sep = i
				break
			}
		}
		if sep < 0 {
			continue // malformed frame; skip
		}
		topic := string(frame[:sep])
		if len(topic) >= len(s.prefix) && topic[:len(s.prefix)] == s.prefix {
			return topic, frame[sep+1:], nil
		}
	}
}

// Close closes the subscription.
func (s *Sub) Close() error { return s.conn.Close() }

// Rep serves request/reply: handler is invoked per request frame and its
// return value is sent back on the same connection.
type Rep struct {
	ln net.Listener
}

// NewRep listens on addr and serves requests with handler, each
// connection on its own goroutine.
func NewRep(addr string, handler func([]byte) []byte) (*Rep, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	r := &Rep{ln: ln}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					req, err := readFrame(conn)
					if err != nil {
						return
					}
					if err := writeFrame(conn, handler(req)); err != nil {
						return
					}
				}
			}()
		}
	}()
	return r, nil
}

// Addr returns the bound address.
func (r *Rep) Addr() string { return r.ln.Addr().String() }

// Close stops the listener.
func (r *Rep) Close() error { return r.ln.Close() }

// Req is the client side of request/reply.
type Req struct {
	mu   sync.Mutex
	conn net.Conn // guarded by mu
}

// NewReq connects to a Rep server.
func NewReq(addr string) (*Req, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	return &Req{conn: conn}, nil
}

// Do performs one round trip with the given timeout (0 = no deadline).
func (r *Req) Do(request []byte, timeout time.Duration) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if timeout > 0 {
		r.conn.SetDeadline(time.Now().Add(timeout))
	} else {
		r.conn.SetDeadline(time.Time{})
	}
	if err := writeFrame(r.conn, request); err != nil {
		return nil, err
	}
	return readFrame(r.conn)
}

// Close closes the connection. The close itself happens outside the
// mutex so an in-flight Do blocked on a read is interrupted rather than
// waited out.
func (r *Req) Close() error {
	r.mu.Lock()
	conn := r.conn
	r.mu.Unlock()
	return conn.Close()
}

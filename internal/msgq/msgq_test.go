package msgq

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
)

// waitFor polls cond until it returns true or the ctx-backed deadline
// expires. Tests synchronize on observable state through this instead of
// bare time.Sleep so -race runs are deterministic.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for !cond() {
		select {
		case <-ctx.Done():
			t.Fatalf("timed out waiting for %s", what)
		case <-tick.C:
		}
	}
}

func TestPushPullRoundTrip(t *testing.T) {
	pull, err := NewPull("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pull.Close()
	push := NewPush(pull.Addr())
	defer push.Close()

	want := []byte("three-slice preview payload")
	if err := push.Send(context.Background(), want); err != nil {
		t.Fatal(err)
	}
	got, err := pull.Recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q", got)
	}
}

func TestPushPullManyMessagesOrdered(t *testing.T) {
	pull, _ := NewPull("127.0.0.1:0")
	defer pull.Close()
	push := NewPush(pull.Addr())
	defer push.Close()
	const n = 200
	for i := 0; i < n; i++ {
		if err := push.Send(context.Background(), []byte(fmt.Sprintf("m%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		got, err := pull.Recv(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("m%03d", i); string(got) != want {
			t.Fatalf("out of order: got %s want %s", got, want)
		}
	}
}

func TestPullFanIn(t *testing.T) {
	pull, _ := NewPull("127.0.0.1:0")
	defer pull.Close()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			push := NewPush(pull.Addr())
			defer push.Close()
			for j := 0; j < 10; j++ {
				if err := push.Send(context.Background(), []byte{byte(i)}); err != nil {
					t.Error(err)
				}
			}
		}(i)
	}
	wg.Wait()
	counts := map[byte]int{}
	for i := 0; i < 30; i++ {
		m, err := pull.Recv(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		counts[m[0]]++
	}
	for i := byte(0); i < 3; i++ {
		if counts[i] != 10 {
			t.Fatalf("pusher %d delivered %d", i, counts[i])
		}
	}
}

func TestRecvTimeout(t *testing.T) {
	pull, _ := NewPull("127.0.0.1:0")
	defer pull.Close()
	if _, err := pull.Recv(50 * time.Millisecond); err == nil {
		t.Fatal("expected timeout")
	}
}

func TestRecvAfterClose(t *testing.T) {
	pull, _ := NewPull("127.0.0.1:0")
	pull.Close()
	if _, err := pull.Recv(time.Second); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestPushToNowhereFails(t *testing.T) {
	push := NewPush("127.0.0.1:1") // nothing listens on port 1
	defer push.Close()
	if err := push.Send(context.Background(), []byte("x")); err == nil {
		t.Fatal("send to dead address should fail")
	}
}

func TestSendCancelledDuringBackoff(t *testing.T) {
	push := NewPush("127.0.0.1:1") // nothing listens on port 1
	defer push.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := push.Send(ctx, []byte("x"))
	if err == nil {
		t.Fatal("cancelled send should fail")
	}
	if got := faults.Classify(err); got != faults.Cancelled {
		t.Fatalf("Classify(%v) = %v, want Cancelled", err, got)
	}
	// The backoff path: cancel mid-wait rather than before the first dial.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	err = push.Send(ctx2, []byte("x"))
	if err == nil {
		t.Fatal("send to dead address should fail")
	}
}

func TestSendAfterClose(t *testing.T) {
	pull, _ := NewPull("127.0.0.1:0")
	defer pull.Close()
	push := NewPush(pull.Addr())
	push.Close()
	if err := push.Send(context.Background(), []byte("x")); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestPushReconnects(t *testing.T) {
	pull, _ := NewPull("127.0.0.1:0")
	addr := pull.Addr()
	push := NewPush(addr)
	defer push.Close()
	if err := push.Send(context.Background(), []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := pull.Recv(time.Second); err != nil {
		t.Fatal(err)
	}
	// Kill the listener; sends should fail, then recover after a new
	// listener appears on the same port.
	pull.Close()
	// The OS may briefly hold the port after close; poll the rebind
	// instead of sleeping a fixed interval.
	var pull2 *Pull
	rebindCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for pull2 == nil {
		p2, err := NewPull(addr)
		if err == nil {
			pull2 = p2
			break
		}
		select {
		case <-rebindCtx.Done():
			t.Skipf("could not rebind %s: %v", addr, err)
		case <-time.After(2 * time.Millisecond):
		}
	}
	defer pull2.Close()
	// The first send may fail while the stale connection drains; retry.
	waitFor(t, 2*time.Second, "push to reconnect", func() bool {
		return push.Send(context.Background(), []byte("b")) == nil
	})
	if _, err := pull2.Recv(2 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestPubSubTopicFilter(t *testing.T) {
	pub, err := NewPub("127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	subAll, _ := NewSub(pub.Addr(), "")
	defer subAll.Close()
	subPrev, _ := NewSub(pub.Addr(), "preview")
	defer subPrev.Close()
	waitSubs(t, pub, 2)

	pub.Publish("status", []byte("s1"))
	pub.Publish("preview/xy", []byte("p1"))

	// subAll sees both.
	tp, _, err := subAll.Recv(2 * time.Second)
	if err != nil || tp != "status" {
		t.Fatalf("subAll first: %v %v", tp, err)
	}
	tp, body, err := subAll.Recv(2 * time.Second)
	if err != nil || tp != "preview/xy" || string(body) != "p1" {
		t.Fatalf("subAll second: %v %q %v", tp, body, err)
	}
	// subPrev sees only the preview.
	tp, body, err = subPrev.Recv(2 * time.Second)
	if err != nil || tp != "preview/xy" || string(body) != "p1" {
		t.Fatalf("subPrev: %v %q %v", tp, body, err)
	}
}

func waitSubs(t *testing.T, pub *Pub, n int) {
	t.Helper()
	waitFor(t, 2*time.Second, fmt.Sprintf("%d subscribers", n), func() bool {
		return pub.Subscribers() >= n
	})
}

func TestPubHWMDropsNotBlocks(t *testing.T) {
	pub, _ := NewPub("127.0.0.1:0", 1)
	defer pub.Close()
	sub, _ := NewSub(pub.Addr(), "")
	defer sub.Close()
	waitSubs(t, pub, 1)

	// Publish a burst without the subscriber reading: must not block.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			pub.Publish("t", []byte{byte(i)})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("publish blocked on slow subscriber")
	}
	if pub.Dropped() == 0 {
		t.Fatal("expected drops at HWM")
	}
}

func TestPublishAfterClose(t *testing.T) {
	pub, _ := NewPub("127.0.0.1:0", 1)
	pub.Close()
	if err := pub.Publish("t", nil); err != ErrClosed {
		t.Fatalf("err = %v", err)
	}
}

func TestReqRep(t *testing.T) {
	rep, err := NewRep("127.0.0.1:0", func(req []byte) []byte {
		return append([]byte("echo:"), req...)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	req, err := NewReq(rep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer req.Close()
	for i := 0; i < 5; i++ {
		resp, err := req.Do([]byte(fmt.Sprintf("r%d", i)), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if string(resp) != fmt.Sprintf("echo:r%d", i) {
			t.Fatalf("resp = %q", resp)
		}
	}
}

func TestReqTimeout(t *testing.T) {
	// The handler blocks on a channel released at test end rather than
	// sleeping for a fixed interval: the reply is held past the client
	// deadline without leaving a timer running after the test.
	release := make(chan struct{})
	rep, _ := NewRep("127.0.0.1:0", func(req []byte) []byte {
		<-release
		return req
	})
	defer rep.Close()
	defer close(release)
	req, _ := NewReq(rep.Addr())
	defer req.Close()
	if _, err := req.Do([]byte("x"), 30*time.Millisecond); err == nil {
		t.Fatal("expected deadline error")
	}
}

func TestLargeFrame(t *testing.T) {
	pull, _ := NewPull("127.0.0.1:0")
	defer pull.Close()
	push := NewPush(pull.Addr())
	defer push.Close()
	big := make([]byte, 4<<20) // a 4 MiB preview slice
	for i := range big {
		big[i] = byte(i)
	}
	if err := push.Send(context.Background(), big); err != nil {
		t.Fatal(err)
	}
	got, err := pull.Recv(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("large frame corrupted")
	}
}

package msgq

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain gates the package's tests on the goroutine-leak check: a
// passing run with listeners or monitor pumps still alive fails.
func TestMain(m *testing.M) { leakcheck.Main(m) }

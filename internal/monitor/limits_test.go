package monitor

import (
	"fmt"
	"testing"
)

func TestSetSeriesLimit(t *testing.T) {
	r := NewRegistry()
	r.SetSeriesLimit("sched_runs_total", 3)
	for i := 0; i < 5; i++ {
		r.AddL("sched_runs_total", 1, L("tenant", fmt.Sprintf("bl%d/file", i)))
	}
	// 3 real series plus the overflow bucket.
	if got := r.SeriesCount("sched_runs_total"); got != 4 {
		t.Fatalf("series = %d, want 4", got)
	}
	if got := r.Counter(`sched_runs_total{overflow="true"}`); got != 2 {
		t.Fatalf("overflow = %g, want 2", got)
	}

	// Raising the limit admits new label sets again.
	r.SetSeriesLimit("sched_runs_total", 10)
	r.AddL("sched_runs_total", 1, L("tenant", "bl9/file"))
	if got := r.Counter(`sched_runs_total{tenant="bl9/file"}`); got != 1 {
		t.Fatalf("post-raise series = %g, want 1", got)
	}

	// Non-positive restores the default bound.
	r.SetSeriesLimit("sched_runs_total", 0)
	for i := 0; i < MaxSeriesPerMetric+8; i++ {
		r.AddL("sched_runs_total", 1, L("tenant", fmt.Sprintf("extra%d", i)))
	}
	if got := r.SeriesCount("sched_runs_total"); got > MaxSeriesPerMetric+1 {
		t.Fatalf("series = %d, want ≤ %d", got, MaxSeriesPerMetric+1)
	}
}

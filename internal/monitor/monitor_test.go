package monitor

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)

func TestCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Add("transfers_total", 1)
	r.Add("transfers_total", 2)
	r.Set("queue_depth", 7)
	r.Set("queue_depth", 3)
	if r.Counter("transfers_total") != 3 {
		t.Fatalf("counter = %v", r.Counter("transfers_total"))
	}
	if r.Gauge("queue_depth") != 3 {
		t.Fatalf("gauge = %v", r.Gauge("queue_depth"))
	}
	snap := r.Snapshot()
	if len(snap) != 2 || snap["transfers_total"] != 3 {
		t.Fatalf("snapshot %v", snap)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Add("c", 1)
				r.Set("g", float64(j))
			}
		}()
	}
	wg.Wait()
	if r.Counter("c") != 1000 {
		t.Fatalf("counter = %v", r.Counter("c"))
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Add("b_total", 5)
	r.Set("a_gauge", 1.5)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	// Sorted output, both metrics present.
	if !strings.Contains(text, "a_gauge 1.5") || !strings.Contains(text, "b_total 5") {
		t.Fatalf("body = %q", text)
	}
	if strings.Index(text, "a_gauge") > strings.Index(text, "b_total") {
		t.Fatal("metrics not sorted")
	}
}

func TestBandwidthSeries(t *testing.T) {
	points := []Sample{
		{t0, 0},
		{t0.Add(10 * time.Second), 100e9},
		{t0.Add(20 * time.Second), 100e9}, // idle interval
		{t0.Add(30 * time.Second), 400e9},
	}
	bw := BandwidthSeries(points)
	if len(bw) != 3 {
		t.Fatalf("series length %d", len(bw))
	}
	if bw[0].Value != 10e9 {
		t.Errorf("first interval %v B/s, want 10e9", bw[0].Value)
	}
	if bw[1].Value != 0 {
		t.Errorf("idle interval %v", bw[1].Value)
	}
	if bw[2].Value != 30e9 {
		t.Errorf("third interval %v", bw[2].Value)
	}
	if BandwidthSeries(points[:1]) != nil {
		t.Error("single point should give no series")
	}
	// Zero-dt points are skipped.
	deg := []Sample{{t0, 0}, {t0, 5}}
	if len(BandwidthSeries(deg)) != 0 {
		t.Error("zero-dt interval should be skipped")
	}
}

func TestHealthChecker(t *testing.T) {
	h := NewHealthChecker()
	if h.Healthy() {
		t.Fatal("unchecked system should not report healthy")
	}
	broken := true
	h.Register("storage", func() error { return nil })
	h.Register("transfer", func() error {
		if broken {
			return errors.New("endpoint unreachable")
		}
		return nil
	})
	res := h.RunAll(t0)
	if len(res) != 2 || res[0].OK != true || res[1].OK != false {
		t.Fatalf("results %v", res)
	}
	if h.Healthy() {
		t.Fatal("failing check should make system unhealthy")
	}
	broken = false
	h.RunAll(t0.Add(12 * time.Hour))
	if !h.Healthy() {
		t.Fatal("all-pass round should be healthy")
	}
	last, at := h.LastResults()
	if len(last) != 2 || !at.Equal(t0.Add(12*time.Hour)) {
		t.Fatalf("last results %v at %v", last, at)
	}
}

func TestHealthHandlerStatusCodes(t *testing.T) {
	h := NewHealthChecker()
	h.Register("always-fail", func() error { return errors.New("down") })
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()

	h.RunAll(t0)
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy status %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "FAIL down") {
		t.Fatalf("body %q", body)
	}

	h2 := NewHealthChecker()
	h2.Register("ok", func() error { return nil })
	h2.RunAll(t0)
	srv2 := httptest.NewServer(h2.Handler())
	defer srv2.Close()
	r2, err := http.Get(srv2.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("healthy status %d", r2.StatusCode)
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	r := NewRegistry()
	name := `flow_stage_seconds{flow="nersc_recon_flow",stage="globus_to_cfs"}`
	for _, v := range []float64{0.0005, 0.5, 5, 50, 5000} {
		r.Observe(name, v)
	}
	h, ok := r.Histogram(name)
	if !ok {
		t.Fatal("histogram missing")
	}
	if h.Count != 5 || h.Sum != 5055.5005 {
		t.Fatalf("count=%d sum=%v", h.Count, h.Sum)
	}
	// Cumulative bucket counts against DefaultBuckets
	// {0.001,0.01,0.1,1,10,60,300,1200,3600}.
	want := []uint64{1, 1, 1, 2, 3, 4, 4, 4, 4, 5}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("counts[%d] = %d, want %d (all %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if _, ok := r.Histogram("absent"); ok {
		t.Fatal("absent histogram reported present")
	}
	names := r.HistogramNames()
	if len(names) != 1 || names[0] != name {
		t.Fatalf("names = %v", names)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	r.Add("plain_total", 2)
	r.Observe(`stage_seconds{stage="copy"}`, 0.5)
	r.Observe(`stage_seconds{stage="copy"}`, 30)
	r.Observe("unlabeled_seconds", 1)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"plain_total 2\n",
		`stage_seconds_bucket{stage="copy",le="1"} 1` + "\n",
		`stage_seconds_bucket{stage="copy",le="60"} 2` + "\n",
		`stage_seconds_bucket{stage="copy",le="+Inf"} 2` + "\n",
		`stage_seconds_sum{stage="copy"} 30.5` + "\n",
		`stage_seconds_count{stage="copy"} 2` + "\n",
		`unlabeled_seconds_bucket{le="+Inf"} 1` + "\n",
		"unlabeled_seconds_sum 1\n",
		"unlabeled_seconds_count 1\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, text)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Observe("h", float64(j))
			}
		}()
	}
	wg.Wait()
	h, _ := r.Histogram("h")
	if h.Count != 1600 {
		t.Fatalf("count = %d", h.Count)
	}
}

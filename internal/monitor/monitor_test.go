package monitor

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)

func TestCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Add("transfers_total", 1)
	r.Add("transfers_total", 2)
	r.Set("queue_depth", 7)
	r.Set("queue_depth", 3)
	if r.Counter("transfers_total") != 3 {
		t.Fatalf("counter = %v", r.Counter("transfers_total"))
	}
	if r.Gauge("queue_depth") != 3 {
		t.Fatalf("gauge = %v", r.Gauge("queue_depth"))
	}
	snap := r.Snapshot()
	if len(snap) != 2 || snap["transfers_total"] != 3 {
		t.Fatalf("snapshot %v", snap)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Add("c", 1)
				r.Set("g", float64(j))
			}
		}()
	}
	wg.Wait()
	if r.Counter("c") != 1000 {
		t.Fatalf("counter = %v", r.Counter("c"))
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Add("b_total", 5)
	r.Set("a_gauge", 1.5)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	// Sorted output, both metrics present.
	if !strings.Contains(text, "a_gauge 1.5") || !strings.Contains(text, "b_total 5") {
		t.Fatalf("body = %q", text)
	}
	if strings.Index(text, "a_gauge") > strings.Index(text, "b_total") {
		t.Fatal("metrics not sorted")
	}
}

func TestBandwidthSeries(t *testing.T) {
	points := []Sample{
		{t0, 0},
		{t0.Add(10 * time.Second), 100e9},
		{t0.Add(20 * time.Second), 100e9}, // idle interval
		{t0.Add(30 * time.Second), 400e9},
	}
	bw := BandwidthSeries(points)
	if len(bw) != 3 {
		t.Fatalf("series length %d", len(bw))
	}
	if bw[0].Value != 10e9 {
		t.Errorf("first interval %v B/s, want 10e9", bw[0].Value)
	}
	if bw[1].Value != 0 {
		t.Errorf("idle interval %v", bw[1].Value)
	}
	if bw[2].Value != 30e9 {
		t.Errorf("third interval %v", bw[2].Value)
	}
	if BandwidthSeries(points[:1]) != nil {
		t.Error("single point should give no series")
	}
	// Zero-dt points are skipped.
	deg := []Sample{{t0, 0}, {t0, 5}}
	if len(BandwidthSeries(deg)) != 0 {
		t.Error("zero-dt interval should be skipped")
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	r.Observe("h", 0.5)
	r.Observe("h", 30)
	h, _ := r.Histogram("h")
	// rank q*2 against cumulative counts {...,le1:1,le10:1,le60:2,...}:
	// p50 interpolates to the top of the le=1 bucket, p95/p99 inside
	// (10, 60].
	cases := []struct{ q, want float64 }{
		{0.5, 1}, {0.95, 55}, {0.99, 59},
		{-1, 0.001}, // clamps to q=0, landing at the first bucket bound
		{1, 60},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if (HistogramSnapshot{}).Quantile(0.5) != 0 {
		t.Error("empty snapshot quantile should be 0")
	}
	// Observations beyond the last finite bucket clamp to that bound.
	r2 := NewRegistry()
	r2.Observe("tail", 10000)
	ht, _ := r2.Histogram("tail")
	if got := ht.Quantile(0.5); got != 3600 {
		t.Errorf("+Inf-bucket quantile = %v, want 3600 (last finite bound)", got)
	}
}

func TestExpositionGolden(t *testing.T) {
	// The exact exposition bytes for a known registry: counters/gauges
	// sorted, then per-histogram buckets, _sum, _count, and the p50/p95/
	// p99 quantile estimates in summary style.
	r := NewRegistry()
	r.Add("requests_total", 3)
	r.Observe(`stage_seconds{stage="copy"}`, 0.5)
	r.Observe(`stage_seconds{stage="copy"}`, 30)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	want := `requests_total 3
stage_seconds_bucket{stage="copy",le="0.001"} 0
stage_seconds_bucket{stage="copy",le="0.01"} 0
stage_seconds_bucket{stage="copy",le="0.1"} 0
stage_seconds_bucket{stage="copy",le="1"} 1
stage_seconds_bucket{stage="copy",le="10"} 1
stage_seconds_bucket{stage="copy",le="60"} 2
stage_seconds_bucket{stage="copy",le="300"} 2
stage_seconds_bucket{stage="copy",le="1200"} 2
stage_seconds_bucket{stage="copy",le="3600"} 2
stage_seconds_bucket{stage="copy",le="+Inf"} 2
stage_seconds_sum{stage="copy"} 30.5
stage_seconds_count{stage="copy"} 2
stage_seconds{stage="copy",quantile="0.5"} 1
stage_seconds{stage="copy",quantile="0.95"} 54.99999999999999
stage_seconds{stage="copy",quantile="0.99"} 59
`
	if string(body) != want {
		t.Fatalf("exposition diverged from golden.\ngot:\n%s\nwant:\n%s", body, want)
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	r := NewRegistry()
	name := `flow_stage_seconds{flow="nersc_recon_flow",stage="globus_to_cfs"}`
	for _, v := range []float64{0.0005, 0.5, 5, 50, 5000} {
		r.Observe(name, v)
	}
	h, ok := r.Histogram(name)
	if !ok {
		t.Fatal("histogram missing")
	}
	if h.Count != 5 || h.Sum != 5055.5005 {
		t.Fatalf("count=%d sum=%v", h.Count, h.Sum)
	}
	// Cumulative bucket counts against DefaultBuckets
	// {0.001,0.01,0.1,1,10,60,300,1200,3600}.
	want := []uint64{1, 1, 1, 2, 3, 4, 4, 4, 4, 5}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("counts[%d] = %d, want %d (all %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if _, ok := r.Histogram("absent"); ok {
		t.Fatal("absent histogram reported present")
	}
	names := r.HistogramNames()
	if len(names) != 1 || names[0] != name {
		t.Fatalf("names = %v", names)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	r.Add("plain_total", 2)
	r.Observe(`stage_seconds{stage="copy"}`, 0.5)
	r.Observe(`stage_seconds{stage="copy"}`, 30)
	r.Observe("unlabeled_seconds", 1)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"plain_total 2\n",
		`stage_seconds_bucket{stage="copy",le="1"} 1` + "\n",
		`stage_seconds_bucket{stage="copy",le="60"} 2` + "\n",
		`stage_seconds_bucket{stage="copy",le="+Inf"} 2` + "\n",
		`stage_seconds_sum{stage="copy"} 30.5` + "\n",
		`stage_seconds_count{stage="copy"} 2` + "\n",
		`unlabeled_seconds_bucket{le="+Inf"} 1` + "\n",
		"unlabeled_seconds_sum 1\n",
		"unlabeled_seconds_count 1\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, text)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Observe("h", float64(j))
			}
		}()
	}
	wg.Wait()
	h, _ := r.Histogram("h")
	if h.Count != 1600 {
		t.Fatalf("count = %d", h.Count)
	}
}

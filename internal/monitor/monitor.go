// Package monitor provides the observability the paper's operations
// depend on: a metrics registry with an HTTP exposition endpoint (the
// Grafana dashboards that watch Globus transfer bandwidth) and a
// bandwidth sampler that turns link counters into time series. Health
// checking lives in internal/telemetry, which scores facilities from
// the series this registry feeds.
package monitor

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultBuckets are the histogram upper bounds Observe uses: wide enough
// to span millisecond streaming previews and half-hour reconstruction
// flows on one axis (seconds).
var DefaultBuckets = []float64{0.001, 0.01, 0.1, 1, 10, 60, 300, 1200, 3600}

// histogram is a fixed-bucket latency distribution. counts[i] is the
// number of observations ≤ buckets[i]; counts[len(buckets)] is +Inf.
type histogram struct {
	buckets []float64
	counts  []uint64
	sum     float64
	total   uint64
}

//perf:hot
func (h *histogram) observe(v float64) {
	for i, ub := range h.buckets {
		if v <= ub {
			h.counts[i]++
		}
	}
	h.counts[len(h.buckets)]++
	h.sum += v
	h.total++
}

// Registry is a thread-safe set of named metrics.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]float64    // guarded by mu
	gauges     map[string]float64    // guarded by mu
	histograms map[string]*histogram // guarded by mu
	// series tracks, per bare metric name, the label sets materialized
	// through AddL/ObserveL/SetL — the state behind MaxSeriesPerMetric.
	series map[string]map[string]bool // guarded by mu
	// limits overrides MaxSeriesPerMetric per bare metric name.
	limits map[string]int // guarded by mu
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]float64{},
		gauges:     map[string]float64{},
		histograms: map[string]*histogram{},
		series:     map[string]map[string]bool{},
		limits:     map[string]int{},
	}
}

// Add increments a counter.
//
//perf:hot
func (r *Registry) Add(name string, delta float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] += delta
}

// Set stores a gauge value.
//
//perf:hot
func (r *Registry) Set(name string, value float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = value
}

// Observe records one value (in seconds) into the named histogram,
// creating it with DefaultBuckets on first use. Like counters, the name
// carries its label set baked in, e.g.
// `flow_stage_seconds{flow="nersc_recon_flow",stage="globus_to_cfs"}`.
func (r *Registry) Observe(name string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &histogram{
			buckets: DefaultBuckets,
			counts:  make([]uint64, len(DefaultBuckets)+1),
		}
		r.histograms[name] = h
	}
	h.observe(v)
}

// HistogramSnapshot is a point-in-time copy of one histogram. Counts are
// cumulative per bucket; the final implicit +Inf bucket equals Count.
type HistogramSnapshot struct {
	Buckets []float64
	Counts  []uint64 // len(Buckets)+1, last is +Inf
	Sum     float64
	Count   uint64
}

// Histogram returns a snapshot of the named histogram, if it exists.
func (r *Registry) Histogram(name string) (HistogramSnapshot, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		return HistogramSnapshot{}, false
	}
	return HistogramSnapshot{
		Buckets: append([]float64(nil), h.buckets...),
		Counts:  append([]uint64(nil), h.counts...),
		Sum:     h.sum,
		Count:   h.total,
	}, true
}

// quantileExports are the quantile estimates the exposition endpoint and
// telemetry sampling publish for every histogram.
var quantileExports = []struct {
	Label string
	Q     float64
}{{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed
// distribution by linear interpolation inside the bucket holding the
// target rank, the standard histogram_quantile estimate. An empty
// snapshot reports 0; ranks landing in the +Inf bucket clamp to the
// highest finite bound, since the true tail is unknowable from buckets.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var prevCum, lower float64
	for i, ub := range s.Buckets {
		cum := float64(s.Counts[i])
		if cum >= rank {
			if cum == prevCum {
				return ub
			}
			return lower + (ub-lower)*(rank-prevCum)/(cum-prevCum)
		}
		prevCum, lower = cum, ub
	}
	return s.Buckets[len(s.Buckets)-1]
}

// HistogramNames returns the sorted names of all histograms.
func (r *Registry) HistogramNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.histograms))
	for k := range r.histograms {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Counter returns a counter's current value.
func (r *Registry) Counter(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Gauge returns a gauge's current value.
func (r *Registry) Gauge(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Snapshot returns all metrics as a sorted name→value map rendering.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges))
	for k, v := range r.counters {
		out[k] = v
	}
	for k, v := range r.gauges {
		out[k] = v
	}
	return out
}

// decorate splits a metric name with a baked-in label set and rebuilds it
// with a suffix on the bare name and extra labels appended, so
// `x{a="1"}` becomes e.g. `x_bucket{a="1",le="10"}`. Names without labels
// gain a fresh label set when extra labels are given.
func decorate(name, suffix, extraLabels string) string {
	bare, labels := name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		bare, labels = name[:i], name[i+1:len(name)-1]
	}
	if extraLabels != "" {
		if labels != "" {
			labels += ","
		}
		labels += extraLabels
	}
	if labels == "" {
		return bare + suffix
	}
	return bare + suffix + "{" + labels + "}"
}

// Handler exposes the metrics in a Prometheus-style text format:
// counters and gauges as bare samples, histograms as cumulative
// _bucket{le=...} series plus _sum and _count.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		names := make([]string, 0, len(snap))
		for k := range snap {
			names = append(names, k)
		}
		sort.Strings(names)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		for _, k := range names {
			fmt.Fprintf(w, "%s %g\n", k, snap[k])
		}
		for _, k := range r.HistogramNames() {
			h, ok := r.Histogram(k)
			if !ok {
				continue
			}
			for i, ub := range h.Buckets {
				fmt.Fprintf(w, "%s %d\n",
					decorate(k, "_bucket", fmt.Sprintf("le=%q", fmt.Sprintf("%g", ub))), h.Counts[i])
			}
			fmt.Fprintf(w, "%s %d\n", decorate(k, "_bucket", `le="+Inf"`), h.Counts[len(h.Buckets)])
			fmt.Fprintf(w, "%s %g\n", decorate(k, "_sum", ""), h.Sum)
			fmt.Fprintf(w, "%s %d\n", decorate(k, "_count", ""), h.Count)
			for _, qe := range quantileExports {
				fmt.Fprintf(w, "%s %g\n",
					decorate(k, "", fmt.Sprintf("quantile=%q", qe.Label)), h.Quantile(qe.Q))
			}
		}
	})
}

// Sample is one point of a bandwidth time series.
type Sample struct {
	At    time.Time
	Value float64
}

// BandwidthSeries converts cumulative byte counters into per-interval
// bandwidth (bytes/second), the series the Grafana transfer dashboard
// plots. points[i] pairs a timestamp with the cumulative total at that
// instant.
func BandwidthSeries(points []Sample) []Sample {
	if len(points) < 2 {
		return nil
	}
	out := make([]Sample, 0, len(points)-1)
	for i := 1; i < len(points); i++ {
		dt := points[i].At.Sub(points[i-1].At).Seconds()
		if dt <= 0 {
			continue
		}
		out = append(out, Sample{
			At:    points[i].At,
			Value: (points[i].Value - points[i-1].Value) / dt,
		})
	}
	return out
}

package monitor

import "runtime"

// SampleRuntime reads the Go runtime's introspection counters into reg
// as gauges: goroutine count, heap occupancy, and GC activity. The
// flowserver samples these on a ticker so /metrics answers "is the
// service leaking goroutines or thrashing the collector" without
// attaching a profiler; pprof (behind -pprof) is the deep-dive follow-up.
func SampleRuntime(reg *Registry) {
	if reg == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.Set("go_goroutines", float64(runtime.NumGoroutine()))
	reg.Set("go_heap_alloc_bytes", float64(ms.HeapAlloc))
	reg.Set("go_heap_objects", float64(ms.HeapObjects))
	reg.Set("go_sys_bytes", float64(ms.Sys))
	reg.Set("go_gc_cycles_total", float64(ms.NumGC))
	reg.Set("go_gc_pause_total_seconds", float64(ms.PauseTotalNs)/1e9)
	reg.Set("go_next_gc_bytes", float64(ms.NextGC))
}

package monitor

import (
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body, err := io.ReadAll(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestSeriesNameMatchesHandFormatted(t *testing.T) {
	// AddL must produce the exact series the layers used to hand-format
	// with fmt.Sprintf(`...{flow=%q,outcome=%q}`, ...), or dashboards
	// break on rename.
	got := SeriesName("flow_runs_total", L("flow", "mix"), L("outcome", "succeeded"))
	want := fmt.Sprintf("flow_runs_total{flow=%q,outcome=%q}", "mix", "succeeded")
	if got != want {
		t.Fatalf("SeriesName = %q, want %q", got, want)
	}
	if got := SeriesName("go_goroutines"); got != "go_goroutines" {
		t.Fatalf("label-free SeriesName = %q", got)
	}
}

func TestSeriesNameEscaping(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{`plain`, `m{k="plain"}`},
		{`a"b`, `m{k="a\"b"}`},
		{`a\b`, `m{k="a\\b"}`},
		{"a\nb", `m{k="a\nb"}`},
	} {
		if got := SeriesName("m", L("k", tc.in)); got != tc.want {
			t.Errorf("SeriesName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestDecorateEscapedValues(t *testing.T) {
	// decorate must split on the name's first '{' only — braces and
	// quotes inside label values belong to the value.
	for _, tc := range []struct{ name, suffix, extra, want string }{
		{`x{a="1"}`, "_bucket", `le="10"`, `x_bucket{a="1",le="10"}`},
		{`x{path="a{b"}`, "_sum", "", `x_sum{path="a{b"}`},
		{`x{path="a}b"}`, "_count", "", `x_count{path="a}b"}`},
		{`x{q="say \"hi\""}`, "_bucket", `le="+Inf"`, `x_bucket{q="say \"hi\"",le="+Inf"}`},
		{"bare", "_bucket", `le="1"`, `bare_bucket{le="1"}`},
		{"bare", "_count", "", "bare_count"},
	} {
		if got := decorate(tc.name, tc.suffix, tc.extra); got != tc.want {
			t.Errorf("decorate(%q,%q,%q) = %q, want %q", tc.name, tc.suffix, tc.extra, got, tc.want)
		}
	}
}

func TestLabeledHelpersRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.AddL("flow_runs_total", 1, L("flow", "a"), L("outcome", "succeeded"))
	r.AddL("flow_runs_total", 2, L("flow", "a"), L("outcome", "succeeded"))
	r.ObserveL("flow_duration_seconds", 5, L("flow", "a"))
	r.SetL("queue_depth", 3, L("site", "nersc"))

	if got := r.Counter(`flow_runs_total{flow="a",outcome="succeeded"}`); got != 3 {
		t.Fatalf("labeled counter = %v, want 3", got)
	}
	if h, ok := r.Histogram(`flow_duration_seconds{flow="a"}`); !ok || h.Count != 1 {
		t.Fatalf("labeled histogram missing or wrong: %+v ok=%v", h, ok)
	}
	if got := r.Gauge(`queue_depth{site="nersc"}`); got != 3 {
		t.Fatalf("labeled gauge = %v, want 3", got)
	}
	if got := r.CounterSeries("flow_runs_total"); len(got) != 1 {
		t.Fatalf("CounterSeries = %v", got)
	}
}

func TestCardinalityGuard(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < MaxSeriesPerMetric+20; i++ {
		r.AddL("chatty_total", 1, L("scan", fmt.Sprintf("scan-%03d", i)))
	}
	// The guard admits MaxSeriesPerMetric real series plus one overflow.
	if got := r.SeriesCount("chatty_total"); got != MaxSeriesPerMetric+1 {
		t.Fatalf("SeriesCount = %d, want %d", got, MaxSeriesPerMetric+1)
	}
	if got := r.Counter(`chatty_total{overflow="true"}`); got != 20 {
		t.Fatalf("overflow series = %v, want 20", got)
	}
	// Existing series keep accumulating after the bound is hit.
	r.AddL("chatty_total", 1, L("scan", "scan-000"))
	if got := r.Counter(`chatty_total{scan="scan-000"}`); got != 2 {
		t.Fatalf("pre-bound series = %v, want 2", got)
	}
	// Histograms share the guard.
	for i := 0; i < MaxSeriesPerMetric+1; i++ {
		r.ObserveL("chatty_seconds", 1, L("scan", fmt.Sprintf("scan-%03d", i)))
	}
	if h, ok := r.Histogram(`chatty_seconds{overflow="true"}`); !ok || h.Count != 1 {
		t.Fatalf("histogram overflow series: %+v ok=%v", h, ok)
	}
}

func TestExpositionDeterministicOrdering(t *testing.T) {
	build := func(order []int) string {
		r := NewRegistry()
		names := []string{"zeta_seconds", "alpha_seconds", "mid_seconds"}
		for _, i := range order {
			r.ObserveL(names[i], float64(i+1), L("stage", "s"))
			r.Add("runs_total", 1)
		}
		return scrape(t, r)
	}
	a := build([]int{0, 1, 2})
	b := build([]int{2, 0, 1})
	if a != b {
		t.Fatalf("exposition depends on insertion order:\n%s\n---\n%s", a, b)
	}
	// Histogram series for one name stay contiguous and bucket-ordered.
	idx := strings.Index(a, `alpha_seconds_bucket{stage="s",le="0.001"}`)
	if idx < 0 {
		t.Fatalf("missing first bucket line in:\n%s", a)
	}
	if !strings.Contains(a, `alpha_seconds_bucket{stage="s",le="+Inf"}`) {
		t.Fatalf("missing +Inf bucket in:\n%s", a)
	}
	if strings.Index(a, "alpha_seconds_sum") < idx {
		t.Fatal("_sum emitted before buckets")
	}
}

func TestRuntimeSampler(t *testing.T) {
	r := NewRegistry()
	SampleRuntime(r)
	if got := r.Gauge("go_goroutines"); got < 1 {
		t.Fatalf("go_goroutines = %v, want >= 1", got)
	}
	if got := r.Gauge("go_heap_alloc_bytes"); got <= 0 {
		t.Fatalf("go_heap_alloc_bytes = %v, want > 0", got)
	}
	body := scrape(t, r)
	for _, name := range []string{
		"go_goroutines", "go_heap_alloc_bytes", "go_heap_objects",
		"go_sys_bytes", "go_gc_cycles_total", "go_gc_pause_total_seconds", "go_next_gc_bytes",
	} {
		if !strings.Contains(body, name+" ") {
			t.Errorf("/metrics missing %s", name)
		}
	}
	SampleRuntime(nil) // nil registry is a no-op, not a panic
}

func TestConcurrentObserveVsHandler(t *testing.T) {
	// Scrapes racing labeled writes: the race detector is the assertion.
	r := NewRegistry()
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				r.ObserveL("race_seconds", float64(i), L("g", fmt.Sprintf("%d", g)))
				r.AddL("race_total", 1, L("g", fmt.Sprintf("%d", g)))
				SampleRuntime(r)
			}
		}(g)
	}
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
				scrape(t, r)
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-scraperDone
	if got := r.SeriesCount("race_total"); got != 4 {
		t.Fatalf("race_total series = %d, want 4", got)
	}
	var total float64
	for g := 0; g < 4; g++ {
		total += r.Counter(fmt.Sprintf(`race_total{g="%d"}`, g))
	}
	if total != 800 {
		t.Fatalf("race_total sum = %v, want 800", total)
	}
}

package monitor

import (
	"sort"
	"strconv"
	"strings"
)

// Label is one key/value pair of a metric's label set.
type Label struct {
	Key   string
	Value string
}

// L constructs a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// SeriesName renders `name{k="v",...}` in the Prometheus text exposition
// format, with values quoted via strconv.Quote (escaping backslash,
// double quote, and newline exactly as the exposition format requires).
// Labels are emitted in the order given, matching the hand-formatted
// names the instrumented layers used before AddL/ObserveL existed, so
// series names stay byte-identical.
func SeriesName(name string, labels ...Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// MaxSeriesPerMetric bounds how many distinct label sets one metric name
// may grow. Past the bound, new label sets collapse into a single
// `name{overflow="true"}` series: an unbounded label value (a scan ID, a
// path) then costs one series instead of a cardinality explosion.
const MaxSeriesPerMetric = 64

// seriesLocked resolves the full series name for name+labels, enforcing
// the cardinality bound. Callers hold r.mu.
func (r *Registry) seriesLocked(name string, labels []Label) string {
	full := SeriesName(name, labels...)
	if len(labels) == 0 {
		return full
	}
	set := r.series[name]
	if set == nil {
		set = map[string]bool{}
		r.series[name] = set
	}
	if set[full] {
		return full
	}
	limit := MaxSeriesPerMetric
	if l, ok := r.limits[name]; ok && l > 0 {
		limit = l
	}
	if len(set) >= limit {
		over := SeriesName(name, L("overflow", "true"))
		set[over] = true
		return over
	}
	set[full] = true
	return full
}

// SetSeriesLimit overrides the cardinality bound for one bare metric
// name — for metrics whose label space is known and bounded by
// configuration (per-tenant counters in a campaign) rather than by data.
// A non-positive limit restores the MaxSeriesPerMetric default. Series
// already materialized are kept even if the new limit is lower.
func (r *Registry) SetSeriesLimit(name string, limit int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if limit <= 0 {
		delete(r.limits, name)
		return
	}
	r.limits[name] = limit
}

// AddL increments the counter series `name{labels}`, collapsing into the
// overflow series past MaxSeriesPerMetric distinct label sets.
func (r *Registry) AddL(name string, delta float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[r.seriesLocked(name, labels)] += delta
}

// ObserveL records v into the histogram series `name{labels}` with the
// same cardinality guard as AddL.
func (r *Registry) ObserveL(name string, v float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	full := r.seriesLocked(name, labels)
	h := r.histograms[full]
	if h == nil {
		h = &histogram{
			buckets: DefaultBuckets,
			counts:  make([]uint64, len(DefaultBuckets)+1),
		}
		r.histograms[full] = h
	}
	h.observe(v)
}

// SetL stores a gauge on the series `name{labels}` with the same
// cardinality guard as AddL.
func (r *Registry) SetL(name string, value float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[r.seriesLocked(name, labels)] = value
}

// SeriesCount returns how many distinct label sets the metric name has
// materialized (0 for unlabeled metrics).
func (r *Registry) SeriesCount(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.series[name])
}

// CounterSeries returns the full names of every counter whose bare name
// matches, sorted — a query helper for tests and reports.
func (r *Registry) CounterSeries(name string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for k := range r.counters {
		if k == name || strings.HasPrefix(k, name+"{") {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

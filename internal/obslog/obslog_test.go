package obslog

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// stepClock advances a fixed step per Now call — deterministic timestamps
// without touching the wall clock.
type stepClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func newStepClock() *stepClock {
	return &stepClock{
		now:  time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
		step: time.Second,
	}
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.now
	c.now = c.now.Add(c.step)
	return t
}

func TestEmitAndFilter(t *testing.T) {
	j := New(newStepClock(), 16)
	ctx := WithRun(NewContext(context.Background(), j), 7)

	Info(ctx, "flow", "run started", F("flow", "streaming_recon"))
	Warn(ctx, "transfer", "retrying", F("attempt", 2), F("backoff", 250*time.Millisecond))
	Error(ctx, "transfer", "checksum mismatch", F("err", errors.New("boom")))
	Info(WithRun(ctx, 8), "flow", "run started")

	if got := j.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	all := j.Events(Filter{})
	for i, e := range all {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d: Seq = %d, want %d", i, e.Seq, i+1)
		}
	}
	if all[1].Fields[1].Value != "250ms" {
		t.Errorf("duration field = %q, want 250ms", all[1].Fields[1].Value)
	}
	if all[2].Fields[0].Value != "boom" {
		t.Errorf("error field = %q, want boom", all[2].Fields[0].Value)
	}

	if got := j.Events(Filter{Run: 7}); len(got) != 3 {
		t.Errorf("run=7 filter: %d events, want 3", len(got))
	}
	if got := j.Events(Filter{MinLevel: LevelWarn}); len(got) != 2 {
		t.Errorf("min=warn filter: %d events, want 2", len(got))
	}
	if got := j.Events(Filter{Component: "transfer"}); len(got) != 2 {
		t.Errorf("component filter: %d events, want 2", len(got))
	}
	if got := j.Events(Filter{AfterSeq: 3}); len(got) != 1 || got[0].Seq != 4 {
		t.Errorf("since filter: got %+v, want just seq 4", got)
	}
	if got := j.Events(Filter{Limit: 2}); len(got) != 2 || got[0].Seq != 3 {
		t.Errorf("limit filter: got %+v, want seqs 3,4", got)
	}
}

func TestSpanCorrelation(t *testing.T) {
	j := New(newStepClock(), 16)
	clk := newStepClock()
	sp := trace.NewRoot("streaming_recon", clk.Now())
	ctx := trace.NewContext(NewContext(context.Background(), j), sp)

	Info(ctx, "core", "preview ready")
	e := j.Events(Filter{})[0]
	if e.Span != "streaming_recon" {
		t.Fatalf("Span = %q, want streaming_recon", e.Span)
	}
}

func TestRingEviction(t *testing.T) {
	j := New(newStepClock(), 4)
	ctx := NewContext(context.Background(), j)
	for i := 1; i <= 10; i++ {
		Info(ctx, "c", fmt.Sprintf("event %d", i))
	}
	if got := j.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := j.Evicted(); got != 6 {
		t.Fatalf("Evicted = %d, want 6", got)
	}
	ev := j.Events(Filter{})
	if ev[0].Seq != 7 || ev[3].Seq != 10 {
		t.Fatalf("retained seqs %d..%d, want 7..10", ev[0].Seq, ev[3].Seq)
	}
	if got := j.LastSeq(); got != 10 {
		t.Fatalf("LastSeq = %d, want 10", got)
	}
}

func TestLevelGate(t *testing.T) {
	j := New(newStepClock(), 16)
	j.SetLevel(LevelWarn)
	ctx := NewContext(context.Background(), j)
	Debug(ctx, "c", "dropped")
	Info(ctx, "c", "dropped")
	Warn(ctx, "c", "kept")
	if got := j.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1 after level gate", got)
	}
	// Suppressed events must not consume sequence numbers, or two runs
	// that differ only in level would diverge.
	if got := j.Events(Filter{})[0].Seq; got != 1 {
		t.Fatalf("kept event Seq = %d, want 1", got)
	}
}

func TestNilSafety(t *testing.T) {
	var j *Journal
	j.Emit(context.Background(), LevelInfo, "c", "dropped")
	j.SetLevel(LevelError)
	j.AddSink(NewTextSink(&bytes.Buffer{}))
	if j.Len() != 0 || j.LastSeq() != 0 || j.Evicted() != 0 || j.Events(Filter{}) != nil {
		t.Fatal("nil journal must report empty state")
	}
	// No journal in context: helpers are no-ops, not panics.
	Info(context.Background(), "c", "dropped")
	Info(nil, "c", "dropped") //nolint — explicit nil-ctx robustness check
	if FromContext(context.Background()) != nil {
		t.Fatal("FromContext on bare ctx should be nil")
	}
}

func TestTextSink(t *testing.T) {
	var buf bytes.Buffer
	j := New(newStepClock(), 16)
	j.AddSink(NewTextSink(&buf))
	ctx := WithRun(NewContext(context.Background(), j), 3)
	Warn(ctx, "transfer", "retrying", F("attempt", 2), F("path", "a b.h5"))

	line := buf.String()
	want := `2026-01-01T00:00:00Z WARN  [transfer] retrying run=3 attempt=2 path="a b.h5"` + "\n"
	if line != want {
		t.Fatalf("text line:\n got %q\nwant %q", line, want)
	}
}

func TestJSONLSinkMatchesWriteJSONL(t *testing.T) {
	var live bytes.Buffer
	j := New(newStepClock(), 16)
	j.AddSink(NewJSONLSink(&live))
	ctx := WithRun(NewContext(context.Background(), j), 2)
	Info(ctx, "flow", "run started", F("flow", "x"))
	Error(ctx, "flow", "run failed", F("fault", "transient"))

	var dump bytes.Buffer
	if err := j.WriteJSONL(&dump, Filter{}); err != nil {
		t.Fatal(err)
	}
	if live.String() != dump.String() {
		t.Fatalf("streamed JSONL differs from dumped JSONL:\n%s\n---\n%s", live.String(), dump.String())
	}
	// Each line decodes back to the event it encoded.
	lines := strings.Split(strings.TrimSpace(dump.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d JSONL lines, want 2", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Seq != 2 || e.Run != 2 || e.Msg != "run failed" {
		t.Fatalf("decoded event %+v", e)
	}
	if !strings.Contains(lines[1], `"level":"ERROR"`) {
		t.Fatalf("level not rendered by name: %s", lines[1])
	}
}

func TestHandler(t *testing.T) {
	j := New(newStepClock(), 16)
	ctx := WithRun(NewContext(context.Background(), j), 1)
	Info(ctx, "flow", "run started")
	Warn(ctx, "transfer", "retrying")
	Info(WithRun(ctx, 2), "flow", "run started")

	get := func(url string) (int, eventsResponse) {
		req := httptest.NewRequest("GET", url, nil)
		rec := httptest.NewRecorder()
		j.Handler().ServeHTTP(rec, req)
		var resp eventsResponse
		if rec.Code == 200 {
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("%s: %v", url, err)
			}
		}
		return rec.Code, resp
	}

	if code, resp := get("/api/events"); code != 200 || len(resp.Events) != 3 || resp.Total != 3 {
		t.Fatalf("unfiltered: code %d resp %+v", code, resp)
	}
	if _, resp := get("/api/events?run=1"); len(resp.Events) != 2 {
		t.Fatalf("run=1: %d events, want 2", len(resp.Events))
	}
	if _, resp := get("/api/events?level=warn"); len(resp.Events) != 1 {
		t.Fatalf("level=warn: %d events, want 1", len(resp.Events))
	}
	if _, resp := get("/api/events?component=flow&limit=1"); len(resp.Events) != 1 || resp.Events[0].Seq != 3 {
		t.Fatalf("component+limit: %+v", resp.Events)
	}
	if _, resp := get("/api/events?since=2"); len(resp.Events) != 1 {
		t.Fatalf("since=2: %d events, want 1", len(resp.Events))
	}
	if code, _ := get("/api/events?run=x"); code != 400 {
		t.Fatalf("bad run: code %d, want 400", code)
	}
	if code, _ := get("/api/events?level=loud"); code != 400 {
		t.Fatalf("bad level: code %d, want 400", code)
	}
	if code, _ := get("/api/events?since=-1"); code != 400 {
		t.Fatalf("bad since: code %d, want 400", code)
	}
	if code, _ := get("/api/events?limit=x"); code != 400 {
		t.Fatalf("bad limit: code %d, want 400", code)
	}

	req := httptest.NewRequest("POST", "/api/events", nil)
	rec := httptest.NewRecorder()
	j.Handler().ServeHTTP(rec, req)
	if rec.Code != 405 {
		t.Fatalf("POST: code %d, want 405", rec.Code)
	}
}

func TestConcurrentEmit(t *testing.T) {
	j := New(newStepClock(), 256)
	ctx := NewContext(context.Background(), j)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				Info(WithRun(ctx, g+1), "c", "tick", F("i", i))
			}
		}(g)
	}
	wg.Wait()
	if got := j.Len(); got != 160 {
		t.Fatalf("Len = %d, want 160", got)
	}
	seen := map[uint64]bool{}
	for _, e := range j.Events(Filter{}) {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestParseLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Level
		ok   bool
	}{
		{"debug", LevelDebug, true},
		{"INFO", LevelInfo, true},
		{"warn", LevelWarn, true},
		{"ERROR", LevelError, true},
		{"loud", LevelDebug, false},
	} {
		got, ok := ParseLevel(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("ParseLevel(%q) = %v,%v want %v,%v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
	if got := Level(42).String(); got != "LEVEL(42)" {
		t.Errorf("unknown level String = %q", got)
	}
}

// Package obslog is the structured event journal of the observability
// layer: the run-correlated timeline that ties a "transfer retry" or
// "SFAPI poll" back to the flow run that caused it. Where internal/trace
// answers "where did the seconds go", obslog answers "what happened, in
// what order, to which run".
//
// The journal is deterministic by construction: it never reads the wall
// clock itself — every event is stamped through an injected Clock
// (flow.Env satisfies it), so a journal recorded under the discrete-event
// kernel is byte-identical run to run, and the same instrumentation
// works on the wall clock in the live services. Events carry a
// monotonically increasing sequence number, a level, a component, a
// message, and ordered key/value fields; the run ID and active span are
// pulled automatically from the context the instrumented layers already
// thread.
//
// Storage is a bounded ring buffer (old events are evicted, with an
// eviction counter), and pluggable sinks observe every accepted event as
// it is emitted: a text sink for the command-line binaries, a JSONL sink
// for tests and the determinism gate.
package obslog

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/trace"
)

// Clock supplies event timestamps. flow.Env, sim.Engine, and sim.Proc all
// satisfy it; obslog never reads the wall clock itself.
type Clock interface {
	Now() time.Time
}

// Level is an event severity.
type Level int8

// Severities, in increasing order.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the canonical upper-case level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	default:
		return fmt.Sprintf("LEVEL(%d)", int(l))
	}
}

// MarshalJSON renders the level as its name, so JSONL journals read
// without a decoder table.
func (l Level) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(l.String())), nil
}

// UnmarshalJSON accepts the level name, round-tripping MarshalJSON.
func (l *Level) UnmarshalJSON(b []byte) error {
	s, err := strconv.Unquote(string(b))
	if err != nil {
		return fmt.Errorf("obslog: level %s: %w", b, err)
	}
	lv, ok := ParseLevel(s)
	if !ok {
		return fmt.Errorf("obslog: unknown level %q", s)
	}
	*l = lv
	return nil
}

// ParseLevel resolves a level name (any case); it returns LevelDebug,
// false for unknown names.
func ParseLevel(s string) (Level, bool) {
	switch s {
	case "debug", "DEBUG":
		return LevelDebug, true
	case "info", "INFO":
		return LevelInfo, true
	case "warn", "WARN":
		return LevelWarn, true
	case "error", "ERROR":
		return LevelError, true
	}
	return LevelDebug, false
}

// Field is one ordered key/value pair attached to an event. Values are
// pre-rendered strings so a journal entry is immutable and its JSON form
// deterministic.
type Field struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// F renders any value into a field with deterministic formatting.
func F(key string, value interface{}) Field {
	switch v := value.(type) {
	case string:
		return Field{Key: key, Value: v}
	case time.Duration:
		return Field{Key: key, Value: v.String()}
	case float64:
		return Field{Key: key, Value: strconv.FormatFloat(v, 'g', -1, 64)}
	case error:
		return Field{Key: key, Value: v.Error()}
	default:
		return Field{Key: key, Value: fmt.Sprintf("%v", v)}
	}
}

// Event is one journal entry.
type Event struct {
	Seq       uint64    `json:"seq"`
	Time      time.Time `json:"t"`
	Level     Level     `json:"level"`
	Component string    `json:"component"`
	Msg       string    `json:"msg"`
	// Run is the correlated flow run ID (0 when the event happened outside
	// any run).
	Run int `json:"run,omitempty"`
	// Tenant is the scheduling tenant ("beamline/class") the event belongs
	// to ("" outside any tenant — single-beamline journals are unchanged).
	Tenant string `json:"tenant,omitempty"`
	// Span is the name of the trace span active when the event fired.
	Span   string  `json:"span,omitempty"`
	Fields []Field `json:"fields,omitempty"`
}

// Sink observes every event the journal accepts, in emission order.
// Write is called with the journal lock held, so sinks need no locking of
// their own but must not call back into the journal.
type Sink interface {
	Write(e Event)
}

// Journal is a bounded, thread-safe event ring with sequence numbers.
// All methods are nil-safe: a nil *Journal accepts and drops everything,
// so instrumented layers log unconditionally.
type Journal struct {
	mu      sync.Mutex
	clock   Clock
	min     Level   // guarded by mu
	ring    []Event // guarded by mu
	next    uint64  // guarded by mu; next sequence number (first event is 1)
	head    int     // guarded by mu; ring index of the oldest retained event
	count   int     // guarded by mu; retained events
	evicted uint64  // guarded by mu
	sinks   []Sink  // guarded by mu
}

// DefaultCapacity is the ring size New uses when given a non-positive
// capacity: enough for a full simulated campaign.
const DefaultCapacity = 1 << 16

// New creates a journal stamping through clock with the given ring
// capacity (DefaultCapacity when cap <= 0). The minimum level starts at
// LevelDebug.
func New(clock Clock, capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Journal{clock: clock, ring: make([]Event, 0, capacity)}
}

// SetLevel drops events below min from the journal and its sinks.
func (j *Journal) SetLevel(min Level) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.min = min
}

// AddSink attaches a sink; it observes events emitted from now on.
func (j *Journal) AddSink(s Sink) {
	if j == nil || s == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.sinks = append(j.sinks, s)
}

// Emit records one event, stamping it from the journal clock and pulling
// the run ID and active span from ctx. Events below the minimum level are
// dropped. Nil journals drop everything.
//
// The ring never reallocates: the fill phase stores through a reslice of
// the backing array New made, and the steady state overwrites in place.
//
//perf:hot
func (j *Journal) Emit(ctx context.Context, level Level, component, msg string, fields ...Field) {
	if j == nil {
		return
	}
	run := RunFromContext(ctx)
	tenant := TenantFromContext(ctx)
	span := trace.FromContext(ctx).Name()
	j.mu.Lock()
	defer j.mu.Unlock()
	if level < j.min {
		return
	}
	j.next++
	e := Event{
		Seq: j.next, Time: j.clock.Now(), Level: level,
		Component: component, Msg: msg, Run: run, Tenant: tenant, Span: span, Fields: fields,
	}
	if j.count < cap(j.ring) {
		j.ring = j.ring[:j.count+1]
		j.ring[j.count] = e
		j.count++
	} else {
		j.ring[j.head] = e
		j.head = (j.head + 1) % cap(j.ring)
		j.evicted++
	}
	for _, s := range j.sinks {
		s.Write(e)
	}
}

// Filter selects a subset of the retained events.
type Filter struct {
	// Run keeps only events of that flow run (0 keeps all).
	Run int
	// Tenant keeps only events of that scheduling tenant ("" keeps all).
	Tenant string
	// MinLevel keeps events at or above the level.
	MinLevel Level
	// Component keeps only events of that component ("" keeps all).
	Component string
	// AfterSeq keeps events with Seq strictly greater (0 keeps all).
	AfterSeq uint64
	// Limit keeps only the most recent n matches (0 keeps all).
	Limit int
}

func (f Filter) match(e Event) bool {
	if e.Level < f.MinLevel {
		return false
	}
	if f.Run != 0 && e.Run != f.Run {
		return false
	}
	if f.Tenant != "" && e.Tenant != f.Tenant {
		return false
	}
	if f.Component != "" && e.Component != f.Component {
		return false
	}
	return e.Seq > f.AfterSeq
}

// Events returns the retained events matching f, oldest first.
func (j *Journal) Events(f Filter) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, j.count)
	for i := 0; i < j.count; i++ {
		e := j.ring[(j.head+i)%cap(j.ring)]
		if f.match(e) {
			out = append(out, e)
		}
	}
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// Len returns the number of retained events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.count
}

// LastSeq returns the sequence number of the newest event (0 when empty).
func (j *Journal) LastSeq() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// Evicted returns how many events the ring has dropped to stay bounded.
func (j *Journal) Evicted() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.evicted
}

// ctxKey is the context key type for journal plumbing.
type ctxKey int

const (
	journalKey ctxKey = iota
	runKey
	tenantKey
)

// NewContext returns a context carrying j so downstream layers can
// journal without any explicit plumbing. A nil journal returns ctx
// unchanged.
func NewContext(ctx context.Context, j *Journal) context.Context {
	if j == nil {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, journalKey, j)
}

// FromContext returns the journal carried by ctx, or nil (including for a
// nil ctx) — combined with nil-safe journal methods, callers never
// branch.
func FromContext(ctx context.Context) *Journal {
	if ctx == nil {
		return nil
	}
	j, _ := ctx.Value(journalKey).(*Journal)
	return j
}

// WithRun returns a context carrying the flow run ID every journaled
// event should correlate to.
func WithRun(ctx context.Context, runID int) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, runKey, runID)
}

// RunFromContext returns the correlated run ID, or 0 when none.
func RunFromContext(ctx context.Context) int {
	if ctx == nil {
		return 0
	}
	id, _ := ctx.Value(runKey).(int)
	return id
}

// WithTenant returns a context carrying the scheduling tenant
// ("beamline/class") every journaled event should be attributed to. An
// empty tenant returns ctx unchanged.
func WithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, tenantKey, tenant)
}

// TenantFromContext returns the correlated tenant, or "" when none.
func TenantFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	t, _ := ctx.Value(tenantKey).(string)
	return t
}

// Package-level emit helpers: fetch the journal from ctx and log through
// it. When no journal is attached the calls are no-ops, so instrumented
// layers cost one context lookup when observability is off.

// Log emits an event through the journal carried by ctx.
func Log(ctx context.Context, level Level, component, msg string, fields ...Field) {
	FromContext(ctx).Emit(ctx, level, component, msg, fields...)
}

// Debug emits a LevelDebug event through the journal carried by ctx.
func Debug(ctx context.Context, component, msg string, fields ...Field) {
	Log(ctx, LevelDebug, component, msg, fields...)
}

// Info emits a LevelInfo event through the journal carried by ctx.
func Info(ctx context.Context, component, msg string, fields ...Field) {
	Log(ctx, LevelInfo, component, msg, fields...)
}

// Warn emits a LevelWarn event through the journal carried by ctx.
func Warn(ctx context.Context, component, msg string, fields ...Field) {
	Log(ctx, LevelWarn, component, msg, fields...)
}

// Error emits a LevelError event through the journal carried by ctx.
func Error(ctx context.Context, component, msg string, fields ...Field) {
	Log(ctx, LevelError, component, msg, fields...)
}

package obslog

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// TextSink renders events as human-readable lines for the command-line
// binaries:
//
//	2026-08-05T10:00:00Z INFO  [flow] run completed run=3 span=streaming_recon outcome=succeeded
//
// Write is invoked under the journal lock, so emission order is the line
// order and no extra locking is needed.
type TextSink struct {
	W io.Writer
}

// NewTextSink returns a text sink writing to w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{W: w} }

// Write renders one event as a single line.
func (s *TextSink) Write(e Event) {
	if s == nil || s.W == nil {
		return
	}
	var b strings.Builder
	b.WriteString(e.Time.UTC().Format(time.RFC3339))
	fmt.Fprintf(&b, " %-5s [%s] %s", e.Level, e.Component, e.Msg)
	if e.Run != 0 {
		fmt.Fprintf(&b, " run=%d", e.Run)
	}
	if e.Span != "" {
		fmt.Fprintf(&b, " span=%s", e.Span)
	}
	for _, f := range e.Fields {
		v := f.Value
		if strings.ContainsAny(v, " \t\"") {
			v = fmt.Sprintf("%q", v)
		}
		fmt.Fprintf(&b, " %s=%s", f.Key, v)
	}
	b.WriteByte('\n')
	io.WriteString(s.W, b.String())
}

// JSONLSink streams every accepted event as one JSON object per line —
// the machine-readable form the determinism gate compares byte for byte.
type JSONLSink struct {
	enc *json.Encoder
}

// NewJSONLSink returns a JSONL sink writing to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Write encodes one event as a JSON line. Field order follows the Event
// struct, so identical journals encode to identical bytes.
func (s *JSONLSink) Write(e Event) {
	if s == nil || s.enc == nil {
		return
	}
	s.enc.Encode(e)
}

// WriteJSONL dumps the retained events matching f to w, one JSON object
// per line, oldest first. Two journals with identical contents produce
// identical bytes — the property scripts/check.sh's determinism stage
// asserts across sim runs.
func (j *Journal) WriteJSONL(w io.Writer, f Filter) error {
	enc := json.NewEncoder(w)
	for _, e := range j.Events(f) {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("obslog: encode event %d: %w", e.Seq, err)
		}
	}
	return nil
}

package obslog

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// eventsResponse is the JSON envelope served by Handler.
type eventsResponse struct {
	// Total is the number of retained events before filtering.
	Total int `json:"total"`
	// Evicted counts events dropped by the bounded ring.
	Evicted uint64 `json:"evicted"`
	// LastSeq is the newest sequence number ever assigned.
	LastSeq uint64  `json:"last_seq"`
	Events  []Event `json:"events"`
}

// Handler serves the journal as JSON for GET /api/events. Query
// parameters filter the timeline:
//
//	run=3            only events correlated to flow run 3
//	level=warn       only events at or above the level
//	component=flow   only events from that component
//	since=120        only events with seq > 120 (incremental polling)
//	limit=200        at most the newest 200 matches
func (j *Journal) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q := r.URL.Query()
		var f Filter
		if s := q.Get("run"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil {
				http.Error(w, "bad run: "+s, http.StatusBadRequest)
				return
			}
			f.Run = n
		}
		if s := q.Get("level"); s != "" {
			lv, ok := ParseLevel(s)
			if !ok {
				http.Error(w, "bad level: "+s, http.StatusBadRequest)
				return
			}
			f.MinLevel = lv
		}
		f.Component = q.Get("component")
		if s := q.Get("since"); s != "" {
			n, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since: "+s, http.StatusBadRequest)
				return
			}
			f.AfterSeq = n
		}
		if s := q.Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "bad limit: "+s, http.StatusBadRequest)
				return
			}
			f.Limit = n
		}
		resp := eventsResponse{
			Total:   j.Len(),
			Evicted: j.Evicted(),
			LastSeq: j.LastSeq(),
			Events:  j.Events(f),
		}
		if resp.Events == nil {
			resp.Events = []Event{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	})
}

package obslog

import (
	"context"
	"testing"
	"time"
)

func TestTenantContext(t *testing.T) {
	if got := TenantFromContext(nil); got != "" {
		t.Fatalf("TenantFromContext(nil) = %q, want empty", got)
	}
	if got := TenantFromContext(context.Background()); got != "" {
		t.Fatalf("TenantFromContext(Background) = %q, want empty", got)
	}
	ctx := WithTenant(context.Background(), "bl1/file")
	if got := TenantFromContext(ctx); got != "bl1/file" {
		t.Fatalf("TenantFromContext = %q, want bl1/file", got)
	}
	// Empty tenant is a no-op, preserving the existing value.
	if got := TenantFromContext(WithTenant(ctx, "")); got != "bl1/file" {
		t.Fatalf("empty WithTenant clobbered tenant: %q", got)
	}
	if got := TenantFromContext(WithTenant(nil, "bl9/streaming")); got != "bl9/streaming" {
		t.Fatalf("WithTenant(nil) = %q, want bl9/streaming", got)
	}
}

func TestEmitStampsTenant(t *testing.T) {
	clock := fixedClock(time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC))
	j := New(clock, 0)
	ctx := WithTenant(WithRun(NewContext(context.Background(), j), 7), "bl3/streaming")
	j.Emit(ctx, LevelInfo, "sched", "run dispatched")
	j.Emit(context.Background(), LevelInfo, "sched", "no tenant")

	evs := j.Events(Filter{})
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Tenant != "bl3/streaming" || evs[0].Run != 7 {
		t.Fatalf("event[0] tenant=%q run=%d, want bl3/streaming/7", evs[0].Tenant, evs[0].Run)
	}
	if evs[1].Tenant != "" {
		t.Fatalf("event[1] tenant = %q, want empty", evs[1].Tenant)
	}

	got := j.Events(Filter{Tenant: "bl3/streaming"})
	if len(got) != 1 || got[0].Msg != "run dispatched" {
		t.Fatalf("tenant filter matched %d events", len(got))
	}
	if rest := j.Events(Filter{Tenant: "bl9/file"}); len(rest) != 0 {
		t.Fatalf("unknown tenant matched %d events", len(rest))
	}
}

// fixedClock is a Clock pinned at one instant.
type fixedClock time.Time

func (c fixedClock) Now() time.Time { return time.Time(c) }

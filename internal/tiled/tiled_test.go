package tiled

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/phantom"
	"repro/internal/vol"
	"repro/internal/zarr"
)

func newServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer()
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

func TestEncodeDecodeSlice(t *testing.T) {
	im := vol.NewImage(3, 2)
	for i := range im.Pix {
		im.Pix[i] = float64(i) + 0.5
	}
	got, err := DecodeSlice(EncodeSlice(im))
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 3 || got.H != 2 {
		t.Fatalf("dims %dx%d", got.W, got.H)
	}
	for i := range im.Pix {
		if got.Pix[i] != im.Pix[i] {
			t.Fatalf("pix[%d] = %v", i, got.Pix[i])
		}
	}
	if _, err := DecodeSlice([]byte{1, 2}); err == nil {
		t.Fatal("short payload should fail")
	}
	if _, err := DecodeSlice(make([]byte, 8)); err != nil {
		t.Fatal("0x0 slice should decode")
	}
	bad := EncodeSlice(im)
	if _, err := DecodeSlice(bad[:len(bad)-4]); err == nil {
		t.Fatal("truncated payload should fail")
	}
}

func TestRegisterAndListKeys(t *testing.T) {
	s, srv := newServer(t)
	s.RegisterVolume("scan-b", phantom.SheppLogan3D(16, 8), 2)
	s.RegisterVolume("scan-a", phantom.SheppLogan3D(16, 8), 1)

	resp, err := http.Get(srv.URL + "/api/volumes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var keys []string
	json.NewDecoder(resp.Body).Decode(&keys)
	if len(keys) != 2 || keys[0] != "scan-a" || keys[1] != "scan-b" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestMetadataEndpoint(t *testing.T) {
	s, srv := newServer(t)
	s.RegisterVolume("v", phantom.SheppLogan3D(32, 16), 3)
	resp, err := http.Get(srv.URL + "/api/volumes/v/metadata")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var levels []map[string]interface{}
	json.NewDecoder(resp.Body).Decode(&levels)
	if len(levels) != 3 {
		t.Fatalf("levels = %d", len(levels))
	}
	if levels[0]["W"].(float64) != 32 || levels[1]["W"].(float64) != 16 {
		t.Fatalf("level dims: %v", levels)
	}
}

func TestSliceEndpoint(t *testing.T) {
	s, srv := newServer(t)
	v := phantom.SheppLogan3D(32, 8)
	s.RegisterVolume("v", v, 1)

	resp, err := http.Get(srv.URL + "/api/volumes/v/slice/0/4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	im, err := DecodeSlice(raw)
	if err != nil {
		t.Fatal(err)
	}
	want := v.Slice(4)
	for i := range want.Pix {
		if float32(im.Pix[i]) != float32(want.Pix[i]) {
			t.Fatalf("slice sample %d differs", i)
		}
	}
}

func TestOrthoEndpoint(t *testing.T) {
	s, srv := newServer(t)
	s.RegisterVolume("v", phantom.SheppLogan3D(32, 8), 2)
	resp, err := http.Get(srv.URL + "/api/volumes/v/ortho")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]interface{}
	json.NewDecoder(resp.Body).Decode(&body)
	if body["level"].(float64) != 1 {
		t.Fatalf("ortho level = %v", body["level"])
	}
	if body["central_slice_max"].(float64) <= 0 {
		t.Fatal("preview has no signal")
	}
}

func TestZarrBackedVolume(t *testing.T) {
	s, srv := newServer(t)
	v := phantom.SheppLogan3D(32, 12)
	root := filepath.Join(t.TempDir(), "v.zarr")
	if _, err := zarr.Write(root, v, 16, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterZarr("zv", root); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/api/volumes/zv/slice/0/6")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	im, err := DecodeSlice(raw)
	if err != nil {
		t.Fatal(err)
	}
	want := v.Slice(6)
	for i := range want.Pix {
		if float32(im.Pix[i]) != float32(want.Pix[i]) {
			t.Fatal("zarr-backed slice differs from source volume")
		}
	}
	if err := s.RegisterZarr("bad", t.TempDir()); err == nil {
		t.Fatal("registering a non-zarr dir should fail")
	}
}

func TestHTTPErrors(t *testing.T) {
	s, srv := newServer(t)
	s.RegisterVolume("v", phantom.SheppLogan3D(16, 4), 1)
	for path, want := range map[string]int{
		"/api/volumes/missing/metadata": http.StatusNotFound,
		"/api/volumes/v":                http.StatusNotFound,
		"/api/volumes/v/slice":          http.StatusBadRequest,
		"/api/volumes/v/slice/a/b":      http.StatusBadRequest,
		"/api/volumes/v/slice/0/99":     http.StatusNotFound,
		"/api/volumes/v/slice/9/0":      http.StatusNotFound,
		"/api/volumes/v/bogus":          http.StatusNotFound,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// Package tiled is the access layer's array server (Bluesky Tiled's role):
// it serves reconstructed volumes to web clients — the itk-vtk-viewer web
// app in the paper — as JSON metadata, binary slices at any pyramid level,
// and the three-slice orthogonal preview. Volumes are registered from the
// zarr store or directly from memory.
package tiled

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/vol"
	"repro/internal/zarr"
)

// source abstracts where a served volume's data comes from.
type source interface {
	levels() int
	dims(level int) (w, h, d int, err error)
	slice(level, z int) (*vol.Image, error)
}

// memSource serves an in-memory pyramid.
type memSource struct {
	pyramid []*vol.Volume
}

func (m *memSource) levels() int { return len(m.pyramid) }

func (m *memSource) dims(level int) (int, int, int, error) {
	if level < 0 || level >= len(m.pyramid) {
		return 0, 0, 0, fmt.Errorf("tiled: level %d out of range", level)
	}
	v := m.pyramid[level]
	return v.W, v.H, v.D, nil
}

func (m *memSource) slice(level, z int) (*vol.Image, error) {
	if level < 0 || level >= len(m.pyramid) {
		return nil, fmt.Errorf("tiled: level %d out of range", level)
	}
	v := m.pyramid[level]
	if z < 0 || z >= v.D {
		return nil, fmt.Errorf("tiled: slice %d out of range [0,%d)", z, v.D)
	}
	return v.Slice(z), nil
}

// zarrSource serves a pyramid from a zarr store on disk.
type zarrSource struct{ st *zarr.Store }

func (zs *zarrSource) levels() int { return zs.st.Meta.Levels }

func (zs *zarrSource) dims(level int) (int, int, int, error) {
	return zs.st.LevelDims(level)
}

func (zs *zarrSource) slice(level, z int) (*vol.Image, error) {
	return zs.st.Slice(level, z)
}

// Server is the Tiled-style HTTP data service.
type Server struct {
	mu   sync.RWMutex
	vols map[string]source // guarded by mu
}

// NewServer creates an empty server.
func NewServer() *Server {
	return &Server{vols: map[string]source{}}
}

// RegisterVolume serves an in-memory volume under the given key, building
// a pyramid with the requested number of levels (≥ 1).
func (s *Server) RegisterVolume(key string, v *vol.Volume, levels int) {
	if levels < 1 {
		levels = 1
	}
	pyramid := []*vol.Volume{v}
	for len(pyramid) < levels {
		last := pyramid[len(pyramid)-1]
		if last.W <= 1 && last.H <= 1 && last.D <= 1 {
			break
		}
		pyramid = append(pyramid, last.Downsample2())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vols[key] = &memSource{pyramid: pyramid}
}

// RegisterZarr serves a zarr pyramid from disk under the given key.
func (s *Server) RegisterZarr(key, root string) error {
	st, err := zarr.Open(root)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vols[key] = &zarrSource{st: st}
	return nil
}

// Keys returns the registered volume keys, sorted.
func (s *Server) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.vols))
	for k := range s.vols {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (s *Server) lookup(key string) (source, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	src, ok := s.vols[key]
	return src, ok
}

// EncodeSlice serializes an image as the wire format served by the slice
// endpoint: two uint32 dims followed by float32 samples.
func EncodeSlice(im *vol.Image) []byte {
	out := make([]byte, 8+4*len(im.Pix))
	binary.LittleEndian.PutUint32(out[0:], uint32(im.W))
	binary.LittleEndian.PutUint32(out[4:], uint32(im.H))
	for i, v := range im.Pix {
		binary.LittleEndian.PutUint32(out[8+i*4:], math.Float32bits(float32(v)))
	}
	return out
}

// DecodeSlice parses the slice wire format.
func DecodeSlice(raw []byte) (*vol.Image, error) {
	if len(raw) < 8 {
		return nil, fmt.Errorf("tiled: slice payload too short")
	}
	w := int(binary.LittleEndian.Uint32(raw[0:]))
	h := int(binary.LittleEndian.Uint32(raw[4:]))
	if w < 0 || h < 0 || len(raw) != 8+4*w*h {
		return nil, fmt.Errorf("tiled: slice payload %d bytes for %dx%d", len(raw), w, h)
	}
	im := vol.NewImage(w, h)
	for i := range im.Pix {
		im.Pix[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[8+i*4:])))
	}
	return im, nil
}

// Handler exposes the API:
//
//	GET /api/volumes                         → keys
//	GET /api/volumes/{key}/metadata          → dims per level
//	GET /api/volumes/{key}/slice/{level}/{z} → binary slice
//	GET /api/volumes/{key}/ortho             → JSON with the three
//	     central orthogonal slice summaries (the streaming preview shape)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/volumes", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Keys())
	})
	mux.HandleFunc("/api/volumes/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/api/volumes/")
		parts := strings.Split(rest, "/")
		if len(parts) < 2 {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		key := parts[0]
		src, ok := s.lookup(key)
		if !ok {
			http.Error(w, fmt.Sprintf("no volume %q", key), http.StatusNotFound)
			return
		}
		switch parts[1] {
		case "metadata":
			type lvl struct {
				Level   int `json:"level"`
				W, H, D int
			}
			out := []lvl{}
			for i := 0; i < src.levels(); i++ {
				w3, h3, d3, err := src.dims(i)
				if err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
					return
				}
				out = append(out, lvl{Level: i, W: w3, H: h3, D: d3})
			}
			writeJSON(w, http.StatusOK, out)
		case "slice":
			if len(parts) != 4 {
				http.Error(w, "want slice/{level}/{z}", http.StatusBadRequest)
				return
			}
			level, err1 := strconv.Atoi(parts[2])
			z, err2 := strconv.Atoi(parts[3])
			if err1 != nil || err2 != nil {
				http.Error(w, "bad level or z", http.StatusBadRequest)
				return
			}
			im, err := src.slice(level, z)
			if err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(EncodeSlice(im))
		case "ortho":
			// Serve summary stats of the three orthogonal central
			// slices at the coarsest level (cheap preview check).
			level := src.levels() - 1
			w3, h3, d3, err := src.dims(level)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			im, err := src.slice(level, d3/2)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			lo, hi := im.MinMax()
			writeJSON(w, http.StatusOK, map[string]interface{}{
				"level": level, "w": w3, "h": h3, "d": d3,
				"central_slice_min": lo, "central_slice_max": hi,
				"central_slice_mean": im.Mean(),
			})
		default:
			http.Error(w, "not found", http.StatusNotFound)
		}
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

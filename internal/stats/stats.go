// Package stats provides the summary statistics used throughout the
// benchmark harness: mean, standard deviation, median, range, percentiles
// and fixed-width histograms. It mirrors the aggregation the paper applies
// to Prefect flow-run durations when producing Table 2.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the descriptive statistics of a sample, in the same shape
// as the rows of the paper's Table 2 (N, mean ± SD, median, [min, max]).
type Summary struct {
	N      int
	Mean   float64
	SD     float64
	Median float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[n-1]
	s.Median = Quantile(sorted, 0.5)
	var sum float64
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(n)
	if n > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.SD = math.Sqrt(ss / float64(n-1))
	}
	return s
}

// String renders the summary as a Table 2 style row fragment, with
// durations rounded to whole units.
func (s Summary) String() string {
	return fmt.Sprintf("N=%d mean=%.0f±%.0f med=%.0f range=[%.0f, %.0f]",
		s.N, s.Mean, s.SD, s.Median, s.Min, s.Max)
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of sorted xs using linear
// interpolation between closest ranks. xs must be sorted ascending and
// non-empty.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Percentile is Quantile over an unsorted sample, expressed in percent.
func Percentile(xs []float64, p float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Quantile(sorted, p/100)
}

// Histogram is a fixed-width histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi  float64
	Counts  []int
	Under   int // samples below Lo
	Over    int // samples at or above Hi
	Samples int
}

// NewHistogram creates a histogram with nbins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins < 1 {
		nbins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.Samples++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i >= len(h.Counts) {
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// RMSE returns the root-mean-square error between a and b, which must have
// equal length. It is the reconstruction-quality metric used by the
// algorithm ablation (experiment A1).
func RMSE(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: RMSE length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	var ss float64
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(a)))
}

// PSNR returns the peak signal-to-noise ratio in dB of reconstruction b
// against reference a, using the dynamic range of a as the peak.
func PSNR(a, b []float64) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return math.NaN()
	}
	lo, hi := a[0], a[0]
	for _, v := range a {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	peak := hi - lo
	rmse := RMSE(a, b)
	if rmse == 0 {
		return math.Inf(1)
	}
	if peak == 0 {
		peak = 1
	}
	return 20 * math.Log10(peak/rmse)
}

// Pearson returns the Pearson correlation coefficient between a and b.
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return math.NaN()
	}
	sa := Summarize(a)
	sb := Summarize(b)
	var cov float64
	for i := range a {
		cov += (a[i] - sa.Mean) * (b[i] - sb.Mean)
	}
	cov /= float64(len(a) - 1)
	if sa.SD == 0 || sb.SD == 0 {
		return math.NaN()
	}
	return cov / (sa.SD * sb.SD)
}

package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.SD != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42})
	if s.N != 1 || s.Mean != 42 || s.Median != 42 || s.Min != 42 || s.Max != 42 || s.SD != 0 {
		t.Fatalf("bad single-sample summary: %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	// 2, 4, 4, 4, 5, 5, 7, 9: mean 5, population sd 2, sample sd ~2.138.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s := Summarize(xs)
	if s.Mean != 5 {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	if !almostEq(s.SD, 2.1380899, 1e-6) {
		t.Errorf("sd = %v, want ~2.138", s.SD)
	}
	if s.Median != 4.5 {
		t.Errorf("median = %v, want 4.5", s.Median)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("range = [%v,%v], want [2,9]", s.Min, s.Max)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantileEndpoints(t *testing.T) {
	sorted := []float64{1, 2, 3, 4}
	if Quantile(sorted, 0) != 1 {
		t.Errorf("q0 = %v", Quantile(sorted, 0))
	}
	if Quantile(sorted, 1) != 4 {
		t.Errorf("q1 = %v", Quantile(sorted, 1))
	}
	if Quantile(sorted, 0.5) != 2.5 {
		t.Errorf("q0.5 = %v", Quantile(sorted, 0.5))
	}
}

func TestQuantileNaNOnEmpty(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("expected NaN for empty input")
	}
}

func TestPercentileMatchesMedian(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	if Percentile(xs, 50) != 5 {
		t.Fatalf("p50 = %v, want 5", Percentile(xs, 50))
	}
}

// Property: min ≤ median ≤ max and min ≤ mean ≤ max for any sample.
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Median+1e-9 && s.Median <= s.Max+1e-9 &&
			s.Min <= s.Mean+1e-6 && s.Mean <= s.Max+1e-6 && s.SD >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		sort.Float64s(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
			}
			prev = v
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under=%d over=%d, want 1,2", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bin1 = %d, want 1", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.99
		t.Errorf("bin4 = %d, want 1", h.Counts[4])
	}
	if h.Samples != 7 {
		t.Errorf("samples = %d, want 7", h.Samples)
	}
	if !almostEq(h.BinCenter(0), 1, 1e-12) {
		t.Errorf("bin center 0 = %v, want 1", h.BinCenter(0))
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram(5, 5, 0) // hi<=lo and nbins<1 are repaired
	h.Add(5)
	if h.Samples != 1 {
		t.Fatal("degenerate histogram dropped sample")
	}
}

func TestRMSEAndPSNR(t *testing.T) {
	a := []float64{0, 1, 2, 3}
	if RMSE(a, a) != 0 {
		t.Error("RMSE of identical slices should be 0")
	}
	if !math.IsInf(PSNR(a, a), 1) {
		t.Error("PSNR of identical slices should be +Inf")
	}
	b := []float64{1, 2, 3, 4}
	if !almostEq(RMSE(a, b), 1, 1e-12) {
		t.Errorf("RMSE = %v, want 1", RMSE(a, b))
	}
	// peak=3, rmse=1 → 20*log10(3) ≈ 9.54 dB
	if !almostEq(PSNR(a, b), 20*math.Log10(3), 1e-9) {
		t.Errorf("PSNR = %v", PSNR(a, b))
	}
}

func TestRMSEPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RMSE([]float64{1}, []float64{1, 2})
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	if !almostEq(Pearson(a, b), 1, 1e-12) {
		t.Errorf("perfect correlation = %v", Pearson(a, b))
	}
	c := []float64{10, 8, 6, 4, 2}
	if !almostEq(Pearson(a, c), -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %v", Pearson(a, c))
	}
	if !math.IsNaN(Pearson(a, []float64{1, 1, 1, 1, 1})) {
		t.Error("zero-variance input should yield NaN")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{30, 676, 56})
	got := s.String()
	if got == "" {
		t.Fatal("empty string")
	}
}

package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/flow"
	"repro/internal/tomo"
	"repro/internal/vol"
)

// The paper's first future direction (§6) is "extending our workflow to
// handle 4D datasets as sequences of time-stamped volumes" for
// time-resolved experiments such as the in-situ propped-fracture creep
// study it cites. This file implements that extension: a 4D acquisition is
// a sequence of full tomographic scans of an evolving sample; each
// timestep reconstructs independently (reusing the slice-parallel engine)
// and the series is reduced to per-timestep metrics for experiment
// steering.

// TimeStep is one reconstructed frame of a 4D series.
type TimeStep struct {
	Index   int
	Time    time.Time
	Volume  *vol.Volume
	ReconMS float64
}

// TimeSeries is a reconstructed 4D dataset.
type TimeSeries struct {
	ScanID string
	Steps  []TimeStep
}

// Metric reduces each timestep's volume to a scalar (e.g. a phase
// fraction) and returns the series — the quantity an in-situ experiment
// watches evolve.
func (ts *TimeSeries) Metric(f func(*vol.Volume) float64) []float64 {
	out := make([]float64, len(ts.Steps))
	for i, s := range ts.Steps {
		out[i] = f(s.Volume)
	}
	return out
}

// Reconstruct4D reconstructs a sequence of acquisitions of an evolving
// sample into a time series. Each element of acqs is one complete scan
// (raw counts + references); timestamps default to uniform spacing when
// stamps is nil. Reconstruction runs timestep-by-timestep, each using the
// full slice-parallel worker pool, so memory stays bounded at one
// timestep's working set.
func Reconstruct4D(ctx context.Context, scanID string, acqs []*tomo.Acquisition, stamps []time.Time, opts tomo.ReconOptions) (*TimeSeries, error) {
	if len(acqs) == 0 {
		return nil, fmt.Errorf("core: 4D series needs at least one timestep")
	}
	if stamps != nil && len(stamps) != len(acqs) {
		return nil, fmt.Errorf("core: %d timestamps for %d timesteps", len(stamps), len(acqs))
	}
	ts := &TimeSeries{ScanID: scanID}
	// ReconMS is diagnostic wall time, not data; RealEnv is the sanctioned
	// gateway for reading it.
	env := flow.RealEnv{}
	for i, acq := range acqs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		li := tomo.MinusLog(tomo.Normalize(acq.Raw, acq.Flat, acq.Dark))
		t0 := env.Now()
		v, err := tomo.ReconstructVolume(ctx, li, opts)
		if err != nil {
			return nil, fmt.Errorf("core: timestep %d: %w", i, err)
		}
		stamp := time.Time{}
		if stamps != nil {
			stamp = stamps[i]
		}
		ts.Steps = append(ts.Steps, TimeStep{
			Index: i, Time: stamp, Volume: v,
			ReconMS: float64(env.Now().Sub(t0).Microseconds()) / 1000,
		})
	}
	return ts, nil
}

// Acquire4D scans an evolving sample: evolve(t) returns the ground-truth
// volume at normalized time t ∈ [0,1] for each of n timesteps, and each
// timestep is acquired with the detector model. It is the synthetic stand-
// in for an in-situ time-resolved experiment.
func Acquire4D(evolve func(t float64) *vol.Volume, n int, theta []float64, opts tomo.AcquireOptions) []*tomo.Acquisition {
	out := make([]*tomo.Acquisition, n)
	for i := 0; i < n; i++ {
		t := 0.0
		if n > 1 {
			t = float64(i) / float64(n-1)
		}
		truth := evolve(t)
		stepOpts := opts
		stepOpts.Seed = opts.Seed + int64(i)
		out[i] = tomo.Acquire(truth, theta, truth.W, stepOpts)
	}
	return out
}

package core

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// The ISSUE's worked example: an SFAPI outage mid-campaign takes the
// nersc facility Healthy→Degraded (score 100→40..60) and the verdict
// recovers after the API and both control-plane probes come back.
func TestCampaignTelemetrySFAPIOutage(t *testing.T) {
	cfg := DefaultCampaignConfig()
	cfg.Sim = fastCampaignSim()
	cfg.Telemetry = true
	cfg.TelemetryConfig = telemetry.Config{SampleInterval: time.Minute}
	cfg.Metrics = monitor.NewRegistry()
	c := NewCampaign(epoch, cfg)
	c.Base.Engine.Go("outage", func(p *sim.Proc) {
		p.Sleep(5 * time.Minute)
		c.Base.Perlmutter.SetDown(true)
		p.Sleep(10 * time.Minute)
		c.Base.Perlmutter.SetDown(false)
	})
	c.Run(4)

	pl := c.Telemetry
	if pl == nil {
		t.Fatal("Telemetry=true should build a plane")
	}
	var verdicts []telemetry.Verdict
	for _, tr := range pl.Transitions() {
		if tr.Facility == SiteNERSC {
			verdicts = append(verdicts, tr.To)
		}
	}
	if len(verdicts) < 2 || verdicts[0] != telemetry.VerdictDegraded ||
		verdicts[len(verdicts)-1] != telemetry.VerdictHealthy {
		t.Fatalf("nersc verdict timeline %v, want degraded then recovery", verdicts)
	}
	fh, ok := pl.HealthFor(SiteNERSC)
	if !ok || fh.Verdict != telemetry.VerdictHealthy {
		t.Fatalf("nersc should end healthy: %+v", fh)
	}

	// The ping probe failed throughout the outage and succeeded around it.
	var ping telemetry.ProbeStat
	for _, s := range pl.ProbeStats() {
		if s.Name == ProbeSFAPIPing {
			ping = s
		}
	}
	if ping.Runs == 0 || ping.Failures == 0 || ping.Failures >= ping.Runs {
		t.Fatalf("sfapi_ping stats %+v, want a mix of failures and successes", ping)
	}
	if ping.P95 <= 0 {
		t.Fatalf("sfapi_ping p95 %v, want positive latency from successful pings", ping.P95)
	}

	// Probe latencies flow into the shared registry's histograms.
	h, ok := cfg.Metrics.Histogram(monitor.SeriesName("probe_latency_seconds", monitor.L("probe", ProbeWANNERSC)))
	if !ok || h.Count == 0 {
		t.Fatal("probe_latency_seconds{probe=wan_echo_nersc} missing from registry")
	}
}

// Telemetry is opt-in: the default campaign carries no plane and no
// probe procs, so seeded timelines recorded before the plane existed
// are unchanged.
func TestCampaignTelemetryOptIn(t *testing.T) {
	cfg := DefaultCampaignConfig()
	cfg.Sim = fastCampaignSim()
	c := NewCampaign(epoch, cfg)
	c.Run(2)
	if c.Telemetry != nil {
		t.Fatal("telemetry plane built without opt-in")
	}
}

// Two seeded campaigns with telemetry produce byte-identical verdict
// timelines and probe digests — the determinism contract check.sh's
// telemetry stage enforces end to end.
func TestCampaignTelemetryDeterministic(t *testing.T) {
	run := func() (string, []telemetry.Transition) {
		cfg := DefaultCampaignConfig()
		cfg.Sim = fastCampaignSim()
		cfg.Telemetry = true
		cfg.TelemetryConfig = telemetry.Config{SampleInterval: time.Minute}
		c := NewCampaign(epoch, cfg)
		c.Base.Engine.Go("outage", func(p *sim.Proc) {
			p.Sleep(5 * time.Minute)
			c.Base.Perlmutter.SetDown(true)
			p.Sleep(10 * time.Minute)
			c.Base.Perlmutter.SetDown(false)
		})
		c.Run(3)
		return c.Telemetry.ProbeDigest(), c.Telemetry.Transitions()
	}
	d1, t1 := run()
	d2, t2 := run()
	if d1 != d2 {
		t.Fatalf("probe digests differ:\n%s\n%s", d1, d2)
	}
	if len(t1) != len(t2) {
		t.Fatalf("transition counts differ: %d vs %d", len(t1), len(t2))
	}
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("transitions differ:\n%+v\n%+v", t1, t2)
	}
}

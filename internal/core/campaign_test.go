package core

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/obslog"
	"repro/internal/sched"
)

// fastCampaignSim strips the stochastic tails and shrinks reconstruction
// so campaign tests turn scans over in minutes of sim time.
func fastCampaignSim() SimConfig { return FastSimConfig() }

// Acceptance (a): campaign throughput is monotonic as the worker pool
// grows 1→2→4 under a backlogged offered load.
func TestCampaignThroughputScalesWithWorkers(t *testing.T) {
	run := func(workers int) *CampaignResult {
		cfg := DefaultCampaignConfig()
		cfg.Workers = workers
		cfg.Reserved = 0
		cfg.ScanInterval = 20 * time.Minute
		cfg.Admission = sched.Admission{} // pure scaling: no shedding
		return NewCampaign(epoch, cfg).Run(5)
	}
	r1, r2, r4 := run(1), run(2), run(4)
	if r1.CompletedRuns != r2.CompletedRuns || r2.CompletedRuns != r4.CompletedRuns {
		t.Fatalf("completed runs differ across pool sizes: %d/%d/%d",
			r1.CompletedRuns, r2.CompletedRuns, r4.CompletedRuns)
	}
	if !(r1.RunsPerHour < r2.RunsPerHour && r2.RunsPerHour < r4.RunsPerHour) {
		t.Fatalf("throughput not monotonic in workers: 1→%.2f 2→%.2f 4→%.2f runs/h",
			r1.RunsPerHour, r2.RunsPerHour, r4.RunsPerHour)
	}
	if r4.Scans < 20 {
		t.Fatalf("campaign too small: %d scans", r4.Scans)
	}
}

// Acceptance (b): with admission on and a reprocessing burst injected,
// the scheduler defers and sheds file work while every streaming tenant
// keeps 100% attainment against the 10 s end-to-end target.
func TestCampaignAdmissionProtectsStreaming(t *testing.T) {
	cfg := DefaultCampaignConfig()
	cfg.BurstAt = 2 * time.Hour
	cfg.BurstScans = 14
	c := NewCampaign(epoch, cfg)
	res := c.Run(6)

	if res.StreamingUnder10sPct != 100 {
		t.Fatalf("streaming attainment %.1f%%, want 100%%", res.StreamingUnder10sPct)
	}
	if res.Deferred == 0 || res.Shed == 0 {
		t.Fatalf("expected burst to force defers and sheds, got deferred=%d shed=%d",
			res.Deferred, res.Shed)
	}
	for _, tr := range res.Report.Tenants {
		if tr.Class == sched.ClassStreaming && (tr.Shed != 0 || tr.Deferred != 0) {
			t.Fatalf("streaming tenant %s touched by admission: shed=%d deferred=%d",
				tr.Tenant, tr.Shed, tr.Deferred)
		}
	}
	// The decision stream must say why: slo_pressure sheds in the journal.
	found := false
	for _, ev := range c.Base.Journal.Events(obslog.Filter{Component: "sched", MinLevel: obslog.LevelWarn}) {
		if ev.Msg == "run shed" {
			found = true
			if ev.Tenant == "" {
				t.Fatalf("shed event missing tenant: %+v", ev)
			}
		}
	}
	if !found {
		t.Fatal("no shed events in journal despite TotalShed > 0")
	}
}

// Acceptance (c): while every file tenant is backlogged, completed-run
// shares track the 3:2:2:1 weights within 10%.
func TestCampaignFairShare(t *testing.T) {
	cfg := DefaultCampaignConfig()
	cfg.Sim = fastCampaignSim()
	cfg.Workers = 2
	cfg.Reserved = 1 // one file worker: contention is total
	cfg.ScanInterval = time.Minute
	cfg.Admission = sched.Admission{} // fairness, not shedding, under test
	c := NewCampaign(epoch, cfg)
	c.Launch(60)
	c.Base.Engine.RunUntil(epoch.Add(9 * time.Hour))

	rep := c.Sched.Snapshot()
	for _, tr := range rep.Tenants {
		if tr.Class == sched.ClassFile && tr.QueueDepth == 0 {
			t.Fatalf("tenant %s drained before checkpoint; fairness unmeasurable", tr.Tenant)
		}
	}
	if dev := FileShareDeviation(rep); dev > 10 {
		for _, tr := range rep.Tenants {
			if tr.Class == sched.ClassFile {
				t.Logf("%s weight=%.0f completed=%d", tr.Tenant, tr.Weight, tr.Completed)
			}
		}
		t.Fatalf("fair-share deviation %.1f%% exceeds 10%%", dev)
	}
	c.Base.Engine.Run() // drain so workers exit before the leak check
}

// Scheduler decisions land in the journal correlated to flow run IDs:
// every sched event carries its tenant, and every dispatched item's
// "run bound" event shares a run ID with that run's flow events.
func TestCampaignJournalCorrelation(t *testing.T) {
	cfg := DefaultCampaignConfig()
	cfg.Sim = fastCampaignSim()
	cfg.Beamlines = 2
	cfg.Weights = []float64{2, 1}
	cfg.Workers = 2
	cfg.Reserved = 0
	cfg.ScanInterval = 10 * time.Minute
	cfg.Admission = sched.Admission{}
	c := NewCampaign(epoch, cfg)
	c.Run(2)

	j := c.Base.Journal
	evs := j.Events(obslog.Filter{Component: "sched"})
	if len(evs) == 0 {
		t.Fatal("no sched events in journal")
	}
	bound := 0
	for _, ev := range evs {
		if ev.Tenant == "" {
			t.Fatalf("sched event without tenant: %+v", ev)
		}
		if ev.Msg != "run bound" {
			continue
		}
		bound++
		if ev.Run == 0 {
			t.Fatalf("run bound event without run ID: %+v", ev)
		}
		flowEvs := j.Events(obslog.Filter{Component: "flow", Run: ev.Run})
		if len(flowEvs) == 0 {
			t.Fatalf("no flow events for bound run %d", ev.Run)
		}
		for _, fe := range flowEvs {
			if fe.Tenant != ev.Tenant {
				t.Fatalf("run %d: flow event tenant %q != sched tenant %q",
					ev.Run, fe.Tenant, ev.Tenant)
			}
		}
	}
	// Each scan contributes a streaming run and 2+ flow runs on the file
	// item; every flow start rebinds, so bound events ≥ dispatched items.
	if bound < 8 {
		t.Fatalf("only %d run-bound events", bound)
	}
}

// Two identically-seeded campaigns — burst, defers, and sheds included —
// journal byte-identical scheduler decision streams.
func TestCampaignDeterministicDecisions(t *testing.T) {
	decisions := func() []byte {
		cfg := DefaultCampaignConfig()
		cfg.Sim = fastCampaignSim()
		cfg.Beamlines = 3
		cfg.Workers = 2
		cfg.Reserved = 1
		cfg.ScanInterval = 5 * time.Minute
		cfg.FileTarget = 5 * time.Minute
		cfg.Admission.DeferDelay = time.Minute
		cfg.Admission.MaxDefers = 2
		cfg.Admission.ShedAfter = 20 * time.Minute
		cfg.BurstAt = 30 * time.Minute
		cfg.BurstScans = 6
		c := NewCampaign(epoch, cfg)
		res := c.Run(4)
		if res.Deferred == 0 || res.Shed == 0 {
			t.Fatalf("determinism fixture never exercised admission: deferred=%d shed=%d",
				res.Deferred, res.Shed)
		}
		b, err := json.Marshal(c.Base.Journal.Events(obslog.Filter{Component: "sched"}))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := decisions(), decisions()
	if string(a) != string(b) {
		t.Fatalf("scheduler decision streams differ between identical campaigns:\nlen %d vs %d",
			len(a), len(b))
	}
}

func TestFileShareDeviationEdges(t *testing.T) {
	if d := FileShareDeviation(sched.Report{}); d != 0 {
		t.Fatalf("empty report deviation = %.1f, want 0", d)
	}
	rep := sched.Report{Tenants: []sched.TenantReport{
		{Class: sched.ClassFile, Weight: 3, Completed: 30},
		{Class: sched.ClassFile, Weight: 1, Completed: 10},
		{Class: sched.ClassStreaming, Weight: 1, Completed: 999}, // ignored
	}}
	if d := FileShareDeviation(rep); d != 0 {
		t.Fatalf("exact shares deviation = %.1f, want 0", d)
	}
}

func TestNewCampaignDefaults(t *testing.T) {
	c := NewCampaign(epoch, CampaignConfig{Sim: fastCampaignSim()})
	if len(c.Beamlines) != 1 {
		t.Fatalf("beamline floor: got %d", len(c.Beamlines))
	}
	if c.Beamlines[0].Name != "bl0" {
		t.Fatalf("beamline name %q", c.Beamlines[0].Name)
	}
	if got := c.tenant(c.Beamlines[0], sched.ClassFile).Weight; got != 1 {
		t.Fatalf("default weight %v", got)
	}
	// Identity stays per-view while infrastructure is shared.
	if c.Base.Name != "8.3.2" || c.Base.Engine != c.Beamlines[0].Engine {
		t.Fatal("campaign views must share the base engine but keep their own identity")
	}
}

package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/dxfile"
	"repro/internal/flow"
	"repro/internal/obslog"
	"repro/internal/scicat"
	"repro/internal/tiff"
	"repro/internal/tiled"
	"repro/internal/tomo"
	"repro/internal/trace"
	"repro/internal/vol"
	"repro/internal/zarr"
)

// PipelineOptions configures a real end-to-end run of the file-based
// branch at laptop scale: the same stages the production flows execute,
// with actual data.
type PipelineOptions struct {
	// WorkDir holds the intermediate artifacts; a temp dir when empty.
	WorkDir string
	// Recon configures the reconstruction (algorithm, filter, COR).
	Recon tomo.ReconOptions
	// ZarrChunk is the multiscale chunk edge (default 32).
	ZarrChunk int
	// WriteTIFF also emits the ImageJ-compatible TIFF stack the
	// production flows produce alongside the Zarr volume.
	WriteTIFF bool
	// Catalog, when set, receives the scan metadata (SciCat ingest).
	Catalog *scicat.Catalog
	// Tiled, when set, gets the reconstructed volume registered for
	// web access under the scan id.
	Tiled *tiled.Server
	// Env is the clock every timestamp and duration is taken from (nil
	// means the wall clock). Injecting a fixed or virtual clock makes the
	// written DXchange metadata and the recorded span tree byte-identical
	// across runs — the determinism guarantee the sim kernel promises.
	Env flow.Env
}

// clock resolves the effective environment clock.
func (o PipelineOptions) clock() flow.Env {
	if o.Env != nil {
		return o.Env
	}
	return flow.RealEnv{}
}

// PipelineResult reports what the pipeline produced.
type PipelineResult struct {
	ScanID     string
	RawPath    string
	ZarrPath   string
	TIFFPath   string // empty unless WriteTIFF was set
	RawBytes   int64
	ZarrBytes  int64
	Volume     *vol.Volume
	PID        string // SciCat persistent identifier (when cataloged)
	AcquireDur time.Duration
	WriteDur   time.Duration
	ReconDur   time.Duration
	OutputDur  time.Duration
}

// RunScanPipeline executes the full file-based branch on real data:
// simulate the acquisition of `truth`, write the DXchange file the
// file-writer would produce, read it back (the HPC side), normalize,
// reconstruct every slice in parallel, write the multiscale Zarr pyramid,
// and register metadata and access. It is the engine behind the
// quickstart and case-study examples.
//
// All timestamps come from opts.Env, and each stage records a child span
// on any trace carried by ctx, so a pipeline run under an injected clock
// is fully reproducible.
func RunScanPipeline(ctx context.Context, scanID string, truth *vol.Volume, theta []float64, acqOpts tomo.AcquireOptions, opts PipelineOptions) (*PipelineResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	env := opts.clock()
	parent := trace.FromContext(ctx)
	res := &PipelineResult{ScanID: scanID}
	dir := opts.WorkDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "splash-"+scanID)
		if err != nil {
			return nil, err
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}

	// Acquisition. ctx is checked at each stage boundary so a cancelled
	// pipeline stops before starting the next expensive phase.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: pipeline %s: %w", scanID, err)
	}
	t0 := env.Now()
	span := parent.StartChildStage("acquire "+scanID, "acquire", t0)
	acq := tomo.Acquire(truth, theta, truth.W, acqOpts)
	res.AcquireDur = env.Now().Sub(t0)
	span.End(env.Now())
	obslog.Info(ctx, "pipeline", "stage finished",
		obslog.F("scan", scanID), obslog.F("stage", "acquire"),
		obslog.F("duration", res.AcquireDur))

	// File-writer: DXchange file with embedded metadata.
	t0 = env.Now()
	span = parent.StartChildStage("write_raw "+scanID, "write_raw", t0)
	res.RawPath = filepath.Join(dir, scanID+".dxf")
	meta := dxfile.ScanMeta{
		ScanID: scanID, Beamline: "8.3.2", Sample: scanID,
		Instrument: "microCT", Operator: "als-user",
		StartTime: env.Now().UTC().Format(time.RFC3339), Energy: "25",
	}
	if err := dxfile.WriteDXchange(res.RawPath, acq, meta); err != nil {
		return nil, fmt.Errorf("core: write raw: %w", err)
	}
	if st, err := os.Stat(res.RawPath); err == nil {
		res.RawBytes = st.Size()
	}
	res.WriteDur = env.Now().Sub(t0)
	span.End(env.Now())
	obslog.Info(ctx, "pipeline", "stage finished",
		obslog.F("scan", scanID), obslog.F("stage", "write_raw"),
		obslog.F("bytes", res.RawBytes), obslog.F("duration", res.WriteDur))

	// HPC side: read back, preprocess, reconstruct in parallel.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: pipeline %s: %w", scanID, err)
	}
	t0 = env.Now()
	span = parent.StartChildStage("recon "+scanID, "recon", t0)
	loaded, loadedMeta, err := dxfile.ReadDXchange(res.RawPath)
	if err != nil {
		return nil, fmt.Errorf("core: read raw: %w", err)
	}
	if loadedMeta.ScanID != scanID {
		return nil, fmt.Errorf("core: metadata mismatch: %q != %q", loadedMeta.ScanID, scanID)
	}
	li := tomo.MinusLog(tomo.Normalize(loaded.Raw, loaded.Flat, loaded.Dark))
	volume, err := tomo.ReconstructVolume(ctx, li, opts.Recon)
	if err != nil {
		return nil, fmt.Errorf("core: reconstruct: %w", err)
	}
	res.Volume = volume
	res.ReconDur = env.Now().Sub(t0)
	span.End(env.Now())
	obslog.Info(ctx, "pipeline", "stage finished",
		obslog.F("scan", scanID), obslog.F("stage", "recon"),
		obslog.F("duration", res.ReconDur))

	// Outputs: multiscale Zarr, catalog, access layer.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: pipeline %s: %w", scanID, err)
	}
	t0 = env.Now()
	span = parent.StartChildStage("outputs "+scanID, "outputs", t0)
	res.ZarrPath = filepath.Join(dir, scanID+".zarr")
	chunk := opts.ZarrChunk
	if chunk <= 0 {
		chunk = 32
	}
	if _, err := zarr.Write(res.ZarrPath, volume, chunk, 0); err != nil {
		return nil, fmt.Errorf("core: write zarr: %w", err)
	}
	if sz, err := zarr.SizeBytes(res.ZarrPath); err == nil {
		res.ZarrBytes = sz
	}
	if opts.WriteTIFF {
		res.TIFFPath = filepath.Join(dir, scanID+"_tiff")
		if err := tiff.WriteStack(res.TIFFPath, volume, tiff.F32); err != nil {
			return nil, fmt.Errorf("core: write tiff stack: %w", err)
		}
	}
	if opts.Catalog != nil {
		d, err := opts.Catalog.Ingest(scicat.Dataset{
			ScanID: scanID, Sample: loadedMeta.Sample, Beamline: loadedMeta.Beamline,
			Owner: loadedMeta.Operator, SizeBytes: res.RawBytes,
			CreatedAt: env.Now(), SourcePath: res.RawPath,
		})
		if err != nil {
			return nil, fmt.Errorf("core: catalog ingest: %w", err)
		}
		res.PID = d.PID
	}
	if opts.Tiled != nil {
		if err := opts.Tiled.RegisterZarr(scanID, res.ZarrPath); err != nil {
			return nil, fmt.Errorf("core: tiled register: %w", err)
		}
	}
	res.OutputDur = env.Now().Sub(t0)
	span.End(env.Now())
	obslog.Info(ctx, "pipeline", "stage finished",
		obslog.F("scan", scanID), obslog.F("stage", "outputs"),
		obslog.F("bytes", res.ZarrBytes), obslog.F("duration", res.OutputDur))
	return res, nil
}

package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/flow"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transfer"
)

// Table2Row is one row of the paper's Table 2.
type Table2Row struct {
	Flow    string
	Summary stats.Summary
}

// Table2Result is the reproduction of Table 2 plus the per-flow success
// rates the paper's §5.1.3 mentions extracting from the Prefect API.
type Table2Result struct {
	Rows        []Table2Row
	SuccessRate map[string]float64
	// Stages is each flow's mean seconds per top-level trace stage over
	// the same window, the trace.GapStage remainder last. A flow's stage
	// means sum to its mean duration, so the breakdown column accounts
	// for every second of the Mean column.
	Stages map[string][]flow.StageStat
	// Streaming summarizes the streaming-branch preview latencies that
	// ran alongside the file-based flows (§5.2's <10 s claim).
	Streaming stats.Summary
}

// RunProductionCampaign drives n scans through the full dual-branch
// pipeline at the paper's cadence (one scan every 3–5 minutes) and returns
// the Table 2 statistics over the last `last` successful runs per flow.
// Cancelling ctx (nil means context.Background) stops launching new scans
// and propagates into every flow already in flight.
func (b *Beamline) RunProductionCampaign(ctx context.Context, n, last int) *Table2Result {
	if ctx == nil {
		ctx = context.Background()
	}
	b.Engine.Go("campaign", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			scan, err := b.NewScan(p, i)
			if err != nil {
				continue
			}
			// The file-writer completes, triggering the staging flow;
			// the two HPC flows and the streaming preview then run in
			// parallel, while acquisition continues.
			scanCopy := scan
			b.Engine.Go("pipeline-"+scan.ID, func(p *sim.Proc) {
				if err := b.NewFile832Flow(ctx, p, scanCopy); err != nil {
					return
				}
				b.Engine.Go("nersc-"+scanCopy.ID, func(p *sim.Proc) {
					b.NERSCReconFlow(ctx, p, scanCopy)
				})
				b.Engine.Go("alcf-"+scanCopy.ID, func(p *sim.Proc) {
					b.ALCFReconFlow(ctx, p, scanCopy)
				})
			})
			b.Engine.Go("stream-"+scan.ID, func(p *sim.Proc) {
				b.StreamingPreviewSim(ctx, p, scanCopy)
			})
			// Next scan arrives 3–5 minutes later.
			p.Sleep(3*time.Minute + time.Duration(b.rng.Float64()*float64(2*time.Minute)))
		}
	})
	b.Engine.Run()

	res := &Table2Result{
		SuccessRate: map[string]float64{},
		Stages:      map[string][]flow.StageStat{},
	}
	for _, name := range []string{FlowNewFile, FlowNERSC, FlowALCF} {
		res.Rows = append(res.Rows, Table2Row{Flow: name, Summary: b.Flows.Summary(name, last)})
		res.SuccessRate[name] = b.Flows.SuccessRate(name)
		res.Stages[name] = b.Flows.StageMeans(name, last)
	}
	res.Streaming = b.Flows.Summary(FlowStreaming, last)
	res.Stages[FlowStreaming] = b.Flows.StageMeans(FlowStreaming, last)
	return res
}

// FormatTable2 renders the result in the paper's layout, with a trailing
// per-stage breakdown column derived from the run traces.
func FormatTable2(r *Table2Result) string {
	var sb strings.Builder
	sb.WriteString("Table 2: summary statistics of file-based flow runs (seconds)\n")
	sb.WriteString(fmt.Sprintf("%-18s %5s %12s %8s %16s  %s\n",
		"Flow", "N", "Mean±SD", "Med.", "Range", "stage breakdown (mean s)"))
	for _, row := range r.Rows {
		s := row.Summary
		sb.WriteString(fmt.Sprintf("%-18s %5d %6.0f ± %-4.0f %8.0f [%6.0f, %6.0f]  %s\n",
			row.Flow, s.N, s.Mean, s.SD, s.Median, s.Min, s.Max,
			FormatStages(r.Stages[row.Flow])))
	}
	return sb.String()
}

// FormatStages renders a stage breakdown as "copy=110.2 recon=840.1 …".
func FormatStages(stages []flow.StageStat) string {
	if len(stages) == 0 {
		return "-"
	}
	parts := make([]string, 0, len(stages))
	for _, st := range stages {
		parts = append(parts, fmt.Sprintf("%s=%.1f", st.Stage, st.MeanS))
	}
	return strings.Join(parts, " ")
}

// LifecycleResult reproduces the data-lifecycle figures (§4.3 / Fig. 3):
// sustained cadence, daily volume, and per-tier occupancy.
type LifecycleResult struct {
	Scans          int
	Duration       time.Duration
	ScansPerHour   float64
	RawBytes       int64
	DerivedBytes   int64
	DailyBytes     float64 // projected bytes/day at this cadence
	DataSrvUsed    int64
	CFSUsed        int64
	EagleUsed      int64
	HPSSUsed       int64
	PrunedBytes    int64
	WANUtilization float64
}

// RunLifecycle simulates a shift of the given length at a fixed cadence,
// with nightly pruning and archival, and reports the lifecycle metrics.
func (b *Beamline) RunLifecycle(shift time.Duration, cadence time.Duration) *LifecycleResult {
	res := &LifecycleResult{}
	var scans []*Scan
	b.Engine.Go("shift", func(p *sim.Proc) {
		for i := 0; time.Duration(i)*cadence < shift; i++ {
			scan, err := b.NewScan(p, i)
			if err != nil {
				break
			}
			scans = append(scans, scan)
			res.RawBytes += scan.RawBytes
			res.DerivedBytes += scan.DerivedBytes()
			sc := scan
			b.Engine.Go("pipe-"+sc.ID, func(p *sim.Proc) {
				if b.NewFile832Flow(nil, p, sc) == nil {
					b.NERSCReconFlow(nil, p, sc)
					b.ArchiveFlow(nil, p, sc)
				}
			})
			p.Sleep(cadence)
		}
	})
	end := b.Engine.Run()
	res.Scans = len(scans)
	if len(scans) > 0 {
		res.Duration = end.Sub(scans[0].Acquired)
	}
	if res.Duration > 0 {
		res.ScansPerHour = float64(res.Scans) / res.Duration.Hours()
		res.DailyBytes = float64(res.RawBytes+res.DerivedBytes) / res.Duration.Hours() * 24
	}
	// Nightly pruning across tiers.
	pruneTime := end.Add(24 * time.Hour)
	for _, st := range []interface {
		PruneExpired(time.Time) (int, int64)
	}{b.Detector, b.DataSrv, b.Scratch} {
		_, bytes := st.PruneExpired(pruneTime.Add(30 * 24 * time.Hour))
		res.PrunedBytes += bytes
	}
	res.DataSrvUsed = b.DataSrv.Used()
	res.CFSUsed = b.CFS.Used()
	res.EagleUsed = b.Eagle.Used()
	res.HPSSUsed = b.HPSS.Used()
	if l, err := b.Network.Link(SiteALS, SiteNERSC); err == nil && res.Duration > 0 {
		res.WANUtilization = l.Utilization(res.Duration)
	}
	return res
}

// SpeedupResult reproduces the §5.1 ">100× improvement in time-to-insight"
// comparison against the historical workflow.
type SpeedupResult struct {
	HistoricalSave  time.Duration // 45 min to save a scan
	HistoricalRecon time.Duration // 60 min to one reconstruction slice
	Historical      time.Duration
	StreamingNow    time.Duration // preview latency after acquisition
	FileBranchNow   time.Duration // full volume via file branch
	SpeedupPreview  float64
	SpeedupVolume   float64
}

// RunSpeedup measures current time-to-insight for a typical 20 GB scan and
// compares with the historical baseline the decade-long user describes.
func (b *Beamline) RunSpeedup() *SpeedupResult {
	res := &SpeedupResult{
		HistoricalSave:  45 * time.Minute,
		HistoricalRecon: 60 * time.Minute,
	}
	res.Historical = res.HistoricalSave + res.HistoricalRecon
	b.Engine.Go("speedup", func(p *sim.Proc) {
		scan := &Scan{
			ID: "speedup_scan", Sample: "typical", RawBytes: 20e9,
			NAngles: 1969, Rows: 2160, Cols: 2560, Acquired: p.Now(),
		}
		if err := b.Detector.Put(p, rawPath(scan), scan.RawBytes, "sha256:x"); err != nil {
			return
		}
		lat, err := b.StreamingPreviewSim(nil, p, scan)
		if err != nil {
			return
		}
		res.StreamingNow = lat
		t0 := p.Now()
		if err := b.NewFile832Flow(nil, p, scan); err != nil {
			return
		}
		if err := b.NERSCReconFlow(nil, p, scan); err != nil {
			return
		}
		res.FileBranchNow = p.Now().Sub(t0)
	})
	b.Engine.Run()
	if res.StreamingNow > 0 {
		res.SpeedupPreview = res.Historical.Seconds() / res.StreamingNow.Seconds()
	}
	if res.FileBranchNow > 0 {
		res.SpeedupVolume = res.Historical.Seconds() / res.FileBranchNow.Seconds()
	}
	return res
}

// PruneIncidentResult reproduces the §5.3 production incident: a burst of
// concurrent Globus "prune" requests hits permission-denied errors. With
// the legacy continue-on-error behaviour each hung request holds its
// worker slot while it times out, saturating the queue; the fail-early fix
// releases slots immediately.
type PruneIncidentResult struct {
	Requests       int
	LegacyMakespan time.Duration
	LegacyPeakQ    int
	FixedMakespan  time.Duration
	FixedPeakQ     int
}

// PruneFlow runs one prune request as a flow: a Delete of the given
// paths from the beamline data-server endpoint. failFast selects the
// post-incident behaviour (fail at the first permission error) over the
// legacy continue-on-error timeout. The flow completes with the Delete's
// outcome, so the journal, success rates, and the transfer-success SLO
// all see prune failures.
func (b *Beamline) PruneFlow(ctx context.Context, p *sim.Proc, paths []string, failFast bool) error {
	fc := b.Flows.Start(ctx, FlowPrune, flow.SimEnv{P: p})
	_, err := b.Transfer.Delete(ctx, p, "prune", EPBeamline, paths, failFast)
	fc.Complete(err)
	return err
}

// RunPruneIncident fires `requests` concurrent prune flows through a
// worker pool of the given size against a store where a fraction of the
// paths are permission-locked.
func RunPruneIncident(epoch time.Time, requests, workers int, lockedFrac float64) *PruneIncidentResult {
	res := &PruneIncidentResult{Requests: requests}
	run := func(failFast bool) (time.Duration, int) {
		b := NewBeamline(epoch, DefaultSimConfig())
		b.Transfer.Fault = func(task *transfer.Task, path string, attempt int) error {
			if strings.HasPrefix(path, "locked/") {
				return faults.Errorf(faults.Permanent, "permission denied")
			}
			return nil
		}
		pool := sim.NewResource(b.Engine, workers)
		var done time.Time
		b.Engine.Go("seed", func(p *sim.Proc) {
			nLocked := int(float64(requests) * lockedFrac)
			for i := 0; i < requests; i++ {
				prefix := "old/"
				if i < nLocked {
					prefix = "locked/"
				}
				b.DataSrv.Put(p, fmt.Sprintf("%s%04d", prefix, i), 1e9, "c")
			}
			for i := 0; i < requests; i++ {
				i := i
				b.Engine.Go(fmt.Sprintf("prune-%d", i), func(p *sim.Proc) {
					pool.Acquire(p)
					defer pool.Release()
					prefix := "old/"
					if i < nLocked {
						prefix = "locked/"
					}
					b.PruneFlow(nil, p, []string{fmt.Sprintf("%s%04d", prefix, i)}, failFast)
					done = p.Now()
				})
			}
		})
		b.Engine.Run()
		return done.Sub(epoch), pool.PeakQueue
	}
	res.LegacyMakespan, res.LegacyPeakQ = run(false)
	res.FixedMakespan, res.FixedPeakQ = run(true)
	return res
}

// StreamingSweepPoint is one row of the streaming-latency sweep (§5.2).
type StreamingSweepPoint struct {
	RawGB       float64
	Latency     time.Duration
	ReconTime   time.Duration
	SendTime    time.Duration
	UnderTenSec bool
}

// RunStreamingSweep measures preview latency across scan sizes, including
// the paper's reference 20 GB point (7–8 s reconstruction, <1 s send).
func RunStreamingSweep(epoch time.Time, sizesGB []float64) []StreamingSweepPoint {
	out := make([]StreamingSweepPoint, 0, len(sizesGB))
	for _, gb := range sizesGB {
		b := NewBeamline(epoch, DefaultSimConfig())
		var pt StreamingSweepPoint
		pt.RawGB = gb
		b.Engine.Go("sweep", func(p *sim.Proc) {
			scan := &Scan{ID: fmt.Sprintf("sweep-%.1f", gb), RawBytes: int64(gb * 1e9),
				NAngles: 1969, Rows: 2160, Cols: 2560, Acquired: p.Now()}
			lat, err := b.StreamingPreviewSim(nil, p, scan)
			if err != nil {
				return
			}
			pt.Latency = lat
		})
		b.Engine.Run()
		pt.ReconTime = time.Duration(gb * 1e9 / DefaultSimConfig().StreamGPURate * float64(time.Second))
		pt.SendTime = pt.Latency - pt.ReconTime
		pt.UnderTenSec = pt.Latency < 10*time.Second
		out = append(out, pt)
	}
	return out
}

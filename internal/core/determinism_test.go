package core

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/phantom"
	"repro/internal/tomo"
	"repro/internal/trace"
)

// stepClock is a deterministic virtual clock: every Now() advances by a
// fixed step, so two identical call sequences read identical timestamps.
// It stands in for the discrete-event kernel in this regression test.
type stepClock struct {
	t    time.Time
	step time.Duration
}

func (c *stepClock) Now() time.Time        { c.t = c.t.Add(c.step); return c.t }
func (c *stepClock) Sleep(d time.Duration) { c.t = c.t.Add(d) }

// runPipelineOnce executes the full pipeline under a fresh injected clock
// and returns the span-tree JSON and the raw DXchange bytes.
func runPipelineOnce(t *testing.T, dir string) (spanJSON, rawFile []byte) {
	t.Helper()
	clk := &stepClock{t: time.Unix(1700000000, 0).UTC(), step: 125 * time.Millisecond}
	root := trace.NewRoot("det_run", clk.Now())
	ctx := trace.NewContext(context.Background(), root)
	res, err := RunScanPipeline(ctx, "det-001", phantom.SheppLogan3D(16, 4),
		tomo.UniformAngles(24), tomo.AcquireOptions{I0: 1e4, Seed: 7},
		PipelineOptions{WorkDir: dir, Env: clk})
	if err != nil {
		t.Fatal(err)
	}
	root.End(clk.Now())
	snap, err := json.Marshal(root.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(res.RawPath)
	if err != nil {
		t.Fatal(err)
	}
	return snap, raw
}

// TestPipelineDeterministicUnderInjectedClock is the regression test for
// the wall-clock leak simclock exists to prevent: with every timestamp
// routed through the environment clock, two identical runs must produce
// byte-identical span trees AND byte-identical raw files (the DXchange
// metadata embeds the acquisition start time).
func TestPipelineDeterministicUnderInjectedClock(t *testing.T) {
	snap1, raw1 := runPipelineOnce(t, t.TempDir())
	snap2, raw2 := runPipelineOnce(t, t.TempDir())
	if !bytes.Equal(snap1, snap2) {
		t.Fatalf("span trees diverge between identical runs:\nrun1: %s\nrun2: %s", snap1, snap2)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("DXchange bytes diverge between identical runs")
	}
	for _, stage := range []string{"acquire", "write_raw", "recon", "outputs"} {
		if !bytes.Contains(snap1, []byte(stage)) {
			t.Errorf("span tree missing %q stage:\n%s", stage, snap1)
		}
	}
}

// TestPipelineStampsFromInjectedClock pins the other half of the
// guarantee: the recorded durations reflect virtual time (the stepClock's
// fixed increments), not however long the host took.
func TestPipelineStampsFromInjectedClock(t *testing.T) {
	clk := &stepClock{t: time.Unix(1700000000, 0).UTC(), step: time.Second}
	res, err := RunScanPipeline(context.Background(), "det-002", phantom.SheppLogan3D(16, 4),
		tomo.UniformAngles(24), tomo.AcquireOptions{I0: 1e4, Seed: 7},
		PipelineOptions{WorkDir: t.TempDir(), Env: clk})
	if err != nil {
		t.Fatal(err)
	}
	// Each stage brackets its work with two Now() reads beyond the
	// duration pair, so every recorded duration is an exact multiple of
	// the step — impossible if any stage read the wall clock.
	for name, d := range map[string]time.Duration{
		"acquire": res.AcquireDur, "write": res.WriteDur,
		"recon": res.ReconDur, "outputs": res.OutputDur,
	} {
		if d <= 0 || d%time.Second != 0 {
			t.Errorf("%s duration %v is not a whole number of virtual steps", name, d)
		}
	}
}

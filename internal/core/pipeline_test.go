package core

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/phantom"
	"repro/internal/scicat"
	"repro/internal/stats"
	"repro/internal/tiff"
	"repro/internal/tiled"
	"repro/internal/tomo"
	"repro/internal/zarr"
)

func TestRunScanPipelineEndToEnd(t *testing.T) {
	truth := phantom.SheppLogan3D(32, 8)
	theta := tomo.UniformAngles(64)
	catalog := scicat.New()
	srv := tiled.NewServer()

	res, err := RunScanPipeline(context.Background(), "pipe-001", truth, theta,
		tomo.AcquireOptions{I0: 5e4, Seed: 11},
		PipelineOptions{
			WorkDir: t.TempDir(),
			Recon:   tomo.ReconOptions{Algorithm: tomo.AlgFBP, Filter: tomo.SheppLoganFilter},
			Catalog: catalog,
			Tiled:   srv,
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.RawBytes == 0 || res.ZarrBytes == 0 {
		t.Fatalf("artifact sizes: raw=%d zarr=%d", res.RawBytes, res.ZarrBytes)
	}
	if res.Volume.W != 32 || res.Volume.D != 8 {
		t.Fatalf("volume dims %dx%dx%d", res.Volume.W, res.Volume.H, res.Volume.D)
	}
	// Quality: reconstruction resembles ground truth.
	corr := stats.Pearson(res.Volume.Slice(4).Pix, truth.Slice(4).Pix)
	if corr < 0.7 {
		t.Fatalf("reconstruction correlation %v", corr)
	}
	// Catalog ingested with a PID.
	if res.PID == "" || catalog.Count() != 1 {
		t.Fatalf("catalog: pid=%q count=%d", res.PID, catalog.Count())
	}
	// Zarr pyramid readable and multiscale.
	st, err := zarr.Open(res.ZarrPath)
	if err != nil {
		t.Fatal(err)
	}
	if st.Meta.Levels < 1 {
		t.Fatal("no pyramid levels")
	}
	// Registered with the access layer.
	keys := srv.Keys()
	if len(keys) != 1 || keys[0] != "pipe-001" {
		t.Fatalf("tiled keys %v", keys)
	}
}

func TestRunScanPipelineDefaultsAndNoSinks(t *testing.T) {
	truth := phantom.SheppLogan3D(16, 4)
	res, err := RunScanPipeline(context.Background(), "pipe-002", truth,
		tomo.UniformAngles(24), tomo.AcquireOptions{I0: 1e4, Seed: 1},
		PipelineOptions{WorkDir: filepath.Join(t.TempDir(), "w")})
	if err != nil {
		t.Fatal(err)
	}
	if res.PID != "" {
		t.Fatal("no catalog configured but PID set")
	}
	if res.ReconDur <= 0 || res.WriteDur <= 0 {
		t.Fatal("stage durations not recorded")
	}
}

func TestRunScanPipelineCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	truth := phantom.SheppLogan3D(16, 8)
	if _, err := RunScanPipeline(ctx, "pipe-003", truth,
		tomo.UniformAngles(24), tomo.AcquireOptions{I0: 1e4, Seed: 1},
		PipelineOptions{WorkDir: t.TempDir()}); err == nil {
		t.Fatal("cancelled pipeline should fail")
	}
}

func TestRunScanPipelineTIFFStack(t *testing.T) {
	truth := phantom.SheppLogan3D(16, 4)
	res, err := RunScanPipeline(context.Background(), "pipe-tiff", truth,
		tomo.UniformAngles(24), tomo.AcquireOptions{I0: 1e4, Seed: 1},
		PipelineOptions{WorkDir: t.TempDir(), WriteTIFF: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TIFFPath == "" {
		t.Fatal("TIFF path not set")
	}
	stack, err := tiff.ReadStack(res.TIFFPath)
	if err != nil {
		t.Fatal(err)
	}
	if stack.D != 4 || stack.W != 16 {
		t.Fatalf("stack dims %dx%dx%d", stack.W, stack.H, stack.D)
	}
	// The stack must match the reconstructed volume (f32 precision).
	for i := range res.Volume.Data {
		if float32(stack.Data[i]) != float32(res.Volume.Data[i]) {
			t.Fatal("TIFF stack diverges from reconstruction")
		}
	}
}

package core

import (
	"context"
	"time"

	"repro/internal/facility"
	"repro/internal/flow"
	"repro/internal/scicat"
	"repro/internal/sim"
)

// NewFile832Flow is the flow the file-writer triggers when an acquisition
// finishes on disk (§4.2.2): it stages the raw file from the acquisition
// server to the user-accessible beamline data server, verifies it, and
// ingests the scan metadata into SciCat. Its duration is dominated by the
// staging copy, which is why the paper's Table 2 row is strongly
// right-skewed across the 4-orders-of-magnitude file-size mix.
func (b *Beamline) NewFile832Flow(ctx context.Context, p *sim.Proc, scan *Scan) error {
	fc := b.Flows.Start(ctx, FlowNewFile, flow.SimEnv{P: p})
	path := rawPath(scan)

	// Fixed per-scan overhead before the copy begins: the file-writer
	// finalizes the HDF5 file, validates the embedded metadata, and the
	// flow run itself is scheduled onto a worker.
	p.Sleep(22 * time.Second)

	err := fc.Task("stage_to_data_server", flow.TaskOptions{
		Retries: 2, RetryDelay: 15 * time.Second,
		Timeout:        24 * time.Hour, // far above any staging copy; a safety net, not a pacing device
		IdempotencyKey: "stage:" + scan.ID,
	}, func(context.Context) error {
		f, err := b.Detector.Get(p, path)
		if err != nil {
			return err
		}
		if err := b.DataSrv.Put(p, path, f.Size, f.Checksum); err != nil {
			return err
		}
		// Shared-NFS contention occasionally slows the copy well below
		// the volume's nominal throughput.
		if b.rng.Float64() < b.Cfg.StagingSlowProb {
			factor := 1 + b.rng.Float64()*(b.Cfg.StagingSlowMax-1)
			nominal := float64(f.Size) / b.Cfg.StagingBandwidth
			p.Sleep(time.Duration(nominal * (factor - 1) * float64(time.Second)))
		}
		return nil
	})
	if err != nil {
		fc.Complete(err)
		return err
	}

	err = fc.Task("validate_checksum", flow.TaskOptions{}, func(context.Context) error {
		src, err := b.Detector.Stat(path)
		if err != nil {
			return err
		}
		dst, err := b.DataSrv.Stat(path)
		if err != nil {
			return err
		}
		if src.Checksum != dst.Checksum {
			return &ChecksumError{Scan: scan.ID}
		}
		p.Sleep(5 * time.Second) // checksum pass over the file
		return nil
	})
	if err != nil {
		fc.Complete(err)
		return err
	}

	err = fc.Task("ingest_scicat", flow.TaskOptions{Retries: 1, RetryDelay: 5 * time.Second}, func(context.Context) error {
		p.Sleep(3 * time.Second) // catalog API round trips
		_, ierr := b.Catalog.Ingest(scicat.Dataset{
			ScanID: scan.ID, Sample: scan.Sample, Beamline: b.Name,
			Owner: "als-user", SizeBytes: scan.RawBytes,
			CreatedAt: scan.Acquired, SourcePath: path,
		})
		return ierr
	})
	fc.Complete(err)
	return err
}

// ChecksumError reports end-to-end verification failure.
type ChecksumError struct{ Scan string }

func (e *ChecksumError) Error() string { return "core: checksum mismatch for scan " + e.Scan }

// NERSCReconFlow is the file-based reconstruction at NERSC (§4.2.4): copy
// the raw file to CFS with Globus, submit a realtime-QOS Slurm job through
// SFAPI that stages CFS→pscratch for I/O, runs the TomoPy-style
// reconstruction on an exclusive 128-core node, writes the TIFF stack and
// multiscale Zarr, and copies results back to the beamline.
func (b *Beamline) NERSCReconFlow(ctx context.Context, p *sim.Proc, scan *Scan) error {
	fc := b.Flows.Start(ctx, FlowNERSC, flow.SimEnv{P: p})
	raw := rawPath(scan)

	err := fc.Task("globus_to_cfs", flow.TaskOptions{
		Retries: 2, RetryDelay: 30 * time.Second,
		Timeout:        24 * time.Hour,
		IdempotencyKey: "cfs:" + scan.ID,
	}, func(tctx context.Context) error {
		_, terr := b.Transfer.Submit(tctx, p, "raw→cfs "+scan.ID, EPBeamline, EPCFS, []string{raw})
		return terr
	})
	if err != nil {
		fc.Complete(err)
		return err
	}

	err = fc.Task("slurm_recon_job", flow.TaskOptions{}, func(tctx context.Context) error {
		// The realtime QOS gives priority scheduling, but the shared
		// reservation is sometimes occupied by an earlier job.
		if b.rng.Float64() < b.Cfg.RealtimeBusyProb {
			p.Sleep(time.Duration(b.rng.Float64() * float64(b.Cfg.RealtimeBusyMax)))
		}
		_, jerr := b.Perlmutter.Submit(tctx, p, facility.JobSpec{
			Name: "tomopy-" + scan.ID, Partition: "cpu", QOS: "realtime", Nodes: 1,
			Run: func(jctx context.Context, p *sim.Proc) error {
				// Stage CFS → pscratch for I/O performance.
				if _, err := b.Transfer.Submit(jctx, p, "cfs→pscratch "+scan.ID,
					EPCFS, EPScratch, []string{raw}); err != nil {
					return err
				}
				// Reconstruction walltime: fixed setup plus
				// throughput-limited compute.
				p.Sleep(b.Cfg.NERSCReconFixed +
					time.Duration(float64(scan.RawBytes)/b.Cfg.NERSCReconRate*float64(time.Second)))
				// Write derived products to CFS.
				derived := scan.DerivedBytes()
				if err := b.CFS.Put(p, reconFile(scan), derived*2/3, "sha256:zarr-"+scan.ID); err != nil {
					return err
				}
				return b.CFS.Put(p, tiffPath(scan), derived/3, "sha256:tiff-"+scan.ID)
			},
		})
		return jerr
	})
	if err != nil {
		fc.Complete(err)
		return err
	}

	err = fc.Task("globus_results_back", flow.TaskOptions{Retries: 2, RetryDelay: 30 * time.Second}, func(tctx context.Context) error {
		_, terr := b.Transfer.Submit(tctx, p, "rec→beamline "+scan.ID, EPCFS, EPBeamline,
			[]string{reconPath(scan)})
		return terr
	})
	fc.Complete(err)
	return err
}

// ALCFReconFlow is the serverless reconstruction at ALCF (§4.2.4): copy
// raw data to Eagle, execute the reconstruction function on a warm Globus
// Compute pilot worker on Polaris (no per-job batch wait), and copy
// results back. Warm workers are why this flow's variance is less than
// half of the NERSC flow's in Table 2.
func (b *Beamline) ALCFReconFlow(ctx context.Context, p *sim.Proc, scan *Scan) error {
	fc := b.Flows.Start(ctx, FlowALCF, flow.SimEnv{P: p})
	raw := rawPath(scan)

	err := fc.Task("globus_to_eagle", flow.TaskOptions{
		Retries: 2, RetryDelay: 30 * time.Second,
		Timeout:        24 * time.Hour,
		IdempotencyKey: "eagle:" + scan.ID,
	}, func(tctx context.Context) error {
		_, terr := b.Transfer.Submit(tctx, p, "raw→eagle "+scan.ID, EPBeamline, EPEagle, []string{raw})
		return terr
	})
	if err != nil {
		fc.Complete(err)
		return err
	}

	err = fc.Task("globus_compute_recon", flow.TaskOptions{}, func(tctx context.Context) error {
		return b.Polaris.Execute(tctx, p, func(_ context.Context, p *sim.Proc) error {
			// Occasional slow pilot node (shared filesystem or
			// straggler effects) gives the row its right tail.
			if b.rng.Float64() < 0.10 {
				p.Sleep(time.Duration(b.rng.Float64() * float64(700*time.Second)))
			}
			p.Sleep(b.Cfg.ALCFReconFixed +
				time.Duration(float64(scan.RawBytes)/b.Cfg.ALCFReconRate*float64(time.Second)))
			derived := scan.DerivedBytes()
			if err := b.Eagle.Put(p, reconFile(scan), derived*2/3, "sha256:zarr-"+scan.ID); err != nil {
				return err
			}
			return b.Eagle.Put(p, tiffPath(scan), derived/3, "sha256:tiff-"+scan.ID)
		})
	})
	if err != nil {
		fc.Complete(err)
		return err
	}

	err = fc.Task("globus_results_back", flow.TaskOptions{Retries: 2, RetryDelay: 30 * time.Second}, func(tctx context.Context) error {
		_, terr := b.Transfer.Submit(tctx, p, "rec→beamline "+scan.ID, EPEagle, EPBeamline,
			[]string{reconPath(scan)})
		return terr
	})
	fc.Complete(err)
	return err
}

// ArchiveFlow migrates a scan's raw data to HPSS tape for long-term
// retention (§4.3) and removes it from CFS.
func (b *Beamline) ArchiveFlow(ctx context.Context, p *sim.Proc, scan *Scan) error {
	fc := b.Flows.Start(ctx, "hpss_archive_flow", flow.SimEnv{P: p})
	err := fc.Task("archive_to_hpss", flow.TaskOptions{Retries: 1, RetryDelay: time.Minute}, func(context.Context) error {
		f, err := b.CFS.Get(p, rawPath(scan))
		if err != nil {
			return err
		}
		return b.HPSS.Put(p, archivePath(scan), f.Size, f.Checksum)
	})
	if err == nil {
		err = fc.Task("release_cfs_raw", flow.TaskOptions{}, func(context.Context) error {
			return b.CFS.Delete(rawPath(scan))
		})
	}
	fc.Complete(err)
	return err
}

// StreamingPreviewSim models the streaming branch's latency for one scan
// (§5.2): frames are already resident in the NERSC GPU node's memory cache
// when acquisition ends (they streamed during the scan), so the
// time-to-preview is reconstruction on four GPUs plus sending three slices
// back — or, with Cfg.StreamIncremental, just the last frame's fold and
// the accumulator finalize. It records a run under FlowStreaming and
// returns the latency.
func (b *Beamline) StreamingPreviewSim(ctx context.Context, p *sim.Proc, scan *Scan) (time.Duration, error) {
	fc := b.Flows.Start(ctx, FlowStreaming, flow.SimEnv{P: p})
	start := p.Now()

	err := fc.Task("gpu_backprojection", flow.TaskOptions{}, func(context.Context) error {
		full := time.Duration(float64(scan.RawBytes) / b.Cfg.StreamGPURate * float64(time.Second))
		d := full
		if b.Cfg.StreamIncremental && scan.NAngles > 0 {
			// Incremental mode: the per-angle filtering and
			// backprojection already ran while frames streamed in, so
			// only the final frame's fold and the scale/assembly pass
			// over the accumulators remain — each one angle's share of
			// the full reconstruction.
			d = 2 * full / time.Duration(scan.NAngles)
		}
		p.Sleep(d)
		return nil
	})
	if err == nil {
		err = fc.Task("send_preview_slices", flow.TaskOptions{}, func(context.Context) error {
			// Three 2160×2560 float32 slices ≈ 66 MB over the WAN.
			sliceBytes := int64(3 * 4 * scan.Rows * scan.Cols)
			_, terr := b.Network.Transfer(p, SiteNERSC, SiteALS, sliceBytes)
			return terr
		})
	}
	fc.Complete(err)
	return p.Now().Sub(start), err
}

package core

import (
	"context"
	"time"

	"repro/internal/facility"
	"repro/internal/faults"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Telemetry signal names the standard wiring registers. Facilities are
// the WAN sites (SiteNERSC, SiteALCF) plus SiteALS for the beamline-side
// SLO signals.
const (
	SigWANDown      = "wan_down"
	SigWANBandwidth = "wan_bandwidth_bps"
	SigWANUtil      = "wan_utilization"
	SigQueueDepth   = "slurm_queue_depth"
	SigSFAPIDown    = "sfapi_down"
)

// Standard probe names.
const (
	ProbeSFAPIPing = "sfapi_ping"
	ProbeWANNERSC  = "wan_echo_nersc"
	ProbeWANALCF   = "wan_echo_alcf"
	ProbeQueueRT   = "queue_rt"
	ProbePilotRT   = "pilot_rt"
)

// probeEchoBytes sizes the synthetic WAN echo transfer: small enough to
// be negligible load (64 MB ≈ 51 ms at the nominal 10 Gbps), large
// enough that bandwidth decay shows in its latency.
const probeEchoBytes = int64(64 << 20)

// probeJobBody is the virtual compute a queue-submit round-trip holds a
// node for.
const probeJobBody = 5 * time.Second

// NewTelemetryPlane wires the telemetry plane onto the beamline's
// existing services: per-facility WAN signals from simnet, Slurm queue
// depth and SFAPI outage state from the facility layer, SLO
// attainment/burn for the named objectives, the standard scoring rules,
// and the synthetic probes. Registration order is fixed, so the sampled
// tick stream is deterministic. objFacility maps each objective name to
// the facility its attainment scores against.
func (b *Beamline) NewTelemetryPlane(metrics *monitor.Registry, cfg telemetry.Config, objFacility map[string]string) *telemetry.Plane {
	pl := telemetry.New(b.Engine, b.Journal, metrics, cfg)
	nominal := b.Cfg.WANBandwidth

	for _, fac := range []string{SiteNERSC, SiteALCF} {
		fac := fac
		link, err := b.Network.Link(SiteALS, fac)
		if err != nil {
			continue
		}
		pl.RegisterSignal(SigWANDown, fac, func(time.Time) (float64, bool) {
			if link.Down {
				return 1, true
			}
			return 0, true
		})
		pl.RegisterSignal(SigWANBandwidth, fac, func(time.Time) (float64, bool) {
			return link.Bandwidth, true
		})
		pl.RegisterSignal(SigWANUtil, fac, func(now time.Time) (float64, bool) {
			return link.WindowedUtilization(now, 5*time.Minute), true
		})
	}
	pl.RegisterSignal(SigQueueDepth, SiteNERSC, func(time.Time) (float64, bool) {
		return float64(b.Perlmutter.QueueDepth("cpu")), true
	})
	pl.RegisterSignal(SigSFAPIDown, SiteNERSC, func(time.Time) (float64, bool) {
		if b.Perlmutter.Down() {
			return 1, true
		}
		return 0, true
	})
	// SLO attainment and burn per objective, attributed to the facility
	// whose health they evidence.
	for _, obj := range sortedObjFacility(objFacility) {
		name, fac := obj[0], obj[1]
		pl.RegisterSignal("slo_attainment_"+name, fac, func(time.Time) (float64, bool) {
			for _, r := range b.SLO.Report() {
				if r.Name == name {
					return r.Attainment, true
				}
			}
			return 0, false
		})
		pl.RegisterSignal("slo_burn_"+name, fac, func(time.Time) (float64, bool) {
			rate, _ := b.SLO.BurnState(name)
			return rate, true
		})
	}

	pl.AddRules(b.defaultRules(nominal, objFacility)...)
	b.addStandardProbes(pl)

	// Probe latency quantiles close the loop: the bucketed monitor
	// estimates re-enter the series store as sampled signals.
	if metrics != nil {
		for _, pr := range []struct{ name, fac string }{
			{ProbeSFAPIPing, SiteNERSC}, {ProbeQueueRT, SiteNERSC},
			{ProbeWANNERSC, SiteNERSC}, {ProbeWANALCF, SiteALCF}, {ProbePilotRT, SiteALCF},
		} {
			pl.RegisterHistogramQuantile(
				monitor.SeriesName("probe_latency_seconds", monitor.L("probe", pr.name)), pr.fac, 0.95)
		}
	}
	return pl
}

// sortedObjFacility flattens the objective→facility map into a
// deterministic slice ordered by objective name.
func sortedObjFacility(m map[string]string) [][2]string {
	out := make([][2]string, 0, len(m))
	for name, fac := range m {
		out = append(out, [2]string{name, fac})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j][0] < out[j-1][0]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// defaultRules is the declared scoring rule set. Penalties are tiered so
// one degradation lands a facility in Degraded and compounding failures
// push it Down: WAN halved = 30, WAN quartered = +40, SFAPI outage = 40
// (+10 each for the probes it fails), queue backlog = 30.
func (b *Beamline) defaultRules(nominal float64, objFacility map[string]string) []telemetry.Rule {
	rules := []telemetry.Rule{}
	for _, fac := range []string{SiteNERSC, SiteALCF} {
		rules = append(rules,
			telemetry.Rule{Name: "wan_down_" + fac, Facility: fac, Series: SigWANDown,
				Agg: "last", Window: 2 * time.Minute, Op: ">=", Threshold: 1,
				Penalty: 100, Reason: "WAN link down"},
			telemetry.Rule{Name: "wan_degraded_" + fac, Facility: fac, Series: SigWANBandwidth,
				Agg: "last", Window: 2 * time.Minute, Op: "<", Threshold: 0.5 * nominal,
				Penalty: 30, Reason: "WAN bandwidth below 50% of nominal"},
			telemetry.Rule{Name: "wan_collapsed_" + fac, Facility: fac, Series: SigWANBandwidth,
				Agg: "last", Window: 2 * time.Minute, Op: "<", Threshold: 0.25 * nominal,
				Penalty: 40, Reason: "WAN bandwidth below 25% of nominal"},
		)
	}
	rules = append(rules,
		telemetry.Rule{Name: "sfapi_outage", Facility: SiteNERSC, Series: SigSFAPIDown,
			Agg: "last", Window: 2 * time.Minute, Op: ">=", Threshold: 1,
			Penalty: 40, Reason: "SFAPI submission outage"},
		telemetry.Rule{Name: "sfapi_ping_failing", Facility: SiteNERSC, Series: "probe_" + ProbeSFAPIPing + "_ok",
			Agg: "last", Window: 10 * time.Minute, Op: "<", Threshold: 1,
			Penalty: 10, Reason: "SFAPI ping failing"},
		telemetry.Rule{Name: "queue_rt_failing", Facility: SiteNERSC, Series: "probe_" + ProbeQueueRT + "_ok",
			Agg: "last", Window: 15 * time.Minute, Op: "<", Threshold: 1,
			Penalty: 10, Reason: "queue round-trip failing"},
		telemetry.Rule{Name: "queue_backlog", Facility: SiteNERSC, Series: SigQueueDepth,
			Agg: "last", Window: 2 * time.Minute, Op: ">=", Threshold: 8,
			Penalty: 30, Reason: "batch queue backlog"},
	)
	for _, obj := range sortedObjFacility(objFacility) {
		name, fac := obj[0], obj[1]
		rules = append(rules, telemetry.Rule{
			Name: "slo_burn_" + name, Facility: fac, Series: "slo_burn_" + name,
			Agg: "last", Window: 2 * time.Minute, Op: ">=", Threshold: 2,
			Penalty: 10, Reason: "SLO error budget burning: " + name,
		})
	}
	return rules
}

// addStandardProbes registers the synthetic end-to-end checks as plane
// probes: an SFAPI ping, a small WAN echo transfer per facility, a
// queue-submit round-trip on Perlmutter's realtime QOS, and a pilot
// round-trip on Polaris.
func (b *Beamline) addStandardProbes(pl *telemetry.Plane) {
	interval := 2 * time.Minute
	pl.AddProbe(ProbeSFAPIPing, SiteNERSC, interval, func(ctx context.Context, p *sim.Proc) error {
		// The control-plane round trip: a WAN RTT, failed outright while
		// the submission API is down.
		if b.Perlmutter.Down() {
			return faults.Errorf(faults.Transient, "telemetry: sfapi ping: submission API unavailable")
		}
		p.Sleep(2 * b.Cfg.WANLatency)
		return nil
	})
	pl.AddProbe(ProbeWANNERSC, SiteNERSC, interval, func(ctx context.Context, p *sim.Proc) error {
		_, err := b.Network.Transfer(p, SiteALS, SiteNERSC, probeEchoBytes)
		return err
	})
	pl.AddProbe(ProbeWANALCF, SiteALCF, interval, func(ctx context.Context, p *sim.Proc) error {
		_, err := b.Network.Transfer(p, SiteALS, SiteALCF, probeEchoBytes)
		return err
	})
	pl.AddProbe(ProbeQueueRT, SiteNERSC, interval, func(ctx context.Context, p *sim.Proc) error {
		_, err := b.Perlmutter.Submit(ctx, p, facility.JobSpec{
			Name: "telemetry-probe", Partition: "cpu", QOS: "realtime", Nodes: 1,
			Run: func(ctx context.Context, p *sim.Proc) error {
				p.Sleep(probeJobBody)
				return nil
			},
		})
		return err
	})
	pl.AddProbe(ProbePilotRT, SiteALCF, interval, func(ctx context.Context, p *sim.Proc) error {
		return b.Polaris.Execute(ctx, p, func(ctx context.Context, p *sim.Proc) error {
			p.Sleep(probeJobBody)
			return nil
		})
	})
}

package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/phantom"
	"repro/internal/tomo"
	"repro/internal/vol"
)

// evolveProppant returns a propped fracture whose aperture closes over
// time — the §6 / in-situ creep scenario: the fracture narrows from 24%
// to 8% of the volume height.
func evolveProppant(t float64) *vol.Volume {
	p := phantom.DefaultProppant()
	p.FractureW = 0.24 - 0.16*t
	return phantom.Proppant(p, 32, 12)
}

func TestReconstruct4DTracksEvolution(t *testing.T) {
	theta := tomo.UniformAngles(48)
	acqs := Acquire4D(evolveProppant, 4, theta, tomo.AcquireOptions{I0: 5e4, Seed: 1})
	stamps := make([]time.Time, 4)
	for i := range stamps {
		stamps[i] = epoch.Add(time.Duration(i) * 10 * time.Minute)
	}
	ts, err := Reconstruct4D(context.Background(), "creep-4d", acqs, stamps,
		tomo.ReconOptions{Algorithm: tomo.AlgFBP, Filter: tomo.SheppLoganFilter})
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Steps) != 4 {
		t.Fatalf("steps = %d", len(ts.Steps))
	}
	for i, s := range ts.Steps {
		if s.Volume.W != 32 || s.Volume.D != 12 {
			t.Fatalf("step %d dims %dx%dx%d", i, s.Volume.W, s.Volume.H, s.Volume.D)
		}
		if !s.Time.Equal(stamps[i]) {
			t.Fatalf("step %d time %v", i, s.Time)
		}
		if s.ReconMS <= 0 {
			t.Fatal("recon time not recorded")
		}
	}
	// The physical signal: solid fraction increases monotonically as the
	// fracture closes.
	solid := ts.Metric(func(v *vol.Volume) float64 { return v.FractionAbove(0.25) })
	if solid[len(solid)-1] <= solid[0]+0.05 {
		t.Fatalf("solid fraction did not rise as fracture closes: %v", solid)
	}
	for i := 1; i < len(solid); i++ {
		// Allow small noise-induced dips, not reversals.
		if solid[i] < solid[i-1]-0.02 {
			t.Fatalf("solid fraction reversed at step %d: %v", i, solid)
		}
	}
}

func TestReconstruct4DDefaultsAndErrors(t *testing.T) {
	if _, err := Reconstruct4D(context.Background(), "x", nil, nil, tomo.ReconOptions{}); err == nil {
		t.Fatal("empty series should error")
	}
	theta := tomo.UniformAngles(16)
	acqs := Acquire4D(evolveProppant, 2, theta, tomo.AcquireOptions{I0: 1e4, Seed: 1})
	if _, err := Reconstruct4D(context.Background(), "x", acqs, make([]time.Time, 1), tomo.ReconOptions{}); err == nil {
		t.Fatal("timestamp length mismatch should error")
	}
	// nil stamps allowed.
	ts, err := Reconstruct4D(context.Background(), "x", acqs, nil, tomo.ReconOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Steps) != 2 {
		t.Fatalf("steps = %d", len(ts.Steps))
	}
	// Context cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Reconstruct4D(ctx, "x", acqs, nil, tomo.ReconOptions{}); err == nil {
		t.Fatal("cancelled 4D should error")
	}
}

func TestAcquire4DDistinctSeeds(t *testing.T) {
	theta := tomo.UniformAngles(8)
	acqs := Acquire4D(func(t float64) *vol.Volume {
		return phantom.SheppLogan3D(16, 2) // static sample
	}, 2, theta, tomo.AcquireOptions{I0: 1e4, Seed: 5})
	same := true
	for i := range acqs[0].Raw.Data {
		if acqs[0].Raw.Data[i] != acqs[1].Raw.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("timesteps should have independent noise realizations")
	}
}

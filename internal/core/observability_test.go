package core

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"testing"

	"repro/internal/obslog"
	"repro/internal/slo"
)

// TestCampaignJournalPopulated drives a small campaign and checks the
// journal captured a run-correlated timeline across every layer: flow
// lifecycle, transfer outcomes, and facility job transitions.
func TestCampaignJournalPopulated(t *testing.T) {
	b := newTestBeamline()
	b.RunProductionCampaign(nil, 10, 10)

	if b.Journal.Len() == 0 {
		t.Fatal("campaign produced an empty journal")
	}
	for _, component := range []string{"flow", "transfer", "facility"} {
		evs := b.Journal.Events(obslog.Filter{Component: component})
		if len(evs) == 0 {
			t.Errorf("no events from component %q", component)
		}
	}
	// Flow completions must be run-correlated.
	completed := 0
	for _, e := range b.Journal.Events(obslog.Filter{Component: "flow"}) {
		if e.Msg == "run completed" {
			completed++
			if e.Run <= 0 {
				t.Errorf("run completed event without a run ID: %+v", e)
			}
		}
	}
	if completed == 0 {
		t.Fatal("no run-completed events journaled")
	}
	// Filtering by run isolates one run's timeline, start before finish.
	run1 := b.Journal.Events(obslog.Filter{Run: 1})
	if len(run1) < 2 {
		t.Fatalf("run 1 timeline too short: %d events", len(run1))
	}
	for _, e := range run1 {
		if e.Run != 1 {
			t.Fatalf("run filter leaked event %+v", e)
		}
	}
	if run1[0].Msg != "run started" {
		t.Errorf("run 1 timeline starts with %q, want run started", run1[0].Msg)
	}

	// The SLO engine saw the campaign: both flow-fed objectives and the
	// transfer success-rate objective accumulated samples.
	bySource := map[string]slo.ObjectiveReport{}
	for _, r := range b.SLO.Report() {
		bySource[r.Source] = r
	}
	for _, source := range []string{"flow:streaming_recon", "flow:nersc_recon_flow", "transfer"} {
		r, ok := bySource[source]
		if !ok {
			t.Fatalf("no objective for source %q", source)
		}
		if r.Samples == 0 {
			t.Errorf("objective %s saw no samples", r.Name)
		}
		if r.Attainment < 0 || r.Attainment > 1 {
			t.Errorf("objective %s attainment %v out of range", r.Name, r.Attainment)
		}
	}
	// The healthy default calibration mostly meets the paper's streaming
	// target (the largest 30+ GB scans legitimately exceed 10 s, so a
	// small campaign can dip below the 95% goal without being broken).
	if r := bySource["flow:streaming_recon"]; r.Attainment < 0.8 {
		t.Errorf("streaming attainment %v on the healthy calibration", r.Attainment)
	}
}

// TestEventsAndSLOEndpoints exercises the HTTP surface the flowserver
// mounts: /api/events with filters and /api/slo.
func TestEventsAndSLOEndpoints(t *testing.T) {
	b := newTestBeamline()
	b.RunProductionCampaign(nil, 6, 6)

	get := func(url string) ([]byte, int) {
		t.Helper()
		rec := httptest.NewRecorder()
		switch {
		case len(url) >= 11 && url[:11] == "/api/events":
			b.Journal.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		default:
			b.SLO.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		}
		body, err := io.ReadAll(rec.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body, rec.Code
	}

	body, code := get("/api/events?component=flow&level=info&limit=5")
	if code != 200 {
		t.Fatalf("/api/events code %d: %s", code, body)
	}
	var events struct {
		Total   int            `json:"total"`
		LastSeq uint64         `json:"last_seq"`
		Events  []obslog.Event `json:"events"`
	}
	if err := json.Unmarshal(body, &events); err != nil {
		t.Fatalf("decode /api/events: %v", err)
	}
	if events.Total == 0 || events.LastSeq == 0 {
		t.Fatalf("empty events envelope: %+v", events)
	}
	if len(events.Events) == 0 || len(events.Events) > 5 {
		t.Fatalf("limit=5 returned %d events", len(events.Events))
	}
	for _, e := range events.Events {
		if e.Component != "flow" {
			t.Errorf("component filter leaked %+v", e)
		}
		if e.Level < obslog.LevelInfo {
			t.Errorf("level filter leaked %+v", e)
		}
	}

	body, code = get("/api/slo")
	if code != 200 {
		t.Fatalf("/api/slo code %d: %s", code, body)
	}
	var rep struct {
		Objectives []slo.ObjectiveReport `json:"objectives"`
		Alerts     []slo.Alert           `json:"alerts"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("decode /api/slo: %v", err)
	}
	if len(rep.Objectives) != 3 {
		t.Fatalf("objectives = %d, want 3", len(rep.Objectives))
	}
	if rep.Alerts == nil {
		t.Fatal("alerts must decode as a list, not null")
	}
}

// TestJournalByteIdenticalAcrossRuns is the determinism property the
// check.sh gate enforces end to end: two campaigns from the same seed
// produce byte-identical JSONL journals, timestamps included.
func TestJournalByteIdenticalAcrossRuns(t *testing.T) {
	dump := func() []byte {
		b := newTestBeamline()
		b.RunProductionCampaign(nil, 8, 8)
		var buf bytes.Buffer
		if err := b.Journal.WriteJSONL(&buf, obslog.Filter{}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, bb := dump(), dump()
	if len(a) == 0 {
		t.Fatal("empty journal dump")
	}
	if !bytes.Equal(a, bb) {
		t.Fatalf("journals differ across identical runs (%d vs %d bytes)", len(a), len(bb))
	}
}

// TestStreamingLatencyBurnsErrorBudget injects latency into the streaming
// GPU model — 50× slower than calibration, pushing every preview far past
// the paper's 10 s objective — and expects the SLO engine to notice: the
// error budget burns, the alert rule fires, and the alert lands in the
// journal as an error-level event.
func TestStreamingLatencyBurnsErrorBudget(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.StreamGPURate /= 50
	b := NewBeamline(epoch, cfg)
	b.RunProductionCampaign(nil, 8, 8)

	var streaming slo.ObjectiveReport
	for _, r := range b.SLO.Report() {
		if r.Source == "flow:"+FlowStreaming {
			streaming = r
		}
	}
	if streaming.Name == "" {
		t.Fatal("streaming objective missing from report")
	}
	if streaming.Attainment > 0.5 {
		t.Fatalf("injected latency barely missed: attainment %v", streaming.Attainment)
	}
	if !streaming.Firing {
		t.Fatalf("burn-rate alert not firing: %+v", streaming)
	}
	fired := false
	for _, a := range b.SLO.Alerts() {
		if a.Objective == streaming.Name && a.State == "firing" {
			fired = true
			if a.BurnRate < streaming.Objective.BurnThreshold {
				t.Errorf("firing alert below threshold: %+v", a)
			}
		}
	}
	if !fired {
		t.Fatal("no firing transition recorded")
	}
	sloEvents := b.Journal.Events(obslog.Filter{Component: "slo", MinLevel: obslog.LevelError})
	if len(sloEvents) == 0 {
		t.Fatal("alert did not reach the journal")
	}
	if sloEvents[0].Msg != "error budget burning too fast" {
		t.Errorf("alert event msg = %q", sloEvents[0].Msg)
	}
}

package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/flow"
	"repro/internal/sim"
	"repro/internal/transfer"
)

func TestGatedCampaignBoundsHPCConcurrency(t *testing.T) {
	b := newTestBeamline()
	pools := NewWorkerPools(b.Engine)
	res := b.RunGatedCampaign(nil, pools, 30)
	for _, row := range res.Rows {
		if row.Summary.N != 30 {
			t.Fatalf("%s: N=%d", row.Flow, row.Summary.N)
		}
	}
	for name, rate := range res.SuccessRate {
		if rate != 1 {
			t.Errorf("%s success rate %v", name, rate)
		}
	}
	// With 60 HPC flows through 2 slots, the pool must have queued.
	if pools.HPC.PeakQueue() == 0 {
		t.Error("HPC pool never queued; the concurrency gate did nothing")
	}
	// Staging at width 8 with ~1-2 min flows and 3-5 min cadence should
	// queue rarely or never.
	if pools.Staging.PeakQueue() > pools.HPC.PeakQueue() {
		t.Errorf("staging queue %d exceeds HPC queue %d; gating inverted",
			pools.Staging.PeakQueue(), pools.HPC.PeakQueue())
	}
}

func TestScheduledPruningKeepsTiersBounded(t *testing.T) {
	b := newTestBeamline()
	// Shrink retention so pruning visibly reclaims within the test
	// horizon.
	b.Detector.Retention = 2 * time.Hour
	b.DataSrv.Retention = 2 * time.Hour
	b.StartPruningFlows(1*time.Hour, 12*time.Hour)
	b.Engine.Go("scans", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			scan, err := b.NewScan(p, i)
			if err != nil {
				t.Error(err)
				return
			}
			b.NewFile832Flow(nil, p, scan)
			p.Sleep(10 * time.Minute)
		}
	})
	b.Engine.Run()
	if b.Detector.PrunedBytes == 0 || b.DataSrv.PrunedBytes == 0 {
		t.Fatalf("pruning reclaimed nothing: detector %d, datasrv %d",
			b.Detector.PrunedBytes, b.DataSrv.PrunedBytes)
	}
	runs := b.Flows.Runs(FlowPrune)
	if len(runs) != 12 {
		t.Fatalf("prune rounds = %d, want 12 hourly rounds", len(runs))
	}
	// The tiers hold far less than the total produced.
	if b.Detector.Used() >= 40*18e9 {
		t.Fatalf("detector still holds %d bytes; retention not enforced", b.Detector.Used())
	}
}

func TestCampaignWithTransientFaultsStillSucceeds(t *testing.T) {
	// Transient WAN faults are absorbed by transfer retries and flow
	// retries: the success rate stays 100% but retries are recorded.
	b := newTestBeamline()
	b.Transfer.RetryDelay = 5 * time.Second
	n := 0
	b.Transfer.Fault = func(task *transfer.Task, path string, attempt int) error {
		n++
		if n%7 == 0 && attempt == 0 {
			return errors.New("transient network blip")
		}
		return nil
	}
	res := b.RunProductionCampaign(nil, 20, 20)
	for name, rate := range res.SuccessRate {
		if rate != 1 {
			t.Errorf("%s success rate %v with transient faults", name, rate)
		}
	}
	// Retries must appear in the transfer accounting.
	var retries int
	for _, task := range b.Transfer.Tasks() {
		retries += task.Retries
	}
	if retries == 0 {
		t.Fatal("no retries recorded despite injected faults")
	}
}

func TestCampaignWithPermanentFaultsShowsInSuccessRate(t *testing.T) {
	// A permanently broken path fails its flows; the orchestration
	// dashboard shows the degraded success rate (§5.1.3).
	b := newTestBeamline()
	b.Transfer.Fault = func(task *transfer.Task, path string, attempt int) error {
		if strings.Contains(task.Label, "raw→eagle") {
			return faults.Errorf(faults.Permanent, "eagle export down")
		}
		return nil
	}
	res := b.RunProductionCampaign(nil, 10, 10)
	if res.SuccessRate[FlowALCF] != 0 {
		t.Fatalf("alcf success rate %v, want 0 with eagle down", res.SuccessRate[FlowALCF])
	}
	if res.SuccessRate[FlowNERSC] != 1 {
		t.Fatalf("nersc success rate %v; unrelated flows must be unaffected", res.SuccessRate[FlowNERSC])
	}
	// Failed runs carry the error through the API.
	for _, run := range b.Flows.Runs(FlowALCF) {
		if run.State != flow.Failed || !strings.Contains(run.Err, "eagle export down") {
			t.Fatalf("run %+v", run)
		}
	}
}

// Package core is the reproduction of the paper's primary contribution:
// the splash-flows orchestration that connects the ALS microtomography
// beamline to NERSC and ALCF. It provides (a) a simulated multi-facility
// environment on the discrete-event kernel that reproduces the paper's
// production timing distributions (Table 2, streaming latency, data
// lifecycle, the prune incident), and (b) a real-time mini-pipeline that
// runs actual reconstructions end to end for the examples: PVA streaming,
// DXchange files, transfers, reconstruction, multiscale output, catalog
// ingest, and preview delivery.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/facility"
	"repro/internal/flow"
	"repro/internal/obslog"
	"repro/internal/scicat"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/slo"
	"repro/internal/storage"
	"repro/internal/transfer"
)

// Site names used for WAN routing.
const (
	SiteALS   = "als"
	SiteNERSC = "nersc"
	SiteALCF  = "alcf"
)

// Endpoint names registered with the transfer service.
const (
	EPBeamline = "als-beamline"
	EPCFS      = "nersc-cfs"
	EPScratch  = "nersc-pscratch"
	EPEagle    = "alcf-eagle"
	EPHPSS     = "nersc-hpss"
)

// Flow names, matching the paper's Table 2 rows.
const (
	FlowNewFile   = "new_file_832"
	FlowNERSC     = "nersc_recon_flow"
	FlowALCF      = "alcf_recon_flow"
	FlowPrune     = "prune_flow"
	FlowStreaming = "streaming_recon"
)

// Scan describes one acquisition moving through the pipeline.
type Scan struct {
	ID       string
	Sample   string
	RawBytes int64
	// NAngles/Rows/Cols describe the acquisition geometry (used by the
	// compute-time models).
	NAngles, Rows, Cols int
	Acquired            time.Time
}

// DerivedBytes returns the size of the reconstruction products: the paper
// reports 40–60 GB derived from 20–30 GB raw (TIFF stack + multiscale
// Zarr), i.e. about 2× raw.
func (s *Scan) DerivedBytes() int64 { return 2 * s.RawBytes }

// SimConfig parameterizes the simulated environment. Defaults follow the
// paper's §4–§5 descriptions.
type SimConfig struct {
	Seed int64

	// WAN links (ESnet): ALS↔NERSC and ALS↔ALCF.
	WANBandwidth float64
	WANLatency   time.Duration

	// Beamline staging throughput (acquisition server → data server over
	// the beamline LAN/NFS).
	StagingBandwidth float64
	// StagingSlowProb is the chance a staging copy hits shared-NFS
	// contention; the copy is slowed by a uniform factor up to
	// StagingSlowMax. This produces the long right tail of the paper's
	// new_file_832 row (max 676 s against a 56 s median).
	StagingSlowProb float64
	StagingSlowMax  float64

	// NERSC batch behaviour.
	PerlmutterNodes  int
	RealtimeBusyProb float64       // chance the realtime slot is occupied
	RealtimeBusyMax  time.Duration // max residual wait when busy

	// ALCF pilot behaviour.
	PolarisWorkers   int
	PolarisColdStart time.Duration

	// Streaming GPU node: seconds of reconstruction per raw byte. The
	// paper's 4-GPU node does ~20 GB in 7.5 s.
	StreamGPURate float64 // bytes per second
	// StreamIncremental switches the streaming branch to the incremental
	// accumulator: each projection is filtered and backprojected as it
	// arrives during acquisition, so after the final frame only one
	// angle's fold plus the scale/assembly pass remain instead of a full
	// reconstruction (see tomo.IncrementalRecon for the real kernel).
	StreamIncremental bool

	// File-based reconstruction models (see flows.go).
	NERSCReconFixed time.Duration // per-job setup (container, preproc warmup)
	NERSCReconRate  float64       // raw bytes per second on a 128-core node
	ALCFReconFixed  time.Duration
	ALCFReconRate   float64
}

// DefaultSimConfig returns the calibration that reproduces the paper's
// Table 2 distributions.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		Seed:             832,
		WANBandwidth:     10 * simnet.Gbps,
		WANLatency:       20 * time.Millisecond,
		StagingBandwidth: 1.15e9, // high-throughput NFS staging volume
		StagingSlowProb:  0.20,
		StagingSlowMax:   30,
		PerlmutterNodes:  8,
		RealtimeBusyProb: 0.30,
		RealtimeBusyMax:  5 * time.Minute,
		PolarisWorkers:   6,
		PolarisColdStart: 3 * time.Minute,
		StreamGPURate:    20e9 / 7.5,
		NERSCReconFixed:  5 * time.Minute,
		NERSCReconRate:   21e6, // raw bytes/s on a 128-core CPU node
		ALCFReconFixed:   690 * time.Second,
		ALCFReconRate:    80e6, // raw bytes/s on a Polaris pilot worker
	}
}

// FastSimConfig is DefaultSimConfig with the stochastic tails stripped
// and reconstruction shrunk so a campaign turns scans over in minutes of
// sim time instead of hours — the calibration campaign tests and
// fast_sim scenario specs run under. Seeded determinism is unchanged.
func FastSimConfig() SimConfig {
	cfg := DefaultSimConfig()
	cfg.StagingSlowProb = 0
	cfg.RealtimeBusyProb = 0
	cfg.NERSCReconFixed = time.Minute
	cfg.NERSCReconRate = 1e9
	cfg.ALCFReconFixed = time.Minute
	cfg.ALCFReconRate = 1e9
	cfg.PolarisColdStart = time.Minute
	return cfg
}

// Beamline is the assembled simulated environment. NewBeamline builds a
// standalone endstation owning every facility service; a Campaign builds
// N Beamline views that share one engine, network, transfer service,
// flow server, and facility pool, differing only in identity (Name),
// scan namespace, and random stream.
type Beamline struct {
	Cfg SimConfig

	// Name identifies the endstation — the paper's ALS microtomography
	// beamline is "8.3.2"; campaign beamlines are "bl0", "bl1", ….
	// It labels SciCat ingests and scheduler tenants.
	Name string

	Engine   *sim.Engine
	Network  *simnet.Network
	Transfer *transfer.Service
	Flows    *flow.Server
	Catalog  *scicat.Catalog
	// Journal is the run-correlated event timeline, stamped on the sim
	// clock; flow.Start injects it into every run's context.
	Journal *obslog.Journal
	// SLO judges flow completions and transfer tasks against the paper's
	// latency objectives, firing alert events into Journal.
	SLO *slo.Engine

	// Storage tiers (paper §4.3).
	Detector *storage.Store // acquisition server
	DataSrv  *storage.Store // beamline data server (Globus endpoint)
	CFS      *storage.Store
	Scratch  *storage.Store
	Eagle    *storage.Store
	HPSS     *storage.Store

	Perlmutter *facility.Cluster
	Polaris    *facility.PilotEndpoint

	rng *rand.Rand
	// scanPrefix namespaces scan IDs (and therefore storage paths), so
	// campaign beamlines can share facility stores without collisions.
	scanPrefix string
}

// NewBeamline builds the environment at the given epoch.
func NewBeamline(epoch time.Time, cfg SimConfig) *Beamline {
	e := sim.New(epoch)
	net := simnet.New(e)
	net.AddLink(SiteALS, SiteNERSC, cfg.WANBandwidth, cfg.WANLatency)
	net.AddLink(SiteALS, SiteALCF, cfg.WANBandwidth, 2*cfg.WANLatency)

	b := &Beamline{
		Cfg:        cfg,
		Name:       "8.3.2",
		Engine:     e,
		Network:    net,
		Flows:      flow.NewServer(),
		Catalog:    scicat.New(),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		scanPrefix: "20260704",
	}
	// The observability layer: a sim-clocked journal wired through the
	// flow server (which injects it into every run's context) and an SLO
	// engine fed by flow completions and transfer task outcomes.
	b.Journal = obslog.New(e, 0)
	b.SLO = slo.NewEngine(e, b.Journal, slo.PaperObjectives()...)
	b.Flows.SetJournal(b.Journal)
	b.Flows.SetObserver(b.SLO)

	b.Detector = storage.New(e, storage.Config{
		Name: "detector", WriteBW: 1 << 30, ReadBW: 4 << 30,
		Retention: 7 * 24 * time.Hour,
	})
	b.DataSrv = storage.New(e, storage.Config{
		Name: "beamline-data", WriteBW: cfg.StagingBandwidth, ReadBW: 2 << 30,
		Retention: 14 * 24 * time.Hour,
	})
	b.CFS = storage.New(e, storage.Config{
		Name: "cfs", WriteBW: 2 << 30, ReadBW: 2 << 30,
		Retention: 365 * 24 * time.Hour,
	})
	b.Scratch = storage.New(e, storage.Config{
		Name: "pscratch", WriteBW: 8 << 30, ReadBW: 8 << 30,
		Retention: 30 * 24 * time.Hour,
	})
	b.Eagle = storage.New(e, storage.Config{
		Name: "eagle", WriteBW: 2 << 30, ReadBW: 2 << 30,
		Retention: 180 * 24 * time.Hour,
	})
	b.HPSS = storage.New(e, storage.Config{
		Name: "hpss", WriteBW: 1 << 30, ReadBW: 512 << 20,
		Latency: 90 * time.Second,
	})

	b.Transfer = transfer.NewService(e, net)
	b.Transfer.Observer = func(ctx context.Context, t *transfer.Task) {
		b.SLO.Record(ctx, "transfer", t.Duration(), t.State == transfer.Succeeded)
	}
	b.Transfer.AddEndpoint(EPBeamline, SiteALS, b.DataSrv)
	b.Transfer.AddEndpoint(EPCFS, SiteNERSC, b.CFS)
	b.Transfer.AddEndpoint(EPScratch, SiteNERSC, b.Scratch)
	b.Transfer.AddEndpoint(EPEagle, SiteALCF, b.Eagle)
	b.Transfer.AddEndpoint(EPHPSS, SiteNERSC, b.HPSS)

	b.Perlmutter = facility.NewCluster(e, "perlmutter")
	b.Perlmutter.AddPartition("cpu", cfg.PerlmutterNodes, map[string]int{
		"realtime": 100, "regular": 0,
	})
	b.Polaris = facility.NewPilotEndpoint(e, "polaris", cfg.PolarisWorkers, cfg.PolarisColdStart)
	return b
}

// ScanSizeMix draws a raw size from the production mix the paper
// describes: most scans are full scientific acquisitions of 18–34 GB
// ("typical scientific scans are between 20–30 GB"), with a minority of
// cropped test scans of a few MB and reduced scans in between ("cropped
// test scans produce small files of only a few MB"). The bimodal shape is
// what makes the paper's nersc_recon_flow row left-skewed (median 1665 >
// mean 1525): small scans form a short-duration tail below a large-scan
// bulk.
func (b *Beamline) ScanSizeMix() int64 {
	u := b.rng.Float64()
	switch {
	case u < 0.10: // cropped test scans: 4–400 MB
		return int64(4e6 + b.rng.Float64()*396e6)
	case u < 0.25: // reduced scans: 0.5–10 GB
		return int64(0.5e9 + b.rng.Float64()*9.5e9)
	default: // full scientific scans: 18–34 GB
		return int64(18e9 + b.rng.Float64()*16e9)
	}
}

// NewScan fabricates scan number i with a size drawn from the mix and
// writes its raw file on the detector store.
func (b *Beamline) NewScan(p *sim.Proc, i int) (*Scan, error) {
	scan := &Scan{
		ID:       fmt.Sprintf("%s_%05d", b.scanPrefix, i),
		Sample:   fmt.Sprintf("sample-%03d", i%17),
		RawBytes: b.ScanSizeMix(),
		NAngles:  1969, Rows: 2160, Cols: 2560,
		Acquired: p.Now(),
	}
	path := rawPath(scan)
	if err := b.Detector.Put(p, path, scan.RawBytes, "sha256:"+scan.ID); err != nil {
		return nil, err
	}
	return scan, nil
}

func rawPath(s *Scan) string     { return "raw/" + s.ID + ".h5" }
func reconPath(s *Scan) string   { return "rec/" + s.ID + "/" }
func reconFile(s *Scan) string   { return "rec/" + s.ID + "/vol.zarr" }
func tiffPath(s *Scan) string    { return "rec/" + s.ID + "/tiff" }
func archivePath(s *Scan) string { return "archive/" + s.ID + ".tar" }

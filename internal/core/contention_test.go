package core

import (
	"testing"
	"time"
)

func TestContentionLowLoadBothPoliciesFine(t *testing.T) {
	// 2 beamlines, 4 GPUs, 4-minute cadence: utilization is tiny; both
	// policies give near-pure recon latency and full budget compliance.
	for _, reserved := range []bool{false, true} {
		res := RunStreamingContention(epoch, 2, 4, 10, 4*time.Minute, reserved)
		if res.Under10s != 1 {
			t.Errorf("reserved=%v: %.0f%% under 10 s at low load", reserved, res.Under10s*100)
		}
		if res.Latency.Median > 8 {
			t.Errorf("reserved=%v: median %.1f s at low load", reserved, res.Latency.Median)
		}
	}
}

func TestContentionOverloadSharedDegrades(t *testing.T) {
	// 12 beamlines on 2 shared GPUs at 30-second cadence: demand is
	// 12×7.5 s of GPU work per 30 s against 60 s of capacity — queueing
	// grows without bound and the 10 s budget collapses. Reservation
	// cannot fix an undersized pool either, but it isolates the damage
	// deterministically; the interesting comparison is adequate-pool
	// sharing vs reservation below.
	shared := RunStreamingContention(epoch, 12, 2, 8, 30*time.Second, false)
	if shared.Under10s > 0.5 {
		t.Errorf("oversubscribed shared pool met budget %.0f%% of the time", shared.Under10s*100)
	}
	if shared.Latency.Max < 30 {
		t.Errorf("oversubscribed queue max latency %.1f s; expected blowup", shared.Latency.Max)
	}
}

func TestContentionModerateLoadSharingMultiplexes(t *testing.T) {
	// 4 beamlines, 4 GPUs, jittery 10 s cadence: a beamline's own bursts
	// can collide with its previous scan. With one reserved node each,
	// those self-collisions queue; the shared pool absorbs them by
	// statistical multiplexing — the argument for sharing at moderate
	// aggregate load.
	shared := RunStreamingContention(epoch, 4, 4, 12, 10*time.Second, false)
	reserved := RunStreamingContention(epoch, 4, 4, 12, 10*time.Second, true)
	if shared.Latency.Max >= reserved.Latency.Max {
		t.Errorf("pooling should absorb bursts: shared max %.1f vs reserved max %.1f",
			shared.Latency.Max, reserved.Latency.Max)
	}
	if shared.Under10s < reserved.Under10s {
		t.Errorf("shared budget compliance %.0f%% below reserved %.0f%%",
			shared.Under10s*100, reserved.Under10s*100)
	}
}

func TestContentionSaturationOnlyReservationHolds(t *testing.T) {
	// 8 beamlines against 4 shared GPUs at 20 s cadence: aggregate
	// demand (~8×7.5 s per ~20 s) approaches pool capacity and the tail
	// blows past the budget. The paper's §6 answer is economic:
	// provision a reserved node per beamline, which holds latency flat.
	shared := RunStreamingContention(epoch, 8, 4, 8, 20*time.Second, false)
	reserved := RunStreamingContention(epoch, 8, 4, 8, 20*time.Second, true)
	if shared.Under10s >= 0.99 {
		t.Errorf("saturated shared pool should miss the budget: %.0f%%", shared.Under10s*100)
	}
	if reserved.Under10s != 1 {
		t.Errorf("per-beamline reservation should hold the budget: %.0f%%", reserved.Under10s*100)
	}
	if reserved.Latency.Max > reserved.Latency.Min+1 {
		t.Errorf("reserved latency should be flat at 20 s cadence: %+v", reserved.Latency)
	}
}

func TestContentionSweepShape(t *testing.T) {
	// 12-second cadence: 8 beamlines generate 8×7.5 s = 60 s of GPU work
	// per 12 s against 48 s of shared capacity — past saturation.
	pts := ContentionSweep(epoch, 4, 6, 12*time.Second, []int{2, 8})
	if len(pts) != 4 {
		t.Fatalf("sweep points = %d", len(pts))
	}
	// The shared pool's tail must be worse at 8 beamlines than at 2.
	var shared2, shared8 ContentionResult
	for _, p := range pts {
		if !p.Reserved && p.Beamlines == 2 {
			shared2 = p
		}
		if !p.Reserved && p.Beamlines == 8 {
			shared8 = p
		}
	}
	if shared8.Latency.Max <= shared2.Latency.Max {
		t.Errorf("shared tail should grow with beamlines: %.1f vs %.1f",
			shared8.Latency.Max, shared2.Latency.Max)
	}
}

package core

import (
	"testing"
	"time"

	"repro/internal/scicat"
	"repro/internal/sim"
)

var epoch = time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)

func newTestBeamline() *Beamline {
	return NewBeamline(epoch, DefaultSimConfig())
}

func runScanThrough(t *testing.T, b *Beamline, fn func(p *sim.Proc, s *Scan) error) *Scan {
	t.Helper()
	var scan *Scan
	b.Engine.Go("test", func(p *sim.Proc) {
		var err error
		scan, err = b.NewScan(p, 1)
		if err != nil {
			t.Error(err)
			return
		}
		if err := b.NewFile832Flow(nil, p, scan); err != nil {
			t.Error(err)
			return
		}
		if fn != nil {
			if err := fn(p, scan); err != nil {
				t.Error(err)
			}
		}
	})
	b.Engine.Run()
	return scan
}

func TestNewFile832FlowStagesAndCatalogs(t *testing.T) {
	b := newTestBeamline()
	scan := runScanThrough(t, b, nil)
	if _, err := b.DataSrv.Stat(rawPath(scan)); err != nil {
		t.Fatalf("raw not staged: %v", err)
	}
	if b.Catalog.Count() != 1 {
		t.Fatalf("catalog count = %d", b.Catalog.Count())
	}
	got := b.Catalog.Search(scicat.Query{ScanID: scan.ID})
	if len(got) != 1 || got[0].SizeBytes != scan.RawBytes {
		t.Fatalf("catalog record %v", got)
	}
	runs := b.Flows.Runs(FlowNewFile)
	if len(runs) != 1 || runs[0].State != "COMPLETED" {
		t.Fatalf("flow runs %v", runs)
	}
	// The flow should take at least the fixed overhead.
	if runs[0].Duration() < 30*time.Second {
		t.Fatalf("flow duration %v below overhead floor", runs[0].Duration())
	}
}

func TestNERSCReconFlowProducesResults(t *testing.T) {
	b := newTestBeamline()
	scan := runScanThrough(t, b, func(p *sim.Proc, s *Scan) error {
		return b.NERSCReconFlow(nil, p, s)
	})
	// Raw staged to CFS and pscratch, products back on the beamline.
	if _, err := b.CFS.Stat(rawPath(scan)); err != nil {
		t.Errorf("raw not on CFS: %v", err)
	}
	if _, err := b.Scratch.Stat(rawPath(scan)); err != nil {
		t.Errorf("raw not staged to pscratch: %v", err)
	}
	if _, err := b.DataSrv.Stat(reconFile(scan)); err != nil {
		t.Errorf("zarr not returned to beamline: %v", err)
	}
	if _, err := b.DataSrv.Stat(tiffPath(scan)); err != nil {
		t.Errorf("tiff not returned to beamline: %v", err)
	}
	jobs := b.Perlmutter.Jobs()
	if len(jobs) != 1 || jobs[0].QOS != "realtime" {
		t.Fatalf("jobs %v", jobs)
	}
}

func TestALCFReconFlowProducesResults(t *testing.T) {
	b := newTestBeamline()
	scan := runScanThrough(t, b, func(p *sim.Proc, s *Scan) error {
		return b.ALCFReconFlow(nil, p, s)
	})
	if _, err := b.Eagle.Stat(rawPath(scan)); err != nil {
		t.Errorf("raw not on Eagle: %v", err)
	}
	if _, err := b.DataSrv.Stat(reconFile(scan)); err != nil {
		t.Errorf("results not returned: %v", err)
	}
	if b.Polaris.Executions != 1 {
		t.Fatalf("pilot executions = %d", b.Polaris.Executions)
	}
}

func TestArchiveFlowMovesToTape(t *testing.T) {
	b := newTestBeamline()
	scan := runScanThrough(t, b, func(p *sim.Proc, s *Scan) error {
		if err := b.NERSCReconFlow(nil, p, s); err != nil {
			return err
		}
		return b.ArchiveFlow(nil, p, s)
	})
	if _, err := b.HPSS.Stat(archivePath(scan)); err != nil {
		t.Fatalf("archive missing: %v", err)
	}
	if _, err := b.CFS.Stat(rawPath(scan)); err == nil {
		t.Fatal("raw should be released from CFS after archival")
	}
}

func TestStreamingPreviewUnderTenSeconds(t *testing.T) {
	b := newTestBeamline()
	var lat time.Duration
	b.Engine.Go("s", func(p *sim.Proc) {
		scan := &Scan{ID: "s", RawBytes: 20e9, NAngles: 1969, Rows: 2160, Cols: 2560}
		var err error
		lat, err = b.StreamingPreviewSim(nil, p, scan)
		if err != nil {
			t.Error(err)
		}
	})
	b.Engine.Run()
	if lat >= 10*time.Second {
		t.Fatalf("20 GB preview latency %v, want <10 s", lat)
	}
	if lat < 7*time.Second {
		t.Fatalf("20 GB preview latency %v unrealistically fast (paper: 7-8 s recon)", lat)
	}
}

func TestTable2Shape(t *testing.T) {
	b := newTestBeamline()
	res := b.RunProductionCampaign(nil, 60, 60)
	byFlow := map[string]Table2Row{}
	for _, r := range res.Rows {
		byFlow[r.Flow] = r
	}
	nf := byFlow[FlowNewFile].Summary
	ne := byFlow[FlowNERSC].Summary
	al := byFlow[FlowALCF].Summary

	if nf.N != 60 || ne.N != 60 || al.N != 60 {
		t.Fatalf("run counts: %d %d %d", nf.N, ne.N, al.N)
	}
	// Paper shapes: new_file is strongly right-skewed (mean >> median).
	if !(nf.Mean > nf.Median*1.3) {
		t.Errorf("new_file not right-skewed: mean %.0f median %.0f", nf.Mean, nf.Median)
	}
	// Staging is fast (~1 min median) relative to recon (~25 min median).
	if !(nf.Median < 120 && ne.Median > 1200) {
		t.Errorf("medians: new_file %.0f nersc %.0f", nf.Median, ne.Median)
	}
	// NERSC flow is left-skewed (median > mean), ALCF flow tighter than
	// NERSC in relative spread.
	if !(ne.Median > ne.Mean) {
		t.Errorf("nersc not left-skewed: mean %.0f median %.0f", ne.Mean, ne.Median)
	}
	if !(al.SD/al.Mean < ne.SD/ne.Mean) {
		t.Errorf("alcf CV %.2f should be tighter than nersc %.2f", al.SD/al.Mean, ne.SD/ne.Mean)
	}
	// Both recon flows land in the paper's 20–30 minute "file-based"
	// window at the median.
	if ne.Median < 1000 || ne.Median > 2200 {
		t.Errorf("nersc median %.0f outside plausible window", ne.Median)
	}
	if al.Median < 700 || al.Median > 1700 {
		t.Errorf("alcf median %.0f outside plausible window", al.Median)
	}
	// Streaming previews stay under 10 s even for the largest scans.
	if res.Streaming.Max >= 15 {
		t.Errorf("streaming max %.1f s", res.Streaming.Max)
	}
	if res.Streaming.Median > 10 {
		t.Errorf("streaming median %.1f s, want <10", res.Streaming.Median)
	}
	// All flows succeeded.
	for name, rate := range res.SuccessRate {
		if rate != 1 {
			t.Errorf("flow %s success rate %v", name, rate)
		}
	}
}

func TestLifecycleThroughput(t *testing.T) {
	b := newTestBeamline()
	res := b.RunLifecycle(2*time.Hour, 4*time.Minute)
	if res.Scans != 30 {
		t.Fatalf("scans = %d, want 30 in 2h at 4min", res.Scans)
	}
	// Paper: 12–20 scans/hour at peak (3–5 min cadence). The measured
	// rate includes pipeline drain time, so allow a low of 10.
	if res.ScansPerHour < 10 || res.ScansPerHour > 20 {
		t.Errorf("scans/hour = %.1f", res.ScansPerHour)
	}
	// Paper: 0.5–5 TB/day. Raw+derived at this cadence lands in-range.
	tbPerDay := res.DailyBytes / 1e12
	if tbPerDay < 0.5 || tbPerDay > 40 {
		t.Errorf("daily volume %.2f TB implausible", tbPerDay)
	}
	if res.HPSSUsed == 0 {
		t.Error("nothing archived to HPSS")
	}
	if res.CFSUsed == 0 {
		t.Error("nothing on CFS")
	}
}

func TestSpeedupOverHundredX(t *testing.T) {
	b := newTestBeamline()
	res := b.RunSpeedup()
	if res.SpeedupPreview < 100 {
		t.Fatalf("preview speedup %.0f×, paper claims >100×", res.SpeedupPreview)
	}
	if res.StreamingNow >= 10*time.Second {
		t.Fatalf("streaming latency %v", res.StreamingNow)
	}
	// The full-quality file branch is minutes, not seconds — still a
	// multiple of the historical baseline but far less than streaming.
	if res.SpeedupVolume < 2 || res.SpeedupVolume > 20 {
		t.Errorf("volume speedup %.1f× implausible", res.SpeedupVolume)
	}
}

func TestPruneIncidentFailFastWins(t *testing.T) {
	res := RunPruneIncident(epoch, 24, 4, 0.5)
	if res.LegacyMakespan <= res.FixedMakespan*3 {
		t.Errorf("legacy %v should be much slower than fixed %v",
			res.LegacyMakespan, res.FixedMakespan)
	}
	if res.LegacyPeakQ < res.FixedPeakQ {
		t.Errorf("legacy peak queue %d < fixed %d", res.LegacyPeakQ, res.FixedPeakQ)
	}
}

func TestStreamingSweep(t *testing.T) {
	pts := RunStreamingSweep(epoch, []float64{1, 5, 10, 20, 30})
	if len(pts) != 5 {
		t.Fatal("missing sweep points")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Latency <= pts[i-1].Latency {
			t.Errorf("latency not monotone in size: %v", pts)
		}
	}
	// The paper's reference point: 20 GB in 7–8 s recon, <10 s total.
	p20 := pts[3]
	if p20.ReconTime < 7*time.Second || p20.ReconTime > 8*time.Second {
		t.Errorf("20 GB recon time %v, want 7-8 s", p20.ReconTime)
	}
	if !p20.UnderTenSec {
		t.Errorf("20 GB preview not under 10 s: %v", p20.Latency)
	}
	if p20.SendTime >= time.Second {
		t.Errorf("preview send %v, paper says <1 s", p20.SendTime)
	}
	// Crossover: somewhere above 26 GB the 10 s budget is exceeded.
	if pts[4].UnderTenSec {
		t.Errorf("30 GB scan should exceed the 10 s budget: %v", pts[4].Latency)
	}
}

func TestScanSizeMixShape(t *testing.T) {
	b := newTestBeamline()
	var small, large int
	for i := 0; i < 2000; i++ {
		sz := b.ScanSizeMix()
		if sz < 500e6 {
			small++
		}
		if sz >= 18e9 {
			large++
		}
	}
	if frac := float64(small) / 2000; frac < 0.05 || frac > 0.15 {
		t.Errorf("small-scan fraction %.2f", frac)
	}
	if frac := float64(large) / 2000; frac < 0.65 || frac > 0.85 {
		t.Errorf("large-scan fraction %.2f", frac)
	}
}

func TestChecksumErrorMessage(t *testing.T) {
	err := &ChecksumError{Scan: "x"}
	if err.Error() == "" {
		t.Fatal("empty error")
	}
}

package core

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/flow"
	"repro/internal/msgq"
	"repro/internal/obslog"
	"repro/internal/pva"
	"repro/internal/tiled"
	"repro/internal/tomo"
	"repro/internal/trace"
	"repro/internal/vol"
)

// PreviewHeader describes a streamed three-slice preview message.
type PreviewHeader struct {
	ScanID    string  `json:"scan_id"`
	NAngles   int     `json:"n_angles"`
	Missed    int     `json:"missed_frames"`
	LatencyMS float64 `json:"latency_ms"`
}

// EncodePreview packs the header and the three orthogonal preview slices
// into one wire message: 4-byte header length, JSON header, then the three
// slices in tiled wire format, each length-prefixed.
func EncodePreview(h PreviewHeader, xy, xz, yz *vol.Image) ([]byte, error) {
	hdr, err := json.Marshal(h)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(hdr)+1<<16)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(hdr)))
	out = append(out, n[:]...)
	out = append(out, hdr...)
	for _, im := range []*vol.Image{xy, xz, yz} {
		blob := tiled.EncodeSlice(im)
		binary.LittleEndian.PutUint32(n[:], uint32(len(blob)))
		out = append(out, n[:]...)
		out = append(out, blob...)
	}
	return out, nil
}

// DecodePreview unpacks a preview message.
func DecodePreview(raw []byte) (PreviewHeader, []*vol.Image, error) {
	var h PreviewHeader
	if len(raw) < 4 {
		return h, nil, fmt.Errorf("core: preview message too short")
	}
	hlen := int(binary.LittleEndian.Uint32(raw))
	raw = raw[4:]
	if len(raw) < hlen {
		return h, nil, fmt.Errorf("core: truncated preview header")
	}
	if err := json.Unmarshal(raw[:hlen], &h); err != nil {
		return h, nil, err
	}
	raw = raw[hlen:]
	var slices []*vol.Image
	for i := 0; i < 3; i++ {
		if len(raw) < 4 {
			return h, nil, fmt.Errorf("core: truncated preview slice %d", i)
		}
		blen := int(binary.LittleEndian.Uint32(raw))
		raw = raw[4:]
		if len(raw) < blen {
			return h, nil, fmt.Errorf("core: truncated preview slice %d payload", i)
		}
		im, err := tiled.DecodeSlice(raw[:blen])
		if err != nil {
			return h, nil, err
		}
		slices = append(slices, im)
		raw = raw[blen:]
	}
	return h, slices, nil
}

// StreamingService is the real-time analogue of the paper's NERSC
// streaming reconstruction service: it monitors a PVA channel, caches
// frames in memory during acquisition, and when the end-of-scan marker
// arrives it reconstructs the three-slice preview and pushes it back to
// the beamline over the message queue.
type StreamingService struct {
	PVAAddr     string
	Channel     string
	PreviewAddr string
	Recon       tomo.ReconOptions
	// Incremental folds every projection into per-scan preview
	// accumulators the moment it is delivered, so once the end-of-scan
	// marker arrives only a scale-and-assemble finalize and the send
	// remain — the preview latency drops from a full reconstruction to
	// one frame's worth of work. Scans the incremental accumulator cannot
	// reproduce exactly (reference frames arriving after the first
	// projection, or recon options beyond the incremental FBP's reach)
	// fall back to the batch path transparently.
	Incremental bool
	// Env supplies every timestamp the service records (nil means the
	// wall clock), keeping span trees reproducible under an injected
	// clock.
	Env flow.Env

	// ScansDone and LastLatency report progress for tests and the demo.
	ScansDone   int
	LastLatency time.Duration
	LastMissed  int
	// IncrementalScans counts completed scans whose preview came off the
	// incremental path rather than the batch fallback.
	IncrementalScans int

	// frames counts every frame received, including ones that are
	// dropped as invalid — an observable tests synchronize on instead of
	// sleeping.
	frames atomic.Int64
}

// FramesSeen returns the number of frames the service has received so
// far (valid or not). Safe to call while Run is in progress.
func (s *StreamingService) FramesSeen() int64 { return s.frames.Load() }

// clock resolves the effective environment clock.
func (s *StreamingService) clock() flow.Env {
	if s.Env != nil {
		return s.Env
	}
	return flow.RealEnv{}
}

// scanCache accumulates one acquisition's frames.
type scanCache struct {
	scanID string
	rows   int
	cols   int
	angles []float64
	projs  [][]uint16
	flats  [][]uint16
	darks  [][]uint16

	// Incremental state, populated only when the service runs in
	// incremental mode and the scan stays eligible: the reference frames
	// are averaged and frozen at the first projection, each raw frame is
	// normalized and -log'd into incLI, and folded into inc as it lands.
	inc     *tomo.IncrementalPreview
	incFlat []float64
	incDark []float64
	incLI   []float64
	incBad  bool // accumulator diverged from the batch result; fall back
}

// Run consumes the channel until the stream closes or ctx is cancelled,
// reconstructing a preview for every completed scan. It returns nil when
// the source closed after at least one completed scan.
func (s *StreamingService) Run(ctx context.Context) error {
	mon, err := pva.NewMonitor(s.PVAAddr, s.Channel)
	if err != nil {
		return err
	}
	defer mon.Close()
	push := msgq.NewPush(s.PreviewAddr)
	defer push.Close()

	// Streaming stages hang off whatever span the caller's context
	// carries: one "cache" span per scan while frames accumulate, then
	// "recon" and "preview_send" inside reconstructAndSend. Timestamps
	// come from the service's environment clock.
	env := s.clock()
	parent := trace.FromContext(ctx)
	var cache *scanCache
	var cacheSpan *trace.Span
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		f, err := mon.Next(2 * time.Second)
		if err != nil {
			if s.ScansDone > 0 {
				return nil // source drained after a completed scan
			}
			return err
		}
		s.frames.Add(1)
		if f.Kind == pva.KindEndOfScan {
			if cache == nil {
				continue
			}
			cacheSpan.End(env.Now())
			t0 := env.Now()
			if err := s.reconstructAndSend(ctx, parent, push, cache, mon.Missed, t0); err != nil {
				return err
			}
			s.ScansDone++
			cache = nil
			cacheSpan = nil
			continue
		}
		if err := f.Validate(); err != nil {
			continue // the file-writer drops invalid frames; so do we
		}
		if cache == nil || cache.scanID != f.ScanID {
			cacheSpan.End(env.Now()) // geometry/scan change: close any stale span
			cache = &scanCache{scanID: f.ScanID, rows: f.Rows, cols: f.Cols}
			if s.incrementalEligible() {
				if ip, err := tomo.NewIncrementalPreview(f.Rows, f.Cols, s.Recon.Size, s.Recon.Filter); err == nil {
					cache.inc = ip
					cache.incLI = make([]float64, f.Rows*f.Cols)
				}
			}
			cacheSpan = parent.StartChildStage("cache "+f.ScanID, "cache", env.Now())
			obslog.Debug(ctx, "streaming", "scan started",
				obslog.F("scan", f.ScanID), obslog.F("rows", f.Rows), obslog.F("cols", f.Cols))
		}
		if f.Rows != cache.rows || f.Cols != cache.cols {
			continue // geometry change mid-scan: drop frame
		}
		switch f.Kind {
		case pva.KindFlat:
			cache.flats = append(cache.flats, f.Data)
			if cache.inc != nil && len(cache.projs) > 0 {
				// Late reference: the frozen flat no longer matches the
				// batch average; the accumulator cannot be repaired.
				cache.incBad = true
			}
		case pva.KindDark:
			cache.darks = append(cache.darks, f.Data)
			if cache.inc != nil && len(cache.projs) > 0 {
				cache.incBad = true
			}
		default:
			cache.angles = append(cache.angles, f.AngleRad)
			cache.projs = append(cache.projs, f.Data)
			if cache.inc != nil && !cache.incBad {
				if cache.incFlat == nil {
					// Freeze the reference correction at the first
					// projection — the detector sends flats and darks
					// ahead of the scan.
					n := cache.rows * cache.cols
					cache.incFlat = averageFrames(cache.flats, n, 1)
					cache.incDark = averageFrames(cache.darks, n, 0)
				}
				normalizeLogInto(cache.incLI, f.Data, cache.incFlat, cache.incDark)
				cache.inc.AddProjection(f.AngleRad, cache.incLI)
			}
		}
	}
}

func (s *StreamingService) reconstructAndSend(ctx context.Context, parent *trace.Span, push *msgq.Push, c *scanCache, missed int, t0 time.Time) error {
	if len(c.projs) == 0 {
		return fmt.Errorf("core: scan %s completed with no projections", c.scanID)
	}
	env := s.clock()
	var xy, xz, yz *vol.Image
	var err error
	incremental := c.inc != nil && !c.incBad
	if incremental {
		// The projections are already filtered and backprojected into the
		// accumulators; only the π/n scale and the slice assembly remain.
		fin := parent.StartChildStage("finalize "+c.scanID, "finalize", env.Now())
		xy, xz, yz, err = c.inc.Finalize()
		fin.End(env.Now())
	} else {
		recon := parent.StartChildStage("recon "+c.scanID, "recon", env.Now())
		ps := tomo.NewProjectionSet(c.angles, c.rows, c.cols)
		for a, proj := range c.projs {
			dst := ps.Projection(a)
			for i, v := range proj {
				dst[i] = float64(v)
			}
		}
		// Flat/dark correction from the cached reference frames (averaged),
		// falling back to idealized references when absent.
		flat := averageFrames(c.flats, c.rows*c.cols, 1)
		dark := averageFrames(c.darks, c.rows*c.cols, 0)
		li := tomo.MinusLog(tomo.Normalize(ps, flat, dark))

		xy, xz, yz, err = tomo.QuickPreview(ctx, li, s.Recon)
		recon.End(env.Now())
	}
	if err != nil {
		obslog.Error(ctx, "streaming", "preview reconstruction failed",
			obslog.F("scan", c.scanID), obslog.F("err", err))
		return err
	}
	lat := env.Now().Sub(t0)
	s.LastLatency = lat
	s.LastMissed = missed
	msg, err := EncodePreview(PreviewHeader{
		ScanID: c.scanID, NAngles: len(c.angles), Missed: missed,
		LatencyMS: float64(lat.Microseconds()) / 1000,
	}, xy, xz, yz)
	if err != nil {
		return err
	}
	send := parent.StartChildStage("preview_send "+c.scanID, "preview_send", env.Now())
	err = push.Send(ctx, msg)
	send.End(env.Now())
	if err == nil {
		if incremental {
			s.IncrementalScans++
		}
		obslog.Info(ctx, "streaming", "preview sent",
			obslog.F("scan", c.scanID), obslog.F("angles", len(c.angles)),
			obslog.F("missed", missed), obslog.F("latency", lat),
			obslog.F("incremental", incremental))
	}
	return err
}

// incrementalEligible reports whether the configured recon options can be
// honoured by the incremental FBP accumulator bit for bit: QuickPreview
// always reconstructs previews with FBP, so only option knobs the
// incremental path lacks (COR handling, preprocessing, the float32 tier)
// force the batch fallback.
func (s *StreamingService) incrementalEligible() bool {
	r := s.Recon
	return s.Incremental &&
		r.CORShift == 0 && !r.AutoCOR &&
		r.Preprocess == (tomo.PreprocessOptions{}) &&
		r.Precision == tomo.Float64
}

// normalizeLogInto flat/dark-corrects one raw detector frame and converts
// it to line integrals — the per-frame form of MinusLog(Normalize(...)),
// with identical clamps, writing into a preallocated buffer.
func normalizeLogInto(dst []float64, raw []uint16, flat, dark []float64) {
	const floor = 1e-6
	for i, v := range raw {
		den := flat[i] - dark[i]
		if den < floor {
			den = floor
		}
		tr := (float64(v) - dark[i]) / den
		if tr < floor {
			tr = floor
		}
		dst[i] = -math.Log(tr)
	}
}

// averageFrames averages reference frames; when none exist it returns a
// constant frame of fallback (so normalization degrades gracefully).
func averageFrames(frames [][]uint16, n int, fallback float64) []float64 {
	out := make([]float64, n)
	if len(frames) == 0 {
		for i := range out {
			out[i] = fallback
		}
		return out
	}
	for _, f := range frames {
		for i, v := range f {
			out[i] += float64(v)
		}
	}
	for i := range out {
		out[i] /= float64(len(frames))
	}
	return out
}

// PublishAcquisition plays a simulated acquisition through a PVA server as
// the detector IOC would: flats and darks first, then one frame per
// projection angle, then the end-of-scan marker. interFrame throttles the
// stream (0 = as fast as possible).
func PublishAcquisition(srv *pva.Server, channel, scanID string, acq *tomo.Acquisition, interFrame time.Duration) error {
	// The publisher plays the role of the detector IOC, which genuinely
	// runs on the wall clock; RealEnv is the sanctioned gateway for that.
	env := flow.RealEnv{}
	raw := acq.Raw
	seq := uint64(0)
	send := func(f *pva.Frame) error {
		seq++
		f.Seq = seq
		f.ScanID = scanID
		f.Rows = raw.NRows
		f.Cols = raw.NCols
		f.Timestamp = env.Now().UnixNano()
		return srv.Publish(channel, f)
	}
	toU16 := func(xs []float64) []uint16 {
		out := make([]uint16, len(xs))
		for i, v := range xs {
			if v < 0 {
				v = 0
			}
			if v > 65535 {
				v = 65535
			}
			out[i] = uint16(v)
		}
		return out
	}
	if err := send(&pva.Frame{Kind: pva.KindFlat, Data: toU16(acq.Flat)}); err != nil {
		return err
	}
	if err := send(&pva.Frame{Kind: pva.KindDark, Data: toU16(acq.Dark)}); err != nil {
		return err
	}
	n := raw.NRows * raw.NCols
	for a := 0; a < raw.NAngles; a++ {
		frame := &pva.Frame{
			Kind: pva.KindProjection, AngleRad: raw.Theta[a],
			Data: toU16(raw.Data[a*n : (a+1)*n]),
		}
		if err := send(frame); err != nil {
			return err
		}
		if interFrame > 0 {
			env.Sleep(interFrame)
		}
	}
	return send(&pva.Frame{Kind: pva.KindEndOfScan})
}

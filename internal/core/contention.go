package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// The paper's second future direction (§6): "As more beamlines adopt
// streaming, the issue shifts from a scheduling to an economic-policy
// challenge. At scale, compute could be reserved for each beamline to
// prevent resource contention." This experiment quantifies that claim:
// N beamlines stream scans to a GPU pool that is either shared (any
// beamline may take any node) or reserved (one node pinned per beamline),
// and the preview-latency distribution tells the story — sharing works
// until utilization approaches one, then queueing destroys the <10 s
// guarantee for everyone; reservation keeps each beamline's latency flat.

// ContentionResult summarizes one policy run.
type ContentionResult struct {
	Beamlines int
	GPUs      int
	Reserved  bool
	// Latency is the distribution of preview latencies (seconds) across
	// all beamlines and scans.
	Latency stats.Summary
	// Under10s is the fraction of previews meeting the paper's budget.
	Under10s float64
}

// RunStreamingContention simulates `beamlines` endstations, each producing
// a 20 GB scan every `cadence`, for `scansPer` scans per beamline.
// Reconstruction of one scan occupies a GPU node for the streaming model's
// recon time. With reserved=false all beamlines share `gpus` nodes FIFO;
// with reserved=true each beamline gets gpus/beamlines dedicated nodes
// (minimum 1 each).
func RunStreamingContention(epoch time.Time, beamlines, gpus, scansPer int, cadence time.Duration, reserved bool) *ContentionResult {
	e := sim.New(epoch)
	cfg := DefaultSimConfig()
	rng := rand.New(rand.NewSource(int64(beamlines)*1000 + int64(gpus)))
	net := simnet.New(e)
	for i := 0; i < beamlines; i++ {
		net.AddLink(fmt.Sprintf("bl%d", i), SiteNERSC, cfg.WANBandwidth, cfg.WANLatency)
	}

	var pools []*sim.Resource
	if reserved {
		per := gpus / beamlines
		if per < 1 {
			per = 1
		}
		for i := 0; i < beamlines; i++ {
			pools = append(pools, sim.NewResource(e, per))
		}
	} else {
		shared := sim.NewResource(e, gpus)
		for i := 0; i < beamlines; i++ {
			pools = append(pools, shared)
		}
	}

	reconTime := time.Duration(20e9 / cfg.StreamGPURate * float64(time.Second))
	var latencies []float64
	for i := 0; i < beamlines; i++ {
		i := i
		e.Go(fmt.Sprintf("bl%d", i), func(p *sim.Proc) {
			// Desynchronize beamline start times.
			p.Sleep(time.Duration(i) * cadence / time.Duration(beamlines))
			for s := 0; s < scansPer; s++ {
				// Acquisition completes on schedule regardless of how
				// the previous preview is doing (open loop): each
				// preview runs as its own process.
				e.Go(fmt.Sprintf("preview-bl%d-%d", i, s), func(p *sim.Proc) {
					t0 := p.Now()
					pools[i].Acquire(p)
					p.Sleep(reconTime)
					pools[i].Release()
					// Send the preview slices home.
					sliceBytes := int64(3 * 4 * 2160 * 2560)
					net.Transfer(p, SiteNERSC, fmt.Sprintf("bl%d", i), sliceBytes)
					latencies = append(latencies, p.Now().Sub(t0).Seconds())
				})
				// Real beamtimes are irregular: sample exchanges and
				// alignment make the inter-scan gap jittery, which is
				// exactly what causes bursts to collide on a shared
				// pool.
				jitter := 0.5 + rng.Float64()
				p.Sleep(time.Duration(float64(cadence) * jitter))
			}
		})
	}
	e.Run()

	res := &ContentionResult{Beamlines: beamlines, GPUs: gpus, Reserved: reserved}
	res.Latency = stats.Summarize(latencies)
	n := 0
	for _, l := range latencies {
		if l < 10 {
			n++
		}
	}
	if len(latencies) > 0 {
		res.Under10s = float64(n) / float64(len(latencies))
	}
	return res
}

// ContentionSweep runs the shared-vs-reserved comparison across a range of
// beamline counts against a fixed GPU pool and returns both policies per
// point — the policy-crossover figure for the §6 discussion.
func ContentionSweep(epoch time.Time, gpus, scansPer int, cadence time.Duration, beamlineCounts []int) []ContentionResult {
	var out []ContentionResult
	for _, n := range beamlineCounts {
		out = append(out, *RunStreamingContention(epoch, n, gpus, scansPer, cadence, false))
		out = append(out, *RunStreamingContention(epoch, n, gpus, scansPer, cadence, true))
	}
	return out
}

package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func TestHealthMonitoringDuringCampaign(t *testing.T) {
	b := newTestBeamline()
	pl := b.StartHealthMonitoring(1*time.Hour, 6*time.Hour)
	// Drive scans alongside so the checks have real state to probe.
	b.Engine.Go("scans", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			scan, err := b.NewScan(p, i)
			if err != nil {
				t.Error(err)
				return
			}
			if err := b.NewFile832Flow(nil, p, scan); err != nil {
				t.Error(err)
				return
			}
			p.Sleep(4 * time.Minute)
		}
	})
	b.Engine.Run()
	if !pl.Healthy() {
		t.Fatalf("healthy campaign should pass checks: %+v", pl.Health())
	}
	fh, ok := pl.HealthFor(SiteALS)
	if !ok || fh.Verdict != telemetry.VerdictHealthy || fh.Score != 100 {
		t.Fatalf("als health %+v", fh)
	}
	rounds := b.Flows.Runs(FlowHealth)
	if len(rounds) != 6 {
		t.Fatalf("health rounds = %d, want 6 hourly rounds in 6h", len(rounds))
	}
	if b.Flows.SuccessRate(FlowHealth) != 1 {
		t.Fatal("health flow should be all-green")
	}
	stats := pl.ProbeStats()
	if len(stats) != 1 || stats[0].Name != "health_round" || stats[0].Runs != 6 || stats[0].Failures != 0 {
		t.Fatalf("probe stats %+v", stats)
	}
}

func TestHealthCheckDetectsTransferFailures(t *testing.T) {
	b := newTestBeamline()
	pl := telemetry.New(b.Engine, b.Journal, nil, telemetry.Config{SampleInterval: 10 * time.Minute})
	b.RegisterHealthChecks(pl, 10*time.Minute)
	// Fabricate a bad success rate by issuing transfers against missing
	// files.
	b.Engine.Go("bad", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			b.Transfer.Submit(nil, p, "missing", EPBeamline, EPCFS, []string{"nope"})
		}
	})
	pl.Start(context.Background(), b.Engine, time.Hour)
	b.Engine.Run()
	fh, ok := pl.HealthFor(SiteALS)
	if !ok {
		t.Fatal("als facility unscored")
	}
	if fh.Verdict == telemetry.VerdictHealthy {
		t.Fatalf("all-failed transfers should trip the transfer_success check: %+v", fh)
	}
	if !strings.Contains(strings.Join(fh.Reasons, "; "), "check transfer_success failing") {
		t.Fatalf("reasons %v", fh.Reasons)
	}
	stats := pl.ProbeStats()
	if len(stats) != 1 || stats[0].Failures == 0 {
		t.Fatalf("probe stats should show failed rounds: %+v", stats)
	}
}

func TestWANBandwidthSeries(t *testing.T) {
	b := newTestBeamline()
	samples := b.SampleWANBandwidth(time.Minute, time.Hour)
	b.Engine.Go("scans", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			scan, err := b.NewScan(p, i)
			if err != nil {
				t.Error(err)
				return
			}
			if b.NewFile832Flow(nil, p, scan) == nil {
				b.NERSCReconFlow(nil, p, scan)
			}
			p.Sleep(3 * time.Minute)
		}
	})
	b.Engine.Run()
	if len(*samples) < 10 {
		t.Fatalf("samples = %d", len(*samples))
	}
	series := monitor.BandwidthSeries(*samples)
	var peak float64
	var active int
	for _, s := range series {
		if s.Value > peak {
			peak = s.Value
		}
		if s.Value > 0 {
			active++
		}
	}
	if peak <= 0 {
		t.Fatal("no WAN traffic observed during campaign")
	}
	// Bandwidth never exceeds the configured 10 Gbps link.
	if peak > b.Cfg.WANBandwidth*1.01 {
		t.Fatalf("peak %v exceeds link bandwidth %v", peak, b.Cfg.WANBandwidth)
	}
	if active == 0 {
		t.Fatal("series shows no active intervals")
	}
}

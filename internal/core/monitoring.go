package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/flow"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Flow name for the periodic health round.
const FlowHealth = "health_check_flow"

// healthCheck is one beamline-side named check.
type healthCheck struct {
	name string
	run  func() error
}

// healthChecks returns the checks the production deployment runs every
// 12–24 hours (§5.3): storage tiers below saturation, transfer success
// rate, orchestration success rates, and catalog availability.
func (b *Beamline) healthChecks() []healthCheck {
	return []healthCheck{
		{"storage_headroom", func() error {
			// The beamline data server is the tier that saturates in
			// practice; alarm at 90% of a 200 TB volume.
			const dataSrvCapacity = 200e12
			if float64(b.DataSrv.Used()) > 0.9*dataSrvCapacity {
				return fmt.Errorf("beamline data server at %.0f%% of capacity",
					100*float64(b.DataSrv.Used())/dataSrvCapacity)
			}
			return nil
		}},
		{"transfer_success", func() error {
			tasks := b.Transfer.Tasks()
			if len(tasks) == 0 {
				return nil
			}
			ok := b.Transfer.SucceededCount()
			rate := float64(ok) / float64(len(tasks))
			if rate < 0.95 {
				return fmt.Errorf("transfer success rate %.0f%% below 95%%", rate*100)
			}
			return nil
		}},
		{"flow_success", func() error {
			for _, name := range []string{FlowNewFile, FlowNERSC, FlowALCF} {
				if runs := b.Flows.Runs(name); len(runs) > 0 {
					if rate := b.Flows.SuccessRate(name); rate < 0.9 {
						return fmt.Errorf("%s success rate %.0f%%", name, rate*100)
					}
				}
			}
			return nil
		}},
		{"catalog_reachable", func() error {
			// A search against the catalog proves the metadata service is
			// answering.
			b.Catalog.Count()
			return nil
		}},
	}
}

// RegisterHealthChecks installs the beamline-side checks on the
// telemetry plane as one health_round probe. Each round is recorded as a
// FlowHealth flow run (so operators see it in the same dashboard as
// everything else), each check's pass/fail feeds its own
// probe_<check>_ok series, and a rule per check penalizes the als
// facility 40 points on failure — one failing check is Degraded, two are
// Down. This is the old monitor.HealthChecker surface folded into the
// plane's probe/verdict model: exactly one notion of "healthy".
func (b *Beamline) RegisterHealthChecks(pl *telemetry.Plane, interval time.Duration) {
	checks := b.healthChecks()
	pl.AddProbe("health_round", SiteALS, interval, func(ctx context.Context, p *sim.Proc) error {
		fc := b.Flows.Start(ctx, FlowHealth, flow.SimEnv{P: p})
		var firstErr error
		for _, c := range checks {
			err := c.run()
			ok := 1.0
			if err != nil {
				ok = 0
				if firstErr == nil {
					firstErr = fmt.Errorf("%s: %w", c.name, err)
				}
			}
			pl.Record("probe_"+c.name+"_ok", SiteALS, p.Now(), ok)
		}
		fc.Complete(firstErr)
		return firstErr
	})
	for _, c := range checks {
		pl.AddRules(telemetry.Rule{
			Name: "check_" + c.name, Facility: SiteALS, Series: "probe_" + c.name + "_ok",
			Agg: "last", Window: 2 * interval, Op: "<", Threshold: 1,
			Penalty: 40, Reason: "check " + c.name + " failing",
		})
	}
}

// StartHealthMonitoring builds a standalone telemetry plane running the
// health round every `interval` for `total` of virtual time (the plane's
// bounded-horizon mode), scoring the als facility each round. It returns
// the plane for inspection after Engine.Run.
func (b *Beamline) StartHealthMonitoring(interval, total time.Duration) *telemetry.Plane {
	pl := telemetry.New(b.Engine, b.Journal, nil, telemetry.Config{SampleInterval: interval})
	b.RegisterHealthChecks(pl, interval)
	pl.Start(context.Background(), b.Engine, total)
	return pl
}

// SampleWANBandwidth spawns a simulated process that samples the
// ALS→NERSC link's cumulative byte counter every `interval` for `total`,
// returning the raw samples; convert with monitor.BandwidthSeries for the
// Grafana-style transfer-bandwidth plot the paper demonstrates.
func (b *Beamline) SampleWANBandwidth(interval, total time.Duration) *[]monitor.Sample {
	samples := &[]monitor.Sample{}
	b.Engine.Go("bandwidth-sampler", func(p *sim.Proc) {
		link, err := b.Network.Link(SiteALS, SiteNERSC)
		if err != nil {
			return
		}
		for elapsed := time.Duration(0); elapsed <= total; elapsed += interval {
			*samples = append(*samples, monitor.Sample{
				At: p.Now(), Value: float64(link.TotalBytes),
			})
			p.Sleep(interval)
		}
	})
	return samples
}

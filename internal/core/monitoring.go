package core

import (
	"fmt"
	"time"

	"repro/internal/flow"
	"repro/internal/monitor"
	"repro/internal/sim"
)

// Flow name for the periodic health round.
const FlowHealth = "health_check_flow"

// RegisterHealthChecks installs the probes the production deployment runs
// every 12–24 hours (§5.3): storage tiers below saturation, transfer
// success rate, orchestration success rates, and catalog availability.
func (b *Beamline) RegisterHealthChecks(hc *monitor.HealthChecker) {
	hc.Register("storage_headroom", func() error {
		for _, st := range []interface {
			Used() int64
		}{b.DataSrv, b.CFS, b.Scratch} {
			_ = st
		}
		// The beamline data server is the tier that saturates in
		// practice; alarm at 90% of a 200 TB volume.
		const dataSrvCapacity = 200e12
		if float64(b.DataSrv.Used()) > 0.9*dataSrvCapacity {
			return fmt.Errorf("beamline data server at %.0f%% of capacity",
				100*float64(b.DataSrv.Used())/dataSrvCapacity)
		}
		return nil
	})
	hc.Register("transfer_success", func() error {
		tasks := b.Transfer.Tasks()
		if len(tasks) == 0 {
			return nil
		}
		ok := b.Transfer.SucceededCount()
		rate := float64(ok) / float64(len(tasks))
		if rate < 0.95 {
			return fmt.Errorf("transfer success rate %.0f%% below 95%%", rate*100)
		}
		return nil
	})
	hc.Register("flow_success", func() error {
		for _, name := range []string{FlowNewFile, FlowNERSC, FlowALCF} {
			if runs := b.Flows.Runs(name); len(runs) > 0 {
				if rate := b.Flows.SuccessRate(name); rate < 0.9 {
					return fmt.Errorf("%s success rate %.0f%%", name, rate*100)
				}
			}
		}
		return nil
	})
	hc.Register("catalog_reachable", func() error {
		// A search against the catalog proves the metadata service is
		// answering.
		b.Catalog.Count()
		return nil
	})
}

// StartHealthMonitoring spawns a simulated process that runs the health
// round every `interval` for `total` of virtual time, recording each round
// as a flow run so operators see it in the same dashboard as everything
// else. It returns the checker for inspection after Engine.Run.
func (b *Beamline) StartHealthMonitoring(interval, total time.Duration) *monitor.HealthChecker {
	hc := monitor.NewHealthChecker()
	b.RegisterHealthChecks(hc)
	b.Engine.Go("health-monitor", func(p *sim.Proc) {
		for elapsed := time.Duration(0); elapsed < total; elapsed += interval {
			p.Sleep(interval)
			fc := b.Flows.Start(nil, FlowHealth, flow.SimEnv{P: p})
			results := hc.RunAll(p.Now())
			var firstErr error
			for _, r := range results {
				if !r.OK && firstErr == nil {
					firstErr = fmt.Errorf("%s: %s", r.Name, r.Err)
				}
			}
			fc.Complete(firstErr)
		}
	})
	return hc
}

// SampleWANBandwidth spawns a simulated process that samples the
// ALS→NERSC link's cumulative byte counter every `interval` for `total`,
// returning the raw samples; convert with monitor.BandwidthSeries for the
// Grafana-style transfer-bandwidth plot the paper demonstrates.
func (b *Beamline) SampleWANBandwidth(interval, total time.Duration) *[]monitor.Sample {
	samples := &[]monitor.Sample{}
	b.Engine.Go("bandwidth-sampler", func(p *sim.Proc) {
		link, err := b.Network.Link(SiteALS, SiteNERSC)
		if err != nil {
			return
		}
		for elapsed := time.Duration(0); elapsed <= total; elapsed += interval {
			*samples = append(*samples, monitor.Sample{
				At: p.Now(), Value: float64(link.TotalBytes),
			})
			p.Sleep(interval)
		}
	})
	return samples
}

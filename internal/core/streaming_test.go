package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/msgq"
	"repro/internal/phantom"
	"repro/internal/pva"
	"repro/internal/stats"
	"repro/internal/tomo"
	"repro/internal/trace"
	"repro/internal/vol"
)

func TestPreviewEncodeDecode(t *testing.T) {
	xy := vol.NewImage(4, 4)
	xy.Fill(1)
	xz := vol.NewImage(4, 2)
	yz := vol.NewImage(2, 4)
	h := PreviewHeader{ScanID: "s1", NAngles: 90, Missed: 2, LatencyMS: 1234.5}
	raw, err := EncodePreview(h, xy, xz, yz)
	if err != nil {
		t.Fatal(err)
	}
	gotH, slices, err := DecodePreview(raw)
	if err != nil {
		t.Fatal(err)
	}
	if gotH != h {
		t.Fatalf("header %+v", gotH)
	}
	if len(slices) != 3 || slices[0].W != 4 || slices[1].H != 2 || slices[2].W != 2 {
		t.Fatalf("slices %v", slices)
	}
	if slices[0].At(0, 0) != 1 {
		t.Fatal("slice content lost")
	}
	// Corruption paths.
	if _, _, err := DecodePreview(raw[:3]); err == nil {
		t.Fatal("short message should fail")
	}
	if _, _, err := DecodePreview(raw[:len(raw)-5]); err == nil {
		t.Fatal("truncated slice should fail")
	}
}

// TestStreamingEndToEnd runs the full real-time streaming branch: a
// detector IOC publishes a scan over PVA, a mirror republishes it, the
// streaming service caches and reconstructs, and the preview arrives back
// over the message queue — the paper's Figure 3 streaming path in
// miniature.
func TestStreamingEndToEnd(t *testing.T) {
	// Beamline side: IOC and mirror servers, preview sink.
	ioc, err := pva.NewServer("127.0.0.1:0", 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer ioc.Close()
	mirrorSrv, err := pva.NewServer("127.0.0.1:0", 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer mirrorSrv.Close()
	mirror, err := pva.NewMirror(ioc.Addr(), "bl832:det", mirrorSrv)
	if err != nil {
		t.Fatal(err)
	}
	go mirror.Run()

	sink, err := msgq.NewPull("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	// NERSC side: streaming service on the mirror.
	svc := &StreamingService{
		PVAAddr: mirrorSrv.Addr(), Channel: "bl832:det",
		PreviewAddr: sink.Addr(),
		Recon:       tomo.ReconOptions{Algorithm: tomo.AlgFBP, Filter: tomo.SheppLoganFilter},
	}
	// A span on the service's ctx collects the streaming stages.
	root := trace.NewRoot("streaming", time.Now())
	svcDone := make(chan error, 1)
	go func() { svcDone <- svc.Run(trace.NewContext(context.Background(), root)) }()

	// Give the service time to connect before frames flow.
	waitForMonitors(t, mirrorSrv, "bl832:det", 1)
	waitForMonitors(t, ioc, "bl832:det", 1)

	// Detector: acquire and publish a small scan.
	truth := phantom.SheppLogan3D(32, 6)
	theta := tomo.UniformAngles(48)
	acq := tomo.Acquire(truth, theta, 32, tomo.AcquireOptions{I0: 2e4, Seed: 9})
	if err := PublishAcquisition(ioc, "bl832:det", "scan-e2e", acq, 0); err != nil {
		t.Fatal(err)
	}

	// The preview must arrive.
	msg, err := sink.Recv(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	h, slices, err := DecodePreview(msg)
	if err != nil {
		t.Fatal(err)
	}
	if h.ScanID != "scan-e2e" || h.NAngles != 48 {
		t.Fatalf("header %+v", h)
	}
	if len(slices) != 3 {
		t.Fatalf("slices = %d", len(slices))
	}
	// The central XY slice should correlate with the ground truth.
	xy := slices[0]
	truthMid := truth.Slice(3)
	corr := stats.Pearson(centerRegion(xy), centerRegion(truthMid))
	if corr < 0.7 {
		t.Fatalf("preview correlation %v with ground truth", corr)
	}

	ioc.Close() // end the stream; the service exits cleanly
	if err := <-svcDone; err != nil {
		t.Fatalf("service exit: %v", err)
	}
	if svc.ScansDone != 1 {
		t.Fatalf("scans done = %d", svc.ScansDone)
	}
	if svc.LastLatency <= 0 {
		t.Fatal("no latency recorded")
	}

	// The scan left a closed cache → recon → preview_send span sequence.
	stages := []string{}
	for _, sp := range root.Children() {
		if !sp.Ended() {
			t.Fatalf("span %q left open", sp.Name())
		}
		stages = append(stages, sp.Stage())
	}
	want := []string{"cache", "recon", "preview_send"}
	if len(stages) != len(want) {
		t.Fatalf("stages = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("stages = %v, want %v", stages, want)
		}
	}
}

// TestStreamingIncrementalMatchesBatch publishes the same acquisition to
// a batch service and an incremental one: the incremental preview must be
// bit-identical to the batch preview (the accumulator reproduces the
// reference FBP arithmetic exactly), the scan must be counted on the
// incremental path, and its span tree must show the finalize stage in
// place of the batch recon.
func TestStreamingIncrementalMatchesBatch(t *testing.T) {
	truth := phantom.SheppLogan3D(32, 6)
	theta := tomo.UniformAngles(48)
	acq := tomo.Acquire(truth, theta, 32, tomo.AcquireOptions{I0: 2e4, Seed: 9})

	runOnce := func(incremental bool) (PreviewHeader, []*vol.Image, *StreamingService, *trace.Span) {
		ioc, err := pva.NewServer("127.0.0.1:0", 4096)
		if err != nil {
			t.Fatal(err)
		}
		defer ioc.Close()
		sink, err := msgq.NewPull("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer sink.Close()
		svc := &StreamingService{
			PVAAddr: ioc.Addr(), Channel: "det",
			PreviewAddr: sink.Addr(),
			Recon:       tomo.ReconOptions{Filter: tomo.SheppLoganFilter},
			Incremental: incremental,
		}
		root := trace.NewRoot("streaming", time.Now())
		done := make(chan error, 1)
		go func() { done <- svc.Run(trace.NewContext(context.Background(), root)) }()
		waitForMonitors(t, ioc, "det", 1)
		if err := PublishAcquisition(ioc, "det", "scan-inc", acq, 0); err != nil {
			t.Fatal(err)
		}
		msg, err := sink.Recv(30 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		h, slices, err := DecodePreview(msg)
		if err != nil {
			t.Fatal(err)
		}
		ioc.Close()
		if err := <-done; err != nil {
			t.Fatalf("service exit: %v", err)
		}
		return h, slices, svc, root
	}

	bh, batch, bsvc, _ := runOnce(false)
	ih, inc, isvc, iroot := runOnce(true)

	if bsvc.IncrementalScans != 0 {
		t.Fatalf("batch service counted %d incremental scans", bsvc.IncrementalScans)
	}
	if isvc.IncrementalScans != 1 || isvc.ScansDone != 1 {
		t.Fatalf("incremental service: %d incremental of %d scans", isvc.IncrementalScans, isvc.ScansDone)
	}
	if bh.ScanID != ih.ScanID || bh.NAngles != ih.NAngles {
		t.Fatalf("headers diverge: %+v vs %+v", bh, ih)
	}
	names := []string{"xy", "xz", "yz"}
	for i := range batch {
		if batch[i].W != inc[i].W || batch[i].H != inc[i].H {
			t.Fatalf("%s dims: %dx%d vs %dx%d", names[i], batch[i].W, batch[i].H, inc[i].W, inc[i].H)
		}
		for j := range batch[i].Pix {
			if batch[i].Pix[j] != inc[i].Pix[j] {
				t.Fatalf("%s pixel %d: batch %g vs incremental %g (must be bit-identical)",
					names[i], j, batch[i].Pix[j], inc[i].Pix[j])
			}
		}
	}
	stages := []string{}
	for _, sp := range iroot.Children() {
		stages = append(stages, sp.Stage())
	}
	want := []string{"cache", "finalize", "preview_send"}
	if len(stages) != len(want) {
		t.Fatalf("stages = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("stages = %v, want %v", stages, want)
		}
	}
}

// TestStreamingIncrementalLateReferenceFallsBack sends a flat frame after
// projections have started: the frozen incremental correction no longer
// matches the batch average, so the service must fall back to the batch
// path — and still deliver a preview.
func TestStreamingIncrementalLateReferenceFallsBack(t *testing.T) {
	ioc, err := pva.NewServer("127.0.0.1:0", 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer ioc.Close()
	sink, err := msgq.NewPull("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	svc := &StreamingService{
		PVAAddr: ioc.Addr(), Channel: "det",
		PreviewAddr: sink.Addr(),
		Recon:       tomo.ReconOptions{Filter: tomo.SheppLoganFilter},
		Incremental: true,
	}
	done := make(chan error, 1)
	go func() { done <- svc.Run(context.Background()) }()
	waitForMonitors(t, ioc, "det", 1)

	truth := phantom.SheppLogan3D(16, 4)
	theta := tomo.UniformAngles(12)
	acq := tomo.Acquire(truth, theta, 16, tomo.AcquireOptions{I0: 2e4, Seed: 3})
	raw := acq.Raw
	n := raw.NRows * raw.NCols
	toU16 := func(xs []float64) []uint16 {
		out := make([]uint16, len(xs))
		for i, v := range xs {
			if v < 0 {
				v = 0
			}
			if v > 65535 {
				v = 65535
			}
			out[i] = uint16(v)
		}
		return out
	}
	seq := uint64(0)
	send := func(f *pva.Frame) {
		seq++
		f.Seq, f.ScanID, f.Rows, f.Cols = seq, "scan-late", raw.NRows, raw.NCols
		f.Timestamp = time.Now().UnixNano()
		if err := ioc.Publish("det", f); err != nil {
			t.Fatal(err)
		}
	}
	send(&pva.Frame{Kind: pva.KindDark, Data: toU16(acq.Dark)})
	for a := 0; a < raw.NAngles; a++ {
		frame := &pva.Frame{Kind: pva.KindProjection, AngleRad: raw.Theta[a],
			Data: toU16(raw.Data[a*n : (a+1)*n])}
		send(frame)
		if a == 2 {
			send(&pva.Frame{Kind: pva.KindFlat, Data: toU16(acq.Flat)}) // late!
		}
	}
	send(&pva.Frame{Kind: pva.KindEndOfScan})

	msg, err := sink.Recv(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	h, slices, err := DecodePreview(msg)
	if err != nil {
		t.Fatal(err)
	}
	if h.ScanID != "scan-late" || h.NAngles != 12 || len(slices) != 3 {
		t.Fatalf("header %+v, %d slices", h, len(slices))
	}
	ioc.Close()
	if err := <-done; err != nil {
		t.Fatalf("service exit: %v", err)
	}
	if svc.IncrementalScans != 0 {
		t.Fatalf("late-reference scan was counted incremental (%d)", svc.IncrementalScans)
	}
	if svc.ScansDone != 1 {
		t.Fatalf("scans done = %d", svc.ScansDone)
	}
}

func centerRegion(im *vol.Image) []float64 {
	var out []float64
	for y := im.H / 4; y < im.H*3/4; y++ {
		for x := im.W / 4; x < im.W*3/4; x++ {
			out = append(out, im.At(x, y))
		}
	}
	return out
}

// waitFor polls cond until it returns true or the ctx-backed deadline
// expires, mirroring the msgq test helper: tests synchronize on observable
// state instead of bare time.Sleep so -race runs are deterministic.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for !cond() {
		select {
		case <-ctx.Done():
			t.Fatalf("timed out waiting for %s", what)
		case <-tick.C:
		}
	}
}

func waitForMonitors(t *testing.T, srv *pva.Server, channel string, n int) {
	t.Helper()
	waitFor(t, 5*time.Second, "channel subscription", func() bool {
		return srv.Monitors(channel) >= n
	})
}

func TestStreamingServiceRejectsEmptyScan(t *testing.T) {
	ioc, _ := pva.NewServer("127.0.0.1:0", 64)
	defer ioc.Close()
	sink, _ := msgq.NewPull("127.0.0.1:0")
	defer sink.Close()
	svc := &StreamingService{PVAAddr: ioc.Addr(), Channel: "c", PreviewAddr: sink.Addr()}
	done := make(chan error, 1)
	go func() { done <- svc.Run(context.Background()) }()
	waitForMonitors(t, ioc, "c", 1)
	// End-of-scan with no cached frames: ignored, then invalid frames:
	// also ignored; the service keeps running until the source closes.
	ioc.Publish("c", &pva.Frame{Kind: pva.KindEndOfScan, ScanID: "x"})
	ioc.Publish("c", &pva.Frame{Kind: pva.KindProjection}) // invalid: no id
	waitFor(t, 5*time.Second, "frames to reach the service", func() bool {
		return svc.FramesSeen() >= 2
	})
	ioc.Close()
	if err := <-done; err == nil {
		t.Fatal("service with zero completed scans should report the stream error")
	}
}

func TestStreamingServiceContextCancel(t *testing.T) {
	ioc, _ := pva.NewServer("127.0.0.1:0", 64)
	defer ioc.Close()
	sink, _ := msgq.NewPull("127.0.0.1:0")
	defer sink.Close()
	svc := &StreamingService{PVAAddr: ioc.Addr(), Channel: "c", PreviewAddr: sink.Addr()}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- svc.Run(ctx) }()
	waitForMonitors(t, ioc, "c", 1)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled service should return an error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("service did not stop on cancel")
	}
}

package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/monitor"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/slo"
	"repro/internal/telemetry"
)

// A Campaign is the multi-tenant deployment the paper's future-work
// section gestures at (§6): N beamlines share one orchestration stack —
// engine, WAN, transfer service, flow server, journal, SLO engine, and
// the NERSC/ALCF facility pool — with a fair-share, SLO-aware scheduler
// arbitrating their runs instead of each endstation owning a private
// server. Each beamline keeps its own identity (name, scan namespace,
// random stream); everything else is the shared facility fabric.

// Objective names for the scheduler's end-to-end latency targets.
const (
	ObjCampaignFile      = "campaign_file_e2e"
	ObjCampaignStreaming = "campaign_streaming_e2e"
)

// previewWindowBytes is the GPU-resident working set the streaming
// preview reconstructs: frames stream to the node during acquisition,
// so time-to-preview is bounded by the final window, not the archive
// size. Matches the fixed 20 GB scan RunStreamingContention models.
const previewWindowBytes = int64(20e9)

// CampaignObjectives judges the scheduler's end-to-end latencies — the
// only signal that includes queue wait — against the campaign targets.
// ObjCampaignFile doubles as the default admission guard: when its error
// budget burns, the scheduler defers and sheds file work to protect the
// streaming promise.
func CampaignObjectives(fileTarget time.Duration) []slo.Objective {
	return []slo.Objective{
		{
			Name:          ObjCampaignFile,
			Source:        "sched:file",
			Description:   "file-branch runs end to end (queue wait included) within the campaign target",
			Target:        fileTarget,
			Goal:          0.85,
			Window:        8 * time.Hour,
			BurnWindow:    30 * time.Minute,
			BurnThreshold: 2,
		},
		{
			Name:          ObjCampaignStreaming,
			Source:        "sched:streaming",
			Description:   "streaming previews end to end within 10 s despite any file backlog",
			Target:        10 * time.Second,
			Goal:          0.95,
			Window:        2 * time.Hour,
			BurnWindow:    20 * time.Minute,
			BurnThreshold: 2,
		},
	}
}

// CampaignConfig parameterizes a campaign.
type CampaignConfig struct {
	Sim SimConfig

	// Beamlines is the number of endstations (min 1), named "bl0"….
	Beamlines int
	// Weights[i] is beamline i's file-class fair-share weight (missing
	// entries default to 1). Streaming tenants always weigh 1: the
	// streaming band is protected by priority, not by share.
	Weights []float64

	// Workers and Reserved size the scheduler pool (see sched.Config).
	Workers, Reserved int

	// ScanInterval is each beamline's nominal acquisition cadence;
	// actual gaps jitter 0.5–1.5× like real beamtimes.
	ScanInterval time.Duration

	// FileTarget is the end-to-end objective for the file branch
	// (default 45m — the 30 min flow target plus queueing headroom).
	FileTarget time.Duration

	// Admission is the scheduler's backpressure policy.
	Admission sched.Admission

	// Metrics, when set, receives the shared flow server's outcome
	// counters and the scheduler's per-tenant counters and gauges.
	Metrics *monitor.Registry

	// BurstAt/BurstScans inject a reprocessing backlog on beamline 0:
	// BurstScans extra file-branch scans submitted back to back starting
	// at BurstAt. Zero BurstScans disables the burst.
	BurstAt    time.Duration
	BurstScans int

	// Telemetry enables the facility telemetry plane: windowed signal
	// series, per-facility health scoring, and synthetic probes running
	// alongside the campaign. Off by default — the probes submit real
	// (tiny) jobs and transfers, so enabling it perturbs the seeded
	// timeline, which is why recorded scenario goldens opt in explicitly.
	Telemetry bool
	// TelemetryConfig tunes the plane when Telemetry is set; the zero
	// value takes the plane defaults.
	TelemetryConfig telemetry.Config
}

// DefaultCampaignConfig is the reference campaign: four beamlines with
// weights 3:2:2:1 over a four-worker pool, one worker reserved for
// streaming, admission guarding the file end-to-end objective.
func DefaultCampaignConfig() CampaignConfig {
	return CampaignConfig{
		Sim:          DefaultSimConfig(),
		Beamlines:    4,
		Weights:      []float64{3, 2, 2, 1},
		Workers:      4,
		Reserved:     1,
		ScanInterval: 45 * time.Minute,
		FileTarget:   45 * time.Minute,
		Admission: sched.Admission{
			Enabled:           true,
			GuardObjectives:   []string{ObjCampaignFile},
			GuardRate:         1,
			MaxQueuePerTenant: 64,
			DeferDelay:        2 * time.Minute,
			MaxDefers:         3,
			ShedAfter:         90 * time.Minute,
		},
	}
}

// Campaign is the assembled multi-beamline environment.
type Campaign struct {
	Cfg CampaignConfig

	// Base owns the shared infrastructure: engine, network, transfer,
	// flow server, journal, SLO engine, stores, and facilities.
	Base *Beamline
	// Beamlines are the per-endstation views of Base, differing only in
	// Name, scan namespace, and random stream.
	Beamlines []*Beamline
	// Sched arbitrates every beamline's runs over the shared pool.
	Sched *sched.Scheduler
	// Telemetry is the facility telemetry plane, nil unless
	// CampaignConfig.Telemetry opted in.
	Telemetry *telemetry.Plane

	epoch    time.Time
	weights  map[string]float64
	launched bool
	scans    int
}

// NewCampaign builds the campaign at the given epoch. Tenants are
// registered up front in a fixed order (per beamline: streaming, then
// file) so the scheduler's tie-break is deterministic and /api/sched
// reports every tenant before traffic arrives.
func NewCampaign(epoch time.Time, cfg CampaignConfig) *Campaign {
	if cfg.Beamlines < 1 {
		cfg.Beamlines = 1
	}
	if cfg.ScanInterval <= 0 {
		cfg.ScanInterval = 45 * time.Minute
	}
	if cfg.FileTarget <= 0 {
		cfg.FileTarget = 45 * time.Minute
	}
	base := NewBeamline(epoch, cfg.Sim)
	base.SLO.AddObjectives(CampaignObjectives(cfg.FileTarget)...)
	if cfg.Metrics != nil {
		base.Flows.SetMetrics(cfg.Metrics)
	}

	c := &Campaign{
		Cfg:     cfg,
		Base:    base,
		epoch:   epoch,
		weights: map[string]float64{},
	}
	c.Sched = sched.New(base.Engine, sched.Config{
		Workers:   cfg.Workers,
		Reserved:  cfg.Reserved,
		Journal:   base.Journal,
		Metrics:   cfg.Metrics,
		Recorder:  base.SLO,
		Burn:      base.SLO,
		Admission: cfg.Admission,
		Targets: map[sched.Class]time.Duration{
			sched.ClassStreaming: 10 * time.Second,
			sched.ClassFile:      cfg.FileTarget,
		},
	})
	base.Flows.AddStartObserver(c.Sched)
	if cfg.Telemetry {
		c.Telemetry = base.NewTelemetryPlane(cfg.Metrics, cfg.TelemetryConfig, map[string]string{
			ObjCampaignFile:      SiteNERSC,
			ObjCampaignStreaming: SiteALS,
		})
	}

	for i := 0; i < cfg.Beamlines; i++ {
		bl := *base // share every service; own identity and randomness
		bl.Name = fmt.Sprintf("bl%d", i)
		bl.scanPrefix = bl.Name
		bl.rng = rand.New(rand.NewSource(cfg.Sim.Seed + int64(i+1)*7919))
		w := 1.0
		if i < len(cfg.Weights) && cfg.Weights[i] > 0 {
			w = cfg.Weights[i]
		}
		c.weights[bl.Name] = w
		c.Beamlines = append(c.Beamlines, &bl)
		c.Sched.Register(sched.Tenant{Beamline: bl.Name, Class: sched.ClassStreaming, Weight: 1})
		c.Sched.Register(sched.Tenant{Beamline: bl.Name, Class: sched.ClassFile, Weight: w})
	}
	return c
}

func (c *Campaign) tenant(bl *Beamline, class sched.Class) sched.Tenant {
	w := 1.0
	if class == sched.ClassFile {
		w = c.weights[bl.Name]
	}
	return sched.Tenant{Beamline: bl.Name, Class: class, Weight: w}
}

// submitScan acquires scan n on bl (writing its raw file) and submits
// both branches to the scheduler: the streaming preview over the
// GPU-resident window, and the file branch (staging flow, then
// reconstruction alternating NERSC/ALCF so both facilities carry load).
func (c *Campaign) submitScan(p *sim.Proc, bl *Beamline, n int) {
	scan, err := bl.NewScan(p, n)
	if err != nil {
		return
	}
	c.scans++
	preview := *scan
	if preview.RawBytes > previewWindowBytes {
		preview.RawBytes = previewWindowBytes
	}
	c.Sched.Submit(context.Background(), c.tenant(bl, sched.ClassStreaming), FlowStreaming,
		func(ctx context.Context, wp *sim.Proc) {
			bl.StreamingPreviewSim(ctx, wp, &preview)
		})
	c.submitFile(bl, scan, n)
}

// submitFile queues the scan's file branch as one scheduler item; the
// returned bool is false when admission shed it.
func (c *Campaign) submitFile(bl *Beamline, scan *Scan, n int) bool {
	name := FlowNERSC
	if n%2 == 1 {
		name = FlowALCF
	}
	return c.Sched.Submit(context.Background(), c.tenant(bl, sched.ClassFile), name,
		func(ctx context.Context, wp *sim.Proc) {
			if err := bl.NewFile832Flow(ctx, wp, scan); err != nil {
				return
			}
			if n%2 == 0 {
				bl.NERSCReconFlow(ctx, wp, scan)
			} else {
				bl.ALCFReconFlow(ctx, wp, scan)
			}
		})
}

// Launch starts the worker pool, one producer proc per beamline
// (scansPer scans each, desynchronized like real beamtimes), the
// optional reprocessing burst, and a drain proc that closes the
// scheduler once every producer finishes. It does not run the engine:
// callers may RunUntil a checkpoint (to read fairness mid-backlog)
// before letting the campaign drain with Run.
func (c *Campaign) Launch(scansPer int) {
	if c.launched {
		return
	}
	c.launched = true
	e := c.Base.Engine
	c.Sched.StartWorkers()
	if c.Telemetry != nil {
		c.Telemetry.Start(context.Background(), e, 0)
	}

	var dones []*sim.Signal
	n := len(c.Beamlines)
	for i, bl := range c.Beamlines {
		i, bl := i, bl
		dones = append(dones, e.Go("producer-"+bl.Name, func(p *sim.Proc) {
			p.Sleep(time.Duration(i) * c.Cfg.ScanInterval / time.Duration(n))
			for s := 0; s < scansPer; s++ {
				c.submitScan(p, bl, s)
				jitter := 0.5 + bl.rng.Float64()
				p.Sleep(time.Duration(float64(c.Cfg.ScanInterval) * jitter))
			}
		}))
	}
	if c.Cfg.BurstScans > 0 {
		dones = append(dones, e.Go("producer-burst", func(p *sim.Proc) {
			p.Sleep(c.Cfg.BurstAt)
			bl := c.Beamlines[0]
			for s := 0; s < c.Cfg.BurstScans; s++ {
				// Reprocessing backlog: file branch only, submitted as
				// fast as the detector store can replay raw files.
				scan, err := bl.NewScan(p, 9000+s)
				if err != nil {
					return
				}
				c.scans++
				c.submitFile(bl, scan, 9000+s)
				p.Sleep(30 * time.Second)
			}
		}))
	}
	e.Go("campaign-drain", func(p *sim.Proc) {
		sim.WaitAll(p, dones...)
		c.Sched.Drain(p)
		if c.Telemetry != nil {
			// The plane's procs exit at their next wakeup, so the drained
			// campaign ends at most one sample interval later instead of
			// deadlocking the engine on live telemetry procs.
			c.Telemetry.Stop()
		}
	})
}

// Run launches the campaign and runs the engine until every accepted
// run has finished or shed.
func (c *Campaign) Run(scansPer int) *CampaignResult {
	c.Launch(scansPer)
	c.Base.Engine.Run()
	return c.Result()
}

// CampaignResult summarizes a drained campaign.
type CampaignResult struct {
	Beamlines, Workers, Reserved int
	// Scans produced across all beamlines, burst included.
	Scans int
	// CompletedRuns counts scheduler items that ran to completion
	// (shed items are excluded).
	CompletedRuns int
	// Makespan is epoch → last run drained.
	Makespan    time.Duration
	RunsPerHour float64
	// StreamingUnder10sPct is the worst streaming tenant's end-to-end
	// attainment against the 10 s target.
	StreamingUnder10sPct float64
	Deferred, Shed       int
	Report               sched.Report
}

// Result snapshots the campaign's outcome; call after Run (or after a
// checkpoint for an in-flight view).
func (c *Campaign) Result() *CampaignResult {
	rep := c.Sched.Snapshot()
	res := &CampaignResult{
		Beamlines: len(c.Beamlines),
		Workers:   rep.Workers,
		Reserved:  rep.Reserved,
		Scans:     c.scans,
		Makespan:  c.Base.Engine.Now().Sub(c.epoch),
		Deferred:  rep.TotalDeferred,
		Shed:      rep.TotalShed,
		Report:    rep,
	}
	minStream := 100.0
	for _, t := range rep.Tenants {
		res.CompletedRuns += t.Completed
		if t.Class == sched.ClassStreaming && t.AttainmentPct < minStream {
			minStream = t.AttainmentPct
		}
	}
	res.StreamingUnder10sPct = minStream
	if h := res.Makespan.Hours(); h > 0 {
		res.RunsPerHour = float64(res.CompletedRuns) / h
	}
	return res
}

// FileShareDeviation returns the worst relative deviation (percent)
// between each file tenant's share of completed runs and its fair share
// by weight. The figure is meaningful while every file tenant is still
// backlogged — measure it at a mid-campaign checkpoint via
// Engine.RunUntil + Snapshot, not after drain (a drained campaign's
// shares converge to submission shares regardless of weights).
func FileShareDeviation(rep sched.Report) float64 {
	var sumW, total float64
	for _, t := range rep.Tenants {
		if t.Class == sched.ClassFile {
			sumW += t.Weight
			total += float64(t.Completed)
		}
	}
	if sumW == 0 || total == 0 {
		return 0
	}
	worst := 0.0
	for _, t := range rep.Tenants {
		if t.Class != sched.ClassFile {
			continue
		}
		expected := t.Weight / sumW
		actual := float64(t.Completed) / total
		if dev := math.Abs(actual-expected) / expected * 100; dev > worst {
			worst = dev
		}
	}
	return worst
}

package core

import (
	"context"
	"time"

	"repro/internal/flow"
	"repro/internal/sim"
)

// WorkerPools models the paper's Prefect worker configuration: generous
// concurrency for scan staging, deliberately low concurrency for HPC job
// submission "to prevent queue conflicts".
type WorkerPools struct {
	Staging *flow.SimLimiter // new_file_832 staging tasks
	HPC     *flow.SimLimiter // nersc/alcf submission tasks
	Prune   *flow.SimLimiter // scheduled pruning tasks
}

// NewWorkerPools creates the pools with the production-like sizes.
func NewWorkerPools(e *sim.Engine) *WorkerPools {
	return &WorkerPools{
		Staging: flow.NewSimLimiter(e, 8),
		HPC:     flow.NewSimLimiter(e, 2),
		Prune:   flow.NewSimLimiter(e, 4),
	}
}

// RunGatedCampaign drives n scans like RunProductionCampaign but routes
// every flow through its worker pool, so HPC submissions queue behind the
// low-concurrency gate exactly as the production workers enforce.
func (b *Beamline) RunGatedCampaign(ctx context.Context, pools *WorkerPools, n int) *Table2Result {
	if ctx == nil {
		ctx = context.Background()
	}
	b.Engine.Go("campaign", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			scan, err := b.NewScan(p, i)
			if err != nil {
				continue
			}
			sc := scan
			b.Engine.Go("pipeline-"+sc.ID, func(p *sim.Proc) {
				pools.Staging.Acquire(flow.SimEnv{P: p})
				err := b.NewFile832Flow(ctx, p, sc)
				pools.Staging.Release()
				if err != nil {
					return
				}
				b.Engine.Go("nersc-"+sc.ID, func(p *sim.Proc) {
					pools.HPC.Acquire(flow.SimEnv{P: p})
					defer pools.HPC.Release()
					b.NERSCReconFlow(ctx, p, sc)
				})
				b.Engine.Go("alcf-"+sc.ID, func(p *sim.Proc) {
					pools.HPC.Acquire(flow.SimEnv{P: p})
					defer pools.HPC.Release()
					b.ALCFReconFlow(ctx, p, sc)
				})
			})
			p.Sleep(3*time.Minute + time.Duration(b.rng.Float64()*float64(2*time.Minute)))
		}
	})
	b.Engine.Run()
	res := &Table2Result{SuccessRate: map[string]float64{}}
	for _, name := range []string{FlowNewFile, FlowNERSC, FlowALCF} {
		res.Rows = append(res.Rows, Table2Row{Flow: name, Summary: b.Flows.Summary(name, n)})
		res.SuccessRate[name] = b.Flows.SuccessRate(name)
	}
	return res
}

// StartPruningFlows schedules the storage-saturation guard: every
// `interval` of virtual time (for `total`), a prune flow sweeps the
// age-based retention policy across the beamline and scratch tiers,
// recording a FlowPrune run.
func (b *Beamline) StartPruningFlows(interval, total time.Duration) {
	b.Engine.Go("prune-scheduler", func(p *sim.Proc) {
		for elapsed := time.Duration(0); elapsed < total; elapsed += interval {
			p.Sleep(interval)
			fc := b.Flows.Start(nil, FlowPrune, flow.SimEnv{P: p})
			err := fc.Task("prune_tiers", flow.TaskOptions{}, func(context.Context) error {
				now := p.Now()
				for _, st := range []interface {
					PruneExpired(time.Time) (int, int64)
				}{b.Detector, b.DataSrv, b.Scratch} {
					st.PruneExpired(now)
				}
				p.Sleep(30 * time.Second) // sweep cost
				return nil
			})
			fc.Complete(err)
		}
	})
}

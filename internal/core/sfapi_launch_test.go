package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/facility"
	"repro/internal/msgq"
	"repro/internal/phantom"
	"repro/internal/pva"
	"repro/internal/tomo"
)

// TestStreamingServiceLaunchedViaSFAPI reproduces the user-experience path
// of Figure 2B: the beamline web app launches the NERSC streaming service
// through the Superfacility API, then a scan streams through and the
// preview returns. The SFAPI job wraps the real StreamingService.
func TestStreamingServiceLaunchedViaSFAPI(t *testing.T) {
	ioc, err := pva.NewServer("127.0.0.1:0", 8192)
	if err != nil {
		t.Fatal(err)
	}
	defer ioc.Close()
	sink, err := msgq.NewPull("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	api := facility.NewSFAPI("als-collab-token")
	api.Register("streaming_service", func(ctx context.Context, args map[string]string) error {
		svc := &StreamingService{
			PVAAddr:     args["pva_addr"],
			Channel:     args["channel"],
			PreviewAddr: args["preview_addr"],
			Recon:       tomo.ReconOptions{Algorithm: tomo.AlgFBP, Filter: tomo.SheppLoganFilter},
		}
		return svc.Run(ctx)
	})

	// The web app's "start streaming service" button.
	job, err := api.Submit("streaming_service", map[string]string{
		"pva_addr": ioc.Addr(), "channel": "bl832:det", "preview_addr": sink.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "service subscription", func() bool {
		return ioc.Monitors("bl832:det") >= 1
	})

	// The user starts a scan.
	truth := phantom.SheppLogan3D(24, 4)
	acq := tomo.Acquire(truth, tomo.UniformAngles(32), 24, tomo.AcquireOptions{I0: 2e4, Seed: 4})
	if err := PublishAcquisition(ioc, "bl832:det", "sfapi-scan", acq, 0); err != nil {
		t.Fatal(err)
	}
	msg, err := sink.Recv(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	h, _, err := DecodePreview(msg)
	if err != nil || h.ScanID != "sfapi-scan" {
		t.Fatalf("preview %+v err %v", h, err)
	}

	// Shutting the stream ends the job cleanly; its SFAPI record
	// completes.
	ioc.Close()
	final, err := api.Wait(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != facility.Completed {
		t.Fatalf("job state %v (%s)", final.State, final.Error)
	}
}

package dxfile

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// buildSeedFile returns the bytes of a small valid container.
func buildSeedFile(t testing.TB) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "seed.dxf")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.ChunkBytes = 16 // several chunks even for small data
	w.SetAttr("exchange", "facility", "als")
	if err := w.WriteFloat64("exchange/theta", []int{4}, []float64{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteUint16("exchange/data", []int{2, 2, 2}, make([]float64, 8)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// FuzzDXFileRoundTrip opens arbitrary bytes as a container (must error,
// never panic — the footer index is untrusted input) and checks that
// writing a dataset derived from the same bytes reads back bit-identical.
func FuzzDXFileRoundTrip(f *testing.F) {
	seed := buildSeedFile(f)
	f.Add(seed)
	f.Add(seed[:len(seed)-5])        // truncated trailer
	f.Add(append([]byte("DXF1"), 0)) // header only
	mut := append([]byte(nil), seed...)
	mut[len(mut)/2] ^= 0xff // corrupt a chunk or footer byte
	f.Add(mut)

	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		in := filepath.Join(dir, "in.dxf")
		if err := os.WriteFile(in, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if r, err := Open(in); err == nil {
			for _, name := range r.Datasets() {
				if _, _, err := r.Dims(name); err != nil {
					t.Fatalf("open accepted %q but Dims failed: %v", name, err)
				}
				// Reads may fail (chunk checksums) but must not panic.
				r.ReadFloat64(name)
			}
			r.Close()
		}

		// Round trip: the input bytes, reinterpreted as float64s, must
		// survive write→read bit-exactly (NaN payloads included).
		var data []float64
		for i := 0; i+8 <= len(raw) && len(data) < 32; i += 8 {
			data = append(data, math.Float64frombits(binary.LittleEndian.Uint64(raw[i:])))
		}
		if len(data) == 0 {
			return
		}
		out := filepath.Join(dir, "out.dxf")
		w, err := Create(out)
		if err != nil {
			t.Fatal(err)
		}
		w.ChunkBytes = 24 // force chunk boundaries mid-dataset
		if err := w.WriteFloat64("exchange/data", []int{len(data)}, data); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := Open(out)
		if err != nil {
			t.Fatalf("reopen fresh container: %v", err)
		}
		defer r.Close()
		dims, got, err := r.ReadFloat64("exchange/data")
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		if len(dims) != 1 || dims[0] != len(data) || len(got) != len(data) {
			t.Fatalf("dims %v, %d values, want [%d]", dims, len(got), len(data))
		}
		for i := range data {
			if math.Float64bits(got[i]) != math.Float64bits(data[i]) {
				t.Fatalf("value %d: %x -> %x", i, math.Float64bits(data[i]), math.Float64bits(got[i]))
			}
		}
	})
}

package dxfile

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/phantom"
	"repro/internal/tomo"
)

func tempPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join(t.TempDir(), name)
}

func TestRoundTripFloat64(t *testing.T) {
	p := tempPath(t, "a.dxf")
	w, err := Create(p)
	if err != nil {
		t.Fatal(err)
	}
	data := []float64{1.5, -2.25, math.Pi, 0}
	if err := w.WriteFloat64("exchange/data", []int{2, 2}, data); err != nil {
		t.Fatal(err)
	}
	w.SetAttr("exchange", "units", "counts")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	dims, got, err := r.ReadFloat64("exchange/data")
	if err != nil {
		t.Fatal(err)
	}
	if dims[0] != 2 || dims[1] != 2 {
		t.Fatalf("dims = %v", dims)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("data[%d] = %v, want %v", i, got[i], data[i])
		}
	}
	if v, ok := r.Attr("exchange", "units"); !ok || v != "counts" {
		t.Fatalf("attr = %q, %v", v, ok)
	}
	if _, ok := r.Attr("exchange", "missing"); ok {
		t.Fatal("missing attr should not be found")
	}
	if _, ok := r.Attr("nope", "units"); ok {
		t.Fatal("missing group should not be found")
	}
}

func TestUint16ClampAndRoundTrip(t *testing.T) {
	p := tempPath(t, "u.dxf")
	w, _ := Create(p)
	if err := w.WriteUint16("d", []int{4}, []float64{-5, 0, 1000, 1e9}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, got, err := r.ReadFloat64("d")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 1000, 65535}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFloat32Narrowing(t *testing.T) {
	p := tempPath(t, "f.dxf")
	w, _ := Create(p)
	if err := w.WriteFloat32("d", []int{2}, []float64{1.5, math.Pi}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	r, _ := Open(p)
	defer r.Close()
	_, got, _ := r.ReadFloat64("d")
	if got[0] != 1.5 {
		t.Errorf("exact f32 value changed: %v", got[0])
	}
	if math.Abs(got[1]-math.Pi) > 1e-6 {
		t.Errorf("pi lost too much precision: %v", got[1])
	}
}

func TestMultiChunkDataset(t *testing.T) {
	p := tempPath(t, "big.dxf")
	w, _ := Create(p)
	w.ChunkBytes = 64 // force many chunks
	n := 1000
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i)
	}
	if err := w.WriteFloat64("d", []int{n}, data); err != nil {
		t.Fatal(err)
	}
	w.Close()
	r, err := Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, got, err := r.ReadFloat64("d")
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("chunked roundtrip mismatch at %d", i)
		}
	}
}

func TestEmptyDataset(t *testing.T) {
	p := tempPath(t, "e.dxf")
	w, _ := Create(p)
	if err := w.WriteFloat64("empty", []int{0}, nil); err != nil {
		t.Fatal(err)
	}
	w.Close()
	r, err := Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	dims, got, err := r.ReadFloat64("empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || dims[0] != 0 {
		t.Fatalf("empty dataset: dims=%v len=%d", dims, len(got))
	}
}

func TestDuplicateDatasetRejected(t *testing.T) {
	p := tempPath(t, "dup.dxf")
	w, _ := Create(p)
	if err := w.WriteFloat64("d", []int{1}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFloat64("d", []int{1}, []float64{2}); err == nil {
		t.Fatal("duplicate dataset should be rejected")
	}
	w.Close()
}

func TestDimMismatchRejected(t *testing.T) {
	p := tempPath(t, "m.dxf")
	w, _ := Create(p)
	defer w.Close()
	if err := w.WriteFloat64("d", []int{3}, []float64{1, 2}); err == nil {
		t.Fatal("dim/data mismatch should be rejected")
	}
	if err := w.WriteFloat64("neg", []int{-1}, nil); err == nil {
		t.Fatal("negative dim should be rejected")
	}
}

func TestWriteAfterCloseRejected(t *testing.T) {
	p := tempPath(t, "c.dxf")
	w, _ := Create(p)
	w.Close()
	if err := w.WriteFloat64("d", []int{1}, []float64{1}); err == nil {
		t.Fatal("write after close should fail")
	}
	if err := w.Close(); err != nil {
		t.Fatal("double close should be a no-op")
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	p := tempPath(t, "g.dxf")
	if err := os.WriteFile(p, []byte("not a dxf file at all, definitely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(p); err == nil {
		t.Fatal("garbage file should not open")
	}
	short := tempPath(t, "s.dxf")
	os.WriteFile(short, []byte("DX"), 0o644)
	if _, err := Open(short); err == nil {
		t.Fatal("short file should not open")
	}
}

func TestOpenRejectsTruncated(t *testing.T) {
	p := tempPath(t, "t.dxf")
	w, _ := Create(p)
	w.WriteFloat64("d", []int{4}, []float64{1, 2, 3, 4})
	w.Close()
	raw, _ := os.ReadFile(p)
	os.WriteFile(p, raw[:len(raw)-10], 0o644)
	if _, err := Open(p); err == nil {
		t.Fatal("truncated file should not open")
	}
}

func TestCorruptChunkDetected(t *testing.T) {
	p := tempPath(t, "cc.dxf")
	w, _ := Create(p)
	w.WriteFloat64("d", []int{4}, []float64{1, 2, 3, 4})
	w.Close()
	raw, _ := os.ReadFile(p)
	raw[6] ^= 0xFF // flip a bit inside the first chunk payload
	os.WriteFile(p, raw, 0o644)
	r, err := Open(p) // footer is intact
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, err := r.ReadFloat64("d"); err == nil {
		t.Fatal("corrupt chunk should fail checksum")
	}
}

func TestMissingDataset(t *testing.T) {
	p := tempPath(t, "md.dxf")
	w, _ := Create(p)
	w.Close()
	r, _ := Open(p)
	defer r.Close()
	if _, _, err := r.ReadFloat64("nope"); err == nil {
		t.Fatal("missing dataset should error")
	}
	if _, _, err := r.Dims("nope"); err == nil {
		t.Fatal("missing dataset dims should error")
	}
}

func TestDatasetsOrderAndDims(t *testing.T) {
	p := tempPath(t, "o.dxf")
	w, _ := Create(p)
	w.WriteFloat64("b", []int{1}, []float64{1})
	w.WriteUint16("a", []int{2}, []float64{1, 2})
	w.Close()
	r, _ := Open(p)
	defer r.Close()
	names := r.Datasets()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Fatalf("datasets = %v", names)
	}
	dims, dt, err := r.Dims("a")
	if err != nil || dims[0] != 2 || dt != U16 {
		t.Fatalf("Dims(a) = %v %v %v", dims, dt, err)
	}
}

// Property: arbitrary float64 payloads round-trip exactly.
func TestRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(data []float64) bool {
		i++
		p := filepath.Join(dir, "q", "")
		os.MkdirAll(p, 0o755)
		path := filepath.Join(p, "x"+string(rune('a'+i%26))+".dxf")
		w, err := Create(path)
		if err != nil {
			return false
		}
		w.ChunkBytes = 32
		if err := w.WriteFloat64("d", []int{len(data)}, data); err != nil {
			return false
		}
		if err := w.Close(); err != nil {
			return false
		}
		r, err := Open(path)
		if err != nil {
			return false
		}
		defer r.Close()
		_, got, err := r.ReadFloat64("d")
		if err != nil || len(got) != len(data) {
			return false
		}
		for j := range data {
			// NaN round-trips bit-exactly through Float64bits.
			if math.Float64bits(got[j]) != math.Float64bits(data[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDXchangeRoundTrip(t *testing.T) {
	truth := phantom.SheppLogan3D(16, 4)
	theta := tomo.UniformAngles(8)
	acq := tomo.Acquire(truth, theta, 16, tomo.DefaultAcquire())
	meta := ScanMeta{
		ScanID: "20260704_001", Beamline: "8.3.2", Sample: "shepp",
		Instrument: "microCT", Operator: "als", StartTime: "2026-07-04T08:00:00Z",
		Energy: "25",
	}
	p := tempPath(t, "scan.dxf")
	if err := WriteDXchange(p, acq, meta); err != nil {
		t.Fatal(err)
	}
	back, gotMeta, err := ReadDXchange(p)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta = %+v, want %+v", gotMeta, meta)
	}
	if back.Raw.NAngles != 8 || back.Raw.NRows != 4 || back.Raw.NCols != 16 {
		t.Fatalf("dims %d/%d/%d", back.Raw.NAngles, back.Raw.NRows, back.Raw.NCols)
	}
	// Counts were clamped to u16 — compare elementwise against the
	// clamped original.
	for i, v := range acq.Raw.Data {
		want := math.Round(math.Max(0, math.Min(65535, v)))
		if math.Abs(back.Raw.Data[i]-want) > 1 {
			t.Fatalf("data[%d] = %v, want ~%v", i, back.Raw.Data[i], want)
		}
	}
	for i := range acq.Raw.Theta {
		if back.Raw.Theta[i] != acq.Raw.Theta[i] {
			t.Fatal("theta mismatch")
		}
	}
}

func TestDXchangeRejectsInvalid(t *testing.T) {
	acq := &tomo.Acquisition{Raw: &tomo.ProjectionSet{NAngles: 2, NRows: 1, NCols: 1}}
	if err := WriteDXchange(tempPath(t, "bad.dxf"), acq, ScanMeta{}); err == nil {
		t.Fatal("invalid acquisition should be rejected")
	}
}

func BenchmarkWriteDXchange(b *testing.B) {
	truth := phantom.SheppLogan3D(32, 8)
	acq := tomo.Acquire(truth, tomo.UniformAngles(32), 32, tomo.DefaultAcquire())
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := filepath.Join(dir, "bench.dxf")
		if err := WriteDXchange(p, acq, ScanMeta{ScanID: "b"}); err != nil {
			b.Fatal(err)
		}
	}
}

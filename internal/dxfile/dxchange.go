package dxfile

import (
	"fmt"

	"repro/internal/tomo"
)

// DXchange dataset paths, matching the layout the ALS file-writer embeds.
const (
	PathData  = "exchange/data"
	PathWhite = "exchange/data_white"
	PathDark  = "exchange/data_dark"
	PathTheta = "exchange/theta"
)

// ScanMeta is the instrument metadata the file-writer validates and embeds
// with every acquisition (the per-scan subset of what SciCat later
// catalogs).
type ScanMeta struct {
	ScanID     string
	Beamline   string
	Sample     string
	Instrument string
	Operator   string
	StartTime  string // RFC3339
	Energy     string // keV, as recorded by the controls system
}

// attrs returns the metadata as path/key pairs under the "measurement"
// group.
func (m ScanMeta) attrs() map[string]string {
	return map[string]string{
		"scan_id":    m.ScanID,
		"beamline":   m.Beamline,
		"sample":     m.Sample,
		"instrument": m.Instrument,
		"operator":   m.Operator,
		"start_time": m.StartTime,
		"energy":     m.Energy,
	}
}

// WriteDXchange writes a raw acquisition in DXchange layout: detector
// counts as uint16 (the native sample type), flat/dark references, the
// angle list, and scan metadata.
func WriteDXchange(path string, acq *tomo.Acquisition, meta ScanMeta) error {
	if err := acq.Raw.Validate(); err != nil {
		return fmt.Errorf("dxfile: invalid acquisition: %w", err)
	}
	w, err := Create(path)
	if err != nil {
		return err
	}
	ok := false
	defer func() {
		if !ok {
			w.Close()
		}
	}()
	raw := acq.Raw
	if err := w.WriteUint16(PathData, []int{raw.NAngles, raw.NRows, raw.NCols}, raw.Data); err != nil {
		return err
	}
	if err := w.WriteUint16(PathWhite, []int{raw.NRows, raw.NCols}, acq.Flat); err != nil {
		return err
	}
	if err := w.WriteUint16(PathDark, []int{raw.NRows, raw.NCols}, acq.Dark); err != nil {
		return err
	}
	if err := w.WriteFloat64(PathTheta, []int{raw.NAngles}, raw.Theta); err != nil {
		return err
	}
	for k, v := range meta.attrs() {
		w.SetAttr("measurement", k, v)
	}
	ok = true
	return w.Close()
}

// ReadDXchange reads a DXchange-layout file back into an acquisition
// (without ground truth) and its metadata.
func ReadDXchange(path string) (*tomo.Acquisition, ScanMeta, error) {
	r, err := Open(path)
	if err != nil {
		return nil, ScanMeta{}, err
	}
	defer r.Close()

	dims, data, err := r.ReadFloat64(PathData)
	if err != nil {
		return nil, ScanMeta{}, err
	}
	if len(dims) != 3 {
		return nil, ScanMeta{}, fmt.Errorf("dxfile: %s has %d dims, want 3", PathData, len(dims))
	}
	_, theta, err := r.ReadFloat64(PathTheta)
	if err != nil {
		return nil, ScanMeta{}, err
	}
	if len(theta) != dims[0] {
		return nil, ScanMeta{}, fmt.Errorf("dxfile: theta length %d != %d angles", len(theta), dims[0])
	}
	_, flat, err := r.ReadFloat64(PathWhite)
	if err != nil {
		return nil, ScanMeta{}, err
	}
	_, dark, err := r.ReadFloat64(PathDark)
	if err != nil {
		return nil, ScanMeta{}, err
	}
	ps := &tomo.ProjectionSet{
		NAngles: dims[0], NRows: dims[1], NCols: dims[2],
		Theta: theta, Data: data,
	}
	if err := ps.Validate(); err != nil {
		return nil, ScanMeta{}, err
	}
	get := func(k string) string {
		v, _ := r.Attr("measurement", k)
		return v
	}
	meta := ScanMeta{
		ScanID:     get("scan_id"),
		Beamline:   get("beamline"),
		Sample:     get("sample"),
		Instrument: get("instrument"),
		Operator:   get("operator"),
		StartTime:  get("start_time"),
		Energy:     get("energy"),
	}
	return &tomo.Acquisition{Raw: ps, Flat: flat, Dark: dark}, meta, nil
}

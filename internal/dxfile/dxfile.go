// Package dxfile implements a from-scratch chunked scientific data
// container standing in for the beamline's HDF5 files. Like HDF5 it stores
// named, n-dimensional, typed datasets organized in slash-separated groups
// with attributes; unlike HDF5 it is a simple write-once format:
//
//	magic "DXF1"
//	chunk stream: for each dataset, fixed-size chunks each followed by a
//	              CRC-32 of its payload
//	footer: JSON index of datasets (name, dtype, dims, chunk offsets)
//	        and attributes
//	trailer: footer offset (8 bytes LE) + footer CRC-32 + magic "DXF1"
//
// The package also provides DXchange-layout helpers (exchange/data,
// exchange/data_white, exchange/data_dark, exchange/theta) matching the
// files the 8.3.2 file-writer service produces.
package dxfile

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

var magic = []byte("DXF1")

// DType identifies the element type of a dataset.
type DType string

// Supported element types.
const (
	U16 DType = "u16"
	F32 DType = "f32"
	F64 DType = "f64"
)

func (d DType) size() (int, error) {
	switch d {
	case U16:
		return 2, nil
	case F32:
		return 4, nil
	case F64:
		return 8, nil
	}
	return 0, fmt.Errorf("dxfile: unknown dtype %q", d)
}

// DefaultChunkBytes is the chunk payload size used by Writer unless
// overridden. 1 MiB matches the detector's row-group flush size.
const DefaultChunkBytes = 1 << 20

// datasetIndex is the footer record for one dataset.
type datasetIndex struct {
	Name       string  `json:"name"`
	DType      DType   `json:"dtype"`
	Dims       []int   `json:"dims"`
	ChunkBytes int     `json:"chunk_bytes"`
	Offsets    []int64 `json:"offsets"` // file offset of each chunk payload
	Sizes      []int   `json:"sizes"`   // payload bytes per chunk
}

type footer struct {
	Datasets []datasetIndex               `json:"datasets"`
	Attrs    map[string]map[string]string `json:"attrs"` // group path -> key -> value
}

// Writer writes a DXF container. Datasets are streamed in chunks; Close
// finalizes the footer and trailer.
type Writer struct {
	f          *os.File
	off        int64
	ChunkBytes int
	ftr        footer
	names      map[string]bool
	closed     bool
}

// Create opens path for writing and emits the header.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(magic); err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{
		f:          f,
		off:        int64(len(magic)),
		ChunkBytes: DefaultChunkBytes,
		ftr:        footer{Attrs: map[string]map[string]string{}},
		names:      map[string]bool{},
	}, nil
}

// SetAttr records a string attribute on a group or dataset path.
func (w *Writer) SetAttr(path, key, value string) {
	m := w.ftr.Attrs[path]
	if m == nil {
		m = map[string]string{}
		w.ftr.Attrs[path] = m
	}
	m[key] = value
}

// WriteFloat64 writes a float64 dataset with the given dimensions.
func (w *Writer) WriteFloat64(name string, dims []int, data []float64) error {
	raw := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	return w.writeRaw(name, F64, dims, raw)
}

// WriteFloat32 writes a float32 dataset from float64 input (narrowing).
func (w *Writer) WriteFloat32(name string, dims []int, data []float64) error {
	raw := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(float32(v)))
	}
	return w.writeRaw(name, F32, dims, raw)
}

// WriteUint16 writes a uint16 dataset — the detector's native sample type.
// Values are clamped to [0, 65535].
func (w *Writer) WriteUint16(name string, dims []int, data []float64) error {
	raw := make([]byte, 2*len(data))
	for i, v := range data {
		if v < 0 {
			v = 0
		}
		if v > 65535 {
			v = 65535
		}
		binary.LittleEndian.PutUint16(raw[i*2:], uint16(v))
	}
	return w.writeRaw(name, U16, dims, raw)
}

func elemCount(dims []int) (int, error) {
	n := 1
	for _, d := range dims {
		if d < 0 {
			return 0, fmt.Errorf("dxfile: negative dimension %d", d)
		}
		if d > 0 && n > math.MaxInt/d {
			return 0, fmt.Errorf("dxfile: dims %v overflow element count", dims)
		}
		n *= d
	}
	return n, nil
}

func (w *Writer) writeRaw(name string, dt DType, dims []int, raw []byte) error {
	if w.closed {
		return fmt.Errorf("dxfile: write to closed writer")
	}
	if w.names[name] {
		return fmt.Errorf("dxfile: duplicate dataset %q", name)
	}
	es, err := dt.size()
	if err != nil {
		return err
	}
	n, err := elemCount(dims)
	if err != nil {
		return err
	}
	if n*es != len(raw) {
		return fmt.Errorf("dxfile: dataset %q: dims %v need %d bytes, have %d",
			name, dims, n*es, len(raw))
	}
	idx := datasetIndex{Name: name, DType: dt, Dims: append([]int(nil), dims...), ChunkBytes: w.ChunkBytes}
	for start := 0; start < len(raw) || start == 0; start += w.ChunkBytes {
		end := start + w.ChunkBytes
		if end > len(raw) {
			end = len(raw)
		}
		payload := raw[start:end]
		if _, err := w.f.Write(payload); err != nil {
			return err
		}
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
		if _, err := w.f.Write(crc[:]); err != nil {
			return err
		}
		idx.Offsets = append(idx.Offsets, w.off)
		idx.Sizes = append(idx.Sizes, len(payload))
		w.off += int64(len(payload)) + 4
		if len(raw) == 0 {
			break
		}
	}
	w.ftr.Datasets = append(w.ftr.Datasets, idx)
	w.names[name] = true
	return nil
}

// Close writes the footer and trailer and closes the file.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	ftrBytes, err := json.Marshal(w.ftr)
	if err != nil {
		w.f.Close()
		return err
	}
	ftrOff := w.off
	if _, err := w.f.Write(ftrBytes); err != nil {
		w.f.Close()
		return err
	}
	var trailer [16]byte
	binary.LittleEndian.PutUint64(trailer[0:], uint64(ftrOff))
	binary.LittleEndian.PutUint32(trailer[8:], crc32.ChecksumIEEE(ftrBytes))
	copy(trailer[12:], magic)
	if _, err := w.f.Write(trailer[:]); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Reader reads a DXF container.
type Reader struct {
	f      *os.File
	ftr    footer
	byName map[string]*datasetIndex
}

// Open opens and validates a DXF container: magic, trailer, and footer CRC.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < int64(len(magic))+16 {
		f.Close()
		return nil, fmt.Errorf("dxfile: %s: file too short", path)
	}
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		return nil, err
	}
	if string(hdr) != string(magic) {
		f.Close()
		return nil, fmt.Errorf("dxfile: %s: bad magic", path)
	}
	var trailer [16]byte
	if _, err := f.ReadAt(trailer[:], st.Size()-16); err != nil {
		f.Close()
		return nil, err
	}
	if string(trailer[12:16]) != string(magic) {
		f.Close()
		return nil, fmt.Errorf("dxfile: %s: bad trailer magic (truncated write?)", path)
	}
	ftrOff := int64(binary.LittleEndian.Uint64(trailer[0:]))
	wantCRC := binary.LittleEndian.Uint32(trailer[8:])
	if ftrOff < int64(len(magic)) || ftrOff > st.Size()-16 {
		f.Close()
		return nil, fmt.Errorf("dxfile: %s: footer offset out of range", path)
	}
	ftrBytes := make([]byte, st.Size()-16-ftrOff)
	if _, err := f.ReadAt(ftrBytes, ftrOff); err != nil {
		f.Close()
		return nil, err
	}
	if crc32.ChecksumIEEE(ftrBytes) != wantCRC {
		f.Close()
		return nil, fmt.Errorf("dxfile: %s: footer checksum mismatch", path)
	}
	r := &Reader{f: f, byName: map[string]*datasetIndex{}}
	if err := json.Unmarshal(ftrBytes, &r.ftr); err != nil {
		f.Close()
		return nil, fmt.Errorf("dxfile: %s: corrupt footer: %w", path, err)
	}
	if err := r.ftr.validate(ftrOff); err != nil {
		f.Close()
		return nil, fmt.Errorf("dxfile: %s: %w", path, err)
	}
	for i := range r.ftr.Datasets {
		d := &r.ftr.Datasets[i]
		r.byName[d.Name] = d
	}
	return r, nil
}

// validate rejects malformed dataset indexes so the read path can trust
// the footer: the JSON is attacker-adjacent input (a CRC protects against
// accidental corruption, not against a crafted file), and every field it
// carries is later used to size allocations and file reads.
func (ftr *footer) validate(ftrOff int64) error {
	seen := map[string]bool{}
	for _, d := range ftr.Datasets {
		if seen[d.Name] {
			return fmt.Errorf("duplicate dataset %q in footer", d.Name)
		}
		seen[d.Name] = true
		es, err := d.DType.size()
		if err != nil {
			return err
		}
		n, err := elemCount(d.Dims)
		if err != nil {
			return err
		}
		if n > math.MaxInt/es {
			return fmt.Errorf("dataset %q: byte count overflows", d.Name)
		}
		if len(d.Offsets) != len(d.Sizes) {
			return fmt.Errorf("dataset %q: %d offsets vs %d sizes",
				d.Name, len(d.Offsets), len(d.Sizes))
		}
		total := 0
		for i, size := range d.Sizes {
			if size < 0 {
				return fmt.Errorf("dataset %q chunk %d: negative size", d.Name, i)
			}
			off := d.Offsets[i]
			if off < int64(len(magic)) || off+int64(size)+4 > ftrOff {
				return fmt.Errorf("dataset %q chunk %d: out of file bounds", d.Name, i)
			}
			if total > math.MaxInt-size {
				return fmt.Errorf("dataset %q: chunk sizes overflow", d.Name)
			}
			total += size
		}
		if total != n*es {
			return fmt.Errorf("dataset %q: chunks hold %d bytes, dims %v need %d",
				d.Name, total, d.Dims, n*es)
		}
	}
	return nil
}

// Close closes the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// Datasets returns the dataset names in write order.
func (r *Reader) Datasets() []string {
	out := make([]string, len(r.ftr.Datasets))
	for i, d := range r.ftr.Datasets {
		out[i] = d.Name
	}
	return out
}

// Attr returns the attribute value for a path/key, if present.
func (r *Reader) Attr(path, key string) (string, bool) {
	m, ok := r.ftr.Attrs[path]
	if !ok {
		return "", false
	}
	v, ok := m[key]
	return v, ok
}

// Dims returns the dimensions and dtype of a dataset.
func (r *Reader) Dims(name string) ([]int, DType, error) {
	d, ok := r.byName[name]
	if !ok {
		return nil, "", fmt.Errorf("dxfile: no dataset %q", name)
	}
	return append([]int(nil), d.Dims...), d.DType, nil
}

// ReadFloat64 reads any dataset, converting its elements to float64, and
// verifies every chunk checksum.
func (r *Reader) ReadFloat64(name string) ([]int, []float64, error) {
	d, ok := r.byName[name]
	if !ok {
		return nil, nil, fmt.Errorf("dxfile: no dataset %q", name)
	}
	es, err := d.DType.size()
	if err != nil {
		return nil, nil, err
	}
	n, err := elemCount(d.Dims)
	if err != nil {
		return nil, nil, err
	}
	raw := make([]byte, 0, n*es)
	for i, off := range d.Offsets {
		size := d.Sizes[i]
		buf := make([]byte, size+4)
		if _, err := r.f.ReadAt(buf, off); err != nil {
			return nil, nil, fmt.Errorf("dxfile: dataset %q chunk %d: %w", name, i, err)
		}
		payload := buf[:size]
		want := binary.LittleEndian.Uint32(buf[size:])
		if crc32.ChecksumIEEE(payload) != want {
			return nil, nil, fmt.Errorf("dxfile: dataset %q chunk %d: checksum mismatch", name, i)
		}
		raw = append(raw, payload...)
	}
	if len(raw) != n*es {
		return nil, nil, fmt.Errorf("dxfile: dataset %q: have %d bytes, want %d", name, len(raw), n*es)
	}
	out := make([]float64, n)
	switch d.DType {
	case U16:
		for i := range out {
			out[i] = float64(binary.LittleEndian.Uint16(raw[i*2:]))
		}
	case F32:
		for i := range out {
			out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:])))
		}
	case F64:
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
	}
	return append([]int(nil), d.Dims...), out, nil
}

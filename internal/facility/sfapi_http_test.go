package facility

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func newTestAPI(t *testing.T) (*SFAPI, *httptest.Server) {
	t.Helper()
	api := NewSFAPI("tok")
	api.Register("ok", func(ctx context.Context, args map[string]string) error { return nil })
	api.Register("sleep", func(ctx context.Context, args map[string]string) error {
		select {
		case <-time.After(10 * time.Second):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	srv := httptest.NewServer(api.Handler())
	t.Cleanup(srv.Close)
	return api, srv
}

func doReq(t *testing.T, method, url, token string, body interface{}) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPAuthRequired(t *testing.T) {
	_, srv := newTestAPI(t)
	resp := doReq(t, "GET", srv.URL+"/api/v1/status", "", nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no token: status %d", resp.StatusCode)
	}
	resp2 := doReq(t, "GET", srv.URL+"/api/v1/status", "wrong", nil)
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad token: status %d", resp2.StatusCode)
	}
}

func TestHTTPStatus(t *testing.T) {
	_, srv := newTestAPI(t)
	resp := doReq(t, "GET", srv.URL+"/api/v1/status", "tok", nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body map[string]string
	json.NewDecoder(resp.Body).Decode(&body)
	if body["status"] != "active" {
		t.Fatalf("body = %v", body)
	}
}

func TestHTTPSubmitAndPoll(t *testing.T) {
	api, srv := newTestAPI(t)
	resp := doReq(t, "POST", srv.URL+"/api/v1/compute/jobs", "tok",
		map[string]interface{}{"command": "ok", "args": map[string]string{"a": "1"}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var job SFJob
	json.NewDecoder(resp.Body).Decode(&job)
	if job.ID == 0 || job.Command != "ok" {
		t.Fatalf("job = %+v", job)
	}
	if _, err := api.Wait(job.ID); err != nil {
		t.Fatal(err)
	}
	poll := doReq(t, "GET", fmt.Sprintf("%s/api/v1/compute/jobs/%d", srv.URL, job.ID), "tok", nil)
	defer poll.Body.Close()
	var got SFJob
	json.NewDecoder(poll.Body).Decode(&got)
	if got.State != Completed {
		t.Fatalf("state = %v", got.State)
	}
}

func TestHTTPCancel(t *testing.T) {
	api, srv := newTestAPI(t)
	resp := doReq(t, "POST", srv.URL+"/api/v1/compute/jobs", "tok",
		map[string]interface{}{"command": "sleep"})
	defer resp.Body.Close()
	var job SFJob
	json.NewDecoder(resp.Body).Decode(&job)
	c := doReq(t, "POST", fmt.Sprintf("%s/api/v1/compute/jobs/%d/cancel", srv.URL, job.ID), "tok", nil)
	defer c.Body.Close()
	if c.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", c.StatusCode)
	}
	final, _ := api.Wait(job.ID)
	if final.State != Cancelled {
		t.Fatalf("state = %v", final.State)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, srv := newTestAPI(t)
	// Unknown command.
	resp := doReq(t, "POST", srv.URL+"/api/v1/compute/jobs", "tok",
		map[string]interface{}{"command": "nope"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown command status %d", resp.StatusCode)
	}
	// Bad method.
	r2 := doReq(t, "GET", srv.URL+"/api/v1/compute/jobs", "tok", nil)
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on jobs collection status %d", r2.StatusCode)
	}
	// Bad job id.
	r3 := doReq(t, "GET", srv.URL+"/api/v1/compute/jobs/abc", "tok", nil)
	defer r3.Body.Close()
	if r3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id status %d", r3.StatusCode)
	}
	// Missing job.
	r4 := doReq(t, "GET", srv.URL+"/api/v1/compute/jobs/424242", "tok", nil)
	defer r4.Body.Close()
	if r4.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job status %d", r4.StatusCode)
	}
}

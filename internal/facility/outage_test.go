package facility

import (
	"context"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/sim"
)

// An SFAPI outage window rejects new submissions with a transient fault
// while leaving queued and running jobs untouched, and clears cleanly.
func TestClusterOutageWindow(t *testing.T) {
	e := sim.New(epoch)
	c := NewCluster(e, "perlmutter")
	c.AddPartition("cpu", 2, map[string]int{"realtime": 100, "regular": 0})

	var duringErr, afterErr error
	var longJob *Job
	e.Go("long", func(p *sim.Proc) {
		// Running before the outage opens; must survive it.
		longJob, _ = c.Submit(nil, p, JobSpec{
			Name: "long", Partition: "cpu", QOS: "regular",
			Run: func(_ context.Context, p *sim.Proc) error { p.Sleep(time.Hour); return nil },
		})
	})
	e.Go("outage", func(p *sim.Proc) {
		p.Sleep(10 * time.Minute)
		c.SetDown(true)
		if !c.Down() {
			t.Error("Down() false inside the outage window")
		}
		_, duringErr = c.Submit(nil, p, JobSpec{Name: "rejected", Partition: "cpu", QOS: "realtime"})
		p.Sleep(20 * time.Minute)
		c.SetDown(false)
		_, afterErr = c.Submit(nil, p, JobSpec{
			Name: "accepted", Partition: "cpu", QOS: "realtime",
			Run: func(_ context.Context, p *sim.Proc) error { p.Sleep(time.Minute); return nil },
		})
	})
	e.Run()

	if duringErr == nil {
		t.Fatal("submission during the outage succeeded")
	}
	if faults.Classify(duringErr) != faults.Transient {
		t.Fatalf("outage error class %v, want Transient", faults.Classify(duringErr))
	}
	if afterErr != nil {
		t.Fatalf("submission after the outage failed: %v", afterErr)
	}
	if longJob == nil || longJob.State != Completed {
		t.Fatalf("pre-outage job did not complete: %+v", longJob)
	}
	// The rejected submission never became a job record.
	for _, j := range c.Jobs() {
		if j.Name == "rejected" {
			t.Fatal("rejected submission left a job record")
		}
	}
}

package facility

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/faults"
	"repro/internal/flow"
	"repro/internal/obslog"
)

// SFClient is the caller's side of the Superfacility API: the beamline
// workstation submitting and polling jobs over HTTP, the way the paper's
// flows talk to NERSC from outside the facility. Every request takes a
// ctx and every failure is classified through the faults taxonomy so
// callers' retry loops can decide without parsing messages: transport
// errors and 5xx/408/429 responses are Transient, other 4xx are
// Permanent, and ctx expiry surfaces as Cancelled/Timeout.
type SFClient struct {
	BaseURL string
	Token   string
	// HTTP is the underlying client (http.DefaultClient if nil).
	HTTP *http.Client
	// PollInterval paces Wait's status polling (default 250ms).
	PollInterval time.Duration
	// Env supplies the poll wait (nil means the wall clock), so Wait can
	// run under an injected clock in tests and the sim kernel.
	Env flow.Env
}

func (c *SFClient) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// clock resolves the effective environment clock.
func (c *SFClient) clock() flow.Env {
	if c.Env != nil {
		return c.Env
	}
	return flow.RealEnv{}
}

// do issues one authenticated request and decodes the JSON response into
// out (when non-nil), classifying every failure mode.
func (c *SFClient) do(ctx context.Context, method, path string, body, out interface{}) error {
	var rdr io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return faults.Wrap(faults.Permanent, fmt.Errorf("sfapi client: encode request: %w", err))
		}
		rdr = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rdr)
	if err != nil {
		return faults.Wrap(faults.Permanent, fmt.Errorf("sfapi client: build request: %w", err))
	}
	req.Header.Set("Authorization", "Bearer "+c.Token)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		// Distinguish "the caller gave up" from "the network failed":
		// a ctx error classifies as Cancelled/Timeout, anything else as
		// a retryable transport fault.
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("sfapi client: %s %s: %w", method, path, cerr)
		}
		return faults.Wrap(faults.Transient, fmt.Errorf("sfapi client: %s %s: %w", method, path, err))
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		cls := faults.ClassifyHTTPStatus(resp.StatusCode)
		return faults.Wrap(cls, fmt.Errorf("sfapi client: %s %s: status %d: %s",
			method, path, resp.StatusCode, bytes.TrimSpace(msg)))
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return faults.Wrap(faults.Transient, fmt.Errorf("sfapi client: decode response: %w", err))
		}
	}
	return nil
}

// Submit posts a job and returns its initial record.
func (c *SFClient) Submit(ctx context.Context, command string, args map[string]string) (*SFJob, error) {
	var job SFJob
	err := c.do(ctx, http.MethodPost, "/api/v1/compute/jobs", map[string]interface{}{
		"command": command, "args": args,
	}, &job)
	if err != nil {
		return nil, err
	}
	return &job, nil
}

// Job fetches the current record for a job.
func (c *SFClient) Job(ctx context.Context, id int) (*SFJob, error) {
	var job SFJob
	if err := c.do(ctx, http.MethodGet, fmt.Sprintf("/api/v1/compute/jobs/%d", id), nil, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Cancel requests cancellation of a job.
func (c *SFClient) Cancel(ctx context.Context, id int) error {
	return c.do(ctx, http.MethodPost, fmt.Sprintf("/api/v1/compute/jobs/%d/cancel", id), nil, nil)
}

// Status probes the facility status endpoint — the health check the
// paper's monitoring runs against NERSC.
func (c *SFClient) Status(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/api/v1/status", nil, nil)
}

// terminal reports whether a job state is final.
func terminal(st JobState) bool {
	return st == Completed || st == JobFailed || st == Cancelled
}

// Wait polls the job until it reaches a terminal state or ctx is done.
// Transient poll failures are retried on the next tick; Permanent ones
// abort immediately.
func (c *SFClient) Wait(ctx context.Context, id int) (*SFJob, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	env := c.clock()
	for poll := 1; ; poll++ {
		job, err := c.Job(ctx, id)
		if err != nil {
			if !faults.Retryable(err) {
				return nil, err
			}
			obslog.Warn(ctx, "sfapi", "status poll failed, retrying",
				obslog.F("job", id), obslog.F("poll", poll),
				obslog.F("class", string(faults.Classify(err))), obslog.F("err", err))
		} else if terminal(job.State) {
			obslog.Debug(ctx, "sfapi", "poll observed terminal state",
				obslog.F("job", id), obslog.F("polls", poll),
				obslog.F("state", string(job.State)))
			return job, nil
		}
		if err := flow.SleepCtx(ctx, env, interval); err != nil {
			return nil, fmt.Errorf("sfapi client: wait for job %d aborted: %w", id, ctx.Err())
		}
	}
}

// Package facility models the two HPC centers' compute access paths. The
// NERSC path is a batch scheduler with QOS-priority queueing (the paper's
// Slurm "realtime" QOS jobs submitted through SFAPI); the ALCF path is a
// Globus-Compute-style pilot-job endpoint whose warm workers skip the
// batch queue entirely. Both run on the discrete-event kernel so queue
// waits and walltimes are deterministic; a separate real-time SFAPI HTTP
// facade (sfapi.go) serves the live streaming-service examples.
package facility

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/faults"
	"repro/internal/obslog"
	"repro/internal/sim"
	"repro/internal/trace"
)

// JobState is the lifecycle state of a batch job.
type JobState string

// Job states, matching the Slurm vocabulary.
const (
	Pending   JobState = "PENDING"
	Running   JobState = "RUNNING"
	Completed JobState = "COMPLETED"
	JobFailed JobState = "FAILED"
	Cancelled JobState = "CANCELLED"
)

// Job records one batch job.
type Job struct {
	ID        int
	Name      string
	Partition string
	QOS       string
	Nodes     int
	State     JobState
	Submitted time.Time
	Started   time.Time
	Ended     time.Time
	Err       string
}

// QueueWait returns the pending time before the job started.
func (j *Job) QueueWait() time.Duration { return j.Started.Sub(j.Submitted) }

// Walltime returns the execution time.
func (j *Job) Walltime() time.Duration { return j.Ended.Sub(j.Started) }

// Partition is a pool of identical nodes with QOS priorities.
type Partition struct {
	Name  string
	Total int
	// QOSPriority maps QOS names to priorities; higher runs first. The
	// zero priority is used for unknown QOS names.
	QOSPriority map[string]int

	free    int
	pending []*pendingJob
}

type pendingJob struct {
	job      *Job
	priority int
	seq      int
	grant    *sim.Signal
}

// Cluster is a simulated batch system.
type Cluster struct {
	Name string

	e          *sim.Engine
	partitions map[string]*Partition
	jobs       []*Job
	nextID     int
	// down marks the submission API unavailable (the paper's SFAPI outage
	// windows): new submissions are rejected with a transient fault while
	// jobs already queued or running are unaffected, matching an API-layer
	// outage rather than a scheduler crash.
	down bool
}

// NewCluster creates an empty cluster on the engine.
func NewCluster(e *sim.Engine, name string) *Cluster {
	return &Cluster{Name: name, e: e, partitions: map[string]*Partition{}}
}

// AddPartition installs a partition with the given node count and QOS
// priority table.
func (c *Cluster) AddPartition(name string, nodes int, qosPriority map[string]int) *Partition {
	p := &Partition{Name: name, Total: nodes, free: nodes, QOSPriority: qosPriority}
	c.partitions[name] = p
	return p
}

// Jobs returns every job record in submission order.
func (c *Cluster) Jobs() []*Job { return c.jobs }

// SetDown toggles the submission-API outage state. Call from a sim proc;
// the scenario runner uses it to open and close SFAPI outage windows.
func (c *Cluster) SetDown(down bool) { c.down = down }

// Down reports whether the submission API is currently rejecting jobs.
func (c *Cluster) Down() bool { return c.down }

// QueueDepth returns the number of pending jobs in a partition.
func (c *Cluster) QueueDepth(partition string) int {
	p, ok := c.partitions[partition]
	if !ok {
		return 0
	}
	return len(p.pending)
}

// JobSpec describes a job submission.
type JobSpec struct {
	Name      string
	Partition string
	QOS       string
	Nodes     int
	// Run is the job body; it executes on the virtual clock while the
	// nodes are held. A non-nil error marks the job FAILED. ctx is the
	// submission's cancellation context.
	Run func(ctx context.Context, p *sim.Proc) error
}

// Submit enqueues a job and blocks the calling process until it finishes,
// returning its record. Scheduling is priority-then-FIFO per partition:
// the paper's "realtime" QOS jumps the regular queue. ctx (nil means
// context.Background) is checked when the grant fires: a job whose ctx was
// cancelled while it queued releases its nodes without running, like an
// scancel of a pending job.
func (c *Cluster) Submit(ctx context.Context, proc *sim.Proc, spec JobSpec) (*Job, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.down {
		obslog.Warn(ctx, "facility", "submission rejected",
			obslog.F("cluster", c.Name), obslog.F("name", spec.Name),
			obslog.F("reason", "api_outage"))
		return nil, faults.Errorf(faults.Transient,
			"facility: %s: submission API unavailable", c.Name)
	}
	part, ok := c.partitions[spec.Partition]
	if !ok {
		return nil, faults.Errorf(faults.Permanent,
			"facility: %s: unknown partition %q", c.Name, spec.Partition)
	}
	if spec.Nodes < 1 {
		spec.Nodes = 1
	}
	if spec.Nodes > part.Total {
		return nil, faults.Errorf(faults.Permanent,
			"facility: %s: job %q wants %d nodes, partition %q has %d",
			c.Name, spec.Name, spec.Nodes, spec.Partition, part.Total)
	}
	c.nextID++
	job := &Job{
		ID: c.nextID, Name: spec.Name, Partition: spec.Partition,
		QOS: spec.QOS, Nodes: spec.Nodes, State: Pending, Submitted: proc.Now(),
	}
	c.jobs = append(c.jobs, job)
	obslog.Debug(ctx, "facility", "job submitted",
		obslog.F("cluster", c.Name), obslog.F("job", job.ID),
		obslog.F("name", spec.Name), obslog.F("partition", spec.Partition),
		obslog.F("qos", spec.QOS), obslog.F("nodes", spec.Nodes),
		obslog.F("state", string(Pending)))

	// Queue and wait for a grant, recording pending time vs walltime as
	// separate trace stages — the split the paper's Table 2 diagnosis
	// needs to tell scheduler congestion from slow reconstructions.
	span := trace.FromContext(ctx)
	qw := span.StartChildStage("queue_wait "+spec.Name, "queue_wait", proc.Now())
	pj := &pendingJob{
		job:      job,
		priority: part.QOSPriority[spec.QOS],
		seq:      job.ID,
		grant:    sim.NewSignal(c.e),
	}
	part.pending = append(part.pending, pj)
	c.dispatch(part)
	pj.grant.Wait(proc)
	qw.End(proc.Now())

	if cerr := ctx.Err(); cerr != nil {
		job.State = Cancelled
		job.Started = proc.Now()
		job.Ended = job.Started
		job.Err = cerr.Error()
		part.free += job.Nodes
		c.dispatch(part)
		obslog.Warn(ctx, "facility", "job cancelled while pending",
			obslog.F("cluster", c.Name), obslog.F("job", job.ID),
			obslog.F("name", spec.Name), obslog.F("state", string(Cancelled)))
		return job, fmt.Errorf("facility: %s: job %q cancelled before start: %w",
			c.Name, spec.Name, cerr)
	}

	job.State = Running
	job.Started = proc.Now()
	obslog.Debug(ctx, "facility", "job running",
		obslog.F("cluster", c.Name), obslog.F("job", job.ID),
		obslog.F("name", spec.Name), obslog.F("queue_wait", job.QueueWait()),
		obslog.F("state", string(Running)))
	wt := span.StartChildStage("walltime "+spec.Name, "walltime", proc.Now())
	var err error
	if spec.Run != nil {
		err = spec.Run(trace.NewContext(ctx, wt), proc)
	}
	job.Ended = proc.Now()
	wt.End(job.Ended)
	if err != nil {
		job.State = JobFailed
		job.Err = err.Error()
		obslog.Error(ctx, "facility", "job failed",
			obslog.F("cluster", c.Name), obslog.F("job", job.ID),
			obslog.F("name", spec.Name), obslog.F("walltime", job.Walltime()),
			obslog.F("class", string(faults.Classify(err))),
			obslog.F("state", string(JobFailed)), obslog.F("err", err))
	} else {
		job.State = Completed
		obslog.Info(ctx, "facility", "job completed",
			obslog.F("cluster", c.Name), obslog.F("job", job.ID),
			obslog.F("name", spec.Name), obslog.F("queue_wait", job.QueueWait()),
			obslog.F("walltime", job.Walltime()), obslog.F("state", string(Completed)))
	}
	part.free += job.Nodes
	c.dispatch(part)
	return job, err
}

// dispatch grants nodes to the highest-priority (then oldest) pending jobs
// that fit. It does not backfill past a blocked higher-priority job, which
// matches a conservative Slurm configuration.
func (c *Cluster) dispatch(part *Partition) {
	sort.SliceStable(part.pending, func(i, j int) bool {
		if part.pending[i].priority != part.pending[j].priority {
			return part.pending[i].priority > part.pending[j].priority
		}
		return part.pending[i].seq < part.pending[j].seq
	})
	for len(part.pending) > 0 {
		head := part.pending[0]
		if head.job.Nodes > part.free {
			return
		}
		part.free -= head.job.Nodes
		part.pending = part.pending[1:]
		head.grant.Fire()
	}
}

// BackgroundLoad keeps a partition partially occupied by other users' jobs:
// it spawns a generator process that submits `width`-node filler jobs with
// the given duration sampler, keeping roughly `target` nodes busy. It is
// how the Table 2 experiment reproduces NERSC queue-wait variance.
func (c *Cluster) BackgroundLoad(partition, qos string, target, width int, dur func() time.Duration) {
	if width < 1 {
		width = 1
	}
	slots := target / width
	for i := 0; i < slots; i++ {
		c.e.Go(fmt.Sprintf("%s-bg-%d", c.Name, i), func(p *sim.Proc) {
			for {
				d := dur()
				if d <= 0 {
					return // sampler signals shutdown
				}
				c.Submit(nil, p, JobSpec{
					Name: "background", Partition: partition, QOS: qos, Nodes: width,
					Run: func(_ context.Context, p *sim.Proc) error { p.Sleep(d); return nil },
				})
			}
		})
	}
}

package facility

import (
	"context"
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// PilotEndpoint models a Globus-Compute-style function-as-a-service
// endpoint: a pool of pilot workers that, once provisioned through the
// demand queue, stay warm and execute remote functions immediately. This
// is why the paper's ALCF flow shows lower variance than the NERSC batch
// path: after the first cold start there is no per-job scheduler wait.
type PilotEndpoint struct {
	Name string
	// ColdStart is the provisioning delay for a new worker (demand-queue
	// wait plus container start).
	ColdStart time.Duration
	// IdleTimeout releases a warm worker after this much idle time
	// (0 = keep forever).
	IdleTimeout time.Duration

	e       *sim.Engine
	workers *sim.Resource
	warmed  int // workers already provisioned

	// Stats.
	Executions int
	ColdStarts int
}

// NewPilotEndpoint creates an endpoint with the given worker pool size.
func NewPilotEndpoint(e *sim.Engine, name string, workers int, coldStart time.Duration) *PilotEndpoint {
	return &PilotEndpoint{
		Name: name, ColdStart: coldStart,
		e: e, workers: sim.NewResource(e, workers),
	}
}

// Execute runs fn on a pilot worker, blocking the calling process for any
// provisioning delay plus fn's own virtual time. The first use of each
// worker slot pays the cold-start penalty; subsequent uses are immediate.
// ctx (nil means context.Background) is re-checked once a worker is
// acquired, so a cancelled request releases its slot without running.
func (pe *PilotEndpoint) Execute(ctx context.Context, p *sim.Proc, fn func(ctx context.Context, p *sim.Proc) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// Worker wait (plus any cold start) vs execution mirror the batch
	// path's queue_wait/walltime split, so both facility flavours break
	// down the same way in a trace.
	span := trace.FromContext(ctx)
	qw := span.StartChildStage("queue_wait "+pe.Name, "queue_wait", p.Now())
	pe.workers.Acquire(p)
	defer pe.workers.Release()
	if cerr := ctx.Err(); cerr != nil {
		qw.End(p.Now())
		return fmt.Errorf("facility: %s: execute cancelled before start: %w", pe.Name, cerr)
	}
	if pe.warmed < pe.workers.Capacity() {
		pe.warmed++
		pe.ColdStarts++
		p.Sleep(pe.ColdStart)
	}
	qw.End(p.Now())
	pe.Executions++
	wt := span.StartChildStage("walltime "+pe.Name, "walltime", p.Now())
	err := fn(trace.NewContext(ctx, wt), p)
	wt.End(p.Now())
	return err
}

package facility

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/flow"
	"repro/internal/obslog"
)

// SFAPI is a real-time HTTP facade in the shape of NERSC's Superfacility
// API: token-authenticated job submission, status polling, and
// cancellation. It backs the beamline web app's "launch streaming
// service" button in the live examples. Jobs are named commands from a
// registry, executed in goroutines — the live analogue of Slurm scripts
// in podman-hpc containers.
type SFAPI struct {
	token    string
	commands map[string]Command
	env      flow.Env

	mu     sync.Mutex
	jobs   map[int]*SFJob // guarded by mu
	nextID int            // guarded by mu
}

// Command is a registered executable the facility can run.
type Command func(ctx context.Context, args map[string]string) error

// SFJob is the status record returned by the API.
type SFJob struct {
	ID        int               `json:"jobid"`
	Command   string            `json:"command"`
	Args      map[string]string `json:"args,omitempty"`
	State     JobState          `json:"state"`
	Submitted time.Time         `json:"submitted"`
	Ended     time.Time         `json:"ended,omitempty"`
	Error     string            `json:"error,omitempty"`

	cancel context.CancelFunc
	done   chan struct{}
}

// NewSFAPI creates a facade requiring the given bearer token.
func NewSFAPI(token string) *SFAPI {
	return &SFAPI{token: token, commands: map[string]Command{}, jobs: map[int]*SFJob{},
		env: flow.RealEnv{}}
}

// SetEnv replaces the clock used for Submitted/Ended stamps (tests inject
// a fixed or virtual clock). Call before submitting any jobs.
func (s *SFAPI) SetEnv(env flow.Env) {
	if env != nil {
		s.env = env
	}
}

// Register installs a named command.
func (s *SFAPI) Register(name string, cmd Command) {
	s.commands[name] = cmd
}

// Submit starts a job directly (the in-process path used by tests and the
// flow adapters). The returned record is a snapshot; poll Job or Wait for
// the final state.
func (s *SFAPI) Submit(command string, args map[string]string) (*SFJob, error) {
	return s.SubmitCtx(context.Background(), command, args)
}

// SubmitCtx starts a job whose context derives from ctx: cancelling the
// parent (e.g. during server shutdown) cancels the job. An unknown command
// is a Permanent fault — resubmitting cannot fix it.
func (s *SFAPI) SubmitCtx(ctx context.Context, command string, args map[string]string) (*SFJob, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cmd, ok := s.commands[command]
	if !ok {
		return nil, faults.Errorf(faults.Permanent, "sfapi: unknown command %q", command)
	}
	ctx, cancel := context.WithCancel(ctx)
	s.mu.Lock()
	s.nextID++
	job := &SFJob{
		ID: s.nextID, Command: command, Args: args,
		State: Running, Submitted: s.env.Now(),
		cancel: cancel, done: make(chan struct{}),
	}
	s.jobs[job.ID] = job
	snapshot := *job
	snapshot.cancel = nil
	snapshot.done = nil
	s.mu.Unlock()
	obslog.Info(ctx, "sfapi", "job submitted",
		obslog.F("job", job.ID), obslog.F("command", command),
		obslog.F("state", string(Running)))

	go func() {
		err := cmd(ctx, args)
		s.mu.Lock()
		job.Ended = s.env.Now()
		switch {
		case ctx.Err() != nil:
			job.State = Cancelled
			job.Error = ctx.Err().Error()
		case err != nil:
			job.State = JobFailed
			job.Error = err.Error()
		default:
			job.State = Completed
		}
		state := job.State
		ended := job.Ended
		close(job.done)
		s.mu.Unlock()
		level := obslog.LevelInfo
		fields := []obslog.Field{
			obslog.F("job", job.ID), obslog.F("command", command),
			obslog.F("state", string(state)),
			obslog.F("duration", ended.Sub(job.Submitted)),
		}
		if err != nil {
			level = obslog.LevelError
			fields = append(fields, obslog.F("err", err))
		}
		obslog.Log(ctx, level, "sfapi", "job finished", fields...)
	}()
	return &snapshot, nil
}

// Job returns a copy of the job record.
func (s *SFAPI) Job(id int) (*SFJob, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, faults.Errorf(faults.Permanent, "sfapi: no job %d", id)
	}
	cp := *j
	cp.cancel = nil
	cp.done = nil
	return &cp, nil
}

// Cancel requests cancellation of a running job.
func (s *SFAPI) Cancel(id int) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return faults.Errorf(faults.Permanent, "sfapi: no job %d", id)
	}
	j.cancel()
	return nil
}

// Wait blocks until the job finishes and returns its final record.
func (s *SFAPI) Wait(id int) (*SFJob, error) {
	return s.WaitCtx(context.Background(), id)
}

// WaitCtx blocks until the job finishes or ctx is done. The job keeps
// running if only the wait is abandoned.
func (s *SFAPI) WaitCtx(ctx context.Context, id int) (*SFJob, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, faults.Errorf(faults.Permanent, "sfapi: no job %d", id)
	}
	select {
	case <-j.done:
		return s.Job(id)
	case <-ctx.Done():
		return nil, fmt.Errorf("sfapi: wait for job %d aborted: %w", id, ctx.Err())
	}
}

// CancelAll cancels every job still running and returns how many it hit —
// the drain step of a graceful shutdown.
func (s *SFAPI) CancelAll() int {
	s.mu.Lock()
	var cancels []context.CancelFunc
	for _, j := range s.jobs {
		if j.State == Running {
			cancels = append(cancels, j.cancel)
		}
	}
	s.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	return len(cancels)
}

// Handler returns the HTTP API:
//
//	POST /api/v1/compute/jobs         {"command": ..., "args": {...}}
//	GET  /api/v1/compute/jobs/{id}
//	POST /api/v1/compute/jobs/{id}/cancel
//	GET  /api/v1/status
func (s *SFAPI) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/status", s.auth(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "active"})
	}))
	mux.HandleFunc("/api/v1/compute/jobs", s.auth(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req struct {
			Command string            `json:"command"`
			Args    map[string]string `json:"args"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		job, err := s.Submit(req.Command, req.Args)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusCreated, job)
	}))
	mux.HandleFunc("/api/v1/compute/jobs/", s.auth(func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/api/v1/compute/jobs/")
		parts := strings.Split(rest, "/")
		var id int
		if _, err := fmt.Sscanf(parts[0], "%d", &id); err != nil {
			http.Error(w, "bad job id", http.StatusBadRequest)
			return
		}
		if len(parts) == 2 && parts[1] == "cancel" && r.Method == http.MethodPost {
			if err := s.Cancel(id); err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			writeJSON(w, http.StatusOK, map[string]string{"status": "cancelled"})
			return
		}
		job, err := s.Job(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, job)
	}))
	return mux
}

func (s *SFAPI) auth(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Authorization") != "Bearer "+s.token {
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
		next(w, r)
	}
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
